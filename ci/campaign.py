#!/usr/bin/env python3
"""Fault-campaign CI driver: run the audited failure campaign and gate on it.

Three gates, mirroring the campaign binary's own exit-code contract:

 1. Clean sweep — every scenario (switch crash, link flap, lease-expiry
    race, store failover) across --seeds seeds with the auditor armed must
    finish with zero invariant violations and zero linearizability
    failures.  Any violation fails the job; the campaign's per-violation
    causal-slice artifacts (slice JSON + text) land in --out-dir for
    upload.

 2. Oracle self-test — re-run one scenario per protocol mutation
    (--mutate=lease/seq/chain).  Each mutation must be *caught* by the
    auditor: a silent mutated run means the monitors have gone blind, and
    the job fails even though nothing "broke".

 3. Recovery forensics — the campaign binary additionally fails any clean
    run whose fault injection did not produce exactly one detected,
    complete recovery episode with phase durations summing to the measured
    downtime (DESIGN.md section 13).  Per-run recovery timelines
    (<scenario>_s<seed>.recovery.json) and fleet time-series (.fleet.csv)
    land in --out-dir alongside the campaign report.

 4. Consistency-mode spectrum (DESIGN.md section 14) — the clean sweep
    re-runs under --consistency=replicated (local reads within a staleness
    bound) and --consistency=mergeable (zero-RTT multi-writer CRDT counts),
    each judged by its own monitors and offline oracles.  The mutation
    self-test then checks the mode-aware mapping: --mutate=stale must trip
    bounded_staleness under replicated but is *legal* (auditor silent)
    under mergeable; --mutate=merge must trip merge_convergence under
    mergeable and is a no-op under single-owner.  The campaign binary
    encodes the expectations; a wrong outcome either way fails the job.

The single-owner gates run twice: once per-packet and once with replication
batching on (--batching=16), so the monitors are proven to see through
batch envelopes — clean batched runs stay silent and mutated batched runs
are still caught.

 5. Adversarial fuzz (--fuzz N, DESIGN.md section 15) — N randomized
    fault+load schedules drawn by the seeded generator, split across the
    three consistency modes.  Any violation on an unmutated schedule fails
    the job; the binary ddmin-minimizes the schedule first, so the
    artifact that lands in --out-dir (minimized_<seed>.schedule.json) is a
    replayable repro, not a 10-event haystack.  A per-class mutation
    self-test then proves each scenario class still reaches its oracle:
    gray schedules must trip chain_commit under --mutate=chain, churn
    schedules single_owner under --mutate=lease, flash schedules
    seq_monotonic under --mutate=seq, capacity schedules single_owner
    under --mutate=lease.

 6. Repro regressions — every minimized schedule committed under
    tests/schedules/ (one per fuzz-found-and-fixed bug class) is replayed
    and must be clean: these are the fuzzer's trophies pinned forever.

Usage:
  ci/campaign.py --campaign build/tools/campaign --out-dir campaign-out
                 [--seeds 5] [--packets 40] [--fuzz N] [--fuzz-seed BASE]
                 [--schedules-dir tests/schedules] [--skip-selftest]
                 [--skip-batching] [--skip-modes]
"""

import argparse
import pathlib
import subprocess
import sys

# Campaign binary exit codes (tools/campaign.cc).
EXIT_CLEAN_OR_DETECTED = 0
EXIT_MUTATION_SILENT = 2

MUTATIONS = ["lease", "seq", "chain"]

# (mutation, mode, expectation label) — the binary itself decides pass/fail
# from its mode-aware mapping; the label is for the failure message only.
MODE_MUTATIONS = [
    ("stale", "replicated", "bounded_staleness must fire"),
    ("stale", "mergeable", "legal: auditor must stay silent"),
    ("merge", "mergeable", "merge_convergence must fire"),
    ("merge", "single", "legal: auditor must stay silent"),
]

# (fuzz class, mutation, monitor) — each scenario class must demonstrably
# reach its oracle when the matching protocol bug is seeded (gate 5).
FUZZ_CLASS_MUTATIONS = [
    ("gray", "chain", "chain_commit"),
    ("churn", "lease", "single_owner"),
    ("flash", "seq", "seq_monotonic"),
    ("capacity", "lease", "single_owner"),
]


def run(campaign, out_dir, extra, label):
    cmd = [campaign, f"--out-dir={out_dir}"] + extra
    print(f"\n=== {label}: {' '.join(cmd)}", flush=True)
    proc = subprocess.run(cmd)
    return proc.returncode


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--campaign", required=True,
                    help="path to the built tools/campaign binary")
    ap.add_argument("--out-dir", required=True,
                    help="report + causal-slice artifact directory")
    ap.add_argument("--seeds", type=int, default=5)
    ap.add_argument("--packets", type=int, default=40)
    ap.add_argument("--fuzz", type=int, default=0,
                    help="number of randomized fault+load schedules to run "
                         "(split across the three consistency modes; 0 = "
                         "skip the fuzz gates)")
    ap.add_argument("--fuzz-seed", type=int, default=1000,
                    help="base seed for the fuzz schedule generator")
    ap.add_argument("--schedules-dir",
                    default=str(pathlib.Path(__file__).resolve().parent.parent
                                / "tests" / "schedules"),
                    help="committed minimized repros replayed as regressions")
    ap.add_argument("--skip-selftest", action="store_true",
                    help="skip the mutation oracle self-test runs")
    ap.add_argument("--skip-batching", action="store_true",
                    help="skip the batching-enabled (--batching=16) passes")
    ap.add_argument("--skip-modes", action="store_true",
                    help="skip the replicated/mergeable consistency passes")
    args = ap.parse_args()

    out = pathlib.Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    failures = []

    batch_axes = [("", [])]
    if not args.skip_batching:
        batch_axes.append(("-batched", ["--batching=16"]))

    for suffix, batch_args in batch_axes:
        axis = "batching on" if batch_args else "per-packet"

        # Gate 1: clean sweep — all scenarios, auditor armed, must be silent.
        rc = run(args.campaign, out / f"clean{suffix}",
                 [f"--seeds={args.seeds}", f"--packets={args.packets}"]
                 + batch_args,
                 f"clean sweep ({args.seeds} seeds x all scenarios, {axis})")
        if rc != EXIT_CLEAN_OR_DETECTED:
            failures.append(
                f"clean sweep ({axis}) exited {rc}: auditor reported "
                f"violations (causal slices under {out / f'clean{suffix}'})")

        # Gate 2: each seeded protocol mutation must trip its monitor.
        if not args.skip_selftest:
            for mut in MUTATIONS:
                rc = run(args.campaign, out / f"mutate-{mut}{suffix}",
                         ["--seeds=1", f"--packets={args.packets}",
                          f"--mutate={mut}"] + batch_args,
                         f"oracle self-test (mutate={mut}, {axis})")
                if rc == EXIT_MUTATION_SILENT:
                    failures.append(
                        f"mutate={mut} ({axis}): auditor stayed silent — "
                        f"the monitors did not catch a seeded protocol bug")
                elif rc != EXIT_CLEAN_OR_DETECTED:
                    failures.append(
                        f"mutate={mut} ({axis}): campaign exited {rc}")

    # Gate 4: the consistency-mode spectrum, per-packet.
    if not args.skip_modes:
        for mode in ["replicated", "mergeable"]:
            rc = run(args.campaign, out / f"clean-{mode}",
                     [f"--seeds={args.seeds}", f"--packets={args.packets}",
                      f"--consistency={mode}"],
                     f"clean sweep (consistency={mode})")
            if rc != EXIT_CLEAN_OR_DETECTED:
                failures.append(
                    f"clean sweep (consistency={mode}) exited {rc}: "
                    f"violations or oracle failures under the weaker mode "
                    f"(see {out / f'clean-{mode}'})")
        if not args.skip_selftest:
            for mut, mode, expectation in MODE_MUTATIONS:
                rc = run(args.campaign, out / f"mutate-{mut}-{mode}",
                         ["--seeds=1", f"--packets={args.packets}",
                          f"--mutate={mut}", f"--consistency={mode}"],
                         f"mode-aware oracle self-test "
                         f"(mutate={mut}, consistency={mode})")
                if rc == EXIT_MUTATION_SILENT:
                    failures.append(
                        f"mutate={mut} consistency={mode}: expected monitor "
                        f"stayed silent ({expectation})")
                elif rc != EXIT_CLEAN_OR_DETECTED:
                    failures.append(
                        f"mutate={mut} consistency={mode}: campaign exited "
                        f"{rc} ({expectation})")

    # Gate 5: randomized fault+load fuzzing, budget split across the modes.
    if args.fuzz > 0:
        per_mode = max(1, args.fuzz // 3)
        for i, mode in enumerate(["single", "replicated", "mergeable"]):
            rc = run(args.campaign, out / f"fuzz-{mode}",
                     [f"--fuzz={per_mode}", "--fuzz-class=mixed",
                      f"--fuzz-seed={args.fuzz_seed + 10000 * i}",
                      f"--packets={args.packets}",
                      f"--consistency={mode}"],
                     f"adversarial fuzz ({per_mode} schedules, "
                     f"consistency={mode})")
            if rc != EXIT_CLEAN_OR_DETECTED:
                failures.append(
                    f"fuzz (consistency={mode}) exited {rc}: a randomized "
                    f"schedule violated an invariant — minimized repro under "
                    f"{out / f'fuzz-{mode}'}")
        # Each scenario class must still reach its oracle when the matching
        # protocol bug is seeded — otherwise the fuzzer is shaking a tree
        # the monitors cannot see.
        if not args.skip_selftest:
            for cls, mut, monitor in FUZZ_CLASS_MUTATIONS:
                rc = run(args.campaign, out / f"fuzz-{cls}-{mut}",
                         ["--fuzz=2", f"--fuzz-class={cls}",
                          f"--fuzz-seed={args.fuzz_seed}",
                          f"--packets={args.packets}", f"--mutate={mut}"],
                         f"fuzz-class oracle self-test ({cls} + mutate={mut})")
                if rc == EXIT_MUTATION_SILENT:
                    failures.append(
                        f"fuzz class {cls} + mutate={mut}: {monitor} stayed "
                        f"silent — the class no longer reaches its oracle")
                elif rc != EXIT_CLEAN_OR_DETECTED:
                    failures.append(
                        f"fuzz class {cls} + mutate={mut}: campaign exited {rc}")

    # Gate 6: committed minimized repros replay clean, in every mode.  The
    # schedule file does not pin a consistency mode, and some fuzz-found
    # bugs only manifest under a weaker mode (e.g. the tail-crash commit
    # evidence gap needs replicated-mode buffered reads), so each repro is
    # replayed under all three.
    schedules = sorted(pathlib.Path(args.schedules_dir).glob("*.json"))
    for sched in schedules:
        for mode in ["single", "replicated", "mergeable"]:
            rc = run(args.campaign, out / "repros",
                     [f"--schedule={sched}", f"--consistency={mode}"],
                     f"repro regression ({sched.name}, consistency={mode})")
            if rc != EXIT_CLEAN_OR_DETECTED:
                failures.append(
                    f"repro {sched.name} (consistency={mode}) exited {rc}: "
                    f"a previously fixed fuzz-found bug is back")

    if failures:
        print("\nFAULT CAMPAIGN FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nfault campaign OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
