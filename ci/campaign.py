#!/usr/bin/env python3
"""Fault-campaign CI driver: run the audited failure campaign and gate on it.

Three gates, mirroring the campaign binary's own exit-code contract:

 1. Clean sweep — every scenario (switch crash, link flap, lease-expiry
    race, store failover) across --seeds seeds with the auditor armed must
    finish with zero invariant violations and zero linearizability
    failures.  Any violation fails the job; the campaign's per-violation
    causal-slice artifacts (slice JSON + text) land in --out-dir for
    upload.

 2. Oracle self-test — re-run one scenario per protocol mutation
    (--mutate=lease/seq/chain).  Each mutation must be *caught* by the
    auditor: a silent mutated run means the monitors have gone blind, and
    the job fails even though nothing "broke".

 3. Recovery forensics — the campaign binary additionally fails any clean
    run whose fault injection did not produce exactly one detected,
    complete recovery episode with phase durations summing to the measured
    downtime (DESIGN.md section 13).  Per-run recovery timelines
    (<scenario>_s<seed>.recovery.json) and fleet time-series (.fleet.csv)
    land in --out-dir alongside the campaign report.

All gates run twice: once per-packet and once with replication batching on
(--batching=16), so the monitors are proven to see through batch envelopes
— clean batched runs stay silent and mutated batched runs are still caught.

Usage:
  ci/campaign.py --campaign build/tools/campaign --out-dir campaign-out
                 [--seeds 5] [--packets 40] [--skip-selftest]
                 [--skip-batching]
"""

import argparse
import pathlib
import subprocess
import sys

# Campaign binary exit codes (tools/campaign.cc).
EXIT_CLEAN_OR_DETECTED = 0
EXIT_MUTATION_SILENT = 2

MUTATIONS = ["lease", "seq", "chain"]


def run(campaign, out_dir, extra, label):
    cmd = [campaign, f"--out-dir={out_dir}"] + extra
    print(f"\n=== {label}: {' '.join(cmd)}", flush=True)
    proc = subprocess.run(cmd)
    return proc.returncode


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--campaign", required=True,
                    help="path to the built tools/campaign binary")
    ap.add_argument("--out-dir", required=True,
                    help="report + causal-slice artifact directory")
    ap.add_argument("--seeds", type=int, default=5)
    ap.add_argument("--packets", type=int, default=40)
    ap.add_argument("--skip-selftest", action="store_true",
                    help="skip the mutation oracle self-test runs")
    ap.add_argument("--skip-batching", action="store_true",
                    help="skip the batching-enabled (--batching=16) passes")
    args = ap.parse_args()

    out = pathlib.Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    failures = []

    batch_axes = [("", [])]
    if not args.skip_batching:
        batch_axes.append(("-batched", ["--batching=16"]))

    for suffix, batch_args in batch_axes:
        axis = "batching on" if batch_args else "per-packet"

        # Gate 1: clean sweep — all scenarios, auditor armed, must be silent.
        rc = run(args.campaign, out / f"clean{suffix}",
                 [f"--seeds={args.seeds}", f"--packets={args.packets}"]
                 + batch_args,
                 f"clean sweep ({args.seeds} seeds x all scenarios, {axis})")
        if rc != EXIT_CLEAN_OR_DETECTED:
            failures.append(
                f"clean sweep ({axis}) exited {rc}: auditor reported "
                f"violations (causal slices under {out / f'clean{suffix}'})")

        # Gate 2: each seeded protocol mutation must trip its monitor.
        if not args.skip_selftest:
            for mut in MUTATIONS:
                rc = run(args.campaign, out / f"mutate-{mut}{suffix}",
                         ["--seeds=1", f"--packets={args.packets}",
                          f"--mutate={mut}"] + batch_args,
                         f"oracle self-test (mutate={mut}, {axis})")
                if rc == EXIT_MUTATION_SILENT:
                    failures.append(
                        f"mutate={mut} ({axis}): auditor stayed silent — "
                        f"the monitors did not catch a seeded protocol bug")
                elif rc != EXIT_CLEAN_OR_DETECTED:
                    failures.append(
                        f"mutate={mut} ({axis}): campaign exited {rc}")

    if failures:
        print("\nFAULT CAMPAIGN FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nfault campaign OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
