#!/usr/bin/env python3
"""Perf smoke test: run bench_micro and fail on regression.

Two kinds of checks:

 1. Machine-independent invariants of the zero-copy core and the online
    auditor — these must hold on any hardware:
      * steady-state event dispatch performs zero heap allocations,
      * zero-copy hop forwarding beats the deep-copy/re-encode path by at
        least 2x (the PR's acceptance bar),
      * an armed-but-silent auditor adds at most 5% to the hop-forward and
        chain-hop paths (plus a small absolute epsilon to absorb timer
        granularity on sub-10ns benches).
 2. Absolute regression against the recorded baseline (BENCH_PR2.json):
    each benchmark must stay within --tolerance (default 25%) of its
    baseline time.  Skipped with --no-absolute on hardware that does not
    match the baseline machine.

Usage:
  ci/perf_smoke.py --bench build/bench/bench_micro [--baseline BENCH_PR2.json]
                   [--tolerance 0.25] [--no-absolute]
"""

import argparse
import json
import subprocess
import sys


def run_bench(bench_path):
    out = subprocess.run(
        [
            bench_path,
            "--benchmark_format=json",
            "--benchmark_min_time=0.2",
            "--benchmark_repetitions=3",
            "--benchmark_report_aggregates_only=true",
        ],
        check=True,
        capture_output=True,
        text=True,
    )
    results = {}
    counters = {}
    for b in json.loads(out.stdout)["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        name = b["run_name"]
        results[name] = b["real_time"]
        for key in ("heap_allocs_per_dispatch",):
            if key in b:
                counters.setdefault(name, {})[key] = b[key]
    return results, counters


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True)
    ap.add_argument("--baseline", default="BENCH_PR2.json")
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument("--no-absolute", action="store_true")
    args = ap.parse_args()

    results, counters = run_bench(args.bench)
    failures = []

    # --- Invariant checks (machine-independent) ---
    allocs = counters.get("BM_EventDispatchSteadyState", {}).get(
        "heap_allocs_per_dispatch"
    )
    if allocs is None:
        failures.append("BM_EventDispatchSteadyState did not report "
                        "heap_allocs_per_dispatch")
    elif allocs != 0:
        failures.append(
            f"steady-state event dispatch allocates ({allocs}/dispatch)")

    for fast, slow, label in [
        ("BM_LinkHopForward", "BM_LinkHopForwardDeepCopy", "hop-forward"),
        ("BM_ChainHopForwardZeroCopy", "BM_ChainHopReencode", "chain-hop"),
    ]:
        if fast not in results or slow not in results:
            failures.append(f"missing benchmark pair for {label}")
            continue
        if results[fast] * 2 > results[slow]:
            failures.append(
                f"{label}: zero-copy path ({results[fast]:.1f} ns) is not "
                f">=2x faster than copy path ({results[slow]:.1f} ns)")

    # Batch envelope invariants: the envelope is framing, not serialization.
    # Wrapping a sub-message into a batch (BM_BatchEncode, per item) must be
    # cheaper than encoding a message from scratch (BM_ProtocolEncode) — if
    # it is not, EncodeBatchEnvelope has started re-serializing its subs.
    batch_benches = ["BM_BatchEncode/4", "BM_BatchEncode/16",
                     "BM_BatchChainHop/4", "BM_BatchChainHop/16"]
    missing = [b for b in batch_benches if b not in results]
    if missing:
        failures.append(f"missing batch benchmarks: {', '.join(missing)}")
    elif "BM_ProtocolEncode" in results:
        per_sub = results["BM_BatchEncode/16"] / 16
        if per_sub >= results["BM_ProtocolEncode"]:
            failures.append(
                f"batch encode per sub-message ({per_sub:.1f} ns) costs as "
                f"much as a full message encode "
                f"({results['BM_ProtocolEncode']:.1f} ns) — the envelope is "
                f"re-serializing")

    # Armed-but-silent auditor overhead on the hop paths: the tap guard is
    # one global load + predictable branch, so the armed bench must stay
    # within 5% of its unarmed twin.  The +0.5 ns epsilon absorbs timer
    # granularity: on a ~5 ns bench a single tick of run-to-run noise is
    # already >5%, and we are guarding the guard, not the scheduler.
    for base, armed, label in [
        ("BM_LinkHopForward", "BM_LinkHopForwardAuditorArmed", "hop-forward"),
        ("BM_ChainHopForwardZeroCopy", "BM_ChainHopForwardAuditorArmed",
         "chain-hop"),
    ]:
        if base not in results or armed not in results:
            failures.append(f"missing auditor-overhead pair for {label}")
            continue
        budget = results[base] * 1.05 + 0.5
        if results[armed] > budget:
            failures.append(
                f"{label}: auditor-armed path ({results[armed]:.1f} ns) "
                f"exceeds 5% overhead budget over unarmed "
                f"({results[base]:.1f} ns)")

    # --- Absolute regression vs recorded baseline ---
    if not args.no_absolute:
        with open(args.baseline) as f:
            baseline = json.load(f)["reference_ns"]
        for name, base_ns in baseline.items():
            got = results.get(name)
            if got is None:
                failures.append(f"baseline benchmark {name} missing from run")
            elif got > base_ns * (1.0 + args.tolerance):
                failures.append(
                    f"{name}: {got:.1f} ns vs baseline {base_ns:.1f} ns "
                    f"(+{(got / base_ns - 1) * 100:.0f}%, tolerance "
                    f"{args.tolerance * 100:.0f}%)")

    for name in sorted(results):
        print(f"  {name}: {results[name]:.2f} ns")
    if failures:
        print("\nPERF SMOKE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
