#!/usr/bin/env python3
"""Perf smoke test: run bench_micro and fail on regression.

Two kinds of checks:

 1. Machine-independent invariants of the zero-copy core, the online
    auditor, and the timing-wheel retransmit path — these must hold on any
    hardware:
      * steady-state event dispatch performs zero heap allocations,
      * zero-copy hop forwarding beats the deep-copy/re-encode path by at
        least 2x (the PR's acceptance bar),
      * an armed-but-silent auditor adds at most 5% to the hop-forward and
        chain-hop paths (plus a small absolute epsilon to absorb timer
        granularity on sub-10ns benches),
      * the per-tick retransmit check is O(due entries), not O(table):
        BM_MirrorDueScan per-item cost at 1M parked flows stays within 10%
        of the 10k-flow cost, and beats the whole-table-walk before-twin
        (BM_MirrorFullScan) by at least 50x at 1M flows,
      * the pluggable ConsistencyPolicy layer does not tax the default mode:
        the single-owner sequencing core routed through the policy object
        (BM_SingleOwnerSequencingPolicy) stays within 2% of the hard-wired
        before-twin (BM_SingleOwnerSequencingInline), plus a small absolute
        epsilon for timer granularity on the ~9 ns region.
 2. Absolute regression against the recorded baselines (BENCH_PR2.json,
    BENCH_PR7.json, BENCH_PR9.json; --baseline is repeatable): each
    benchmark must stay within --tolerance (default 25%) of its baseline
    time.  Skipped with --no-absolute on hardware that does not match the
    baseline machine.

When a regression fires, --profile (a profile JSON written by a bench run's
--profile-out, or by rpreport) turns the failure from "something got slower"
into "THIS subsystem got slower": the script prints per-subsystem wall-clock
self-time attribution, and — when --profile-baseline gives a profile from the
last good run — the share diff, sorted by who grew the most.

Usage:
  ci/perf_smoke.py --bench build/bench/bench_micro [--baseline BENCH_PR2.json]
                   [--baseline BENCH_PR7.json] [--tolerance 0.25]
                   [--no-absolute] [--table-out perf-report/timer_table.md]
                   [--profile run/profile.json]
                   [--profile-baseline good/profile.json]

--table-out writes a markdown before/after table for the timing-wheel
retransmit path (whole-table walk vs due-slot pop at 10k and 1M flows, plus
the wheel primitives) — CI uploads it as an artifact.
"""

import argparse
import json
import subprocess
import sys


def subsystem_self_ns(profile_path):
    """Per-subsystem self-time from a profiler JSON ({"sites": [...]}).

    The subsystem is the site-name prefix before the first '.', the same
    rollup key rpreport uses.
    """
    with open(profile_path) as f:
        doc = json.load(f)
    rollup = {}
    for site in doc.get("sites", []):
        subsystem = site.get("name", "?").split(".", 1)[0]
        rollup[subsystem] = rollup.get(subsystem, 0.0) + site.get("self_ns", 0)
    return rollup


def print_attribution(profile_path, baseline_path):
    try:
        current = subsystem_self_ns(profile_path)
    except (OSError, json.JSONDecodeError, AttributeError) as e:
        print(f"  (could not read profile {profile_path}: {e})")
        return
    total = sum(current.values()) or 1.0
    baseline = {}
    if baseline_path:
        try:
            baseline = subsystem_self_ns(baseline_path)
        except (OSError, json.JSONDecodeError, AttributeError) as e:
            print(f"  (could not read baseline profile {baseline_path}: {e})")
    base_total = sum(baseline.values()) or 1.0

    print("\nPer-subsystem wall-clock attribution"
          + (" (share vs baseline):" if baseline else ":"))
    rows = []
    for subsystem in sorted(set(current) | set(baseline)):
        share = current.get(subsystem, 0.0) / total
        if baseline:
            base_share = baseline.get(subsystem, 0.0) / base_total
            rows.append((share - base_share, subsystem, share, base_share))
        else:
            rows.append((share, subsystem, share, None))
    rows.sort(reverse=True)
    for delta, subsystem, share, base_share in rows:
        if base_share is None:
            print(f"  {subsystem:12s} {share * 100:6.1f}%")
        else:
            print(f"  {subsystem:12s} {share * 100:6.1f}%  "
                  f"(was {base_share * 100:5.1f}%, "
                  f"{'+' if delta >= 0 else ''}{delta * 100:.1f} pts)")
    if rows and base_share is not None:
        top = rows[0]
        if top[0] > 0.01:
            print(f"  => largest growth: {top[1]} "
                  f"(+{top[0] * 100:.1f} pts of total self time)")


def run_bench(bench_path):
    out = subprocess.run(
        [
            bench_path,
            "--benchmark_format=json",
            "--benchmark_min_time=0.2",
            "--benchmark_repetitions=3",
            "--benchmark_report_aggregates_only=true",
        ],
        check=True,
        capture_output=True,
        text=True,
    )
    results = {}
    counters = {}
    for b in json.loads(out.stdout)["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        name = b["run_name"]
        results[name] = b["real_time"]
        for key in ("heap_allocs_per_dispatch", "items_per_second"):
            if key in b:
                counters.setdefault(name, {})[key] = b[key]
    return results, counters


def write_timer_table(path, results, counters):
    """Markdown before/after table for the retransmit-check refactor."""

    def fmt(name):
        ns = results.get(name)
        return f"{ns:,.1f} ns" if ns is not None else "n/a"

    lines = [
        "# Retransmit check: whole-table walk vs per-entry wheel timers",
        "",
        "Per-tick cost of finding due retransmissions.  'Before' walks every",
        "mirror entry comparing its last-send time (the retired"
        " ScanRetransmits",
        "design, kept as the BM_MirrorFullScan before-twin); 'after' pops the",
        "earliest due timing-wheel slot while the parked majority never gets",
        "touched.",
        "",
        "| Flows | Before: full walk | After: due-slot pop | Ratio |",
        "|---|---|---|---|",
    ]
    for flows, arg in [("10k", "10240"), ("1M", "1048576")]:
        before = results.get(f"BM_MirrorFullScan/{arg}")
        after = results.get(f"BM_MirrorDueScan/{arg}")
        ratio = (f"{before / after:,.0f}x"
                 if before is not None and after is not None else "n/a")
        lines.append(f"| {flows} | {fmt(f'BM_MirrorFullScan/{arg}')} "
                     f"| {fmt(f'BM_MirrorDueScan/{arg}')} | {ratio} |")
    rate_10k = counters.get("BM_MirrorDueScan/10240", {}).get(
        "items_per_second")
    rate_1m = counters.get("BM_MirrorDueScan/1048576", {}).get(
        "items_per_second")
    if rate_10k and rate_1m:
        lines += [
            "",
            f"Due-scan throughput: {rate_10k / 1e6:.1f} M items/s at 10k "
            f"flows vs {rate_1m / 1e6:.1f} M items/s at 1M flows "
            f"({abs(rate_10k / rate_1m - 1) * 100:.1f}% apart — the check "
            "is flat in table size).",
        ]
    lines += [
        "",
        "## Wheel and table primitives",
        "",
        "| Benchmark | Time |",
        "|---|---|",
    ]
    for name in ["BM_TimerWheelSchedule", "BM_TimerWheelAdvance",
                 "BM_TimerWheelCancel", "BM_FlowTableLookup/10240",
                 "BM_FlowTableLookup/1048576"]:
        lines.append(f"| {name} | {fmt(name)} |")
    lines.append("")
    with open(path, "w") as f:
        f.write("\n".join(lines))
    print(f"wrote before/after table to {path}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True)
    ap.add_argument("--baseline", action="append", default=None,
                    help="baseline JSON with a reference_ns map; repeatable "
                         "(default: BENCH_PR2.json and BENCH_PR7.json)")
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument("--no-absolute", action="store_true")
    ap.add_argument("--table-out", default=None,
                    help="write the timing-wheel before/after markdown "
                         "table here")
    ap.add_argument("--profile", default=None,
                    help="profile JSON from this run; on failure, prints "
                         "per-subsystem attribution")
    ap.add_argument("--profile-baseline", default=None,
                    help="profile JSON from the last good run; prints the "
                         "attribution diff to name the regressing subsystem")
    args = ap.parse_args()

    results, counters = run_bench(args.bench)
    failures = []

    # --- Invariant checks (machine-independent) ---
    allocs = counters.get("BM_EventDispatchSteadyState", {}).get(
        "heap_allocs_per_dispatch"
    )
    if allocs is None:
        failures.append("BM_EventDispatchSteadyState did not report "
                        "heap_allocs_per_dispatch")
    elif allocs != 0:
        failures.append(
            f"steady-state event dispatch allocates ({allocs}/dispatch)")

    for fast, slow, label in [
        ("BM_LinkHopForward", "BM_LinkHopForwardDeepCopy", "hop-forward"),
        ("BM_ChainHopForwardZeroCopy", "BM_ChainHopReencode", "chain-hop"),
    ]:
        if fast not in results or slow not in results:
            failures.append(f"missing benchmark pair for {label}")
            continue
        if results[fast] * 2 > results[slow]:
            failures.append(
                f"{label}: zero-copy path ({results[fast]:.1f} ns) is not "
                f">=2x faster than copy path ({results[slow]:.1f} ns)")

    # Batch envelope invariants: the envelope is framing, not serialization.
    # Wrapping a sub-message into a batch (BM_BatchEncode, per item) must be
    # cheaper than encoding a message from scratch (BM_ProtocolEncode) — if
    # it is not, EncodeBatchEnvelope has started re-serializing its subs.
    batch_benches = ["BM_BatchEncode/4", "BM_BatchEncode/16",
                     "BM_BatchChainHop/4", "BM_BatchChainHop/16"]
    missing = [b for b in batch_benches if b not in results]
    if missing:
        failures.append(f"missing batch benchmarks: {', '.join(missing)}")
    elif "BM_ProtocolEncode" in results:
        per_sub = results["BM_BatchEncode/16"] / 16
        if per_sub >= results["BM_ProtocolEncode"]:
            failures.append(
                f"batch encode per sub-message ({per_sub:.1f} ns) costs as "
                f"much as a full message encode "
                f"({results['BM_ProtocolEncode']:.1f} ns) — the envelope is "
                f"re-serializing")

    # Armed-but-silent auditor overhead on the hop paths: the tap guard is
    # one global load + predictable branch, so the armed bench must stay
    # within 5% of its unarmed twin.  The +0.5 ns epsilon absorbs timer
    # granularity: on a ~5 ns bench a single tick of run-to-run noise is
    # already >5%, and we are guarding the guard, not the scheduler.
    for base, armed, label in [
        ("BM_LinkHopForward", "BM_LinkHopForwardAuditorArmed", "hop-forward"),
        ("BM_ChainHopForwardZeroCopy", "BM_ChainHopForwardAuditorArmed",
         "chain-hop"),
    ]:
        if base not in results or armed not in results:
            failures.append(f"missing auditor-overhead pair for {label}")
            continue
        budget = results[base] * 1.05 + 0.5
        if results[armed] > budget:
            failures.append(
                f"{label}: auditor-armed path ({results[armed]:.1f} ns) "
                f"exceeds 5% overhead budget over unarmed "
                f"({results[base]:.1f} ns)")

    # Armed-profiler overhead on the same hop paths: a sampled ProfSite at
    # stride 256 amortizes its clock reads to well under a nanosecond per
    # entry, leaving a constant ~2 ns armed-not-sampled cost (one global
    # load, the stride-countdown decrement, two branches) that does not
    # scale with region size.  The +3 ns epsilon absorbs that constant on
    # these nanosecond-scale microbench regions; the 5% relative term is
    # what binds on real instrumented regions (switch/store process paths
    # are hundreds of ns, where 5% >> the constant).
    for base, armed, label in [
        ("BM_LinkHopForward", "BM_LinkHopForwardProfilerArmed",
         "hop-forward profiler"),
        ("BM_ChainHopForwardZeroCopy", "BM_ChainHopForwardProfilerArmed",
         "chain-hop profiler"),
    ]:
        if base not in results or armed not in results:
            failures.append(f"missing profiler-overhead pair for {label}")
            continue
        budget = results[base] * 1.05 + 3.0
        if results[armed] > budget:
            failures.append(
                f"{label}: profiler-armed path ({results[armed]:.1f} ns) "
                f"exceeds 5% + 3 ns overhead budget over unarmed "
                f"({results[base]:.1f} ns)")

    # Timing-wheel retransmit-check invariants (the PR 7 acceptance bar).
    # Flatness: the per-item due-scan cost must not depend on how many
    # non-due entries sit in the table — 1M parked flows vs 10k within 10%.
    due_rates = {}
    for arg in ("10240", "1048576"):
        rate = counters.get(f"BM_MirrorDueScan/{arg}", {}).get(
            "items_per_second")
        if rate is None:
            failures.append(
                f"BM_MirrorDueScan/{arg} did not report items_per_second")
        else:
            due_rates[arg] = rate
    if len(due_rates) == 2:
        ratio = due_rates["10240"] / due_rates["1048576"]
        if abs(ratio - 1.0) > 0.10:
            failures.append(
                f"retransmit check is not flat in table size: "
                f"{due_rates['10240'] / 1e6:.1f} M items/s at 10k flows vs "
                f"{due_rates['1048576'] / 1e6:.1f} M items/s at 1M "
                f"({abs(ratio - 1) * 100:.0f}% apart, budget 10%)")
    # Consistency-policy single-owner A/B (DESIGN.md §14): selecting the
    # single-owner policy explicitly must be free — the sequencing core
    # routed through the ConsistencyPolicy object stays within 2% of the
    # hard-wired before-twin.  The +0.5 ns epsilon absorbs timer granularity
    # on a ~9 ns region, as for the auditor-overhead pairs above.
    so_inline = results.get("BM_SingleOwnerSequencingInline")
    so_policy = results.get("BM_SingleOwnerSequencingPolicy")
    if so_inline is None or so_policy is None:
        failures.append("missing single-owner consistency A/B pair "
                        "(BM_SingleOwnerSequencing{Inline,Policy})")
    elif so_policy > so_inline * 1.02 + 0.5:
        failures.append(
            f"single-owner A/B: policy-layer path ({so_policy:.2f} ns) "
            f"exceeds the 2% budget over the hard-wired twin "
            f"({so_inline:.2f} ns)")

    # O(due) vs O(table): at 1M flows the due-slot pop must beat the
    # whole-table walk by orders of magnitude; 50x is a loose floor (the
    # measured gap is ~27000x) that still catches any accidental
    # reintroduction of a full scan on the due path.
    full_1m = results.get("BM_MirrorFullScan/1048576")
    due_1m = results.get("BM_MirrorDueScan/1048576")
    if full_1m is None or due_1m is None:
        failures.append("missing BM_MirrorFullScan/BM_MirrorDueScan at 1M")
    elif due_1m * 50 > full_1m:
        failures.append(
            f"due scan at 1M flows ({due_1m:.1f} ns) is not >=50x faster "
            f"than the full-table walk ({full_1m:.1f} ns)")

    # --- Absolute regression vs recorded baselines ---
    if not args.no_absolute:
        baseline_paths = args.baseline or ["BENCH_PR2.json", "BENCH_PR7.json",
                                           "BENCH_PR9.json"]
        baseline = {}
        for path in baseline_paths:
            with open(path) as f:
                baseline.update(json.load(f)["reference_ns"])
        for name, base_ns in baseline.items():
            got = results.get(name)
            if got is None:
                failures.append(f"baseline benchmark {name} missing from run")
            elif got > base_ns * (1.0 + args.tolerance):
                failures.append(
                    f"{name}: {got:.1f} ns vs baseline {base_ns:.1f} ns "
                    f"(+{(got / base_ns - 1) * 100:.0f}%, tolerance "
                    f"{args.tolerance * 100:.0f}%)")

    for name in sorted(results):
        print(f"  {name}: {results[name]:.2f} ns")
    if args.table_out:
        write_timer_table(args.table_out, results, counters)
    if failures:
        print("\nPERF SMOKE FAILED:")
        for f in failures:
            print(f"  - {f}")
        if args.profile:
            print_attribution(args.profile, args.profile_baseline)
        return 1
    print("\nperf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
