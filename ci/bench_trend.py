#!/usr/bin/env python3
"""Performance-trajectory table: diff the checked-in BENCH_PR*.json baselines.

Each optimization PR checks in a BENCH_PR<N>.json recording what it sped up
(before/after medians on the baseline machine).  This script joins them into
one markdown trajectory table so a reviewer can see the repo's performance
story at a glance — which PR bought which speedup, and what the current
headline numbers are — without digging through git history.

The baselines are heterogeneous by design (each PR measured what it
changed): entries may have benchmark before/after pairs with ns medians
(BENCH_PR2/PR7 "headline" style), after-only measurements, or experiment
counters (BENCH_PR5's bytes-on-the-wire shape).  Missing fields render as
"-" rather than failing: the table is a record, not a gate (the regression
gate is ci/perf_smoke.py).

Usage:
  ci/bench_trend.py [--glob 'BENCH_PR*.json'] [--out trend.md]
"""

import argparse
import glob
import json
import pathlib
import re
import sys


def fmt(value, decimals=1):
    if value is None:
        return "-"
    if isinstance(value, (int, float)):
        if float(value).is_integer() and abs(value) >= 1000:
            return f"{int(value):,}"
        return f"{value:.{decimals}f}".rstrip("0").rstrip(".")
    return str(value)


def pr_number(path):
    m = re.search(r"PR(\d+)", path.name)
    return int(m.group(1)) if m else 0


def headline_rows(pr, doc):
    """BENCH_PR2/PR7 style: {"headline": {key: {before_ns, after_ns, ...}}}."""
    rows = []
    for key, entry in doc.get("headline", {}).items():
        if not isinstance(entry, dict):
            continue
        before = entry.get("before_ns")
        after = entry.get("after_ns")
        speedup = entry.get("speedup")
        if speedup is None and before and after:
            speedup = before / after
        # After-only entries (new capability, no before-twin) still list.
        if after is None:
            numeric = [v for k, v in entry.items()
                       if k.startswith("after_ns") and
                       isinstance(v, (int, float))]
            after = numeric[0] if numeric else None
        rows.append({
            "pr": pr,
            "metric": key,
            "before": fmt(before),
            "after": fmt(after),
            "speedup": fmt(speedup) + ("x" if speedup is not None else ""),
            "note": entry.get("note", ""),
        })
    return rows


def experiment_rows(pr, doc):
    """BENCH_PR5 style: {"experiment": ..., "before": {...}, "after": {...}}."""
    before = doc.get("before")
    after = doc.get("after")
    if not isinstance(before, dict) or not isinstance(after, dict):
        return []
    rows = []
    name = doc.get("experiment", f"PR{pr} experiment")
    for key in before:
        if key not in after:
            continue
        b, a = before[key], after[key]
        if not isinstance(b, (int, float)) or not isinstance(a, (int, float)):
            continue
        ratio = (b / a) if a else None
        rows.append({
            "pr": pr,
            "metric": f"{name}.{key}",
            "before": fmt(b),
            "after": fmt(a),
            "speedup": fmt(ratio) + ("x" if ratio is not None else ""),
            "note": "",
        })
    return rows


def build_table(paths):
    rows = []
    for path in sorted(paths, key=pr_number):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_trend: skipping {path}: {err}", file=sys.stderr)
            continue
        pr = pr_number(path)
        from_headline = headline_rows(pr, doc)
        rows.extend(from_headline if from_headline
                    else experiment_rows(pr, doc))

    lines = ["# Performance trajectory", "",
             "One row per headline metric of each optimization PR "
             "(before/after medians from the checked-in BENCH_PR*.json "
             "baselines).", "",
             "| PR | Metric | Before | After | Speedup | Note |",
             "|---:|---|---:|---:|---:|---|"]
    for r in rows:
        lines.append(f"| {r['pr']} | {r['metric']} | {r['before']} "
                     f"| {r['after']} | {r['speedup']} | {r['note']} |")
    if not rows:
        lines.append("| - | (no baselines found) | - | - | - | - |")
    return "\n".join(lines) + "\n", len(rows)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--glob", default="BENCH_PR*.json",
                    help="baseline files to join (default: BENCH_PR*.json)")
    ap.add_argument("--out", default="",
                    help="write the markdown here (default: stdout)")
    args = ap.parse_args()

    paths = [pathlib.Path(p) for p in glob.glob(args.glob)]
    if not paths:
        print(f"bench_trend: no files match {args.glob}", file=sys.stderr)
        return 1
    table, n = build_table(paths)
    if args.out:
        pathlib.Path(args.out).write_text(table)
        print(f"bench_trend: wrote {n} rows from {len(paths)} baselines "
              f"to {args.out}")
    else:
        print(table, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
