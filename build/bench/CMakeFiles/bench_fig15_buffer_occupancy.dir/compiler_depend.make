# Empty compiler generated dependencies file for bench_fig15_buffer_occupancy.
# This may be replaced when dependencies are built.
