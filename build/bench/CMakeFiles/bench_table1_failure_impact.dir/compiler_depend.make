# Empty compiler generated dependencies file for bench_table1_failure_impact.
# This may be replaced when dependencies are built.
