# Empty compiler generated dependencies file for bench_fig08_nat_latency.
# This may be replaced when dependencies are built.
