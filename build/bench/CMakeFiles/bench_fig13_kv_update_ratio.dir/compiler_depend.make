# Empty compiler generated dependencies file for bench_fig13_kv_update_ratio.
# This may be replaced when dependencies are built.
