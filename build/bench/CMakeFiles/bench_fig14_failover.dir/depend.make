# Empty dependencies file for bench_fig14_failover.
# This may be replaced when dependencies are built.
