# Empty compiler generated dependencies file for bench_fig11_snapshot_bw.
# This may be replaced when dependencies are built.
