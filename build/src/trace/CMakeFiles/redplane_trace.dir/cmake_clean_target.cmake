file(REMOVE_RECURSE
  "libredplane_trace.a"
)
