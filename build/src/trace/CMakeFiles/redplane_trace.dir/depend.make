# Empty dependencies file for redplane_trace.
# This may be replaced when dependencies are built.
