file(REMOVE_RECURSE
  "CMakeFiles/redplane_trace.dir/workload.cc.o"
  "CMakeFiles/redplane_trace.dir/workload.cc.o.d"
  "libredplane_trace.a"
  "libredplane_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
