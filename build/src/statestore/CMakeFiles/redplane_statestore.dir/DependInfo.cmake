
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/statestore/chain_manager.cc" "src/statestore/CMakeFiles/redplane_statestore.dir/chain_manager.cc.o" "gcc" "src/statestore/CMakeFiles/redplane_statestore.dir/chain_manager.cc.o.d"
  "/root/repo/src/statestore/partition.cc" "src/statestore/CMakeFiles/redplane_statestore.dir/partition.cc.o" "gcc" "src/statestore/CMakeFiles/redplane_statestore.dir/partition.cc.o.d"
  "/root/repo/src/statestore/pools.cc" "src/statestore/CMakeFiles/redplane_statestore.dir/pools.cc.o" "gcc" "src/statestore/CMakeFiles/redplane_statestore.dir/pools.cc.o.d"
  "/root/repo/src/statestore/server.cc" "src/statestore/CMakeFiles/redplane_statestore.dir/server.cc.o" "gcc" "src/statestore/CMakeFiles/redplane_statestore.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/redplane_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/redplane_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/redplane_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redplane_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/redplane_dataplane.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
