file(REMOVE_RECURSE
  "libredplane_statestore.a"
)
