file(REMOVE_RECURSE
  "CMakeFiles/redplane_statestore.dir/chain_manager.cc.o"
  "CMakeFiles/redplane_statestore.dir/chain_manager.cc.o.d"
  "CMakeFiles/redplane_statestore.dir/partition.cc.o"
  "CMakeFiles/redplane_statestore.dir/partition.cc.o.d"
  "CMakeFiles/redplane_statestore.dir/pools.cc.o"
  "CMakeFiles/redplane_statestore.dir/pools.cc.o.d"
  "CMakeFiles/redplane_statestore.dir/server.cc.o"
  "CMakeFiles/redplane_statestore.dir/server.cc.o.d"
  "libredplane_statestore.a"
  "libredplane_statestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_statestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
