# Empty dependencies file for redplane_statestore.
# This may be replaced when dependencies are built.
