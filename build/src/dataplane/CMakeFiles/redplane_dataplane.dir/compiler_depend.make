# Empty compiler generated dependencies file for redplane_dataplane.
# This may be replaced when dependencies are built.
