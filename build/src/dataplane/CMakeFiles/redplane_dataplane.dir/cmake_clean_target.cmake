file(REMOVE_RECURSE
  "libredplane_dataplane.a"
)
