file(REMOVE_RECURSE
  "CMakeFiles/redplane_dataplane.dir/control_plane.cc.o"
  "CMakeFiles/redplane_dataplane.dir/control_plane.cc.o.d"
  "CMakeFiles/redplane_dataplane.dir/mirror.cc.o"
  "CMakeFiles/redplane_dataplane.dir/mirror.cc.o.d"
  "CMakeFiles/redplane_dataplane.dir/packet_generator.cc.o"
  "CMakeFiles/redplane_dataplane.dir/packet_generator.cc.o.d"
  "CMakeFiles/redplane_dataplane.dir/pipeline.cc.o"
  "CMakeFiles/redplane_dataplane.dir/pipeline.cc.o.d"
  "CMakeFiles/redplane_dataplane.dir/resources.cc.o"
  "CMakeFiles/redplane_dataplane.dir/resources.cc.o.d"
  "libredplane_dataplane.a"
  "libredplane_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
