
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/control_plane.cc" "src/dataplane/CMakeFiles/redplane_dataplane.dir/control_plane.cc.o" "gcc" "src/dataplane/CMakeFiles/redplane_dataplane.dir/control_plane.cc.o.d"
  "/root/repo/src/dataplane/mirror.cc" "src/dataplane/CMakeFiles/redplane_dataplane.dir/mirror.cc.o" "gcc" "src/dataplane/CMakeFiles/redplane_dataplane.dir/mirror.cc.o.d"
  "/root/repo/src/dataplane/packet_generator.cc" "src/dataplane/CMakeFiles/redplane_dataplane.dir/packet_generator.cc.o" "gcc" "src/dataplane/CMakeFiles/redplane_dataplane.dir/packet_generator.cc.o.d"
  "/root/repo/src/dataplane/pipeline.cc" "src/dataplane/CMakeFiles/redplane_dataplane.dir/pipeline.cc.o" "gcc" "src/dataplane/CMakeFiles/redplane_dataplane.dir/pipeline.cc.o.d"
  "/root/repo/src/dataplane/resources.cc" "src/dataplane/CMakeFiles/redplane_dataplane.dir/resources.cc.o" "gcc" "src/dataplane/CMakeFiles/redplane_dataplane.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/redplane_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/redplane_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redplane_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
