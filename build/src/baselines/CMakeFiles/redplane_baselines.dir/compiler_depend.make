# Empty compiler generated dependencies file for redplane_baselines.
# This may be replaced when dependencies are built.
