file(REMOVE_RECURSE
  "CMakeFiles/redplane_baselines.dir/controller_ft.cc.o"
  "CMakeFiles/redplane_baselines.dir/controller_ft.cc.o.d"
  "CMakeFiles/redplane_baselines.dir/plain_pipeline.cc.o"
  "CMakeFiles/redplane_baselines.dir/plain_pipeline.cc.o.d"
  "CMakeFiles/redplane_baselines.dir/rollback.cc.o"
  "CMakeFiles/redplane_baselines.dir/rollback.cc.o.d"
  "CMakeFiles/redplane_baselines.dir/server_nf.cc.o"
  "CMakeFiles/redplane_baselines.dir/server_nf.cc.o.d"
  "CMakeFiles/redplane_baselines.dir/switch_chain.cc.o"
  "CMakeFiles/redplane_baselines.dir/switch_chain.cc.o.d"
  "libredplane_baselines.a"
  "libredplane_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
