file(REMOVE_RECURSE
  "libredplane_baselines.a"
)
