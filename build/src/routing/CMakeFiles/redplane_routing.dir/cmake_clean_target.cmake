file(REMOVE_RECURSE
  "libredplane_routing.a"
)
