file(REMOVE_RECURSE
  "CMakeFiles/redplane_routing.dir/ecmp.cc.o"
  "CMakeFiles/redplane_routing.dir/ecmp.cc.o.d"
  "CMakeFiles/redplane_routing.dir/failure.cc.o"
  "CMakeFiles/redplane_routing.dir/failure.cc.o.d"
  "CMakeFiles/redplane_routing.dir/topology.cc.o"
  "CMakeFiles/redplane_routing.dir/topology.cc.o.d"
  "libredplane_routing.a"
  "libredplane_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
