
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/ecmp.cc" "src/routing/CMakeFiles/redplane_routing.dir/ecmp.cc.o" "gcc" "src/routing/CMakeFiles/redplane_routing.dir/ecmp.cc.o.d"
  "/root/repo/src/routing/failure.cc" "src/routing/CMakeFiles/redplane_routing.dir/failure.cc.o" "gcc" "src/routing/CMakeFiles/redplane_routing.dir/failure.cc.o.d"
  "/root/repo/src/routing/topology.cc" "src/routing/CMakeFiles/redplane_routing.dir/topology.cc.o" "gcc" "src/routing/CMakeFiles/redplane_routing.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/statestore/CMakeFiles/redplane_statestore.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/redplane_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/redplane_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/redplane_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redplane_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/redplane_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
