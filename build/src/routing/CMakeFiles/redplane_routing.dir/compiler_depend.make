# Empty compiler generated dependencies file for redplane_routing.
# This may be replaced when dependencies are built.
