
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modelcheck/checker.cc" "src/modelcheck/CMakeFiles/redplane_modelcheck.dir/checker.cc.o" "gcc" "src/modelcheck/CMakeFiles/redplane_modelcheck.dir/checker.cc.o.d"
  "/root/repo/src/modelcheck/linearizability.cc" "src/modelcheck/CMakeFiles/redplane_modelcheck.dir/linearizability.cc.o" "gcc" "src/modelcheck/CMakeFiles/redplane_modelcheck.dir/linearizability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/redplane_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redplane_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
