file(REMOVE_RECURSE
  "CMakeFiles/redplane_modelcheck.dir/checker.cc.o"
  "CMakeFiles/redplane_modelcheck.dir/checker.cc.o.d"
  "CMakeFiles/redplane_modelcheck.dir/linearizability.cc.o"
  "CMakeFiles/redplane_modelcheck.dir/linearizability.cc.o.d"
  "libredplane_modelcheck.a"
  "libredplane_modelcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_modelcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
