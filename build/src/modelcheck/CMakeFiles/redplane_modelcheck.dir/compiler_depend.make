# Empty compiler generated dependencies file for redplane_modelcheck.
# This may be replaced when dependencies are built.
