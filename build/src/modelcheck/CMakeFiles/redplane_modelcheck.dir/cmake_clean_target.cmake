file(REMOVE_RECURSE
  "libredplane_modelcheck.a"
)
