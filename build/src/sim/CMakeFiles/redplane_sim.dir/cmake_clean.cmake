file(REMOVE_RECURSE
  "CMakeFiles/redplane_sim.dir/link.cc.o"
  "CMakeFiles/redplane_sim.dir/link.cc.o.d"
  "CMakeFiles/redplane_sim.dir/network.cc.o"
  "CMakeFiles/redplane_sim.dir/network.cc.o.d"
  "CMakeFiles/redplane_sim.dir/node.cc.o"
  "CMakeFiles/redplane_sim.dir/node.cc.o.d"
  "CMakeFiles/redplane_sim.dir/simulator.cc.o"
  "CMakeFiles/redplane_sim.dir/simulator.cc.o.d"
  "libredplane_sim.a"
  "libredplane_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
