# Empty dependencies file for redplane_sim.
# This may be replaced when dependencies are built.
