file(REMOVE_RECURSE
  "libredplane_sim.a"
)
