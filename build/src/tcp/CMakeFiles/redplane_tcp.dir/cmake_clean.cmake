file(REMOVE_RECURSE
  "CMakeFiles/redplane_tcp.dir/tcp.cc.o"
  "CMakeFiles/redplane_tcp.dir/tcp.cc.o.d"
  "libredplane_tcp.a"
  "libredplane_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
