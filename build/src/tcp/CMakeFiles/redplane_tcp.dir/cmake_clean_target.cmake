file(REMOVE_RECURSE
  "libredplane_tcp.a"
)
