# Empty dependencies file for redplane_tcp.
# This may be replaced when dependencies are built.
