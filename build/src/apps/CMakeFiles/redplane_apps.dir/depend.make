# Empty dependencies file for redplane_apps.
# This may be replaced when dependencies are built.
