
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/counter.cc" "src/apps/CMakeFiles/redplane_apps.dir/counter.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/counter.cc.o.d"
  "/root/repo/src/apps/epc_sgw.cc" "src/apps/CMakeFiles/redplane_apps.dir/epc_sgw.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/epc_sgw.cc.o.d"
  "/root/repo/src/apps/firewall.cc" "src/apps/CMakeFiles/redplane_apps.dir/firewall.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/firewall.cc.o.d"
  "/root/repo/src/apps/heavy_hitter.cc" "src/apps/CMakeFiles/redplane_apps.dir/heavy_hitter.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/heavy_hitter.cc.o.d"
  "/root/repo/src/apps/kv_store.cc" "src/apps/CMakeFiles/redplane_apps.dir/kv_store.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/kv_store.cc.o.d"
  "/root/repo/src/apps/load_balancer.cc" "src/apps/CMakeFiles/redplane_apps.dir/load_balancer.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/load_balancer.cc.o.d"
  "/root/repo/src/apps/nat.cc" "src/apps/CMakeFiles/redplane_apps.dir/nat.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/nat.cc.o.d"
  "/root/repo/src/apps/sequencer.cc" "src/apps/CMakeFiles/redplane_apps.dir/sequencer.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/sequencer.cc.o.d"
  "/root/repo/src/apps/sketch.cc" "src/apps/CMakeFiles/redplane_apps.dir/sketch.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/sketch.cc.o.d"
  "/root/repo/src/apps/spreader.cc" "src/apps/CMakeFiles/redplane_apps.dir/spreader.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/spreader.cc.o.d"
  "/root/repo/src/apps/syn_defense.cc" "src/apps/CMakeFiles/redplane_apps.dir/syn_defense.cc.o" "gcc" "src/apps/CMakeFiles/redplane_apps.dir/syn_defense.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/redplane_core.dir/DependInfo.cmake"
  "/root/repo/build/src/statestore/CMakeFiles/redplane_statestore.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/redplane_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/redplane_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redplane_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/redplane_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
