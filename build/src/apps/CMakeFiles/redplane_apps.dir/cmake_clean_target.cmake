file(REMOVE_RECURSE
  "libredplane_apps.a"
)
