file(REMOVE_RECURSE
  "CMakeFiles/redplane_apps.dir/counter.cc.o"
  "CMakeFiles/redplane_apps.dir/counter.cc.o.d"
  "CMakeFiles/redplane_apps.dir/epc_sgw.cc.o"
  "CMakeFiles/redplane_apps.dir/epc_sgw.cc.o.d"
  "CMakeFiles/redplane_apps.dir/firewall.cc.o"
  "CMakeFiles/redplane_apps.dir/firewall.cc.o.d"
  "CMakeFiles/redplane_apps.dir/heavy_hitter.cc.o"
  "CMakeFiles/redplane_apps.dir/heavy_hitter.cc.o.d"
  "CMakeFiles/redplane_apps.dir/kv_store.cc.o"
  "CMakeFiles/redplane_apps.dir/kv_store.cc.o.d"
  "CMakeFiles/redplane_apps.dir/load_balancer.cc.o"
  "CMakeFiles/redplane_apps.dir/load_balancer.cc.o.d"
  "CMakeFiles/redplane_apps.dir/nat.cc.o"
  "CMakeFiles/redplane_apps.dir/nat.cc.o.d"
  "CMakeFiles/redplane_apps.dir/sequencer.cc.o"
  "CMakeFiles/redplane_apps.dir/sequencer.cc.o.d"
  "CMakeFiles/redplane_apps.dir/sketch.cc.o"
  "CMakeFiles/redplane_apps.dir/sketch.cc.o.d"
  "CMakeFiles/redplane_apps.dir/spreader.cc.o"
  "CMakeFiles/redplane_apps.dir/spreader.cc.o.d"
  "CMakeFiles/redplane_apps.dir/syn_defense.cc.o"
  "CMakeFiles/redplane_apps.dir/syn_defense.cc.o.d"
  "libredplane_apps.a"
  "libredplane_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
