# Empty compiler generated dependencies file for redplane_apps.
# This may be replaced when dependencies are built.
