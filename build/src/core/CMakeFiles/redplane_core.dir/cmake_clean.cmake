file(REMOVE_RECURSE
  "CMakeFiles/redplane_core.dir/analytic.cc.o"
  "CMakeFiles/redplane_core.dir/analytic.cc.o.d"
  "CMakeFiles/redplane_core.dir/app.cc.o"
  "CMakeFiles/redplane_core.dir/app.cc.o.d"
  "CMakeFiles/redplane_core.dir/epsilon.cc.o"
  "CMakeFiles/redplane_core.dir/epsilon.cc.o.d"
  "CMakeFiles/redplane_core.dir/flow_table.cc.o"
  "CMakeFiles/redplane_core.dir/flow_table.cc.o.d"
  "CMakeFiles/redplane_core.dir/protocol.cc.o"
  "CMakeFiles/redplane_core.dir/protocol.cc.o.d"
  "CMakeFiles/redplane_core.dir/redplane_switch.cc.o"
  "CMakeFiles/redplane_core.dir/redplane_switch.cc.o.d"
  "libredplane_core.a"
  "libredplane_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
