file(REMOVE_RECURSE
  "libredplane_core.a"
)
