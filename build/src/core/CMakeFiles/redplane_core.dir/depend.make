# Empty dependencies file for redplane_core.
# This may be replaced when dependencies are built.
