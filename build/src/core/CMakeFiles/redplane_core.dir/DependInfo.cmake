
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic.cc" "src/core/CMakeFiles/redplane_core.dir/analytic.cc.o" "gcc" "src/core/CMakeFiles/redplane_core.dir/analytic.cc.o.d"
  "/root/repo/src/core/app.cc" "src/core/CMakeFiles/redplane_core.dir/app.cc.o" "gcc" "src/core/CMakeFiles/redplane_core.dir/app.cc.o.d"
  "/root/repo/src/core/epsilon.cc" "src/core/CMakeFiles/redplane_core.dir/epsilon.cc.o" "gcc" "src/core/CMakeFiles/redplane_core.dir/epsilon.cc.o.d"
  "/root/repo/src/core/flow_table.cc" "src/core/CMakeFiles/redplane_core.dir/flow_table.cc.o" "gcc" "src/core/CMakeFiles/redplane_core.dir/flow_table.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/core/CMakeFiles/redplane_core.dir/protocol.cc.o" "gcc" "src/core/CMakeFiles/redplane_core.dir/protocol.cc.o.d"
  "/root/repo/src/core/redplane_switch.cc" "src/core/CMakeFiles/redplane_core.dir/redplane_switch.cc.o" "gcc" "src/core/CMakeFiles/redplane_core.dir/redplane_switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/redplane_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/redplane_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/redplane_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redplane_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
