file(REMOVE_RECURSE
  "CMakeFiles/redplane_common.dir/hash.cc.o"
  "CMakeFiles/redplane_common.dir/hash.cc.o.d"
  "CMakeFiles/redplane_common.dir/logging.cc.o"
  "CMakeFiles/redplane_common.dir/logging.cc.o.d"
  "CMakeFiles/redplane_common.dir/rng.cc.o"
  "CMakeFiles/redplane_common.dir/rng.cc.o.d"
  "CMakeFiles/redplane_common.dir/stats.cc.o"
  "CMakeFiles/redplane_common.dir/stats.cc.o.d"
  "libredplane_common.a"
  "libredplane_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
