file(REMOVE_RECURSE
  "libredplane_common.a"
)
