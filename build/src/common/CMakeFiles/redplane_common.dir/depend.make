# Empty dependencies file for redplane_common.
# This may be replaced when dependencies are built.
