# Empty dependencies file for redplane_net.
# This may be replaced when dependencies are built.
