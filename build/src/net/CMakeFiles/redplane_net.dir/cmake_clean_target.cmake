file(REMOVE_RECURSE
  "libredplane_net.a"
)
