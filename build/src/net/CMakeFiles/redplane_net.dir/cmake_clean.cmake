file(REMOVE_RECURSE
  "CMakeFiles/redplane_net.dir/codec.cc.o"
  "CMakeFiles/redplane_net.dir/codec.cc.o.d"
  "CMakeFiles/redplane_net.dir/flow.cc.o"
  "CMakeFiles/redplane_net.dir/flow.cc.o.d"
  "CMakeFiles/redplane_net.dir/headers.cc.o"
  "CMakeFiles/redplane_net.dir/headers.cc.o.d"
  "CMakeFiles/redplane_net.dir/packet.cc.o"
  "CMakeFiles/redplane_net.dir/packet.cc.o.d"
  "libredplane_net.a"
  "libredplane_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redplane_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
