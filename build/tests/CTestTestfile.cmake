# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/statestore_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/modelcheck_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/analytic_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/chain_manager_test[1]_include.cmake")
include("/root/repo/build/tests/codec_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/multishard_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/extra_apps_test[1]_include.cmake")
