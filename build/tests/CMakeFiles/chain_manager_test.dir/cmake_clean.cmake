file(REMOVE_RECURSE
  "CMakeFiles/chain_manager_test.dir/chain_manager_test.cc.o"
  "CMakeFiles/chain_manager_test.dir/chain_manager_test.cc.o.d"
  "chain_manager_test"
  "chain_manager_test.pdb"
  "chain_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
