# Empty dependencies file for chain_manager_test.
# This may be replaced when dependencies are built.
