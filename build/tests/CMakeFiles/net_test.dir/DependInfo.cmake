
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/net_test.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/redplane_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/modelcheck/CMakeFiles/redplane_modelcheck.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/redplane_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/redplane_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/redplane_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/redplane_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/statestore/CMakeFiles/redplane_statestore.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/redplane_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/redplane_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/redplane_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/redplane_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redplane_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
