# Empty compiler generated dependencies file for multishard_test.
# This may be replaced when dependencies are built.
