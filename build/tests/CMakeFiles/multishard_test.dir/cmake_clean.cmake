file(REMOVE_RECURSE
  "CMakeFiles/multishard_test.dir/multishard_test.cc.o"
  "CMakeFiles/multishard_test.dir/multishard_test.cc.o.d"
  "multishard_test"
  "multishard_test.pdb"
  "multishard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multishard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
