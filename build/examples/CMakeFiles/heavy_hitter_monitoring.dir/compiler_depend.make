# Empty compiler generated dependencies file for heavy_hitter_monitoring.
# This may be replaced when dependencies are built.
