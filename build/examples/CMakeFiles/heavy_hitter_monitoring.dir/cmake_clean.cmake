file(REMOVE_RECURSE
  "CMakeFiles/heavy_hitter_monitoring.dir/heavy_hitter_monitoring.cpp.o"
  "CMakeFiles/heavy_hitter_monitoring.dir/heavy_hitter_monitoring.cpp.o.d"
  "heavy_hitter_monitoring"
  "heavy_hitter_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heavy_hitter_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
