file(REMOVE_RECURSE
  "CMakeFiles/kv_store_scaling.dir/kv_store_scaling.cpp.o"
  "CMakeFiles/kv_store_scaling.dir/kv_store_scaling.cpp.o.d"
  "kv_store_scaling"
  "kv_store_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
