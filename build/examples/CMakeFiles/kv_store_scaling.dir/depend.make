# Empty dependencies file for kv_store_scaling.
# This may be replaced when dependencies are built.
