file(REMOVE_RECURSE
  "CMakeFiles/nat_failover.dir/nat_failover.cpp.o"
  "CMakeFiles/nat_failover.dir/nat_failover.cpp.o.d"
  "nat_failover"
  "nat_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
