# Empty compiler generated dependencies file for nat_failover.
# This may be replaced when dependencies are built.
