file(REMOVE_RECURSE
  "CMakeFiles/epc_sgw_acceleration.dir/epc_sgw_acceleration.cpp.o"
  "CMakeFiles/epc_sgw_acceleration.dir/epc_sgw_acceleration.cpp.o.d"
  "epc_sgw_acceleration"
  "epc_sgw_acceleration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epc_sgw_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
