# Empty dependencies file for epc_sgw_acceleration.
# This may be replaced when dependencies are built.
