// Fuzz-campaign schedules (DESIGN.md §15).
//
// A Schedule is the serializable unit the adversarial engine works in: a
// seeded composition of fault events (crashes, link cuts, gray failures,
// ECMP re-salts) and adversarial load phases (flash crowds, lease-churn
// bursts, SYN floods) laid out on a timeline relative to the run's fault
// epoch.  The generator draws one from a seed; the runner executes it
// against any consistency mode; the minimizer deletes events from it; and
// the JSON round-trip makes every failing schedule a replayable artifact
// (tests/schedules/*.json are minimized repros committed as regressions).
//
// All times are relative to the fault epoch t0 (end of traffic warmup), so
// a schedule is meaningful independent of warmup length.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace redplane::campaign {

enum class FaultKind : std::uint8_t {
  kSwitchCrash = 0,  ///< fail an aggregation switch (target picks which)
  kLinkCut,          ///< cut the core<->agg fabric link
  kStoreCrash,       ///< kill a store chain replica (target: chain index)
  kSlowShard,        ///< gray: store service time x magnitude
  kAsymLoss,         ///< gray: one-direction loss at rate `magnitude`
  kPartition,        ///< gray: one-way blackhole (loss 1.0)
  kCapacity,         ///< gray: store admits at most `magnitude` flows
  kEcmpRehash,       ///< re-salt ECMP so flows land on the other switch
};
inline constexpr int kNumFaultKinds = static_cast<int>(FaultKind::kEcmpRehash) + 1;

const char* FaultKindName(FaultKind kind);
std::optional<FaultKind> FaultKindFromName(std::string_view name);

struct FaultEvent {
  FaultKind kind = FaultKind::kSwitchCrash;
  /// Injection time relative to the fault epoch t0.
  SimDuration at = 0;
  /// Heal time relative to t0; negative = never heals inside the run.
  SimDuration clear_at = -1;
  /// Kind-specific magnitude: loss rate, service-time factor, flow cap,
  /// or ECMP salt.
  double magnitude = 0.0;
  /// Kind-specific target index (agg switch, link, chain position).
  int target = 0;
};

enum class LoadKind : std::uint8_t {
  kFlashCrowd = 0,  ///< burst of brand-new flows (store Init pile-up)
  kLeaseChurn,      ///< persistent flows + ECMP re-salts between bursts
  kSynFlood,        ///< spoofed-source SYNs, one flow-table entry each
};
inline constexpr int kNumLoadKinds = static_cast<int>(LoadKind::kSynFlood) + 1;

const char* LoadKindName(LoadKind kind);
std::optional<LoadKind> LoadKindFromName(std::string_view name);

struct LoadPhase {
  LoadKind kind = LoadKind::kFlashCrowd;
  /// Phase start relative to t0.
  SimDuration at = 0;
  SimDuration duration = Milliseconds(5);
  /// Kind-specific scale: flows for a crowd/churn phase, packets for a
  /// SYN flood.
  std::size_t intensity = 16;
};

struct Schedule {
  /// Drives both the testbed RNG and the load-phase generators; the
  /// (seed, schedule) pair replays bit-identically (trace_hash equal).
  std::uint64_t seed = 42;
  /// Base-traffic rounds (same meaning as the legacy --packets flag).
  int packets_per_flow = 40;
  std::vector<FaultEvent> faults;
  std::vector<LoadPhase> loads;

  bool Empty() const { return faults.empty() && loads.empty(); }
  std::size_t NumEvents() const { return faults.size() + loads.size(); }
};

/// Serializes to a stable, diff-friendly JSON document.
std::string ToJson(const Schedule& schedule);

/// Parses a schedule back; nullopt on syntax errors, unknown kinds, or
/// missing required members.  ToJson round-trips exactly.
std::optional<Schedule> ScheduleFromJson(std::string_view text);

/// Scenario-class focus for the generator: which corner of the fault+load
/// space a fuzz run concentrates on.  kMixed draws from everything.
enum class FuzzClass : std::uint8_t {
  kMixed = 0,
  kGray,      ///< slow shard / asymmetric loss / partial partition
  kChurn,     ///< ECMP re-salts + lease-churn bursts
  kFlash,     ///< flash crowds + a crash mid-crowd
  kCapacity,  ///< store flow-cap pressure + rehash
};

const char* FuzzClassName(FuzzClass c);
std::optional<FuzzClass> FuzzClassFromName(std::string_view name);

struct GeneratorConfig {
  FuzzClass focus = FuzzClass::kMixed;
  int packets_per_flow = 40;
};

/// Draws a well-formed random schedule: every fault gets a clear time
/// inside the run, magnitudes stay inside survivable bounds (slow-shard
/// factor <= 20, capacity cap >= 8 so established flows keep flowing),
/// and the timeline leaves the drain tail intact so delivered > 0 holds
/// on a correct implementation.
Schedule GenerateSchedule(std::uint64_t seed, const GeneratorConfig& config = {});

}  // namespace redplane::campaign
