// Delta-debugging schedule minimizer (DESIGN.md §15).
//
// Given a schedule whose run violates an invariant, shrink it to a 1-minimal
// causal slice: a sub-schedule that still violates, from which removing any
// single event makes the violation disappear.  The algorithm is Zeller's
// ddmin over the schedule's combined (fault + load) event list; the oracle
// is a re-run of the candidate schedule under the same seed and mode.
//
// ddmin deletes arbitrary event subsets, so it leans on two well-formedness
// properties the rest of this PR establishes: the FailureInjector is
// refcount-idempotent (a heal whose cut was deleted is a no-op; one of two
// overlapping cuts can vanish without resurrecting the other), and every
// event is self-contained (its clear time travels with it).
#pragma once

#include <functional>

#include "tools/campaign/schedule.h"

namespace redplane::campaign {

/// Returns true iff the candidate schedule still reproduces the failure.
/// Typically a lambda around RunSchedule(...).Clean() == false.
using ScheduleOracle = std::function<bool(const Schedule&)>;

struct MinimizeResult {
  Schedule schedule;    ///< the minimized repro (== input if nothing shrank)
  int probes = 0;       ///< oracle invocations spent
  bool one_minimal = false;  ///< ddmin ran to completion (vs. probe budget)
};

/// Shrinks `failing` with ddmin.  `oracle(failing)` is assumed true (the
/// caller observed the violation); the result's schedule also satisfies the
/// oracle.  At most `max_probes` oracle calls are spent — each is a full
/// simulation, so the default keeps minimization under a minute.
MinimizeResult MinimizeSchedule(const Schedule& failing,
                                const ScheduleOracle& oracle,
                                int max_probes = 64);

}  // namespace redplane::campaign
