#include "tools/campaign/schedule.h"

#include <sstream>

#include "common/rng.h"
#include "obs/json.h"

namespace redplane::campaign {

namespace {

constexpr const char* kFaultNames[kNumFaultKinds] = {
    "switch_crash", "link_cut",  "store_crash", "slow_shard",
    "asym_loss",    "partition", "capacity",    "ecmp_rehash",
};

constexpr const char* kLoadNames[kNumLoadKinds] = {
    "flash_crowd",
    "lease_churn",
    "syn_flood",
};

}  // namespace

const char* FaultKindName(FaultKind kind) {
  const int i = static_cast<int>(kind);
  return i >= 0 && i < kNumFaultKinds ? kFaultNames[i] : "unknown";
}

std::optional<FaultKind> FaultKindFromName(std::string_view name) {
  for (int i = 0; i < kNumFaultKinds; ++i) {
    if (name == kFaultNames[i]) return static_cast<FaultKind>(i);
  }
  return std::nullopt;
}

const char* LoadKindName(LoadKind kind) {
  const int i = static_cast<int>(kind);
  return i >= 0 && i < kNumLoadKinds ? kLoadNames[i] : "unknown";
}

std::optional<LoadKind> LoadKindFromName(std::string_view name) {
  for (int i = 0; i < kNumLoadKinds; ++i) {
    if (name == kLoadNames[i]) return static_cast<LoadKind>(i);
  }
  return std::nullopt;
}

const char* FuzzClassName(FuzzClass c) {
  switch (c) {
    case FuzzClass::kMixed: return "mixed";
    case FuzzClass::kGray: return "gray";
    case FuzzClass::kChurn: return "churn";
    case FuzzClass::kFlash: return "flash";
    case FuzzClass::kCapacity: return "capacity";
  }
  return "unknown";
}

std::optional<FuzzClass> FuzzClassFromName(std::string_view name) {
  for (const FuzzClass c : {FuzzClass::kMixed, FuzzClass::kGray,
                            FuzzClass::kChurn, FuzzClass::kFlash,
                            FuzzClass::kCapacity}) {
    if (name == FuzzClassName(c)) return c;
  }
  return std::nullopt;
}

std::string ToJson(const Schedule& schedule) {
  std::ostringstream os;
  os << "{\"seed\": " << schedule.seed
     << ", \"packets_per_flow\": " << schedule.packets_per_flow << ",\n";
  os << " \"faults\": [";
  for (std::size_t i = 0; i < schedule.faults.size(); ++i) {
    const FaultEvent& ev = schedule.faults[i];
    os << (i ? ",\n   " : "\n   ") << "{\"kind\": \"" << FaultKindName(ev.kind)
       << "\", \"at_ns\": " << ev.at << ", \"clear_at_ns\": " << ev.clear_at
       << ", \"magnitude\": " << obs::JsonNumber(ev.magnitude)
       << ", \"target\": " << ev.target << "}";
  }
  os << (schedule.faults.empty() ? "]" : "\n ]") << ",\n";
  os << " \"loads\": [";
  for (std::size_t i = 0; i < schedule.loads.size(); ++i) {
    const LoadPhase& ph = schedule.loads[i];
    os << (i ? ",\n   " : "\n   ") << "{\"kind\": \"" << LoadKindName(ph.kind)
       << "\", \"at_ns\": " << ph.at << ", \"duration_ns\": " << ph.duration
       << ", \"intensity\": " << ph.intensity << "}";
  }
  os << (schedule.loads.empty() ? "]" : "\n ]") << "}\n";
  return os.str();
}

std::optional<Schedule> ScheduleFromJson(std::string_view text) {
  const std::optional<obs::JsonValue> doc = obs::ParseJson(text);
  if (!doc.has_value() || !doc->IsObject()) return std::nullopt;
  Schedule sched;
  sched.seed = static_cast<std::uint64_t>(doc->NumberOr("seed", 42));
  sched.packets_per_flow =
      static_cast<int>(doc->NumberOr("packets_per_flow", 40));
  if (sched.packets_per_flow < 1) return std::nullopt;

  const obs::JsonValue* faults = doc->Find("faults");
  if (faults != nullptr) {
    if (!faults->IsArray()) return std::nullopt;
    for (const obs::JsonValue& v : faults->array) {
      if (!v.IsObject()) return std::nullopt;
      const auto kind = FaultKindFromName(v.StringOr("kind", ""));
      if (!kind.has_value()) return std::nullopt;
      FaultEvent ev;
      ev.kind = *kind;
      ev.at = static_cast<SimDuration>(v.NumberOr("at_ns", 0));
      ev.clear_at = static_cast<SimDuration>(v.NumberOr("clear_at_ns", -1));
      ev.magnitude = v.NumberOr("magnitude", 0.0);
      ev.target = static_cast<int>(v.NumberOr("target", 0));
      if (ev.at < 0) return std::nullopt;
      sched.faults.push_back(ev);
    }
  }
  const obs::JsonValue* loads = doc->Find("loads");
  if (loads != nullptr) {
    if (!loads->IsArray()) return std::nullopt;
    for (const obs::JsonValue& v : loads->array) {
      if (!v.IsObject()) return std::nullopt;
      const auto kind = LoadKindFromName(v.StringOr("kind", ""));
      if (!kind.has_value()) return std::nullopt;
      LoadPhase ph;
      ph.kind = *kind;
      ph.at = static_cast<SimDuration>(v.NumberOr("at_ns", 0));
      ph.duration = static_cast<SimDuration>(
          v.NumberOr("duration_ns", Milliseconds(5)));
      ph.intensity = static_cast<std::size_t>(v.NumberOr("intensity", 16));
      if (ph.at < 0 || ph.duration <= 0 || ph.intensity == 0) {
        return std::nullopt;
      }
      sched.loads.push_back(ph);
    }
  }
  return sched;
}

namespace {

/// One random fault of `kind` with a well-formed [at, clear_at) window.
FaultEvent DrawFault(Rng& rng, FaultKind kind) {
  FaultEvent ev;
  ev.kind = kind;
  // Inject inside [2 ms, 40 ms) after t0 and always heal before 70 ms so
  // the drain tail (150 ms of horizon) sees a recovered system.
  ev.at = Milliseconds(2) + static_cast<SimDuration>(
                                rng.NextBounded(Milliseconds(38)));
  ev.clear_at = ev.at + Milliseconds(5) +
                static_cast<SimDuration>(rng.NextBounded(Milliseconds(25)));
  ev.target = static_cast<int>(rng.NextBounded(2));
  switch (kind) {
    case FaultKind::kSlowShard:
      // Factor in [2, 20]: slow enough to matter against the lease period,
      // bounded so the store still drains its queue inside the run.
      ev.magnitude = 2.0 + static_cast<double>(rng.NextBounded(19));
      break;
    case FaultKind::kAsymLoss:
      ev.magnitude = 0.2 + 0.06 * static_cast<double>(rng.NextBounded(11));
      break;
    case FaultKind::kPartition:
      ev.magnitude = 1.0;
      break;
    case FaultKind::kCapacity:
      // Cap >= 8: the 4 established base flows stay admitted; the pressure
      // lands on load-phase newcomers.
      ev.magnitude = static_cast<double>(8 + rng.NextBounded(25));
      break;
    case FaultKind::kEcmpRehash:
      ev.magnitude = static_cast<double>(1 + rng.NextBounded(1u << 16));
      break;
    case FaultKind::kSwitchCrash:
    case FaultKind::kLinkCut:
    case FaultKind::kStoreCrash:
      break;
  }
  return ev;
}

LoadPhase DrawLoad(Rng& rng, LoadKind kind) {
  LoadPhase ph;
  ph.kind = kind;
  ph.at = static_cast<SimDuration>(rng.NextBounded(Milliseconds(30)));
  switch (kind) {
    case LoadKind::kFlashCrowd:
      ph.duration = Milliseconds(3) + static_cast<SimDuration>(
                                          rng.NextBounded(Milliseconds(5)));
      ph.intensity = 8 + rng.NextBounded(25);
      break;
    case LoadKind::kLeaseChurn:
      ph.duration = Milliseconds(12) + static_cast<SimDuration>(
                                           rng.NextBounded(Milliseconds(20)));
      ph.intensity = 2 + rng.NextBounded(4);
      break;
    case LoadKind::kSynFlood:
      ph.duration = Milliseconds(2) + static_cast<SimDuration>(
                                          rng.NextBounded(Milliseconds(4)));
      ph.intensity = 64 + rng.NextBounded(129);
      break;
  }
  return ph;
}

}  // namespace

Schedule GenerateSchedule(std::uint64_t seed, const GeneratorConfig& config) {
  // Fork a dedicated stream so the draw count here never perturbs the
  // testbed RNG the runner seeds with the same value.
  Rng base(seed);
  Rng rng = base.Fork(0x5eed5c4ed);
  Schedule sched;
  sched.seed = seed;
  sched.packets_per_flow = config.packets_per_flow;

  switch (config.focus) {
    case FuzzClass::kGray: {
      const FaultKind gray[] = {FaultKind::kSlowShard, FaultKind::kAsymLoss,
                                FaultKind::kPartition};
      const std::size_t n = 1 + rng.NextBounded(3);
      for (std::size_t i = 0; i < n; ++i) {
        sched.faults.push_back(DrawFault(rng, gray[rng.NextBounded(3)]));
      }
      if (rng.Bernoulli(0.5)) {
        sched.loads.push_back(DrawLoad(rng, LoadKind::kFlashCrowd));
      }
      break;
    }
    case FuzzClass::kChurn: {
      const std::size_t n = 2 + rng.NextBounded(3);
      for (std::size_t i = 0; i < n; ++i) {
        sched.faults.push_back(DrawFault(rng, FaultKind::kEcmpRehash));
      }
      sched.loads.push_back(DrawLoad(rng, LoadKind::kLeaseChurn));
      break;
    }
    case FuzzClass::kFlash: {
      // The class is "flash crowds + a crash mid-crowd" — the crash is what
      // forces failover replay under admission pile-up, so it is always
      // drawn (a crowd alone never reaches the replay path, and the class
      // mutation self-test in CI depends on reaching it from any seed).
      sched.loads.push_back(DrawLoad(rng, LoadKind::kFlashCrowd));
      sched.faults.push_back(DrawFault(rng, FaultKind::kSwitchCrash));
      if (rng.Bernoulli(0.4)) {
        sched.loads.push_back(DrawLoad(rng, LoadKind::kSynFlood));
      }
      break;
    }
    case FuzzClass::kCapacity: {
      sched.faults.push_back(DrawFault(rng, FaultKind::kCapacity));
      sched.loads.push_back(DrawLoad(rng, LoadKind::kFlashCrowd));
      if (rng.Bernoulli(0.5)) {
        sched.faults.push_back(DrawFault(rng, FaultKind::kEcmpRehash));
      }
      break;
    }
    case FuzzClass::kMixed: {
      const std::size_t num_faults = 1 + rng.NextBounded(3);
      for (std::size_t i = 0; i < num_faults; ++i) {
        sched.faults.push_back(DrawFault(
            rng, static_cast<FaultKind>(rng.NextBounded(kNumFaultKinds))));
      }
      const std::size_t num_loads = rng.NextBounded(3);
      for (std::size_t i = 0; i < num_loads; ++i) {
        sched.loads.push_back(DrawLoad(
            rng, static_cast<LoadKind>(rng.NextBounded(kNumLoadKinds))));
      }
      break;
    }
  }
  return sched;
}

}  // namespace redplane::campaign
