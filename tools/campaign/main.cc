// Fault-campaign runner: sweeps seeds × failure scenarios with the online
// protocol auditor armed, and reports what it saw.
//
// Each run builds the paper's testbed (Appendix D), deploys a counter app
// under RedPlane on both aggregation switches, drives traffic from an
// external host while injecting faults, and checks the protocol live with
// src/audit: single lease owner, sequence monotonicity, chain-commit-
// before-ack, ε staleness, and per-flow counter linearizability.
//
// Three operating modes:
//
//   legacy sweep (default) — the four named scenarios × seeds, with the
//   recovery-forensics gate (exactly one phase-consistent episode per
//   fault) and the mode-aware --mutate self-tests (DESIGN.md §14).
//
//   --fuzz=N — the adversarial scenario engine (DESIGN.md §15): N seeded
//   random schedules of fault events (crashes, link cuts, gray failures,
//   ECMP re-salts) composed with adversarial load phases (flash crowds,
//   lease churn, SYN floods), each executed with the full oracle stack
//   armed.  On a violation the schedule is delta-debugged down to a
//   1-minimal causal slice and written as a replayable JSON artifact.
//   --fuzz-class picks a scenario-class focus; --mutate turns a fuzz run
//   into a detector self-test (the expected monitor must fire somewhere in
//   the batch).
//
//   --schedule=FILE — replay one schedule JSON (e.g. a minimized repro
//   from tests/schedules/); prints the deterministic trace hash, and with
//   --expect-hash=H fails if the replay diverges.
//
// Exit codes: 0 = clean (or, with --mutate, the expected monitor fired — or
// the auditor correctly stayed silent where the mutation is legal);
// 1 = invariant violation on a clean run (or a monitor fired on a legal
// mutation, or a replay hash mismatch); 2 = a --mutate run where the
// expected monitor stayed silent (the oracle is broken).
//
// Usage:
//   campaign [--seeds=5] [--scenario=all] [--out-dir=campaign_out]
//            [--packets=120] [--mutate=none|lease|chain|seq|stale|merge]
//            [--consistency=single|replicated|mergeable]
//            [--batching=<coalesce delay in us; 0 = off>]
//            [--fuzz=N] [--fuzz-class=mixed|gray|churn|flash|capacity]
//            [--fuzz-seed=BASE] [--no-minimize]
//            [--schedule=FILE] [--expect-hash=H]
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/campaign/minimizer.h"
#include "tools/campaign/runner.h"
#include "tools/campaign/schedule.h"

namespace redplane::campaign {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Expectation {
  std::string monitor;   // monitor that must fire, empty = none
  bool silence = false;  // mutation is legal under this mode
};

/// Mode-aware mutation expectations (DESIGN.md §14): which monitor must
/// fire, or whether the mutation is legal under this mode (expected
/// silence).  Stale reads are the mergeable mode's normal operation; merge
/// overwrites are unreachable without merge traffic; and lease/seq/chain
/// corruptions have nothing to corrupt on the lease-free mergeable path.
Expectation ExpectationFor(const MutationSpec& mut, core::ConsistencyMode mode) {
  const bool mergeable = mode == core::ConsistencyMode::kMergeable;
  Expectation ex;
  if (mut.lease) ex.monitor = "single_owner";
  if (mut.seq) ex.monitor = "seq_monotonic";
  if (mut.chain) ex.monitor = "chain_commit";
  if ((mut.lease || mut.seq || mut.chain) && mergeable) ex.silence = true;
  if (mut.stale) {
    ex.monitor = "bounded_staleness";
    ex.silence = mode != core::ConsistencyMode::kReplicatedRead;
  }
  if (mut.merge) {
    ex.monitor = "merge_convergence";
    ex.silence = !mergeable;
  }
  return ex;
}

std::size_t TotalViolations(const RunResult& r) {
  return r.violations.size() + r.lin_failures + r.oracle_failures;
}

int RunFuzz(int fuzz_runs, FuzzClass fuzz_class, std::uint64_t fuzz_seed,
            int packets, core::ConsistencyMode mode, const MutationSpec& mut,
            const std::string& consistency, const std::string& mutate,
            const std::string& out_dir, bool minimize) {
  GeneratorConfig gen_cfg;
  gen_cfg.focus = fuzz_class;
  gen_cfg.packets_per_flow = packets;
  const Expectation ex = ExpectationFor(mut, mode);

  std::vector<RunResult> runs;
  std::size_t expected_fired = 0;
  int first_bad = -1;
  Schedule first_bad_schedule;
  for (int i = 0; i < fuzz_runs; ++i) {
    const std::uint64_t seed = fuzz_seed + static_cast<std::uint64_t>(i);
    const Schedule sched = GenerateSchedule(seed, gen_cfg);
    const std::string label =
        std::string("fuzz_") + FuzzClassName(fuzz_class) + "_" +
        std::to_string(i);
    std::cout << "[campaign] fuzz " << i + 1 << "/" << fuzz_runs
              << " seed=" << seed << " class=" << FuzzClassName(fuzz_class)
              << " events=" << sched.NumEvents()
              << " consistency=" << consistency << " ..." << std::flush;
    RunResult r = RunSchedule(sched, mode, mut, out_dir, label);
    std::cout << " sent=" << r.sent << " delivered=" << r.delivered
              << " violations=" << TotalViolations(r)
              << " hash=" << r.trace_hash << "\n";
    for (const ViolationOut& v : r.violations) {
      if (v.monitor == ex.monitor) ++expected_fired;
    }
    if (!r.Clean() && first_bad < 0) {
      first_bad = i;
      first_bad_schedule = sched;
    }
    runs.push_back(std::move(r));
  }

  std::filesystem::create_directories(out_dir);
  {
    std::ofstream json(out_dir + "/report.json");
    WriteJsonReport(json, runs, mode, mut);
    std::ofstream md(out_dir + "/report.md");
    WriteMarkdownReport(md, runs);
  }

  if (mut.any()) {
    std::size_t violations = 0;
    for (const RunResult& r : runs) violations += TotalViolations(r);
    if (ex.silence) {
      if (violations > 0) {
        std::cerr << "[campaign] FAIL: mutation '" << mutate
                  << "' is legal under --consistency=" << consistency
                  << " but the fuzz batch reported " << violations
                  << " violation(s)\n";
        return 1;
      }
      std::cout << "[campaign] OK: mutation '" << mutate
                << "' is legal under --consistency=" << consistency
                << "; auditor stayed silent across " << fuzz_runs
                << " fuzz schedules\n";
      return 0;
    }
    // Self-test: the seeded mutation must be caught somewhere in the batch.
    // The legacy three keep the looser contract (any violation counts: a
    // seq corruption may surface first as a linearizability failure).
    const bool legacy = mut.lease || mut.seq || mut.chain;
    if (expected_fired == 0 && !(legacy && violations > 0)) {
      std::cerr << "[campaign] FAIL: mutation '" << mutate << "' active but "
                << ex.monitor << " stayed silent across " << fuzz_runs
                << " fuzz schedules\n";
      return 2;
    }
    std::cout << "[campaign] OK: mutation detected under fuzz ("
              << violations << " violation(s), " << expected_fired << " from "
              << ex.monitor << ")\n";
    return 0;
  }

  if (first_bad < 0) {
    std::cout << "[campaign] OK: " << fuzz_runs << " fuzz schedule(s) clean "
              << "under --consistency=" << consistency << "\n";
    return 0;
  }

  // A clean-run violation: shrink the schedule to its causal slice and ship
  // it as a replayable artifact.
  std::cerr << "[campaign] FAIL: fuzz schedule " << first_bad << " (seed "
            << first_bad_schedule.seed << ") violated invariants\n";
  const std::string full_path =
      out_dir + "/failing_" + std::to_string(first_bad_schedule.seed) +
      ".schedule.json";
  std::ofstream(full_path) << ToJson(first_bad_schedule);
  if (minimize) {
    const std::string probe_dir = out_dir + "/minimize_probes";
    int probe_no = 0;
    auto oracle = [&](const Schedule& candidate) {
      const RunResult r = RunSchedule(candidate, mode, mut, probe_dir,
                                      "probe_" + std::to_string(probe_no++));
      return !r.Clean();
    };
    const MinimizeResult min = MinimizeSchedule(first_bad_schedule, oracle);
    const std::string min_path =
        out_dir + "/minimized_" + std::to_string(first_bad_schedule.seed) +
        ".schedule.json";
    std::ofstream(min_path) << ToJson(min.schedule);
    std::cerr << "[campaign] minimized " << first_bad_schedule.NumEvents()
              << " -> " << min.schedule.NumEvents() << " events in "
              << min.probes << " probes"
              << (min.one_minimal ? " (1-minimal)" : " (probe budget hit)")
              << "; repro: " << min_path << "\n";
  } else {
    std::cerr << "[campaign] repro: " << full_path << "\n";
  }
  return 1;
}

int RunReplay(const std::string& schedule_path, core::ConsistencyMode mode,
              const MutationSpec& mut, const std::string& out_dir,
              const std::string& expect_hash) {
  const std::string text = ReadFile(schedule_path);
  if (text.empty()) {
    std::cerr << "cannot read schedule: " << schedule_path << "\n";
    return 64;
  }
  const std::optional<Schedule> sched = ScheduleFromJson(text);
  if (!sched.has_value()) {
    std::cerr << "malformed schedule JSON: " << schedule_path << "\n";
    return 64;
  }
  const std::string label =
      "replay_" + std::filesystem::path(schedule_path).stem().string();
  const RunResult r = RunSchedule(*sched, mode, mut, out_dir, label);
  std::cout << "[campaign] replay " << schedule_path << " seed=" << sched->seed
            << " sent=" << r.sent << " delivered=" << r.delivered
            << " violations=" << TotalViolations(r)
            << " trace_hash=" << r.trace_hash << "\n";
  if (!expect_hash.empty() &&
      expect_hash != std::to_string(r.trace_hash)) {
    std::cerr << "[campaign] FAIL: replay hash " << r.trace_hash
              << " != expected " << expect_hash << " (nondeterminism)\n";
    return 1;
  }
  if (!r.Clean()) {
    std::cerr << "[campaign] FAIL: replayed schedule still violates ("
              << TotalViolations(r) << " violation(s))\n";
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  int seeds = 5;
  int packets = 120;
  int batching_us = 0;
  int fuzz_runs = 0;
  std::uint64_t fuzz_seed = 1000;
  bool minimize = true;
  std::string out_dir = "campaign_out";
  std::string scenario_filter = "all";
  std::string mutate = "none";
  std::string consistency = "single";
  std::string fuzz_class_name = "mixed";
  std::string schedule_path;
  std::string expect_hash;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--seeds=")) {
      seeds = std::max(1, std::atoi(v));
    } else if (const char* v = value("--packets=")) {
      packets = std::max(10, std::atoi(v));
    } else if (const char* v = value("--out-dir=")) {
      out_dir = v;
    } else if (const char* v = value("--scenario=")) {
      scenario_filter = v;
    } else if (const char* v = value("--mutate=")) {
      mutate = v;
    } else if (const char* v = value("--consistency=")) {
      consistency = v;
    } else if (const char* v = value("--batching=")) {
      batching_us = std::max(0, std::atoi(v));
    } else if (const char* v = value("--fuzz=")) {
      fuzz_runs = std::max(1, std::atoi(v));
    } else if (const char* v = value("--fuzz-class=")) {
      fuzz_class_name = v;
    } else if (const char* v = value("--fuzz-seed=")) {
      fuzz_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-minimize") {
      minimize = false;
    } else if (const char* v = value("--schedule=")) {
      schedule_path = v;
    } else if (const char* v = value("--expect-hash=")) {
      expect_hash = v;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 64;
    }
  }

  MutationSpec mut;
  if (mutate == "lease") {
    mut.lease = true;
  } else if (mutate == "seq") {
    mut.seq = true;
  } else if (mutate == "chain") {
    mut.chain = true;
  } else if (mutate == "stale") {
    mut.stale = true;
  } else if (mutate == "merge") {
    mut.merge = true;
  } else if (mutate != "none") {
    std::cerr << "unknown --mutate mode: " << mutate << "\n";
    return 64;
  }

  core::ConsistencyMode mode = core::ConsistencyMode::kSingleOwner;
  if (consistency == "replicated") {
    mode = core::ConsistencyMode::kReplicatedRead;
  } else if (consistency == "mergeable") {
    mode = core::ConsistencyMode::kMergeable;
  } else if (consistency != "single") {
    std::cerr << "unknown --consistency mode: " << consistency << "\n";
    return 64;
  }
  const bool mergeable = mode == core::ConsistencyMode::kMergeable;

  if (!schedule_path.empty()) {
    return RunReplay(schedule_path, mode, mut, out_dir, expect_hash);
  }
  if (fuzz_runs > 0) {
    const std::optional<FuzzClass> fc = FuzzClassFromName(fuzz_class_name);
    if (!fc.has_value()) {
      std::cerr << "unknown --fuzz-class: " << fuzz_class_name << "\n";
      return 64;
    }
    // Fuzz schedules use a lighter default traffic shape than the legacy
    // sweep unless --packets was set explicitly.
    return RunFuzz(fuzz_runs, *fc, fuzz_seed, packets, mode, mut, consistency,
                   mutate, out_dir, minimize);
  }

  const Expectation ex = ExpectationFor(mut, mode);
  std::vector<RunResult> runs;
  for (const Scenario& sc : Scenarios()) {
    if (scenario_filter != "all" && scenario_filter != sc.name) continue;
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 42 + 1000ull * static_cast<std::uint64_t>(s);
      std::cout << "[campaign] " << sc.name << " seed=" << seed
                << " consistency=" << consistency
                << (batching_us > 0 ? " batching=on" : "") << " ..."
                << std::flush;
      RunResult r = RunOne(sc, seed, mode, mut, out_dir, packets,
                           Microseconds(batching_us));
      std::cout << " sent=" << r.sent << " delivered=" << r.delivered
                << " violations=" << r.violations.size()
                << " lin_failures=" << r.lin_failures << "\n";
      runs.push_back(std::move(r));
    }
  }
  if (runs.empty()) {
    std::cerr << "no scenario matched --scenario=" << scenario_filter << "\n";
    return 64;
  }

  std::filesystem::create_directories(out_dir);
  {
    std::ofstream json(out_dir + "/report.json");
    WriteJsonReport(json, runs, mode, mut);
    std::ofstream md(out_dir + "/report.md");
    WriteMarkdownReport(md, runs);
  }
  std::cout << "[campaign] wrote " << out_dir << "/report.json and report.md\n";

  std::size_t violations = 0;
  std::size_t expected_fired = 0;
  int delivered = 0;
  for (const RunResult& r : runs) {
    violations += TotalViolations(r);
    for (const ViolationOut& v : r.violations) {
      if (v.monitor == ex.monitor) ++expected_fired;
    }
    delivered += r.delivered;
  }
  if (delivered == 0) {
    std::cerr << "[campaign] FAIL: no traffic delivered in any run\n";
    return 1;
  }
  if (mut.any()) {
    if (ex.silence) {
      if (violations > 0) {
        std::cerr << "[campaign] FAIL: mutation '" << mutate
                  << "' is legal under --consistency=" << consistency
                  << " but the auditor reported " << violations
                  << " violation(s)\n";
        return 1;
      }
      std::cout << "[campaign] OK: mutation '" << mutate
                << "' is legal under --consistency=" << consistency
                << "; auditor correctly stayed silent\n";
      return 0;
    }
    // The mode-specific mutations must be caught by their own monitor; the
    // legacy three keep the looser contract (any violation, e.g. a seq
    // mutation surfacing first as a linearizability failure, still counts).
    const bool legacy = mut.lease || mut.seq || mut.chain;
    if (expected_fired == 0 && !(legacy && violations > 0)) {
      std::cerr << "[campaign] FAIL: protocol mutation active but "
                << ex.monitor << " stayed silent\n";
      return 2;
    }
    std::cout << "[campaign] OK: mutation detected (" << violations
              << " violation(s), " << expected_fired << " from " << ex.monitor
              << ")\n";
    return 0;
  }
  if (violations > 0) {
    std::cerr << "[campaign] FAIL: " << violations
              << " invariant violation(s) on clean runs (see " << out_dir
              << ")\n";
    return 1;
  }
  // Recovery-forensics gate: every injected fault must yield exactly one
  // detected episode, complete (service resumed), whose phase durations sum
  // to the measured downtime (DESIGN.md §13 invariant).  Mergeable mode is
  // exempt: flows never pause on failover (local admission, zero-RTT
  // writes), so the lease-centric episode phases don't apply.
  for (const RunResult& r : runs) {
    if (mergeable) break;
    if (r.episodes.size() != 1) {
      std::cerr << "[campaign] FAIL: " << r.scenario << " seed " << r.seed
                << ": expected exactly one recovery episode, got "
                << r.episodes.size() << "\n";
      return 1;
    }
    const EpisodeOut& eo = r.episodes.front();
    if (!eo.complete) {
      std::cerr << "[campaign] FAIL: " << r.scenario << " seed " << r.seed
                << ": recovery episode incomplete (service never resumed)\n";
      return 1;
    }
    if (!eo.phase_sum_ok) {
      std::cerr << "[campaign] FAIL: " << r.scenario << " seed " << r.seed
                << ": phase durations do not sum to measured downtime (see "
                << r.recovery_json_path << ")\n";
      return 1;
    }
  }
  std::cout << "[campaign] OK: all scenarios clean across " << runs.size()
            << " runs; every fault produced one phase-consistent recovery "
               "episode\n";
  return 0;
}

}  // namespace
}  // namespace redplane::campaign

int main(int argc, char** argv) {
  return redplane::campaign::Main(argc, argv);
}
