#include "tools/campaign/runner.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <unordered_set>

#include "audit/auditor.h"
#include "audit/lin_feed.h"
#include "audit/slice.h"
#include "common/hash.h"
#include "core/redplane_switch.h"
#include "modelcheck/linearizability.h"
#include "net/codec.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"
#include "routing/failure.h"
#include "routing/topology.h"
#include "sim/timer_wheel.h"
#include "statestore/chain_manager.h"
#include "trace/workload.h"

namespace redplane::campaign {
namespace {

using routing::BuildTestbed;
using routing::ExternalHostIp;
using routing::RackServerIp;
using routing::Testbed;
using routing::TestbedConfig;

/// Counter app that echoes the sender's 8-byte marker and appends the
/// per-flow count, so the receiving host can feed (marker, observed value)
/// pairs to the linearizability checker.  The marker travels in the payload
/// because packet *ids* are not stable across failover: a packet buffered
/// during lease acquisition is re-injected as a fresh packet.
/// Markers with the high bit set are read requests: they stamp the current
/// count without incrementing it, so the replicated-read campaign has a
/// read-heavy op mix whose reads can legally be served from local state.
constexpr std::uint64_t kReadMarkerBit = 1ull << 63;

class StampedCounterApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "stamped_counter"; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>& state) override {
    std::uint64_t marker = 0;
    if (pkt.payload.size() >= sizeof(marker)) {
      std::memcpy(&marker, pkt.payload.data(), sizeof(marker));
    }
    const bool is_read = (marker & kReadMarkerBit) != 0;
    std::uint64_t count = core::StateAs<std::uint64_t>(state).value_or(0);
    if (!is_read) {
      ++count;
      core::SetState(state, count);
    }
    std::vector<std::byte> stamped(2 * sizeof(std::uint64_t));
    std::memcpy(stamped.data(), &marker, sizeof(marker));
    std::memcpy(stamped.data() + sizeof(marker), &count, sizeof(count));
    pkt.payload = net::BufferView(std::move(stamped));
    core::ProcessResult result;
    result.state_modified = !is_read;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
  /// Mergeable-capable: per-flow counts only grow, so replicas join by max.
  /// The app still defaults to single-owner; the campaign's --consistency
  /// axis picks the weaker mode via RedPlaneConfig::mode_override.
  core::StateTraits Traits() const override {
    core::StateTraits t;
    t.merge = core::MergeMaxU64;
    t.measure = core::MeasureU64;
    return t;
  }
};

std::uint64_t FlowHash(const net::FlowKey& flow) {
  return net::HashPartitionKey(net::PartitionKey::OfFlow(flow));
}

/// FNV-1a step over one u64 (byte-at-a-time so the hash is width-stable).
void HashMix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
}

/// Internal harness options: either a legacy named scenario or a fuzz
/// schedule drives the fault/load plan; everything else is shared.
struct HarnessOptions {
  std::string label;  // artifact stem and RunResult::scenario
  std::uint64_t seed = 42;
  core::ConsistencyMode mode = core::ConsistencyMode::kSingleOwner;
  MutationSpec mut;
  std::string out_dir;
  int packets_per_flow = 120;
  SimDuration coalesce_delay = 0;
  const Scenario* scenario = nullptr;   // legacy path
  const Schedule* schedule = nullptr;   // fuzz path
};

RunResult RunHarness(const HarnessOptions& opt) {
  RunResult out;
  out.scenario = opt.label;
  out.seed = opt.seed;

  const bool short_lease =
      opt.scenario != nullptr && opt.scenario->name == "lease_race";
  const SimDuration lease =
      short_lease ? Milliseconds(10) : Milliseconds(50);
  const bool replicated = opt.mode == core::ConsistencyMode::kReplicatedRead;
  const bool mergeable = opt.mode == core::ConsistencyMode::kMergeable;

  net::ResetPacketIds();
  sim::Simulator sim;
  TestbedConfig cfg;
  cfg.seed = opt.seed;
  cfg.store.lease_period = lease;
  cfg.store.mutations.disable_seq_filter = opt.mut.seq;
  cfg.store.mutations.early_chain_ack = opt.mut.chain;
  cfg.store.mutations.overwrite_instead_of_merge = opt.mut.merge;
  // The store joins merge deltas with the app's declared CRDT join and
  // reports the monotone measure on the kMergeApplied tap.
  cfg.store.merger = core::MergeMaxU64;
  cfg.store.measure = core::MeasureU64;
  if (replicated) {
    // Stretch the store's service time so write acks stay in flight long
    // enough that "serve this read locally or wait?" is a real decision
    // against the tightened 50 µs bound below — but not so long that the
    // store queue saturates (4 writes + buffered reads per 800 µs round).
    cfg.store.service_time = Microseconds(40);
  }
  cfg.fabric.failure_detection_delay = Milliseconds(2);
  Testbed tb = BuildTestbed(sim, cfg);

  obs::Tracer tracer;
  tracer.SetClock([&sim] { return sim.Now(); });
  tracer.SetEnabled(true);
  obs::Tracer* prev_tracer = obs::SetGlobalTracer(&tracer);

  audit::Auditor auditor;
  auditor.SetClock([&sim] { return sim.Now(); });
  auditor.ArmStandardMonitors();
  auditor.SetTracer(&tracer);
  audit::SetGlobalAuditor(&auditor);
  auditor.SetEnabled(true);
  audit::LinearizabilityFeed feed(&auditor);

  // Recovery forensics: every tap the auditor publishes also feeds the
  // episode tracker, which decomposes the injected fault's recovery into
  // causally ordered phases (obs/recovery.h).  The same stream feeds the
  // offline per-mode oracles: staleness samples from locally served reads
  // and measure samples from store-side merge applications (with the store
  // reset epoch folded into the component, mirroring the online monitor's
  // re-baseline rule).
  obs::RecoveryTracker recovery(&tracer);
  std::vector<modelcheck::StalenessSample> stale_samples;
  std::vector<modelcheck::MergeSample> merge_samples;
  std::map<std::uint16_t, std::uint64_t> store_epoch;
  auditor.SetTapObserver([&](const audit::TapEvent& ev) {
    recovery.OnTapEvent(ev);
    switch (ev.tap) {
      case audit::Tap::kLocalReadServed:
        if (ev.aux != 0) {  // aux 0 = no staleness contract (mergeable)
          stale_samples.push_back(
              {ev.key, static_cast<std::uint64_t>(ev.value), ev.aux});
        }
        break;
      case audit::Tap::kMergeApplied:
        merge_samples.push_back(
            {HashCombine(static_cast<std::uint64_t>(ev.component),
                         store_epoch[ev.component]),
             ev.key, ev.value});
        break;
      case audit::Tap::kStoreReset:
        ++store_epoch[ev.component];
        break;
      default:
        break;
    }
  });

  store::ChainManager mgr(sim, tb.store,
                          store::ChainManagerConfig{
                              .probe_interval = Milliseconds(5),
                              .resync_delay = Milliseconds(2),
                              .readmit_recovered = true,
                          });
  mgr.Start();

  StampedCounterApp app;
  core::RedPlaneConfig rp_cfg;
  rp_cfg.lease_period = lease;
  rp_cfg.renew_interval = lease / 2;
  rp_cfg.coalesce_delay = opt.coalesce_delay;
  rp_cfg.mode_override = opt.mode;
  rp_cfg.mutation_stale_reads = opt.mut.stale;
  if (replicated) rp_cfg.staleness_bound = Microseconds(50);
  if (opt.mut.lease) rp_cfg.mutation_lease_extension = Seconds(10);
  auto shard_for = [&mgr](const net::PartitionKey&) { return mgr.HeadIp(); };
  std::array<std::unique_ptr<core::RedPlaneSwitch>, 2> rp;
  for (int i = 0; i < 2; ++i) {
    rp[i] = std::make_unique<core::RedPlaneSwitch>(*tb.agg[i], app, shard_for,
                                                   rp_cfg);
    tb.agg[i]->SetPipeline(rp[i].get());
  }
  routing::FailureInjector injector(sim, *tb.fabric);

  // Fleet time-series: per-sample goodput / lease churn / replication-byte
  // rates plus store, timer-wheel, and SoA-table occupancy levels
  // (obs/timeseries.h).  The wheel gauges live here because obs must not
  // depend on sim.
  obs::MetricRegistry wheel_reg("wheel");
  for (int l = 0; l <= sim::TimerWheel::kLevels; ++l) {
    const std::string gauge_name =
        l == sim::TimerWheel::kLevels ? "overflow" : "level" + std::to_string(l);
    wheel_reg.AddCallbackGauge(gauge_name, [&sim, l] {
      return static_cast<double>(
          sim.wheel().CountPerLevel()[static_cast<std::size_t>(l)]);
    });
  }
  obs::MetricsHub hub;
  hub.Register(&rp[0]->stats());
  hub.Register(&rp[1]->stats());
  for (store::StateStoreServer* server : tb.store) {
    hub.Register(&server->counters());
  }
  hub.Register(&wheel_reg);
  obs::FleetSampler fleet(&hub);
  fleet.Sample(sim.Now());  // rate baseline

  constexpr int kFlows = 4;
  const std::uint64_t seed = opt.seed;
  auto flow_key = [seed](int f) {
    return net::FlowKey{ExternalHostIp(0), RackServerIp(0, 0),
                        static_cast<std::uint16_t>(20000 + 17 * f +
                                                   (seed % 7) * 101),
                        80, net::IpProto::kUdp};
  };
  // Only the instrumented base flows feed the linearizability checker:
  // load-phase flows (flash crowds, SYN floods) are uninstrumented
  // background pressure, and their app outputs carry marker 0, which the
  // feed would treat as an input-less output.
  std::unordered_set<std::uint64_t> base_flow_hashes;
  for (int f = 0; f < kFlows; ++f) {
    base_flow_hashes.insert(FlowHash(flow_key(f)));
  }

  // Receiver: record every delivered (marker, stamped count).  Reads and
  // mergeable-mode outputs stay out of the linearizability feed: reads
  // don't advance the counter, and zero-RTT multi-writer counts converge
  // by lattice join, not by a single linearizable history (their promise
  // is checked by the merge-convergence oracle instead).  Every delivery —
  // base or load — folds into the replay fingerprint.
  std::uint64_t trace_hash = 14695981039346656037ull;  // FNV-1a offset basis
  tb.rack_servers[0][0]->SetHandler([&](sim::HostNode&, net::Packet pkt) {
    ++out.delivered;
    auto flow = pkt.Flow();
    std::uint64_t marker = 0, value = 0;
    if (pkt.payload.size() >= 2 * sizeof(std::uint64_t)) {
      std::memcpy(&marker, pkt.payload.data(), sizeof(marker));
      std::memcpy(&value, pkt.payload.data() + sizeof(marker), sizeof(value));
    }
    HashMix(trace_hash, static_cast<std::uint64_t>(sim.Now()));
    HashMix(trace_hash, marker);
    HashMix(trace_hash, value);
    if (!flow.has_value() ||
        pkt.payload.size() < 2 * sizeof(std::uint64_t)) {
      return;
    }
    if (mergeable || (marker & kReadMarkerBit) != 0) return;
    if (base_flow_hashes.find(FlowHash(*flow)) == base_flow_hashes.end()) {
      return;
    }
    // The receiver sees the flow as sent; hash the same key the switch used.
    feed.Output(FlowHash(*flow), marker, sim.Now(), value);
  });

  std::uint64_t next_marker = 0;
  auto send_marked = [&](std::uint64_t marker_bits) {
    for (int f = 0; f < kFlows; ++f) {
      net::Packet pkt = net::MakeUdpPacket(flow_key(f), 0);
      const std::uint64_t marker = marker_bits | ++next_marker;
      std::vector<std::byte> payload(sizeof(marker));
      std::memcpy(payload.data(), &marker, sizeof(marker));
      pkt.payload = net::BufferView(std::move(payload));
      if (!mergeable && marker_bits == 0) {
        feed.Input(FlowHash(flow_key(f)), marker, sim.Now());
      }
      ++out.sent;
      tb.external[0]->Send(std::move(pkt));
    }
  };
  auto send_round = [&] { send_marked(0); };

  // Warmup: establish leases and find the switch actually carrying traffic.
  const int warmup_rounds = std::min(5, opt.packets_per_flow);
  for (int i = 0; i < warmup_rounds; ++i) {
    send_round();
    sim.RunUntil(sim.Now() + Microseconds(500));
  }
  sim.RunUntil(sim.Now() + Milliseconds(3));
  const bool agg0_active =
      rp[0]->stats().Get("app_pkts") >= rp[1]->stats().Get("app_pkts");
  dp::SwitchNode* active = agg0_active ? tb.agg[0] : tb.agg[1];
  dp::SwitchNode* standby = agg0_active ? tb.agg[1] : tb.agg[0];

  // Inject the fault/load plan.
  const SimTime t0 = sim.Now();
  if (opt.scenario != nullptr) {
    const std::string& name = opt.scenario->name;
    if (name == "switch_crash") {
      injector.ScheduleNodeFailure(active, t0 + Milliseconds(2),
                                   t0 + Milliseconds(60));
    } else if (name == "link_flap") {
      sim::Link* link = tb.network->FindLink(tb.core, active);
      if (link != nullptr) {
        injector.ScheduleLinkFailure(link, t0 + Milliseconds(2),
                                     t0 + Milliseconds(60));
      }
    } else if (name == "lease_race") {
      // Die just as the current leases are about to lapse.
      injector.ScheduleNodeFailure(active, t0 + lease - Microseconds(200),
                                   t0 + lease + Milliseconds(40));
    } else if (name == "store_failover") {
      store::StateStoreServer* victim =
          tb.store.size() > 1 ? tb.store[1] : tb.store[0];
      injector.ScheduleNodeFailure(victim, t0 + Milliseconds(2),
                                   t0 + Milliseconds(40));
    }
  }
  if (opt.schedule != nullptr) {
    for (const FaultEvent& ev : opt.schedule->faults) {
      const SimTime at = t0 + ev.at;
      const SimTime clear = ev.clear_at >= 0 ? t0 + ev.clear_at : -1;
      dp::SwitchNode* agg_target = ev.target % 2 == 0 ? active : standby;
      switch (ev.kind) {
        case FaultKind::kSwitchCrash:
          injector.ScheduleNodeFailure(agg_target, at, clear);
          break;
        case FaultKind::kLinkCut: {
          sim::Link* link = tb.network->FindLink(tb.core, agg_target);
          if (link != nullptr) injector.ScheduleLinkFailure(link, at, clear);
          break;
        }
        case FaultKind::kStoreCrash: {
          store::StateStoreServer* victim =
              tb.store.size() > 1
                  ? tb.store[1 + static_cast<std::size_t>(ev.target) %
                                     (tb.store.size() - 1)]
                  : tb.store[0];
          injector.ScheduleNodeFailure(victim, at, clear);
          break;
        }
        case FaultKind::kSlowShard: {
          store::StateStoreServer* shard =
              tb.store[static_cast<std::size_t>(ev.target) % tb.store.size()];
          const double factor = std::max(1.0, ev.magnitude);
          sim.ScheduleAt(at,
                         [shard, factor] { shard->SetServiceTimeFactor(factor); });
          if (clear >= 0) {
            sim.ScheduleAt(clear,
                           [shard] { shard->SetServiceTimeFactor(1.0); });
          }
          break;
        }
        case FaultKind::kAsymLoss:
        case FaultKind::kPartition: {
          sim::Link* link = tb.network->FindLink(tb.core, agg_target);
          const double rate = ev.kind == FaultKind::kPartition
                                  ? 1.0
                                  : std::clamp(ev.magnitude, 0.0, 1.0);
          if (link != nullptr) {
            injector.ScheduleAsymmetricLoss(link, tb.core->id(), rate, at,
                                            clear);
          }
          break;
        }
        case FaultKind::kCapacity: {
          store::StateStoreServer* head = tb.store.front();
          const std::size_t cap = std::max<std::size_t>(
              8, static_cast<std::size_t>(ev.magnitude));
          sim.ScheduleAt(at, [head, cap] { head->SetMaxFlows(cap); });
          if (clear >= 0) {
            sim.ScheduleAt(clear, [head] { head->SetMaxFlows(0); });
          }
          break;
        }
        case FaultKind::kEcmpRehash: {
          routing::RoutingFabric* fabric = tb.fabric.get();
          const auto salt = static_cast<std::uint64_t>(ev.magnitude);
          sim.ScheduleAt(at, [fabric, salt] { fabric->SetEcmpSalt(salt); });
          if (clear >= 0) {
            sim.ScheduleAt(clear, [fabric] { fabric->SetEcmpSalt(0); });
          }
          break;
        }
      }
    }

    // Load phases: pre-generate each phase's packets from a forked stream
    // (draw counts never disturb the testbed RNG) and schedule the sends.
    Rng base_rng(opt.schedule->seed);
    Rng load_rng = base_rng.Fork(0x10adull);
    std::vector<trace::TracePacket> load_pkts;
    for (const LoadPhase& ph : opt.schedule->loads) {
      switch (ph.kind) {
        case LoadKind::kFlashCrowd: {
          trace::FlashCrowdConfig c;
          c.start = t0 + ph.at;
          c.duration = ph.duration;
          c.num_flows = ph.intensity;
          c.src = ExternalHostIp(1);
          c.dst = RackServerIp(0, 0);
          const auto pkts = trace::GenerateFlashCrowd(load_rng, c);
          load_pkts.insert(load_pkts.end(), pkts.begin(), pkts.end());
          break;
        }
        case LoadKind::kLeaseChurn: {
          trace::LeaseChurnConfig c;
          c.start = t0 + ph.at;
          c.duration = ph.duration;
          c.num_flows = std::min<std::size_t>(ph.intensity, 8);
          c.src = ExternalHostIp(1);
          c.dst = RackServerIp(0, 0);
          const auto pkts = trace::GenerateLeaseChurn(load_rng, c);
          load_pkts.insert(load_pkts.end(), pkts.begin(), pkts.end());
          // The churn itself: re-salt ECMP at each burst boundary so the
          // next burst (and the base flows) can land on the other switch
          // and must re-acquire leases — ownership ping-pong.
          routing::RoutingFabric* fabric = tb.fabric.get();
          const std::uint64_t churn_salt = opt.schedule->seed | 1;
          int k = 0;
          for (SimTime flip_at = c.start; flip_at < c.start + c.duration;
               flip_at += c.burst_gap, ++k) {
            const std::uint64_t salt = k % 2 == 1 ? churn_salt : 0;
            sim.ScheduleAt(flip_at, [fabric, salt] { fabric->SetEcmpSalt(salt); });
          }
          sim.ScheduleAt(c.start + c.duration,
                         [fabric] { fabric->SetEcmpSalt(0); });
          break;
        }
        case LoadKind::kSynFlood: {
          trace::SynFloodConfig c;
          c.start = t0 + ph.at;
          c.duration = ph.duration;
          c.num_packets = ph.intensity;
          c.dst = RackServerIp(0, 0);
          const auto pkts = trace::GenerateSynFlood(load_rng, c);
          load_pkts.insert(load_pkts.end(), pkts.begin(), pkts.end());
          break;
        }
      }
    }
    for (const trace::TracePacket& tp : load_pkts) {
      sim.ScheduleAt(tp.time, [&out, &tb, tp] {
        ++out.sent;
        tb.external[1]->Send(trace::MaterializePacket(tp));
      });
    }
  }

  // Keep traffic flowing across the fault window and the recovery.  Under
  // replicated-read, chase each write round with a read round while the
  // write's ~300 µs replication ack is still in flight: within the 50 µs
  // bound the switch must wait (read-buffer loop), and with --mutate=stale
  // it illegally serves them — exactly what the staleness oracles check.
  for (int i = warmup_rounds; i < opt.packets_per_flow; ++i) {
    send_round();
    if (replicated) {
      // First read round lands ~20 µs after the write — inside the bound,
      // legally served from local state (the oracle sees the sample pass).
      sim.RunUntil(sim.Now() + Microseconds(20));
      send_marked(kReadMarkerBit);
      // Second round lands ~150 µs in — beyond the bound, must wait.
      sim.RunUntil(sim.Now() + Microseconds(130));
      send_marked(kReadMarkerBit);
      sim.RunUntil(sim.Now() + Microseconds(650));
    } else {
      sim.RunUntil(sim.Now() + Microseconds(800));
    }
    fleet.Sample(sim.Now());
  }
  // Bounded drain: the chain manager's periodic probe keeps the event queue
  // non-empty forever, so run to a horizon rather than to quiescence.
  // Stepped so the time series covers the recovery tail.
  for (int i = 0; i < 15; ++i) {
    sim.RunUntil(sim.Now() + Milliseconds(10));
    fleet.Sample(sim.Now());
  }
  out.lin_failures = feed.CloseAll();
  recovery.Finalize(sim.Now());
  out.trace_hash = trace_hash;

  // Offline per-mode oracles: the tap-derived samples must satisfy the
  // mode's promise independently of the online monitors.
  out.staleness_samples = stale_samples.size();
  out.merge_samples = merge_samples.size();
  std::string why;
  if (!modelcheck::CheckBoundedStaleness(stale_samples, &why)) {
    ++out.oracle_failures;
    out.oracle_why = why;
  }
  if (!modelcheck::CheckMergeConvergence(merge_samples, &why)) {
    ++out.oracle_failures;
    out.oracle_why = out.oracle_why.empty() ? why : out.oracle_why + "; " + why;
  }

  // Harvest results.
  out.audit_events = auditor.events_seen();
  std::filesystem::create_directories(opt.out_dir);
  int vi = 0;
  for (const auto& v : auditor.violations()) {
    ViolationOut vo;
    vo.monitor = v.monitor;
    vo.detail = v.detail;
    vo.at = v.at.t;
    vo.slice_events = v.slice.events.size();
    vo.slice_closed = audit::IsHappensBeforeClosed(v.slice);
    const std::string stem = opt.out_dir + "/" + opt.label + "_s" +
                             std::to_string(opt.seed) + "_v" +
                             std::to_string(vi);
    vo.slice_json_path = stem + ".slice.json";
    vo.slice_text_path = stem + ".slice.txt";
    std::ofstream(vo.slice_json_path) << v.slice.PerfettoJson();
    std::ofstream(vo.slice_text_path) << v.slice.Text();
    out.violations.push_back(std::move(vo));
    ++vi;
  }
  for (const auto& phase : tracer.LatencyBreakdown()) {
    PhaseOut po;
    po.name = phase.name;
    po.count = phase.samples_us.Count();
    po.p50_us = phase.samples_us.Percentile(50);
    po.p99_us = phase.samples_us.Percentile(99);
    out.phases.push_back(std::move(po));
  }
  for (const auto& reg : {rp[0].get(), rp[1].get()}) {
    for (const auto& mv : reg->stats().Snapshot().values) {
      if (mv.name == "write_rtt_us" && mv.value > 0) {
        out.write_rtt_p50_us = std::max(out.write_rtt_p50_us, mv.hist_p50);
        out.write_rtt_p99_us = std::max(out.write_rtt_p99_us, mv.hist_p99);
      }
    }
  }

  // Recovery-forensics artifacts: one episode-timeline JSON and one fleet
  // time-series CSV per injected fault.
  const std::string run_stem =
      opt.out_dir + "/" + opt.label + "_s" + std::to_string(opt.seed);
  out.recovery_json_path = run_stem + ".recovery.json";
  std::ofstream(out.recovery_json_path) << recovery.Json();
  out.fleet_csv_path = run_stem + ".fleet.csv";
  {
    std::ofstream fleet_csv(out.fleet_csv_path);
    fleet.WriteCsv(fleet_csv);
  }
  out.fleet_samples = fleet.NumSamples();
  for (const obs::RecoveryEpisode& e : recovery.episodes()) {
    EpisodeOut eo;
    eo.id = e.id;
    eo.trigger = e.trigger;
    eo.complete = e.complete;
    eo.phase_sum_ok = obs::PhaseSumOk(e);
    eo.downtime = e.phase_end.back() - e.fault_at;
    for (int p = 0; p < obs::kNumRecoveryPhases; ++p) {
      eo.phase[static_cast<std::size_t>(p)] =
          e.PhaseDuration(static_cast<obs::RecoveryPhase>(p));
    }
    eo.flows = e.flow_downtime_us.Count();
    if (!e.flow_downtime_us.Empty()) {
      eo.flow_p50_us = e.flow_downtime_us.Percentile(50);
      eo.flow_p99_us = e.flow_downtime_us.Percentile(99);
      eo.flow_max_us = e.flow_downtime_us.Max();
    }
    eo.extra_faults = e.extra_faults;
    out.episodes.push_back(std::move(eo));
  }

  obs::SetGlobalTracer(prev_tracer);
  // `auditor` uninstalls itself from the global slot on destruction.
  return out;
}

}  // namespace

const std::vector<Scenario>& Scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"switch_crash",
       "fail the aggregation switch carrying the flows; recover it later"},
      {"link_flap",
       "cut the fabric link to the active switch; traffic reroutes, then the "
       "link returns"},
      {"lease_race",
       "short leases; the active switch dies right at a lease boundary"},
      {"store_failover",
       "kill a mid-chain store replica; the chain manager splices and later "
       "readmits it"},
  };
  return kScenarios;
}

RunResult RunOne(const Scenario& sc, std::uint64_t seed,
                 core::ConsistencyMode mode, const MutationSpec& mut,
                 const std::string& out_dir, int packets_per_flow,
                 SimDuration coalesce_delay) {
  HarnessOptions opt;
  opt.label = sc.name;
  opt.seed = seed;
  opt.mode = mode;
  opt.mut = mut;
  opt.out_dir = out_dir;
  opt.packets_per_flow = packets_per_flow;
  opt.coalesce_delay = coalesce_delay;
  opt.scenario = &sc;
  return RunHarness(opt);
}

RunResult RunSchedule(const Schedule& schedule, core::ConsistencyMode mode,
                      const MutationSpec& mut, const std::string& out_dir,
                      const std::string& label) {
  HarnessOptions opt;
  opt.label = label;
  opt.seed = schedule.seed;
  opt.mode = mode;
  opt.mut = mut;
  opt.out_dir = out_dir;
  opt.packets_per_flow = std::max(10, schedule.packets_per_flow);
  opt.schedule = &schedule;
  return RunHarness(opt);
}

void WriteJsonReport(std::ostream& os, const std::vector<RunResult>& runs,
                     core::ConsistencyMode mode, const MutationSpec& mut) {
  os << "{\"consistency\": \"" << core::ConsistencyModeName(mode) << "\",\n";
  os << " \"mutation\": {\"lease\": " << (mut.lease ? "true" : "false")
     << ", \"seq\": " << (mut.seq ? "true" : "false")
     << ", \"chain\": " << (mut.chain ? "true" : "false")
     << ", \"stale\": " << (mut.stale ? "true" : "false")
     << ", \"merge\": " << (mut.merge ? "true" : "false") << "},\n";
  os << " \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    os << "  {\"scenario\": \"" << obs::JsonEscape(r.scenario)
       << "\", \"seed\": " << r.seed << ", \"sent\": " << r.sent
       << ", \"delivered\": " << r.delivered
       << ", \"audit_events\": " << r.audit_events
       << ", \"lin_failures\": " << r.lin_failures
       << ", \"oracle_failures\": " << r.oracle_failures
       << ", \"staleness_samples\": " << r.staleness_samples
       << ", \"merge_samples\": " << r.merge_samples
       << ", \"oracle_why\": \"" << obs::JsonEscape(r.oracle_why) << "\""
       << ", \"trace_hash\": \"" << std::to_string(r.trace_hash) << "\""
       << ", \"write_rtt_p50_us\": " << obs::JsonNumber(r.write_rtt_p50_us)
       << ", \"write_rtt_p99_us\": " << obs::JsonNumber(r.write_rtt_p99_us)
       << ",\n   \"phases\": [";
    for (std::size_t p = 0; p < r.phases.size(); ++p) {
      const PhaseOut& ph = r.phases[p];
      os << (p ? ", " : "") << "{\"name\": \"" << obs::JsonEscape(ph.name)
         << "\", \"count\": " << ph.count
         << ", \"p50_us\": " << obs::JsonNumber(ph.p50_us)
         << ", \"p99_us\": " << obs::JsonNumber(ph.p99_us) << "}";
    }
    os << "],\n   \"recovery_json\": \""
       << obs::JsonEscape(r.recovery_json_path) << "\", \"fleet_csv\": \""
       << obs::JsonEscape(r.fleet_csv_path)
       << "\", \"fleet_samples\": " << r.fleet_samples
       << ",\n   \"episodes\": [";
    for (std::size_t e = 0; e < r.episodes.size(); ++e) {
      const EpisodeOut& eo = r.episodes[e];
      os << (e ? ", " : "") << "{\"id\": " << eo.id << ", \"trigger\": \""
         << obs::JsonEscape(eo.trigger)
         << "\", \"complete\": " << (eo.complete ? "true" : "false")
         << ", \"phase_sum_ok\": " << (eo.phase_sum_ok ? "true" : "false")
         << ", \"downtime_ns\": " << eo.downtime << ", \"phases_ns\": [";
      for (int p = 0; p < obs::kNumRecoveryPhases; ++p) {
        os << (p ? ", " : "") << eo.phase[static_cast<std::size_t>(p)];
      }
      os << "], \"flows\": " << eo.flows
         << ", \"flow_p99_us\": " << obs::JsonNumber(eo.flow_p99_us)
         << ", \"extra_faults\": " << eo.extra_faults << "}";
    }
    os << "],\n   \"violations\": [";
    for (std::size_t v = 0; v < r.violations.size(); ++v) {
      const ViolationOut& vo = r.violations[v];
      os << (v ? ", " : "") << "{\"monitor\": \"" << obs::JsonEscape(vo.monitor)
         << "\", \"t_ns\": " << vo.at
         << ", \"slice_events\": " << vo.slice_events
         << ", \"slice_hb_closed\": " << (vo.slice_closed ? "true" : "false")
         << ", \"slice_json\": \"" << obs::JsonEscape(vo.slice_json_path)
         << "\", \"detail\": \"" << obs::JsonEscape(vo.detail) << "\"}";
    }
    os << "]}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "]}\n";
}

void WriteMarkdownReport(std::ostream& os, const std::vector<RunResult>& runs) {
  os << "# Fault campaign report\n\n";
  os << "| scenario | seed | sent | delivered | audit events | violations | "
        "lin failures | write RTT p99 (µs) | episodes | downtime (ms) | "
        "phase sum |\n";
  os << "|---|---|---|---|---|---|---|---|---|---|---|\n";
  std::size_t total_violations = 0;
  for (const RunResult& r : runs) {
    total_violations += r.violations.size() + r.lin_failures +
                        r.oracle_failures;
    double downtime_ms = 0;
    bool sum_ok = !r.episodes.empty();
    for (const EpisodeOut& eo : r.episodes) {
      downtime_ms += static_cast<double>(eo.downtime) / 1e6;
      sum_ok = sum_ok && eo.phase_sum_ok;
    }
    os << "| " << r.scenario << " | " << r.seed << " | " << r.sent << " | "
       << r.delivered << " | " << r.audit_events << " | "
       << r.violations.size() << " | " << r.lin_failures << " | "
       << obs::JsonNumber(r.write_rtt_p99_us) << " | " << r.episodes.size()
       << " | " << obs::JsonNumber(downtime_ms) << " | "
       << (r.episodes.empty() ? "n/a" : (sum_ok ? "ok" : "VIOLATED"))
       << " |\n";
  }
  os << "\nTotal violations (monitors + linearizability + per-mode oracles): "
     << total_violations << "\n";
  for (const RunResult& r : runs) {
    if (r.oracle_failures > 0) {
      os << "\n- oracle failure (" << r.scenario << " seed " << r.seed
         << "): " << r.oracle_why << "\n";
    }
  }
  os << "\n## Recovery episodes\n\n";
  os << "| scenario | seed | trigger | " ;
  for (int p = 0; p < obs::kNumRecoveryPhases; ++p) {
    os << obs::RecoveryPhaseName(static_cast<obs::RecoveryPhase>(p))
       << " (ms) | ";
  }
  os << "downtime (ms) | flows | flow p99 (µs) |\n";
  os << "|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const RunResult& r : runs) {
    for (const EpisodeOut& eo : r.episodes) {
      os << "| " << r.scenario << " | " << r.seed << " | " << eo.trigger
         << (eo.complete ? "" : " (incomplete)") << " | ";
      for (int p = 0; p < obs::kNumRecoveryPhases; ++p) {
        os << obs::JsonNumber(
                  static_cast<double>(eo.phase[static_cast<std::size_t>(p)]) /
                  1e6)
           << " | ";
      }
      os << obs::JsonNumber(static_cast<double>(eo.downtime) / 1e6) << " | "
         << eo.flows << " | " << obs::JsonNumber(eo.flow_p99_us) << " |\n";
    }
  }
  for (const RunResult& r : runs) {
    for (const auto& v : r.violations) {
      os << "\n## " << r.scenario << " seed " << r.seed << ": " << v.monitor
         << "\n\n"
         << v.detail << "\n\nslice: `" << v.slice_json_path << "` ("
         << v.slice_events << " events, happens-before "
         << (v.slice_closed ? "closed" : "NOT CLOSED") << ")\n";
    }
  }
}

}  // namespace redplane::campaign
