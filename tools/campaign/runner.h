// Campaign run harness: builds the paper's testbed with the auditor armed,
// drives traffic, injects faults, and harvests violations + forensics.
//
// Two entry points share the harness:
//   RunOne      — the four legacy named scenarios (switch_crash, link_flap,
//                 lease_race, store_failover), unchanged semantics.
//   RunSchedule — executes a fuzz Schedule (tools/campaign/schedule.h):
//                 each FaultEvent maps onto the failure injector or the
//                 gray-failure hooks, each LoadPhase onto a src/trace
//                 adversarial generator injected on top of the audited base
//                 traffic.  The result carries a trace hash (FNV-1a over
//                 every delivered (time, marker, value) tuple) so the same
//                 (seed, schedule) pair is checkably bit-identical across
//                 replays — the deterministic-replay contract the minimizer
//                 and the committed regression schedules rely on.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/consistency.h"
#include "obs/recovery.h"
#include "tools/campaign/schedule.h"

namespace redplane::campaign {

struct MutationSpec {
  bool lease = false;  // switch lease belief inflated past the store's
  bool seq = false;    // store sequence filter disabled
  bool chain = false;  // head acks before chain-wide commit
  bool stale = false;  // replicated-read serves local reads past the bound
  bool merge = false;  // store overwrites merge deltas instead of joining
  bool any() const { return lease || seq || chain || stale || merge; }
};

struct ViolationOut {
  std::string monitor;
  std::string detail;
  SimTime at = 0;
  std::size_t slice_events = 0;
  bool slice_closed = false;
  std::string slice_json_path;
  std::string slice_text_path;
};

struct PhaseOut {
  std::string name;
  std::size_t count = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Flattened view of one obs::RecoveryEpisode for the campaign report.
struct EpisodeOut {
  std::uint64_t id = 0;
  std::string trigger;
  bool complete = false;
  bool phase_sum_ok = false;
  SimDuration downtime = 0;
  std::array<SimDuration, obs::kNumRecoveryPhases> phase{};
  std::size_t flows = 0;
  double flow_p50_us = 0;
  double flow_p99_us = 0;
  double flow_max_us = 0;
  std::uint32_t extra_faults = 0;
};

struct RunResult {
  std::string scenario;
  std::uint64_t seed = 0;
  int sent = 0;
  int delivered = 0;
  std::uint64_t audit_events = 0;
  std::size_t lin_failures = 0;
  /// Offline per-mode oracle verdicts (modelcheck/linearizability.h):
  /// staleness and merge-convergence samples are collected from the taps
  /// and re-judged by an implementation independent of the online monitors.
  std::size_t oracle_failures = 0;
  std::string oracle_why;
  std::size_t staleness_samples = 0;
  std::size_t merge_samples = 0;
  std::vector<ViolationOut> violations;
  std::vector<PhaseOut> phases;
  double write_rtt_p50_us = 0;
  double write_rtt_p99_us = 0;
  std::vector<EpisodeOut> episodes;
  std::string recovery_json_path;
  std::string fleet_csv_path;
  std::size_t fleet_samples = 0;
  /// FNV-1a over every delivered (time, marker, value); the deterministic-
  /// replay fingerprint.  Only RunSchedule fills it.
  std::uint64_t trace_hash = 0;

  /// The fuzz oracle: no monitor violations, no linearizability failures,
  /// no offline-oracle failures, and traffic actually flowed.
  bool Clean() const {
    return violations.empty() && lin_failures == 0 && oracle_failures == 0 &&
           delivered > 0;
  }
};

struct Scenario {
  std::string name;
  const char* description;
};

const std::vector<Scenario>& Scenarios();

/// Runs one legacy named scenario.
RunResult RunOne(const Scenario& sc, std::uint64_t seed,
                 core::ConsistencyMode mode, const MutationSpec& mut,
                 const std::string& out_dir, int packets_per_flow,
                 SimDuration coalesce_delay);

/// Executes a fuzz schedule.  `label` stems the artifact filenames.
RunResult RunSchedule(const Schedule& schedule, core::ConsistencyMode mode,
                      const MutationSpec& mut, const std::string& out_dir,
                      const std::string& label);

void WriteJsonReport(std::ostream& os, const std::vector<RunResult>& runs,
                     core::ConsistencyMode mode, const MutationSpec& mut);
void WriteMarkdownReport(std::ostream& os, const std::vector<RunResult>& runs);

}  // namespace redplane::campaign
