#include "tools/campaign/minimizer.h"

#include <cstddef>
#include <vector>

namespace redplane::campaign {

namespace {

/// Rebuilds a schedule keeping only the events named by `keep` (indices
/// into the combined list: faults first, then loads).  Seed and traffic
/// shape are preserved — minimization only deletes events.
Schedule Subset(const Schedule& full, const std::vector<std::size_t>& keep) {
  Schedule out;
  out.seed = full.seed;
  out.packets_per_flow = full.packets_per_flow;
  for (const std::size_t idx : keep) {
    if (idx < full.faults.size()) {
      out.faults.push_back(full.faults[idx]);
    } else {
      out.loads.push_back(full.loads[idx - full.faults.size()]);
    }
  }
  return out;
}

}  // namespace

MinimizeResult MinimizeSchedule(const Schedule& failing,
                                const ScheduleOracle& oracle,
                                int max_probes) {
  MinimizeResult result;
  std::vector<std::size_t> current(failing.NumEvents());
  for (std::size_t i = 0; i < current.size(); ++i) current[i] = i;

  auto probe = [&](const std::vector<std::size_t>& keep) {
    ++result.probes;
    return oracle(Subset(failing, keep));
  };

  // Classic ddmin: try each of n chunks alone, then each complement; on a
  // hit recurse with finer granularity, otherwise double n until it
  // exceeds the list size.
  std::size_t n = 2;
  while (current.size() >= 2 && result.probes < max_probes) {
    const std::size_t chunk = (current.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0;
         start < current.size() && result.probes < max_probes;
         start += chunk) {
      const std::size_t end = std::min(start + chunk, current.size());
      std::vector<std::size_t> subset(current.begin() + start,
                                      current.begin() + end);
      if (subset.size() < current.size() && probe(subset)) {
        current = std::move(subset);
        n = 2;
        reduced = true;
        break;
      }
      std::vector<std::size_t> complement;
      complement.reserve(current.size() - subset.size());
      complement.insert(complement.end(), current.begin(),
                        current.begin() + start);
      complement.insert(complement.end(), current.begin() + end,
                        current.end());
      if (!complement.empty() && complement.size() < current.size() &&
          result.probes < max_probes && probe(complement)) {
        current = std::move(complement);
        n = n > 2 ? n - 1 : 2;
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= current.size()) {
        result.one_minimal = true;
        break;
      }
      n = std::min(2 * n, current.size());
    }
  }
  if (current.size() < 2) result.one_minimal = result.probes < max_probes;

  result.schedule = Subset(failing, current);
  return result;
}

}  // namespace redplane::campaign
