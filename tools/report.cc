// rpreport: joins a bench run's observability artifacts — wall-clock profile
// (--profile), request spans (--spans), the periodic metrics time series
// (--metrics) and a recovery-episode dump (--recovery, from
// obs::RecoveryTracker::WriteJson) — into one performance report.
//
// The report answers "where did the time go" at three layers:
//   * host CPU: top call-path sites by self time, rolled up per subsystem
//     (the prefix before the first '.', e.g. store/switch/net/sim) — the
//     attribution key ci/perf_smoke.py diffs on a regression,
//   * request latency: per-segment-kind breakdown of the reconstructed span
//     trees (switch→store network, per-shard queue wait, service, chain
//     hops, ack return),
//   * shard load: per-store occupancy (peak queue depth, busy fraction) and
//     the wire-byte mix by request type.
//
// Output is markdown (default) or JSON (--format=json), to stdout or --out.
// Any subset of the inputs may be given; absent sections are omitted.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/json.h"

using redplane::SampleSet;
using redplane::obs::JsonEscape;
using redplane::obs::JsonNumber;
using redplane::obs::JsonValue;
using redplane::obs::ParseJson;

namespace {

struct Options {
  std::string profile_path;
  std::string spans_path;
  std::string metrics_path;
  std::string recovery_path;
  std::string out_path;
  std::string format = "md";
  std::size_t top = 15;
};

std::optional<JsonValue> LoadJsonFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "rpreport: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  auto parsed = ParseJson(buf.str());
  if (!parsed.has_value()) {
    std::fprintf(stderr, "rpreport: %s is not valid JSON\n", path.c_str());
  }
  return parsed;
}

/// The subsystem a profile site belongs to: the prefix before the first '.'
/// ("store.process" -> "store"); sites without a dot are their own subsystem.
std::string SubsystemOf(const std::string& site) {
  const std::size_t dot = site.find('.');
  return dot == std::string::npos ? site : site.substr(0, dot);
}

// --- profile section --------------------------------------------------------

struct SiteRow {
  std::string name;
  double count = 0;
  double total_ns = 0;
  double self_ns = 0;
};

struct ProfileReport {
  std::vector<SiteRow> sites;       // sorted by self_ns desc
  std::vector<SiteRow> subsystems;  // rolled up, sorted by self_ns desc
  double total_self_ns = 0;
};

std::optional<ProfileReport> BuildProfileReport(const JsonValue& doc) {
  const JsonValue* sites = doc.Find("sites");
  if (sites == nullptr || !sites->IsArray()) return std::nullopt;
  ProfileReport report;
  std::map<std::string, SiteRow> rollup;
  for (const JsonValue& site : sites->array) {
    SiteRow row;
    row.name = site.StringOr("name", "?");
    row.count = site.NumberOr("count", 0);
    row.total_ns = site.NumberOr("total_ns", 0);
    row.self_ns = site.NumberOr("self_ns", 0);
    report.total_self_ns += row.self_ns;
    SiteRow& sub = rollup[SubsystemOf(row.name)];
    sub.name = SubsystemOf(row.name);
    sub.count += row.count;
    sub.total_ns += row.total_ns;
    sub.self_ns += row.self_ns;
    report.sites.push_back(std::move(row));
  }
  auto by_self = [](const SiteRow& a, const SiteRow& b) {
    return a.self_ns != b.self_ns ? a.self_ns > b.self_ns : a.name < b.name;
  };
  std::sort(report.sites.begin(), report.sites.end(), by_self);
  for (auto& [name, row] : rollup) report.subsystems.push_back(row);
  std::sort(report.subsystems.begin(), report.subsystems.end(), by_self);
  return report;
}

// --- spans section ----------------------------------------------------------

struct SegmentRow {
  std::string kind;
  SampleSet dur_us;
  double total_ns = 0;
};

struct SpansReport {
  std::size_t num_spans = 0;
  SampleSet span_total_us;
  std::vector<SegmentRow> segments;  // sorted by total_ns desc
  double segments_total_ns = 0;
};

std::optional<SpansReport> BuildSpansReport(const JsonValue& doc) {
  const JsonValue* spans = doc.Find("spans");
  if (spans == nullptr || !spans->IsArray()) return std::nullopt;
  SpansReport report;
  std::map<std::string, SegmentRow> by_kind;
  for (const JsonValue& span : spans->array) {
    ++report.num_spans;
    report.span_total_us.Add(span.NumberOr("total_ns", 0) / 1000.0);
    const JsonValue* segments = span.Find("segments");
    if (segments == nullptr || !segments->IsArray()) continue;
    for (const JsonValue& seg : segments->array) {
      std::string kind = seg.StringOr("kind", "?");
      // Store-side waits and service are per-shard facts; key them by the
      // closing component so a hot shard stands out.
      if (kind == "queue_wait" || kind == "service") {
        kind.append("@");
        kind.append(seg.StringOr("to", "?"));
      }
      const double dur = seg.NumberOr("dur_ns", 0);
      SegmentRow& row = by_kind[kind];
      row.kind = kind;
      row.dur_us.Add(dur / 1000.0);
      row.total_ns += dur;
      report.segments_total_ns += dur;
    }
  }
  for (auto& [kind, row] : by_kind) report.segments.push_back(std::move(row));
  std::sort(report.segments.begin(), report.segments.end(),
            [](const SegmentRow& a, const SegmentRow& b) {
              return a.total_ns != b.total_ns ? a.total_ns > b.total_ns
                                              : a.kind < b.kind;
            });
  return report;
}

// --- metrics section --------------------------------------------------------

struct ShardRow {
  std::string component;
  double peak_queue_depth = 0;
  double final_busy_frac = 0;
  /// Final (cumulative) wire-byte counters by request type, plus responses.
  std::map<std::string, double> bytes;
};

struct MetricsReport {
  std::size_t num_snapshots = 0;
  std::vector<ShardRow> shards;  // sorted by component name
};

const char* const kByteCounters[] = {
    "init_bytes_rx",     "repl_bytes_rx",  "renew_bytes_rx",
    "read_buffer_bytes_rx", "snapshot_bytes_rx", "chain_bytes_rx",
    "batch_bytes_rx",    "resp_bytes_tx"};

std::optional<MetricsReport> BuildMetricsReport(const JsonValue& doc) {
  const JsonValue* series = doc.Find("series");
  if (series == nullptr || !series->IsArray()) return std::nullopt;
  MetricsReport report;
  report.num_snapshots = series->array.size();
  std::map<std::string, ShardRow> shards;
  for (const JsonValue& snap : series->array) {
    const JsonValue* metrics = snap.Find("metrics");
    if (metrics == nullptr || !metrics->IsObject()) continue;
    for (const auto& [name, value] : metrics->object) {
      if (!value.IsNumber()) continue;
      const std::size_t dot = name.rfind('.');
      if (dot == std::string::npos) continue;
      const std::string component = name.substr(0, dot);
      const std::string metric = name.substr(dot + 1);
      if (metric == "queue_depth") {
        ShardRow& row = shards[component];
        row.component = component;
        row.peak_queue_depth = std::max(row.peak_queue_depth, value.number);
      } else if (metric == "busy_frac") {
        ShardRow& row = shards[component];
        row.component = component;
        row.final_busy_frac = value.number;  // last snapshot wins
      } else {
        for (const char* counter : kByteCounters) {
          if (metric == counter) {
            ShardRow& row = shards[component];
            row.component = component;
            row.bytes[metric] = value.number;  // cumulative; last wins
            break;
          }
        }
      }
    }
  }
  for (auto& [name, row] : shards) {
    // Only report components that look like stores (have occupancy or byte
    // counters) — switch registries also flow through the hub.
    if (row.peak_queue_depth > 0 || row.final_busy_frac > 0 ||
        !row.bytes.empty()) {
      report.shards.push_back(std::move(row));
    }
  }
  return report;
}

// --- recovery section -------------------------------------------------------

struct PhaseRow {
  std::string name;
  double start_ns = 0;
  double end_ns = 0;
  double duration_ns = 0;
};

struct EpisodeRow {
  double id = 0;
  std::string trigger;
  double fault_at_ns = 0;
  double downtime_ns = 0;
  bool complete = false;
  bool phase_sum_ok = false;
  std::vector<PhaseRow> phases;
  double flow_count = 0;
  double flow_p50_us = 0;
  double flow_p99_us = 0;
  double flow_max_us = 0;
  double evicted_during = 0;
  double trace_records = 0;
};

struct RecoveryReport {
  std::vector<EpisodeRow> episodes;
};

std::optional<RecoveryReport> BuildRecoveryReport(const JsonValue& doc) {
  const JsonValue* episodes = doc.Find("episodes");
  if (episodes == nullptr || !episodes->IsArray()) return std::nullopt;
  RecoveryReport report;
  for (const JsonValue& ep : episodes->array) {
    EpisodeRow row;
    row.id = ep.NumberOr("id", 0);
    row.trigger = ep.StringOr("trigger", "?");
    row.fault_at_ns = ep.NumberOr("fault_at_ns", 0);
    row.downtime_ns = ep.NumberOr("downtime_ns", 0);
    auto bool_of = [&ep](std::string_view key) {
      const JsonValue* v = ep.Find(key);
      return v != nullptr && v->type == JsonValue::Type::kBool && v->boolean;
    };
    row.complete = bool_of("complete");
    row.phase_sum_ok = bool_of("phase_sum_ok");
    if (const JsonValue* phases = ep.Find("phases");
        phases != nullptr && phases->IsArray()) {
      for (const JsonValue& ph : phases->array) {
        PhaseRow pr;
        pr.name = ph.StringOr("name", "?");
        pr.start_ns = ph.NumberOr("start_ns", 0);
        pr.end_ns = ph.NumberOr("end_ns", 0);
        pr.duration_ns = ph.NumberOr("duration_ns", 0);
        row.phases.push_back(std::move(pr));
      }
    }
    if (const JsonValue* flows = ep.Find("flows");
        flows != nullptr && flows->IsObject()) {
      row.flow_count = flows->NumberOr("count", 0);
      row.flow_p50_us = flows->NumberOr("p50_us", 0);
      row.flow_p99_us = flows->NumberOr("p99_us", 0);
      row.flow_max_us = flows->NumberOr("max_us", 0);
    }
    row.evicted_during = ep.NumberOr("evicted_during", 0);
    row.trace_records = ep.NumberOr("trace_records", 0);
    report.episodes.push_back(std::move(row));
  }
  return report;
}

// --- rendering --------------------------------------------------------------

std::string Pct(double part, double whole) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                whole > 0 ? 100.0 * part / whole : 0.0);
  return buf;
}

std::string Num(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

void RenderMarkdown(std::ostream& os, const Options& opt,
                    const std::optional<ProfileReport>& profile,
                    const std::optional<SpansReport>& spans,
                    const std::optional<MetricsReport>& metrics,
                    const std::optional<RecoveryReport>& recovery) {
  os << "# RedPlane performance report\n";
  if (recovery.has_value()) {
    os << "\n## Recovery episodes (" << recovery->episodes.size()
       << " detected)\n";
    for (const EpisodeRow& ep : recovery->episodes) {
      os << "\n### Episode " << Num(ep.id, 0) << ": " << ep.trigger
         << " at t=" << Num(ep.fault_at_ns / 1e6, 3) << " ms\n\n";
      os << "Downtime " << Num(ep.downtime_ns / 1e6, 3) << " ms"
         << (ep.complete ? "" : " (INCOMPLETE: service never resumed)")
         << "; phase-sum invariant "
         << (ep.phase_sum_ok ? "holds" : "**VIOLATED**") << ".\n\n";
      os << "| Phase | Start (ms) | End (ms) | Duration (ms) | Share |\n";
      os << "|---|---:|---:|---:|---:|\n";
      for (const PhaseRow& ph : ep.phases) {
        os << "| " << ph.name << " | " << Num(ph.start_ns / 1e6, 3) << " | "
           << Num(ph.end_ns / 1e6, 3) << " | " << Num(ph.duration_ns / 1e6, 3)
           << " | " << Pct(ph.duration_ns, ep.downtime_ns) << " |\n";
      }
      if (ep.flow_count > 0) {
        os << "\nFlows interrupted: " << Num(ep.flow_count, 0)
           << "; per-flow downtime p50=" << Num(ep.flow_p50_us / 1e3, 2)
           << " ms, p99=" << Num(ep.flow_p99_us / 1e3, 2)
           << " ms, max=" << Num(ep.flow_max_us / 1e3, 2) << " ms.\n";
      }
      os << "\nFlight recorder: " << Num(ep.trace_records, 0)
         << " trace records preserved, " << Num(ep.evicted_during, 0)
         << " evicted during the episode.\n";
    }
  }
  if (profile.has_value()) {
    os << "\n## CPU attribution (wall-clock self time per subsystem)\n\n";
    os << "| Subsystem | Self (ms) | Share | Entries |\n";
    os << "|---|---:|---:|---:|\n";
    for (const SiteRow& row : profile->subsystems) {
      os << "| " << row.name << " | " << Num(row.self_ns / 1e6, 3) << " | "
         << Pct(row.self_ns, profile->total_self_ns) << " | "
         << Num(row.count, 0) << " |\n";
    }
    os << "\n### Top sites by self time\n\n";
    os << "| Site | Self (ms) | Total (ms) | Share | Entries |\n";
    os << "|---|---:|---:|---:|---:|\n";
    std::size_t shown = 0;
    for (const SiteRow& row : profile->sites) {
      if (shown++ >= opt.top) break;
      os << "| " << row.name << " | " << Num(row.self_ns / 1e6, 3) << " | "
         << Num(row.total_ns / 1e6, 3) << " | "
         << Pct(row.self_ns, profile->total_self_ns) << " | "
         << Num(row.count, 0) << " |\n";
    }
  }
  if (spans.has_value()) {
    os << "\n## Request latency decomposition (" << spans->num_spans
       << " spans)\n\n";
    if (!spans->span_total_us.Empty()) {
      os << "End-to-end: p50=" << Num(spans->span_total_us.Percentile(50))
         << " us, p99=" << Num(spans->span_total_us.Percentile(99))
         << " us over " << spans->span_total_us.Count() << " requests.\n\n";
    }
    os << "| Segment | Share of total | p50 (us) | p99 (us) | n |\n";
    os << "|---|---:|---:|---:|---:|\n";
    for (const SegmentRow& row : spans->segments) {
      os << "| " << row.kind << " | "
         << Pct(row.total_ns, spans->segments_total_ns) << " | "
         << Num(row.dur_us.Percentile(50)) << " | "
         << Num(row.dur_us.Percentile(99)) << " | " << row.dur_us.Count()
         << " |\n";
    }
  }
  if (metrics.has_value()) {
    os << "\n## Shard occupancy and wire bytes (" << metrics->num_snapshots
       << " snapshots)\n\n";
    os << "| Shard | Peak queue depth | Busy frac |";
    for (const char* counter : kByteCounters) os << " " << counter << " |";
    os << "\n|---|---:|---:|";
    for (std::size_t i = 0; i < std::size(kByteCounters); ++i) os << "---:|";
    os << "\n";
    for (const ShardRow& row : metrics->shards) {
      os << "| " << row.component << " | " << Num(row.peak_queue_depth) << " | "
         << Num(row.final_busy_frac, 4) << " |";
      for (const char* counter : kByteCounters) {
        auto it = row.bytes.find(counter);
        os << " " << Num(it == row.bytes.end() ? 0 : it->second, 0) << " |";
      }
      os << "\n";
    }
  }
  if (!profile.has_value() && !spans.has_value() && !metrics.has_value() &&
      !recovery.has_value()) {
    os << "\n(no inputs given — pass --profile/--spans/--metrics/"
          "--recovery)\n";
  }
}

void RenderJson(std::ostream& os, const Options& opt,
                const std::optional<ProfileReport>& profile,
                const std::optional<SpansReport>& spans,
                const std::optional<MetricsReport>& metrics,
                const std::optional<RecoveryReport>& recovery) {
  os << "{";
  bool first_section = true;
  auto section = [&](const char* name) {
    if (!first_section) os << ",";
    first_section = false;
    os << "\n\"" << name << "\": ";
  };
  if (profile.has_value()) {
    section("profile");
    os << "{\"total_self_ns\": " << JsonNumber(profile->total_self_ns)
       << ", \"subsystems\": [";
    for (std::size_t i = 0; i < profile->subsystems.size(); ++i) {
      const SiteRow& row = profile->subsystems[i];
      if (i) os << ",";
      os << "\n  {\"name\": \"" << JsonEscape(row.name) << "\", \"self_ns\": "
         << JsonNumber(row.self_ns) << ", \"total_ns\": "
         << JsonNumber(row.total_ns) << ", \"count\": "
         << JsonNumber(row.count) << "}";
    }
    os << "\n], \"top_sites\": [";
    for (std::size_t i = 0; i < std::min(opt.top, profile->sites.size());
         ++i) {
      const SiteRow& row = profile->sites[i];
      if (i) os << ",";
      os << "\n  {\"name\": \"" << JsonEscape(row.name) << "\", \"self_ns\": "
         << JsonNumber(row.self_ns) << ", \"total_ns\": "
         << JsonNumber(row.total_ns) << ", \"count\": "
         << JsonNumber(row.count) << "}";
    }
    os << "\n]}";
  }
  if (spans.has_value()) {
    section("spans");
    os << "{\"num_spans\": " << spans->num_spans;
    if (!spans->span_total_us.Empty()) {
      os << ", \"total_p50_us\": "
         << JsonNumber(spans->span_total_us.Percentile(50))
         << ", \"total_p99_us\": "
         << JsonNumber(spans->span_total_us.Percentile(99));
    }
    os << ", \"segments\": [";
    for (std::size_t i = 0; i < spans->segments.size(); ++i) {
      const SegmentRow& row = spans->segments[i];
      if (i) os << ",";
      os << "\n  {\"kind\": \"" << JsonEscape(row.kind) << "\", \"total_ns\": "
         << JsonNumber(row.total_ns) << ", \"p50_us\": "
         << JsonNumber(row.dur_us.Percentile(50)) << ", \"p99_us\": "
         << JsonNumber(row.dur_us.Percentile(99)) << ", \"n\": "
         << row.dur_us.Count() << "}";
    }
    os << "\n]}";
  }
  if (metrics.has_value()) {
    section("shards");
    os << "[";
    for (std::size_t i = 0; i < metrics->shards.size(); ++i) {
      const ShardRow& row = metrics->shards[i];
      if (i) os << ",";
      os << "\n  {\"component\": \"" << JsonEscape(row.component)
         << "\", \"peak_queue_depth\": " << JsonNumber(row.peak_queue_depth)
         << ", \"busy_frac\": " << JsonNumber(row.final_busy_frac);
      for (const auto& [name, value] : row.bytes) {
        os << ", \"" << JsonEscape(name) << "\": " << JsonNumber(value);
      }
      os << "}";
    }
    os << "\n]";
  }
  if (recovery.has_value()) {
    section("recovery");
    os << "[";
    for (std::size_t i = 0; i < recovery->episodes.size(); ++i) {
      const EpisodeRow& ep = recovery->episodes[i];
      if (i) os << ",";
      os << "\n  {\"id\": " << JsonNumber(ep.id) << ", \"trigger\": \""
         << JsonEscape(ep.trigger)
         << "\", \"fault_at_ns\": " << JsonNumber(ep.fault_at_ns)
         << ", \"downtime_ns\": " << JsonNumber(ep.downtime_ns)
         << ", \"complete\": " << (ep.complete ? "true" : "false")
         << ", \"phase_sum_ok\": " << (ep.phase_sum_ok ? "true" : "false")
         << ", \"phases\": [";
      for (std::size_t p = 0; p < ep.phases.size(); ++p) {
        const PhaseRow& ph = ep.phases[p];
        os << (p ? ", " : "") << "{\"name\": \"" << JsonEscape(ph.name)
           << "\", \"duration_ns\": " << JsonNumber(ph.duration_ns) << "}";
      }
      os << "], \"flows\": " << JsonNumber(ep.flow_count)
         << ", \"flow_p99_us\": " << JsonNumber(ep.flow_p99_us)
         << ", \"evicted_during\": " << JsonNumber(ep.evicted_during) << "}";
    }
    os << "\n]";
  }
  os << "\n}\n";
}

std::optional<Options> ParseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& flag) -> std::optional<std::string> {
      const std::string prefix = "--" + flag + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (arg == "--" + flag && i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    if (auto v = value_of("profile")) {
      opt.profile_path = *v;
    } else if (auto v = value_of("spans")) {
      opt.spans_path = *v;
    } else if (auto v = value_of("metrics")) {
      opt.metrics_path = *v;
    } else if (auto v = value_of("recovery")) {
      opt.recovery_path = *v;
    } else if (auto v = value_of("out")) {
      opt.out_path = *v;
    } else if (auto v = value_of("format")) {
      opt.format = *v;
    } else if (auto v = value_of("top")) {
      opt.top = static_cast<std::size_t>(std::stoul(*v));
    } else {
      std::fprintf(
          stderr,
          "usage: rpreport [--profile=FILE] [--spans=FILE] [--metrics=FILE]\n"
          "                [--recovery=FILE] [--out=FILE] [--format=md|json]\n"
          "                [--top=N]\n");
      return std::nullopt;
    }
  }
  if (opt.format != "md" && opt.format != "json") {
    std::fprintf(stderr, "rpreport: unknown --format=%s (md or json)\n",
                 opt.format.c_str());
    return std::nullopt;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = ParseArgs(argc, argv);
  if (!opt.has_value()) return 2;

  std::optional<ProfileReport> profile;
  std::optional<SpansReport> spans;
  std::optional<MetricsReport> metrics;
  std::optional<RecoveryReport> recovery;
  bool input_error = false;
  if (!opt->profile_path.empty()) {
    auto doc = LoadJsonFile(opt->profile_path);
    if (doc.has_value()) profile = BuildProfileReport(*doc);
    input_error = input_error || !profile.has_value();
  }
  if (!opt->spans_path.empty()) {
    auto doc = LoadJsonFile(opt->spans_path);
    if (doc.has_value()) spans = BuildSpansReport(*doc);
    input_error = input_error || !spans.has_value();
  }
  if (!opt->metrics_path.empty()) {
    auto doc = LoadJsonFile(opt->metrics_path);
    if (doc.has_value()) metrics = BuildMetricsReport(*doc);
    input_error = input_error || !metrics.has_value();
  }
  if (!opt->recovery_path.empty()) {
    auto doc = LoadJsonFile(opt->recovery_path);
    if (doc.has_value()) recovery = BuildRecoveryReport(*doc);
    input_error = input_error || !recovery.has_value();
  }

  std::ostringstream out;
  if (opt->format == "json") {
    RenderJson(out, *opt, profile, spans, metrics, recovery);
  } else {
    RenderMarkdown(out, *opt, profile, spans, metrics, recovery);
  }
  if (opt->out_path.empty()) {
    std::cout << out.str();
  } else {
    std::ofstream os(opt->out_path);
    os << out.str();
    os.flush();
    if (!os) {
      std::fprintf(stderr, "rpreport: failed to write %s\n",
                   opt->out_path.c_str());
      return 1;
    }
    std::printf("rpreport: wrote %s report to %s\n", opt->format.c_str(),
                opt->out_path.c_str());
  }
  return input_error ? 1 : 0;
}
