// Per-tenant heavy-hitter monitoring in bounded-inconsistency mode.
//
// A write-centric application: every packet updates a per-VLAN count-min
// sketch.  Synchronous replication would cost a store round trip per packet;
// instead the sketches opt into RedPlane's bounded-inconsistency mode
// (§4.4/§5.4): consistent snapshots are taken with the lazy double-buffer
// algorithm and replicated asynchronously every T_snap.  After a switch
// failure the store's copy is at most ε stale — the demo fails the switch
// and compares the recovered counts against ground truth.
//
//   $ ./heavy_hitter_monitoring
#include <cstdio>
#include <map>

#include "apps/heavy_hitter.h"
#include "common/rng.h"
#include "core/redplane_switch.h"
#include "net/codec.h"
#include "routing/failure.h"
#include "routing/topology.h"
#include "trace/workload.h"

using namespace redplane;

int main() {
  sim::Simulator sim;
  routing::Testbed tb = routing::BuildTestbed(sim);

  apps::HeavyHitterConfig hh_config;
  hh_config.vlans = {1, 2};  // two tenants
  hh_config.threshold = 500;
  apps::HeavyHitterApp hh(hh_config);

  core::RedPlaneConfig rp_config;
  rp_config.linearizable = false;  // bounded-inconsistency mode
  rp_config.snapshot_period = Milliseconds(1);
  rp_config.epsilon_bound = Milliseconds(10);
  auto shard_for = [&](const net::PartitionKey&) { return tb.StoreHeadIp(); };
  core::RedPlaneSwitch rp0(*tb.agg[0], hh, shard_for, rp_config);
  tb.agg[0]->SetPipeline(&rp0);
  rp0.StartSnapshotReplication(hh);

  // Tenant traffic: a zipf-skewed flow mix per VLAN.
  Rng rng(7);
  trace::FlowMixConfig mix;
  mix.num_packets = 4000;
  mix.num_flows = 64;
  mix.zipf_theta = 1.3;
  mix.mean_interarrival = Microseconds(10);
  std::map<std::uint16_t, std::uint64_t> injected;
  for (std::uint16_t vlan : hh_config.vlans) {
    mix.vlan = vlan;
    for (const auto& spec : trace::GenerateFlowMix(rng, mix)) {
      sim.ScheduleAt(spec.time, [&tb, spec]() {
        tb.agg[0]->HandlePacket(trace::MaterializePacket(spec), 0);
      });
      ++injected[vlan];
    }
  }
  sim.RunUntil(Milliseconds(60));

  std::printf("Injected per tenant: vlan1=%llu vlan2=%llu packets\n",
              static_cast<unsigned long long>(injected[1]),
              static_cast<unsigned long long>(injected[2]));
  std::printf("Heavy flows detected: vlan1=%zu vlan2=%zu (threshold %u)\n",
              hh.HeavyFlows(1).size(), hh.HeavyFlows(2).size(),
              hh_config.threshold);
  std::printf("Snapshot rounds replicated: %g (one per %lld us)\n",
              rp0.stats().Get("snapshot_slots_sent") / 64 / 2,
              static_cast<long long>(
                  ToMicroseconds(rp_config.snapshot_period)));

  // Fail the switch: live sketches are gone.  Recover counts from the
  // store's newest snapshot and compare against the ground truth.
  routing::FailureInjector injector(sim, *tb.fabric);
  injector.FailNode(tb.agg[0]);
  sim.Run();

  for (std::uint16_t vlan : hh_config.vlans) {
    const auto* rec = tb.store[0]->Find(net::PartitionKey::OfVlan(vlan));
    std::uint64_t recovered = 0;
    if (rec != nullptr) {
      for (const auto& [idx, slot] : rec->snapshot_slots) {
        net::ByteReader r(slot.first);
        recovered += r.U32();  // row 0 of the sketch
      }
    }
    const double loss_pct =
        injected[vlan] == 0
            ? 0
            : 100.0 * (1.0 - static_cast<double>(recovered) /
                                 static_cast<double>(injected[vlan]));
    std::printf(
        "vlan %u: recovered %llu of %llu updates from the store "
        "(%.2f%% lost — bounded by the last snapshot interval, eps=%lld ms)\n",
        vlan, static_cast<unsigned long long>(recovered),
        static_cast<unsigned long long>(injected[vlan]), loss_pct,
        static_cast<long long>(rp_config.epsilon_bound / kMillisecond));
  }
  std::printf("epsilon violations during the run: %g\n",
              rp0.stats().Get("epsilon_violations"));
  return 0;
}
