// In-switch NAT with and without RedPlane across a switch failure.
//
// Reproduces the paper's Fig. 1 scenario end to end: established
// connections traverse an in-switch NAT on an aggregation switch; the
// switch fails; ECMP reroutes the flows to the other aggregation switch.
// Without fault tolerance the translation table (and port allocations) are
// gone: the replacement switch assigns fresh mappings, so every established
// connection changes identity mid-stream — broken, from the remote peer's
// point of view.  With RedPlane the replacement switch migrates each flow's
// mapping from the state store and connections continue unchanged.
//
//   $ ./nat_failover
#include <cstdio>
#include <map>

#include "apps/nat.h"
#include "baselines/plain_pipeline.h"
#include "core/redplane_switch.h"
#include "net/codec.h"
#include "routing/failure.h"
#include "routing/topology.h"

using namespace redplane;

namespace {

constexpr net::Ipv4Addr kInternalPrefix(192, 168, 0, 0);
constexpr std::uint32_t kInternalMask = 0xffff0000;
constexpr net::Ipv4Addr kNatIp(100, 100, 0, 1);
constexpr int kFlows = 40;

struct RunResult {
  int established = 0;
  int survived = 0;
  int broken = 0;
};

net::FlowKey FlowI(int i) {
  return {routing::RackServerIp(0, 0), routing::ExternalHostIp(0),
          static_cast<std::uint16_t>(10000 + i), 80, net::IpProto::kUdp};
}

net::Packet TaggedPacket(int flow_id) {
  net::Packet pkt = net::MakeUdpPacket(FlowI(flow_id), 80);
  std::vector<std::byte> buf;
  net::ByteWriter w(buf);
  w.U16(static_cast<std::uint16_t>(flow_id));
  pkt.payload = std::move(buf);
  return pkt;
}

RunResult Run(bool with_redplane) {
  sim::Simulator sim;
  // The fault-tolerant deployment keeps the port pool at the state store;
  // the plain deployment keeps one pool per switch (all it can do).
  apps::NatGlobalState store_pool(kNatIp, 5000, 1024, kInternalPrefix,
                                  kInternalMask);
  apps::NatGlobalState local_pool0(kNatIp, 5000, 1024, kInternalPrefix,
                                   kInternalMask);
  apps::NatGlobalState local_pool1(kNatIp, 5000, 1024, kInternalPrefix,
                                   kInternalMask);

  routing::TestbedConfig config;
  config.store.lease_period = Milliseconds(100);
  config.fabric.failure_detection_delay = Milliseconds(20);
  config.store.initializer = [&store_pool](const net::PartitionKey& key) {
    return store_pool.InitializeFlow(key);
  };
  routing::Testbed tb = routing::BuildTestbed(sim, config);
  tb.fabric->AssignAddress(tb.agg[0], kNatIp);
  tb.fabric->RecomputeNow();

  apps::NatApp rp_nat(store_pool);
  apps::NatApp plain_nat0(local_pool0);
  apps::NatApp plain_nat1(local_pool1);
  core::RedPlaneConfig rp_config;
  rp_config.lease_period = Milliseconds(100);
  rp_config.renew_interval = Milliseconds(50);
  auto shard_for = [&](const net::PartitionKey&) { return tb.StoreHeadIp(); };
  core::RedPlaneSwitch rp0(*tb.agg[0], rp_nat, shard_for, rp_config);
  core::RedPlaneSwitch rp1(*tb.agg[1], rp_nat, shard_for, rp_config);
  baselines::PlainAppPipeline plain0(
      *tb.agg[0], plain_nat0, [&](const net::PartitionKey& key) {
        return local_pool0.InitializeFlow(key);
      });
  baselines::PlainAppPipeline plain1(
      *tb.agg[1], plain_nat1, [&](const net::PartitionKey& key) {
        return local_pool1.InitializeFlow(key);
      });
  if (with_redplane) {
    tb.agg[0]->SetPipeline(&rp0);
    tb.agg[1]->SetPipeline(&rp1);
  } else {
    tb.agg[0]->SetPipeline(&plain0);
    tb.agg[1]->SetPipeline(&plain1);
  }

  // The external server records, per connection, the translated source
  // port it sees.  A mid-stream port change = broken connection.
  std::map<int, std::uint16_t> seen_port;
  int mismatches = 0;
  int arrivals = 0;
  tb.external[0]->SetHandler([&](sim::HostNode&, net::Packet pkt) {
    if (!pkt.udp.has_value() || pkt.payload.size() < 2) return;
    net::ByteReader r(pkt.payload);
    const int flow_id = r.U16();
    ++arrivals;
    auto [it, inserted] = seen_port.emplace(flow_id, pkt.udp->src_port);
    if (!inserted && it->second != pkt.udp->src_port) ++mismatches;
  });

  RunResult result;
  for (int i = 0; i < kFlows; ++i) {
    tb.rack_servers[0][0]->Send(TaggedPacket(i));
    sim.RunUntil(sim.Now() + Milliseconds(2));
  }
  sim.RunUntil(sim.Now() + Milliseconds(100));
  result.established = static_cast<int>(seen_port.size());

  routing::FailureInjector injector(sim, *tb.fabric);
  injector.FailNode(tb.agg[0]);
  tb.fabric->AssignAddress(tb.agg[1], kNatIp);
  sim.RunUntil(sim.Now() + Milliseconds(300));

  arrivals = 0;
  for (int i = 0; i < kFlows; ++i) {
    tb.rack_servers[0][0]->Send(TaggedPacket(i));
    sim.RunUntil(sim.Now() + Milliseconds(2));
  }
  sim.RunUntil(sim.Now() + Milliseconds(300));
  result.broken = mismatches + (kFlows - arrivals);
  result.survived = kFlows - result.broken;
  return result;
}

}  // namespace

int main() {
  std::printf("Establishing %d connections through an in-switch NAT, then "
              "failing the carrying switch.\n\n",
              kFlows);
  const RunResult plain = Run(/*with_redplane=*/false);
  std::printf("without RedPlane: %2d established; after failover %2d intact, "
              "%2d broken (translation changed or dropped)\n",
              plain.established, plain.survived, plain.broken);
  const RunResult rp = Run(/*with_redplane=*/true);
  std::printf("with    RedPlane: %2d established; after failover %2d intact, "
              "%2d broken\n",
              rp.established, rp.survived, rp.broken);
  return 0;
}
