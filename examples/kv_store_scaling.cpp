// In-switch key-value store: update-ratio sweep and store scaling.
//
// The paper's Fig. 13 workload: clients issue reads and updates against a
// key-value store running in the switch data plane.  Reads are served from
// switch state under the lease; updates replicate synchronously.  This demo
// runs a packet-level version at small scale and the calibrated analytic
// model at paper scale, showing the same shape: throughput degrades with
// the update ratio and recovers with more state-store shards.
//
//   $ ./kv_store_scaling
#include <cstdio>

#include "apps/kv_store.h"
#include "common/rng.h"
#include "core/analytic.h"
#include "core/redplane_switch.h"
#include "routing/topology.h"
#include "trace/workload.h"

using namespace redplane;

namespace {

/// Packet-level mini-run: fraction of ops completed per unit time.
double PacketLevelCompletionRate(double update_ratio) {
  sim::Simulator sim;
  routing::TestbedConfig config;
  config.store.service_time = Microseconds(2);
  routing::Testbed tb = routing::BuildTestbed(sim, config);
  apps::KvStoreApp kv;
  auto shard_for = [&](const net::PartitionKey&) { return tb.StoreHeadIp(); };
  core::RedPlaneSwitch rp0(*tb.agg[0], kv, shard_for);
  core::RedPlaneSwitch rp1(*tb.agg[1], kv, shard_for);
  tb.agg[0]->SetPipeline(&rp0);
  tb.agg[1]->SetPipeline(&rp1);

  std::uint64_t replies = 0;
  tb.external[0]->SetHandler([&](sim::HostNode&, net::Packet) { ++replies; });

  Rng rng(23);
  trace::KvOpsConfig ops_config;
  ops_config.num_ops = 2000;
  ops_config.num_keys = 256;
  ops_config.update_ratio = update_ratio;
  ops_config.mean_interarrival = Microseconds(5);
  net::FlowKey client{routing::ExternalHostIp(0), routing::RackServerIp(0, 0),
                      3333, apps::kKvUdpPort, net::IpProto::kUdp};
  const auto ops = trace::GenerateKvOps(rng, ops_config);
  for (const auto& op : ops) {
    sim.ScheduleAt(op.time, [&tb, client, op]() {
      tb.external[0]->Send(apps::MakeKvPacket(client, op.request));
    });
  }
  sim.Run();
  return static_cast<double>(replies) / static_cast<double>(ops.size());
}

}  // namespace

int main() {
  std::printf("== Packet-level (small scale): op completion vs update ratio ==\n");
  for (double u : {0.0, 0.5, 1.0}) {
    std::printf("  update_ratio=%.1f  completed=%.1f%%\n", u,
                100.0 * PacketLevelCompletionRate(u));
  }

  std::printf("\n== Analytic model (paper scale, Fig. 13 shape) ==\n");
  std::printf("  %-14s %-12s %-12s %-12s\n", "update_ratio", "1 store",
              "2 stores", "3 stores");
  for (double u = 0.0; u <= 1.001; u += 0.2) {
    std::printf("  %-14.1f", u);
    for (int stores = 1; stores <= 3; ++stores) {
      core::AnalyticConfig cfg;
      cfg.sync_update_fraction = u;
      cfg.num_stores = stores;
      cfg.store_rps = 35e6;
      const auto result = core::PredictThroughput(cfg);
      std::printf(" %-11.1f", result.throughput_pps / 1e6);
    }
    std::printf(" Mpps\n");
  }
  std::printf("\nReads never leave the switch (lease-local); only updates "
              "pay the store round trip, so added shards restore "
              "update-heavy throughput.\n");
  return 0;
}
