// Cellular packet-core offload (EPC serving gateway) with RedPlane.
//
// A mixed-read/write application (paper §2.1, Table 1): per-user bearer
// state is written by control-plane signaling (~5% of traffic) and read by
// every data packet.  The demo attaches a population of users, streams the
// paper's 17:1 data:signaling mix through the switch, fails it, and shows
// active sessions surviving on the standby switch — no user re-attach, the
// failure mode 3GPP restoration procedures exist to paper over.
//
//   $ ./epc_sgw_acceleration
#include <cstdio>

#include "apps/epc_sgw.h"
#include "common/rng.h"
#include "core/redplane_switch.h"
#include "routing/failure.h"
#include "routing/topology.h"
#include "trace/workload.h"

using namespace redplane;

int main() {
  sim::Simulator sim;
  routing::TestbedConfig config;
  config.store.lease_period = Milliseconds(200);
  config.fabric.failure_detection_delay = Milliseconds(20);
  // The SGW partitions state by user (destination) address: configure ECMP
  // to hash on it so a user's signaling and data share a switch (§2's
  // partition-affinity assumption).
  config.fabric.ecmp_hash = routing::FabricConfig::EcmpHash::kDstAddress;
  routing::Testbed tb = routing::BuildTestbed(sim, config);

  apps::EpcSgwApp sgw;
  core::RedPlaneConfig rp_config;
  rp_config.lease_period = Milliseconds(200);
  rp_config.renew_interval = Milliseconds(100);
  auto shard_for = [&](const net::PartitionKey&) { return tb.StoreHeadIp(); };
  core::RedPlaneSwitch rp0(*tb.agg[0], sgw, shard_for, rp_config);
  core::RedPlaneSwitch rp1(*tb.agg[1], sgw, shard_for, rp_config);
  tb.agg[0]->SetPipeline(&rp0);
  tb.agg[1]->SetPipeline(&rp1);

  // Users are addressed inside rack 0; their prefix terminates at one rack
  // server (each user IP is registered with the routing fabric).
  std::uint64_t delivered = 0;
  tb.rack_servers[0][1]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++delivered; });

  Rng rng(11);
  trace::EpcMixConfig mix;
  mix.num_packets = 4000;
  mix.num_users = 32;
  mix.user_base = net::Ipv4Addr(100, 64, 0, 10);
  mix.internet_src = routing::ExternalHostIp(0);
  for (std::size_t u = 0; u < mix.num_users; ++u) {
    tb.fabric->AssignAddress(tb.rack_servers[0][1],
                             net::Ipv4Addr(mix.user_base.value +
                                           static_cast<std::uint32_t>(u)));
  }
  tb.fabric->RecomputeNow();
  const auto packets = trace::GenerateEpcMix(rng, mix);
  std::uint64_t signaling = 0, data = 0;
  for (const auto& spec : packets) {
    (spec.signaling ? signaling : data) += 1;
    sim.ScheduleAt(spec.time, [&tb, spec]() {
      tb.external[0]->Send(trace::MaterializePacket(spec));
    });
  }

  // Fail the busy aggregation switch mid-run.
  routing::FailureInjector injector(sim, *tb.fabric);
  sim.Schedule(Milliseconds(15), [&]() {
    dp::SwitchNode* active = rp0.stats().Get("app_pkts") >
                                     rp1.stats().Get("app_pkts")
                                 ? tb.agg[0]
                                 : tb.agg[1];
    std::printf("t=20ms: failing %s\n", active->name().c_str());
    injector.FailNode(active);
  });

  sim.Run();

  const std::uint64_t total = signaling + data;
  std::printf("mix: %llu data + %llu signaling packets (%.1f%% signaling)\n",
              static_cast<unsigned long long>(data),
              static_cast<unsigned long long>(signaling),
              100.0 * signaling / total);
  std::printf("delivered to users: %llu/%llu data packets "
              "(losses are confined to the detection+migration window)\n",
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(data));
  std::printf("replication requests: agg0=%g agg1=%g "
              "(writes only: signaling traffic)\n",
              rp0.stats().Get("writes_replicated"),
              rp1.stats().Get("writes_replicated"));
  std::printf("bearers migrated to the standby: agg0=%g agg1=%g\n",
              rp0.stats().Get("grants_migrate"),
              rp1.stats().Get("grants_migrate"));
  return 0;
}
