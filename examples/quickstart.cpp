// Quickstart: make a stateful in-switch application fault tolerant.
//
// Builds the paper's testbed (one core switch, two programmable aggregation
// switches, two racks, a chain-replicated state store), wraps a per-flow
// counter in RedPlane, streams a flow through one switch, fails that switch,
// and shows the counter continuing — not resetting — on the other switch.
//
//   $ ./quickstart
#include <cstdio>

#include "apps/counter.h"
#include "core/redplane_switch.h"
#include "routing/failure.h"
#include "routing/topology.h"

using namespace redplane;

int main() {
  sim::Simulator sim;

  // 1. Build the fabric: topology, ECMP routing, state store chain.
  routing::TestbedConfig config;
  config.store.lease_period = Milliseconds(100);
  config.fabric.failure_detection_delay = Milliseconds(20);
  routing::Testbed tb = routing::BuildTestbed(sim, config);

  // 2. Write (or reuse) a stateful application.  SyncCounterApp updates its
  //    per-flow state on every packet — RedPlane's worst case.
  apps::SyncCounterApp app;

  // 3. Wrap it in RedPlane on both programmable switches.  The wrap is the
  //    entire integration surface: the app itself is unchanged.
  core::RedPlaneConfig rp_config;
  rp_config.lease_period = Milliseconds(100);
  auto shard_for = [&](const net::PartitionKey&) { return tb.StoreHeadIp(); };
  core::RedPlaneSwitch rp0(*tb.agg[0], app, shard_for, rp_config);
  core::RedPlaneSwitch rp1(*tb.agg[1], app, shard_for, rp_config);
  tb.agg[0]->SetPipeline(&rp0);
  tb.agg[1]->SetPipeline(&rp1);

  // 4. Stream a flow from an external host to a rack server.
  int delivered = 0;
  tb.rack_servers[0][0]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++delivered; });
  const net::FlowKey flow{routing::ExternalHostIp(0),
                          routing::RackServerIp(0, 0), 1234, 80,
                          net::IpProto::kUdp};
  for (int i = 0; i < 20; ++i) {
    tb.external[0]->Send(net::MakeUdpPacket(flow, 64));
    sim.RunUntil(sim.Now() + Milliseconds(1));
  }
  std::printf("before failure: %d packets delivered\n", delivered);

  // 5. Fail whichever switch is carrying the flow.
  dp::SwitchNode* active =
      rp0.stats().Get("app_pkts") > 0 ? tb.agg[0] : tb.agg[1];
  core::RedPlaneSwitch* standby_rp = active == tb.agg[0] ? &rp1 : &rp0;
  routing::FailureInjector injector(sim, *tb.fabric);
  injector.FailNode(active);
  std::printf("failed %s; rerouting + state migration in progress...\n",
              active->name().c_str());
  sim.RunUntil(sim.Now() + Milliseconds(200));

  // 6. Keep streaming: the standby switch picks the flow up from the store.
  for (int i = 0; i < 20; ++i) {
    tb.external[0]->Send(net::MakeUdpPacket(flow, 64));
    sim.RunUntil(sim.Now() + Milliseconds(1));
  }
  sim.Run();

  std::printf("after failover: %d packets delivered\n", delivered);
  std::printf("standby switch migrated %g flow(s) from the state store\n",
              standby_rp->stats().Get("grants_migrate"));
  const auto* rec = tb.store[0]->Find(net::PartitionKey::OfFlow(flow));
  std::printf("durable counter at the store: seq=%llu (state survives "
              "any single switch failure)\n",
              rec ? static_cast<unsigned long long>(rec->last_applied_seq)
                  : 0ull);
  return 0;
}
