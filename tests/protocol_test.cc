#include <gtest/gtest.h>

#include "core/protocol.h"

namespace redplane::core {
namespace {

net::PartitionKey FlowKey1() {
  net::FlowKey f{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(192, 168, 10, 1),
                 4321, 1234, net::IpProto::kTcp};
  return net::PartitionKey::OfFlow(f);
}

TEST(ProtocolTest, RoundTripPlainRequest) {
  Msg msg;
  msg.type = MsgType::kLeaseNewReq;
  msg.key = FlowKey1();
  msg.seq = 0;
  msg.reply_to = net::Ipv4Addr(172, 16, 0, 1);
  const auto bytes = EncodeMsg(msg);
  const auto decoded = DecodeMsg(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::kLeaseNewReq);
  EXPECT_EQ(decoded->key, msg.key);
  EXPECT_EQ(decoded->reply_to, msg.reply_to);
  EXPECT_FALSE(decoded->piggyback.has_value());
}

TEST(ProtocolTest, RoundTripWriteWithStateAndPiggyback) {
  Msg msg;
  msg.type = MsgType::kLeaseRenewReq;
  msg.key = FlowKey1();
  msg.seq = 42;
  msg.reply_to = net::Ipv4Addr(172, 16, 0, 2);
  msg.state = {std::byte{1}, std::byte{2}, std::byte{3}};
  net::FlowKey inner{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 7,
                     8, net::IpProto::kUdp};
  msg.piggyback = net::MakeUdpPacket(inner, 50);

  const auto decoded = DecodeMsg(EncodeMsg(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->state, msg.state);
  ASSERT_TRUE(decoded->piggyback.has_value());
  ASSERT_TRUE(decoded->piggyback->Flow().has_value());
  EXPECT_EQ(*decoded->piggyback->Flow(), inner);
  // Pad bytes come back as payload bytes; wire size is preserved.
  EXPECT_EQ(decoded->piggyback->WireSize(), msg.piggyback->WireSize());
}

class ProtocolTypeRoundTrip : public ::testing::TestWithParam<MsgType> {};

TEST_P(ProtocolTypeRoundTrip, AllTypesSurvive) {
  Msg msg;
  msg.type = GetParam();
  msg.ack = AckKind::kWriteAck;
  msg.key = net::PartitionKey::OfVlan(9);
  msg.seq = 7;
  msg.snapshot_index = 13;
  msg.chain_hop = 2;
  const auto decoded = DecodeMsg(EncodeMsg(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, GetParam());
  EXPECT_EQ(decoded->ack, AckKind::kWriteAck);
  EXPECT_EQ(decoded->snapshot_index, 13u);
  EXPECT_EQ(decoded->chain_hop, 2);
}

INSTANTIATE_TEST_SUITE_P(
    Types, ProtocolTypeRoundTrip,
    ::testing::Values(MsgType::kLeaseNewReq, MsgType::kLeaseRenewReq,
                      MsgType::kLeaseRenewOnly, MsgType::kReadBufferReq,
                      MsgType::kSnapshotRepl, MsgType::kAck));

TEST(ProtocolTest, AllKeyKindsRoundTrip) {
  for (const auto& key :
       {FlowKey1(), net::PartitionKey::OfVlan(42),
        net::PartitionKey::OfObject(0x1122334455667788ull)}) {
    Msg msg;
    msg.type = MsgType::kAck;
    msg.key = key;
    const auto decoded = DecodeMsg(EncodeMsg(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->key, key);
  }
}

TEST(ProtocolTest, HeaderWireSizeMatchesEncodedSize) {
  Msg msg;
  msg.type = MsgType::kLeaseRenewOnly;
  msg.key = FlowKey1();
  EXPECT_EQ(EncodeMsg(msg).size(), HeaderWireSize(msg.key));
  msg.key = net::PartitionKey::OfVlan(3);
  EXPECT_EQ(EncodeMsg(msg).size(), HeaderWireSize(msg.key));
  msg.key = net::PartitionKey::OfObject(5);
  EXPECT_EQ(EncodeMsg(msg).size(), HeaderWireSize(msg.key));
}

TEST(ProtocolTest, MalformedRejected) {
  EXPECT_FALSE(DecodeMsg({}).has_value());
  std::vector<std::byte> junk(10, std::byte{0x5a});
  EXPECT_FALSE(DecodeMsg(junk).has_value());
  // Valid magic but truncated body.
  Msg msg;
  msg.type = MsgType::kLeaseNewReq;
  msg.key = FlowKey1();
  const net::Buffer bytes = EncodeMsg(msg);
  EXPECT_FALSE(
      DecodeMsg(bytes.span().subspan(0, bytes.size() - 4)).has_value());
}

TEST(ProtocolTest, ProtocolPacketDetection) {
  Msg msg;
  msg.type = MsgType::kLeaseNewReq;
  msg.key = FlowKey1();
  const auto pkt = MakeProtocolPacket(net::Ipv4Addr(172, 16, 0, 1),
                                      net::Ipv4Addr(172, 16, 1, 1), msg);
  EXPECT_TRUE(IsProtocolPacket(pkt));
  EXPECT_EQ(pkt.ip->src, net::Ipv4Addr(172, 16, 0, 1));
  EXPECT_EQ(pkt.udp->dst_port, kRedPlaneUdpPort);

  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 7,
                 kRedPlaneUdpPort, net::IpProto::kUdp};
  const auto fake = net::MakeUdpPacket(f, 10);
  EXPECT_FALSE(IsProtocolPacket(fake));  // right port, wrong magic

  const auto decoded = DecodeFromPacket(pkt);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, msg.key);
}

TEST(ProtocolTest, PiggybackedProtocolPacketSurvivesWireRoundTrip) {
  // Full nesting: protocol packet -> wire bytes -> parse -> decode msg ->
  // inner packet intact.  This is the path a replication request takes
  // through the fabric.
  Msg msg;
  msg.type = MsgType::kLeaseRenewReq;
  msg.key = FlowKey1();
  msg.seq = 3;
  msg.state = {std::byte{0xaa}};
  net::FlowKey inner{net::Ipv4Addr(3, 3, 3, 3), net::Ipv4Addr(4, 4, 4, 4), 5,
                     6, net::IpProto::kTcp};
  msg.piggyback = net::MakeTcpPacket(inner, net::TcpFlags::kAck, 9, 10, 200);

  const auto pkt = MakeProtocolPacket(net::Ipv4Addr(172, 16, 0, 1),
                                      net::Ipv4Addr(172, 16, 1, 1), msg);
  const auto wire = net::Serialize(pkt);
  const auto parsed = net::Parse(wire);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(IsProtocolPacket(*parsed));
  const auto decoded = DecodeFromPacket(*parsed);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->piggyback.has_value());
  EXPECT_EQ(*decoded->piggyback->Flow(), inner);
  EXPECT_EQ(decoded->piggyback->tcp->seq, 9u);
}

}  // namespace
}  // namespace redplane::core
