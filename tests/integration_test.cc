// End-to-end integration tests on the full testbed topology: RedPlane
// applications on both aggregation switches, the chain-replicated state
// store, ECMP routing with failure detection, and real workloads.
#include <gtest/gtest.h>

#include "tests/audit_diag.h"

#include "apps/epc_sgw.h"
#include "apps/heavy_hitter.h"
#include "apps/nat.h"
#include "baselines/plain_pipeline.h"
#include "core/redplane_switch.h"
#include "obs/tracer.h"
#include "routing/failure.h"
#include "routing/topology.h"
#include "statestore/partition.h"
#include "tcp/tcp.h"
#include "trace/workload.h"

namespace redplane {
namespace {

using routing::BuildTestbed;
using routing::ExternalHostIp;
using routing::RackServerIp;
using routing::Testbed;
using routing::TestbedConfig;

constexpr net::Ipv4Addr kInternalPrefix(192, 168, 0, 0);
constexpr std::uint32_t kInternalMask = 0xffff0000;
constexpr net::Ipv4Addr kNatExternalIp(100, 100, 0, 1);

/// Installs a RedPlane-enabled app on both aggregation switches.
struct RedPlaneDeployment {
  RedPlaneDeployment(Testbed& tb, core::SwitchApp& app,
                     core::RedPlaneConfig config = {}) {
    auto shard_for = [&tb](const net::PartitionKey&) {
      return tb.StoreHeadIp();
    };
    rp[0] = std::make_unique<core::RedPlaneSwitch>(*tb.agg[0], app, shard_for,
                                                   config);
    rp[1] = std::make_unique<core::RedPlaneSwitch>(*tb.agg[1], app, shard_for,
                                                   config);
    tb.agg[0]->SetPipeline(rp[0].get());
    tb.agg[1]->SetPipeline(rp[1].get());
  }
  std::array<std::unique_ptr<core::RedPlaneSwitch>, 2> rp;
};

TEST(IntegrationTest, NatCarriesTrafficBothWaysThroughFabric) {
  sim::Simulator sim;
  TestbedConfig cfg;
  cfg.store.lease_period = Seconds(1);
  Testbed tb = BuildTestbed(sim, cfg);
  // The NAT external IP must be routable to nothing (it is the NAT itself);
  // outbound packets leave toward the external host after translation.
  apps::NatGlobalState nat_global(kNatExternalIp, 5000, 1024, kInternalPrefix,
                                  kInternalMask);
  // Store initializer consults the NAT's shared state.
  // (Rebuild the testbed store config is fixed; instead set the handler via
  // the store's config at build time — so rebuild with initializer.)
  TestbedConfig cfg2;
  cfg2.store.initializer = [&nat_global](const net::PartitionKey& key) {
    return nat_global.InitializeFlow(key);
  };
  sim::Simulator sim2;
  Testbed tb2 = BuildTestbed(sim2, cfg2);
  apps::NatApp nat(nat_global);
  RedPlaneDeployment deploy(tb2, nat);
  // External hosts must be able to route to the NAT external IP: traffic to
  // it terminates at the aggregation layer, which rewrites and re-routes.
  // Here the reply path targets the NAT IP; assign it to both agg switches'
  // pipelines by registering the address on agg0 (ECMP affinity keeps each
  // flow on one switch anyway).
  tb2.fabric->AssignAddress(tb2.agg[0], kNatExternalIp);
  tb2.fabric->RecomputeNow();

  int server_got = 0;
  int client_got = 0;
  // Internal client: rack server 0/0 talks to external host 0 through NAT.
  tb2.external[0]->SetHandler([&](sim::HostNode& self, net::Packet pkt) {
    ++server_got;
    // Echo back toward the NAT'd source.
    auto flow = pkt.Flow();
    ASSERT_TRUE(flow.has_value());
    net::Packet reply = net::MakeUdpPacket(flow->Reversed(), 10);
    self.Send(std::move(reply));
  });
  tb2.rack_servers[0][0]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++client_got; });

  net::FlowKey flow{RackServerIp(0, 0), ExternalHostIp(0), 7777, 80,
                    net::IpProto::kUdp};
  for (int i = 0; i < 3; ++i) {
    tb2.rack_servers[0][0]->Send(net::MakeUdpPacket(flow, 100));
    sim2.RunUntil(sim2.Now() + Milliseconds(1));
  }
  sim2.Run();
  EXPECT_EQ(server_got, 3);
  EXPECT_EQ(client_got, 3);
}

TEST(IntegrationTest, EpcSgwFailoverKeepsSessions) {
  sim::Simulator sim;
  TestbedConfig cfg;
  cfg.store.lease_period = Milliseconds(50);
  cfg.fabric.failure_detection_delay = Milliseconds(5);
  Testbed tb = BuildTestbed(sim, cfg);
  apps::EpcSgwApp sgw;
  core::RedPlaneConfig rp_cfg;
  rp_cfg.lease_period = Milliseconds(50);
  rp_cfg.renew_interval = Milliseconds(25);
  RedPlaneDeployment deploy(tb, sgw, rp_cfg);
  routing::FailureInjector injector(sim, *tb.fabric);

  const net::Ipv4Addr user = RackServerIp(0, 1);
  int data_delivered = 0;
  tb.rack_servers[0][1]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++data_delivered; });

  // Attach the user (signaling through whatever agg switch ECMP picks).
  tb.external[0]->Send(apps::MakeSgwSignalingPacket(ExternalHostIp(0), user,
                                                    777,
                                                    net::Ipv4Addr(1, 1, 1, 1)));
  sim.RunUntil(sim.Now() + Milliseconds(5));

  net::FlowKey data{ExternalHostIp(0), user, 40000, apps::kSgwDataPort,
                    net::IpProto::kUdp};
  for (int i = 0; i < 5; ++i) {
    tb.external[0]->Send(net::MakeUdpPacket(data, 200));
  }
  // The data flow may ECMP onto the other aggregation switch than the
  // signaling did; that switch acquires the lease once the signaling
  // switch's lease lapses (50 ms), with the packets parked at the store.
  sim.RunUntil(sim.Now() + Milliseconds(150));
  EXPECT_EQ(data_delivered, 6);  // 5 data + the signaling ack

  // Kill whichever aggregation switch carries the flow.
  const double agg0_pkts = deploy.rp[0]->stats().Get("app_pkts");
  dp::SwitchNode* active = agg0_pkts > 0 ? tb.agg[0] : tb.agg[1];
  injector.FailNode(active);
  sim.RunUntil(sim.Now() + Milliseconds(100));  // detection + lease lapse

  // Sessions survive: data flows through the other switch with the bearer
  // state migrated from the store (no re-attach signaling needed).
  for (int i = 0; i < 5; ++i) {
    tb.external[0]->Send(net::MakeUdpPacket(data, 200));
    sim.RunUntil(sim.Now() + Milliseconds(2));
  }
  sim.RunUntil(sim.Now() + Milliseconds(100));
  EXPECT_GE(data_delivered, 10);  // at most one in-transition packet lost
}

TEST(IntegrationTest, EpcSgwWithoutRedPlaneBreaksSessionsOnFailure) {
  sim::Simulator sim;
  TestbedConfig cfg;
  cfg.fabric.failure_detection_delay = Milliseconds(5);
  Testbed tb = BuildTestbed(sim, cfg);
  // Plain (non-fault-tolerant) SGW on both switches.
  apps::EpcSgwApp sgw;
  baselines::PlainAppPipeline p0(*tb.agg[0], sgw);
  baselines::PlainAppPipeline p1(*tb.agg[1], sgw);
  tb.agg[0]->SetPipeline(&p0);
  tb.agg[1]->SetPipeline(&p1);
  routing::FailureInjector injector(sim, *tb.fabric);

  const net::Ipv4Addr user = RackServerIp(0, 1);
  int data_delivered = 0;
  tb.rack_servers[0][1]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++data_delivered; });
  tb.external[0]->Send(apps::MakeSgwSignalingPacket(ExternalHostIp(0), user,
                                                    777,
                                                    net::Ipv4Addr(1, 1, 1, 1)));
  sim.RunUntil(sim.Now() + Milliseconds(5));
  net::FlowKey data{ExternalHostIp(0), user, 40000, apps::kSgwDataPort,
                    net::IpProto::kUdp};
  tb.external[0]->Send(net::MakeUdpPacket(data, 200));
  sim.RunUntil(sim.Now() + Milliseconds(10));
  EXPECT_EQ(data_delivered, 1);

  const double agg0_pkts = p0.stats().Get("app_pkts");
  injector.FailNode(agg0_pkts > 0 ? tb.agg[0] : tb.agg[1]);
  sim.RunUntil(sim.Now() + Milliseconds(50));
  // Rerouted data hits a switch with no bearer state: dropped forever
  // (Table 1's "active session broken").
  for (int i = 0; i < 5; ++i) {
    tb.external[0]->Send(net::MakeUdpPacket(data, 200));
    sim.RunUntil(sim.Now() + Milliseconds(2));
  }
  sim.Run();
  EXPECT_EQ(data_delivered, 1);
}

TEST(IntegrationTest, HeavyHitterSnapshotsReachStoreWithinEpsilon) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  apps::HeavyHitterConfig hh_cfg;
  hh_cfg.vlans = {1};
  apps::HeavyHitterApp hh(hh_cfg);
  core::RedPlaneConfig rp_cfg;
  rp_cfg.linearizable = false;  // bounded-inconsistency mode
  rp_cfg.snapshot_period = Milliseconds(1);
  rp_cfg.epsilon_bound = Milliseconds(10);
  RedPlaneDeployment deploy(tb, hh, rp_cfg);
  deploy.rp[0]->StartSnapshotReplication(hh);

  // Tagged tenant traffic through agg0 (inject directly at the switch so
  // the sketch on agg0 sees it regardless of ECMP).
  net::FlowKey f{ExternalHostIp(0), RackServerIp(0, 0), 1234, 80,
                 net::IpProto::kUdp};
  for (int i = 0; i < 300; ++i) {
    auto pkt = net::MakeUdpPacket(f, 0);
    pkt.vlan = 1;
    tb.agg[0]->HandlePacket(std::move(pkt), 0);
    sim.RunUntil(sim.Now() + Microseconds(20));
  }
  sim.RunUntil(sim.Now() + Milliseconds(5));

  // The store holds a complete snapshot of the sketch.
  const auto* rec = tb.store[0]->Find(net::PartitionKey::OfVlan(1));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->snapshot_slots.size(), 64u);
  // Sum the per-slot counts of row 0: must equal (approximately, within the
  // snapshot lag) the 300 updates.
  std::uint64_t total = 0;
  for (const auto& [idx, slot] : rec->snapshot_slots) {
    net::ByteReader r(slot.first);
    total += r.U32();  // row 0's counter for this index
  }
  EXPECT_GE(total, 250u);
  EXPECT_LE(total, 300u);
  // ε accounting saw completed rounds.
  ASSERT_NE(deploy.rp[0]->epsilon_tracker(), nullptr);
  const auto staleness = deploy.rp[0]->epsilon_tracker()->Staleness(
      net::PartitionKey::OfVlan(1), sim.Now());
  EXPECT_GE(staleness, 0);
  EXPECT_LE(staleness, Milliseconds(10));
  EXPECT_DOUBLE_EQ(deploy.rp[0]->stats().Get("epsilon_violations"), 0.0);
}

TEST(IntegrationTest, TcpThroughNatSurvivesSwitchFailure) {
  // Miniature of the paper's Fig. 14: an iperf-like TCP flow through a
  // RedPlane NAT; the carrying aggregation switch fails mid-flow; goodput
  // collapses and then recovers once rerouting + state migration complete.
  sim::Simulator sim;
  TestbedConfig cfg;
  cfg.store.lease_period = Milliseconds(100);
  cfg.fabric.failure_detection_delay = Milliseconds(50);
  // Scale the fabric to 1 Gbps so a minute-scale TCP flow is tractable to
  // simulate packet by packet; the failover dynamics are rate-independent.
  cfg.fabric_link.bandwidth_bps = 1e9;
  cfg.host_link.bandwidth_bps = 1e9;
  apps::NatGlobalState nat_global(kNatExternalIp, 5000, 128, kInternalPrefix,
                                  kInternalMask);
  cfg.store.initializer = [&nat_global](const net::PartitionKey& key) {
    return nat_global.InitializeFlow(key);
  };
  Testbed tb = BuildTestbed(sim, cfg);
  apps::NatApp nat(nat_global);
  core::RedPlaneConfig rp_cfg;
  rp_cfg.lease_period = Milliseconds(100);
  rp_cfg.renew_interval = Milliseconds(50);
  RedPlaneDeployment deploy(tb, nat, rp_cfg);
  routing::FailureInjector injector(sim, *tb.fabric);

  // TCP endpoints: sender inside the rack, receiver outside.  Replace one
  // rack server and one external host with TCP nodes.
  auto* sender = tb.network->AddNode<tcp::TcpSenderNode>(
      "tcpsnd", net::Ipv4Addr(192, 168, 10, 50));
  auto* receiver = tb.network->AddNode<tcp::TcpReceiverNode>(
      "tcprcv", net::Ipv4Addr(10, 0, 0, 50), 5001);
  tb.network->Connect(sender, 0, tb.tor[0], 6);
  tb.network->Connect(receiver, 0, tb.core, 8);
  tb.fabric->AssignAddress(sender, sender->ip());
  tb.fabric->AssignAddress(receiver, receiver->ip());
  // Return traffic targets the NAT external address, which terminates at
  // the aggregation layer; route it to both switches via agg0's address
  // (after a failure the fabric recomputes toward the survivor).
  tb.fabric->AssignAddress(tb.agg[0], kNatExternalIp);
  tb.fabric->RecomputeNow();

  sender->Start({sender->ip(), receiver->ip(), 40000, 5001,
                 net::IpProto::kTcp});
  sim.RunUntil(Milliseconds(400));
  const std::uint64_t before_failure = receiver->bytes_delivered();
  EXPECT_GT(before_failure, 100'000u);

  // Fail the switch that carries the flow.
  dp::SwitchNode* active = deploy.rp[0]->stats().Get("app_pkts") >
                                   deploy.rp[1]->stats().Get("app_pkts")
                               ? tb.agg[0]
                               : tb.agg[1];
  dp::SwitchNode* standby = active == tb.agg[0] ? tb.agg[1] : tb.agg[0];
  injector.FailNode(active);
  if (active == tb.agg[0]) {
    // Move the NAT address to the surviving switch (anycast re-advertise).
    tb.fabric->AssignAddress(standby, kNatExternalIp);
  }
  sim.RunUntil(Milliseconds(2000));
  const std::uint64_t after_recovery = receiver->bytes_delivered();
  // The connection survived the failure and kept making progress through
  // the standby switch using migrated NAT state.
  EXPECT_GT(after_recovery, before_failure + 100'000u);

  // Goodput timeline: traffic before, a dip at failure, recovery after.
  const TimeSeries& g = receiver->goodput();
  EXPECT_GT(g.BucketSum(2), 0.0);                   // before failure
  EXPECT_GT(g.BucketSum(g.NumBuckets() - 2), 0.0);  // after recovery
}

TEST(IntegrationTest, ChainStoreServerFailureMidRunStillAnswersFromHead) {
  // The store head keeps serving if a downstream replica fails after
  // commits (we do not reconfigure the chain mid-run; this bounds the
  // blast radius the chain protects against).
  sim::Simulator sim;
  TestbedConfig cfg;
  cfg.store_chain_size = 3;
  Testbed tb = BuildTestbed(sim, cfg);
  apps::EpcSgwApp sgw;
  RedPlaneDeployment deploy(tb, sgw);

  const net::Ipv4Addr user = RackServerIp(0, 1);
  int delivered = 0;
  tb.rack_servers[0][1]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++delivered; });
  tb.external[0]->Send(apps::MakeSgwSignalingPacket(ExternalHostIp(0), user,
                                                    42,
                                                    net::Ipv4Addr(1, 1, 1, 1)));
  sim.RunUntil(sim.Now() + Milliseconds(10));
  // All three replicas have the bearer.
  for (auto* server : tb.store) {
    EXPECT_NE(server->Find(net::PartitionKey::OfObject(user.value)), nullptr)
        << server->name();
  }
  net::FlowKey data{ExternalHostIp(0), user, 40000, apps::kSgwDataPort,
                    net::IpProto::kUdp};
  tb.external[0]->Send(net::MakeUdpPacket(data, 100));
  sim.Run();
  EXPECT_EQ(delivered, 2);  // signaling ack + the data packet
}

TEST(IntegrationTest, TracedNatFailoverEmitsRehomeSequence) {
  sim::Simulator sim;
  TestbedConfig cfg;
  cfg.store.lease_period = Milliseconds(50);
  cfg.fabric.failure_detection_delay = Milliseconds(5);
  constexpr net::Ipv4Addr kNatIp(100, 100, 0, 1);
  apps::NatGlobalState nat_global(kNatIp, 5000, 256, kInternalPrefix,
                                  kInternalMask);
  cfg.store.initializer = [&nat_global](const net::PartitionKey& key) {
    return nat_global.InitializeFlow(key);
  };
  Testbed tb = BuildTestbed(sim, cfg);

  obs::Tracer tracer;
  tracer.SetClock([&sim]() { return sim.Now(); });
  tracer.SetEnabled(true);
  obs::Tracer* prev = obs::SetGlobalTracer(&tracer);

  apps::NatApp nat(nat_global);
  core::RedPlaneConfig rp_cfg;
  rp_cfg.lease_period = Milliseconds(50);
  rp_cfg.renew_interval = Milliseconds(25);
  RedPlaneDeployment deploy(tb, nat, rp_cfg);
  tb.fabric->AssignAddress(tb.agg[0], kNatIp);
  tb.fabric->RecomputeNow();
  routing::FailureInjector injector(sim, *tb.fabric);

  tb.external[0]->SetHandler([](sim::HostNode& self, net::Packet pkt) {
    if (auto f = pkt.Flow()) self.Send(net::MakeUdpPacket(f->Reversed(), 10));
  });
  net::FlowKey flow{RackServerIp(0, 0), ExternalHostIp(0), 7777, 80,
                    net::IpProto::kUdp};
  tb.rack_servers[0][0]->Send(net::MakeUdpPacket(flow, 100));
  sim.RunUntil(sim.Now() + Milliseconds(10));

  // Kill the switch holding this flow's lease (reverse-direction traffic
  // gives the other switch app packets too, so consult the flow table),
  // then keep traffic flowing so the standby rehomes the mapping.
  const auto key = net::PartitionKey::OfFlow(flow);
  const int active = deploy.rp[0]->flow_table().Find(key) ? 0 : 1;
  ASSERT_TRUE(deploy.rp[active]->flow_table().Find(key));
  injector.FailNode(tb.agg[active]);
  tb.fabric->AssignAddress(tb.agg[1 - active], kNatIp);
  for (int i = 0; i < 30; ++i) {
    tb.rack_servers[0][0]->Send(net::MakeUdpPacket(flow, 100));
    sim.RunUntil(sim.Now() + Milliseconds(5));
  }
  sim.Run();
  obs::SetGlobalTracer(prev);

  EXPECT_GT(deploy.rp[1 - active]->stats().Get("grants_migrate"), 0.0);

  // The flow's lifecycle, filtered by its partition-key hash, must show the
  // failover sequence: lease acquired on the active switch, node failure,
  // then a lease miss on the standby resolved by a migrate grant (rehome).
  obs::TraceFilter filter;
  filter.flow = net::HashPartitionKey(key);
  const auto records = tracer.Records(filter);
  ASSERT_FALSE(records.empty());
  auto find_after = [&](std::size_t from, obs::Ev ev) -> std::size_t {
    for (std::size_t i = from; i < records.size(); ++i) {
      if (records[i].ev == ev) return i;
    }
    return records.size();
  };
  const std::size_t first_miss = find_after(0, obs::Ev::kLeaseMiss);
  const std::size_t first_grant = find_after(first_miss, obs::Ev::kLeaseGrant);
  ASSERT_LT(first_grant, records.size());

  // The failure itself is a non-flow event; locate it in the full stream.
  const auto all = tracer.Records();
  std::size_t failure_order = 0;
  for (const auto& r : all) {
    if (r.ev == obs::Ev::kNodeFailure) {
      failure_order = r.order;
      break;
    }
  }
  ASSERT_GT(failure_order, 0u);
  EXPECT_LT(records[first_grant].order, failure_order);

  // After the failure: a new miss on the standby, answered by a rehome.
  std::size_t post_miss = records.size();
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].ev == obs::Ev::kLeaseMiss &&
        records[i].order > failure_order) {
      post_miss = i;
      break;
    }
  }
  ASSERT_LT(post_miss, records.size());
  const std::size_t rehome = find_after(post_miss, obs::Ev::kFailoverRehome);
  ASSERT_LT(rehome, records.size());
  EXPECT_EQ(tracer.ComponentName(records[post_miss].component),
            tracer.ComponentName(records[rehome].component));
}

}  // namespace
}  // namespace redplane
