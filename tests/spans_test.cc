// Cross-layer request spans: a traced write's lifecycle reconstructs as a
// span tree whose segments tile the span — switch→store network, per-shard
// queue wait, service, chain hops, and the ack return sum *exactly* to the
// measured end-to-end write latency (the PR's acceptance pin).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/redplane_switch.h"
#include "net/codec.h"
#include "obs/json.h"
#include "obs/spans.h"
#include "obs/tracer.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/server.h"

namespace redplane {
namespace {

using obs::Ev;
using obs::SpanTree;
using obs::Tracer;

constexpr net::Ipv4Addr kSrcIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kDstIp(192, 168, 10, 1);
constexpr net::Ipv4Addr kSwIp(172, 16, 0, 1);

/// RAII guard that installs a tracer as the process-global one.
struct GlobalTracerGuard {
  explicit GlobalTracerGuard(Tracer* t) : prev(obs::SetGlobalTracer(t)) {}
  ~GlobalTracerGuard() { obs::SetGlobalTracer(prev); }
  Tracer* prev;
};

class CounterApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "counter"; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>& state) override {
    core::ProcessResult result;
    core::SetState(state,
                   core::StateAs<std::uint64_t>(state).value_or(0) + 1);
    result.state_modified = true;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

/// One RedPlane switch in front of a 3-replica store chain, traced: every
/// data packet is a write, so each one produces a replication request that
/// traverses head → mid → tail and acks back to the switch.
struct TracedChainHarness {
  explicit TracedChainHarness(SimDuration coalesce_delay = 0) {
    tracer.SetClock([this]() { return sim.Now(); });
    tracer.SetEnabled(true);

    net = std::make_unique<sim::Network>(sim, 11);
    src = net->AddNode<sim::HostNode>("src", kSrcIp);
    dst = net->AddNode<sim::HostNode>("dst", kDstIp);
    dp::SwitchConfig sc;
    sc.switch_ip = kSwIp;
    sw = net->AddNode<dp::SwitchNode>("sw", sc);
    hub = net->AddNode<sim::HostNode>("hub", net::Ipv4Addr(9, 9, 9, 9));
    net->Connect(src, 0, sw, 0);
    net->Connect(dst, 0, sw, 1);
    net->Connect(sw, 2, hub, 0);

    store::StoreConfig store_cfg;
    store_cfg.lease_period = Milliseconds(10);
    for (int i = 0; i < 3; ++i) {
      auto* server = net->AddNode<store::StateStoreServer>(
          "store" + std::to_string(i), net::Ipv4Addr(172, 16, 1, 1 + i),
          store_cfg);
      net->Connect(server, 0, hub, static_cast<PortId>(1 + i));
      stores.push_back(server);
    }
    for (int i = 0; i < 3; ++i) {
      stores[i]->SetIsHead(i == 0);
      if (i + 1 < 3) stores[i]->SetChainSuccessor(stores[i + 1]->ip());
    }

    hub->SetHandler([this](sim::HostNode& self, net::Packet pkt) {
      if (!pkt.ip.has_value()) return;
      if (pkt.ip->dst == kSwIp) {
        self.SendTo(0, std::move(pkt));
        return;
      }
      for (std::size_t i = 0; i < stores.size(); ++i) {
        if (pkt.ip->dst == stores[i]->ip()) {
          self.SendTo(static_cast<PortId>(1 + i), std::move(pkt));
          return;
        }
      }
    });
    sw->SetForwarder([](const net::Packet& pkt,
                        PortId) -> std::optional<PortId> {
      if (!pkt.ip.has_value()) return std::nullopt;
      if (pkt.ip->dst == kSrcIp) return PortId{0};
      if (pkt.ip->dst == kDstIp) return PortId{1};
      return PortId{2};
    });

    core::RedPlaneConfig rp_cfg;
    rp_cfg.lease_period = Milliseconds(10);
    rp_cfg.coalesce_delay = coalesce_delay;
    rp = std::make_unique<core::RedPlaneSwitch>(
        *sw, app, [this](const net::PartitionKey&) { return stores[0]->ip(); },
        rp_cfg);
    sw->SetPipeline(rp.get());
    dst->SetHandler([this](sim::HostNode&, net::Packet) { ++delivered; });
  }

  net::FlowKey FlowI(int i) {
    return {kSrcIp, kDstIp, static_cast<std::uint16_t>(2000 + i), 80,
            net::IpProto::kUdp};
  }

  /// Sends `packets` paced packets per flow and runs to quiescence.
  void RunWrites(int flows, int packets) {
    GlobalTracerGuard guard(&tracer);
    for (int p = 0; p < packets; ++p) {
      for (int i = 0; i < flows; ++i) {
        src->SendTo(0, net::MakeUdpPacket(FlowI(i), 64));
        sim.RunUntil(sim.Now() + Microseconds(150));
      }
    }
    sim.Run();
  }

  Tracer tracer;
  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  sim::HostNode* src;
  sim::HostNode* dst;
  sim::HostNode* hub;
  dp::SwitchNode* sw;
  std::vector<store::StateStoreServer*> stores;
  CounterApp app;
  std::unique_ptr<core::RedPlaneSwitch> rp;
  int delivered = 0;
};

/// Write spans: those that begin at the switch's replication send and close
/// with the ack returning (complete request lifecycles).
bool IsCompleteWriteSpan(const SpanTree& span) {
  return !span.segments.empty() &&
         span.segments.front().ev_begin == Ev::kReplicationSent &&
         span.segments.back().ev_end == Ev::kAckReleased;
}

TEST(SpansTest, SegmentsTileEachSpanExactly) {
  TracedChainHarness h;
  h.RunWrites(/*flows=*/4, /*packets=*/3);
  ASSERT_GT(h.delivered, 0);
  const auto spans = obs::BuildSpanTrees(h.tracer);
  ASSERT_FALSE(spans.empty());
  for (const SpanTree& span : spans) {
    ASSERT_FALSE(span.segments.empty()) << "span " << span.span;
    EXPECT_EQ(span.segments.front().begin, span.begin);
    EXPECT_EQ(span.segments.back().end, span.end);
    SimTime sum = 0;
    for (std::size_t i = 0; i < span.segments.size(); ++i) {
      if (i > 0) {
        // Consecutive segments share a boundary: no gaps, no overlap.
        EXPECT_EQ(span.segments[i].begin, span.segments[i - 1].end)
            << "span " << span.span << " segment " << i;
      }
      sum += span.segments[i].DurationNs();
    }
    // Telescoping: the segment durations sum exactly to end-to-end latency.
    EXPECT_EQ(sum, span.TotalNs()) << "span " << span.span;
  }
}

TEST(SpansTest, WriteSpanDecomposesIntoProtocolSegments) {
  TracedChainHarness h;
  h.RunWrites(/*flows=*/4, /*packets=*/3);
  const auto spans = obs::BuildSpanTrees(h.tracer);
  int write_spans = 0;
  for (const SpanTree& span : spans) {
    if (!IsCompleteWriteSpan(span)) continue;
    ++write_spans;
    std::set<std::string> kinds;
    int chain_hops = 0;
    for (const auto& seg : span.segments) {
      kinds.insert(seg.kind);
      chain_hops += seg.kind == "chain_hop" ? 1 : 0;
    }
    // The full lifecycle: switch→store network, per-shard queue wait and
    // service, the two replica hops of a 3-chain, the tail's respond, and
    // the ack's way back.
    for (const char* kind : {"switch_to_store", "queue_wait", "service",
                             "chain_hop", "respond", "ack_return"}) {
      EXPECT_TRUE(kinds.count(kind)) << "span " << span.span << " lacks "
                                     << kind;
    }
    EXPECT_EQ(chain_hops, 2) << "span " << span.span;
  }
  EXPECT_GT(write_spans, 0);
}

TEST(SpansTest, WriteSpanTotalsMatchMeasuredWriteRtt) {
  TracedChainHarness h;
  h.RunWrites(/*flows=*/4, /*packets=*/3);
  // The tracer's own breakdown measures write RTT from the same records
  // (kReplicationSent → kAckReleased pairs); the span totals must reproduce
  // that sample set exactly — same count, same extremes.
  SampleSet span_totals_us;
  for (const SpanTree& span : obs::BuildSpanTrees(h.tracer)) {
    if (IsCompleteWriteSpan(span)) {
      span_totals_us.Add(static_cast<double>(span.TotalNs()) / 1e3);
    }
  }
  ASSERT_FALSE(span_totals_us.Empty());
  for (const auto& phase : h.tracer.LatencyBreakdown()) {
    if (phase.name != "write_replication_rtt") continue;
    EXPECT_EQ(span_totals_us.Count(), phase.samples_us.Count());
    EXPECT_DOUBLE_EQ(span_totals_us.Percentile(0),
                     phase.samples_us.Percentile(0));
    EXPECT_DOUBLE_EQ(span_totals_us.Percentile(50),
                     phase.samples_us.Percentile(50));
    EXPECT_DOUBLE_EQ(span_totals_us.Percentile(100),
                     phase.samples_us.Percentile(100));
    return;
  }
  FAIL() << "write_replication_rtt phase missing from LatencyBreakdown";
}

TEST(SpansTest, SpanIdsSurviveBatchEnvelopes) {
  // With write coalescing on, replication requests travel inside batch
  // envelopes (PR 4); each sub-message's span id must survive the envelope
  // and echo back on the (piggybacked) acks so the span trees reconstruct
  // exactly as in the unbatched case.
  TracedChainHarness h(/*coalesce_delay=*/Microseconds(500));
  h.RunWrites(/*flows=*/4, /*packets=*/3);
  ASSERT_GT(h.delivered, 0);
  // Batching actually engaged.
  EXPECT_GT(h.rp->stats().Get("batch_envelopes"), 0);

  const auto spans = obs::BuildSpanTrees(h.tracer);
  int write_spans = 0;
  for (const SpanTree& span : spans) {
    if (!IsCompleteWriteSpan(span)) continue;
    ++write_spans;
    SimTime sum = 0;
    for (std::size_t i = 0; i < span.segments.size(); ++i) {
      if (i > 0) {
        EXPECT_EQ(span.segments[i].begin, span.segments[i - 1].end)
            << "span " << span.span << " segment " << i;
      }
      sum += span.segments[i].DurationNs();
    }
    EXPECT_EQ(sum, span.TotalNs()) << "span " << span.span;
  }
  // Every write's lifecycle still reconstructs end to end.
  EXPECT_GT(write_spans, 0);
  for (const auto& phase : h.tracer.LatencyBreakdown()) {
    if (phase.name == "write_replication_rtt") {
      EXPECT_EQ(static_cast<std::size_t>(write_spans),
                phase.samples_us.Count());
    }
  }
}

TEST(SpansTest, SummaryGroupsStoreSegmentsByShardAndExportsValidJson) {
  TracedChainHarness h;
  h.RunWrites(/*flows=*/2, /*packets=*/2);
  const auto spans = obs::BuildSpanTrees(h.tracer);
  ASSERT_FALSE(spans.empty());

  std::set<std::string> names;
  for (const auto& stat : obs::SummarizeSegments(spans)) {
    names.insert(stat.name);
  }
  // Store-side segments split per closing shard on top of the aggregate.
  EXPECT_TRUE(names.count("queue_wait"));
  EXPECT_TRUE(names.count("queue_wait@store0"));
  EXPECT_TRUE(names.count("service@store0"));
  EXPECT_TRUE(names.count("chain_hop"));

  const std::string json = obs::SpansJson(spans);
  EXPECT_TRUE(obs::ValidateJson(json));
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.has_value());
  const auto* parsed = doc->Find("spans");
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->array.size(), spans.size());

  std::ostringstream chrome;
  obs::WriteChromeSpans(chrome, spans);
  EXPECT_TRUE(obs::ValidateJson(chrome.str()));
}

}  // namespace
}  // namespace redplane
