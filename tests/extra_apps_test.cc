// Tests for the remaining Table 1 application classes: SYN-flood defense
// (Bloom-filter validated sources), in-network sequencer, and
// super-spreader detection — including each one's failure symptom and its
// RedPlane remedy.
#include <gtest/gtest.h>

#include "apps/bloom.h"
#include "apps/sequencer.h"
#include "apps/spreader.h"
#include "apps/syn_defense.h"
#include "common/rng.h"
#include "core/redplane_switch.h"
#include "net/codec.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/server.h"

namespace redplane::apps {
namespace {

// ---------------------------------------------------------------- Bloom --

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom("b", 512, 3);
  Rng rng(3);
  std::vector<std::uint64_t> members;
  for (int i = 0; i < 30; ++i) {
    members.push_back(rng.Next());
    bloom.Insert(members.back());
  }
  for (std::uint64_t m : members) {
    EXPECT_TRUE(bloom.Contains(m));
  }
}

TEST(BloomFilterTest, LowFalsePositiveRateWhenSparse) {
  BloomFilter bloom("b", 2048, 3);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) bloom.Insert(rng.Next());
  int false_positives = 0;
  for (int i = 0; i < 1000; ++i) {
    if (bloom.Contains(rng.Next())) ++false_positives;
  }
  EXPECT_LT(false_positives, 30);  // <3% at this load factor
}

TEST(BloomFilterTest, SnapshotFreezesBitsAtFlip) {
  BloomFilter bloom("b", 64, 2);
  bloom.Insert(42);
  bloom.BeginSnapshot();
  bloom.Insert(77);  // after the flip: not in the snapshot
  int snapshot_bits = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    snapshot_bits += bloom.ReadSnapshotSlot(i);
  }
  EXPECT_LE(snapshot_bits, 2);  // only key 42's probes
  EXPECT_TRUE(bloom.Contains(77));  // live copy unaffected
}

// ---------------------------------------------------------- SYN defense --

net::Packet Syn(net::Ipv4Addr src) {
  net::FlowKey f{src, net::Ipv4Addr(192, 168, 10, 1), 1234, 80,
                 net::IpProto::kTcp};
  return net::MakeTcpPacket(f, net::TcpFlags::kSyn, 1, 0, 0);
}

net::Packet Ack(net::Ipv4Addr src) {
  net::FlowKey f{src, net::Ipv4Addr(192, 168, 10, 1), 1234, 80,
                 net::IpProto::kTcp};
  return net::MakeTcpPacket(f, net::TcpFlags::kAck, 2, 1, 0);
}

TEST(SynDefenseTest, UnvalidatedSynChallengedThenAdmitted) {
  SynDefenseApp app;
  core::AppContext ctx;
  std::vector<std::byte> state;
  const net::Ipv4Addr client(10, 0, 0, 1);

  auto first = app.Process(ctx, Syn(client), state);
  EXPECT_TRUE(first.outputs.empty());  // challenged
  EXPECT_EQ(app.challenges_sent(), 1u);

  auto proof = app.Process(ctx, Ack(client), state);
  EXPECT_EQ(proof.outputs.size(), 1u);  // handshake proof admits + validates
  EXPECT_TRUE(app.IsValidated(client));

  auto retry = app.Process(ctx, Syn(client), state);
  EXPECT_EQ(retry.outputs.size(), 1u);  // validated source passes
}

TEST(SynDefenseTest, FailureDropsValidSourcesWithoutSnapshotRestore) {
  SynDefenseApp app;
  core::AppContext ctx;
  std::vector<std::byte> state;
  const net::Ipv4Addr client(10, 0, 0, 1);
  app.Process(ctx, Ack(client), state);  // validate
  ASSERT_TRUE(app.IsValidated(client));

  // Capture a snapshot (what RedPlane would have replicated).
  app.BeginSnapshot(net::PartitionKey::OfObject(0x5f1d));
  std::vector<std::uint8_t> snapshot;
  for (std::uint32_t i = 0; i < app.NumSnapshotSlots(); ++i) {
    snapshot.push_back(
        static_cast<std::uint8_t>(app.ReadSnapshotSlot(
            net::PartitionKey::OfObject(0x5f1d), i)[0]));
  }

  // Switch failure: filter gone, valid client gets challenged again —
  // Table 1's "dropping valid packets".
  app.Reset();
  auto dropped = app.Process(ctx, Syn(client), state);
  EXPECT_TRUE(dropped.outputs.empty());

  // Failover restore from the replicated snapshot: client admitted.
  for (std::uint32_t i = 0; i < snapshot.size(); ++i) {
    app.RestoreSlot(i, snapshot[i]);
  }
  EXPECT_TRUE(app.IsValidated(client));
  auto admitted = app.Process(ctx, Syn(client), state);
  EXPECT_EQ(admitted.outputs.size(), 1u);
}

// ------------------------------------------------------------ Sequencer --

TEST(SequencerTest, StampsMonotonicallyPerGroup) {
  SequencerApp app;
  core::AppContext ctx;
  std::vector<std::byte> g1_state, g2_state;
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 5,
                 kSequencerPort, net::IpProto::kUdp};
  for (std::uint64_t i = 1; i <= 5; ++i) {
    auto result = app.Process(ctx, MakeSequencedPacket(f, 7), g1_state);
    ASSERT_EQ(result.outputs.size(), 1u);
    EXPECT_TRUE(result.state_modified);
    const auto hdr = ParseSequencedPacket(result.outputs[0]);
    ASSERT_TRUE(hdr.has_value());
    EXPECT_EQ(hdr->group, 7u);
    EXPECT_EQ(hdr->stamp, i);
  }
  // Independent group: its own sequence.
  auto other = app.Process(ctx, MakeSequencedPacket(f, 9), g2_state);
  EXPECT_EQ(ParseSequencedPacket(other.outputs[0])->stamp, 1u);
}

TEST(SequencerTest, KeyOfPartitionsByGroup) {
  SequencerApp app;
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 5,
                 kSequencerPort, net::IpProto::kUdp};
  EXPECT_EQ(*app.KeyOf(MakeSequencedPacket(f, 3)),
            net::PartitionKey::OfObject(3));
  EXPECT_NE(*app.KeyOf(MakeSequencedPacket(f, 3)),
            *app.KeyOf(MakeSequencedPacket(f, 4)));
  net::FlowKey other = f;
  other.dst_port = 80;
  EXPECT_FALSE(app.KeyOf(net::MakeUdpPacket(other, 20)).has_value());
}

/// End to end: the sequencer through RedPlane continues its sequence after
/// failover — no duplicate stamps (NOPaxos's correctness requirement).
TEST(SequencerTest, FailoverNeverDuplicatesStampsUnderRedPlane) {
  sim::Simulator sim;
  sim::Network net(sim, 9);
  auto* src = net.AddNode<sim::HostNode>("src", net::Ipv4Addr(10, 0, 0, 1));
  auto* dst = net.AddNode<sim::HostNode>("dst", net::Ipv4Addr(192, 168, 10, 1));
  dp::SwitchConfig c1, c2;
  c1.switch_ip = net::Ipv4Addr(172, 16, 0, 1);
  c2.switch_ip = net::Ipv4Addr(172, 16, 0, 2);
  auto* sw1 = net.AddNode<dp::SwitchNode>("sw1", c1);
  auto* sw2 = net.AddNode<dp::SwitchNode>("sw2", c2);
  store::StoreConfig store_cfg;
  store_cfg.lease_period = Milliseconds(5);
  auto* store = net.AddNode<store::StateStoreServer>(
      "store", net::Ipv4Addr(172, 16, 1, 1), store_cfg);
  auto* hub = net.AddNode<sim::HostNode>("hub", net::Ipv4Addr(9, 9, 9, 9));
  net.Connect(src, 0, sw1, 0);
  net.Connect(src, 1, sw2, 0);
  net.Connect(dst, 0, sw1, 1);
  net.Connect(dst, 1, sw2, 1);
  net.Connect(sw1, 2, hub, 0);
  net.Connect(sw2, 2, hub, 1);
  net.Connect(store, 0, hub, 2);
  hub->SetHandler([&](sim::HostNode& self, net::Packet pkt) {
    if (!pkt.ip.has_value()) return;
    if (pkt.ip->dst == store->ip()) self.SendTo(2, std::move(pkt));
    else if (pkt.ip->dst == c1.switch_ip) self.SendTo(0, std::move(pkt));
    else if (pkt.ip->dst == c2.switch_ip) self.SendTo(1, std::move(pkt));
  });
  auto fwd = [&](const net::Packet& pkt, PortId) -> std::optional<PortId> {
    if (!pkt.ip.has_value()) return std::nullopt;
    if (pkt.ip->dst == src->ip()) return PortId{0};
    if (pkt.ip->dst == dst->ip()) return PortId{1};
    return PortId{2};
  };
  sw1->SetForwarder(fwd);
  sw2->SetForwarder(fwd);

  SequencerApp app;
  core::RedPlaneConfig rp_cfg;
  rp_cfg.lease_period = Milliseconds(5);
  auto shard = [&](const net::PartitionKey&) { return store->ip(); };
  core::RedPlaneSwitch rp1(*sw1, app, shard, rp_cfg);
  core::RedPlaneSwitch rp2(*sw2, app, shard, rp_cfg);
  sw1->SetPipeline(&rp1);
  sw2->SetPipeline(&rp2);

  std::vector<std::uint64_t> stamps;
  dst->SetHandler([&](sim::HostNode&, net::Packet pkt) {
    const auto hdr = ParseSequencedPacket(pkt);
    if (hdr.has_value()) stamps.push_back(hdr->stamp);
  });

  net::FlowKey f{src->ip(), dst->ip(), 5, kSequencerPort, net::IpProto::kUdp};
  for (int i = 0; i < 5; ++i) {
    src->SendTo(0, MakeSequencedPacket(f, 1));
    sim.RunUntil(sim.Now() + Milliseconds(1));
  }
  sw1->SetUp(false);  // the sequencer's switch dies
  for (int i = 0; i < 5; ++i) {
    src->SendTo(1, MakeSequencedPacket(f, 1));
    sim.RunUntil(sim.Now() + Milliseconds(2));
  }
  sim.RunUntil(sim.Now() + Milliseconds(50));

  ASSERT_GE(stamps.size(), 9u);
  std::set<std::uint64_t> unique(stamps.begin(), stamps.end());
  EXPECT_EQ(unique.size(), stamps.size()) << "duplicate sequence stamps";
  EXPECT_EQ(*std::max_element(stamps.begin(), stamps.end()), stamps.size());
}

// -------------------------------------------------------------- Spreader --

TEST(SpreaderTest, FlagsScannersNotNormalSources) {
  SpreaderConfig cfg;
  cfg.threshold = 12;
  SpreaderApp app(cfg);
  core::AppContext ctx;
  std::vector<std::byte> state;
  const net::Ipv4Addr scanner(10, 0, 0, 66);
  const net::Ipv4Addr normal(10, 0, 0, 7);

  // The scanner touches 30 distinct destinations, the normal source one.
  for (int i = 0; i < 30; ++i) {
    net::FlowKey f{scanner, net::Ipv4Addr(192, 168, 1, static_cast<std::uint8_t>(i + 1)),
                   1000, 80, net::IpProto::kTcp};
    app.Process(ctx, net::MakeTcpPacket(f, net::TcpFlags::kSyn, 1, 0, 0),
                state);
  }
  for (int i = 0; i < 30; ++i) {
    net::FlowKey f{normal, net::Ipv4Addr(192, 168, 1, 1), 1000, 80,
                   net::IpProto::kTcp};
    app.Process(ctx, net::MakeTcpPacket(f, net::TcpFlags::kSyn, 1, 0, 0),
                state);
  }
  EXPECT_GE(app.EstimateDistinct(scanner), cfg.threshold);
  EXPECT_LT(app.EstimateDistinct(normal), 3.0);
  EXPECT_EQ(app.Spreaders().count(scanner.value), 1u);
  EXPECT_EQ(app.Spreaders().count(normal.value), 0u);
}

TEST(SpreaderTest, EstimateTracksDistinctCount) {
  SpreaderApp app;
  core::AppContext ctx;
  std::vector<std::byte> state;
  const net::Ipv4Addr src(10, 0, 0, 1);
  double prev = 0;
  for (int n = 1; n <= 12; ++n) {
    net::FlowKey f{src, net::Ipv4Addr(192, 168, 2, static_cast<std::uint8_t>(n)),
                   1000, 80, net::IpProto::kUdp};
    app.Process(ctx, net::MakeUdpPacket(f, 0), state);
    const double est = app.EstimateDistinct(src);
    EXPECT_GE(est, prev - 0.01);  // monotone non-decreasing
    prev = est;
  }
  // Repeating a destination does not move the estimate.
  net::FlowKey f{src, net::Ipv4Addr(192, 168, 2, 1), 1000, 80,
                 net::IpProto::kUdp};
  for (int i = 0; i < 20; ++i) {
    app.Process(ctx, net::MakeUdpPacket(f, 0), state);
  }
  EXPECT_NEAR(app.EstimateDistinct(src), prev, 0.01);
  // And the estimate is in the right ballpark for 12 distinct.
  EXPECT_GT(prev, 7.0);
  EXPECT_LT(prev, 20.0);
}

TEST(SpreaderTest, SnapshotCoversWholeBitmap) {
  SpreaderApp app;
  EXPECT_EQ(app.NumSnapshotSlots(),
            app.config().sources * app.config().bits_per_source);
  app.BeginSnapshot(net::PartitionKey::OfObject(0x51c4));
  EXPECT_EQ(app.ReadSnapshotSlot(net::PartitionKey::OfObject(0x51c4), 0)
                .size(),
            1u);
}

TEST(SpreaderTest, ResetModelsFailureLoss) {
  SpreaderApp app;
  core::AppContext ctx;
  std::vector<std::byte> state;
  const net::Ipv4Addr scanner(10, 0, 0, 66);
  for (int i = 0; i < 30; ++i) {
    net::FlowKey f{scanner,
                   net::Ipv4Addr(192, 168, 1, static_cast<std::uint8_t>(i + 1)),
                   1000, 80, net::IpProto::kTcp};
    app.Process(ctx, net::MakeTcpPacket(f, net::TcpFlags::kSyn, 1, 0, 0),
                state);
  }
  EXPECT_GT(app.EstimateDistinct(scanner), 10.0);
  app.Reset();  // switch failure: statistics gone -> inaccurate detection
  EXPECT_DOUBLE_EQ(app.EstimateDistinct(scanner), 0.0);
  EXPECT_TRUE(app.Spreaders().empty());
}

}  // namespace
}  // namespace redplane::apps
