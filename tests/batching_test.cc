// Replication batching (DESIGN.md §10) and renew/retransmit-path fixes.
//
// Covers the per-shard coalescer end to end: burst writes leave as one
// batch envelope, the store unpacks and acks per sub-message, piggybacked
// outputs all come home, and the zero-copy cost model stays chain-length
// independent.  Alongside: regression tests for the wedged-renewal bug
// (renew_in_flight pinned forever by a lost renew) and the retransmit scan
// that kept rescheduling after draining its table, plus armed-auditor
// see-through checks (clean batched runs silent, mutations still caught).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "audit/auditor.h"
#include "core/protocol.h"
#include "core/redplane_switch.h"
#include "net/buffer.h"
#include "net/codec.h"
#include "obs/tracer.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/server.h"

namespace redplane {
namespace {

constexpr net::Ipv4Addr kSrcIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kDstIp(192, 168, 10, 1);
constexpr net::Ipv4Addr kSwIp(172, 16, 0, 1);

net::FlowKey TheFlow() {
  return {kSrcIp, kDstIp, 1000, 80, net::IpProto::kUdp};
}

/// Write-per-packet app: every packet leaves as a replication request.
class WriteApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "write_app"; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>& state) override {
    core::ProcessResult result;
    core::SetState(state,
                   core::StateAs<std::uint64_t>(state).value_or(0) + 1);
    result.state_modified = true;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

/// Read-only echo: never writes state, so the flow is renew-driven.
class ReadApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "read_app"; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>&) override {
    core::ProcessResult result;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

/// One RedPlane switch against a store chain, with a drop predicate on the
/// switch<->store hub and an optionally armed global tracer + auditor.
struct BatchHarness {
  struct Options {
    int chain_size = 1;
    core::RedPlaneConfig rp_cfg{};
    store::StoreConfig::ProtocolMutations head_mutations{};
    bool arm_audit = false;
  };

  BatchHarness(core::SwitchApp& app, Options opt) {
    net = std::make_unique<sim::Network>(sim, 7);
    src = net->AddNode<sim::HostNode>("src", kSrcIp);
    dst = net->AddNode<sim::HostNode>("dst", kDstIp);
    dp::SwitchConfig cfg;
    cfg.switch_ip = kSwIp;
    sw = net->AddNode<dp::SwitchNode>("sw", cfg);
    hub = net->AddNode<sim::HostNode>("hub", net::Ipv4Addr(9, 9, 9, 9));
    net->Connect(src, 0, sw, 0);
    net->Connect(dst, 0, sw, 1);
    net->Connect(sw, 2, hub, 0);
    for (int i = 0; i < opt.chain_size; ++i) {
      store::StoreConfig store_cfg;
      store_cfg.lease_period = opt.rp_cfg.lease_period;
      if (i == 0) store_cfg.mutations = opt.head_mutations;
      auto* server = net->AddNode<store::StateStoreServer>(
          "store" + std::to_string(i), net::Ipv4Addr(172, 16, 1, 1 + i),
          store_cfg);
      net->Connect(server, 0, hub, static_cast<PortId>(1 + i));
      replicas.push_back(server);
    }
    for (int i = 0; i < opt.chain_size; ++i) {
      replicas[i]->SetIsHead(i == 0);
      if (i + 1 < opt.chain_size) {
        replicas[i]->SetChainSuccessor(replicas[i + 1]->ip());
      }
    }
    hub->SetHandler([this](sim::HostNode& self, net::Packet pkt) {
      if (!pkt.ip.has_value()) return;
      if (drop_pred && drop_pred(pkt)) {
        ++dropped;
        return;
      }
      if (pkt.ip->dst == kSwIp) {
        self.SendTo(0, std::move(pkt));
        return;
      }
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (pkt.ip->dst == replicas[i]->ip()) {
          self.SendTo(static_cast<PortId>(1 + i), std::move(pkt));
          return;
        }
      }
    });
    sw->SetForwarder(
        [](const net::Packet& pkt, PortId) -> std::optional<PortId> {
          if (!pkt.ip.has_value()) return std::nullopt;
          if (pkt.ip->dst == kSrcIp) return PortId{0};
          if (pkt.ip->dst == kDstIp) return PortId{1};
          return PortId{2};
        });
    rp = std::make_unique<core::RedPlaneSwitch>(
        *sw, app,
        [this](const net::PartitionKey&) { return replicas[0]->ip(); },
        opt.rp_cfg);
    sw->SetPipeline(rp.get());
    dst->SetHandler([this](sim::HostNode&, net::Packet) { ++delivered; });

    if (opt.arm_audit) {
      tracer.SetClock([this] { return sim.Now(); });
      tracer.SetEnabled(true);
      prev_tracer = obs::SetGlobalTracer(&tracer);
      auditor.SetClock([this] { return sim.Now(); });
      auditor.ArmStandardMonitors();
      auditor.SetTracer(&tracer);
      audit::SetGlobalAuditor(&auditor);
      auditor.SetEnabled(true);
      audit_armed = true;
    }
  }

  ~BatchHarness() {
    if (audit_armed) obs::SetGlobalTracer(prev_tracer);
    // The auditor uninstalls itself from the global slot on destruction.
  }

  void SendBurst(int n) {
    for (int i = 0; i < n; ++i) {
      src->Send(net::MakeUdpPacket(TheFlow(), 20));
    }
  }

  void SendPaced(int n, SimDuration gap) {
    for (int i = 0; i < n; ++i) {
      src->Send(net::MakeUdpPacket(TheFlow(), 20));
      sim.RunUntil(sim.Now() + gap);
    }
  }

  double SwitchStat(const char* name) { return rp->stats().Get(name); }
  double StoreStat(int i, const char* name) {
    return replicas[static_cast<std::size_t>(i)]->counters().Get(name);
  }

  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  sim::HostNode* src = nullptr;
  sim::HostNode* dst = nullptr;
  sim::HostNode* hub = nullptr;
  dp::SwitchNode* sw = nullptr;
  std::vector<store::StateStoreServer*> replicas;
  std::unique_ptr<core::RedPlaneSwitch> rp;
  std::function<bool(const net::Packet&)> drop_pred;
  int delivered = 0;
  int dropped = 0;

  obs::Tracer tracer;
  obs::Tracer* prev_tracer = nullptr;
  audit::Auditor auditor;
  bool audit_armed = false;
};

core::RedPlaneConfig BatchedConfig() {
  core::RedPlaneConfig cfg;
  cfg.lease_period = Seconds(2);
  cfg.renew_interval = Seconds(1);
  cfg.request_timeout = Milliseconds(5);
  cfg.coalesce_delay = Microseconds(20);
  return cfg;
}

// --- coalescer end-to-end ---------------------------------------------------

TEST(BatchingTest, BurstWritesCoalesceIntoEnvelopes) {
  WriteApp app;
  BatchHarness h(app, {.rp_cfg = BatchedConfig()});
  // Warm up: lease acquisition (Inits never batch) settles first.
  h.SendBurst(1);
  h.sim.Run();
  ASSERT_EQ(h.delivered, 1);

  constexpr int kWrites = 8;
  h.SendBurst(kWrites);
  h.sim.Run();

  // Every output came home and every write is durable, exactly per-packet
  // semantics...
  EXPECT_EQ(h.delivered, 1 + kWrites);
  const auto key = net::PartitionKey::OfFlow(TheFlow());
  ASSERT_NE(h.replicas[0]->Find(key), nullptr);
  EXPECT_EQ(h.replicas[0]->Find(key)->last_applied_seq,
            static_cast<std::uint64_t>(1 + kWrites));
  // ...but the burst crossed the wire in envelopes, not per-packet.
  EXPECT_GE(h.SwitchStat("batch_envelopes"), 1.0);
  EXPECT_GE(h.StoreStat(0, "batch_envelopes"), 1.0);
  EXPECT_GE(h.StoreStat(0, "batch_subs"), 2.0);
  // The store still filtered/acked per sub-message.
  EXPECT_DOUBLE_EQ(h.StoreStat(0, "repl_reqs"),
                   static_cast<double>(1 + kWrites));
  EXPECT_DOUBLE_EQ(h.StoreStat(0, "responses"),
                   static_cast<double>(2 + kWrites));  // grant + write acks
}

TEST(BatchingTest, DelayZeroNeverWrapsEnvelopes) {
  WriteApp app;
  core::RedPlaneConfig cfg = BatchedConfig();
  cfg.coalesce_delay = 0;  // per-packet mode
  BatchHarness h(app, {.rp_cfg = cfg});
  h.SendBurst(1);
  h.sim.Run();
  h.SendBurst(8);
  h.sim.Run();
  EXPECT_EQ(h.delivered, 9);
  EXPECT_DOUBLE_EQ(h.SwitchStat("batch_envelopes"), 0.0);
  EXPECT_DOUBLE_EQ(h.StoreStat(0, "batch_envelopes"), 0.0);
}

TEST(BatchingTest, LonePendingMessageLeavesUnwrapped) {
  // Paced traffic never accumulates two messages in a window, so the
  // coalescer must emit plain (unwrapped) protocol packets.
  WriteApp app;
  BatchHarness h(app, {.rp_cfg = BatchedConfig()});
  h.SendPaced(10, Milliseconds(1));
  h.sim.Run();
  EXPECT_EQ(h.delivered, 10);
  EXPECT_DOUBLE_EQ(h.SwitchStat("batch_envelopes"), 0.0);
  EXPECT_DOUBLE_EQ(h.StoreStat(0, "batch_envelopes"), 0.0);
  const auto key = net::PartitionKey::OfFlow(TheFlow());
  EXPECT_EQ(h.replicas[0]->Find(key)->last_applied_seq, 10u);
}

TEST(BatchingTest, CountCapFlushesEarly) {
  WriteApp app;
  core::RedPlaneConfig cfg = BatchedConfig();
  cfg.coalesce_delay = Milliseconds(10);  // timer would be far too slow
  cfg.coalesce_max_msgs = 4;
  BatchHarness h(app, {.rp_cfg = cfg});
  h.SendBurst(1);
  h.sim.Run();
  const SimTime t0 = h.sim.Now();
  h.SendBurst(8);
  // Run to well before the 10 ms timer: if only the timer could flush, no
  // write would be durable yet and no output released.
  h.sim.RunUntil(t0 + Milliseconds(2));
  EXPECT_EQ(h.delivered, 9);
  // Two cap-triggered envelopes of 4.
  EXPECT_GE(h.SwitchStat("batch_envelopes"), 2.0);
  h.sim.Run();  // drain the superseded (gen-guarded) flush timers
}

// --- zero-copy cost model under batching ------------------------------------

struct BatchedWriteCosts {
  std::uint64_t encodes = 0;
  std::uint64_t deep_copies = 0;
};

BatchedWriteCosts MeasureBatchedWrites(int chain_size, int writes) {
  WriteApp app;
  BatchHarness h(app, {.chain_size = chain_size, .rp_cfg = BatchedConfig()});
  h.SendBurst(1);
  h.sim.Run();
  EXPECT_EQ(h.delivered, 1);

  core::ResetEncodeCount();
  net::Buffer::ResetCounters();
  h.SendBurst(writes);
  h.sim.Run();
  EXPECT_EQ(h.delivered, 1 + writes);
  EXPECT_GE(h.SwitchStat("batch_envelopes"), 1.0);
  const auto key = net::PartitionKey::OfFlow(TheFlow());
  for (auto* replica : h.replicas) {
    const auto* rec = replica->Find(key);
    EXPECT_NE(rec, nullptr);
    if (rec != nullptr) {
      EXPECT_EQ(rec->last_applied_seq,
                static_cast<std::uint64_t>(1 + writes));
    }
  }
  return {core::EncodeCount(), net::Buffer::DeepCopies()};
}

TEST(BatchingTest, BatchedWritesStayChainLengthIndependent) {
  // Mirrors zero_copy_test's invariant, through the envelope: exactly two
  // encodes per write (the request at the switch, the tail's per-sub ack) —
  // wrapping and unwrapping envelopes never re-serializes a message — and
  // byte copies stay flat as the chain grows (the mirror's truncation CoW
  // plus the head's per-sub decision stamp; replicas forward the envelope
  // verbatim).
  constexpr int kWrites = 8;
  const BatchedWriteCosts single = MeasureBatchedWrites(1, kWrites);
  const BatchedWriteCosts chain3 = MeasureBatchedWrites(3, kWrites);

  EXPECT_EQ(single.encodes, 2u * kWrites);
  EXPECT_EQ(chain3.encodes, 2u * kWrites);
  EXPECT_EQ(single.deep_copies, chain3.deep_copies)
      << "forwarding a batch through extra replicas must not copy bytes";
}

// --- renew-wedge regression (the headline bugfix) ---------------------------

TEST(BatchingTest, DroppedRenewDoesNotWedgeTheFlow) {
  ReadApp app;
  core::RedPlaneConfig cfg;
  // The renew window opens 4 ms before expiry and the renew times out after
  // 500 µs, so the un-wedge retry (at the next 1 ms-paced read) lands well
  // before the lease lapses.
  cfg.lease_period = Milliseconds(8);
  cfg.renew_interval = Milliseconds(4);
  cfg.request_timeout = Microseconds(500);
  BatchHarness h(app, {.rp_cfg = cfg});

  // Drop exactly the first kLeaseRenewOnly request on its way to the store.
  bool dropped_one = false;
  h.drop_pred = [&dropped_one, &h](const net::Packet& pkt) {
    if (dropped_one || !pkt.ip.has_value() ||
        pkt.ip->dst != h.replicas[0]->ip()) {
      return false;
    }
    auto msg = core::MsgView::Parse(pkt.payload);
    if (msg.has_value() && msg->type() == core::MsgType::kLeaseRenewOnly) {
      dropped_one = true;
      return true;
    }
    return false;
  };

  // Steady reads across many lease periods.
  h.SendPaced(40, Milliseconds(1));
  h.sim.Run();

  EXPECT_TRUE(dropped_one) << "scenario never exercised the drop";
  EXPECT_EQ(h.delivered, 40);
  // The wedge: before the fix the lost renew pinned renew_in_flight, no
  // further renewals went out, the lease silently expired, and the next
  // packet re-Inited the flow.  Fixed: the switch times the renew out,
  // retries, and the flow never re-Inits.
  EXPECT_DOUBLE_EQ(h.SwitchStat("inits_sent"), 1.0);
  EXPECT_GE(h.SwitchStat("renew_timeouts"), 1.0);
  EXPECT_GE(h.SwitchStat("renewals_sent"), 2.0);
  const auto key = net::PartitionKey::OfFlow(TheFlow());
  const core::FlowRef entry = h.rp->flow_table().Find(key);
  ASSERT_TRUE(entry);
  EXPECT_TRUE(entry.LeaseActive(h.sim.Now()));
}

// --- retransmit scan idle-stop regression -----------------------------------

TEST(BatchingTest, RetxScanStopsWhenGiveUpDrainsTheTable) {
  WriteApp app;
  core::RedPlaneConfig cfg;
  cfg.lease_period = Seconds(2);
  cfg.renew_interval = Seconds(1);
  cfg.request_timeout = Microseconds(200);
  cfg.retx_scan_interval = Microseconds(50);
  cfg.max_retransmissions = 3;
  BatchHarness h(app, {.rp_cfg = cfg});
  h.SendBurst(1);
  h.sim.Run();
  ASSERT_EQ(h.delivered, 1);

  // Cut the store off: the next write retransmits, then gives up, draining
  // the mirror table inside one scan invocation.
  h.drop_pred = [&h](const net::Packet& pkt) {
    return pkt.ip.has_value() && pkt.ip->dst == h.replicas[0]->ip();
  };
  h.SendBurst(1);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(5));  // >> give-up horizon

  EXPECT_GE(h.SwitchStat("retx_give_ups"), 1.0);
  EXPECT_EQ(h.sw->mirror().NumEntries(), 0u);
  // The scan must have stopped with the table: an idle switch schedules
  // nothing.  (Before the fix it rescheduled itself forever, leaving one
  // pending no-op timer event per scan interval.)
  EXPECT_EQ(h.sim.PendingEvents(), 0u);
}

// --- audit see-through ------------------------------------------------------

TEST(BatchingTest, ArmedAuditorStaysSilentThroughEnvelopes) {
  WriteApp app;
  BatchHarness h(app,
                 {.chain_size = 3, .rp_cfg = BatchedConfig(),
                  .arm_audit = true});
  h.SendBurst(1);
  h.sim.Run();
  for (int round = 0; round < 5; ++round) {
    h.SendBurst(6);
    h.sim.Run();
  }
  EXPECT_EQ(h.delivered, 31);
  ASSERT_GE(h.SwitchStat("batch_envelopes"), 1.0);
  EXPECT_EQ(h.auditor.violations().size(), 0u)
      << h.auditor.violations()[0].detail;
}

TEST(BatchingTest, EarlyChainAckStillCaughtThroughEnvelopes) {
  // The chain-commit oracle must see through the envelope: a mutated head
  // that acks batched writes before chain-wide commit is still flagged.
  WriteApp app;
  BatchHarness h(app, {.chain_size = 3,
                       .rp_cfg = BatchedConfig(),
                       .head_mutations = {.early_chain_ack = true},
                       .arm_audit = true});
  h.SendBurst(1);
  h.sim.Run();
  h.SendBurst(6);
  h.sim.Run();
  ASSERT_GE(h.SwitchStat("batch_envelopes"), 1.0);
  EXPECT_GE(h.auditor.ViolationCount("chain_commit"), 1u);
  EXPECT_EQ(h.auditor.ViolationCount("chain_commit"),
            h.auditor.violations().size());
}

}  // namespace
}  // namespace redplane
