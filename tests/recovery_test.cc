// Recovery-episode forensics: the tracker turns a synthetic audit-tap
// stream into episodes whose five phase durations sum *exactly* to the
// measured downtime (the DESIGN.md §13 invariant, this PR's acceptance
// pin), skipped phases collapse to zero width, per-flow downtime samples
// the first service gap spanning the fault, and the flight-recorder
// snapshot preserves pre-fault trace context across ring eviction.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "audit/taps.h"
#include "obs/json.h"
#include "obs/recovery.h"
#include "obs/tracer.h"

namespace redplane {
namespace {

using obs::PhaseSumOk;
using obs::RecoveryEpisode;
using obs::RecoveryPhase;
using obs::RecoveryTracker;

audit::TapEvent At(audit::Tap tap, SimTime t, std::uint64_t key = 0) {
  audit::TapEvent ev;
  ev.tap = tap;
  ev.t = t;
  ev.key = key;
  return ev;
}

TEST(RecoveryTest, FullPhaseChainSumsExactlyToDowntime) {
  RecoveryTracker tracker;
  // Flow 7 served before the fault: its downtime is measurable.
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 500, 7));
  tracker.OnTapEvent(At(audit::Tap::kNodeDown, 1000));
  ASSERT_TRUE(tracker.EpisodeOpen());
  tracker.OnTapEvent(At(audit::Tap::kRouteReconverged, 2000));
  tracker.OnTapEvent(At(audit::Tap::kLeaseRequested, 2500, 7));
  tracker.OnTapEvent(At(audit::Tap::kLeaseGranted, 3000, 7));
  tracker.OnTapEvent(At(audit::Tap::kLeaseAcquired, 3500, 7));
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 4000, 7));

  ASSERT_EQ(tracker.episodes().size(), 1u);
  EXPECT_FALSE(tracker.EpisodeOpen());
  const RecoveryEpisode& e = tracker.episodes().front();
  EXPECT_TRUE(e.complete);
  EXPECT_EQ(e.trigger, "node_down");
  EXPECT_EQ(e.fault_at, 1000);
  EXPECT_EQ(e.Downtime(), 3000);
  EXPECT_TRUE(PhaseSumOk(e));
  EXPECT_EQ(e.PhaseDuration(RecoveryPhase::kFailureDetection), 1000);
  EXPECT_EQ(e.PhaseDuration(RecoveryPhase::kRouteReconvergence), 500);
  EXPECT_EQ(e.PhaseDuration(RecoveryPhase::kLeaseReacquisition), 500);
  EXPECT_EQ(e.PhaseDuration(RecoveryPhase::kStateInstall), 500);
  EXPECT_EQ(e.PhaseDuration(RecoveryPhase::kFirstPacketServed), 500);
  // The five durations telescope to the downtime by construction.
  SimDuration sum = 0;
  for (int i = 0; i < obs::kNumRecoveryPhases; ++i) {
    sum += e.PhaseDuration(static_cast<RecoveryPhase>(i));
  }
  EXPECT_EQ(sum, e.Downtime());
  // Flow 7's first post-fault service is 3000 ns after the fault.
  ASSERT_EQ(e.flow_downtime_us.Count(), 1u);
  EXPECT_DOUBLE_EQ(e.flow_downtime_us.Max(), 3.0);
}

TEST(RecoveryTest, SkippedPhasesCollapseToZeroWidth) {
  RecoveryTracker tracker;
  tracker.OnTapEvent(At(audit::Tap::kLinkCut, 1000));
  // Recovery without route/lease-request/grant markers (e.g. an in-flight
  // ack masks the fault): kLeaseAcquired back-fills the earlier endpoints.
  tracker.OnTapEvent(At(audit::Tap::kLeaseAcquired, 2000, 3));
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 2500, 3));

  ASSERT_EQ(tracker.episodes().size(), 1u);
  const RecoveryEpisode& e = tracker.episodes().front();
  EXPECT_TRUE(e.complete);
  EXPECT_EQ(e.trigger, "link_cut");
  EXPECT_TRUE(PhaseSumOk(e));
  EXPECT_EQ(e.Downtime(), 1500);
  // The back-fill charges the gap to failure_detection; the skipped middle
  // phases are zero-width.
  EXPECT_EQ(e.PhaseDuration(RecoveryPhase::kFailureDetection), 1000);
  EXPECT_EQ(e.PhaseDuration(RecoveryPhase::kRouteReconvergence), 0);
  EXPECT_EQ(e.PhaseDuration(RecoveryPhase::kLeaseReacquisition), 0);
  EXPECT_EQ(e.PhaseDuration(RecoveryPhase::kStateInstall), 0);
  EXPECT_EQ(e.PhaseDuration(RecoveryPhase::kFirstPacketServed), 500);
}

TEST(RecoveryTest, OutputsWithoutLeaseReinstallDoNotCloseEarly) {
  RecoveryTracker tracker;
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 100, 1));
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 200, 2));
  tracker.OnTapEvent(At(audit::Tap::kNodeDown, 1000));
  // An unaffected flow keeps being served — the episode must stay open
  // until the protocol actually re-installs a lease.
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 1200, 1));
  EXPECT_TRUE(tracker.EpisodeOpen());
  tracker.OnTapEvent(At(audit::Tap::kLeaseAcquired, 2000, 2));
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 2100, 2));

  ASSERT_EQ(tracker.episodes().size(), 1u);
  const RecoveryEpisode& e = tracker.episodes().front();
  EXPECT_TRUE(e.complete);
  EXPECT_TRUE(PhaseSumOk(e));
  EXPECT_EQ(e.Downtime(), 1100);
  // Both pre-fault flows sampled: flow 1 at +200 ns, flow 2 at +1100 ns.
  EXPECT_EQ(e.flow_downtime_us.Count(), 2u);
  EXPECT_DOUBLE_EQ(e.flow_downtime_us.Min(), 0.2);
  EXPECT_DOUBLE_EQ(e.flow_downtime_us.Max(), 1.1);
}

TEST(RecoveryTest, FinalizeClosesFromFirstPostFaultService) {
  RecoveryTracker tracker;
  tracker.OnTapEvent(At(audit::Tap::kLinkCut, 1000));
  // Service resumes (surviving leases) but the lease chain never signals.
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 1500, 9));
  EXPECT_TRUE(tracker.EpisodeOpen());
  tracker.Finalize(50000);

  ASSERT_EQ(tracker.episodes().size(), 1u);
  const RecoveryEpisode& e = tracker.episodes().front();
  EXPECT_TRUE(e.complete);
  EXPECT_TRUE(PhaseSumOk(e));
  EXPECT_EQ(e.Downtime(), 500);  // closed at the resume, not at Finalize
}

TEST(RecoveryTest, FinalizeWithoutServiceLeavesEpisodeIncomplete) {
  RecoveryTracker tracker;
  tracker.OnTapEvent(At(audit::Tap::kNodeDown, 1000));
  tracker.Finalize(9000);

  ASSERT_EQ(tracker.episodes().size(), 1u);
  const RecoveryEpisode& e = tracker.episodes().front();
  EXPECT_FALSE(e.complete);
  EXPECT_FALSE(PhaseSumOk(e));  // the invariant is defined on closed episodes
  EXPECT_EQ(e.phase_end.back(), 9000);  // downtime lower-bounds the truth
}

TEST(RecoveryTest, OverlappingFaultsFoldIntoOneEpisode) {
  RecoveryTracker tracker;
  tracker.OnTapEvent(At(audit::Tap::kNodeDown, 1000));
  tracker.OnTapEvent(At(audit::Tap::kLinkCut, 1100));
  tracker.OnTapEvent(At(audit::Tap::kNodeDown, 1200));
  tracker.OnTapEvent(At(audit::Tap::kLeaseAcquired, 2000, 1));
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 2500, 1));

  ASSERT_EQ(tracker.episodes().size(), 1u);
  EXPECT_EQ(tracker.episodes().front().extra_faults, 2u);
  EXPECT_EQ(tracker.episodes().front().fault_at, 1000);
}

TEST(RecoveryTest, JsonExportParsesAndCarriesTheInvariant) {
  RecoveryTracker tracker;
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 500, 7));
  tracker.OnTapEvent(At(audit::Tap::kNodeDown, 1000));
  tracker.OnTapEvent(At(audit::Tap::kLeaseAcquired, 2000, 7));
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 3000, 7));

  const std::string json = tracker.Json();
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.has_value());
  const auto* episodes = doc->Find("episodes");
  ASSERT_NE(episodes, nullptr);
  ASSERT_EQ(episodes->array.size(), 1u);
  const auto& ep = episodes->array.front();
  EXPECT_EQ(ep.NumberOr("downtime_ns", 0), 2000);
  const auto* sum_ok = ep.Find("phase_sum_ok");
  ASSERT_NE(sum_ok, nullptr);
  EXPECT_TRUE(sum_ok->boolean);
  const auto* phases = ep.Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array.size(),
            static_cast<std::size_t>(obs::kNumRecoveryPhases));
  double phase_sum = 0;
  for (const auto& ph : phases->array) {
    phase_sum += ph.NumberOr("duration_ns", 0);
  }
  EXPECT_EQ(phase_sum, ep.NumberOr("downtime_ns", -1));
}

// Satellite 3 (flight-recorder rescue): the tracker snapshots the tracer
// ring at episode open, so records that explain the fault survive even when
// episode-time churn evicts them from the ring before close.
TEST(RecoveryTest, FlightRecorderSnapshotSurvivesRingEviction) {
  obs::Tracer tracer(/*capacity=*/8);
  tracer.SetEnabled(true);
  const std::uint16_t comp = tracer.Intern("test");
  // Pre-fault context: 8 records filling the ring, flows 100..107.
  for (std::uint64_t i = 0; i < 8; ++i) {
    tracer.Emit(comp, obs::Ev::kIngress, 100 + i);
  }
  ASSERT_EQ(tracer.evicted(), 0u);

  RecoveryTracker tracker(&tracer);
  tracker.OnTapEvent(At(audit::Tap::kNodeDown, 1000));
  // Episode-time churn: 32 more records, wrapping the ring four times over.
  for (std::uint64_t i = 0; i < 32; ++i) {
    tracer.Emit(comp, obs::Ev::kIngress, 200 + i);
  }
  EXPECT_GT(tracer.evicted(), 0u);
  tracker.OnTapEvent(At(audit::Tap::kLeaseAcquired, 2000, 1));
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 3000, 1));

  ASSERT_EQ(tracker.episodes().size(), 1u);
  const RecoveryEpisode& e = tracker.episodes().front();
  // Snapshot (8 pre-fault) + what the ring still holds at close (its last
  // 8): without the open-time snapshot the pre-fault context would be gone.
  EXPECT_EQ(e.trace.size(), 16u);
  bool found_prefault = false;
  for (const auto& r : e.trace) {
    found_prefault = found_prefault || r.flow == 100;
  }
  EXPECT_TRUE(found_prefault) << "pre-fault context evicted despite snapshot";
  // The eviction gauge recorded at open is 0: the snapshot was taken before
  // any episode-time churn could push records out.
  EXPECT_EQ(e.evicted_at_open, 0u);
  EXPECT_GT(e.evicted_at_close, e.evicted_at_open);
}

TEST(RecoveryTest, TimelineRendersPhaseTable) {
  RecoveryTracker tracker;
  tracker.OnTapEvent(At(audit::Tap::kNodeDown, 1000000));
  tracker.OnTapEvent(At(audit::Tap::kRouteReconverged, 2000000));
  tracker.OnTapEvent(At(audit::Tap::kLeaseAcquired, 3000000, 1));
  tracker.OnTapEvent(At(audit::Tap::kOutputServed, 4000000, 1));
  std::ostringstream os;
  tracker.PrintTimeline(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("failure_detection"), std::string::npos);
  EXPECT_NE(text.find("first_packet_served"), std::string::npos);
  EXPECT_NE(text.find("phase_sum=ok"), std::string::npos);
}

}  // namespace
}  // namespace redplane
