#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace redplane {
namespace {

TEST(TypesTest, DurationHelpers) {
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(7)), 7.0);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.Exponential(50.0);
  EXPECT_NEAR(sum / trials, 50.0, 1.5);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng root(21);
  Rng a = root.Fork(1);
  Rng b = root.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(ZipfTest, SkewsTowardLowIndices) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 10 * counts[99] / 2);
}

TEST(ZipfTest, ThetaZeroNearlyUniform) {
  Rng rng(31);
  ZipfSampler zipf(10, 1e-9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64(std::string_view{}), 0xcbf29ce484222325ull);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, Crc32MatchesKnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE).
  const std::string_view s = "123456789";
  EXPECT_EQ(Crc32(std::as_bytes(std::span(s.data(), s.size()))), 0xcbf43926u);
}

TEST(HashTest, Mix64Bijective) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(StatsTest, PercentilesOfKnownSet) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Mean(), 50.5, 1e-9);
}

TEST(StatsTest, CdfMonotonicAndComplete) {
  SampleSet s;
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) s.Add(rng.UniformDouble());
  const auto cdf = s.Cdf(100);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(StatsTest, TimeSeriesBucketing) {
  TimeSeries ts(Milliseconds(100));
  ts.Add(Milliseconds(10), 5);
  ts.Add(Milliseconds(90), 7);
  ts.Add(Milliseconds(150), 1);
  EXPECT_EQ(ts.NumBuckets(), 2u);
  EXPECT_DOUBLE_EQ(ts.BucketSum(0), 12);
  EXPECT_DOUBLE_EQ(ts.BucketSum(1), 1);
  EXPECT_DOUBLE_EQ(ts.BucketSum(5), 0);
  EXPECT_EQ(ts.BucketStart(1), Milliseconds(100));
}

TEST(StatsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace redplane
