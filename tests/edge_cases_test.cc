// Edge cases across modules that the mainline tests don't reach: malformed
// and hostile inputs, boundary conditions, and failure-timing corners.
#include <gtest/gtest.h>

#include "apps/counter.h"
#include "apps/epc_sgw.h"
#include "core/flow_table.h"
#include "core/protocol.h"
#include "core/redplane_switch.h"
#include "net/codec.h"
#include "routing/failure.h"
#include "routing/topology.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/server.h"

namespace redplane {
namespace {

TEST(FlowTableTest, NoteAckAdvancesLeaseFromSendTime) {
  core::FlowTable table;
  const auto key = net::PartitionKey::OfObject(1);
  const std::uint32_t slot = table.GetOrCreateSlot(key);
  table.NoteSend(slot, 1, Milliseconds(10));
  table.NoteSend(slot, 2, Milliseconds(20));
  table.NoteAck(slot, 2, Milliseconds(100));
  EXPECT_EQ(table.last_acked_seq(slot), 2u);
  // Expiry anchored at the newest acked *send* time (20 ms), not receipt.
  EXPECT_EQ(table.lease_expiry(slot), Milliseconds(120));
  EXPECT_EQ(table.Find(key).pending_send_count(), 0u);
}

TEST(FlowTableTest, NoteAckOutOfOrderKeepsNewerPendings) {
  core::FlowTable table;
  const auto key = net::PartitionKey::OfObject(2);
  const std::uint32_t slot = table.GetOrCreateSlot(key);
  table.NoteSend(slot, 1, Milliseconds(10));
  table.NoteSend(slot, 2, Milliseconds(20));
  table.NoteSend(slot, 3, Milliseconds(30));
  table.NoteAck(slot, 1, Milliseconds(50));
  EXPECT_EQ(table.Find(key).pending_send_count(), 2u);
  EXPECT_EQ(table.last_acked_seq(slot), 1u);
  // A stale (already covered) ack does not regress anything.
  table.NoteAck(slot, 1, Milliseconds(50));
  EXPECT_EQ(table.last_acked_seq(slot), 1u);
  EXPECT_EQ(table.Find(key).pending_send_count(), 2u);
}

TEST(FlowTableTest, WritesInFlightAndLeaseActive) {
  core::FlowTable table;
  const std::uint32_t slot =
      table.GetOrCreateSlot(net::PartitionKey::OfObject(3));
  EXPECT_FALSE(table.WritesInFlight(slot));
  table.set_cur_seq(slot, 3);
  table.set_last_acked_seq(slot, 2);
  EXPECT_TRUE(table.WritesInFlight(slot));
  table.set_status(slot, core::FlowStatus::kActive);
  table.set_lease_expiry(slot, Milliseconds(10));
  EXPECT_TRUE(table.LeaseActive(slot, Milliseconds(9)));
  EXPECT_FALSE(table.LeaseActive(slot, Milliseconds(10)));
}

TEST(FlowTableTest, NoteSendCompactsPastHorizonAndCapsDeque) {
  core::FlowTable table;
  const auto key = net::PartitionKey::OfObject(4);
  const std::uint32_t slot = table.GetOrCreateSlot(key);
  // Horizon compaction: sends older than now - horizon drop off the front.
  table.NoteSend(slot, 1, Milliseconds(1), Milliseconds(5));
  table.NoteSend(slot, 2, Milliseconds(2), Milliseconds(5));
  table.NoteSend(slot, 3, Milliseconds(10), Milliseconds(5));
  // Sends at 1 ms and 2 ms are older than 10 ms - 5 ms: both compacted.
  EXPECT_EQ(table.Find(key).pending_send_count(), 1u);
  // Hard cap: even with no horizon the deque stays bounded.
  for (std::uint64_t seq = 4; seq < 4 + 10'000; ++seq) {
    table.NoteSend(slot, seq, Milliseconds(11));
  }
  EXPECT_LE(table.Find(key).pending_send_count(), 256u);
}

TEST(FlowTableTest, SlotsAreStableAndGenerationsDetectReuse) {
  core::FlowTable table;
  const auto a = net::PartitionKey::OfObject(10);
  const auto b = net::PartitionKey::OfObject(11);
  const std::uint32_t sa = table.GetOrCreateSlot(a);
  const std::uint32_t sb = table.GetOrCreateSlot(b);
  ASSERT_NE(sa, sb);
  const std::uint32_t gen_a = table.gen(sa);
  EXPECT_TRUE(table.Alive(sa, gen_a));
  table.Erase(a);
  EXPECT_FALSE(table.Alive(sa, gen_a));
  // The freed slot is recycled with a bumped generation.
  const std::uint32_t sc = table.GetOrCreateSlot(net::PartitionKey::OfObject(12));
  EXPECT_EQ(sc, sa);
  EXPECT_FALSE(table.Alive(sa, gen_a));
  EXPECT_TRUE(table.Alive(sc, table.gen(sc)));
  EXPECT_EQ(table.FindSlot(b), sb);
}

TEST(StoreEdgeTest, NonProtocolAndMalformedPacketsCounted) {
  sim::Simulator sim;
  sim::Network net(sim, 1);
  auto* store = net.AddNode<store::StateStoreServer>(
      "store", net::Ipv4Addr(172, 16, 1, 1));
  // Non-protocol UDP.
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(172, 16, 1, 1), 5,
                 80, net::IpProto::kUdp};
  store->HandlePacket(net::MakeUdpPacket(f, 10), 0);
  // Right port, garbage payload.
  net::FlowKey f2 = f;
  f2.dst_port = core::kRedPlaneUdpPort;
  auto junk = net::MakeUdpPacket(f2, 0);
  junk.payload = {std::byte{0x9d}, std::byte{0x1a}, std::byte{0xff}};
  store->HandlePacket(std::move(junk), 0);
  sim.Run();
  EXPECT_DOUBLE_EQ(store->counters().Get("non_protocol_drops"), 1.0);
  EXPECT_DOUBLE_EQ(store->counters().Get("malformed_drops"), 1.0);
}

TEST(StoreEdgeTest, MisdirectedRequestToNonHeadDropped) {
  sim::Simulator sim;
  sim::Network net(sim, 1);
  auto* replica = net.AddNode<store::StateStoreServer>(
      "mid", net::Ipv4Addr(172, 16, 1, 2));
  replica->SetIsHead(false);
  core::Msg msg;
  msg.type = core::MsgType::kLeaseNewReq;
  msg.key = net::PartitionKey::OfObject(1);
  msg.reply_to = net::Ipv4Addr(172, 16, 0, 1);
  replica->HandlePacket(
      core::MakeProtocolPacket(msg.reply_to, replica->ip(), msg), 0);
  sim.Run();
  EXPECT_DOUBLE_EQ(replica->counters().Get("misdirected_drops"), 1.0);
  EXPECT_EQ(replica->NumFlows(), 0u);
}

TEST(StoreEdgeTest, BufferedInitCapDenies) {
  sim::Simulator sim;
  sim::Network net(sim, 1);
  store::StoreConfig cfg;
  cfg.max_buffered_inits = 1;
  auto* store = net.AddNode<store::StateStoreServer>(
      "store", net::Ipv4Addr(172, 16, 1, 1), cfg);
  auto* sink = net.AddNode<sim::HostNode>("sink", net::Ipv4Addr(9, 9, 9, 9));
  net.Connect(store, 0, sink, 0);
  std::vector<core::AckKind> acks;
  sink->SetHandler([&](sim::HostNode&, net::Packet pkt) {
    auto msg = core::DecodeFromPacket(pkt);
    if (msg.has_value()) acks.push_back(msg->ack);
  });

  const auto key = net::PartitionKey::OfObject(7);
  auto send_init = [&](std::uint8_t owner_octet) {
    core::Msg msg;
    msg.type = core::MsgType::kLeaseNewReq;
    msg.key = key;
    msg.reply_to = net::Ipv4Addr(172, 16, 0, owner_octet);
    store->HandlePacket(
        core::MakeProtocolPacket(msg.reply_to, store->ip(), msg), 0);
  };
  send_init(1);  // granted
  sim.Run();
  send_init(2);  // buffered (slot 1 of 1)
  send_init(3);  // over the cap -> denied immediately
  sim.RunUntil(sim.Now() + Milliseconds(1));
  ASSERT_GE(acks.size(), 2u);
  EXPECT_EQ(acks.back(), core::AckKind::kLeaseDenied);
  // The buffered one is eventually granted when the lease lapses.
  sim.Run();
  EXPECT_EQ(acks.back(), core::AckKind::kLeaseGrantMigrate);
}

TEST(StoreEdgeTest, FailureClearsStateAndCancelsQueuedWork) {
  sim::Simulator sim;
  sim::Network net(sim, 1);
  store::StoreConfig cfg;
  cfg.service_time = Milliseconds(1);  // long, so work is queued
  auto* store = net.AddNode<store::StateStoreServer>(
      "store", net::Ipv4Addr(172, 16, 1, 1), cfg);
  auto* sink = net.AddNode<sim::HostNode>("sink", net::Ipv4Addr(9, 9, 9, 9));
  net.Connect(store, 0, sink, 0);
  int acked = 0;
  sink->SetHandler([&](sim::HostNode&, net::Packet) { ++acked; });

  core::Msg msg;
  msg.type = core::MsgType::kLeaseNewReq;
  msg.key = net::PartitionKey::OfObject(1);
  msg.reply_to = net::Ipv4Addr(9, 9, 9, 9);
  store->HandlePacket(core::MakeProtocolPacket(msg.reply_to, store->ip(), msg),
                      0);
  store->SetUp(false);  // crash before the queued request is served
  sim.Run();
  EXPECT_EQ(acked, 0);
  EXPECT_EQ(store->NumFlows(), 0u);
  store->SetUp(true);
  EXPECT_EQ(store->NumFlows(), 0u);  // DRAM lost
}

TEST(RoutingEdgeTest, NextHopForUnroutablePacket) {
  sim::Simulator sim;
  routing::Testbed tb = routing::BuildTestbed(sim);
  // Unknown destination: no route.
  net::FlowKey f{routing::ExternalHostIp(0), net::Ipv4Addr(9, 9, 9, 9), 1, 2,
                 net::IpProto::kUdp};
  EXPECT_FALSE(tb.fabric->NextHop(tb.core, net::MakeUdpPacket(f, 0))
                   .has_value());
  // Packet without an IP header: no route.
  net::Packet bare;
  EXPECT_FALSE(tb.fabric->NextHop(tb.core, bare).has_value());
  // Destination is the asking node itself: no route (terminates here).
  net::FlowKey self{routing::ExternalHostIp(0), routing::AggSwitchIp(0), 1, 2,
                    net::IpProto::kUdp};
  EXPECT_FALSE(
      tb.fabric->NextHop(tb.agg[0], net::MakeUdpPacket(self, 0)).has_value());
}

TEST(RoutingEdgeTest, IsolatedDestinationUnreachableUntilRecovery) {
  sim::Simulator sim;
  routing::TestbedConfig cfg;
  cfg.fabric.failure_detection_delay = Milliseconds(1);
  routing::Testbed tb = routing::BuildTestbed(sim, cfg);
  routing::FailureInjector injector(sim, *tb.fabric);
  // Cut both of rack 0's uplinks: its servers become unreachable.
  injector.FailLink(tb.network->FindLink(tb.agg[0], tb.tor[0]));
  injector.FailLink(tb.network->FindLink(tb.agg[1], tb.tor[0]));
  sim.RunUntil(Milliseconds(5));
  net::FlowKey f{routing::ExternalHostIp(0), routing::RackServerIp(0, 0), 1,
                 2, net::IpProto::kUdp};
  EXPECT_FALSE(tb.fabric->NextHop(tb.core, net::MakeUdpPacket(f, 0))
                   .has_value());
  injector.RecoverLink(tb.network->FindLink(tb.agg[0], tb.tor[0]));
  sim.RunUntil(Milliseconds(10));
  EXPECT_TRUE(tb.fabric->NextHop(tb.core, net::MakeUdpPacket(f, 0))
                  .has_value());
}

TEST(RedPlaneEdgeTest, MalformedAckCountedNotCrashed) {
  sim::Simulator sim;
  sim::Network net(sim, 1);
  dp::SwitchConfig cfg;
  cfg.switch_ip = net::Ipv4Addr(172, 16, 0, 1);
  auto* sw = net.AddNode<dp::SwitchNode>("sw", cfg);
  apps::SyncCounterApp app;
  core::RedPlaneSwitch rp(
      *sw, app, [](const net::PartitionKey&) { return net::Ipv4Addr(); });
  sw->SetPipeline(&rp);

  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), cfg.switch_ip, 5,
                 core::kRedPlaneUdpPort, net::IpProto::kUdp};
  auto pkt = net::MakeUdpPacket(f, 0);
  pkt.payload = {std::byte{0x9d}, std::byte{0x1a}, std::byte{0x00}};
  sw->HandlePacket(std::move(pkt), 0);
  sim.Run();
  EXPECT_DOUBLE_EQ(rp.stats().Get("malformed_acks"), 1.0);
}

TEST(RedPlaneEdgeTest, NonAppTrafficForwardedUntouched) {
  sim::Simulator sim;
  sim::Network net(sim, 1);
  dp::SwitchConfig cfg;
  cfg.switch_ip = net::Ipv4Addr(172, 16, 0, 1);
  auto* sw = net.AddNode<dp::SwitchNode>("sw", cfg);
  auto* sink = net.AddNode<sim::HostNode>("sink", net::Ipv4Addr(2, 2, 2, 2));
  net.Connect(sw, 0, sink, 0);
  sw->SetForwarder([](const net::Packet&, PortId) { return PortId{0}; });
  apps::EpcSgwApp app;  // claims only SGW ports
  core::RedPlaneSwitch rp(
      *sw, app, [](const net::PartitionKey&) { return net::Ipv4Addr(); });
  sw->SetPipeline(&rp);
  int delivered = 0;
  sink->SetHandler([&](sim::HostNode&, net::Packet) { ++delivered; });
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 5, 80,
                 net::IpProto::kUdp};
  sw->HandlePacket(net::MakeUdpPacket(f, 10), 0);
  sim.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_DOUBLE_EQ(rp.stats().Get("app_pkts"), 0.0);
}

TEST(ProtocolEdgeTest, OversizeStateStillRoundTrips) {
  core::Msg msg;
  msg.type = core::MsgType::kLeaseRenewReq;
  msg.key = net::PartitionKey::OfObject(1);
  msg.state.resize(60'000, std::byte{0x5a});  // near the u16 length cap
  const auto decoded = core::DecodeMsg(core::EncodeMsg(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->state.size(), 60'000u);
}

TEST(SgwEdgeTest, TruncatedSignalingIgnored) {
  apps::EpcSgwApp sgw;
  std::vector<std::byte> state;
  core::AppContext ctx;
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(100, 64, 0, 1),
                 9000, apps::kSgwSignalingPort, net::IpProto::kUdp};
  auto pkt = net::MakeUdpPacket(f, 0);
  pkt.payload = {std::byte{1}, std::byte{2}};  // too short for teid+enb
  const auto result = sgw.Process(ctx, std::move(pkt), state);
  EXPECT_TRUE(result.outputs.empty());
  EXPECT_FALSE(result.state_modified);
  EXPECT_TRUE(state.empty());
}

}  // namespace
}  // namespace redplane
