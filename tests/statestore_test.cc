#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

#include "core/protocol.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/partition.h"
#include "statestore/pools.h"
#include "statestore/server.h"

namespace redplane::store {
namespace {

using core::AckKind;
using core::Msg;
using core::MsgType;

net::PartitionKey Key(int n) { return net::PartitionKey::OfObject(n); }

/// Harness: two pseudo-switch hosts wired to a chain of store servers
/// through a star hub that routes by destination IP; records every ack.
class StoreHarness {
 public:
  explicit StoreHarness(int chain_size, StoreConfig config = {}) {
    net_ = std::make_unique<sim::Network>(sim_, 5);
    hub_ = net_->AddNode<sim::HostNode>("hub", net::Ipv4Addr(9, 9, 9, 9));
    hub_->SetHandler([this](sim::HostNode& self, net::Packet pkt) {
      for (std::size_t port = 0; port < self.NumPorts(); ++port) {
        sim::Link* link = self.LinkAt(static_cast<PortId>(port));
        if (link == nullptr) continue;
        sim::Node* other = link->endpoint_a() == &self ? link->endpoint_b()
                                                       : link->endpoint_a();
        net::Ipv4Addr other_ip;
        if (auto* host = dynamic_cast<sim::HostNode*>(other)) {
          other_ip = host->ip();
        } else if (auto* server = dynamic_cast<StateStoreServer*>(other)) {
          other_ip = server->ip();
        } else {
          continue;
        }
        if (pkt.ip.has_value() && pkt.ip->dst == other_ip) {
          self.SendTo(static_cast<PortId>(port), std::move(pkt));
          return;
        }
      }
    });

    for (int i = 0; i < 2; ++i) {
      auto* sw = net_->AddNode<sim::HostNode>(
          "sw" + std::to_string(i), net::Ipv4Addr(172, 16, 0, 1 + i));
      sw->SetHandler([this, i](sim::HostNode&, net::Packet pkt) {
        if (!core::IsProtocolPacket(pkt)) return;
        auto msg = core::DecodeFromPacket(pkt);
        if (msg.has_value()) acks_[i].push_back(std::move(*msg));
      });
      net_->Connect(sw, 0, hub_, static_cast<PortId>(i));
      switches_[i] = sw;
    }

    for (int i = 0; i < chain_size; ++i) {
      auto* server = net_->AddNode<StateStoreServer>(
          "store" + std::to_string(i), net::Ipv4Addr(172, 16, 1, 1 + i),
          config);
      net_->Connect(server, 0, hub_, static_cast<PortId>(2 + i));
      servers_.push_back(server);
    }
    for (int i = 0; i < chain_size; ++i) {
      servers_[i]->SetIsHead(i == 0);
      if (i + 1 < chain_size) {
        servers_[i]->SetChainSuccessor(servers_[i + 1]->ip());
      }
    }
  }

  void Send(int sw, Msg msg) {
    msg.reply_to = switches_[sw]->ip();
    switches_[sw]->Send(core::MakeProtocolPacket(switches_[sw]->ip(),
                                                 servers_[0]->ip(), msg));
  }

  Msg MakeInit(int key) {
    Msg m;
    m.type = MsgType::kLeaseNewReq;
    m.key = Key(key);
    return m;
  }

  Msg MakeWrite(int key, std::uint64_t seq, std::uint8_t value) {
    Msg m;
    m.type = MsgType::kLeaseRenewReq;
    m.key = Key(key);
    m.seq = seq;
    m.state = {std::byte{value}};
    return m;
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  sim::HostNode* hub_;
  std::array<sim::HostNode*, 2> switches_{};
  std::vector<StateStoreServer*> servers_;
  std::vector<Msg> acks_[2];
};

TEST(StateStoreTest, GrantsLeaseToNewFlow) {
  StoreHarness h(1);
  h.Send(0, h.MakeInit(1));
  h.sim_.Run();
  ASSERT_EQ(h.acks_[0].size(), 1u);
  EXPECT_EQ(h.acks_[0][0].ack, AckKind::kLeaseGrantNew);
  const FlowRecord* rec = h.servers_[0]->Find(Key(1));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->owner, h.switches_[0]->ip());
  EXPECT_TRUE(rec->exists);
}

TEST(StateStoreTest, SecondSwitchInitBuffersUntilLeaseLapses) {
  StoreConfig cfg;
  cfg.lease_period = Milliseconds(10);
  StoreHarness h(1, cfg);
  h.Send(0, h.MakeInit(1));
  h.sim_.Run();
  h.Send(1, h.MakeInit(1));
  h.sim_.RunUntil(Milliseconds(5));
  EXPECT_TRUE(h.acks_[1].empty());  // buffered while switch 0 owns
  h.sim_.RunUntil(Milliseconds(20));
  ASSERT_EQ(h.acks_[1].size(), 1u);
  // Flow existed, so the grant carries migration semantics.
  EXPECT_EQ(h.acks_[1][0].ack, AckKind::kLeaseGrantMigrate);
  EXPECT_EQ(h.servers_[0]->Find(Key(1))->owner, h.switches_[1]->ip());
}

TEST(StateStoreTest, MigrationReturnsLatestState) {
  StoreConfig cfg;
  cfg.lease_period = Milliseconds(10);
  StoreHarness h(1, cfg);
  h.Send(0, h.MakeInit(1));
  h.sim_.Run();
  h.Send(0, h.MakeWrite(1, 1, 0xaa));
  h.Send(0, h.MakeWrite(1, 2, 0xbb));
  h.sim_.Run();
  h.sim_.RunUntil(Milliseconds(30));  // lease lapses
  h.Send(1, h.MakeInit(1));
  h.sim_.Run();
  ASSERT_EQ(h.acks_[1].size(), 1u);
  EXPECT_EQ(h.acks_[1][0].ack, AckKind::kLeaseGrantMigrate);
  EXPECT_EQ(h.acks_[1][0].seq, 2u);
  ASSERT_EQ(h.acks_[1][0].state.size(), 1u);
  EXPECT_EQ(h.acks_[1][0].state[0], std::byte{0xbb});
}

TEST(StateStoreTest, StaleSequenceNumbersDiscarded) {
  StoreHarness h(1);
  h.Send(0, h.MakeInit(1));
  h.sim_.Run();
  // Out-of-order arrival: seq 2 before seq 1 (Fig. 6).
  h.Send(0, h.MakeWrite(1, 2, 0x22));
  h.sim_.Run();
  h.Send(0, h.MakeWrite(1, 1, 0x11));
  h.sim_.Run();
  const FlowRecord* rec = h.servers_[0]->Find(Key(1));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->last_applied_seq, 2u);
  EXPECT_EQ(rec->state[0], std::byte{0x22});  // newer value survives
  // Both writes were acked (the stale one so the switch clears its buffer).
  EXPECT_EQ(h.acks_[0].size(), 3u);  // grant + 2 write acks
  EXPECT_DOUBLE_EQ(h.servers_[0]->counters().Get("stale_writes"), 1.0);
}

TEST(StateStoreTest, DuplicateWriteIdempotent) {
  StoreHarness h(1);
  h.Send(0, h.MakeInit(1));
  h.sim_.Run();
  h.Send(0, h.MakeWrite(1, 1, 0x11));
  h.sim_.Run();
  h.Send(0, h.MakeWrite(1, 1, 0x11));  // retransmission
  h.sim_.Run();
  EXPECT_EQ(h.servers_[0]->Find(Key(1))->last_applied_seq, 1u);
  ASSERT_EQ(h.acks_[0].size(), 3u);
  EXPECT_EQ(h.acks_[0][2].seq, 1u);  // duplicate still acked
}

TEST(StateStoreTest, WriteDeniedWhileOtherSwitchHoldsLease) {
  StoreHarness h(1);
  h.Send(0, h.MakeInit(1));
  h.sim_.Run();
  h.Send(1, h.MakeWrite(1, 5, 0x55));
  h.sim_.Run();
  ASSERT_EQ(h.acks_[1].size(), 1u);
  EXPECT_EQ(h.acks_[1][0].ack, AckKind::kLeaseDenied);
  EXPECT_EQ(h.servers_[0]->Find(Key(1))->last_applied_seq, 0u);
}

class ChainSizes : public ::testing::TestWithParam<int> {};

TEST_P(ChainSizes, WritePropagatesToEveryReplicaBeforeAck) {
  StoreHarness h(GetParam());
  h.Send(0, h.MakeInit(1));
  h.sim_.Run();
  h.Send(0, h.MakeWrite(1, 1, 0x77));
  h.sim_.Run();
  ASSERT_EQ(h.acks_[0].size(), 2u);
  EXPECT_EQ(h.acks_[0][1].ack, AckKind::kWriteAck);
  for (auto* server : h.servers_) {
    const FlowRecord* rec = server->Find(Key(1));
    ASSERT_NE(rec, nullptr) << server->name();
    EXPECT_EQ(rec->last_applied_seq, 1u) << server->name();
    ASSERT_EQ(rec->state.size(), 1u);
    EXPECT_EQ(rec->state[0], std::byte{0x77});
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainSizes, ::testing::Values(1, 2, 3));

TEST(StateStoreTest, ChainAckTakesLongerThanSingleServer) {
  StoreHarness h1(1);
  StoreHarness h3(3);
  h1.Send(0, h1.MakeInit(1));
  h3.Send(0, h3.MakeInit(1));
  h1.sim_.Run();
  h3.sim_.Run();
  EXPECT_GT(h3.sim_.Now(), h1.sim_.Now());
}

TEST(StateStoreTest, PiggybackEchoedInWriteAck) {
  StoreHarness h(2);
  h.Send(0, h.MakeInit(1));
  h.sim_.Run();
  Msg w = h.MakeWrite(1, 1, 0x42);
  net::FlowKey inner{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 3,
                     4, net::IpProto::kUdp};
  w.piggyback = net::MakeUdpPacket(inner, 80);
  h.Send(0, w);
  h.sim_.Run();
  ASSERT_EQ(h.acks_[0].size(), 2u);
  ASSERT_TRUE(h.acks_[0][1].piggyback.has_value());
  EXPECT_EQ(*h.acks_[0][1].piggyback->Flow(), inner);
}

TEST(StateStoreTest, ReadBufferParksUntilAwaitedWriteApplied) {
  StoreHarness h(1);
  h.Send(0, h.MakeInit(1));
  h.sim_.Run();
  Msg read;
  read.type = MsgType::kReadBufferReq;
  read.key = Key(1);
  read.seq = 3;
  net::FlowKey inner{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 3,
                     4, net::IpProto::kUdp};
  read.piggyback = net::MakeUdpPacket(inner, 10);
  h.Send(0, read);
  h.sim_.Run();
  EXPECT_EQ(h.acks_[0].size(), 1u);  // only the grant: read parked
  h.Send(0, h.MakeWrite(1, 3, 0x33));
  h.sim_.Run();
  ASSERT_EQ(h.acks_[0].size(), 3u);
  bool saw_read_return = false;
  for (const Msg& m : h.acks_[0]) {
    if (m.ack == AckKind::kReadReturn) {
      saw_read_return = true;
      EXPECT_TRUE(m.piggyback.has_value());
    }
  }
  EXPECT_TRUE(saw_read_return);
}

TEST(StateStoreTest, SnapshotSlotsStoredWithRoundSequencing) {
  StoreHarness h(1);
  Msg snap;
  snap.type = MsgType::kSnapshotRepl;
  snap.key = net::PartitionKey::OfVlan(7);
  snap.seq = 2;
  snap.snapshot_index = 5;
  snap.state = {std::byte{0x05}};
  h.Send(0, snap);
  h.sim_.Run();
  // A stale round for the same slot must not overwrite.
  snap.seq = 1;
  snap.state = {std::byte{0x99}};
  h.Send(0, snap);
  h.sim_.Run();
  const FlowRecord* rec = h.servers_[0]->Find(net::PartitionKey::OfVlan(7));
  ASSERT_NE(rec, nullptr);
  const auto it = rec->snapshot_slots.find(5);
  ASSERT_NE(it, rec->snapshot_slots.end());
  EXPECT_EQ(it->second.first[0], std::byte{0x05});
  EXPECT_EQ(it->second.second, 2u);
  ASSERT_EQ(h.acks_[0].size(), 2u);
  EXPECT_EQ(h.acks_[0][1].ack, AckKind::kSnapshotAck);
}

TEST(StateStoreTest, InitializerSuppliesNewFlowState) {
  StoreConfig cfg;
  cfg.initializer = [](const net::PartitionKey&) {
    return std::vector<std::byte>{std::byte{0x5c}};
  };
  StoreHarness h(1, cfg);
  h.Send(0, h.MakeInit(3));
  h.sim_.Run();
  ASSERT_EQ(h.acks_[0].size(), 1u);
  ASSERT_EQ(h.acks_[0][0].state.size(), 1u);
  EXPECT_EQ(h.acks_[0][0].state[0], std::byte{0x5c});
}

TEST(StateStoreTest, ServiceTimeQueuesRequests) {
  StoreConfig cfg;
  cfg.service_time = Microseconds(10);
  StoreHarness h(1, cfg);
  for (int i = 0; i < 5; ++i) h.Send(0, h.MakeInit(i));
  h.sim_.Run();
  EXPECT_EQ(h.acks_[0].size(), 5u);
  EXPECT_EQ(h.servers_[0]->busy_time(), Microseconds(50));
}

TEST(PartitionMapTest, StableAndCoversAllShards) {
  std::vector<net::Ipv4Addr> shards = {net::Ipv4Addr(1, 0, 0, 1),
                                       net::Ipv4Addr(1, 0, 0, 2),
                                       net::Ipv4Addr(1, 0, 0, 3)};
  PartitionMap map(shards);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto key = Key(i);
    const auto idx = map.ShardIndexFor(key);
    EXPECT_EQ(map.ShardIndexFor(key), idx);  // deterministic
    EXPECT_EQ(map.ShardFor(key), shards[idx]);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(PartitionMapTest, EmptyShardListThrowsInAllBuildModes) {
  // A throw, not an assert: the misconfiguration must be rejected in release
  // (NDEBUG) builds too, not only when assertions are compiled in.
  EXPECT_THROW(PartitionMap(std::vector<net::Ipv4Addr>{}),
               std::invalid_argument);
  PartitionMap empty;  // default-constructed: no shards either
  EXPECT_THROW(empty.ShardIndexFor(Key(1)), std::logic_error);
}

TEST(PortPoolTest, AllocateReleaseExhaustion) {
  PortPool pool(net::Ipv4Addr(10, 0, 0, 1), 1000, 3);
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  auto c = pool.Allocate();
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(*a, 1000);
  EXPECT_FALSE(pool.Allocate().has_value());
  pool.Release(*b);
  EXPECT_EQ(pool.FreeCount(), 1u);
  EXPECT_EQ(pool.Allocate(), *b);
  pool.Release(9999);  // out of range: ignored
  pool.Release(*a);
  pool.Release(*a);  // double free: ignored
  EXPECT_EQ(pool.FreeCount(), 1u);
}

TEST(BackendPoolTest, WeightedRoundRobin) {
  BackendPool pool;
  pool.Add({net::Ipv4Addr(1, 1, 1, 1), 80, 2});
  pool.Add({net::Ipv4Addr(2, 2, 2, 2), 80, 1});
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 300; ++i) {
    auto b = pool.Pick();
    ASSERT_TRUE(b.has_value());
    ++counts[b->ip.value];
  }
  EXPECT_EQ(counts[net::Ipv4Addr(1, 1, 1, 1).value], 200);
  EXPECT_EQ(counts[net::Ipv4Addr(2, 2, 2, 2).value], 100);
  pool.Remove(net::Ipv4Addr(1, 1, 1, 1), 80);
  EXPECT_EQ(pool.Pick()->ip, net::Ipv4Addr(2, 2, 2, 2));
}

}  // namespace
}  // namespace redplane::store
