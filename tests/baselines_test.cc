#include <gtest/gtest.h>

#include "apps/counter.h"
#include "baselines/controller_ft.h"
#include "baselines/plain_pipeline.h"
#include "baselines/rollback.h"
#include "baselines/server_nf.h"
#include "baselines/switch_chain.h"
#include "core/app.h"
#include "net/codec.h"
#include "sim/host.h"
#include "sim/network.h"

namespace redplane::baselines {
namespace {

constexpr net::Ipv4Addr kSrcIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kDstIp(192, 168, 10, 1);

net::FlowKey TestFlow(std::uint16_t port = 1000) {
  return {kSrcIp, kDstIp, port, 80, net::IpProto::kUdp};
}

/// Simple write-per-packet counter app reused across baseline tests.
class CounterApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "counter"; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>& state) override {
    core::ProcessResult result;
    const auto count = core::StateAs<std::uint64_t>(state).value_or(0) + 1;
    core::SetState(state, count);
    result.state_modified = true;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

/// Table-state echo app (forces control-plane installs for new flows).
class TableEchoApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "table_echo"; }
  bool StateInMatchTable() const override { return true; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>& state) override {
    (void)state;
    core::ProcessResult result;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

struct BaselineHarness {
  BaselineHarness() {
    net = std::make_unique<sim::Network>(sim, 11);
    src = net->AddNode<sim::HostNode>("src", kSrcIp);
    dst = net->AddNode<sim::HostNode>("dst", kDstIp);
    dp::SwitchConfig cfg;
    cfg.switch_ip = net::Ipv4Addr(172, 16, 0, 1);
    sw = net->AddNode<dp::SwitchNode>("sw", cfg);
    net->Connect(src, 0, sw, 0);
    net->Connect(dst, 0, sw, 1);
    sw->SetForwarder(
        [](const net::Packet& pkt, PortId) -> std::optional<PortId> {
          if (!pkt.ip.has_value()) return std::nullopt;
          if (pkt.ip->dst == kSrcIp) return PortId{0};
          if (pkt.ip->dst == kDstIp) return PortId{1};
          return PortId{2};
        });
    dst->SetHandler([this](sim::HostNode&, net::Packet pkt) {
      ++delivered;
      last_arrival = sim.Now();
      (void)pkt;
    });
  }

  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  sim::HostNode* src;
  sim::HostNode* dst;
  dp::SwitchNode* sw;
  int delivered = 0;
  SimTime last_arrival = 0;
};

TEST(PlainPipelineTest, ForwardsAndCountsLocally) {
  BaselineHarness h;
  CounterApp app;
  PlainAppPipeline plain(*h.sw, app);
  h.sw->SetPipeline(&plain);
  for (int i = 0; i < 5; ++i) {
    h.src->Send(net::MakeUdpPacket(TestFlow(), 0));
  }
  h.sim.Run();
  EXPECT_EQ(h.delivered, 5);
  EXPECT_EQ(plain.NumFlows(), 1u);
}

TEST(PlainPipelineTest, TableStateFirstPacketWaitsForControlPlane) {
  BaselineHarness h;
  TableEchoApp app;
  PlainAppPipeline plain(*h.sw, app);
  h.sw->SetPipeline(&plain);
  h.src->Send(net::MakeUdpPacket(TestFlow(), 0));
  h.sim.Run();
  EXPECT_EQ(h.delivered, 1);
  // Control-plane install dominates the first-packet latency (tens of µs).
  EXPECT_GT(h.last_arrival, Microseconds(50));
  const SimTime first = h.last_arrival;
  h.src->Send(net::MakeUdpPacket(TestFlow(), 0));
  h.sim.Run();
  // Subsequent packets are pure data plane.
  EXPECT_LT(h.last_arrival - first, Microseconds(20));
}

TEST(PlainPipelineTest, StateLostOnSwitchFailure) {
  BaselineHarness h;
  CounterApp app;
  PlainAppPipeline plain(*h.sw, app);
  h.sw->SetPipeline(&plain);
  h.src->Send(net::MakeUdpPacket(TestFlow(), 0));
  h.sim.Run();
  EXPECT_EQ(plain.NumFlows(), 1u);
  h.sw->SetUp(false);
  EXPECT_EQ(plain.NumFlows(), 0u);  // the paper's Fig. 1 problem
}

TEST(ControllerFtTest, NewFlowCommitsToControllerBeforeRelease) {
  BaselineHarness h;
  CounterApp app;
  auto* controller = h.net->AddNode<ControllerNode>("ctrl", Microseconds(30));
  ControllerFtPipeline pipeline(*h.sw, app, *controller, Microseconds(40));
  h.sw->SetPipeline(&pipeline);
  h.src->Send(net::MakeUdpPacket(TestFlow(), 0));
  h.sim.Run();
  EXPECT_EQ(h.delivered, 1);
  // First packet pays PCIe + management RTT: slower than plain CP install.
  EXPECT_GT(h.last_arrival, Microseconds(100));
}

TEST(ControllerFtTest, CommittedStateRestorableAfterFailure) {
  BaselineHarness h;
  CounterApp app;
  auto* controller = h.net->AddNode<ControllerNode>("ctrl", Microseconds(30));
  ControllerFtPipeline pipeline(*h.sw, app, *controller, Microseconds(40));
  h.sw->SetPipeline(&pipeline);
  // Pace packets so each finds the flow already committed.
  for (int i = 0; i < 3; ++i) {
    h.src->Send(net::MakeUdpPacket(TestFlow(), 0));
    h.sim.RunUntil(h.sim.Now() + Milliseconds(1));
  }
  h.sim.RunUntil(Milliseconds(10));
  EXPECT_EQ(h.delivered, 3);
  EXPECT_GE(controller->commits(), 1u);

  h.sw->SetUp(false);
  h.sw->SetUp(true);
  const std::size_t restored = pipeline.RestoreFromController();
  EXPECT_EQ(restored, 1u);
  h.src->Send(net::MakeUdpPacket(TestFlow(), 0));
  h.sim.Run();
  EXPECT_EQ(h.delivered, 4);  // no re-commit needed after restore
}

TEST(RollbackTest, LineRateOverwhelmsControlChannelLog) {
  BaselineHarness h;
  CounterApp app;
  RollbackPipeline rollback(*h.sw, app, /*max_queued_logs=*/8);
  h.sw->SetPipeline(&rollback);
  // A burst far beyond the PCIe channel's drain rate.
  for (int i = 0; i < 500; ++i) {
    h.src->Send(net::MakeUdpPacket(TestFlow(), 1000));
  }
  h.sim.Run();
  EXPECT_EQ(h.delivered, 500);  // forwarding itself keeps up
  EXPECT_GT(rollback.packets_not_logged(), 0u);  // the log does not

  // Replay reconstructs the WRONG state (the §2.2 incorrectness): the
  // rebuilt counter is below the live one.
  CounterApp fresh;
  const auto rebuilt = rollback.Replay(fresh);
  const auto key = net::PartitionKey::OfFlow(TestFlow());
  const auto it = rebuilt.find(key);
  const std::uint64_t rebuilt_count =
      it == rebuilt.end()
          ? 0
          : core::StateAs<std::uint64_t>(it->second).value_or(0);
  EXPECT_LT(rebuilt_count, 500u);
}

TEST(RollbackTest, LowRateTrafficReplaysCorrectly) {
  BaselineHarness h;
  CounterApp app;
  RollbackPipeline rollback(*h.sw, app, 64);
  h.sw->SetPipeline(&rollback);
  for (int i = 0; i < 10; ++i) {
    h.src->Send(net::MakeUdpPacket(TestFlow(), 0));
    h.sim.RunUntil(h.sim.Now() + Milliseconds(1));  // paced: log keeps up
  }
  h.sim.Run();
  EXPECT_EQ(rollback.packets_not_logged(), 0u);
  CounterApp fresh;
  const auto rebuilt = rollback.Replay(fresh);
  const auto key = net::PartitionKey::OfFlow(TestFlow());
  ASSERT_TRUE(rebuilt.count(key));
  EXPECT_EQ(core::StateAs<std::uint64_t>(rebuilt.at(key)), 10u);
}

TEST(ServerNfTest, AddsSoftwareLatencyOverSwitchPath) {
  BaselineHarness h;
  CounterApp app;
  // NF server hangs off switch port 2.
  auto* nf = h.net->AddNode<ServerNfNode>("nf", net::Ipv4Addr(172, 16, 2, 1),
                                          app, ServerNfConfig{});
  h.net->Connect(nf, 0, h.sw, 2);
  // Steer everything through the NF: src -> sw -> nf -> sw -> dst.
  h.sw->SetForwarder(
      [&](const net::Packet& pkt, PortId in_port) -> std::optional<PortId> {
        if (in_port == 0) return PortId{2};  // to the NF
        if (!pkt.ip.has_value()) return std::nullopt;
        return pkt.ip->dst == kDstIp ? PortId{1} : PortId{0};
      });
  h.src->Send(net::MakeUdpPacket(TestFlow(), 0));
  h.sim.Run();
  EXPECT_EQ(h.delivered, 1);
  // NIC in + service + NIC out ~ 8 µs on top of the fabric.
  EXPECT_GT(h.last_arrival, Microseconds(8));
}

TEST(ServerNfTest, FtVariantPaysReplicationOnWrites) {
  sim::Simulator sim;
  sim::Network net(sim, 2);
  CounterApp app1, app2;
  ServerNfConfig plain_cfg;
  ServerNfConfig ft_cfg;
  ft_cfg.replication_latency = Microseconds(25);
  auto* plain_nf = net.AddNode<ServerNfNode>(
      "plain", net::Ipv4Addr(1, 0, 0, 1), app1, plain_cfg);
  auto* ft_nf =
      net.AddNode<ServerNfNode>("ft", net::Ipv4Addr(1, 0, 0, 2), app2, ft_cfg);
  auto* sink1 = net.AddNode<sim::HostNode>("s1", net::Ipv4Addr(2, 0, 0, 1));
  auto* sink2 = net.AddNode<sim::HostNode>("s2", net::Ipv4Addr(2, 0, 0, 2));
  net.Connect(plain_nf, 0, sink1, 0);
  net.Connect(ft_nf, 0, sink2, 0);
  SimTime t_plain = 0, t_ft = 0;
  sink1->SetHandler([&](sim::HostNode&, net::Packet) { t_plain = sim.Now(); });
  sink2->SetHandler([&](sim::HostNode&, net::Packet) { t_ft = sim.Now(); });
  plain_nf->HandlePacket(net::MakeUdpPacket(TestFlow(), 0), 0);
  ft_nf->HandlePacket(net::MakeUdpPacket(TestFlow(), 0), 0);
  sim.Run();
  EXPECT_GT(t_ft, t_plain + Microseconds(20));
}

TEST(SwitchChainTest, TailReleasesAfterChainTraversal) {
  sim::Simulator sim;
  sim::Network net(sim, 7);
  CounterApp app;
  dp::SwitchConfig c1, c2;
  c1.switch_ip = net::Ipv4Addr(172, 16, 0, 1);
  c2.switch_ip = net::Ipv4Addr(172, 16, 0, 2);
  auto* head = net.AddNode<dp::SwitchNode>("head", c1);
  auto* tail = net.AddNode<dp::SwitchNode>("tail", c2);
  auto* src = net.AddNode<sim::HostNode>("src", kSrcIp);
  auto* dst = net.AddNode<sim::HostNode>("dst", kDstIp);
  net.Connect(src, 0, head, 0);
  net.Connect(head, 1, tail, 0);
  net.Connect(tail, 1, dst, 0);
  auto fwd = [](const net::Packet& pkt, PortId) -> std::optional<PortId> {
    if (!pkt.ip.has_value()) return std::nullopt;
    return pkt.ip->dst == kSrcIp ? PortId{0} : PortId{1};
  };
  head->SetForwarder(fwd);
  tail->SetForwarder(fwd);
  SwitchChainPipeline head_pipe(*head, app, c2.switch_ip);
  SwitchChainPipeline tail_pipe(*tail, app, std::nullopt);
  head->SetPipeline(&head_pipe);
  tail->SetPipeline(&tail_pipe);

  int delivered = 0;
  dst->SetHandler([&](sim::HostNode&, net::Packet) { ++delivered; });
  for (int i = 0; i < 4; ++i) src->Send(net::MakeUdpPacket(TestFlow(), 0));
  sim.Run();
  EXPECT_EQ(delivered, 4);
  // Both replicas hold the final state — and both paid SRAM for it.
  const auto key = net::PartitionKey::OfFlow(TestFlow());
  EXPECT_EQ(core::StateAs<std::uint64_t>(head_pipe.state().at(key)), 4u);
  EXPECT_EQ(core::StateAs<std::uint64_t>(tail_pipe.state().at(key)), 4u);
  EXPECT_GT(head_pipe.ReplicaStateBytes(), 0u);
  EXPECT_EQ(head_pipe.ReplicaStateBytes(), tail_pipe.ReplicaStateBytes());
}

TEST(SwitchChainTest, LossOnChainLinkSilentlyDiverges) {
  sim::Simulator sim;
  sim::Network net(sim, 13);
  CounterApp app;
  dp::SwitchConfig c1, c2;
  c1.switch_ip = net::Ipv4Addr(172, 16, 0, 1);
  c2.switch_ip = net::Ipv4Addr(172, 16, 0, 2);
  auto* head = net.AddNode<dp::SwitchNode>("head", c1);
  auto* tail = net.AddNode<dp::SwitchNode>("tail", c2);
  auto* src = net.AddNode<sim::HostNode>("src", kSrcIp);
  auto* dst = net.AddNode<sim::HostNode>("dst", kDstIp);
  net.Connect(src, 0, head, 0);
  sim::LinkConfig lossy;
  lossy.loss_rate = 0.25;
  net.Connect(head, 1, tail, 0, lossy);
  net.Connect(tail, 1, dst, 0);
  auto fwd = [](const net::Packet& pkt, PortId) -> std::optional<PortId> {
    if (!pkt.ip.has_value()) return std::nullopt;
    return pkt.ip->dst == kSrcIp ? PortId{0} : PortId{1};
  };
  head->SetForwarder(fwd);
  tail->SetForwarder(fwd);
  SwitchChainPipeline head_pipe(*head, app, c2.switch_ip);
  SwitchChainPipeline tail_pipe(*tail, app, std::nullopt);
  head->SetPipeline(&head_pipe);
  tail->SetPipeline(&tail_pipe);

  for (int i = 0; i < 200; ++i) src->Send(net::MakeUdpPacket(TestFlow(), 0));
  sim.Run();
  const auto key = net::PartitionKey::OfFlow(TestFlow());
  const auto head_count =
      core::StateAs<std::uint64_t>(head_pipe.state().at(key));
  EXPECT_EQ(*head_count, 200u);
  // The §2.2 flaw: updates vanish with no retransmission, so the replica
  // missed some fraction of them and was silently stale in between (and,
  // with high probability, at the end too).
  EXPECT_LT(tail_pipe.stats().Get("chain_updates_applied"), 200.0);
}

}  // namespace
}  // namespace redplane::baselines
