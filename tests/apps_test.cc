#include <gtest/gtest.h>

#include "apps/counter.h"
#include "apps/epc_sgw.h"
#include "apps/firewall.h"
#include "apps/heavy_hitter.h"
#include "apps/kv_store.h"
#include "apps/load_balancer.h"
#include "apps/nat.h"
#include "apps/sketch.h"
#include "common/rng.h"
#include "net/codec.h"

namespace redplane::apps {
namespace {

constexpr net::Ipv4Addr kInternalPrefix(192, 168, 0, 0);
constexpr std::uint32_t kInternalMask = 0xffff0000;
constexpr net::Ipv4Addr kExtIp(10, 99, 0, 1);

core::AppContext Ctx() { return core::AppContext{}; }

net::FlowKey OutboundFlow() {
  return {net::Ipv4Addr(192, 168, 1, 5), net::Ipv4Addr(8, 8, 8, 8), 5555, 80,
          net::IpProto::kTcp};
}

// ---------------------------------------------------------------- NAT ----

TEST(NatTest, OutboundRewriteUsesAllocatedPort) {
  NatGlobalState global(kExtIp, 2000, 16, kInternalPrefix, kInternalMask);
  NatApp nat(global);
  const auto key = net::PartitionKey::OfFlow(OutboundFlow());
  auto state = global.InitializeFlow(key);
  ASSERT_FALSE(state.empty());

  auto ctx = Ctx();
  auto result =
      nat.Process(ctx, net::MakeTcpPacket(OutboundFlow(), 0, 1, 0, 10), state);
  ASSERT_EQ(result.outputs.size(), 1u);
  const net::Packet& out = result.outputs[0];
  EXPECT_EQ(out.ip->src, kExtIp);
  EXPECT_EQ(out.tcp->src_port, 2000);
  EXPECT_EQ(out.ip->dst, OutboundFlow().dst_ip);
  EXPECT_FALSE(result.state_modified);  // read-centric
}

TEST(NatTest, InboundRewriteRestoresInternalEndpoint) {
  NatGlobalState global(kExtIp, 2000, 16, kInternalPrefix, kInternalMask);
  NatApp nat(global);
  // Establish the outbound mapping first.
  auto out_state =
      global.InitializeFlow(net::PartitionKey::OfFlow(OutboundFlow()));
  ASSERT_FALSE(out_state.empty());

  net::FlowKey inbound{net::Ipv4Addr(8, 8, 8, 8), kExtIp, 80, 2000,
                       net::IpProto::kTcp};
  auto in_state = global.InitializeFlow(net::PartitionKey::OfFlow(inbound));
  ASSERT_FALSE(in_state.empty());
  auto ctx = Ctx();
  auto result =
      nat.Process(ctx, net::MakeTcpPacket(inbound, 0, 1, 0, 10), in_state);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].ip->dst, OutboundFlow().src_ip);
  EXPECT_EQ(result.outputs[0].tcp->dst_port, OutboundFlow().src_port);
}

TEST(NatTest, UnknownInboundFlowDropped) {
  NatGlobalState global(kExtIp, 2000, 16, kInternalPrefix, kInternalMask);
  NatApp nat(global);
  net::FlowKey inbound{net::Ipv4Addr(8, 8, 8, 8), kExtIp, 80, 2009,
                       net::IpProto::kTcp};
  auto state = global.InitializeFlow(net::PartitionKey::OfFlow(inbound));
  EXPECT_TRUE(state.empty());
  auto ctx = Ctx();
  auto result =
      nat.Process(ctx, net::MakeTcpPacket(inbound, 0, 1, 0, 10), state);
  EXPECT_TRUE(result.outputs.empty());
}

TEST(NatTest, PoolExhaustionAndIdempotentReallocation) {
  NatGlobalState global(kExtIp, 3000, 2, kInternalPrefix, kInternalMask);
  auto f1 = OutboundFlow();
  auto f2 = OutboundFlow();
  f2.src_port = 5556;
  auto f3 = OutboundFlow();
  f3.src_port = 5557;
  EXPECT_FALSE(global.InitializeFlow(net::PartitionKey::OfFlow(f1)).empty());
  EXPECT_FALSE(global.InitializeFlow(net::PartitionKey::OfFlow(f2)).empty());
  EXPECT_TRUE(global.InitializeFlow(net::PartitionKey::OfFlow(f3)).empty());
  // Re-initializing an existing flow reuses its mapping (failover path).
  const auto again = global.InitializeFlow(net::PartitionKey::OfFlow(f1));
  ASSERT_FALSE(again.empty());
  EXPECT_EQ(core::StateAs<NatEntry>(again)->rewrite_port, 3000);
  EXPECT_EQ(global.ActiveMappings(), 2u);
}

// ----------------------------------------------------------- Firewall ----

TEST(FirewallTest, CanonicalKeySharedAcrossDirections) {
  FirewallApp fw(kInternalPrefix, kInternalMask);
  const auto out_pkt = net::MakeTcpPacket(OutboundFlow(), 0, 1, 0, 0);
  const auto in_pkt =
      net::MakeTcpPacket(OutboundFlow().Reversed(), 0, 1, 0, 0);
  ASSERT_TRUE(fw.KeyOf(out_pkt).has_value());
  ASSERT_TRUE(fw.KeyOf(in_pkt).has_value());
  EXPECT_EQ(*fw.KeyOf(out_pkt), *fw.KeyOf(in_pkt));
}

TEST(FirewallTest, InboundBlockedUntilOutboundEstablishes) {
  FirewallApp fw(kInternalPrefix, kInternalMask);
  std::vector<std::byte> state;
  auto ctx = Ctx();

  auto blocked = fw.Process(
      ctx, net::MakeTcpPacket(OutboundFlow().Reversed(), 0, 1, 0, 0), state);
  EXPECT_TRUE(blocked.outputs.empty());
  EXPECT_FALSE(blocked.state_modified);

  auto open = fw.Process(
      ctx,
      net::MakeTcpPacket(OutboundFlow(), net::TcpFlags::kSyn, 1, 0, 0),
      state);
  EXPECT_EQ(open.outputs.size(), 1u);
  EXPECT_TRUE(open.state_modified);  // the connection-establishing write

  auto admitted = fw.Process(
      ctx, net::MakeTcpPacket(OutboundFlow().Reversed(), 0, 1, 0, 0), state);
  EXPECT_EQ(admitted.outputs.size(), 1u);
  EXPECT_FALSE(admitted.state_modified);
}

TEST(FirewallTest, FinMarksConnection) {
  FirewallApp fw(kInternalPrefix, kInternalMask);
  std::vector<std::byte> state;
  auto ctx = Ctx();
  fw.Process(ctx,
             net::MakeTcpPacket(OutboundFlow(), net::TcpFlags::kSyn, 1, 0, 0),
             state);
  auto fin = fw.Process(
      ctx, net::MakeTcpPacket(OutboundFlow(), net::TcpFlags::kFin, 9, 0, 0),
      state);
  EXPECT_TRUE(fin.state_modified);
  EXPECT_EQ(core::StateAs<FirewallEntry>(state)->fin_seen, 1);
}

// ------------------------------------------------------ Load balancer ----

TEST(LoadBalancerTest, ForwardAndReverseTranslation) {
  LbGlobalState global(net::Ipv4Addr(10, 0, 0, 100), 80);
  global.AddBackend(net::Ipv4Addr(192, 168, 10, 10), 8080);
  LoadBalancerApp lb(global);

  net::FlowKey client{net::Ipv4Addr(8, 8, 8, 8), global.vip(), 4444, 80,
                      net::IpProto::kTcp};
  auto state = global.InitializeFlow(net::PartitionKey::OfFlow(client));
  ASSERT_FALSE(state.empty());

  auto ctx = Ctx();
  auto fwd = lb.Process(ctx, net::MakeTcpPacket(client, 0, 1, 0, 0), state);
  ASSERT_EQ(fwd.outputs.size(), 1u);
  EXPECT_EQ(fwd.outputs[0].ip->dst, net::Ipv4Addr(192, 168, 10, 10));
  EXPECT_EQ(fwd.outputs[0].tcp->dst_port, 8080);

  // Reverse traffic canonicalizes to the same key and presents the VIP.
  net::FlowKey reverse{net::Ipv4Addr(192, 168, 10, 10),
                       net::Ipv4Addr(8, 8, 8, 8), 8080, 4444,
                       net::IpProto::kTcp};
  const auto rev_pkt = net::MakeTcpPacket(reverse, 0, 1, 0, 0);
  ASSERT_TRUE(lb.KeyOf(rev_pkt).has_value());
  EXPECT_EQ(*lb.KeyOf(rev_pkt), net::PartitionKey::OfFlow(client));
  auto rev = lb.Process(ctx, rev_pkt, state);
  ASSERT_EQ(rev.outputs.size(), 1u);
  EXPECT_EQ(rev.outputs[0].ip->src, global.vip());
  EXPECT_EQ(rev.outputs[0].tcp->src_port, 80);
}

TEST(LoadBalancerTest, BackendsRotateAcrossFlows) {
  LbGlobalState global(net::Ipv4Addr(10, 0, 0, 100), 80);
  global.AddBackend(net::Ipv4Addr(192, 168, 10, 10), 8080);
  global.AddBackend(net::Ipv4Addr(192, 168, 10, 11), 8080);
  std::set<std::uint32_t> chosen;
  for (int i = 0; i < 4; ++i) {
    net::FlowKey client{net::Ipv4Addr(8, 8, 8, 8), global.vip(),
                        static_cast<std::uint16_t>(4000 + i), 80,
                        net::IpProto::kTcp};
    auto state = global.InitializeFlow(net::PartitionKey::OfFlow(client));
    chosen.insert(core::StateAs<LbEntry>(state)->backend_ip);
  }
  EXPECT_EQ(chosen.size(), 2u);
}

// ------------------------------------------------------------ EPC SGW ----

TEST(EpcSgwTest, SignalingInstallsBearerDataReadsIt) {
  EpcSgwApp sgw;
  std::vector<std::byte> state;
  auto ctx = Ctx();
  const net::Ipv4Addr user(100, 64, 0, 5);

  // Data before attach: dropped (the paper's broken-session symptom).
  net::FlowKey data{net::Ipv4Addr(10, 0, 0, 1), user, 40000, kSgwDataPort,
                    net::IpProto::kUdp};
  auto dropped = sgw.Process(ctx, net::MakeUdpPacket(data, 100), state);
  EXPECT_TRUE(dropped.outputs.empty());

  auto sig = MakeSgwSignalingPacket(net::Ipv4Addr(10, 0, 0, 1), user, 777,
                                    net::Ipv4Addr(192, 168, 11, 1));
  EXPECT_EQ(*sgw.KeyOf(sig), net::PartitionKey::OfObject(user.value));
  auto attach = sgw.Process(ctx, sig, state);
  EXPECT_TRUE(attach.state_modified);
  EXPECT_EQ(core::StateAs<SgwBearer>(state)->teid, 777u);

  auto forwarded = sgw.Process(ctx, net::MakeUdpPacket(data, 100), state);
  ASSERT_EQ(forwarded.outputs.size(), 1u);
  EXPECT_FALSE(forwarded.state_modified);
  EXPECT_EQ(forwarded.outputs[0].ip->identification, 777);
}

TEST(EpcSgwTest, NonSgwTrafficIgnored) {
  EpcSgwApp sgw;
  net::FlowKey other{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1,
                     80, net::IpProto::kUdp};
  EXPECT_FALSE(sgw.KeyOf(net::MakeUdpPacket(other, 0)).has_value());
}

// ------------------------------------------------------------- Sketch ----

TEST(SketchTest, EstimateNeverUndercounts) {
  CountMinSketch sketch("cm", 3, 64);
  Rng rng(5);
  std::map<std::uint64_t, std::uint32_t> truth;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.NextBounded(50);
    dp::PipelinePass pass;
    sketch.Update(pass, key, 1);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.Estimate(key), count);
  }
}

TEST(SketchTest, SnapshotSlotCarriesOneValuePerRow) {
  CountMinSketch sketch("cm", 3, 64);
  dp::PipelinePass pass;
  const auto bytes = sketch.ReadSnapshotSlot(pass, 0);
  EXPECT_EQ(bytes.size(), 3 * 4u);
}

// ------------------------------------------------------- Heavy hitter ----

TEST(HeavyHitterTest, DetectsFlowsAboveThreshold) {
  HeavyHitterConfig cfg;
  cfg.vlans = {1, 2};
  cfg.threshold = 100;
  HeavyHitterApp hh(cfg);
  auto ctx = Ctx();
  std::vector<std::byte> state;
  net::FlowKey heavy{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1,
                     2, net::IpProto::kUdp};
  net::FlowKey light{net::Ipv4Addr(3, 3, 3, 3), net::Ipv4Addr(4, 4, 4, 4), 5,
                     6, net::IpProto::kUdp};
  for (int i = 0; i < 150; ++i) {
    auto pkt = net::MakeUdpPacket(heavy, 0);
    pkt.vlan = 1;
    hh.Process(ctx, std::move(pkt), state);
  }
  for (int i = 0; i < 10; ++i) {
    auto pkt = net::MakeUdpPacket(light, 0);
    pkt.vlan = 1;
    hh.Process(ctx, std::move(pkt), state);
  }
  EXPECT_EQ(hh.HeavyFlows(1).count(heavy), 1u);
  EXPECT_EQ(hh.HeavyFlows(1).count(light), 0u);
  EXPECT_GE(hh.Estimate(1, heavy), 150u);
  // VLAN isolation: vlan 2's sketch untouched.
  EXPECT_EQ(hh.Estimate(2, heavy), 0u);
}

TEST(HeavyHitterTest, PartitionsByVlanAndIgnoresUntagged) {
  HeavyHitterApp hh;
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                 net::IpProto::kUdp};
  auto tagged = net::MakeUdpPacket(f, 0);
  tagged.vlan = 1;
  EXPECT_EQ(*hh.KeyOf(tagged), net::PartitionKey::OfVlan(1));
  auto untagged = net::MakeUdpPacket(f, 0);
  EXPECT_FALSE(hh.KeyOf(untagged).has_value());
}

TEST(HeavyHitterTest, SnapshotInterfaceCoversAllVlans) {
  HeavyHitterConfig cfg;
  cfg.vlans = {3, 5, 9};
  HeavyHitterApp hh(cfg);
  const auto keys = hh.SnapshotKeys();
  EXPECT_EQ(keys.size(), 3u);
  EXPECT_EQ(hh.NumSnapshotSlots(), 64u);
  hh.BeginSnapshot(net::PartitionKey::OfVlan(3));
  EXPECT_EQ(hh.ReadSnapshotSlot(net::PartitionKey::OfVlan(3), 0).size(),
            3 * 4u);
}

// ------------------------------------------------------------ Counter ----

TEST(CounterTest, SyncCounterWritesEveryPacket) {
  SyncCounterApp app;
  std::vector<std::byte> state;
  auto ctx = Ctx();
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                 net::IpProto::kUdp};
  for (int i = 1; i <= 5; ++i) {
    auto result = app.Process(ctx, net::MakeUdpPacket(f, 0), state);
    EXPECT_TRUE(result.state_modified);
    EXPECT_EQ(result.outputs.size(), 1u);
    EXPECT_EQ(*core::StateAs<std::uint64_t>(state),
              static_cast<std::uint64_t>(i));
  }
}

TEST(CounterTest, AsyncCounterCountsInRegisters) {
  AsyncCounterApp app(64);
  std::vector<std::byte> state;
  auto ctx = Ctx();
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                 net::IpProto::kUdp};
  for (int i = 0; i < 7; ++i) {
    auto result = app.Process(ctx, net::MakeUdpPacket(f, 0), state);
    EXPECT_FALSE(result.state_modified);  // async: no per-packet replication
  }
  EXPECT_EQ(app.Count(f), 7u);
  EXPECT_EQ(app.NumSnapshotSlots(), 64u);
  app.Reset();
  EXPECT_EQ(app.Count(f), 0u);
}

// ----------------------------------------------------------- KV store ----

TEST(KvStoreTest, UpdateThenReadReturnsValue) {
  KvStoreApp app;
  std::vector<std::byte> state;
  auto ctx = Ctx();
  net::FlowKey client{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2),
                      3333, kKvUdpPort, net::IpProto::kUdp};

  KvRequest update{KvOp::kUpdate, 77, 4242};
  auto wres = app.Process(ctx, MakeKvPacket(client, update), state);
  EXPECT_TRUE(wres.state_modified);
  ASSERT_EQ(wres.outputs.size(), 1u);

  KvRequest read{KvOp::kRead, 77, 0};
  auto rres = app.Process(ctx, MakeKvPacket(client, read), state);
  EXPECT_FALSE(rres.state_modified);
  ASSERT_EQ(rres.outputs.size(), 1u);
  // The reply flows back toward the client (src port is the KV port).
  EXPECT_EQ(rres.outputs[0].ip->dst, client.src_ip);
  net::ByteReader r(rres.outputs[0].payload);
  r.U8();
  EXPECT_EQ(r.U64(), 77u);
  EXPECT_EQ(r.U64(), 4242u);
}

TEST(KvStoreTest, PartitionsByKvKeyNotFlow) {
  KvStoreApp app;
  net::FlowKey c1{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 3333,
                  kKvUdpPort, net::IpProto::kUdp};
  net::FlowKey c2{net::Ipv4Addr(9, 9, 9, 9), net::Ipv4Addr(2, 2, 2, 2), 1111,
                  kKvUdpPort, net::IpProto::kUdp};
  const auto p1 = MakeKvPacket(c1, {KvOp::kRead, 5, 0});
  const auto p2 = MakeKvPacket(c2, {KvOp::kUpdate, 5, 1});
  EXPECT_EQ(*app.KeyOf(p1), *app.KeyOf(p2));
  const auto p3 = MakeKvPacket(c1, {KvOp::kRead, 6, 0});
  EXPECT_NE(*app.KeyOf(p1), *app.KeyOf(p3));
}

TEST(KvStoreTest, NonKvTrafficIgnored) {
  KvStoreApp app;
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1, 80,
                 net::IpProto::kUdp};
  EXPECT_FALSE(app.KeyOf(net::MakeUdpPacket(f, 10)).has_value());
}

}  // namespace
}  // namespace redplane::apps
