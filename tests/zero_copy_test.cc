// Copy/alloc regression tests for the zero-copy message core.
//
// The contract under test (DESIGN.md §8): a replication request is encoded
// exactly once at the switch, chain replicas forward the same bytes after
// patching header fields in place, and hop-to-hop packet forwarding never
// duplicates payload bytes.  The Buffer instrumentation counters make any
// regression (an accidental re-encode or deep copy on the forwarding path)
// an immediate test failure instead of a silent slowdown.
#include <gtest/gtest.h>

#include "core/protocol.h"
#include "core/redplane_switch.h"
#include "net/buffer.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/server.h"

namespace redplane {
namespace {

// --- Buffer/BufferView unit coverage ---------------------------------------

TEST(BufferTest, CopyAndSliceShareBackingStore) {
  std::vector<std::byte> bytes(64, std::byte{0x5c});
  net::BufferView v(std::move(bytes));  // adopts, no copy
  net::BufferView copy = v;
  net::BufferView slice = v.Slice(8, 16);
  EXPECT_EQ(copy.data(), v.data());
  EXPECT_EQ(slice.data(), v.data() + 8);
  EXPECT_EQ(slice.size(), 16u);
  EXPECT_EQ(v.Prefix(1000).size(), 64u);  // Prefix clamps
}

TEST(BufferTest, PatchInPlaceWhenUniqueCopiesWhenShared) {
  std::vector<std::byte> bytes(32, std::byte{0});
  net::BufferView unique_view(std::move(bytes));
  net::Buffer::ResetCounters();
  unique_view.PatchU16(4, 0xBEEF);  // sole owner: in place
  EXPECT_EQ(net::Buffer::DeepCopies(), 0u);
  EXPECT_EQ(unique_view.U16At(4), 0xBEEF);

  net::BufferView shared = unique_view;  // now two owners
  shared.PatchU16(4, 0x1234);            // must copy-on-write
  EXPECT_EQ(net::Buffer::DeepCopies(), 1u);
  EXPECT_EQ(shared.U16At(4), 0x1234);
  EXPECT_EQ(unique_view.U16At(4), 0xBEEF);  // original undisturbed
}

TEST(BufferTest, PacketCopySharesPayload) {
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 7, 8,
                 net::IpProto::kUdp};
  net::Packet pkt = net::MakeUdpPacket(f, 0);
  pkt.payload = std::vector<std::byte>(256, std::byte{0xab});
  net::Buffer::ResetCounters();
  net::Packet hop1 = pkt;  // what every link/pipeline hop does
  net::Packet hop2 = hop1;
  EXPECT_EQ(hop2.payload.data(), pkt.payload.data());
  EXPECT_EQ(net::Buffer::DeepCopies(), 0u);
  EXPECT_EQ(net::Buffer::Allocations(), 0u);
}

// --- End-to-end: multi-hop write replication -------------------------------

constexpr net::Ipv4Addr kSrcIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kDstIp(192, 168, 10, 1);
constexpr net::Ipv4Addr kSwIp(172, 16, 0, 1);

net::FlowKey TheFlow() {
  return {kSrcIp, kDstIp, 1000, 80, net::IpProto::kUdp};
}

/// NAT-style write-per-packet app: every packet mutates the flow's state, so
/// every packet leaves the switch as a replication request with the output
/// piggybacked (the paper's linearizable write path).
class WriteApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "write_app"; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>& state) override {
    core::ProcessResult result;
    core::SetState(state,
                   core::StateAs<std::uint64_t>(state).value_or(0) + 1);
    result.state_modified = true;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

/// One RedPlane switch against a fixed store chain of `chain_size` replicas.
struct WriteChainHarness {
  explicit WriteChainHarness(int chain_size) {
    net = std::make_unique<sim::Network>(sim, 7);
    src = net->AddNode<sim::HostNode>("src", kSrcIp);
    dst = net->AddNode<sim::HostNode>("dst", kDstIp);
    dp::SwitchConfig cfg;
    cfg.switch_ip = kSwIp;
    sw = net->AddNode<dp::SwitchNode>("sw", cfg);
    hub = net->AddNode<sim::HostNode>("hub", net::Ipv4Addr(9, 9, 9, 9));
    net->Connect(src, 0, sw, 0);
    net->Connect(dst, 0, sw, 1);
    net->Connect(sw, 2, hub, 0);
    store::StoreConfig store_cfg;
    store_cfg.lease_period = Seconds(2);
    for (int i = 0; i < chain_size; ++i) {
      auto* server = net->AddNode<store::StateStoreServer>(
          "store" + std::to_string(i), net::Ipv4Addr(172, 16, 1, 1 + i),
          store_cfg);
      net->Connect(server, 0, hub, static_cast<PortId>(1 + i));
      replicas.push_back(server);
    }
    for (int i = 0; i < chain_size; ++i) {
      replicas[i]->SetIsHead(i == 0);
      if (i + 1 < chain_size) {
        replicas[i]->SetChainSuccessor(replicas[i + 1]->ip());
      }
    }
    hub->SetHandler([this](sim::HostNode& self, net::Packet pkt) {
      if (!pkt.ip.has_value()) return;
      if (pkt.ip->dst == kSwIp) {
        self.SendTo(0, std::move(pkt));
        return;
      }
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (pkt.ip->dst == replicas[i]->ip()) {
          self.SendTo(static_cast<PortId>(1 + i), std::move(pkt));
          return;
        }
      }
    });
    sw->SetForwarder(
        [](const net::Packet& pkt, PortId) -> std::optional<PortId> {
          if (!pkt.ip.has_value()) return std::nullopt;
          if (pkt.ip->dst == kSrcIp) return PortId{0};
          if (pkt.ip->dst == kDstIp) return PortId{1};
          return PortId{2};
        });

    core::RedPlaneConfig rp_cfg;
    rp_cfg.lease_period = Seconds(2);
    rp_cfg.renew_interval = Seconds(1);
    rp_cfg.request_timeout = Milliseconds(5);  // no spurious retransmits
    rp = std::make_unique<core::RedPlaneSwitch>(
        *sw, app,
        [this](const net::PartitionKey&) { return replicas[0]->ip(); },
        rp_cfg);
    sw->SetPipeline(rp.get());
    dst->SetHandler([this](sim::HostNode&, net::Packet) { ++delivered; });
  }

  void SendPaced(int n) {
    for (int i = 0; i < n; ++i) {
      src->Send(net::MakeUdpPacket(TheFlow(), 20));
      sim.RunUntil(sim.Now() + Milliseconds(1));
    }
  }

  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  sim::HostNode* src;
  sim::HostNode* dst;
  sim::HostNode* hub;
  dp::SwitchNode* sw;
  std::vector<store::StateStoreServer*> replicas;
  WriteApp app;
  std::unique_ptr<core::RedPlaneSwitch> rp;
  int delivered = 0;
};

struct WriteCosts {
  std::uint64_t encodes = 0;
  std::uint64_t deep_copies = 0;
};

/// Runs `writes` steady-state writes through a chain of `chain_size` and
/// returns the protocol-encode and byte-copy counts they incurred.
WriteCosts MeasureWrites(int chain_size, int writes) {
  WriteChainHarness h(chain_size);
  // Warm up: lease acquisition plus the first write settle out of band.
  h.SendPaced(2);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(20));
  EXPECT_EQ(h.delivered, 2);

  core::ResetEncodeCount();
  net::Buffer::ResetCounters();
  h.SendPaced(writes);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(50));
  EXPECT_EQ(h.delivered, 2 + writes);
  // Every write is durable at every replica before its output released.
  const auto key = net::PartitionKey::OfFlow(TheFlow());
  for (auto* replica : h.replicas) {
    const auto* rec = replica->Find(key);
    EXPECT_NE(rec, nullptr);
    if (rec != nullptr) {
      EXPECT_EQ(rec->last_applied_seq, static_cast<std::uint64_t>(2 + writes));
    }
  }
  return {core::EncodeCount(), net::Buffer::DeepCopies()};
}

TEST(ZeroCopyWriteTest, OneEncodePerRequestZeroPerForward) {
  constexpr int kWrites = 10;
  const WriteCosts single = MeasureWrites(1, kWrites);
  const WriteCosts chain3 = MeasureWrites(3, kWrites);

  // Exactly two encodes per write — the request (once, at the switch) and
  // the tail's ack.  Replicas forward patched views, never re-encoding, so
  // the count is independent of chain length.
  EXPECT_EQ(single.encodes, 2u * kWrites);
  EXPECT_EQ(chain3.encodes, 2u * kWrites);

  // The only byte copy per write is the mirror's truncated retransmit copy
  // (header + state, never the piggybacked output).  Forwarding through two
  // extra replicas adds zero copies.
  EXPECT_EQ(single.deep_copies, static_cast<std::uint64_t>(kWrites));
  EXPECT_EQ(chain3.deep_copies, static_cast<std::uint64_t>(kWrites));
}

}  // namespace
}  // namespace redplane
