#include <gtest/gtest.h>

#include "net/codec.h"
#include "net/flow.h"
#include "net/headers.h"
#include "net/packet.h"

namespace redplane::net {
namespace {

TEST(AddrTest, DottedQuadFormatting) {
  EXPECT_EQ(ToString(Ipv4Addr(10, 0, 0, 1)), "10.0.0.1");
  EXPECT_EQ(ToString(Ipv4Addr(255, 255, 255, 255)), "255.255.255.255");
  EXPECT_EQ(Ipv4Addr(192, 168, 1, 2).value, 0xc0a80102u);
}

TEST(AddrTest, MacFormatting) {
  MacAddr mac{{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}};
  EXPECT_EQ(ToString(mac), "de:ad:be:ef:00:01");
}

TEST(ChecksumTest, KnownVector) {
  // RFC 1071 example-style: checksum of a buffer then verifying gives 0.
  std::uint8_t data[] = {0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00,
                         0x40, 0x11, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                         0x0a, 0x00, 0x00, 0x02};
  const std::uint16_t csum = InternetChecksum(data, sizeof(data));
  data[10] = static_cast<std::uint8_t>(csum >> 8);
  data[11] = static_cast<std::uint8_t>(csum & 0xff);
  EXPECT_EQ(InternetChecksum(data, sizeof(data)), 0);
}

TEST(FlowTest, ReversedSwapsEndpoints) {
  FlowKey f{Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8), 100, 200,
            IpProto::kTcp};
  const FlowKey r = f.Reversed();
  EXPECT_EQ(r.src_ip, f.dst_ip);
  EXPECT_EQ(r.dst_port, f.src_port);
  EXPECT_EQ(r.Reversed(), f);
}

TEST(FlowTest, HashDistinguishesFields) {
  FlowKey f{Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8), 100, 200,
            IpProto::kTcp};
  FlowKey g = f;
  g.src_port = 101;
  EXPECT_NE(HashFlowKey(f), HashFlowKey(g));
  EXPECT_EQ(HashFlowKey(f), HashFlowKey(f));
}

TEST(PartitionKeyTest, KindsCompareDistinct) {
  FlowKey f{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2, IpProto::kUdp};
  const auto a = PartitionKey::OfFlow(f);
  const auto b = PartitionKey::OfVlan(7);
  const auto c = PartitionKey::OfObject(7);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(HashPartitionKey(b), HashPartitionKey(c));
  EXPECT_EQ(ToString(b), "vlan:7");
}

TEST(PacketTest, WireSizeAccountsForHeadersAndPad) {
  FlowKey f{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2, IpProto::kUdp};
  Packet p = MakeUdpPacket(f, 100);
  // eth(14) + ip(20) + udp(8) + 100 pad = 142.
  EXPECT_EQ(p.WireSize(), 142u);
}

TEST(PacketTest, MinimumFrameSizeEnforced) {
  FlowKey f{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2, IpProto::kUdp};
  Packet p = MakeUdpPacket(f, 0);
  EXPECT_EQ(p.WireSize(), 64u);
}

TEST(PacketTest, VlanTagAddsFourBytes) {
  FlowKey f{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2, IpProto::kUdp};
  Packet p = MakeUdpPacket(f, 100);
  const std::size_t before = p.WireSize();
  p.vlan = 5;
  EXPECT_EQ(p.WireSize(), before + 4);
}

TEST(PacketTest, FlowExtraction) {
  FlowKey f{Ipv4Addr(9, 9, 9, 9), Ipv4Addr(8, 8, 8, 8), 123, 456,
            IpProto::kTcp};
  Packet p = MakeTcpPacket(f, TcpFlags::kSyn, 1, 0, 0);
  ASSERT_TRUE(p.Flow().has_value());
  EXPECT_EQ(*p.Flow(), f);
  EXPECT_TRUE(p.tcp->syn());
  EXPECT_FALSE(p.tcp->ack_flag());
}

TEST(PacketTest, UniqueIds) {
  FlowKey f{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2, IpProto::kUdp};
  Packet a = MakeUdpPacket(f, 0);
  Packet b = MakeUdpPacket(f, 0);
  EXPECT_NE(a.id, b.id);
}

struct CodecCase {
  const char* name;
  IpProto proto;
  std::uint32_t pad;
  std::uint16_t vlan;
  std::size_t payload_bytes;
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTrip, SerializeParsePreservesFields) {
  const CodecCase& c = GetParam();
  FlowKey f{Ipv4Addr(10, 1, 2, 3), Ipv4Addr(10, 4, 5, 6), 1111, 2222, c.proto};
  Packet p = c.proto == IpProto::kTcp
                 ? MakeTcpPacket(f, TcpFlags::kSyn | TcpFlags::kAck, 42, 43,
                                 c.pad)
                 : MakeUdpPacket(f, c.pad);
  p.vlan = c.vlan;
  std::vector<std::byte> body;
  for (std::size_t i = 0; i < c.payload_bytes; ++i) {
    body.push_back(std::byte{static_cast<std::uint8_t>(i * 7)});
  }
  p.payload = std::move(body);

  const auto wire = Serialize(p);
  const auto parsed = Parse(wire);
  ASSERT_TRUE(parsed.has_value()) << c.name;
  EXPECT_EQ(parsed->vlan, c.vlan);
  ASSERT_TRUE(parsed->Flow().has_value());
  EXPECT_EQ(*parsed->Flow(), f);
  // Payload round trip: pad comes back as zero bytes appended.
  ASSERT_GE(parsed->payload.size(), c.payload_bytes);
  for (std::size_t i = 0; i < c.payload_bytes; ++i) {
    EXPECT_EQ(parsed->payload[i], p.payload[i]);
  }
  EXPECT_EQ(parsed->payload.size(), c.payload_bytes + c.pad);
  if (c.proto == IpProto::kTcp) {
    EXPECT_EQ(parsed->tcp->seq, 42u);
    EXPECT_EQ(parsed->tcp->ack, 43u);
    EXPECT_TRUE(parsed->tcp->syn());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodecRoundTrip,
    ::testing::Values(CodecCase{"udp_min", IpProto::kUdp, 0, 0, 0},
                      CodecCase{"udp_pad", IpProto::kUdp, 100, 0, 0},
                      CodecCase{"udp_payload", IpProto::kUdp, 0, 0, 37},
                      CodecCase{"udp_vlan", IpProto::kUdp, 10, 42, 5},
                      CodecCase{"tcp_min", IpProto::kTcp, 0, 0, 0},
                      CodecCase{"tcp_big", IpProto::kTcp, 1400, 0, 0},
                      CodecCase{"tcp_vlan", IpProto::kTcp, 64, 7, 11}),
    [](const auto& info) { return info.param.name; });

TEST(CodecTest, CorruptedIpChecksumRejected) {
  FlowKey f{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2, IpProto::kUdp};
  auto wire = Serialize(MakeUdpPacket(f, 10));
  wire[14 + 12] ^= std::byte{0xff};  // flip a source-address byte
  EXPECT_FALSE(Parse(wire).has_value());
}

TEST(CodecTest, TruncatedFrameRejected) {
  FlowKey f{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2, IpProto::kUdp};
  auto wire = Serialize(MakeUdpPacket(f, 10));
  wire.resize(20);
  EXPECT_FALSE(Parse(wire).has_value());
}

TEST(CodecTest, EmptyInputRejected) {
  EXPECT_FALSE(Parse({}).has_value());
}

TEST(ByteIoTest, WriterReaderRoundTrip) {
  std::vector<std::byte> buf;
  ByteWriter w(buf);
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0102030405060708ull);
  ByteReader r(buf);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.Remaining(), 0u);
}

TEST(ByteIoTest, OverrunSetsStickyError) {
  std::vector<std::byte> buf(3, std::byte{0});
  ByteReader r(buf);
  r.U32();
  EXPECT_FALSE(r.ok());
  // Still safe to keep reading.
  r.U64();
  EXPECT_FALSE(r.ok());
}

TEST(ByteIoTest, PatchU16) {
  std::vector<std::byte> buf;
  ByteWriter w(buf);
  w.U16(0);
  w.U16(0xffff);
  w.PatchU16(0, 0xbeef);
  ByteReader r(buf);
  EXPECT_EQ(r.U16(), 0xbeef);
}

}  // namespace
}  // namespace redplane::net
