#include <gtest/gtest.h>

#include <set>

#include "routing/failure.h"
#include "routing/topology.h"

namespace redplane::routing {
namespace {

net::Packet PacketTo(net::Ipv4Addr src, net::Ipv4Addr dst,
                     std::uint16_t src_port = 1000) {
  net::FlowKey f{src, dst, src_port, 80, net::IpProto::kUdp};
  return net::MakeUdpPacket(f, 10);
}

TEST(TestbedTest, BuildsExpectedShape) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  EXPECT_NE(tb.core, nullptr);
  EXPECT_NE(tb.agg[0], nullptr);
  EXPECT_NE(tb.tor[1], nullptr);
  EXPECT_EQ(tb.store.size(), 3u);
  EXPECT_EQ(tb.StoreHeadIp(), StoreServerIp(0));
  EXPECT_FALSE(tb.store[0]->IsTail());
  EXPECT_TRUE(tb.store[2]->IsTail());
}

TEST(TestbedTest, EndToEndDeliveryExternalToRack) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  int delivered = 0;
  tb.rack_servers[0][0]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++delivered; });
  tb.external[0]->Send(PacketTo(ExternalHostIp(0), RackServerIp(0, 0)));
  sim.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(TestbedTest, RackToRackAndRackToExternal) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  int at_rack1 = 0, at_ext = 0;
  tb.rack_servers[1][1]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++at_rack1; });
  tb.external[2]->SetHandler([&](sim::HostNode&, net::Packet) { ++at_ext; });
  tb.rack_servers[0][0]->Send(PacketTo(RackServerIp(0, 0), RackServerIp(1, 1)));
  tb.rack_servers[0][0]->Send(PacketTo(RackServerIp(0, 0), ExternalHostIp(2)));
  sim.Run();
  EXPECT_EQ(at_rack1, 1);
  EXPECT_EQ(at_ext, 1);
}

TEST(EcmpTest, FlowAffinityIsStable) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  const net::Packet pkt = PacketTo(ExternalHostIp(0), RackServerIp(0, 0));
  const auto first = tb.fabric->NextHop(tb.core, pkt);
  ASSERT_TRUE(first.has_value());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(tb.fabric->NextHop(tb.core, pkt), first);
  }
}

TEST(EcmpTest, FlowsSpreadAcrossAggregationSwitches) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  std::set<PortId> ports;
  for (std::uint16_t p = 1000; p < 1100; ++p) {
    const auto hop =
        tb.fabric->NextHop(tb.core, PacketTo(ExternalHostIp(0),
                                             RackServerIp(0, 0), p));
    ASSERT_TRUE(hop.has_value());
    ports.insert(*hop);
  }
  EXPECT_EQ(ports.size(), 2u);  // both agg switches carry traffic
}

TEST(EcmpTest, ProtocolAddressesRoutable) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  // Aggregation switch IPs and the store head are reachable destinations.
  EXPECT_TRUE(
      tb.fabric->NextHop(tb.core, PacketTo(ExternalHostIp(0), AggSwitchIp(0)))
          .has_value());
  EXPECT_TRUE(tb.fabric
                  ->NextHop(tb.agg[0],
                            PacketTo(AggSwitchIp(0), tb.StoreHeadIp()))
                  .has_value());
}

TEST(FailureTest, AggFailureReroutesAfterDetectionDelay) {
  sim::Simulator sim;
  TestbedConfig cfg;
  cfg.fabric.failure_detection_delay = Milliseconds(10);
  Testbed tb = BuildTestbed(sim, cfg);
  FailureInjector injector(sim, *tb.fabric);

  // Find a flow that the core hashes onto agg0.
  std::uint16_t port = 1000;
  for (;; ++port) {
    const auto hop =
        tb.fabric->NextHop(tb.core, PacketTo(ExternalHostIp(0),
                                             RackServerIp(0, 0), port));
    ASSERT_TRUE(hop.has_value());
    if (*hop == 0) break;  // core port 0 -> agg0
  }
  const net::Packet probe = PacketTo(ExternalHostIp(0), RackServerIp(0, 0),
                                     port);

  injector.FailNode(tb.agg[0]);
  // Before detection: the stale route still points at the dead switch.
  EXPECT_EQ(tb.fabric->NextHop(tb.core, probe), PortId{0});
  sim.RunUntil(Milliseconds(11));
  // After detection: rerouted to agg1 (core port 1).
  EXPECT_EQ(tb.fabric->NextHop(tb.core, probe), PortId{1});

  injector.RecoverNode(tb.agg[0]);
  sim.RunUntil(Milliseconds(22));
  EXPECT_EQ(tb.fabric->NextHop(tb.core, probe), PortId{0});
}

TEST(FailureTest, PacketsBlackholeDuringDetectionWindow) {
  sim::Simulator sim;
  TestbedConfig cfg;
  cfg.fabric.failure_detection_delay = Milliseconds(10);
  Testbed tb = BuildTestbed(sim, cfg);
  FailureInjector injector(sim, *tb.fabric);
  int delivered = 0;
  tb.rack_servers[0][0]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++delivered; });

  // Fail agg0 and immediately send 100 flows; those hashed to agg0 vanish
  // until reroute, those on agg1 still arrive.
  injector.FailNode(tb.agg[0]);
  for (std::uint16_t p = 0; p < 100; ++p) {
    tb.external[0]->Send(
        PacketTo(ExternalHostIp(0), RackServerIp(0, 0),
                 static_cast<std::uint16_t>(2000 + p)));
  }
  sim.RunUntil(Milliseconds(5));
  EXPECT_GT(delivered, 20);
  EXPECT_LT(delivered, 80);

  // After reroute all flows flow again.
  sim.RunUntil(Milliseconds(15));
  const int before = delivered;
  for (std::uint16_t p = 0; p < 100; ++p) {
    tb.external[0]->Send(
        PacketTo(ExternalHostIp(0), RackServerIp(0, 0),
                 static_cast<std::uint16_t>(2000 + p)));
  }
  sim.Run();
  EXPECT_EQ(delivered - before, 100);
}

TEST(FailureTest, LinkFailureReroutesWithoutKillingSwitch) {
  sim::Simulator sim;
  TestbedConfig cfg;
  cfg.fabric.failure_detection_delay = Milliseconds(1);
  Testbed tb = BuildTestbed(sim, cfg);
  FailureInjector injector(sim, *tb.fabric);

  sim::Link* core_agg0 = tb.network->FindLink(tb.core, tb.agg[0]);
  ASSERT_NE(core_agg0, nullptr);
  injector.FailLink(core_agg0);
  sim.RunUntil(Milliseconds(2));
  // Everything still reachable via agg1.
  int delivered = 0;
  tb.rack_servers[0][0]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++delivered; });
  for (std::uint16_t p = 0; p < 50; ++p) {
    tb.external[0]->Send(
        PacketTo(ExternalHostIp(0), RackServerIp(0, 0),
                 static_cast<std::uint16_t>(3000 + p)));
  }
  sim.Run();
  EXPECT_EQ(delivered, 50);
  // The switch itself is still up (it keeps its state; §5.3's Fig. 7 case).
  EXPECT_TRUE(tb.agg[0]->IsUp());
}

TEST(FailureTest, ScheduledFailureAndRecovery) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  FailureInjector injector(sim, *tb.fabric);
  injector.ScheduleNodeFailure(tb.agg[0], Seconds(1), Seconds(2));
  sim.RunUntil(Milliseconds(1500));
  EXPECT_FALSE(tb.agg[0]->IsUp());
  sim.RunUntil(Milliseconds(2500));
  EXPECT_TRUE(tb.agg[0]->IsUp());
}

// --- injector idempotency regressions (fuzz-found, DESIGN.md §15) --------
// The delta-debugging minimizer deletes arbitrary subsets of a schedule's
// events, so overlapping cut/heal sequences in any order must leave the
// target in the refcount-correct state.  Before the refcount fix, the
// second of two overlapping cuts was a lost update and the first heal
// resurrected a link that a later schedule entry still held down.

TEST(FailureIdempotencyTest, DoubleCutSingleHealKeepsLinkDown) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  FailureInjector injector(sim, *tb.fabric);
  sim::Link* link = tb.network->FindLink(tb.core, tb.agg[0]);
  ASSERT_NE(link, nullptr);

  injector.FailLink(link);
  injector.FailLink(link);  // overlapping second cut
  EXPECT_EQ(injector.LinkCutDepth(link), 2);
  injector.RecoverLink(link);  // pays off one cut only
  EXPECT_FALSE(link->IsUp());
  EXPECT_EQ(injector.LinkCutDepth(link), 1);
  injector.RecoverLink(link);
  EXPECT_TRUE(link->IsUp());
  EXPECT_EQ(injector.LinkCutDepth(link), 0);
}

TEST(FailureIdempotencyTest, CrashDuringFlapIsNotResurrectedByFlapHeal) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  FailureInjector injector(sim, *tb.fabric);

  // A link flap [1 ms, 5 ms) with a permanent crash injected mid-flap: the
  // flap's heal timer fires at 5 ms but must not resurrect the node — it
  // pays off the flap's cut, not the crash's.
  injector.ScheduleNodeFailure(tb.agg[0], Milliseconds(1), Milliseconds(5));
  injector.ScheduleNodeFailure(tb.agg[0], Milliseconds(3), -1);
  sim.RunUntil(Milliseconds(4));
  EXPECT_FALSE(tb.agg[0]->IsUp());
  EXPECT_EQ(injector.NodeCutDepth(tb.agg[0]), 2);
  sim.RunUntil(Milliseconds(10));
  EXPECT_FALSE(tb.agg[0]->IsUp());  // the crash still holds it down
  EXPECT_EQ(injector.NodeCutDepth(tb.agg[0]), 1);
  injector.RecoverNode(tb.agg[0]);
  EXPECT_TRUE(tb.agg[0]->IsUp());
}

TEST(FailureIdempotencyTest, SpuriousHealIsANoOp) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  FailureInjector injector(sim, *tb.fabric);

  // A heal whose cut was deleted by the minimizer: depth never goes
  // negative and the target stays up.
  injector.RecoverNode(tb.agg[0]);
  EXPECT_TRUE(tb.agg[0]->IsUp());
  EXPECT_EQ(injector.NodeCutDepth(tb.agg[0]), 0);
  // A real cut afterwards still needs exactly one heal.
  injector.FailNode(tb.agg[0]);
  EXPECT_EQ(injector.NodeCutDepth(tb.agg[0]), 1);
  injector.RecoverNode(tb.agg[0]);
  EXPECT_TRUE(tb.agg[0]->IsUp());
}

TEST(FailureIdempotencyTest, AsymmetricLossStacksToMaxAndClearsAtDepthZero) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  FailureInjector injector(sim, *tb.fabric);
  sim::Link* link = tb.network->FindLink(tb.core, tb.agg[0]);
  ASSERT_NE(link, nullptr);
  const NodeId from = tb.core->id();

  injector.ApplyAsymmetricLoss(link, from, 0.3);
  EXPECT_DOUBLE_EQ(link->DirectionLoss(from), 0.3);
  injector.ApplyAsymmetricLoss(link, from, 0.8);  // overlapping, stronger
  EXPECT_DOUBLE_EQ(link->DirectionLoss(from), 0.8);
  injector.ClearAsymmetricLoss(link, from);  // one layer peeled
  EXPECT_DOUBLE_EQ(link->DirectionLoss(from), 0.8);
  injector.ClearAsymmetricLoss(link, from);  // last layer: back to config
  EXPECT_DOUBLE_EQ(link->DirectionLoss(from), link->config().loss_rate);
  // Spurious extra clear: no underflow, still at config.
  injector.ClearAsymmetricLoss(link, from);
  EXPECT_DOUBLE_EQ(link->DirectionLoss(from), link->config().loss_rate);
}

TEST(FailureIdempotencyTest, PartialPartitionDropsOneDirectionOnly) {
  sim::Simulator sim;
  Testbed tb = BuildTestbed(sim);
  FailureInjector injector(sim, *tb.fabric);
  sim::Link* link = tb.network->FindLink(tb.core, tb.agg[0]);
  ASSERT_NE(link, nullptr);

  injector.SchedulePartialPartition(link, tb.core->id(), Milliseconds(1),
                                    Milliseconds(5));
  sim.RunUntil(Milliseconds(2));
  EXPECT_DOUBLE_EQ(link->DirectionLoss(tb.core->id()), 1.0);
  // Reverse direction untouched: a half-alive peer, not a cut.
  EXPECT_DOUBLE_EQ(link->DirectionLoss(tb.agg[0]->id()),
                   link->config().loss_rate);
  EXPECT_TRUE(link->IsUp());
  sim.RunUntil(Milliseconds(6));
  EXPECT_DOUBLE_EQ(link->DirectionLoss(tb.core->id()),
                   link->config().loss_rate);
}

}  // namespace
}  // namespace redplane::routing
