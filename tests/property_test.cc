// Randomized whole-protocol property tests.
//
// Each case wires two RedPlane switches, a store, a source and a sink, then
// drives a per-flow counter through an adversarial schedule drawn from the
// seed: random request/ack loss, link reordering jitter, traffic randomly
// shifting between switches, and random fail-stop switch failures and
// recoveries.  At quiescence the invariants the paper proves must hold:
//
//  * per-flow linearizability of the observed output history (Definition 3),
//  * durability: every observed output's count is <= the store's applied
//    sequence number, and no two outputs share a count,
//  * convergence: the mirror buffers drain and the store holds the counter
//    value equal to the number of processed packets.
#include <gtest/gtest.h>

#include <set>
#include <span>
#include <string_view>

#include "apps/counter.h"
#include "apps/heavy_hitter.h"
#include "apps/spreader.h"
#include "common/rng.h"
#include "core/consistency.h"
#include "core/redplane_switch.h"
#include "modelcheck/linearizability.h"
#include "net/codec.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/server.h"

namespace redplane {
namespace {

constexpr net::Ipv4Addr kSrcIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kDstIp(192, 168, 10, 1);
constexpr net::Ipv4Addr kSw1Ip(172, 16, 0, 1);
constexpr net::Ipv4Addr kSw2Ip(172, 16, 0, 2);
constexpr net::Ipv4Addr kStoreIp(172, 16, 1, 1);

net::FlowKey TheFlow() {
  return {kSrcIp, kDstIp, 1000, 80, net::IpProto::kUdp};
}

/// Counter app emitting (original id, count) in the output payload.
class CountingEchoApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "counting_echo"; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>& state) override {
    core::ProcessResult result;
    const std::uint64_t count =
        core::StateAs<std::uint64_t>(state).value_or(0) + 1;
    core::SetState(state, count);
    result.state_modified = true;
    std::uint64_t original_id = pkt.id;
    if (pkt.payload.size() >= 8) {
      net::ByteReader r(pkt.payload);
      original_id = r.U64();
    }
    std::vector<std::byte> buf;
    net::ByteWriter w(buf);
    w.U64(original_id);
    w.U64(count);
    pkt.payload = std::move(buf);
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

struct FuzzParams {
  std::uint64_t seed;
  double store_loss;
  SimDuration reorder_jitter;
  bool failures;
};

class ProtocolFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(ProtocolFuzz, AdversarialScheduleStaysLinearizable) {
  const FuzzParams& params = GetParam();
  Rng rng(params.seed);

  sim::Simulator sim;
  sim::Network net(sim, params.seed);
  auto* src = net.AddNode<sim::HostNode>("src", kSrcIp);
  auto* dst = net.AddNode<sim::HostNode>("dst", kDstIp);
  dp::SwitchConfig c1, c2;
  c1.switch_ip = kSw1Ip;
  c2.switch_ip = kSw2Ip;
  auto* sw1 = net.AddNode<dp::SwitchNode>("sw1", c1);
  auto* sw2 = net.AddNode<dp::SwitchNode>("sw2", c2);
  store::StoreConfig store_cfg;
  store_cfg.lease_period = Milliseconds(2);
  auto* store = net.AddNode<store::StateStoreServer>("store", kStoreIp,
                                                     store_cfg);
  auto* hub = net.AddNode<sim::HostNode>("hub", net::Ipv4Addr(9, 9, 9, 9));

  net.Connect(src, 0, sw1, 0);
  net.Connect(src, 1, sw2, 0);
  net.Connect(dst, 0, sw1, 1);
  net.Connect(dst, 1, sw2, 1);
  sim::LinkConfig lossy;
  lossy.loss_rate = params.store_loss;
  lossy.reorder_jitter = params.reorder_jitter;
  net.Connect(sw1, 2, hub, 0, lossy);
  net.Connect(sw2, 2, hub, 1, lossy);
  net.Connect(store, 0, hub, 2);
  hub->SetHandler([&](sim::HostNode& self, net::Packet pkt) {
    if (!pkt.ip.has_value()) return;
    if (pkt.ip->dst == kStoreIp) self.SendTo(2, std::move(pkt));
    else if (pkt.ip->dst == kSw1Ip) self.SendTo(0, std::move(pkt));
    else if (pkt.ip->dst == kSw2Ip) self.SendTo(1, std::move(pkt));
  });

  auto forwarder = [](const net::Packet& pkt,
                      PortId) -> std::optional<PortId> {
    if (!pkt.ip.has_value()) return std::nullopt;
    if (pkt.ip->dst == kSrcIp) return PortId{0};
    if (pkt.ip->dst == kDstIp) return PortId{1};
    return PortId{2};
  };
  sw1->SetForwarder(forwarder);
  sw2->SetForwarder(forwarder);

  CountingEchoApp app;
  core::RedPlaneConfig rp_cfg;
  rp_cfg.lease_period = Milliseconds(2);
  rp_cfg.renew_interval = Milliseconds(1);
  rp_cfg.request_timeout = Microseconds(300);
  rp_cfg.retx_scan_interval = Microseconds(60);
  auto shard = [](const net::PartitionKey&) { return kStoreIp; };
  core::RedPlaneSwitch rp1(*sw1, app, shard, rp_cfg);
  core::RedPlaneSwitch rp2(*sw2, app, shard, rp_cfg);
  sw1->SetPipeline(&rp1);
  sw2->SetPipeline(&rp2);

  modelcheck::HistoryRecorder history;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> outputs;  // id, count
  dst->SetHandler([&](sim::HostNode&, net::Packet pkt) {
    if (pkt.payload.size() < 16) return;
    net::ByteReader r(pkt.payload);
    const std::uint64_t id = r.U64();
    const std::uint64_t count = r.U64();
    history.Output(id, sim.Now(), count);
    outputs.emplace_back(id, count);
  });

  // The adversarial schedule: 150 packets with random pacing and switch
  // choice; random failure/recovery events interleaved.
  int current_switch = 0;
  bool sw_down[2] = {false, false};
  for (int i = 0; i < 150; ++i) {
    sim.RunUntil(sim.Now() +
                 static_cast<SimDuration>(rng.Exponential(200'000)));
    // Occasionally flip which switch carries the flow (reroute).
    if (rng.Bernoulli(0.1)) current_switch ^= 1;
    // Occasionally fail/recover a switch.
    if (params.failures && rng.Bernoulli(0.05)) {
      const int victim = static_cast<int>(rng.NextBounded(2));
      dp::SwitchNode* node = victim == 0 ? sw1 : sw2;
      if (sw_down[victim]) {
        node->SetUp(true);
        sw_down[victim] = false;
      } else if (!sw_down[victim ^ 1]) {  // keep one switch alive
        node->SetUp(false);
        sw_down[victim] = true;
      }
    }
    const int use = sw_down[current_switch] ? current_switch ^ 1
                                            : current_switch;
    if (sw_down[use]) continue;  // both down is excluded above
    net::Packet pkt = net::MakeUdpPacket(TheFlow(), 20);
    std::vector<std::byte> buf;
    net::ByteWriter w(buf);
    w.U64(pkt.id);
    pkt.payload = std::move(buf);
    history.Input(pkt.id, sim.Now());
    src->SendTo(use == 0 ? 0 : 1, std::move(pkt));
  }

  // Recover everything and let the system quiesce (retransmissions drain).
  if (sw_down[0]) sw1->SetUp(true);
  if (sw_down[1]) sw2->SetUp(true);
  sim.RunUntil(sim.Now() + Milliseconds(200));
  sim.Run();

  // --- Invariants ---
  std::string why;
  EXPECT_TRUE(modelcheck::CheckCounterLinearizable(history.Sorted(), &why))
      << "seed " << params.seed << ": " << why;

  const auto* rec = store->Find(net::PartitionKey::OfFlow(TheFlow()));
  ASSERT_NE(rec, nullptr);
  std::set<std::uint64_t> counts;
  for (const auto& [id, count] : outputs) {
    EXPECT_TRUE(counts.insert(count).second)
        << "duplicate count " << count << " (seed " << params.seed << ")";
    EXPECT_LE(count, rec->last_applied_seq);
  }

  // Mirror buffers drained (every surviving request eventually acked or
  // abandoned with its flow).
  EXPECT_EQ(sw1->mirror().NumEntries(), 0u) << "seed " << params.seed;
  EXPECT_EQ(sw2->mirror().NumEntries(), 0u) << "seed " << params.seed;

  // The durable count equals each live switch's view of the flow.
  for (auto* rp : {&rp1, &rp2}) {
    const auto entry =
        rp->flow_table().Find(net::PartitionKey::OfFlow(TheFlow()));
    if (entry && entry.has_state()) {
      EXPECT_LE(entry.last_acked_seq(), rec->last_applied_seq);
    }
  }
}

std::vector<FuzzParams> MakeParams() {
  std::vector<FuzzParams> params;
  // Loss x jitter x failures grid, several seeds each.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 5ull, 8ull, 13ull}) {
    params.push_back({seed, 0.0, 0, true});
    params.push_back({seed + 100, 0.05, Microseconds(5), false});
    params.push_back({seed + 200, 0.15, Microseconds(10), true});
    params.push_back({seed + 300, 0.0, Microseconds(20), true});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Schedules, ProtocolFuzz,
                         ::testing::ValuesIn(MakeParams()),
                         [](const auto& info) {
                           const FuzzParams& p = info.param;
                           return "seed" + std::to_string(p.seed) + "_loss" +
                                  std::to_string(int(p.store_loss * 100)) +
                                  "_jit" +
                                  std::to_string(p.reorder_jitter / 1000) +
                                  (p.failures ? "_fail" : "_nofail");
                         });

// ------------------- merge-law property tests (DESIGN.md §14) -------------
//
// Mergeable mode is only safe if every declared StateTraits::merge is a
// join-semilattice operation: commutative, associative, and idempotent.
// Idempotence is what makes retransmitted or replayed deltas (including a
// full resync replay after store failover) harmless — re-merging bytes the
// store already folded in must be a no-op.  These tests check the laws on
// randomized states shaped like each app's actual encoding.

/// One mergeable app's declared join plus a generator of random states in
/// that app's wire encoding.
struct MergeLawCase {
  const char* name;
  core::MergeFn merge;
  core::MeasureFn measure;
  std::vector<std::byte> (*gen)(Rng& rng);
};

std::vector<std::byte> GenCounterState(Rng& rng) {
  // SyncCounter/AsyncCounter: one LE u64 (occasionally absent = brand new).
  std::vector<std::byte> state;
  if (rng.Bernoulli(0.1)) return state;
  net::ByteWriter w(state);
  w.U64(rng.NextBounded(1'000'000));
  return state;
}

std::vector<std::byte> GenSketchState(Rng& rng) {
  // HeavyHitter / CountMinSketch slot: one LE u32 counter per row; rows
  // vary so the lane-wise join's length handling is exercised too.
  std::vector<std::byte> state;
  net::ByteWriter w(state);
  const std::size_t rows = 1 + rng.NextBounded(4);
  for (std::size_t i = 0; i < rows; ++i) {
    w.U32(static_cast<std::uint32_t>(rng.NextBounded(100'000)));
  }
  return state;
}

std::vector<std::byte> GenBitmapState(Rng& rng) {
  // Spreader bitmaps / Bloom filter cells: raw bit bytes.
  std::vector<std::byte> state(4 + rng.NextBounded(29));
  for (std::byte& b : state) {
    b = static_cast<std::byte>(rng.NextBounded(256));
  }
  return state;
}

std::vector<std::byte> Join(core::MergeFn merge, std::vector<std::byte> a,
                            const std::vector<std::byte>& b) {
  merge(a, std::span<const std::byte>(b.data(), b.size()));
  return a;
}

class MergeLaws : public ::testing::TestWithParam<MergeLawCase> {};

TEST_P(MergeLaws, CommutativeAssociativeIdempotent) {
  const MergeLawCase& mc = GetParam();
  Rng rng(0x9d1a0000 + std::string_view(mc.name).size());
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = mc.gen(rng);
    const auto b = mc.gen(rng);
    const auto c = mc.gen(rng);
    EXPECT_EQ(Join(mc.merge, a, b), Join(mc.merge, b, a))
        << mc.name << " not commutative (trial " << trial << ")";
    EXPECT_EQ(Join(mc.merge, Join(mc.merge, a, b), c),
              Join(mc.merge, a, Join(mc.merge, b, c)))
        << mc.name << " not associative (trial " << trial << ")";
    EXPECT_EQ(Join(mc.merge, a, a), a)
        << mc.name << " not idempotent (trial " << trial << ")";
    // The measure must be monotone along the join: merging can only move
    // up the lattice (what the merge_convergence monitor checks online).
    EXPECT_GE(mc.measure(std::span<const std::byte>(Join(mc.merge, a, b))),
              mc.measure(std::span<const std::byte>(a)))
        << mc.name << " measure decreased across join (trial " << trial
        << ")";
  }
}

TEST_P(MergeLaws, ReplayAfterFailoverIsIdempotent) {
  // A store replica that failed and resynced replays deltas it may already
  // have folded in: folding a random prefix a second time — in any order —
  // must leave the merged state unchanged.
  const MergeLawCase& mc = GetParam();
  Rng rng(0xfa110000 + std::string_view(mc.name).size());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<std::byte>> deltas;
    for (int i = 0; i < 8; ++i) deltas.push_back(mc.gen(rng));
    std::vector<std::byte> merged;
    for (const auto& d : deltas) merged = Join(mc.merge, merged, d);
    std::vector<std::byte> replayed = merged;
    const std::size_t replay = 1 + rng.NextBounded(deltas.size());
    for (std::size_t i = 0; i < replay; ++i) {
      const std::size_t pick = rng.NextBounded(deltas.size());
      replayed = Join(mc.merge, replayed, deltas[pick]);
    }
    EXPECT_EQ(replayed, merged)
        << mc.name << ": replaying " << replay
        << " already-merged deltas changed the state (trial " << trial
        << ")";
  }
}

std::vector<MergeLawCase> MakeMergeLawCases() {
  // Pull the joins through the apps' actual declarations so a drifting
  // Traits() (e.g. counter switching to a non-idempotent sum) fails here.
  return {
      {"sync_counter", apps::SyncCounterApp{}.Traits().merge,
       apps::SyncCounterApp{}.Traits().measure, GenCounterState},
      {"async_counter", apps::AsyncCounterApp{}.Traits().merge,
       apps::AsyncCounterApp{}.Traits().measure, GenCounterState},
      {"heavy_hitter", apps::HeavyHitterApp{}.Traits().merge,
       apps::HeavyHitterApp{}.Traits().measure, GenSketchState},
      {"spreader", apps::SpreaderApp{}.Traits().merge,
       apps::SpreaderApp{}.Traits().measure, GenBitmapState},
      // Bloom filters are cell arrays under the same OR-lattice the
      // spreader bitmaps use; exercised against raw bit bytes.
      {"bloom", core::MergeOrBytes, core::MeasurePopcount, GenBitmapState},
  };
}

INSTANTIATE_TEST_SUITE_P(DeclaredMerges, MergeLaws,
                         ::testing::ValuesIn(MakeMergeLawCases()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace redplane
