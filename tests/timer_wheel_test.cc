// Hierarchical timing-wheel edge cases: slot-handle lifetime (cancel after
// fire/pop), same-tick ordering parity with the binary-heap scheduler,
// overflow into (and beyond) the top wheel level, and mass-cancel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/timer_wheel.h"

namespace redplane::sim {
namespace {

std::vector<TimerWheel::Due> DrainByPop(TimerWheel& wheel) {
  std::vector<TimerWheel::Due> out;
  std::vector<TimerWheel::Due> slot;
  while (!wheel.Empty()) {
    slot.clear();
    wheel.PopNextSlot(slot);
    out.insert(out.end(), slot.begin(), slot.end());
  }
  return out;
}

TEST(TimerWheelTest, PopsEveryEntryInTickOrder) {
  TimerWheel wheel;
  // Times spread across several wheel levels: sub-tick, level 0, and the
  // coarser levels (tick = 1024 ns, 64 slots per level).
  std::vector<SimTime> times;
  std::uint64_t seq = 1;
  for (SimTime t : {SimTime(100), SimTime(2048), SimTime(3000),
                    SimTime(70'000), SimTime(1'000'000), SimTime(50'000'000),
                    SimTime(3'000'000'000), SimTime(123'456'789'012)}) {
    times.push_back(t);
    ASSERT_NE(wheel.Schedule(t, seq++, 0), TimerWheel::kNil) << t;
  }
  EXPECT_EQ(wheel.Size(), times.size());
  const auto fired = DrainByPop(wheel);
  ASSERT_EQ(fired.size(), times.size());
  // Slots pop in nondecreasing tick order, and every entry surfaces with
  // its original timestamp.
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].time >> 10, fired[i].time >> 10);
  }
  std::vector<SimTime> got;
  for (const auto& d : fired) got.push_back(d.time);
  std::sort(got.begin(), got.end());
  std::sort(times.begin(), times.end());
  EXPECT_EQ(got, times);
}

TEST(TimerWheelTest, CancelReturnsPayloadOnceThenRejectsStaleHandles) {
  TimerWheel wheel;
  const std::uint32_t idx = wheel.Schedule(SimTime(5'000'000), 7, 42);
  ASSERT_NE(idx, TimerWheel::kNil);
  std::uint32_t payload = 0;
  EXPECT_TRUE(wheel.Cancel(idx, 7, &payload));
  EXPECT_EQ(payload, 42u);
  EXPECT_TRUE(wheel.Empty());
  // Second cancel of the same handle: the node is free, seq no longer
  // matches — must refuse.
  EXPECT_FALSE(wheel.Cancel(idx, 7, &payload));
  // Node reuse bumps the stored seq; the old (idx, seq) handle stays dead.
  const std::uint32_t idx2 = wheel.Schedule(SimTime(6'000'000), 8, 43);
  ASSERT_EQ(idx2, idx);  // slab head reused
  EXPECT_FALSE(wheel.Cancel(idx, 7, &payload));
  EXPECT_TRUE(wheel.Cancel(idx, 8, &payload));
  EXPECT_EQ(payload, 43u);
}

TEST(TimerWheelTest, CancelAfterPopRejectsTheHandle) {
  TimerWheel wheel;
  const std::uint32_t idx = wheel.Schedule(SimTime(2048), 9, 5);
  ASSERT_NE(idx, TimerWheel::kNil);
  std::vector<TimerWheel::Due> due;
  while (due.empty() && !wheel.Empty()) wheel.PopNextSlot(due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].seq, 9u);
  std::uint32_t payload = 0;
  EXPECT_FALSE(wheel.Cancel(idx, 9, &payload));
}

TEST(TimerWheelTest, RefusesSchedulingBehindTheCursor) {
  TimerWheel wheel;
  ASSERT_NE(wheel.Schedule(SimTime(100'000'000), 1, 0), TimerWheel::kNil);
  // Pop the only entry: the cursor jumps to its tick.
  std::vector<TimerWheel::Due> due;
  while (due.empty() && !wheel.Empty()) wheel.PopNextSlot(due);
  ASSERT_EQ(due.size(), 1u);
  // A time strictly before the cursor cannot be placed (the caller falls
  // back to the heap).
  EXPECT_EQ(wheel.Schedule(SimTime(1000), 2, 0), TimerWheel::kNil);
}

TEST(TimerWheelTest, OverflowBeyondTopLevelRoundTrips) {
  TimerWheel wheel;
  // The six levels cover 2^36 ticks = 2^46 ns from the cursor; beyond that
  // entries park in the overflow list and re-enter when the cursor's epoch
  // catches up.
  const SimTime near = SimTime(1) << 20;
  const SimTime far1 = (SimTime(1) << 46) + 4096;    // first overflow epoch
  const SimTime far2 = (SimTime(1) << 47) + 8192;    // a later epoch still
  ASSERT_NE(wheel.Schedule(far2, 3, 0), TimerWheel::kNil);
  ASSERT_NE(wheel.Schedule(far1, 2, 0), TimerWheel::kNil);
  ASSERT_NE(wheel.Schedule(near, 1, 0), TimerWheel::kNil);
  EXPECT_EQ(wheel.NextSlotTime() >> 10, near >> 10);
  const auto fired = DrainByPop(wheel);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].time, near);
  EXPECT_EQ(fired[1].time, far1);
  EXPECT_EQ(fired[2].time, far2);
}

TEST(TimerWheelTest, CancellingTheOverflowMinimumRecomputesIt) {
  TimerWheel wheel;
  const SimTime far1 = (SimTime(1) << 46) + 1024;
  const SimTime far2 = (SimTime(1) << 46) + 2'000'000;
  const std::uint32_t i1 = wheel.Schedule(far1, 1, 0);
  const std::uint32_t i2 = wheel.Schedule(far2, 2, 0);
  ASSERT_NE(i1, TimerWheel::kNil);
  ASSERT_NE(i2, TimerWheel::kNil);
  std::uint32_t payload = 0;
  ASSERT_TRUE(wheel.Cancel(i1, 1, &payload));
  EXPECT_EQ(wheel.NextSlotTime() >> 10, far2 >> 10);
  const auto fired = DrainByPop(wheel);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].time, far2);
}

TEST(TimerWheelTest, DrainAllEmptiesTheWheelAndReturnsPayloads) {
  TimerWheel wheel;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    ASSERT_NE(wheel.Schedule(SimTime(i * 777'777), i,
                             static_cast<std::uint32_t>(i)),
              TimerWheel::kNil);
  }
  std::vector<TimerWheel::Due> all;
  wheel.DrainAll(all);
  EXPECT_EQ(all.size(), 100u);
  EXPECT_TRUE(wheel.Empty());
  EXPECT_EQ(wheel.Size(), 0u);
  std::uint64_t payload_sum = 0;
  for (const auto& d : all) payload_sum += d.payload;
  EXPECT_EQ(payload_sum, 100u * 101u / 2);
}

// --- Simulator integration -------------------------------------------------

/// Runs one schedule under the given coarse-timer threshold and returns the
/// observed firing order as (time, label) pairs.
std::vector<std::pair<SimTime, int>> RunSchedule(SimDuration threshold) {
  Simulator sim;
  sim.SetCoarseTimerThreshold(threshold);
  std::vector<std::pair<SimTime, int>> fired;
  auto record = [&](int label) {
    fired.emplace_back(sim.Now(), label);
  };
  // Mixed fine (heap) and coarse (wheel) delays, with deliberate same-time
  // collisions whose order must be the schedule order.
  sim.Schedule(Microseconds(500), [&] { record(1); });
  sim.Schedule(Microseconds(500), [&] { record(2); });
  sim.Schedule(Microseconds(1), [&] {
    record(3);
    sim.Schedule(Microseconds(499), [&] { record(4); });  // lands at 500 us
    sim.Schedule(Microseconds(63), [&] { record(5); });   // heap either way
  });
  sim.Schedule(Milliseconds(20), [&] { record(6); });
  sim.Schedule(Microseconds(500), [&] { record(7); });
  const EventId cancelled = sim.Schedule(Microseconds(300), [&] {
    record(99);  // must never fire
  });
  sim.Schedule(Microseconds(100), [&, cancelled] { sim.Cancel(cancelled); });
  sim.Schedule(Seconds(2), [&] { record(8); });
  sim.Run();
  return fired;
}

TEST(SimulatorWheelTest, WheelAndHeapFireInTheSameOrder) {
  // Determinism pin: routing coarse timers through the wheel must preserve
  // the heap scheduler's (time, schedule-order) firing sequence exactly.
  const auto with_wheel = RunSchedule(Simulator::kDefaultCoarseThreshold);
  const auto heap_only = RunSchedule(SimDuration{INT64_MAX});
  EXPECT_EQ(with_wheel, heap_only);
  const std::vector<int> expect_labels{3, 5, 1, 2, 7, 4, 6, 8};
  std::vector<int> labels;
  for (const auto& [t, l] : with_wheel) labels.push_back(l);
  EXPECT_EQ(labels, expect_labels);
}

TEST(SimulatorWheelTest, CancelAfterFireIsHarmless) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.Schedule(Milliseconds(1), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Cancel(id);  // already fired: must not corrupt anything
  sim.Schedule(Milliseconds(1), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.CoarseTimersPending(), 0u);
}

TEST(SimulatorWheelTest, MassCancelDrainsWheelAndPendingCount) {
  Simulator sim;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(
        sim.Schedule(Milliseconds(1) + Microseconds(i * 97), [&] { ++fired; }));
  }
  EXPECT_GT(sim.CoarseTimersPending(), 0u);
  // Cancel in a scrambled order (mass-cancel on Reset()/OnRecovery() hits
  // slots across every wheel level).
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.Cancel(ids[i]);
  for (std::size_t i = 1; i < ids.size(); i += 2) sim.Cancel(ids[i]);
  EXPECT_EQ(sim.CoarseTimersPending(), 0u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  sim.Run();
  EXPECT_EQ(fired, 0);
  // The wheel stays usable after the purge.
  sim.Schedule(Milliseconds(5), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorWheelTest, RunUntilLeavesFutureWheelTimersPending) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] { ++fired; });
  sim.Schedule(Milliseconds(10), [&] { ++fired; });
  sim.RunUntil(Milliseconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace redplane::sim
