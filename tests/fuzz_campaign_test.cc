// Adversarial scenario engine (DESIGN.md §15): schedule generator
// well-formedness, JSON round-trip, ddmin minimization, deterministic
// replay, and the committed minimized repros under tests/schedules/.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/campaign/minimizer.h"
#include "tools/campaign/runner.h"
#include "tools/campaign/schedule.h"

namespace redplane::campaign {
namespace {

std::string TempOutDir(const char* leaf) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / leaf;
  std::filesystem::create_directories(dir);
  return dir.string();
}

// --- generator -------------------------------------------------------------

TEST(ScheduleGenerator, DrawsWellFormedSchedulesAcrossAllClasses) {
  for (const FuzzClass focus :
       {FuzzClass::kMixed, FuzzClass::kGray, FuzzClass::kChurn,
        FuzzClass::kFlash, FuzzClass::kCapacity}) {
    for (std::uint64_t seed = 100; seed < 140; ++seed) {
      GeneratorConfig config;
      config.focus = focus;
      const Schedule s = GenerateSchedule(seed, config);
      SCOPED_TRACE(std::string(FuzzClassName(focus)) + " seed " +
                   std::to_string(seed));
      EXPECT_FALSE(s.Empty());
      EXPECT_EQ(s.seed, seed);
      for (const FaultEvent& ev : s.faults) {
        EXPECT_GE(ev.at, 0);
        // The generator promises survivable schedules: every fault heals
        // inside the run, after it was injected.
        EXPECT_GT(ev.clear_at, ev.at);
        switch (ev.kind) {
          case FaultKind::kSlowShard:
            EXPECT_GE(ev.magnitude, 1.0);
            EXPECT_LE(ev.magnitude, 20.0);
            break;
          case FaultKind::kAsymLoss:
            EXPECT_GT(ev.magnitude, 0.0);
            EXPECT_LE(ev.magnitude, 1.0);
            break;
          case FaultKind::kCapacity:
            EXPECT_GE(ev.magnitude, 8.0);
            break;
          default:
            break;
        }
      }
      for (const LoadPhase& ph : s.loads) {
        EXPECT_GE(ph.at, 0);
        EXPECT_GT(ph.duration, 0);
        EXPECT_GT(ph.intensity, 0u);
      }
    }
  }
}

TEST(ScheduleGenerator, ClassFocusShapesTheDraw) {
  // Gray runs must contain at least one gray fault; churn runs at least one
  // rehash + a churn phase; capacity runs a capacity fault.  This is what
  // makes --fuzz-class a meaningful coverage knob rather than a label.
  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    GeneratorConfig config;
    config.focus = FuzzClass::kGray;
    const Schedule gray = GenerateSchedule(seed, config);
    EXPECT_TRUE(std::any_of(gray.faults.begin(), gray.faults.end(),
                            [](const FaultEvent& e) {
                              return e.kind == FaultKind::kSlowShard ||
                                     e.kind == FaultKind::kAsymLoss ||
                                     e.kind == FaultKind::kPartition;
                            }));

    config.focus = FuzzClass::kChurn;
    const Schedule churn = GenerateSchedule(seed, config);
    EXPECT_TRUE(std::any_of(
        churn.faults.begin(), churn.faults.end(),
        [](const FaultEvent& e) { return e.kind == FaultKind::kEcmpRehash; }));
    EXPECT_TRUE(std::any_of(
        churn.loads.begin(), churn.loads.end(),
        [](const LoadPhase& p) { return p.kind == LoadKind::kLeaseChurn; }));

    // Flash schedules always carry the crash-mid-crowd pair: the crash is
    // what forces failover replay under admission pile-up, and the CI
    // class self-test (flash + mutate=seq) must reach it from any seed.
    config.focus = FuzzClass::kFlash;
    const Schedule flash = GenerateSchedule(seed, config);
    EXPECT_TRUE(std::any_of(
        flash.faults.begin(), flash.faults.end(),
        [](const FaultEvent& e) { return e.kind == FaultKind::kSwitchCrash; }));
    EXPECT_TRUE(std::any_of(
        flash.loads.begin(), flash.loads.end(),
        [](const LoadPhase& p) { return p.kind == LoadKind::kFlashCrowd; }));

    config.focus = FuzzClass::kCapacity;
    const Schedule cap = GenerateSchedule(seed, config);
    EXPECT_TRUE(std::any_of(
        cap.faults.begin(), cap.faults.end(),
        [](const FaultEvent& e) { return e.kind == FaultKind::kCapacity; }));
  }
}

TEST(ScheduleGenerator, SameSeedSameScheduleDifferentSeedsDiffer) {
  const Schedule a = GenerateSchedule(1234);
  const Schedule b = GenerateSchedule(1234);
  EXPECT_EQ(ToJson(a), ToJson(b));
  std::set<std::string> distinct;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    distinct.insert(ToJson(GenerateSchedule(seed)));
  }
  EXPECT_GT(distinct.size(), 8u);
}

// --- JSON round-trip -------------------------------------------------------

TEST(ScheduleJson, RoundTripsExactly) {
  for (std::uint64_t seed = 900; seed < 930; ++seed) {
    const Schedule s = GenerateSchedule(seed);
    const std::string json = ToJson(s);
    const auto back = ScheduleFromJson(json);
    ASSERT_TRUE(back.has_value()) << json;
    EXPECT_EQ(ToJson(*back), json);
    EXPECT_EQ(back->seed, s.seed);
    EXPECT_EQ(back->packets_per_flow, s.packets_per_flow);
    ASSERT_EQ(back->faults.size(), s.faults.size());
    ASSERT_EQ(back->loads.size(), s.loads.size());
  }
}

TEST(ScheduleJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(ScheduleFromJson("").has_value());
  EXPECT_FALSE(ScheduleFromJson("not json").has_value());
  EXPECT_FALSE(ScheduleFromJson("[1, 2]").has_value());
  // Unknown fault kind: a repro written by a newer binary must not silently
  // replay with the unknown event dropped — that would "pass" a regression
  // without exercising it.
  EXPECT_FALSE(ScheduleFromJson(
                   R"({"faults": [{"kind": "warp_core_breach", "at_ns": 1}]})")
                   .has_value());
  EXPECT_FALSE(
      ScheduleFromJson(R"({"loads": [{"kind": "dance_party", "at_ns": 1}]})")
          .has_value());
  // Negative injection time / non-positive traffic are nonsense timelines.
  EXPECT_FALSE(ScheduleFromJson(
                   R"({"faults": [{"kind": "link_cut", "at_ns": -5}]})")
                   .has_value());
  EXPECT_FALSE(ScheduleFromJson(R"({"packets_per_flow": 0})").has_value());
  // Well-formed minimal document parses.
  EXPECT_TRUE(ScheduleFromJson(R"({"seed": 1, "faults": [], "loads": []})")
                  .has_value());
}

// --- minimizer -------------------------------------------------------------

TEST(Minimizer, IsolatesTheCausalPairOutOfManyEvents) {
  // Synthetic oracle: the "bug" needs a store crash AND a SYN flood in the
  // same schedule; the other six events are noise.  ddmin must delete the
  // noise and keep exactly the causal pair.
  Schedule full;
  full.seed = 77;
  for (int i = 0; i < 5; ++i) {
    FaultEvent ev;
    ev.kind = i == 2 ? FaultKind::kStoreCrash : FaultKind::kEcmpRehash;
    ev.at = Milliseconds(2 + i);
    ev.clear_at = Milliseconds(20 + i);
    ev.magnitude = 3;
    full.faults.push_back(ev);
  }
  for (int i = 0; i < 3; ++i) {
    LoadPhase ph;
    ph.kind = i == 1 ? LoadKind::kSynFlood : LoadKind::kFlashCrowd;
    ph.at = Milliseconds(4 + i);
    ph.intensity = 8;
    full.loads.push_back(ph);
  }
  const auto oracle = [](const Schedule& s) {
    const bool crash = std::any_of(
        s.faults.begin(), s.faults.end(),
        [](const FaultEvent& e) { return e.kind == FaultKind::kStoreCrash; });
    const bool flood = std::any_of(
        s.loads.begin(), s.loads.end(),
        [](const LoadPhase& p) { return p.kind == LoadKind::kSynFlood; });
    return crash && flood;
  };
  ASSERT_TRUE(oracle(full));

  const MinimizeResult result = MinimizeSchedule(full, oracle);
  EXPECT_EQ(result.schedule.NumEvents(), 2u);
  ASSERT_EQ(result.schedule.faults.size(), 1u);
  ASSERT_EQ(result.schedule.loads.size(), 1u);
  EXPECT_EQ(result.schedule.faults[0].kind, FaultKind::kStoreCrash);
  EXPECT_EQ(result.schedule.loads[0].kind, LoadKind::kSynFlood);
  EXPECT_TRUE(result.one_minimal);
  // Seed and traffic shape survive minimization (replayability).
  EXPECT_EQ(result.schedule.seed, full.seed);
  EXPECT_EQ(result.schedule.packets_per_flow, full.packets_per_flow);
  // ddmin on 8 events should need far fewer probes than 2^8 subsets.
  EXPECT_LE(result.probes, 40);
}

TEST(Minimizer, SingleCulpritReducesToOneEvent) {
  Schedule full = GenerateSchedule(4242);
  ASSERT_GE(full.NumEvents(), 1u);
  FaultEvent culprit;
  culprit.kind = FaultKind::kPartition;
  culprit.at = Milliseconds(3);
  culprit.clear_at = Milliseconds(9);
  culprit.magnitude = 1.0;
  full.faults.push_back(culprit);
  const auto oracle = [](const Schedule& s) {
    return std::any_of(
        s.faults.begin(), s.faults.end(),
        [](const FaultEvent& e) { return e.kind == FaultKind::kPartition; });
  };
  const MinimizeResult result = MinimizeSchedule(full, oracle);
  EXPECT_EQ(result.schedule.NumEvents(), 1u);
  ASSERT_EQ(result.schedule.faults.size(), 1u);
  EXPECT_EQ(result.schedule.faults[0].kind, FaultKind::kPartition);
}

TEST(Minimizer, RespectsTheProbeBudget) {
  Schedule full = GenerateSchedule(5555);
  int calls = 0;
  const auto oracle = [&calls](const Schedule&) {
    ++calls;
    return true;  // pathological: everything "fails"
  };
  const MinimizeResult result = MinimizeSchedule(full, oracle, /*max_probes=*/7);
  EXPECT_LE(result.probes, 7);
  EXPECT_EQ(result.probes, calls);
}

// --- deterministic replay --------------------------------------------------

TEST(DeterministicReplay, SameSeedAndScheduleGiveIdenticalTraceHash) {
  Schedule s;
  s.seed = 31337;
  s.packets_per_flow = 12;
  FaultEvent cut;
  cut.kind = FaultKind::kLinkCut;
  cut.at = Milliseconds(2);
  cut.clear_at = Milliseconds(12);
  s.faults.push_back(cut);
  LoadPhase crowd;
  crowd.kind = LoadKind::kFlashCrowd;
  crowd.at = Milliseconds(3);
  crowd.duration = Milliseconds(4);
  crowd.intensity = 8;
  s.loads.push_back(crowd);

  const std::string out_dir = TempOutDir("fuzz_replay");
  for (const core::ConsistencyMode mode :
       {core::ConsistencyMode::kSingleOwner,
        core::ConsistencyMode::kReplicatedRead,
        core::ConsistencyMode::kMergeable}) {
    SCOPED_TRACE(static_cast<int>(mode));
    const RunResult first = RunSchedule(s, mode, {}, out_dir, "replay_a");
    const RunResult second = RunSchedule(s, mode, {}, out_dir, "replay_b");
    EXPECT_TRUE(first.Clean()) << first.oracle_why;
    EXPECT_TRUE(second.Clean()) << second.oracle_why;
    EXPECT_NE(first.trace_hash, 0u);
    // The replay contract: bit-identical delivery stream, not merely the
    // same counters.  This is what makes a minimized schedule a *repro*.
    EXPECT_EQ(first.trace_hash, second.trace_hash);
    EXPECT_EQ(first.sent, second.sent);
    EXPECT_EQ(first.delivered, second.delivered);
  }
}

// --- committed repros ------------------------------------------------------

TEST(CommittedSchedules, EveryReproParsesAndReplaysClean) {
  const std::filesystem::path dir =
      std::filesystem::path(REDPLANE_SOURCE_DIR) / "tests" / "schedules";
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  const std::string out_dir = TempOutDir("fuzz_repro");
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++count;
    SCOPED_TRACE(entry.path().filename().string());
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    const auto schedule = ScheduleFromJson(buf.str());
    ASSERT_TRUE(schedule.has_value());
    EXPECT_FALSE(schedule->Empty());
    // Round-trip stability keeps the committed artifacts diff-friendly.
    const auto again = ScheduleFromJson(ToJson(*schedule));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(ToJson(*again), ToJson(*schedule));
    // Replay as a regression: these are minimized repros of fixed bugs, so
    // a clean run is the pass condition.  The schedule does not pin a
    // consistency mode and some bugs only reproduce under a weaker one
    // (the tail-crash commit gap needs replicated buffered reads; the
    // stale-resync rollback needs mergeable deltas), so replay all three.
    for (const core::ConsistencyMode mode :
         {core::ConsistencyMode::kSingleOwner,
          core::ConsistencyMode::kReplicatedRead,
          core::ConsistencyMode::kMergeable}) {
      SCOPED_TRACE(static_cast<int>(mode));
      const RunResult result = RunSchedule(*schedule, mode, {}, out_dir,
                                           entry.path().stem().string());
      EXPECT_TRUE(result.Clean())
          << result.oracle_why << " violations=" << result.violations.size();
    }
  }
  EXPECT_GE(count, 6u);
}

}  // namespace
}  // namespace redplane::campaign
