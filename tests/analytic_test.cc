#include <gtest/gtest.h>

#include "apps/epc_sgw.h"
#include "core/analytic.h"
#include "trace/workload.h"

namespace redplane::core {
namespace {

AnalyticConfig PaperBase() {
  AnalyticConfig cfg;
  cfg.offered_pps = 207.6e6;
  cfg.packet_bytes = 64;
  cfg.link_bps = 100e9;
  return cfg;
}

TEST(AnalyticTest, ReadCentricHitsLinkBound) {
  AnalyticConfig cfg = PaperBase();
  cfg.sync_update_fraction = 0.0;
  const auto result = PredictThroughput(cfg);
  // 100 Gbps / (84 B * 8) ~= 148 Mpps; with 64+20 framing the paper's
  // testbed caps around 122-149 Mpps — far below offered load.
  EXPECT_STREQ(result.bottleneck, "link");
  EXPECT_GT(result.throughput_pps, 100e6);
  EXPECT_LT(result.throughput_pps, cfg.offered_pps);
  EXPECT_NEAR(result.protocol_bw_fraction, 0.0, 1e-9);
}

TEST(AnalyticTest, SyncWritesBottleneckOnStore) {
  AnalyticConfig cfg = PaperBase();
  cfg.sync_update_fraction = 1.0;
  cfg.store_rps = 35e6;
  cfg.num_stores = 1;
  const auto result = PredictThroughput(cfg);
  EXPECT_STREQ(result.bottleneck, "store");
  EXPECT_NEAR(result.throughput_pps, 35e6, 1e3);
  EXPECT_GT(result.protocol_bw_fraction, 0.4);
}

TEST(AnalyticTest, SyncCounterRoughlyHalvesThroughput) {
  // The paper's Fig. 12: Sync-Counter reaches about half the 122.5 Mpps
  // forwarding cap.  With the calibrated store rate the model agrees.
  AnalyticConfig base = PaperBase();
  const double baseline = PredictThroughput(base).throughput_pps;
  AnalyticConfig sync = base;
  sync.sync_update_fraction = 1.0;
  sync.store_rps = 30e6;
  sync.num_stores = 2;
  const double with_redplane = PredictThroughput(sync).throughput_pps;
  EXPECT_NEAR(with_redplane / baseline, 0.5, 0.1);
}

TEST(AnalyticTest, MoreStoresScaleUpdateHeavyThroughput) {
  AnalyticConfig cfg = PaperBase();
  cfg.sync_update_fraction = 0.8;
  cfg.store_rps = 35e6;
  cfg.num_stores = 1;
  const double one = PredictThroughput(cfg).throughput_pps;
  cfg.num_stores = 2;
  const double two = PredictThroughput(cfg).throughput_pps;
  cfg.num_stores = 3;
  const double three = PredictThroughput(cfg).throughput_pps;
  EXPECT_NEAR(two / one, 2.0, 0.05);
  EXPECT_GT(three, two);
}

TEST(AnalyticTest, ThroughputMonotonicallyFallsWithUpdateRatio) {
  AnalyticConfig cfg = PaperBase();
  cfg.store_rps = 35e6;
  double prev = 1e30;
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    cfg.sync_update_fraction = u;
    const double t = PredictThroughput(cfg).throughput_pps;
    EXPECT_LE(t, prev + 1.0);
    prev = t;
  }
}

TEST(AnalyticTest, SnapshotBandwidthScalesLinearlySweep) {
  // Fig. 11's axes: frequency x structure count.  The model is linear in
  // frequency and grows with sketch count.
  const double base = SnapshotBandwidthBps(3, 64, 1000, 70);
  EXPECT_NEAR(SnapshotBandwidthBps(3, 64, 2000, 70), 2 * base, 1e-6);
  EXPECT_GT(SnapshotBandwidthBps(5, 64, 1000, 70), base);
  // At 1 kHz with 3 sketches the paper reports ~34 Mbps; same ballpark.
  EXPECT_GT(base, 20e6);
  EXPECT_LT(base, 60e6);
}

TEST(WorkloadTest, FlowMixRespectsConfig) {
  Rng rng(3);
  trace::FlowMixConfig cfg;
  cfg.num_packets = 5000;
  cfg.num_flows = 100;
  const auto packets = trace::GenerateFlowMix(rng, cfg);
  ASSERT_EQ(packets.size(), 5000u);
  SimTime prev = -1;
  std::set<net::FlowKey> flows;
  for (const auto& p : packets) {
    EXPECT_GT(p.time, prev);
    prev = p.time;
    EXPECT_GE(p.size_bytes, 64u);
    EXPECT_LE(p.size_bytes, 1500u);
    flows.insert(p.flow);
  }
  EXPECT_GT(flows.size(), 50u);
  EXPECT_LE(flows.size(), 100u);
}

TEST(WorkloadTest, ZipfSkewsFlowPopularity) {
  Rng rng(4);
  trace::FlowMixConfig cfg;
  cfg.num_packets = 20000;
  cfg.num_flows = 100;
  cfg.zipf_theta = 1.2;
  const auto packets = trace::GenerateFlowMix(rng, cfg);
  std::map<net::FlowKey, int> counts;
  for (const auto& p : packets) ++counts[p.flow];
  int max_count = 0;
  for (const auto& [f, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000 / 100 * 5);  // head flow way above uniform share
}

TEST(WorkloadTest, EpcMixHasOneSignalingPer17Data) {
  Rng rng(5);
  trace::EpcMixConfig cfg;
  cfg.num_packets = 18000;
  const auto packets = trace::GenerateEpcMix(rng, cfg);
  int signaling = 0;
  for (const auto& p : packets) signaling += p.signaling ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(signaling) / packets.size(), 1.0 / 18, 0.01);
}

TEST(WorkloadTest, KvOpsHonorUpdateRatio) {
  Rng rng(6);
  trace::KvOpsConfig cfg;
  cfg.num_ops = 20000;
  cfg.update_ratio = 0.25;
  const auto ops = trace::GenerateKvOps(rng, cfg);
  int updates = 0;
  for (const auto& op : ops) {
    updates += op.request.op == apps::KvOp::kUpdate ? 1 : 0;
    EXPECT_LT(op.request.key, cfg.num_keys);
  }
  EXPECT_NEAR(static_cast<double>(updates) / ops.size(), 0.25, 0.02);
}

TEST(WorkloadTest, MaterializeSignalingPacketParsable) {
  trace::TracePacket spec;
  spec.signaling = true;
  spec.flow.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  spec.flow.dst_ip = net::Ipv4Addr(100, 64, 0, 9);
  const auto pkt = trace::MaterializePacket(spec);
  EXPECT_TRUE(pkt.IsUdpTo(apps::kSgwSignalingPort));
  EXPECT_GE(pkt.payload.size(), 8u);
}

TEST(WorkloadTest, MaterializeSizesMatchSpec) {
  trace::TracePacket spec;
  spec.flow = {net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1, 2,
               net::IpProto::kTcp};
  spec.size_bytes = 1000;
  EXPECT_EQ(trace::MaterializePacket(spec).WireSize(), 1000u);
  spec.size_bytes = 64;
  EXPECT_EQ(trace::MaterializePacket(spec).WireSize(), 64u);
}

}  // namespace
}  // namespace redplane::core
