#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/epsilon.h"
#include "core/snapshot.h"

namespace redplane::core {
namespace {

using Snap = LazySnapshotter<std::uint32_t>;

std::uint32_t Inc(std::uint32_t v) { return v + 1; }

TEST(LazySnapshotTest, UpdatesVisibleLive) {
  Snap snap("s", 8);
  for (int i = 0; i < 5; ++i) {
    dp::PipelinePass pass;
    snap.Update(pass, 3, Inc);
  }
  EXPECT_EQ(snap.PeekLive(3), 5u);
  EXPECT_EQ(snap.PeekLive(0), 0u);
}

TEST(LazySnapshotTest, SnapshotReadReturnsValueAtFlip) {
  Snap snap("s", 4);
  for (int i = 0; i < 7; ++i) {
    dp::PipelinePass pass;
    snap.Update(pass, 1, Inc);
  }
  {
    dp::PipelinePass pass;
    snap.BeginSnapshot(pass);
  }
  // Updates after the flip must not affect the snapshot.
  for (int i = 0; i < 3; ++i) {
    dp::PipelinePass pass;
    snap.Update(pass, 1, Inc);
  }
  dp::PipelinePass pass;
  EXPECT_EQ(snap.SnapshotRead(pass, 1), 7u);
  EXPECT_EQ(snap.PeekLive(1), 10u);
}

TEST(LazySnapshotTest, UntouchedSlotsReadPreFlipValue) {
  Snap snap("s", 4);
  {
    dp::PipelinePass pass;
    snap.Update(pass, 2, Inc);
  }
  {
    dp::PipelinePass pass;
    snap.BeginSnapshot(pass);
  }
  dp::PipelinePass p1, p2;
  EXPECT_EQ(snap.SnapshotRead(p1, 2), 1u);
  EXPECT_EQ(snap.SnapshotRead(p2, 0), 0u);
}

TEST(LazySnapshotTest, ConsecutiveSnapshotsEachConsistent) {
  Snap snap("s", 2);
  auto update = [&](std::size_t idx) {
    dp::PipelinePass pass;
    snap.Update(pass, idx, Inc);
  };
  auto read_snapshot = [&](std::size_t idx) {
    dp::PipelinePass pass;
    return snap.SnapshotRead(pass, idx);
  };
  update(0);
  update(0);
  update(1);
  {
    dp::PipelinePass pass;
    snap.BeginSnapshot(pass);
  }
  EXPECT_EQ(read_snapshot(0), 2u);
  EXPECT_EQ(read_snapshot(1), 1u);
  update(0);
  {
    dp::PipelinePass pass;
    snap.BeginSnapshot(pass);
  }
  EXPECT_EQ(read_snapshot(0), 3u);
  EXPECT_EQ(read_snapshot(1), 1u);
  // A third snapshot with no intervening updates.
  {
    dp::PipelinePass pass;
    snap.BeginSnapshot(pass);
  }
  EXPECT_EQ(read_snapshot(0), 3u);
  EXPECT_EQ(read_snapshot(1), 1u);
}

TEST(LazySnapshotTest, ResetClearsBothCopies) {
  Snap snap("s", 4);
  {
    dp::PipelinePass pass;
    snap.Update(pass, 0, Inc);
  }
  {
    dp::PipelinePass pass;
    snap.BeginSnapshot(pass);
  }
  snap.Reset();
  EXPECT_EQ(snap.PeekLive(0), 0u);
  dp::PipelinePass pass;
  EXPECT_EQ(snap.SnapshotRead(pass, 0), 0u);
}

/// Property sweep: random interleavings of updates and snapshot bursts; a
/// snapshot burst must observe exactly the reference values at flip time,
/// and live values must track a reference array exactly.
class LazySnapshotProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LazySnapshotProperty, RandomInterleavingsMatchReference) {
  constexpr std::size_t kSlots = 16;
  Snap snap("s", kSlots);
  std::array<std::uint32_t, kSlots> reference{};
  Rng rng(GetParam());

  for (int round = 0; round < 20; ++round) {
    // Random updates.
    const int updates = static_cast<int>(rng.NextBounded(50));
    for (int i = 0; i < updates; ++i) {
      const std::size_t idx = rng.NextBounded(kSlots);
      dp::PipelinePass pass;
      snap.Update(pass, idx, Inc);
      ++reference[idx];
    }
    // Flip and capture the reference at the flip instant.
    {
      dp::PipelinePass pass;
      snap.BeginSnapshot(pass);
    }
    const auto frozen = reference;
    // Interleave the snapshot-read burst with more updates, as the real
    // data plane does.
    std::array<std::uint32_t, kSlots> observed{};
    for (std::size_t idx = 0; idx < kSlots; ++idx) {
      if (rng.Bernoulli(0.5)) {
        const std::size_t up = rng.NextBounded(kSlots);
        dp::PipelinePass pass;
        snap.Update(pass, up, Inc);
        ++reference[up];
      }
      dp::PipelinePass pass;
      observed[idx] = snap.SnapshotRead(pass, idx);
    }
    for (std::size_t idx = 0; idx < kSlots; ++idx) {
      ASSERT_EQ(observed[idx], frozen[idx])
          << "round " << round << " slot " << idx;
    }
    // Live values still exact.
    for (std::size_t idx = 0; idx < kSlots; ++idx) {
      ASSERT_EQ(snap.PeekLive(idx), reference[idx]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazySnapshotProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

TEST(EpsilonTrackerTest, CompletedRoundResetsStaleness) {
  int violations = 0;
  EpsilonTracker tracker(Milliseconds(10),
                         [&](const net::PartitionKey&) { ++violations; });
  const auto key = net::PartitionKey::OfVlan(1);
  tracker.BeginRound(key, 1, 3, Milliseconds(0));
  tracker.SlotAcked(key, 1, Milliseconds(1));
  tracker.SlotAcked(key, 1, Milliseconds(1));
  EXPECT_EQ(tracker.Staleness(key, Milliseconds(5)), -1);  // incomplete
  tracker.SlotAcked(key, 1, Milliseconds(2));
  EXPECT_EQ(tracker.Staleness(key, Milliseconds(5)), Milliseconds(5));
  tracker.Check(Milliseconds(9));
  EXPECT_EQ(violations, 0);
  tracker.Check(Milliseconds(11));
  EXPECT_EQ(violations, 1);
  // Violation fires once per episode.
  tracker.Check(Milliseconds(12));
  EXPECT_EQ(violations, 1);
  // A fresh complete round clears the violation.
  tracker.BeginRound(key, 2, 1, Milliseconds(12));
  tracker.SlotAcked(key, 2, Milliseconds(13));
  tracker.Check(Milliseconds(14));
  EXPECT_EQ(tracker.violations(), 1u);
  tracker.Check(Milliseconds(30));
  EXPECT_EQ(tracker.violations(), 2u);
}

TEST(EpsilonTrackerTest, StaleRoundAcksIgnored) {
  EpsilonTracker tracker(Milliseconds(10), nullptr);
  const auto key = net::PartitionKey::OfVlan(1);
  tracker.BeginRound(key, 1, 2, 0);
  tracker.SlotAcked(key, 1, 1);
  tracker.BeginRound(key, 2, 2, Milliseconds(1));
  tracker.SlotAcked(key, 1, 2);  // late ack for superseded round
  EXPECT_EQ(tracker.Staleness(key, Milliseconds(2)), -1);
  tracker.SlotAcked(key, 2, 3);
  tracker.SlotAcked(key, 2, 4);
  EXPECT_EQ(tracker.Staleness(key, Milliseconds(2)), Milliseconds(1));
}

}  // namespace
}  // namespace redplane::core
