#include <gtest/gtest.h>

#include "dataplane/control_plane.h"
#include "dataplane/match_table.h"
#include "dataplane/mirror.h"
#include "dataplane/packet_generator.h"
#include "dataplane/pipeline.h"
#include "dataplane/register_array.h"
#include "dataplane/resources.h"
#include "sim/host.h"
#include "sim/network.h"

namespace redplane::dp {
namespace {

TEST(RegisterArrayTest, ReadModifyWriteReturnsAluResult) {
  RegisterArray<std::uint32_t> reg("r", 8, 5);
  PipelinePass pass;
  const auto v = reg.ReadModifyWrite(pass, 3, [](std::uint32_t& x) {
    x += 10;
    return x;
  });
  EXPECT_EQ(v, 15u);
  EXPECT_EQ(reg.Peek(3), 15u);
  EXPECT_EQ(reg.Peek(0), 5u);
}

TEST(RegisterArrayTest, OneAccessPerPassEnforced) {
  RegisterArray<int> reg("r", 4);
  PipelinePass pass;
  reg.Read(pass, 0);
  EXPECT_DEATH(reg.Read(pass, 1), "second access");
}

TEST(RegisterArrayTest, DistinctPassesMayAccess) {
  RegisterArray<int> reg("r", 4);
  PipelinePass p1;
  reg.Write(p1, 0, 7);
  PipelinePass p2;
  EXPECT_EQ(reg.Read(p2, 0), 7);
}

TEST(RegisterArrayTest, OutOfRangeAborts) {
  RegisterArray<int> reg("r", 4);
  PipelinePass pass;
  EXPECT_DEATH(reg.Read(pass, 4), "out of range");
}

TEST(RegisterArrayTest, ResetRestoresInitial) {
  RegisterArray<int> reg("r", 4, 9);
  PipelinePass pass;
  reg.Write(pass, 2, 1);
  reg.Reset();
  EXPECT_EQ(reg.Peek(2), 9);
}

TEST(MatchTableTest, InsertLookupEraseCapacity) {
  MatchTable<int, int> table("t", 2);
  EXPECT_TRUE(table.Insert(1, 10));
  EXPECT_TRUE(table.Insert(2, 20));
  EXPECT_FALSE(table.Insert(3, 30));  // full
  EXPECT_TRUE(table.Insert(1, 11));   // overwrite allowed at capacity
  EXPECT_EQ(table.Lookup(1), 11);
  EXPECT_EQ(table.Lookup(3), std::nullopt);
  EXPECT_TRUE(table.Erase(2));
  EXPECT_FALSE(table.Erase(2));
  EXPECT_TRUE(table.Insert(3, 30));
  table.Reset();
  EXPECT_EQ(table.size(), 0u);
}

TEST(MirrorTest, OccupancyTracksEntriesAndAcks) {
  MirrorTable mirror("m", 64);
  const auto key = net::PartitionKey::OfObject(1);
  mirror.Mirror(key, 1, std::vector<std::byte>(40), 0);
  mirror.Mirror(key, 2, std::vector<std::byte>(40), 0);
  EXPECT_EQ(mirror.OccupancyBytes(), 80u);
  EXPECT_EQ(mirror.PeakOccupancyBytes(), 80u);
  mirror.Acknowledge(key, 1);
  EXPECT_EQ(mirror.OccupancyBytes(), 40u);
  EXPECT_EQ(mirror.NumEntries(), 1u);
  mirror.Acknowledge(key, 10);  // ack clears everything <= 10
  EXPECT_EQ(mirror.OccupancyBytes(), 0u);
  EXPECT_EQ(mirror.PeakOccupancyBytes(), 80u);  // peak persists
}

TEST(MirrorTest, TruncationCapsStoredBytes) {
  MirrorTable mirror("m", 64);
  mirror.Mirror(net::PartitionKey::OfObject(1), 1,
                std::vector<std::byte>(1500), 0);
  EXPECT_EQ(mirror.OccupancyBytes(), 64u);
}

TEST(MirrorTest, AckOnlyAffectsMatchingKey) {
  MirrorTable mirror("m", 64);
  mirror.Mirror(net::PartitionKey::OfObject(1), 5, std::vector<std::byte>(10),
                0);
  mirror.Mirror(net::PartitionKey::OfObject(2), 5, std::vector<std::byte>(10),
                0);
  mirror.Acknowledge(net::PartitionKey::OfObject(1), 5);
  EXPECT_EQ(mirror.NumEntries(), 1u);
}

TEST(ControlPlaneTest, OperationsSerializeFifo) {
  sim::Simulator sim;
  ControlPlaneConfig cfg;
  cfg.pcie_latency = Microseconds(4);
  cfg.pcie_bandwidth_bps = 8e9;
  cfg.table_op_cpu_time = Microseconds(50);
  ControlPlane cp(sim, cfg);

  std::vector<SimTime> completions;
  cp.Submit(1000, [&]() { completions.push_back(sim.Now()); });
  cp.Submit(1000, [&]() { completions.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(completions.size(), 2u);
  // Each op: 1 µs transfer + 50 µs CPU; completion +8 µs PCIe round trip.
  EXPECT_EQ(completions[0], Microseconds(1 + 50 + 8));
  EXPECT_EQ(completions[1], Microseconds(2 * (1 + 50) + 8));
  EXPECT_EQ(cp.completed(), 2u);
}

TEST(ControlPlaneTest, ResetDropsQueuedWork) {
  sim::Simulator sim;
  ControlPlane cp(sim, {});
  bool fired = false;
  cp.Submit(100, [&]() { fired = true; });
  cp.Reset();
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(cp.Pending(), 0u);
}

TEST(PacketGeneratorTest, EmitsBatchesPeriodically) {
  sim::Simulator sim;
  PacketGenerator gen(sim);
  std::vector<std::pair<SimTime, std::uint32_t>> emissions;
  gen.Start(Milliseconds(1), 4, Nanoseconds(100), [&](std::uint32_t i) {
    emissions.emplace_back(sim.Now(), i);
  });
  sim.RunUntil(Milliseconds(3) + Microseconds(10));
  gen.Stop();
  sim.Run();
  ASSERT_EQ(emissions.size(), 12u);  // 3 periods x 4 packets
  EXPECT_EQ(emissions[0].second, 0u);
  EXPECT_EQ(emissions[3].second, 3u);
  EXPECT_GE(emissions[4].first, Milliseconds(2));
}

TEST(PacketGeneratorTest, StopHaltsEmission) {
  sim::Simulator sim;
  PacketGenerator gen(sim);
  int count = 0;
  gen.Start(Milliseconds(1), 1, 0, [&](std::uint32_t) { ++count; });
  sim.RunUntil(Milliseconds(2) + 1);
  gen.Stop();
  sim.RunUntil(Milliseconds(10));
  EXPECT_EQ(count, 2);
}

class CountingHandler : public PipelineHandler {
 public:
  void Process(SwitchContext& ctx, net::Packet pkt) override {
    ++processed;
    ctx.Forward(std::move(pkt));
  }
  void Reset() override { ++resets; }
  void OnRecovery() override { ++recoveries; }
  int processed = 0;
  int resets = 0;
  int recoveries = 0;
};

TEST(SwitchNodeTest, PipelineLatencyAppliedAndForwarderUsed) {
  sim::Simulator sim;
  sim::Network net(sim, 1);
  auto* sw = net.AddNode<SwitchNode>("sw");
  auto* sink = net.AddNode<sim::HostNode>("h", net::Ipv4Addr(2, 2, 2, 2));
  net.Connect(sw, 0, sink, 0);
  CountingHandler handler;
  sw->SetPipeline(&handler);
  sw->SetForwarder([](const net::Packet&, PortId) { return PortId{0}; });

  int received = 0;
  SimTime arrival = 0;
  sink->SetHandler([&](sim::HostNode&, net::Packet) {
    ++received;
    arrival = sim.Now();
  });
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                 net::IpProto::kUdp};
  sw->HandlePacket(net::MakeUdpPacket(f, 0), 0);
  sim.Run();
  EXPECT_EQ(handler.processed, 1);
  EXPECT_EQ(received, 1);
  EXPECT_GE(arrival, sw->config().pipeline_latency);
}

TEST(SwitchNodeTest, FailureResetsHandlerAndDropsTraffic) {
  sim::Simulator sim;
  sim::Network net(sim, 1);
  auto* sw = net.AddNode<SwitchNode>("sw");
  CountingHandler handler;
  sw->SetPipeline(&handler);
  sw->SetUp(false);
  EXPECT_EQ(handler.resets, 1);
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                 net::IpProto::kUdp};
  sw->HandlePacket(net::MakeUdpPacket(f, 0), 0);
  sim.Run();
  EXPECT_EQ(handler.processed, 0);
  sw->SetUp(true);
  EXPECT_EQ(handler.recoveries, 1);
}

TEST(SwitchNodeTest, PacketInFlightThroughPipelineDroppedOnFailure) {
  sim::Simulator sim;
  sim::Network net(sim, 1);
  auto* sw = net.AddNode<SwitchNode>("sw");
  CountingHandler handler;
  sw->SetPipeline(&handler);
  net::FlowKey f{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                 net::IpProto::kUdp};
  sw->HandlePacket(net::MakeUdpPacket(f, 0), 0);
  sw->SetUp(false);  // fails before the pipeline pass completes
  sim.Run();
  EXPECT_EQ(handler.processed, 0);
}

TEST(SwitchNodeTest, RecirculationRunsWithFreshContext) {
  sim::Simulator sim;
  sim::Network net(sim, 1);
  auto* sw = net.AddNode<SwitchNode>("sw");
  bool ran = false;
  sw->Recirculate([&](SwitchContext& ctx) {
    ran = true;
    EXPECT_EQ(ctx.in_port(), kInvalidPort);
  });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(ResourceModelTest, ChargesAccumulate) {
  ResourceModel model;
  model.AddExactTable("t", 1000, 64, 32);
  model.AddRegisterArray("r", 1000, 32);
  model.AddTernaryTable("tc", 100, 48, 8);
  model.AddGateways("g", 5);
  EXPECT_GT(model.Usage(ResourceKind::kSram), 0.0);
  EXPECT_EQ(model.Usage(ResourceKind::kMeterAlu), 1.0);
  EXPECT_EQ(model.Usage(ResourceKind::kGateway), 5.0);
  EXPECT_GT(model.Usage(ResourceKind::kTcam), 0.0);
  EXPECT_EQ(model.objects().size(), 4u);
}

TEST(ResourceModelTest, RedPlanePlacementMatchesTable2Shape) {
  // Table 2: SRAM is the largest consumer (13.2%), everything else < 14%,
  // TCAM ~12%, and all categories are nonzero.
  ResourceModel model;
  PlaceRedPlaneObjects(model, 100'000);
  const auto usage = model.FractionOfBudget(PipelineBudget::Tofino());
  double sram = 0, max_other = 0;
  for (const auto& [name, frac] : usage) {
    EXPECT_GT(frac, 0.0) << name;
    EXPECT_LT(frac, 0.20) << name;  // "ample resources remain"
    if (name == "SRAM") {
      sram = frac;
    } else {
      max_other = std::max(max_other, frac);
    }
  }
  EXPECT_GT(sram, 0.08);
  EXPECT_GE(sram, max_other - 0.02);  // SRAM is (about) the most used
}

TEST(ResourceModelTest, SramScalesWithFlows) {
  ResourceModel small, large;
  PlaceRedPlaneObjects(small, 10'000);
  PlaceRedPlaneObjects(large, 100'000);
  EXPECT_GT(large.Usage(ResourceKind::kSram),
            5 * small.Usage(ResourceKind::kSram));
  // Non-SRAM resources are flow-count independent (§7.4).
  EXPECT_EQ(large.Usage(ResourceKind::kGateway),
            small.Usage(ResourceKind::kGateway));
  EXPECT_EQ(large.Usage(ResourceKind::kVliw), small.Usage(ResourceKind::kVliw));
}

}  // namespace
}  // namespace redplane::dp
