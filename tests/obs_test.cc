// Tests for the observability layer (src/obs): tracer ring semantics, span
// ordering, histogram/percentile agreement with SampleSet, JSON validity,
// phase pairing, and end-to-end trace determinism on the full testbed.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/nat.h"
#include "common/logging.h"
#include "common/stats.h"
#include "core/redplane_switch.h"
#include "net/flow.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "routing/topology.h"
#include "sim/simulator.h"

namespace redplane {
namespace {

using obs::Ev;
using obs::TraceFilter;
using obs::TraceRecord;
using obs::Tracer;

/// RAII guard that installs a tracer as the process-global one.
struct GlobalTracerGuard {
  explicit GlobalTracerGuard(Tracer* t) : prev(obs::SetGlobalTracer(t)) {}
  ~GlobalTracerGuard() { obs::SetGlobalTracer(prev); }
  Tracer* prev;
};

TEST(TracerTest, RingBufferEvictsOldest) {
  Tracer tracer(4);
  tracer.SetEnabled(true);
  const std::uint16_t comp = tracer.Intern("c");
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.Emit(comp, Ev::kIngress, /*flow=*/1, /*seq=*/i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.evicted(), 6u);
  const auto records = tracer.Records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first, and only the newest four survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].seq, 6 + i);
    EXPECT_EQ(records[i].order, 6 + i);
  }
}

TEST(TracerTest, SpanOrderingPreservesEmissionOrderOnEqualTimestamps) {
  Tracer tracer;
  tracer.SetEnabled(true);
  SimTime now = 500;
  tracer.SetClock([&now]() { return now; });
  const std::uint16_t comp = tracer.Intern("c");
  tracer.Emit(comp, Ev::kIngress, 1, 1);
  tracer.Emit(comp, Ev::kLeaseMiss, 1, 1);
  tracer.Emit(comp, Ev::kReplicationSent, 1, 1);
  now = 900;
  tracer.Emit(comp, Ev::kAckReleased, 1, 1);
  const auto records = tracer.Records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].t, 500);
  EXPECT_EQ(records[2].t, 500);
  EXPECT_EQ(records[3].t, 900);
  // Equal timestamps keep emission order via the order field.
  EXPECT_LT(records[0].order, records[1].order);
  EXPECT_LT(records[1].order, records[2].order);
  EXPECT_EQ(records[0].ev, Ev::kIngress);
  EXPECT_EQ(records[1].ev, Ev::kLeaseMiss);
  EXPECT_EQ(records[2].ev, Ev::kReplicationSent);
}

TEST(TracerTest, FlowFilterKeepsMatchingAndNonFlowRecords) {
  Tracer tracer;
  tracer.SetEnabled(true);
  tracer.SetFlowFilter(42);
  const std::uint16_t comp = tracer.Intern("c");
  tracer.Emit(comp, Ev::kIngress, 42);
  tracer.Emit(comp, Ev::kIngress, 7);    // filtered out
  tracer.Emit(comp, Ev::kNodeFailure, 0);  // non-flow event: kept
  EXPECT_EQ(tracer.size(), 2u);
  const auto records = tracer.Records();
  EXPECT_EQ(records[0].flow, 42u);
  EXPECT_EQ(records[1].flow, 0u);
}

TEST(TracerTest, QueryFilterSelectsByFlowAndComponent) {
  Tracer tracer;
  tracer.SetEnabled(true);
  const std::uint16_t a = tracer.Intern("alpha");
  const std::uint16_t b = tracer.Intern("beta");
  tracer.Emit(a, Ev::kIngress, 1);
  tracer.Emit(b, Ev::kIngress, 1);
  tracer.Emit(a, Ev::kIngress, 2);
  TraceFilter by_flow;
  by_flow.flow = 1;
  EXPECT_EQ(tracer.Records(by_flow).size(), 2u);
  TraceFilter by_comp;
  by_comp.component = "alpha";
  EXPECT_EQ(tracer.Records(by_comp).size(), 2u);
  TraceFilter both;
  both.flow = 2;
  both.component = "beta";
  EXPECT_TRUE(tracer.Records(both).empty());
}

TEST(TracerTest, TraceHandleRevalidatesAfterReset) {
  Tracer tracer;
  tracer.SetEnabled(true);
  GlobalTracerGuard guard(&tracer);
  obs::TraceHandle handle("widget");
  EXPECT_TRUE(handle.armed());
  handle.Emit(Ev::kIngress);
  tracer.Reset();  // drops names, bumps generation
  handle.Emit(Ev::kHostRecv);
  const auto records = tracer.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(tracer.ComponentName(records[0].component), "widget");
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  GlobalTracerGuard guard(&tracer);
  obs::TraceHandle handle("c");
  EXPECT_FALSE(handle.armed());
  handle.Emit(Ev::kIngress, 1, 2, 3.0);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, ChromeTraceExportIsValidJson) {
  Tracer tracer;
  tracer.SetEnabled(true);
  SimTime now = 0;
  tracer.SetClock([&now]() { return now; });
  const std::uint16_t comp = tracer.Intern("sw0/rp");
  for (int i = 0; i < 20; ++i) {
    now += 1337;
    tracer.Emit(comp, static_cast<Ev>(i % obs::kNumEvents),
                net::HashFlowKey({net::Ipv4Addr(10, 0, 0, 1),
                                  net::Ipv4Addr(10, 0, 0, 2),
                                  static_cast<std::uint16_t>(i), 80,
                                  net::IpProto::kUdp}),
                i, i * 1.5);
  }
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_TRUE(obs::ValidateJson(json)) << json;
  // Spot-check shape: metadata names the component, events carry µs stamps.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("sw0/rp"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST(TracerTest, LatencyBreakdownPairsBeginEndPerFlowSeq) {
  Tracer tracer;
  tracer.SetEnabled(true);
  SimTime now = 0;
  tracer.SetClock([&now]() { return now; });
  const std::uint16_t sw = tracer.Intern("sw");
  const std::uint16_t store = tracer.Intern("store");
  // One write lifecycle: sent at 1 µs, received at 3 µs, acked at 9 µs.
  now = 1000;
  tracer.Emit(sw, Ev::kReplicationSent, 5, 1);
  now = 3000;
  tracer.Emit(store, Ev::kStoreRecv, 5, 1);
  now = 9000;
  tracer.Emit(sw, Ev::kAckReleased, 5, 1);
  const auto phases = tracer.LatencyBreakdown();
  double rtt = -1, to_store = -1;
  for (const auto& phase : phases) {
    if (phase.name == "write_replication_rtt") rtt = phase.samples_us.Mean();
    if (phase.name == "switch_to_store") to_store = phase.samples_us.Mean();
  }
  EXPECT_DOUBLE_EQ(rtt, 8.0);
  EXPECT_DOUBLE_EQ(to_store, 2.0);
}

TEST(TracerTest, LatencyBreakdownDistinguishesGrantFromRehome) {
  Tracer tracer;
  tracer.SetEnabled(true);
  SimTime now = 0;
  tracer.SetClock([&now]() { return now; });
  const std::uint16_t sw = tracer.Intern("sw");
  // Flow 1: fresh lease (miss -> grant).  Flow 2: failover (miss -> rehome).
  now = 0;
  tracer.Emit(sw, Ev::kLeaseMiss, 1);
  now = 4000;
  tracer.Emit(sw, Ev::kLeaseGrant, 1);
  now = 10000;
  tracer.Emit(sw, Ev::kLeaseMiss, 2);
  now = 16000;
  tracer.Emit(sw, Ev::kFailoverRehome, 2);
  double acquire = -1, rehome = -1;
  for (const auto& phase : tracer.LatencyBreakdown()) {
    if (phase.name == "lease_acquire") acquire = phase.samples_us.Mean();
    if (phase.name == "failover_rehome") rehome = phase.samples_us.Mean();
  }
  EXPECT_DOUBLE_EQ(acquire, 4.0);
  EXPECT_DOUBLE_EQ(rehome, 6.0);
}

TEST(MetricsTest, HistogramPercentilesAgreeWithSampleSet) {
  obs::HistogramCell hist;
  SampleSet exact;
  // Deterministic log-uniform-ish values spanning several octaves.
  std::uint64_t lcg = 12345;
  for (int i = 0; i < 20000; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const double unit = static_cast<double>(lcg >> 11) / 9007199254740992.0;
    const double v = 1.0 + unit * unit * 5000.0;
    hist.Record(v);
    exact.Add(v);
  }
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double approx = hist.Percentile(p);
    const double truth = exact.Percentile(p);
    // Log-linear buckets (16/octave) guarantee ~4.4 % relative error.
    EXPECT_NEAR(approx, truth, truth * 0.10)
        << "p" << p << ": approx=" << approx << " exact=" << truth;
  }
  EXPECT_DOUBLE_EQ(hist.Percentile(0), exact.Min());
  EXPECT_DOUBLE_EQ(hist.Percentile(100), exact.Max());
}

TEST(MetricsTest, RegistryTypedAndStringApisShareCells) {
  obs::MetricRegistry registry("test");
  registry.Add("pkts");                      // string API first
  auto pkts = registry.RegisterCounter("pkts");  // typed handle, same cell
  pkts.Add(2);
  EXPECT_DOUBLE_EQ(registry.Get("pkts"), 3.0);
  // Kind mismatch yields an inert handle rather than corrupting the cell.
  auto wrong = registry.RegisterHistogram("pkts");
  wrong.Record(1.0);
  EXPECT_DOUBLE_EQ(registry.Get("pkts"), 3.0);
}

TEST(MetricsTest, RegistryResetZeroesButKeepsRegistrations) {
  obs::MetricRegistry registry("test");
  auto c = registry.RegisterCounter("c");
  auto h = registry.RegisterHistogram("h");
  c.Add(5);
  h.Record(1.0);
  registry.Reset();
  EXPECT_DOUBLE_EQ(registry.Get("c"), 0.0);
  EXPECT_EQ(h.Count(), 0u);
  c.Add();  // handles stay live after Reset
  EXPECT_DOUBLE_EQ(registry.Get("c"), 1.0);
}

TEST(MetricsTest, HubSnapshotPrefixesComponentAndSorts) {
  obs::MetricRegistry a("beta");
  obs::MetricRegistry b("alpha");
  a.Add("x", 1);
  b.Add("y", 2);
  b.AddCallbackGauge("z", []() { return 7.0; });
  obs::MetricsHub hub;
  hub.Register(&a);
  hub.Register(&b);
  const auto snap = hub.Snapshot(123);
  ASSERT_EQ(snap.values.size(), 3u);
  EXPECT_EQ(snap.values[0].name, "alpha.y");
  EXPECT_EQ(snap.values[1].name, "alpha.z");
  EXPECT_EQ(snap.values[2].name, "beta.x");
  EXPECT_DOUBLE_EQ(snap.values[1].value, 7.0);
  EXPECT_TRUE(obs::ValidateJson(snap.Json()));
}

TEST(MetricsTest, TimeSeriesJsonRoundTrips) {
  obs::MetricRegistry registry("comp");
  auto hist = registry.RegisterHistogram("lat_us");
  hist.Record(10);
  hist.Record(20);
  obs::MetricsHub hub;
  hub.Register(&registry);
  obs::TimeSeriesLog log;
  log.Append(hub.Snapshot(1000));
  registry.Add("ctr", 4);
  log.Append(hub.Snapshot(2000));
  EXPECT_EQ(log.Size(), 2u);
  const std::string json = log.Json();
  EXPECT_TRUE(obs::ValidateJson(json)) << json;
  EXPECT_NE(json.find("\"t_ns\": 1000"), std::string::npos);
  EXPECT_NE(json.find("comp.lat_us"), std::string::npos);
}

TEST(TracerTest, RingHealthGaugesTrackEvictionAndOrphans) {
  Tracer tracer(4);
  tracer.SetEnabled(true);
  const std::uint16_t comp = tracer.Intern("c");
  // Overflow the ring so some span begins are evicted while their ends
  // survive: each (begin, end) pair shares a seq; ring holds only 4 records.
  for (std::uint64_t i = 0; i < 6; ++i) {
    tracer.Emit(comp, Ev::kStoreRecv, /*flow=*/1, /*seq=*/i);
  }
  for (std::uint64_t i = 0; i < 6; ++i) {
    tracer.Emit(comp, Ev::kStoreApplied, /*flow=*/1, /*seq=*/i);
  }
  const auto& metrics = tracer.metrics();
  EXPECT_EQ(metrics.component(), "tracer");
  const auto snap = metrics.Snapshot(0);
  double evicted = -1, orphaned = -1, live = -1;
  for (const auto& v : snap.values) {
    if (v.name == "evicted_records") evicted = v.value;
    if (v.name == "orphaned_ends") orphaned = v.value;
    if (v.name == "live_records") live = v.value;
  }
  EXPECT_DOUBLE_EQ(evicted, 8.0);   // 12 emitted into a 4-slot ring
  EXPECT_DOUBLE_EQ(live, 4.0);
  // The surviving records are all kStoreApplied ends (seq 2..5) whose
  // kStoreRecv begins were evicted.
  EXPECT_DOUBLE_EQ(orphaned, 4.0);
  EXPECT_EQ(tracer.evicted(), 8u);
}

TEST(MetricsTest, HistogramCellMergeMatchesCombinedRecording) {
  obs::HistogramCell a, b, combined;
  std::uint64_t lcg = 99;
  for (int i = 0; i < 5000; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const double v = 0.5 + static_cast<double>(lcg >> 40) / 1000.0;
    (i % 2 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count, combined.count);
  EXPECT_DOUBLE_EQ(a.sum, combined.sum);
  EXPECT_DOUBLE_EQ(a.min, combined.min);
  EXPECT_DOUBLE_EQ(a.max, combined.max);
  for (double p : {1.0, 50.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
}

TEST(MetricsTest, TimeSeriesCsvRoundTrips) {
  obs::MetricRegistry registry("shard");
  auto depth = registry.RegisterGauge("queue_depth");
  auto lat = registry.RegisterHistogram("lat_us");
  obs::MetricsHub hub;
  hub.Register(&registry);
  obs::TimeSeriesLog log;
  depth.Set(3);
  lat.Record(12.5);
  log.Append(hub.Snapshot(1000));
  depth.Set(7);
  lat.Record(20.0);
  log.Append(hub.Snapshot(2000));

  const std::string csv = log.Csv();
  auto parsed = obs::TimeSeriesLog::ParseCsv(csv);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->Size(), 2u);
  EXPECT_EQ(parsed->At(0).at, 1000);
  EXPECT_EQ(parsed->At(1).at, 2000);
  auto value_of = [](const obs::MetricsSnapshot& snap,
                     const std::string& name) {
    for (const auto& v : snap.values) {
      if (v.name == name) return v.value;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value_of(parsed->At(0), "shard.queue_depth"), 3.0);
  EXPECT_DOUBLE_EQ(value_of(parsed->At(1), "shard.queue_depth"), 7.0);
  // Histograms export their count into CSV.
  EXPECT_DOUBLE_EQ(value_of(parsed->At(0), "shard.lat_us"), 1.0);
  EXPECT_DOUBLE_EQ(value_of(parsed->At(1), "shard.lat_us"), 2.0);
  EXPECT_FALSE(obs::TimeSeriesLog::ParseCsv("not,a\nvalid").has_value());
}

TEST(MetricsTest, PeriodicHubSamplingUnderSimulatorIsDeterministic) {
  // The same shape ObsSession::StartSampling uses: a self-rescheduling sim
  // event snapshots the hub; timestamps must land exactly on the period grid.
  sim::Simulator sim;
  obs::MetricRegistry registry("comp");
  auto ctr = registry.RegisterCounter("events");
  obs::MetricsHub hub;
  hub.Register(&registry);
  obs::TimeSeriesLog log;

  const SimDuration period = Microseconds(10);
  std::function<void()> sample = [&]() {
    log.Append(hub.Snapshot(sim.Now()));
    if (sim.Now() < Microseconds(50)) {
      sim.ScheduleAt(sim.Now() + period, sample);
    }
  };
  sim.ScheduleAt(period, sample);
  for (int i = 0; i < 42; ++i) {
    sim.ScheduleAt(Microseconds(1) * (i + 1), [&ctr]() { ctr.Add(); });
  }
  sim.Run();

  ASSERT_EQ(log.Size(), 5u);
  for (std::size_t i = 0; i < log.Size(); ++i) {
    EXPECT_EQ(log.At(i).at, static_cast<SimTime>(period) *
                                static_cast<SimTime>(i + 1));
  }
  // Counter value at each snapshot is exact: 1 event per us, sampled every
  // 10 us.  At the 10 us tie the sampler fires first (it was scheduled
  // first; equal timestamps dispatch in scheduling order), so it sees 9.
  EXPECT_DOUBLE_EQ(log.At(0).values[0].value, 9.0);
  EXPECT_DOUBLE_EQ(log.At(4).values[0].value, 42.0);
}

// --- profiler ---------------------------------------------------------------

/// RAII guard for the process-global profiler.
struct GlobalProfilerGuard {
  explicit GlobalProfilerGuard(obs::Profiler* p)
      : prev(obs::SetGlobalProfiler(p)) {}
  ~GlobalProfilerGuard() { obs::SetGlobalProfiler(prev); }
  obs::Profiler* prev;
};

TEST(ProfilerTest, BuildsCallPathTreeWithPerPathNodes) {
  obs::Profiler profiler;
  profiler.SetEnabled(true);
  GlobalProfilerGuard guard(&profiler);
  obs::ProfSite outer("outer");
  obs::ProfSite inner("inner");
  {
    obs::ProfScope a(outer);
    { obs::ProfScope b(inner); }
    { obs::ProfScope c(inner); }
  }
  { obs::ProfScope d(inner); }  // same site, different path => new node
  ASSERT_EQ(profiler.NumNodes(), 3u);
  const auto& nodes = profiler.Nodes();
  EXPECT_EQ(profiler.SiteName(nodes[0].site), "outer");
  EXPECT_EQ(nodes[0].parent, -1);
  EXPECT_EQ(nodes[0].count, 1u);
  EXPECT_EQ(profiler.SiteName(nodes[1].site), "inner");
  EXPECT_EQ(nodes[1].parent, 0);
  EXPECT_EQ(nodes[1].count, 2u);  // both nested scopes share one node
  EXPECT_EQ(profiler.SiteName(nodes[2].site), "inner");
  EXPECT_EQ(nodes[2].parent, -1);
  // Totals telescope: the parent's total covers its children's.
  EXPECT_GE(nodes[0].total_ns, nodes[1].total_ns);
  EXPECT_EQ(profiler.SelfNs(0),
            nodes[0].total_ns - nodes[1].total_ns);
}

TEST(ProfilerTest, StrideSamplesOneInNAndScalesCounts) {
  obs::Profiler profiler;
  profiler.SetEnabled(true);
  GlobalProfilerGuard guard(&profiler);
  obs::ProfSite site("strided", /*stride=*/8);
  int sampled = 0;
  for (int i = 0; i < 64; ++i) {
    obs::ProfScope scope(site);
    sampled += scope.sampled() ? 1 : 0;
  }
  EXPECT_EQ(sampled, 8);  // 1 in 8 entries measured
  ASSERT_EQ(profiler.NumNodes(), 1u);
  // Counts are scaled back by the stride so totals stay unbiased.
  EXPECT_EQ(profiler.Nodes()[0].count, 64u);
}

TEST(ProfilerTest, DisarmedAndDisabledScopesRecordNothing) {
  obs::ProfSite site("idle");
  { obs::ProfScope scope(site); }  // no profiler installed
  obs::Profiler profiler;          // installed but not enabled
  GlobalProfilerGuard guard(&profiler);
  { obs::ProfScope scope(site); }
  EXPECT_EQ(profiler.NumNodes(), 0u);
  // Arming via SetEnabled takes effect on the already-installed profiler.
  profiler.SetEnabled(true);
  { obs::ProfScope scope(site); }
  EXPECT_EQ(profiler.NumNodes(), 1u);
  profiler.SetEnabled(false);
  { obs::ProfScope scope(site); }
  EXPECT_EQ(profiler.Nodes()[0].count, 1u);
}

TEST(ProfilerTest, ExportsValidJsonAndCollapsedStacks) {
  obs::Profiler profiler;
  profiler.SetEnabled(true);
  GlobalProfilerGuard guard(&profiler);
  obs::ProfSite outer("sim.dispatch");
  obs::ProfSite inner("store.process");
  {
    obs::ProfScope a(outer);
    obs::ProfScope b(inner);
  }
  const std::string json = profiler.Json();
  EXPECT_TRUE(obs::ValidateJson(json)) << json;
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.has_value());
  const auto* sites = doc->Find("sites");
  ASSERT_NE(sites, nullptr);
  ASSERT_EQ(sites->array.size(), 2u);
  std::ostringstream collapsed;
  profiler.WriteCollapsed(collapsed);
  EXPECT_NE(collapsed.str().find("sim.dispatch;store.process "),
            std::string::npos)
      << collapsed.str();
  profiler.Reset();
  EXPECT_EQ(profiler.NumNodes(), 0u);
}

TEST(JsonTest, ParserRoundTripsExports) {
  auto doc = obs::ParseJson(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"x\\ny\", \"d\": true}}");
  ASSERT_TRUE(doc.has_value());
  const auto* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->IsArray());
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  const auto* b = doc->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->StringOr("c", ""), "x\ny");
  EXPECT_FALSE(obs::ParseJson("{\"a\": }").has_value());
}

TEST(JsonTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(obs::ValidateJson("{\"a\": [1, 2.5, -3e2, \"x\\n\", true, null]}"));
  EXPECT_TRUE(obs::ValidateJson("[]"));
  EXPECT_FALSE(obs::ValidateJson("{\"a\": }"));
  EXPECT_FALSE(obs::ValidateJson("{'a': 1}"));
  EXPECT_FALSE(obs::ValidateJson("[1, 2,]"));
  EXPECT_FALSE(obs::ValidateJson("{\"a\": 1} trailing"));
  EXPECT_FALSE(obs::ValidateJson("01"));
}

TEST(JsonTest, NumberFormatting) {
  EXPECT_EQ(obs::JsonNumber(42.0), "42");
  EXPECT_EQ(obs::JsonNumber(-3.0), "-3");
  EXPECT_EQ(obs::JsonNumber(0.5), "0.5");
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndDigits) {
  LogLevel level;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
}

// --- End-to-end determinism ------------------------------------------------

/// Runs a small NAT workload on the full testbed with tracing enabled and
/// returns the Chrome-trace export.
std::string RunTracedNat(Tracer& tracer) {
  net::ResetPacketIds();  // packet ids appear in the trace export
  constexpr net::Ipv4Addr kInternalPrefix(192, 168, 0, 0);
  constexpr std::uint32_t kInternalMask = 0xffff0000;
  constexpr net::Ipv4Addr kNatIp(100, 100, 0, 1);

  apps::NatGlobalState nat_global(kNatIp, 5000, 256, kInternalPrefix,
                                  kInternalMask);
  routing::TestbedConfig cfg;
  cfg.store.initializer = [&nat_global](const net::PartitionKey& key) {
    return nat_global.InitializeFlow(key);
  };
  sim::Simulator sim;
  routing::Testbed tb = routing::BuildTestbed(sim, cfg);

  tracer.SetClock([&sim]() { return sim.Now(); });
  tracer.SetEnabled(true);
  GlobalTracerGuard guard(&tracer);

  apps::NatApp nat(nat_global);
  auto shard_for = [&tb](const net::PartitionKey&) { return tb.StoreHeadIp(); };
  core::RedPlaneSwitch rp0(*tb.agg[0], nat, shard_for);
  core::RedPlaneSwitch rp1(*tb.agg[1], nat, shard_for);
  tb.agg[0]->SetPipeline(&rp0);
  tb.agg[1]->SetPipeline(&rp1);
  tb.fabric->AssignAddress(tb.agg[0], kNatIp);
  tb.fabric->RecomputeNow();

  tb.external[0]->SetHandler([](sim::HostNode& self, net::Packet pkt) {
    if (auto flow = pkt.Flow()) {
      self.Send(net::MakeUdpPacket(flow->Reversed(), 10));
    }
  });
  for (int i = 0; i < 4; ++i) {
    net::FlowKey flow{routing::RackServerIp(0, 0), routing::ExternalHostIp(0),
                      static_cast<std::uint16_t>(7000 + i), 80,
                      net::IpProto::kUdp};
    tb.rack_servers[0][0]->Send(net::MakeUdpPacket(flow, 100));
    sim.RunUntil(sim.Now() + Milliseconds(1));
  }
  sim.Run();
  tracer.ClearClock();
  tracer.SetEnabled(false);
  return tracer.ChromeTraceJson();
}

TEST(ObsDeterminismTest, SameSeedProducesByteIdenticalTraces) {
  Tracer t1, t2;
  const std::string json1 = RunTracedNat(t1);
  const std::string json2 = RunTracedNat(t2);
  EXPECT_FALSE(json1.empty());
  EXPECT_GT(t1.size(), 0u);
  EXPECT_TRUE(obs::ValidateJson(json1));
  EXPECT_EQ(json1, json2);
}

}  // namespace
}  // namespace redplane
