#include <gtest/gtest.h>

#include <map>

#include "core/redplane_switch.h"
#include "modelcheck/linearizability.h"
#include "net/codec.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/server.h"

namespace redplane::core {
namespace {

/// Test app: a per-flow counter whose output packet carries (original
/// packet id, count), so the receiver can reconstruct the history for
/// linearizability checking even across piggyback encode/decode.
class CountingEchoApp : public SwitchApp {
 public:
  std::string_view name() const override { return "counting_echo"; }
  ProcessResult Process(AppContext&, net::Packet pkt,
                        std::vector<std::byte>& state) override {
    ProcessResult result;
    const std::uint64_t count = StateAs<std::uint64_t>(state).value_or(0) + 1;
    SetState(state, count);
    result.state_modified = true;
    std::uint64_t original_id = pkt.id;
    if (pkt.payload.size() >= 8) {
      net::ByteReader r(pkt.payload);
      original_id = r.U64();
    }
    std::vector<std::byte> buf;
    net::ByteWriter w(buf);
    w.U64(original_id);
    w.U64(count);
    pkt.payload = std::move(buf);
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

/// Read-only echo: forwards, never writes state.
class ReadEchoApp : public SwitchApp {
 public:
  std::string_view name() const override { return "read_echo"; }
  ProcessResult Process(AppContext&, net::Packet pkt,
                        std::vector<std::byte>&) override {
    ProcessResult result;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

constexpr net::Ipv4Addr kSrcIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kDstIp(192, 168, 10, 1);
constexpr net::Ipv4Addr kSw1Ip(172, 16, 0, 1);
constexpr net::Ipv4Addr kSw2Ip(172, 16, 0, 2);
constexpr net::Ipv4Addr kStoreIp(172, 16, 1, 1);

net::FlowKey TestFlow(std::uint16_t src_port = 1000) {
  return {kSrcIp, kDstIp, src_port, 80, net::IpProto::kUdp};
}

/// Two RedPlane switches, a source, a sink, and a store, all star-wired to
/// static forwarders.  The source chooses which switch carries its traffic
/// (modeling an ECMP decision / reroute).
struct CoreHarness {
  explicit CoreHarness(SwitchApp& app, RedPlaneConfig config = {},
                       sim::LinkConfig store_link = {}) {
    net = std::make_unique<sim::Network>(sim, 17);
    src = net->AddNode<sim::HostNode>("src", kSrcIp);
    dst = net->AddNode<sim::HostNode>("dst", kDstIp);

    dp::SwitchConfig sw_cfg;
    sw_cfg.switch_ip = kSw1Ip;
    sw1 = net->AddNode<dp::SwitchNode>("sw1", sw_cfg);
    sw_cfg.switch_ip = kSw2Ip;
    sw2 = net->AddNode<dp::SwitchNode>("sw2", sw_cfg);
    store::StoreConfig store_cfg;
    store_cfg.lease_period = config.lease_period;  // must match the switch
    store = net->AddNode<store::StateStoreServer>("store", kStoreIp,
                                                  store_cfg);

    // src port 0 -> sw1, port 1 -> sw2.
    net->Connect(src, 0, sw1, 0);
    net->Connect(src, 1, sw2, 0);
    net->Connect(dst, 0, sw1, 1);
    // dst reachable from sw2 via port 1 as well.
    net->Connect(dst, 1, sw2, 1);
    store_hub = net->AddNode<sim::HostNode>("storehub",
                                            net::Ipv4Addr(9, 9, 9, 9));
    net->Connect(sw1, 2, store_hub, 0, store_link);
    net->Connect(sw2, 2, store_hub, 1, store_link);
    net->Connect(store, 0, store_hub, 2);
    store_hub->SetHandler([this](sim::HostNode& self, net::Packet pkt) {
      if (!pkt.ip.has_value()) return;
      if (pkt.ip->dst == kStoreIp) {
        self.SendTo(2, std::move(pkt));
      } else if (pkt.ip->dst == kSw1Ip) {
        self.SendTo(0, std::move(pkt));
      } else if (pkt.ip->dst == kSw2Ip) {
        self.SendTo(1, std::move(pkt));
      }
    });

    auto forwarder = [](dp::SwitchNode* sw) {
      return [sw](const net::Packet& pkt,
                  PortId) -> std::optional<PortId> {
        if (!pkt.ip.has_value()) return std::nullopt;
        if (pkt.ip->dst == kSrcIp) return PortId{0};
        if (pkt.ip->dst == kDstIp) return PortId{1};
        if (pkt.ip->dst == kStoreIp) return PortId{2};
        return std::nullopt;
      };
    };
    sw1->SetForwarder(forwarder(sw1));
    sw2->SetForwarder(forwarder(sw2));

    auto shard_for = [](const net::PartitionKey&) { return kStoreIp; };
    rp1 = std::make_unique<RedPlaneSwitch>(*sw1, app, shard_for, config);
    rp2 = std::make_unique<RedPlaneSwitch>(*sw2, app, shard_for, config);
    sw1->SetPipeline(rp1.get());
    sw2->SetPipeline(rp2.get());

    dst->SetHandler([this](sim::HostNode&, net::Packet pkt) {
      Arrival a;
      a.time = sim.Now();
      a.wire = pkt;
      if (pkt.payload.size() >= 16) {
        net::ByteReader r(pkt.payload);
        a.original_id = r.U64();
        a.count = r.U64();
      }
      arrivals.push_back(std::move(a));
    });
  }

  /// Sends one flow packet via the chosen switch; returns the packet id.
  net::PacketId SendVia(int sw, const net::FlowKey& flow = TestFlow()) {
    net::Packet pkt = net::MakeUdpPacket(flow, 20);
    const net::PacketId id = pkt.id;
    // Stamp the original id so the counting app can echo it.
    std::vector<std::byte> buf;
    net::ByteWriter w(buf);
    w.U64(id);
    pkt.payload = std::move(buf);
    src->SendTo(sw == 1 ? 0 : 1, std::move(pkt));
    history.Input(id, sim.Now());
    return id;
  }

  struct Arrival {
    SimTime time = 0;
    std::uint64_t original_id = 0;
    std::uint64_t count = 0;
    net::Packet wire;
  };

  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  sim::HostNode* src;
  sim::HostNode* dst;
  sim::HostNode* store_hub;
  dp::SwitchNode* sw1;
  dp::SwitchNode* sw2;
  store::StateStoreServer* store;
  std::unique_ptr<RedPlaneSwitch> rp1;
  std::unique_ptr<RedPlaneSwitch> rp2;
  std::vector<Arrival> arrivals;
  modelcheck::HistoryRecorder history;
};

TEST(RedPlaneSwitchTest, FirstPacketAcquiresLeaseAndIsReleased) {
  CountingEchoApp app;
  CoreHarness h(app);
  h.SendVia(1);
  h.sim.Run();
  ASSERT_EQ(h.arrivals.size(), 1u);
  EXPECT_EQ(h.arrivals[0].count, 1u);
  EXPECT_DOUBLE_EQ(h.rp1->stats().Get("inits_sent"), 1.0);
  const auto key = net::PartitionKey::OfFlow(TestFlow());
  const FlowRef entry = h.rp1->flow_table().Find(key);
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry.status(), FlowStatus::kActive);
  // The store durably holds the write before the output was released.
  const auto* rec = h.store->Find(key);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->last_applied_seq, 1u);
}

TEST(RedPlaneSwitchTest, WriteOutputsHeldUntilDurable) {
  CountingEchoApp app;
  CoreHarness h(app);
  h.SendVia(1);
  h.sim.Run();
  const SimTime t0 = h.sim.Now();
  // Second packet: lease held, but the write must round-trip to the store
  // before its output is released.
  h.SendVia(1);
  h.sim.Run();
  ASSERT_EQ(h.arrivals.size(), 2u);
  EXPECT_EQ(h.arrivals[1].count, 2u);
  // Release time >= store RTT (two fabric links each way, plus service).
  const SimTime elapsed = h.arrivals[1].time - t0;
  EXPECT_GT(elapsed, Microseconds(4));
  EXPECT_EQ(h.store->Find(net::PartitionKey::OfFlow(TestFlow()))
                ->last_applied_seq,
            2u);
}

TEST(RedPlaneSwitchTest, ReadCentricPacketsSkipTheStore) {
  ReadEchoApp app;
  CoreHarness h(app);
  h.SendVia(1);
  h.sim.Run();
  const double reqs_after_first = h.rp1->stats().Get("reqs_sent");
  SimTime first_gap = h.arrivals[0].time;
  for (int i = 0; i < 10; ++i) h.SendVia(1);
  h.sim.Run();
  ASSERT_EQ(h.arrivals.size(), 11u);
  // No further store traffic for established read-only flows.
  EXPECT_DOUBLE_EQ(h.rp1->stats().Get("reqs_sent"), reqs_after_first);
  // And later packets are released much faster than the first.
  const SimTime later_gap = h.arrivals[2].time - h.arrivals[1].time;
  EXPECT_LT(later_gap, first_gap / 2);
}

TEST(RedPlaneSwitchTest, SequenceNumbersIncreaseMonotonically) {
  CountingEchoApp app;
  CoreHarness h(app);
  for (int i = 0; i < 5; ++i) h.SendVia(1);
  h.sim.Run();
  ASSERT_EQ(h.arrivals.size(), 5u);
  std::set<std::uint64_t> counts;
  for (const auto& a : h.arrivals) counts.insert(a.count);
  EXPECT_EQ(counts, (std::set<std::uint64_t>{1, 2, 3, 4, 5}));
  const auto key = net::PartitionKey::OfFlow(TestFlow());
  EXPECT_EQ(h.store->Find(key)->last_applied_seq, 5u);
  EXPECT_EQ(h.rp1->flow_table().Find(key).last_acked_seq(), 5u);
}

TEST(RedPlaneSwitchTest, RetransmissionRecoversFromRequestLoss) {
  CountingEchoApp app;
  RedPlaneConfig config;
  config.request_timeout = Microseconds(200);
  config.retx_scan_interval = Microseconds(50);
  sim::LinkConfig lossy;
  lossy.loss_rate = 0.3;  // 30% loss on the switch<->store path
  CoreHarness h(app, config, lossy);
  for (int i = 0; i < 50; ++i) {
    h.SendVia(1);
    h.sim.RunUntil(h.sim.Now() + Microseconds(50));
  }
  h.sim.RunUntil(h.sim.Now() + Milliseconds(100));
  // Packets may be lost before processing (pre-grant loops are unreliable;
  // the model permits input loss), but every *processed* write eventually
  // became durable: the store's sequence equals the switch's, the mirror
  // buffer drained, and retransmissions did real work.
  const auto key = net::PartitionKey::OfFlow(TestFlow());
  const auto* rec = h.store->Find(key);
  ASSERT_NE(rec, nullptr);
  const FlowRef entry = h.rp1->flow_table().Find(key);
  ASSERT_TRUE(entry);
  EXPECT_EQ(rec->last_applied_seq, entry.cur_seq());
  EXPECT_GT(rec->last_applied_seq, 20u);  // most packets got through
  EXPECT_GT(h.rp1->stats().Get("retransmits"), 0.0);
  EXPECT_EQ(h.sw1->mirror().NumEntries(), 0u);
  // Some outputs may have been lost (piggybacks are not retransmitted) —
  // that is permitted; but those released must carry distinct counts no
  // greater than the durable sequence.
  std::set<std::uint64_t> counts;
  for (const auto& a : h.arrivals) {
    EXPECT_TRUE(counts.insert(a.count).second) << "duplicate count";
    EXPECT_LE(a.count, rec->last_applied_seq);
  }
}

TEST(RedPlaneSwitchTest, LeaseMigratesBetweenSwitches) {
  CountingEchoApp app;
  RedPlaneConfig config;
  config.lease_period = Milliseconds(5);
  config.renew_interval = Milliseconds(2);
  CoreHarness h(app, config);
  for (int i = 0; i < 3; ++i) h.SendVia(1);
  h.sim.Run();
  // Reroute: traffic now reaches sw2, which must migrate the state.
  h.sim.RunUntil(h.sim.Now() + Milliseconds(1));
  for (int i = 0; i < 3; ++i) h.SendVia(2);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(50));
  ASSERT_EQ(h.arrivals.size(), 6u);
  std::set<std::uint64_t> counts;
  for (const auto& a : h.arrivals) counts.insert(a.count);
  // The counter continued from the replicated state: 1..6, no reset.
  EXPECT_EQ(counts, (std::set<std::uint64_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_DOUBLE_EQ(h.rp2->stats().Get("grants_migrate"), 1.0);
  // sw2 had to wait for sw1's lease to lapse before the grant.
  const auto key = net::PartitionKey::OfFlow(TestFlow());
  EXPECT_EQ(h.store->Find(key)->owner, kSw2Ip);
}

TEST(RedPlaneSwitchTest, LeaseDenialReleasesEveryMirrorAndRetxTimer) {
  // Regression: a kLeaseDenied triggers a *cumulative* mirror release
  // (Acknowledge with UINT64_MAX).  The per-(key, seq) retransmit counters
  // used to live in a side map that this path never erased — they now live
  // in the mirror entries' own lanes and must vanish with them, along with
  // every per-entry retransmit timer.
  CountingEchoApp app;
  RedPlaneConfig config;
  config.lease_period = Milliseconds(2);
  config.request_timeout = Microseconds(200);
  // Test-only mutation: sw1 believes its lease outlives the store's, so it
  // keeps writing after sw2 takes ownership — the denial path.
  config.mutation_lease_extension = Milliseconds(100);
  sim::LinkConfig slow;
  slow.propagation = Microseconds(400);  // several timeouts per store RTT
  CoreHarness h(app, config, slow);
  h.SendVia(1);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(3));  // sw1's store lease lapses
  h.SendVia(2);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(1));  // sw2 owns the flow now
  // Burst of writes from sw1 under its (mutated) stale lease: several
  // mirrored requests in flight at once, all retransmitting.
  for (int i = 0; i < 3; ++i) h.SendVia(1);
  h.sim.Run();
  EXPECT_GE(h.rp1->stats().Get("lease_denials"), 1.0);
  EXPECT_GE(h.rp1->stats().Get("retransmits"), 1.0);
  // The one denial released every mirrored entry of the flow and cancelled
  // every retransmit timer; nothing lingers.
  EXPECT_EQ(h.sw1->mirror().NumEntries(), 0u);
  EXPECT_FALSE(h.rp1->flow_table().Find(net::PartitionKey::OfFlow(TestFlow())));
  EXPECT_EQ(h.sim.PendingEvents(), 0u);
  EXPECT_EQ(h.sim.CoarseTimersPending(), 0u);
}

TEST(RedPlaneSwitchTest, FailoverPreservesLinearizability) {
  CountingEchoApp app;
  RedPlaneConfig config;
  config.lease_period = Milliseconds(5);
  CoreHarness h(app, config);
  for (int i = 0; i < 4; ++i) h.SendVia(1);
  h.sim.Run();
  h.sw1->SetUp(false);  // fail-stop: sw1 loses everything
  for (int i = 0; i < 4; ++i) h.SendVia(2);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(50));

  // Record outputs into the history and check Definition 3.
  for (const auto& a : h.arrivals) {
    h.history.Output(a.original_id, a.time, a.count);
  }
  std::string why;
  EXPECT_TRUE(
      modelcheck::CheckCounterLinearizable(h.history.Sorted(), &why))
      << why;
  // The new switch resumed from durable state: counts continue, not reset.
  ASSERT_GE(h.arrivals.size(), 5u);
  std::set<std::uint64_t> counts;
  for (const auto& a : h.arrivals) counts.insert(a.count);
  EXPECT_EQ(*counts.rbegin(), 8u);
}

TEST(RedPlaneSwitchTest, RenewalKeepsLeaseAliveWithoutReinit) {
  ReadEchoApp app;
  RedPlaneConfig config;
  config.lease_period = Milliseconds(4);
  config.renew_interval = Milliseconds(2);
  CoreHarness h(app, config);
  // Steady traffic for many lease periods.
  for (int i = 0; i < 40; ++i) {
    h.SendVia(1);
    h.sim.RunUntil(h.sim.Now() + Milliseconds(1));
  }
  h.sim.Run();
  EXPECT_EQ(h.arrivals.size(), 40u);
  EXPECT_DOUBLE_EQ(h.rp1->stats().Get("inits_sent"), 1.0);
  EXPECT_GT(h.rp1->stats().Get("renewals_sent"), 5.0);
}

TEST(RedPlaneSwitchTest, PacketsDuringGrantWindowBufferThroughNetwork) {
  CountingEchoApp app;
  CoreHarness h(app);
  // Burst of 5 packets back to back: only the first carries the Init; the
  // rest loop through the network until the grant lands.
  for (int i = 0; i < 5; ++i) h.SendVia(1);
  h.sim.Run();
  EXPECT_DOUBLE_EQ(h.rp1->stats().Get("inits_sent"), 1.0);
  EXPECT_GT(h.rp1->stats().Get("init_loop_buffered"), 0.0);
  ASSERT_EQ(h.arrivals.size(), 5u);
  std::set<std::uint64_t> counts;
  for (const auto& a : h.arrivals) counts.insert(a.count);
  EXPECT_EQ(counts, (std::set<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(RedPlaneSwitchTest, TransitProtocolTrafficForwarded) {
  // sw2 sits between sw1 and the store for this test: a protocol packet
  // not addressed to sw2 must pass through untouched.
  ReadEchoApp app;
  CoreHarness h(app);
  Msg msg;
  msg.type = MsgType::kLeaseNewReq;
  msg.key = net::PartitionKey::OfObject(1);
  msg.reply_to = kSw1Ip;
  net::Packet pkt = MakeProtocolPacket(kSw1Ip, kStoreIp, msg);
  // Inject it into sw2's pipeline as if routed through it.
  h.sw2->HandlePacket(std::move(pkt), 0);
  h.sim.Run();
  // The store received and answered it (to sw1).
  EXPECT_DOUBLE_EQ(h.store->counters().Get("init_reqs"), 1.0);
}

TEST(RedPlaneSwitchTest, MirrorOccupancyGrowsWithLoss) {
  CountingEchoApp app;
  RedPlaneConfig config;
  config.request_timeout = Milliseconds(1);
  config.retx_scan_interval = Microseconds(200);

  auto run_with_loss = [&](double loss) {
    sim::LinkConfig link;
    link.loss_rate = loss;
    CountingEchoApp local_app;
    CoreHarness h(local_app, config, link);
    for (int i = 0; i < 200; ++i) {
      h.SendVia(1);
      h.sim.RunUntil(h.sim.Now() + Microseconds(20));
    }
    return h.sw1->mirror().PeakOccupancyBytes();
  };
  const auto peak_no_loss = run_with_loss(0.0);
  const auto peak_loss = run_with_loss(0.3);
  EXPECT_GT(peak_loss, peak_no_loss);
}

TEST(RedPlaneSwitchTest, ResetClearsFlowStateAndRecoveryReinits) {
  CountingEchoApp app;
  CoreHarness h(app);
  h.SendVia(1);
  h.sim.Run();
  h.sw1->SetUp(false);
  EXPECT_EQ(h.rp1->flow_table().Size(), 0u);
  h.sw1->SetUp(true);
  // After recovery the next packet re-acquires from the store (migrate).
  h.sim.RunUntil(h.sim.Now() + Seconds(2));  // old lease lapses
  h.SendVia(1);
  h.sim.Run();
  EXPECT_DOUBLE_EQ(h.rp1->stats().Get("grants_migrate"), 1.0);
  ASSERT_EQ(h.arrivals.size(), 2u);
  EXPECT_EQ(h.arrivals[1].count, 2u);  // continued from durable state
}

}  // namespace
}  // namespace redplane::core
