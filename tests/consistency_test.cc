// Consistency-mode spectrum tests (DESIGN.md §14).
//
// Covers the pluggable ConsistencyPolicy layer end to end:
//  * policy resolution from StateTraits (and the safe fallback when an app
//    elects mergeable mode without declaring a join),
//  * the offline per-mode oracles (bounded staleness, merge convergence),
//  * the A/B pin: selecting single-owner explicitly produces byte-identical
//    traces to the default path — the policy layer must not perturb the
//    paper's protocol,
//  * replicated-read end to end: reads served locally within the staleness
//    bound while writes are in flight, replica subscription at grant, and
//    store pushes keeping a standby switch's copy warm,
//  * mergeable end to end: zero-RTT writes on two switches concurrently,
//    with the store converging to the join of both contributions,
//  * the mode-aware monitors on live traffic: clean runs silent, the
//    stale-read mutation caught by bounded_staleness, the overwrite
//    mutation caught by merge_convergence.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/counter.h"
#include "apps/kv_store.h"
#include "audit/auditor.h"
#include "core/consistency.h"
#include "core/redplane_switch.h"
#include "modelcheck/linearizability.h"
#include "net/codec.h"
#include "obs/tracer.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/server.h"

namespace redplane {
namespace {

using core::ConsistencyMode;
using core::ConsistencyPolicy;
using core::StateTraits;

constexpr net::Ipv4Addr kSrcIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kDstIp(192, 168, 10, 1);
constexpr net::Ipv4Addr kSw1Ip(172, 16, 0, 1);
constexpr net::Ipv4Addr kSw2Ip(172, 16, 0, 2);
constexpr net::Ipv4Addr kStoreIp(172, 16, 1, 1);

// ------------------------------------------------ policy resolution ------

TEST(ConsistencyPolicyTest, DefaultTraitsResolveToSingleOwner) {
  auto policy = ConsistencyPolicy::Make(StateTraits{});
  EXPECT_EQ(policy->mode(), ConsistencyMode::kSingleOwner);
  EXPECT_TRUE(policy->LeaseRequired());
  EXPECT_FALSE(policy->AllowLocalRead(0));
}

TEST(ConsistencyPolicyTest, ReplicatedReadAllowsReadsWithinBound) {
  StateTraits traits;
  traits.mode = ConsistencyMode::kReplicatedRead;
  traits.staleness_bound = Microseconds(500);
  auto policy = ConsistencyPolicy::Make(traits);
  EXPECT_EQ(policy->mode(), ConsistencyMode::kReplicatedRead);
  EXPECT_TRUE(policy->LeaseRequired());  // writes stay lease-serialized
  EXPECT_TRUE(policy->AllowLocalRead(Microseconds(499)));
  EXPECT_TRUE(policy->AllowLocalRead(Microseconds(500)));
  EXPECT_FALSE(policy->AllowLocalRead(Microseconds(501)));
}

TEST(ConsistencyPolicyTest, MergeableUsesDeclaredJoin) {
  StateTraits traits;
  traits.mode = ConsistencyMode::kMergeable;
  traits.merge = core::MergeMaxU64;
  traits.measure = core::MeasureU64;
  traits.merge_interval = Microseconds(50);
  auto policy = ConsistencyPolicy::Make(traits);
  EXPECT_EQ(policy->mode(), ConsistencyMode::kMergeable);
  EXPECT_FALSE(policy->LeaseRequired());
  EXPECT_EQ(policy->merge_interval(), Microseconds(50));
  // States use the apps' native encoding (core::SetState).
  std::vector<std::byte> into, delta;
  core::SetState(into, std::uint64_t{3});
  core::SetState(delta, std::uint64_t{7});
  policy->Merge(into, std::span<const std::byte>(delta));
  EXPECT_EQ(core::StateAs<std::uint64_t>(into).value_or(0), 7u);
  EXPECT_EQ(policy->Measure(std::span<const std::byte>(into)), 7.0);
}

TEST(ConsistencyPolicyTest, MergeableWithoutJoinFallsBackToSingleOwner) {
  // Electing multi-writer mode without saying how writes merge would lose
  // updates silently; the factory refuses and keeps the strong mode.
  StateTraits traits;
  traits.mode = ConsistencyMode::kMergeable;
  auto policy = ConsistencyPolicy::Make(traits);
  EXPECT_EQ(policy->mode(), ConsistencyMode::kSingleOwner);
  EXPECT_TRUE(policy->LeaseRequired());
}

// ------------------------------------------------ offline oracles --------

TEST(ConsistencyOracleTest, BoundedStalenessAcceptsWithinBoundAndNoContract) {
  std::vector<modelcheck::StalenessSample> samples = {
      {1, 900, 1000},
      {1, 1000, 1000},      // exactly at the bound is legal
      {2, 5'000'000, 0},    // bound 0: no contract (mergeable-style read)
  };
  EXPECT_TRUE(modelcheck::CheckBoundedStaleness(samples));
}

TEST(ConsistencyOracleTest, BoundedStalenessRejectsBeyondBound) {
  std::vector<modelcheck::StalenessSample> samples = {{7, 1500, 1000}};
  std::string why;
  EXPECT_FALSE(modelcheck::CheckBoundedStaleness(samples, &why));
  EXPECT_NE(why.find("1500"), std::string::npos);
}

TEST(ConsistencyOracleTest, MergeConvergenceAcceptsMonotoneMeasures) {
  std::vector<modelcheck::MergeSample> samples = {
      {1, 42, 1.0}, {1, 42, 3.0}, {2, 42, 2.0}, {1, 42, 3.0}, {2, 42, 9.0},
  };
  EXPECT_TRUE(modelcheck::CheckMergeConvergence(samples));
}

TEST(ConsistencyOracleTest, MergeConvergenceRejectsLatticeDescent) {
  std::vector<modelcheck::MergeSample> samples = {
      {1, 42, 5.0}, {1, 42, 3.0},  // an overwrite erased a contribution
  };
  std::string why;
  EXPECT_FALSE(modelcheck::CheckMergeConvergence(samples, &why));
  EXPECT_NE(why.find("lattice"), std::string::npos);
}

// ------------------------------------------------ shared harness ---------

/// Two switches, one store, src/dst hosts, star-wired through a hub (the
/// audit_test topology, without loss).
struct Harness {
  Harness(core::SwitchApp& app, core::RedPlaneConfig rp_cfg,
          store::StoreConfig store_cfg, std::uint64_t seed = 7) {
    net::ResetPacketIds();
    net = std::make_unique<sim::Network>(sim, seed);
    src = net->AddNode<sim::HostNode>("src", kSrcIp);
    dst = net->AddNode<sim::HostNode>("dst", kDstIp);
    dp::SwitchConfig c1, c2;
    c1.switch_ip = kSw1Ip;
    c2.switch_ip = kSw2Ip;
    sw1 = net->AddNode<dp::SwitchNode>("sw1", c1);
    sw2 = net->AddNode<dp::SwitchNode>("sw2", c2);
    hub = net->AddNode<sim::HostNode>("hub", net::Ipv4Addr(9, 9, 9, 9));
    store = net->AddNode<store::StateStoreServer>("store0", kStoreIp,
                                                  store_cfg);
    net->Connect(src, 0, sw1, 0);
    net->Connect(src, 1, sw2, 0);
    net->Connect(dst, 0, sw1, 1);
    net->Connect(dst, 1, sw2, 1);
    net->Connect(sw1, 2, hub, 0);
    net->Connect(sw2, 2, hub, 1);
    net->Connect(store, 0, hub, 2);
    hub->SetHandler([this](sim::HostNode& self, net::Packet pkt) {
      if (!pkt.ip.has_value()) return;
      if (pkt.ip->dst == kStoreIp) self.SendTo(2, std::move(pkt));
      else if (pkt.ip->dst == kSw1Ip) self.SendTo(0, std::move(pkt));
      else if (pkt.ip->dst == kSw2Ip) self.SendTo(1, std::move(pkt));
    });
    auto forwarder = [](const net::Packet& pkt,
                        PortId) -> std::optional<PortId> {
      if (!pkt.ip.has_value()) return std::nullopt;
      if (pkt.ip->dst == kSrcIp) return PortId{0};
      if (pkt.ip->dst == kDstIp) return PortId{1};
      return PortId{2};
    };
    sw1->SetForwarder(forwarder);
    sw2->SetForwarder(forwarder);
    auto shard = [](const net::PartitionKey&) { return kStoreIp; };
    rp1 = std::make_unique<core::RedPlaneSwitch>(*sw1, app, shard, rp_cfg);
    rp2 = std::make_unique<core::RedPlaneSwitch>(*sw2, app, shard, rp_cfg);
    sw1->SetPipeline(rp1.get());
    sw2->SetPipeline(rp2.get());
    dst->SetHandler([this](sim::HostNode&, net::Packet pkt) {
      ++delivered;
      last_payload = pkt.payload.ToVector();
    });
  }

  void Run(SimDuration d) { sim.RunUntil(sim.Now() + d); }

  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  sim::HostNode* src = nullptr;
  sim::HostNode* dst = nullptr;
  sim::HostNode* hub = nullptr;
  dp::SwitchNode* sw1 = nullptr;
  dp::SwitchNode* sw2 = nullptr;
  store::StateStoreServer* store = nullptr;
  std::unique_ptr<core::RedPlaneSwitch> rp1, rp2;
  int delivered = 0;
  std::vector<std::byte> last_payload;
};

net::FlowKey TheFlow() {
  return {kSrcIp, kDstIp, 1000, 80, net::IpProto::kUdp};
}

// ------------------------------------------------ A/B bit-identity -------

/// Runs the same single-owner counter scenario and returns the full trace
/// export.  `explicit_override` pins the mode instead of relying on the
/// app's default resolution.
std::string RunSingleOwnerScenario(bool explicit_override) {
  apps::SyncCounterApp app;
  core::RedPlaneConfig rp_cfg;
  rp_cfg.lease_period = Milliseconds(5);
  rp_cfg.renew_interval = Milliseconds(2);
  if (explicit_override) {
    rp_cfg.mode_override = ConsistencyMode::kSingleOwner;
  }
  store::StoreConfig store_cfg;
  store_cfg.lease_period = Milliseconds(5);

  obs::Tracer tracer;
  Harness h(app, rp_cfg, store_cfg);
  tracer.SetClock([&h] { return h.sim.Now(); });
  tracer.SetEnabled(true);
  obs::Tracer* prev = obs::SetGlobalTracer(&tracer);

  for (int i = 0; i < 20; ++i) {
    // Alternate switches so grants, migrations, and buffering all appear
    // in the trace being pinned.
    h.src->SendTo(i % 3 == 2 ? 1 : 0, net::MakeUdpPacket(TheFlow(), 20));
    h.Run(Microseconds(300));
  }
  h.sim.Run();
  obs::SetGlobalTracer(prev);
  return tracer.ChromeTraceJson();
}

TEST(ConsistencyAbTest, SingleOwnerTracesBitIdenticalUnderExplicitSelection) {
  // The refactor's pin: routing the legacy protocol through the policy
  // layer must not change a single emitted event.  Default resolution (the
  // app declares single-owner) and explicit selection run the identical
  // deterministic scenario; their trace exports must match byte for byte.
  const std::string default_trace = RunSingleOwnerScenario(false);
  const std::string selected_trace = RunSingleOwnerScenario(true);
  EXPECT_GT(default_trace.size(), 1000u) << "scenario produced no trace";
  EXPECT_EQ(default_trace, selected_trace);
}

// ------------------------------------------------ replicated-read --------

net::FlowKey KvFlow(std::uint16_t src_port = 3333) {
  return {kSrcIp, kDstIp, src_port, apps::kKvUdpPort, net::IpProto::kUdp};
}

TEST(ReplicatedReadTest, ReadsServedLocallyWhileWritesInFlight) {
  apps::KvStoreApp app;  // declares replicated-read with the default bound
  core::RedPlaneConfig rp_cfg;
  rp_cfg.lease_period = Milliseconds(5);
  store::StoreConfig store_cfg;
  store_cfg.lease_period = Milliseconds(5);
  Harness h(app, rp_cfg, store_cfg);
  // KV replies flow back toward the client, so count them at src.
  int replies = 0;
  std::vector<std::byte> last_reply;
  h.src->SetHandler([&](sim::HostNode&, net::Packet pkt) {
    ++replies;
    last_reply = pkt.payload.ToVector();
  });

  ASSERT_EQ(h.rp1->consistency_mode(), ConsistencyMode::kReplicatedRead);

  // Warm up: one write acquires the lease and installs state.
  h.src->SendTo(0, apps::MakeKvPacket(KvFlow(), {apps::KvOp::kUpdate, 7, 1}));
  h.Run(Milliseconds(1));
  const int after_warmup = replies;

  // A write immediately followed by reads: the write's replication is in
  // flight, so single-owner would loop the reads through the store.  The
  // replicated-read policy serves them locally (staleness is a few µs,
  // far under the 1 ms default bound) and releases them at once.
  h.src->SendTo(0, apps::MakeKvPacket(KvFlow(), {apps::KvOp::kUpdate, 7, 2}));
  h.src->SendTo(0, apps::MakeKvPacket(KvFlow(), {apps::KvOp::kRead, 7, 0}));
  h.src->SendTo(0, apps::MakeKvPacket(KvFlow(), {apps::KvOp::kRead, 7, 0}));
  h.Run(Microseconds(50));  // less than one switch->store round trip
  EXPECT_GE(h.rp1->stats().Get("local_reads_served"), 2.0);
  EXPECT_GE(replies, after_warmup + 2);  // reads did not wait for the ack

  h.sim.Run();
  // The local reads returned the freshest local value (the new write).
  net::ByteReader r(last_reply);
  r.U8();
  EXPECT_EQ(r.U64(), 7u);
  EXPECT_EQ(r.U64(), 2u);
}

TEST(ReplicatedReadTest, GrantRegistersSubscriberAndPushesOnWrites) {
  apps::KvStoreApp app;
  core::RedPlaneConfig rp_cfg;
  rp_cfg.lease_period = Milliseconds(2);
  rp_cfg.renew_interval = Milliseconds(1);
  store::StoreConfig store_cfg;
  store_cfg.lease_period = Milliseconds(2);
  Harness h(app, rp_cfg, store_cfg);

  // sw2 owns the flow first and subscribes at grant install.
  h.src->SendTo(1, apps::MakeKvPacket(KvFlow(), {apps::KvOp::kUpdate, 9, 5}));
  h.Run(Milliseconds(1));
  const auto* rec = h.store->Find(*app.KeyOf(
      apps::MakeKvPacket(KvFlow(), {apps::KvOp::kRead, 9, 0})));
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->subscribers.size(), 1u);
  EXPECT_EQ(rec->subscribers[0], kSw2Ip);

  // Let sw2's lease lapse, then move the writer to sw1.  Each write sw1
  // replicates is pushed to the subscribed sw2, keeping its copy warm.
  h.Run(Milliseconds(3));
  h.src->SendTo(0, apps::MakeKvPacket(KvFlow(), {apps::KvOp::kUpdate, 9, 6}));
  h.sim.Run();
  EXPECT_GE(h.rp2->stats().Get("replica_pushes_rx"), 1.0);
  const auto entry = h.rp2->flow_table().Find(*app.KeyOf(
      apps::MakeKvPacket(KvFlow(), {apps::KvOp::kRead, 9, 0})));
  ASSERT_TRUE(entry);
  const auto kv = core::StateAs<std::uint64_t>(entry.state());
  ASSERT_TRUE(kv.has_value());
  EXPECT_EQ(*kv, 6u);
}

// ------------------------------------------------ mergeable --------------

TEST(MergeableTest, ZeroRttWritesOnTwoSwitchesConvergeAtStore) {
  apps::SyncCounterApp app;
  core::RedPlaneConfig rp_cfg;
  rp_cfg.mode_override = ConsistencyMode::kMergeable;
  rp_cfg.merge_interval = Microseconds(100);
  store::StoreConfig store_cfg;
  store_cfg.merger = app.Traits().merge;
  store_cfg.measure = app.Traits().measure;
  Harness h(app, rp_cfg, store_cfg);

  audit::Auditor auditor;
  auditor.SetClock([&h] { return h.sim.Now(); });
  auditor.ArmStandardMonitors();
  audit::SetGlobalAuditor(&auditor);
  auditor.SetEnabled(true);

  ASSERT_EQ(h.rp1->consistency_mode(), ConsistencyMode::kMergeable);

  // Both switches carry the same flow concurrently — illegal under a lease,
  // the design point here.  Every packet must release without any store
  // round trip.
  for (int i = 0; i < 10; ++i) {
    h.src->SendTo(i % 2, net::MakeUdpPacket(TheFlow(), 20));
    h.Run(Microseconds(10));
  }
  // All 10 outputs released while the first merge tick (100 µs) is still
  // pending: zero-RTT confirmed by construction.
  EXPECT_EQ(h.delivered, 10);
  h.sim.Run();

  // Both switches pushed deltas; the store converged to the join.  Each
  // switch counted its own 5 packets, so the max-join holds 5 — the
  // documented accuracy trade of mergeable counters under concurrent
  // writers (a per-switch-keyed counter would keep both).
  EXPECT_GE(h.rp1->stats().Get("merge_deltas_sent"), 1.0);
  EXPECT_GE(h.rp2->stats().Get("merge_deltas_sent"), 1.0);
  const auto* rec = h.store->Find(net::PartitionKey::OfFlow(TheFlow()));
  ASSERT_NE(rec, nullptr);
  std::uint64_t stored = 0;
  std::memcpy(&stored, rec->state.data(),
              std::min<std::size_t>(8, rec->state.size()));
  EXPECT_EQ(stored, 5u);

  // Clean mergeable traffic trips no monitor: the admission taps exempted
  // the key from single-owner, and the merge measures only went up.
  EXPECT_EQ(auditor.violations().size(), 0u);
}

TEST(MergeableTest, OverwriteMutationTripsMergeConvergenceMonitor) {
  apps::SyncCounterApp app;
  core::RedPlaneConfig rp_cfg;
  rp_cfg.mode_override = ConsistencyMode::kMergeable;
  rp_cfg.merge_interval = Microseconds(100);
  store::StoreConfig store_cfg;
  store_cfg.merger = app.Traits().merge;
  store_cfg.measure = app.Traits().measure;
  store_cfg.mutations.overwrite_instead_of_merge = true;
  Harness h(app, rp_cfg, store_cfg);

  audit::Auditor auditor;
  auditor.SetClock([&h] { return h.sim.Now(); });
  auditor.ArmStandardMonitors();
  audit::SetGlobalAuditor(&auditor);
  auditor.SetEnabled(true);

  // Imbalanced concurrent writers: sw1 counts fast, sw2 slowly.  Under the
  // mutation, sw2's smaller delta overwrites sw1's larger contribution at
  // the store, so the merged measure decreases — merge_convergence fires.
  for (int i = 0; i < 30; ++i) {
    h.src->SendTo(i % 5 == 4 ? 1 : 0, net::MakeUdpPacket(TheFlow(), 20));
    h.Run(Microseconds(40));
  }
  h.sim.Run();
  EXPECT_GE(auditor.ViolationCount("merge_convergence"), 1u);
}

// ------------------------------------------------ staleness mutation -----

TEST(ReplicatedReadTest, StaleReadMutationTripsBoundedStalenessMonitor) {
  apps::KvStoreApp app;
  core::RedPlaneConfig rp_cfg;
  rp_cfg.lease_period = Milliseconds(5);
  rp_cfg.staleness_bound = Microseconds(50);  // tight, honest contract
  rp_cfg.mutation_stale_reads = true;         // ...which the switch ignores
  rp_cfg.request_timeout = Milliseconds(2);
  store::StoreConfig store_cfg;
  store_cfg.lease_period = Milliseconds(5);
  // Slow the store so write acks lag and local reads grow stale.
  store_cfg.service_time = Microseconds(400);
  Harness h(app, rp_cfg, store_cfg);

  audit::Auditor auditor;
  auditor.SetClock([&h] { return h.sim.Now(); });
  auditor.ArmStandardMonitors();
  audit::SetGlobalAuditor(&auditor);
  auditor.SetEnabled(true);

  h.src->SendTo(0, apps::MakeKvPacket(KvFlow(), {apps::KvOp::kUpdate, 1, 1}));
  h.Run(Milliseconds(1));
  // Pile writes so acks stay outstanding, then keep reading: staleness of
  // the local serve climbs past 50 µs while the mutation serves anyway.
  for (int i = 0; i < 8; ++i) {
    h.src->SendTo(0, apps::MakeKvPacket(
                         KvFlow(), {apps::KvOp::kUpdate, 1, 2 + (unsigned)i}));
  }
  for (int i = 0; i < 6; ++i) {
    h.Run(Microseconds(100));
    h.src->SendTo(0, apps::MakeKvPacket(KvFlow(), {apps::KvOp::kRead, 1, 0}));
  }
  h.sim.Run();
  EXPECT_GE(auditor.ViolationCount("bounded_staleness"), 1u);
  // The violation is mode-specific: nothing else fired.
  EXPECT_EQ(auditor.ViolationCount("bounded_staleness"),
            auditor.violations().size());
}

}  // namespace
}  // namespace redplane
