// Multi-shard state store: flows partition across independent store shards
// via the PartitionMap (§5.1.1, "we partition it across multiple shards by
// flow"); each shard owns its flows' leases independently, and failover
// migrates each flow from its own shard.
#include <gtest/gtest.h>

#include "tests/audit_diag.h"

#include <set>

#include "core/redplane_switch.h"
#include "net/codec.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/partition.h"
#include "statestore/server.h"

namespace redplane {
namespace {

constexpr net::Ipv4Addr kSrcIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kDstIp(192, 168, 10, 1);
constexpr net::Ipv4Addr kSw1Ip(172, 16, 0, 1);
constexpr net::Ipv4Addr kSw2Ip(172, 16, 0, 2);

class CounterApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "counter"; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>& state) override {
    core::ProcessResult result;
    core::SetState(state,
                   core::StateAs<std::uint64_t>(state).value_or(0) + 1);
    result.state_modified = true;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

struct MultiShardHarness {
  explicit MultiShardHarness(int num_shards) {
    net = std::make_unique<sim::Network>(sim, 77);
    src = net->AddNode<sim::HostNode>("src", kSrcIp);
    dst = net->AddNode<sim::HostNode>("dst", kDstIp);
    dp::SwitchConfig c1, c2;
    c1.switch_ip = kSw1Ip;
    c2.switch_ip = kSw2Ip;
    sw1 = net->AddNode<dp::SwitchNode>("sw1", c1);
    sw2 = net->AddNode<dp::SwitchNode>("sw2", c2);
    hub = net->AddNode<sim::HostNode>("hub", net::Ipv4Addr(9, 9, 9, 9));
    net->Connect(src, 0, sw1, 0);
    net->Connect(src, 1, sw2, 0);
    net->Connect(dst, 0, sw1, 1);
    net->Connect(dst, 1, sw2, 1);
    net->Connect(sw1, 2, hub, 0);
    net->Connect(sw2, 2, hub, 1);

    store::StoreConfig store_cfg;
    store_cfg.lease_period = Milliseconds(10);
    std::vector<net::Ipv4Addr> shard_ips;
    for (int i = 0; i < num_shards; ++i) {
      auto* server = net->AddNode<store::StateStoreServer>(
          "shard" + std::to_string(i), net::Ipv4Addr(172, 16, 1, 1 + i),
          store_cfg);
      net->Connect(server, 0, hub, static_cast<PortId>(2 + i));
      shards.push_back(server);
      shard_ips.push_back(server->ip());
    }
    map = store::PartitionMap(shard_ips);

    hub->SetHandler([this](sim::HostNode& self, net::Packet pkt) {
      if (!pkt.ip.has_value()) return;
      if (pkt.ip->dst == kSw1Ip) {
        self.SendTo(0, std::move(pkt));
        return;
      }
      if (pkt.ip->dst == kSw2Ip) {
        self.SendTo(1, std::move(pkt));
        return;
      }
      for (std::size_t i = 0; i < shards.size(); ++i) {
        if (pkt.ip->dst == shards[i]->ip()) {
          self.SendTo(static_cast<PortId>(2 + i), std::move(pkt));
          return;
        }
      }
    });
    auto forwarder = [](const net::Packet& pkt,
                        PortId) -> std::optional<PortId> {
      if (!pkt.ip.has_value()) return std::nullopt;
      if (pkt.ip->dst == kSrcIp) return PortId{0};
      if (pkt.ip->dst == kDstIp) return PortId{1};
      return PortId{2};
    };
    sw1->SetForwarder(forwarder);
    sw2->SetForwarder(forwarder);

    core::RedPlaneConfig rp_cfg;
    rp_cfg.lease_period = Milliseconds(10);
    auto shard_for = [this](const net::PartitionKey& key) {
      return map.ShardFor(key);
    };
    rp1 = std::make_unique<core::RedPlaneSwitch>(*sw1, app, shard_for, rp_cfg);
    rp2 = std::make_unique<core::RedPlaneSwitch>(*sw2, app, shard_for, rp_cfg);
    sw1->SetPipeline(rp1.get());
    sw2->SetPipeline(rp2.get());
    dst->SetHandler([this](sim::HostNode&, net::Packet) { ++delivered; });
  }

  net::FlowKey FlowI(int i) {
    return {kSrcIp, kDstIp, static_cast<std::uint16_t>(1000 + i), 80,
            net::IpProto::kUdp};
  }

  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  sim::HostNode* src;
  sim::HostNode* dst;
  sim::HostNode* hub;
  dp::SwitchNode* sw1;
  dp::SwitchNode* sw2;
  std::vector<store::StateStoreServer*> shards;
  store::PartitionMap map;
  CounterApp app;
  std::unique_ptr<core::RedPlaneSwitch> rp1;
  std::unique_ptr<core::RedPlaneSwitch> rp2;
  int delivered = 0;
};

class MultiShard : public ::testing::TestWithParam<int> {};

TEST_P(MultiShard, FlowsPartitionAcrossShards) {
  MultiShardHarness h(GetParam());
  const int flows = 40;
  for (int i = 0; i < flows; ++i) {
    for (int p = 0; p < 3; ++p) {
      h.src->SendTo(0, net::MakeUdpPacket(h.FlowI(i), 20));
      h.sim.RunUntil(h.sim.Now() + Microseconds(200));
    }
  }
  h.sim.Run();
  EXPECT_EQ(h.delivered, flows * 3);

  // Every flow's record lives on exactly the shard the map names, with the
  // full count; every shard carries some of the load.
  std::set<std::size_t> used;
  for (int i = 0; i < flows; ++i) {
    const auto key = net::PartitionKey::OfFlow(h.FlowI(i));
    const std::size_t idx = h.map.ShardIndexFor(key);
    used.insert(idx);
    for (std::size_t s = 0; s < h.shards.size(); ++s) {
      const auto* rec = h.shards[s]->Find(key);
      if (s == idx) {
        ASSERT_NE(rec, nullptr) << "flow " << i;
        EXPECT_EQ(rec->last_applied_seq, 3u);
      } else {
        EXPECT_EQ(rec, nullptr) << "flow " << i << " leaked to shard " << s;
      }
    }
  }
  EXPECT_EQ(used.size(), h.shards.size());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, MultiShard, ::testing::Values(1, 2, 3));

TEST(MultiShardTest, FailoverMigratesEachFlowFromItsOwnShard) {
  MultiShardHarness h(3);
  const int flows = 12;
  for (int i = 0; i < flows; ++i) {
    h.src->SendTo(0, net::MakeUdpPacket(h.FlowI(i), 20));
  }
  h.sim.RunUntil(h.sim.Now() + Milliseconds(5));
  EXPECT_EQ(h.delivered, flows);

  // Reroute everything to sw2 (sw1 fails); each flow migrates from its
  // responsible shard and the counters continue at 2.
  h.sw1->SetUp(false);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(20));  // leases lapse
  for (int i = 0; i < flows; ++i) {
    h.src->SendTo(1, net::MakeUdpPacket(h.FlowI(i), 20));
  }
  h.sim.RunUntil(h.sim.Now() + Milliseconds(50));
  EXPECT_EQ(h.delivered, 2 * flows);
  for (int i = 0; i < flows; ++i) {
    const auto key = net::PartitionKey::OfFlow(h.FlowI(i));
    const auto* rec = h.shards[h.map.ShardIndexFor(key)]->Find(key);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->last_applied_seq, 2u);
    EXPECT_EQ(rec->owner, kSw2Ip);
  }
  EXPECT_GE(h.rp2->stats().Get("grants_migrate"), static_cast<double>(flows));
}

}  // namespace
}  // namespace redplane
