// Chain reconfiguration tests: the store keeps serving through replica
// failures (head, middle, tail), and recovered replicas rejoin as tails
// after a resync.
#include <gtest/gtest.h>

#include "core/redplane_switch.h"
#include "net/codec.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/chain_manager.h"

namespace redplane::store {
namespace {

constexpr net::Ipv4Addr kSrcIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kDstIp(192, 168, 10, 1);
constexpr net::Ipv4Addr kSwIp(172, 16, 0, 1);

net::FlowKey TheFlow() {
  return {kSrcIp, kDstIp, 1000, 80, net::IpProto::kUdp};
}

class CounterApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "counter"; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>& state) override {
    core::ProcessResult result;
    core::SetState(state,
                   core::StateAs<std::uint64_t>(state).value_or(0) + 1);
    result.state_modified = true;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

/// One RedPlane switch against a managed chain of 3, with a hub routing by
/// destination address so reconfigured chains keep communicating.
struct ChainHarness {
  ChainHarness() {
    net = std::make_unique<sim::Network>(sim, 31);
    src = net->AddNode<sim::HostNode>("src", kSrcIp);
    dst = net->AddNode<sim::HostNode>("dst", kDstIp);
    dp::SwitchConfig cfg;
    cfg.switch_ip = kSwIp;
    sw = net->AddNode<dp::SwitchNode>("sw", cfg);
    hub = net->AddNode<sim::HostNode>("hub", net::Ipv4Addr(9, 9, 9, 9));
    net->Connect(src, 0, sw, 0);
    net->Connect(dst, 0, sw, 1);
    net->Connect(sw, 2, hub, 0);
    StoreConfig store_cfg;
    store_cfg.lease_period = Milliseconds(20);
    for (int i = 0; i < 3; ++i) {
      auto* server = net->AddNode<StateStoreServer>(
          "store" + std::to_string(i), net::Ipv4Addr(172, 16, 1, 1 + i),
          store_cfg);
      net->Connect(server, 0, hub, static_cast<PortId>(1 + i));
      replicas.push_back(server);
    }
    hub->SetHandler([this](sim::HostNode& self, net::Packet pkt) {
      if (!pkt.ip.has_value()) return;
      if (pkt.ip->dst == kSwIp) {
        self.SendTo(0, std::move(pkt));
        return;
      }
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (pkt.ip->dst == replicas[i]->ip()) {
          self.SendTo(static_cast<PortId>(1 + i), std::move(pkt));
          return;
        }
      }
    });
    sw->SetForwarder([](const net::Packet& pkt,
                        PortId) -> std::optional<PortId> {
      if (!pkt.ip.has_value()) return std::nullopt;
      if (pkt.ip->dst == kSrcIp) return PortId{0};
      if (pkt.ip->dst == kDstIp) return PortId{1};
      return PortId{2};
    });

    ChainManagerConfig mgr_cfg;
    mgr_cfg.probe_interval = Milliseconds(2);
    mgr_cfg.resync_delay = Milliseconds(1);
    manager = std::make_unique<ChainManager>(sim, replicas, mgr_cfg);
    manager->Start();

    core::RedPlaneConfig rp_cfg;
    rp_cfg.lease_period = Milliseconds(20);
    rp_cfg.renew_interval = Milliseconds(10);
    rp_cfg.request_timeout = Microseconds(300);
    rp_cfg.retx_scan_interval = Microseconds(100);
    rp = std::make_unique<core::RedPlaneSwitch>(
        *sw, app,
        [this](const net::PartitionKey&) { return manager->HeadIp(); },
        rp_cfg);
    sw->SetPipeline(rp.get());
    dst->SetHandler([this](sim::HostNode&, net::Packet) { ++delivered; });
  }

  /// Sends `n` packets paced 1 ms apart.
  void SendPaced(int n) {
    for (int i = 0; i < n; ++i) {
      src->Send(net::MakeUdpPacket(TheFlow(), 20));
      sim.RunUntil(sim.Now() + Milliseconds(1));
    }
  }

  std::uint64_t StoreSeqAtHead() const {
    const auto* rec =
        manager->ActiveChain().front()->Find(net::PartitionKey::OfFlow(TheFlow()));
    return rec == nullptr ? 0 : rec->last_applied_seq;
  }

  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  sim::HostNode* src;
  sim::HostNode* dst;
  sim::HostNode* hub;
  dp::SwitchNode* sw;
  std::vector<StateStoreServer*> replicas;
  std::unique_ptr<ChainManager> manager;
  CounterApp app;
  std::unique_ptr<core::RedPlaneSwitch> rp;
  int delivered = 0;
};

TEST(ChainManagerTest, InitialWiringHeadMiddleTail) {
  ChainHarness h;
  EXPECT_EQ(h.manager->HeadIp(), h.replicas[0]->ip());
  EXPECT_FALSE(h.replicas[0]->IsTail());
  EXPECT_FALSE(h.replicas[1]->IsTail());
  EXPECT_TRUE(h.replicas[2]->IsTail());
}

TEST(ChainManagerTest, TailFailureSplicedAndServiceContinues) {
  ChainHarness h;
  h.SendPaced(5);
  EXPECT_EQ(h.delivered, 5);
  h.replicas[2]->SetUp(false);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(10));
  EXPECT_EQ(h.manager->ActiveChain().size(), 2u);
  EXPECT_TRUE(h.replicas[1]->IsTail());
  h.SendPaced(5);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(50));
  EXPECT_EQ(h.delivered, 10);
  EXPECT_EQ(h.StoreSeqAtHead(), 10u);
}

TEST(ChainManagerTest, MiddleFailureResyncsTail) {
  ChainHarness h;
  h.SendPaced(5);
  h.replicas[1]->SetUp(false);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(10));
  ASSERT_EQ(h.manager->ActiveChain().size(), 2u);
  EXPECT_EQ(h.manager->ActiveChain()[1], h.replicas[2]);
  h.SendPaced(5);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(50));
  EXPECT_EQ(h.delivered, 10);
  // Both survivors agree on the flow.
  const auto key = net::PartitionKey::OfFlow(TheFlow());
  EXPECT_EQ(h.replicas[0]->Find(key)->last_applied_seq, 10u);
  EXPECT_EQ(h.replicas[2]->Find(key)->last_applied_seq, 10u);
}

TEST(ChainManagerTest, HeadFailurePromotesSuccessor) {
  ChainHarness h;
  h.SendPaced(5);
  h.replicas[0]->SetUp(false);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(10));
  EXPECT_EQ(h.manager->HeadIp(), h.replicas[1]->ip());
  // The switch's dynamic shard lookup sends new requests to the new head;
  // the counter continues from the replicated value.
  h.SendPaced(5);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(100));
  EXPECT_EQ(h.delivered, 10);
  EXPECT_EQ(h.StoreSeqAtHead(), 10u);
}

TEST(ChainManagerTest, RecoveredReplicaRejoinsAsTailWithState) {
  ChainHarness h;
  h.SendPaced(5);
  h.replicas[2]->SetUp(false);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(10));
  EXPECT_EQ(h.manager->ActiveChain().size(), 2u);
  h.SendPaced(3);

  h.replicas[2]->SetUp(true);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(20));
  ASSERT_EQ(h.manager->ActiveChain().size(), 3u);
  EXPECT_EQ(h.manager->ActiveChain().back(), h.replicas[2]);
  EXPECT_TRUE(h.replicas[2]->IsTail());
  // The rejoined tail was resynced: it already holds the flow.
  const auto key = net::PartitionKey::OfFlow(TheFlow());
  ASSERT_NE(h.replicas[2]->Find(key), nullptr);
  EXPECT_GE(h.replicas[2]->Find(key)->last_applied_seq, 8u);

  // And participates in new commits.
  h.SendPaced(2);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(50));
  EXPECT_EQ(h.replicas[2]->Find(key)->last_applied_seq, 10u);
}

TEST(ChainManagerTest, ResyncDoesNotMutateSourceReplica) {
  ChainHarness h;
  h.SendPaced(5);

  // ExportFlows is a cheap const view, not a copy: same address every call.
  const auto* export1 = &h.replicas[0]->ExportFlows();
  const auto* export2 = &h.replicas[0]->ExportFlows();
  EXPECT_EQ(export1, export2);

  // Snapshot the head's records before a splice-triggered resync.
  const auto before = *export1;  // deliberate deep copy for comparison
  ASSERT_FALSE(before.empty());

  h.replicas[1]->SetUp(false);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(10));  // probe + resync fire
  ASSERT_EQ(h.manager->ActiveChain().size(), 2u);

  // The resync copied state into the tail without disturbing the source.
  const auto& after = h.replicas[0]->ExportFlows();
  ASSERT_EQ(after.size(), before.size());
  for (const auto& [key, rec] : before) {
    const auto it = after.find(key);
    ASSERT_NE(it, after.end());
    EXPECT_EQ(it->second.last_applied_seq, rec.last_applied_seq);
    EXPECT_EQ(it->second.state, rec.state);
  }
  // The target really did receive the records.
  const auto key = net::PartitionKey::OfFlow(TheFlow());
  ASSERT_NE(h.replicas[2]->Find(key), nullptr);
  EXPECT_EQ(h.replicas[2]->Find(key)->last_applied_seq,
            before.at(key).last_applied_seq);
}

TEST(ChainManagerTest, SurvivesSequentialFailuresDownToOne) {
  ChainHarness h;
  ChainManagerConfig cfg;
  h.SendPaced(3);
  h.replicas[2]->SetUp(false);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(10));
  h.replicas[0]->SetUp(false);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(10));
  ASSERT_EQ(h.manager->ActiveChain().size(), 1u);
  EXPECT_EQ(h.manager->ActiveChain()[0], h.replicas[1]);
  EXPECT_TRUE(h.replicas[1]->IsTail());
  h.SendPaced(3);
  h.sim.RunUntil(h.sim.Now() + Milliseconds(100));
  EXPECT_EQ(h.delivered, 6);
  EXPECT_EQ(h.StoreSeqAtHead(), 6u);
}

TEST(ChainManagerTest, WritesDuringReconfigurationEventuallyDurable) {
  ChainHarness h;
  // Fail the head mid-burst: requests in flight to the old head are lost;
  // retransmission redirects them to the new head.
  for (int i = 0; i < 3; ++i) {
    h.src->Send(net::MakeUdpPacket(TheFlow(), 20));
    h.sim.RunUntil(h.sim.Now() + Milliseconds(1));
  }
  h.replicas[0]->SetUp(false);
  for (int i = 0; i < 3; ++i) {
    h.src->Send(net::MakeUdpPacket(TheFlow(), 20));
    h.sim.RunUntil(h.sim.Now() + Milliseconds(1));
  }
  h.sim.RunUntil(h.sim.Now() + Milliseconds(200));
  // All processed writes are durable at the current head; the mirror is
  // drained.
  const auto key = net::PartitionKey::OfFlow(TheFlow());
  const auto entry = h.rp->flow_table().Find(key);
  ASSERT_TRUE(entry);
  EXPECT_EQ(h.StoreSeqAtHead(), entry.cur_seq());
  EXPECT_EQ(h.sw->mirror().NumEntries(), 0u);
}

}  // namespace
}  // namespace redplane::store
