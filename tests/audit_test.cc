// Online protocol auditor: monitor unit tests, causal-slice extraction,
// tracer orphan-end marking, the linearizability feed, and — the core of
// the suite — mutation-detection tests: each protocol mutation seeded
// behind a test-only hook must be caught by exactly the expected monitor
// with a non-empty happens-before-closed causal slice, while the identical
// clean configuration stays silent.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "audit/auditor.h"
#include "audit/diag.h"
#include "audit/lin_feed.h"
#include "audit/monitors.h"
#include "audit/slice.h"
#include "core/consistency.h"
#include "core/redplane_switch.h"
#include "net/codec.h"
#include "obs/json.h"
#include "obs/tracer.h"
#include "sim/host.h"
#include "sim/link.h"
#include "sim/network.h"
#include "statestore/server.h"
#include "tests/audit_diag.h"

namespace redplane {
namespace {

using audit::Auditor;
using audit::Tap;

// ---------------------------------------------------------------------------
// Monitor unit tests: feed tap events straight into an auditor.

struct AuditorFixture : public ::testing::Test {
  void SetUp() override {
    auditor.SetClock([this] { return now; });
    auditor.ArmStandardMonitors();
    auditor.SetEnabled(true);
    sw1 = auditor.Intern("sw1");
    sw2 = auditor.Intern("sw2");
    store = auditor.Intern("store0");
  }

  std::size_t Total() const { return auditor.violations().size(); }

  Auditor auditor;
  SimTime now = 0;
  std::uint16_t sw1 = 0, sw2 = 0, store = 0;
};

constexpr std::uint64_t kKey = 0xabcdef0123456789ull;

TEST_F(AuditorFixture, SingleOwnerFlagsTwoLiveClaims) {
  now = 100;
  auditor.Publish(sw1, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/1'000'000);
  now = 200;
  auditor.Publish(sw2, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/2'000'000);
  EXPECT_EQ(auditor.ViolationCount("single_owner"), 1u);
  EXPECT_EQ(Total(), 1u);
  const auto& v = auditor.violations()[0];
  EXPECT_EQ(v.at.key, kKey);
  EXPECT_NE(v.detail.find("sw1"), std::string::npos);
  EXPECT_NE(v.detail.find("sw2"), std::string::npos);
}

TEST_F(AuditorFixture, SingleOwnerPrunesExpiredClaims) {
  now = 100;
  auditor.Publish(sw1, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/500);
  now = 1000;  // sw1's believed expiry has certainly passed
  auditor.Publish(sw2, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/5000);
  EXPECT_EQ(Total(), 0u);
}

TEST_F(AuditorFixture, SingleOwnerReleaseAllClearsComponent) {
  now = 100;
  auditor.Publish(sw1, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/1'000'000);
  auditor.Publish(sw1, Tap::kLeaseReleased, 0);  // key 0: dropped everything
  now = 200;
  auditor.Publish(sw2, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/2'000'000);
  EXPECT_EQ(Total(), 0u);
}

TEST_F(AuditorFixture, SingleOwnerSameComponentRenewIsFine) {
  now = 100;
  auditor.Publish(sw1, Tap::kLeaseAcquired, kKey, 1, 1'000'000);
  now = 500'000;
  auditor.Publish(sw1, Tap::kLeaseAcquired, kKey, 2, 1'500'000);  // renewal
  EXPECT_EQ(Total(), 0u);
}

// --- per-mode monitor subscription (DESIGN.md §14) -------------------------
// Monitors subscribe per consistency mode: a flow admitted under a weaker
// mode must not be judged by a stronger mode's invariant.

TEST_F(AuditorFixture, SingleOwnerSkipsFlowsAdmittedUnderMergeable) {
  const auto mergeable =
      static_cast<std::uint64_t>(core::ConsistencyMode::kMergeable);
  auditor.Publish(sw1, Tap::kFlowAdmitted, kKey, 0, mergeable);
  now = 100;
  auditor.Publish(sw1, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/1'000'000);
  now = 200;
  auditor.Publish(sw2, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/2'000'000);
  // Two concurrent writers are the point of mergeable mode, not a violation.
  EXPECT_EQ(Total(), 0u);
  // The exemption is per-key: an unannounced key still gets the invariant.
  now = 300;
  auditor.Publish(sw1, Tap::kLeaseAcquired, kKey + 1, 1, 1'000'000);
  auditor.Publish(sw2, Tap::kLeaseAcquired, kKey + 1, 1, 2'000'000);
  EXPECT_EQ(auditor.ViolationCount("single_owner"), 1u);
}

TEST_F(AuditorFixture, SingleOwnerExemptionAppliesToEarlierClaims) {
  // Admission can reach the auditor after a lease claim (taps are emitted
  // from different components); the exemption must retroactively drop any
  // holders already recorded for the key.
  now = 100;
  auditor.Publish(sw1, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/1'000'000);
  auditor.Publish(
      sw2, Tap::kFlowAdmitted, kKey, 0,
      static_cast<std::uint64_t>(core::ConsistencyMode::kMergeable));
  now = 200;
  auditor.Publish(sw2, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/2'000'000);
  EXPECT_EQ(Total(), 0u);
}

TEST_F(AuditorFixture, SingleOwnerStillBindsSingleOwnerAdmissions) {
  auditor.Publish(
      sw1, Tap::kFlowAdmitted, kKey, 0,
      static_cast<std::uint64_t>(core::ConsistencyMode::kSingleOwner));
  now = 100;
  auditor.Publish(sw1, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/1'000'000);
  now = 200;
  auditor.Publish(sw2, Tap::kLeaseAcquired, kKey, 1, /*expiry=*/2'000'000);
  EXPECT_EQ(auditor.ViolationCount("single_owner"), 1u);
}

TEST_F(AuditorFixture, BoundedStalenessBindsOnlyReplicatedReadFlows) {
  const auto replicated =
      static_cast<std::uint64_t>(core::ConsistencyMode::kReplicatedRead);
  const auto mergeable =
      static_cast<std::uint64_t>(core::ConsistencyMode::kMergeable);
  // A mergeable flow serves arbitrarily stale local reads legally.
  auditor.Publish(sw1, Tap::kFlowAdmitted, kKey, 0, mergeable);
  auditor.Publish(sw1, Tap::kLocalReadServed, kKey, 0, /*bound=*/1'000,
                  /*staleness=*/9e12);
  EXPECT_EQ(Total(), 0u);
  // A replicated-read flow with the same staleness violates its contract.
  auditor.Publish(sw2, Tap::kFlowAdmitted, kKey + 1, 0, replicated);
  auditor.Publish(sw2, Tap::kLocalReadServed, kKey + 1, 0, /*bound=*/1'000,
                  /*staleness=*/2'000.0);
  EXPECT_EQ(auditor.ViolationCount("bounded_staleness"), 1u);
  // Latched per episode: repeat violations don't double-count, recovery
  // re-arms.
  auditor.Publish(sw2, Tap::kLocalReadServed, kKey + 1, 0, 1'000, 3'000.0);
  EXPECT_EQ(auditor.ViolationCount("bounded_staleness"), 1u);
  auditor.Publish(sw2, Tap::kLocalReadServed, kKey + 1, 0, 1'000, 500.0);
  auditor.Publish(sw2, Tap::kLocalReadServed, kKey + 1, 0, 1'000, 2'000.0);
  EXPECT_EQ(auditor.ViolationCount("bounded_staleness"), 2u);
}

TEST_F(AuditorFixture, MergeConvergenceFlagsLatticeRegression) {
  auditor.Publish(store, Tap::kMergeApplied, kKey, 1, 0, /*measure=*/5.0);
  auditor.Publish(store, Tap::kMergeApplied, kKey, 2, 0, 7.0);
  auditor.Publish(store, Tap::kMergeApplied, kKey, 3, 0, 6.0);  // went down
  EXPECT_EQ(auditor.ViolationCount("merge_convergence"), 1u);
  // A store reset re-baselines: the rebuilt state may start lower.
  auditor.Publish(store, Tap::kStoreReset, 0);
  auditor.Publish(store, Tap::kMergeApplied, kKey, 4, 0, 1.0);
  EXPECT_EQ(auditor.ViolationCount("merge_convergence"), 1u);
}

TEST_F(AuditorFixture, SeqMonotonicFlagsReapply) {
  auditor.Publish(store, Tap::kStoreApplied, kKey, 1);
  auditor.Publish(store, Tap::kStoreApplied, kKey, 2);
  auditor.Publish(store, Tap::kStoreApplied, kKey, 2);  // filter regressed
  EXPECT_EQ(auditor.ViolationCount("seq_monotonic"), 1u);
  EXPECT_EQ(Total(), 1u);
}

TEST_F(AuditorFixture, SeqMonotonicTracksReplicasIndependently) {
  const std::uint16_t replica = auditor.Intern("store1");
  auditor.Publish(store, Tap::kStoreApplied, kKey, 5);
  auditor.Publish(replica, Tap::kStoreApplied, kKey, 5);  // chain forward
  EXPECT_EQ(Total(), 0u);
}

TEST_F(AuditorFixture, SeqMonotonicForgivesFailStoppedReplica) {
  auditor.Publish(store, Tap::kStoreApplied, kKey, 5);
  auditor.Publish(store, Tap::kStoreReset, 0);  // DRAM records gone
  auditor.Publish(store, Tap::kStoreApplied, kKey, 3);  // resync re-baseline
  EXPECT_EQ(Total(), 0u);
  auditor.Publish(store, Tap::kStoreApplied, kKey, 3);  // but still monotonic
  EXPECT_EQ(auditor.ViolationCount("seq_monotonic"), 1u);
}

TEST_F(AuditorFixture, ChainCommitFlagsAckBeforeTailCommit) {
  auditor.Publish(sw1, Tap::kAckReleased, kKey, 3);
  EXPECT_EQ(auditor.ViolationCount("chain_commit"), 1u);
  EXPECT_EQ(Total(), 1u);
}

TEST_F(AuditorFixture, ChainCommitSilentAfterTailCommit) {
  auditor.Publish(store, Tap::kTailCommit, kKey, 3);
  auditor.Publish(sw1, Tap::kAckReleased, kKey, 3);
  EXPECT_EQ(Total(), 0u);
}

TEST_F(AuditorFixture, ChainCommitAcceptsDuplicateAndResyncEvidence) {
  auditor.Publish(store, Tap::kDupAckDurable, kKey, 2);
  auditor.Publish(sw1, Tap::kAckReleased, kKey, 2);
  auditor.Publish(store, Tap::kResyncCommit, kKey, 4);
  auditor.Publish(sw1, Tap::kAckReleased, kKey, 4);
  EXPECT_EQ(Total(), 0u);
}

TEST_F(AuditorFixture, ChainCommitIgnoresSeqZeroAcks) {
  auditor.Publish(sw1, Tap::kAckReleased, kKey, 0);  // read / lease-only ack
  EXPECT_EQ(Total(), 0u);
}

TEST_F(AuditorFixture, EpsilonBoundLatchesPerEpisode) {
  auditor.Publish(sw1, Tap::kEpsilonSample, kKey, 0, /*bound=*/1'000'000,
                  /*staleness=*/2'000'000.0);
  auditor.Publish(sw1, Tap::kEpsilonSample, kKey, 0, 1'000'000, 3'000'000.0);
  EXPECT_EQ(auditor.ViolationCount("epsilon_bound"), 1u);  // one episode
  auditor.Publish(sw1, Tap::kEpsilonSample, kKey, 0, 1'000'000, 500'000.0);
  auditor.Publish(sw1, Tap::kEpsilonSample, kKey, 0, 1'000'000, 2'000'000.0);
  EXPECT_EQ(auditor.ViolationCount("epsilon_bound"), 2u);  // new episode
}

TEST_F(AuditorFixture, EpsilonBoundZeroBoundIsUnbounded) {
  auditor.Publish(sw1, Tap::kEpsilonSample, kKey, 0, /*bound=*/0,
                  /*staleness=*/9e12);
  EXPECT_EQ(Total(), 0u);
}

TEST_F(AuditorFixture, ClearFindingsDropsViolationsAndMonitorState) {
  auditor.Publish(sw1, Tap::kAckReleased, kKey, 3);
  ASSERT_EQ(Total(), 1u);
  auditor.ClearFindings();
  EXPECT_EQ(Total(), 0u);
  // Monitor state was reset too: the same ack violates again.
  auditor.Publish(sw1, Tap::kAckReleased, kKey, 3);
  EXPECT_EQ(Total(), 1u);
}

TEST_F(AuditorFixture, StoredViolationsAreCapped) {
  for (int i = 0; i < 200; ++i) {
    auditor.Publish(sw1, Tap::kAckReleased, kKey + i, 1);
  }
  EXPECT_EQ(auditor.violations().size(), Auditor::kMaxStoredViolations);
  EXPECT_EQ(auditor.ViolationCount("chain_commit"), 200u);  // still counted
}

TEST_F(AuditorFixture, ViolationCarriesSliceWhenTracerAttached) {
  obs::Tracer tracer;
  SimTime t = 0;
  tracer.SetClock([&t] { return t; });
  tracer.SetEnabled(true);
  const std::uint16_t c = tracer.Intern("sw1/rp");
  t = 100;
  tracer.Emit(c, obs::Ev::kReplicationSent, kKey, 3);
  t = 300;
  tracer.Emit(c, obs::Ev::kAckReleased, kKey, 3);
  auditor.SetTracer(&tracer);
  now = 300;
  auditor.Publish(sw1, Tap::kAckReleased, kKey, 3);
  ASSERT_EQ(Total(), 1u);
  const auto& slice = auditor.violations()[0].slice;
  EXPECT_FALSE(slice.empty());
  EXPECT_LE(slice.events.size(), audit::kMaxSliceEvents);
  EXPECT_TRUE(audit::IsHappensBeforeClosed(slice));
}

// ---------------------------------------------------------------------------
// Causal-slice extraction.

TEST(SliceTest, KeepsFlowEventsAndDropsOthers) {
  obs::Tracer tracer;
  SimTime t = 0;
  tracer.SetClock([&t] { return t; });
  tracer.SetEnabled(true);
  const std::uint16_t c = tracer.Intern("sw");
  t = 100;
  tracer.Emit(c, obs::Ev::kReplicationSent, /*flow=*/0xAB, /*seq=*/7);
  t = 200;
  tracer.Emit(c, obs::Ev::kIngress, /*flow=*/0xCD);  // unrelated flow
  t = 300;
  tracer.Emit(c, obs::Ev::kAckReleased, 0xAB, 7);

  const audit::CausalSlice slice = audit::ExtractSlice(tracer, 0xAB, 300);
  ASSERT_EQ(slice.events.size(), 2u);
  EXPECT_EQ(slice.events[0].ev, obs::Ev::kReplicationSent);
  EXPECT_EQ(slice.events[1].ev, obs::Ev::kAckReleased);
  EXPECT_FALSE(slice.truncated);
  EXPECT_TRUE(audit::IsHappensBeforeClosed(slice));
  EXPECT_TRUE(obs::ValidateJson(slice.PerfettoJson()));
  EXPECT_NE(slice.Text().find("ack_released"), std::string::npos);
}

TEST(SliceTest, MergesInfraEventsInsideWindow) {
  obs::Tracer tracer;
  SimTime t = 0;
  tracer.SetClock([&t] { return t; });
  tracer.SetEnabled(true);
  const std::uint16_t c = tracer.Intern("sw");
  const std::uint16_t inj = tracer.Intern("injector");
  t = 50;
  tracer.Emit(inj, obs::Ev::kNodeFailure);  // before window: excluded
  t = 100;
  tracer.Emit(c, obs::Ev::kLeaseMiss, 0xAB);
  t = 150;
  tracer.Emit(inj, obs::Ev::kLinkDown);  // inside window: a global cause
  t = 300;
  tracer.Emit(c, obs::Ev::kFailoverRehome, 0xAB);

  const audit::CausalSlice slice = audit::ExtractSlice(tracer, 0xAB, 300);
  ASSERT_EQ(slice.events.size(), 3u);
  EXPECT_EQ(slice.events[1].ev, obs::Ev::kLinkDown);
  EXPECT_TRUE(audit::IsHappensBeforeClosed(slice));
}

TEST(SliceTest, BudgetTruncationKeepsClosure) {
  obs::Tracer tracer;
  SimTime t = 0;
  tracer.SetClock([&t] { return t; });
  tracer.SetEnabled(true);
  const std::uint16_t c = tracer.Intern("sw");
  for (std::uint64_t i = 0; i < 150; ++i) {
    t = 100 * (2 * i + 1);
    tracer.Emit(c, obs::Ev::kReplicationSent, 0xAB, i + 1);
    t = 100 * (2 * i + 2);
    tracer.Emit(c, obs::Ev::kAckReleased, 0xAB, i + 1);
  }
  const audit::CausalSlice slice = audit::ExtractSlice(tracer, 0xAB, t);
  EXPECT_TRUE(slice.truncated);
  EXPECT_LE(slice.events.size(), audit::kMaxSliceEvents);
  EXPECT_GT(slice.events.size(), 0u);
  EXPECT_TRUE(audit::IsHappensBeforeClosed(slice));
}

TEST(SliceTest, EmptyWhenTracerHasNothingRelevant) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  const audit::CausalSlice slice = audit::ExtractSlice(tracer, 0xAB, 1000);
  EXPECT_TRUE(slice.empty());
}

TEST(SliceTest, ComponentTableIsRemappedToSliceLocalIds) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  // Intern several components; only one appears in the slice.
  tracer.Intern("unused0");
  tracer.Intern("unused1");
  const std::uint16_t c = tracer.Intern("the_switch");
  tracer.Emit(c, obs::Ev::kAckReleased, 0xAB, 0);
  const audit::CausalSlice slice = audit::ExtractSlice(tracer, 0xAB, 1000);
  ASSERT_EQ(slice.events.size(), 1u);
  ASSERT_LT(slice.events[0].component, slice.components.size());
  EXPECT_EQ(slice.components[slice.events[0].component], "the_switch");
}

// ---------------------------------------------------------------------------
// Tracer orphan-end marking (ring eviction must not fake protocol phases).

TEST(TracerOrphanTest, EvictedBeginMarksEndAsOrphan) {
  obs::Tracer tracer(/*capacity=*/4);
  SimTime t = 0;
  tracer.SetClock([&t] { return t; });
  tracer.SetEnabled(true);
  const std::uint16_t c = tracer.Intern("sw");
  t = 100;
  tracer.Emit(c, obs::Ev::kReplicationSent, 0xF1, 1);
  for (int i = 0; i < 4; ++i) {  // evict the begin
    t += 10;
    tracer.Emit(c, obs::Ev::kIngress, 0xF1);
  }
  t = 900;
  tracer.Emit(c, obs::Ev::kAckReleased, 0xF1, 1);

  EXPECT_GT(tracer.evicted(), 0u);
  EXPECT_EQ(tracer.CountOrphanedEnds(), 1u);
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"orphan\": true"), std::string::npos);
  EXPECT_TRUE(obs::ValidateJson(json));
  // The orphaned end must not fabricate a latency sample: its begin's
  // timestamp is unknown, so no write_replication_rtt phase may appear.
  for (const auto& phase : tracer.LatencyBreakdown()) {
    EXPECT_NE(phase.name, "write_replication_rtt");
  }
}

TEST(TracerOrphanTest, CompletedSpanIsNotOrphan) {
  obs::Tracer tracer(/*capacity=*/16);
  SimTime t = 0;
  tracer.SetClock([&t] { return t; });
  tracer.SetEnabled(true);
  const std::uint16_t c = tracer.Intern("sw");
  t = 100;
  tracer.Emit(c, obs::Ev::kReplicationSent, 0xF1, 1);
  t = 300;
  tracer.Emit(c, obs::Ev::kAckReleased, 0xF1, 1);
  EXPECT_EQ(tracer.evicted(), 0u);
  EXPECT_EQ(tracer.CountOrphanedEnds(), 0u);
  EXPECT_EQ(tracer.ChromeTraceJson().find("\"orphan\""), std::string::npos);
  bool found = false;
  for (const auto& phase : tracer.LatencyBreakdown()) {
    if (phase.name == "write_replication_rtt") {
      found = true;
      EXPECT_EQ(phase.samples_us.Count(), 1u);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Linearizability feed.

TEST(LinFeedTest, LinearCounterHistoryPasses) {
  audit::LinearizabilityFeed feed;
  feed.Input(1, 101, 10);
  feed.Output(1, 101, 20, 1);
  feed.Input(1, 102, 30);
  feed.Output(1, 102, 40, 2);
  EXPECT_TRUE(feed.CloseFlow(1));
  EXPECT_EQ(feed.OpenFlows(), 0u);
}

TEST(LinFeedTest, LostUpdateIsReportedThroughAuditor) {
  Auditor auditor;
  auditor.SetEnabled(true);
  audit::LinearizabilityFeed feed(&auditor);
  feed.Input(7, 201, 10);
  feed.Output(7, 201, 20, 1);
  feed.Input(7, 202, 30);
  feed.Output(7, 202, 40, 1);  // the counter failed to advance: lost update
  EXPECT_EQ(feed.CloseAll(), 1u);
  EXPECT_EQ(auditor.ViolationCount("linearizability"), 1u);
  EXPECT_EQ(auditor.violations()[0].at.key, 7u);
}

TEST(LinFeedTest, FlowsAreIndependent) {
  audit::LinearizabilityFeed feed;
  feed.Input(1, 101, 10);
  feed.Output(1, 101, 20, 1);
  feed.Input(2, 201, 10);
  feed.Output(2, 201, 20, 1);  // value 1 again — fine, different flow
  EXPECT_EQ(feed.CloseAll(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end mutation detection.
//
// Harness: two RedPlane switches in front of a (possibly chained) state
// store, global tracer + auditor armed, protocol mutations injectable via
// the test-only config hooks.  Clean twins of every mutated scenario run
// the same traffic and must stay silent.

constexpr net::Ipv4Addr kSrcIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kDstIp(192, 168, 10, 1);
constexpr net::Ipv4Addr kSw1Ip(172, 16, 0, 1);
constexpr net::Ipv4Addr kSw2Ip(172, 16, 0, 2);

class CounterApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "counter"; }
  core::ProcessResult Process(core::AppContext&, net::Packet pkt,
                              std::vector<std::byte>& state) override {
    core::ProcessResult result;
    core::SetState(state,
                   core::StateAs<std::uint64_t>(state).value_or(0) + 1);
    result.state_modified = true;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
};

struct AuditHarness {
  struct Options {
    int chain_len = 1;
    store::StoreConfig::ProtocolMutations head_mutations{};
    SimDuration lease_extension = 0;
  };

  explicit AuditHarness(Options opt) {
    net = std::make_unique<sim::Network>(sim, 77);
    src = net->AddNode<sim::HostNode>("src", kSrcIp);
    dst = net->AddNode<sim::HostNode>("dst", kDstIp);
    dp::SwitchConfig c1, c2;
    c1.switch_ip = kSw1Ip;
    c2.switch_ip = kSw2Ip;
    sw1 = net->AddNode<dp::SwitchNode>("sw1", c1);
    sw2 = net->AddNode<dp::SwitchNode>("sw2", c2);
    hub = net->AddNode<sim::HostNode>("hub", net::Ipv4Addr(9, 9, 9, 9));
    net->Connect(src, 0, sw1, 0);
    net->Connect(src, 1, sw2, 0);
    net->Connect(dst, 0, sw1, 1);
    net->Connect(dst, 1, sw2, 1);
    net->Connect(sw1, 2, hub, 0);
    net->Connect(sw2, 2, hub, 1);

    for (int i = 0; i < opt.chain_len; ++i) {
      store::StoreConfig store_cfg;
      store_cfg.lease_period = Milliseconds(10);
      if (i == 0) store_cfg.mutations = opt.head_mutations;
      auto* server = net->AddNode<store::StateStoreServer>(
          "store" + std::to_string(i), net::Ipv4Addr(172, 16, 1, 1 + i),
          store_cfg);
      net->Connect(server, 0, hub, static_cast<PortId>(2 + i));
      stores.push_back(server);
    }
    for (std::size_t i = 0; i < stores.size(); ++i) {
      stores[i]->SetIsHead(i == 0);
      if (i + 1 < stores.size()) {
        stores[i]->SetChainSuccessor(stores[i + 1]->ip());
      } else {
        stores[i]->ClearChainSuccessor();
      }
    }

    hub->SetHandler([this](sim::HostNode& self, net::Packet pkt) {
      if (!pkt.ip.has_value()) return;
      if (drop_next_to_sw1 && pkt.ip->dst == kSw1Ip) {
        drop_next_to_sw1 = false;
        ++dropped;
        return;
      }
      if (pkt.ip->dst == kSw1Ip) {
        self.SendTo(0, std::move(pkt));
        return;
      }
      if (pkt.ip->dst == kSw2Ip) {
        self.SendTo(1, std::move(pkt));
        return;
      }
      for (std::size_t i = 0; i < stores.size(); ++i) {
        if (pkt.ip->dst == stores[i]->ip()) {
          self.SendTo(static_cast<PortId>(2 + i), std::move(pkt));
          return;
        }
      }
    });
    auto forwarder = [](const net::Packet& pkt,
                        PortId) -> std::optional<PortId> {
      if (!pkt.ip.has_value()) return std::nullopt;
      if (pkt.ip->dst == kSrcIp) return PortId{0};
      if (pkt.ip->dst == kDstIp) return PortId{1};
      return PortId{2};
    };
    sw1->SetForwarder(forwarder);
    sw2->SetForwarder(forwarder);

    core::RedPlaneConfig rp_cfg;
    rp_cfg.lease_period = Milliseconds(10);
    // Renew only near expiry, so scenario traffic produces exactly the
    // protocol messages each scenario scripts (no interleaved renews).
    rp_cfg.renew_interval = Milliseconds(1);
    rp_cfg.mutation_lease_extension = opt.lease_extension;
    auto shard_for = [this](const net::PartitionKey&) {
      return stores.front()->ip();
    };
    rp1 = std::make_unique<core::RedPlaneSwitch>(*sw1, app, shard_for, rp_cfg);
    rp2 = std::make_unique<core::RedPlaneSwitch>(*sw2, app, shard_for, rp_cfg);
    sw1->SetPipeline(rp1.get());
    sw2->SetPipeline(rp2.get());
    dst->SetHandler([this](sim::HostNode&, net::Packet) { ++delivered; });

    tracer.SetClock([this] { return sim.Now(); });
    tracer.SetEnabled(true);
    prev_tracer = obs::SetGlobalTracer(&tracer);
    auditor.SetClock([this] { return sim.Now(); });
    auditor.ArmStandardMonitors();
    auditor.SetTracer(&tracer);
    audit::SetGlobalAuditor(&auditor);
    auditor.SetEnabled(true);
  }

  ~AuditHarness() {
    obs::SetGlobalTracer(prev_tracer);
    // The auditor uninstalls itself from the global slot on destruction.
  }

  net::FlowKey Flow() const {
    return {kSrcIp, kDstIp, 4242, 80, net::IpProto::kUdp};
  }
  void Run(SimDuration d) { sim.RunUntil(sim.Now() + d); }

  std::size_t TotalViolations() const { return auditor.violations().size(); }

  /// Asserts exactly `monitor` fired, with a non-empty HB-closed slice
  /// within budget on every stored violation.
  void ExpectOnly(std::string_view monitor) const {
    EXPECT_GE(auditor.ViolationCount(monitor), 1u) << monitor;
    EXPECT_EQ(auditor.ViolationCount(monitor), TotalViolations())
        << "a monitor other than " << monitor << " fired";
    for (const auto& v : auditor.violations()) {
      EXPECT_EQ(v.monitor, monitor);
      EXPECT_FALSE(v.slice.empty()) << "violation has no causal slice";
      EXPECT_LE(v.slice.events.size(), audit::kMaxSliceEvents);
      EXPECT_TRUE(audit::IsHappensBeforeClosed(v.slice));
      EXPECT_TRUE(obs::ValidateJson(v.slice.PerfettoJson()));
    }
  }

  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  sim::HostNode* src = nullptr;
  sim::HostNode* dst = nullptr;
  sim::HostNode* hub = nullptr;
  dp::SwitchNode* sw1 = nullptr;
  dp::SwitchNode* sw2 = nullptr;
  std::vector<store::StateStoreServer*> stores;
  CounterApp app;
  std::unique_ptr<core::RedPlaneSwitch> rp1;
  std::unique_ptr<core::RedPlaneSwitch> rp2;
  int delivered = 0;
  int dropped = 0;
  bool drop_next_to_sw1 = false;

  obs::Tracer tracer;
  obs::Tracer* prev_tracer = nullptr;
  Auditor auditor;
};

// --- lease mutation: the switch believes its lease outlives the store's ---
//
// sw1 acquires the flow's lease, then loses its link to the store fabric
// (but stays alive, so it never publishes a reset).  After the store-side
// lease lapses, traffic arrives through sw2, which legitimately acquires
// the lease.  Clean: sw1's conservative believed expiry has passed, so its
// stale claim is pruned.  Mutated: sw1's belief was inflated past the
// store's grant, so two live claims coexist — single_owner must fire.

void DriveLeaseScenario(AuditHarness& h) {
  h.src->SendTo(0, net::MakeUdpPacket(h.Flow(), 20));
  h.Run(Milliseconds(5));  // write acked; sw1 holds the lease
  sim::Link* link = h.net->FindLink(h.sw1, h.hub);
  ASSERT_NE(link, nullptr);
  link->SetUp(false);  // sw1 is isolated from the store but still alive
  h.Run(Milliseconds(30));  // store-side lease lapses
  h.src->SendTo(1, net::MakeUdpPacket(h.Flow(), 20));  // arrive via sw2
  h.Run(Milliseconds(40));
  EXPECT_EQ(h.delivered, 2);
}

TEST(MutationDetectionTest, InflatedLeaseBeliefTripsSingleOwner) {
  AuditHarness h({.lease_extension = Seconds(10)});
  DriveLeaseScenario(h);
  h.ExpectOnly("single_owner");
}

TEST(MutationDetectionTest, LeaseScenarioCleanTwinIsSilent) {
  AuditHarness h({});
  DriveLeaseScenario(h);
  EXPECT_EQ(h.TotalViolations(), 0u) << h.auditor.violations()[0].detail;
}

// --- seq mutation: the store's duplicate filter is disabled ---
//
// The hub drops the ack of the flow's second write, forcing the switch to
// retransmit from its mirror buffer.  Clean: the store filters the
// duplicate and answers from durable state.  Mutated: the store re-applies
// the duplicate write — seq_monotonic must fire.

void DriveSeqScenario(AuditHarness& h) {
  h.src->SendTo(0, net::MakeUdpPacket(h.Flow(), 20));
  h.Run(Milliseconds(3));  // lease + first write settled
  h.drop_next_to_sw1 = true;  // swallow the next store→sw1 ack
  h.src->SendTo(0, net::MakeUdpPacket(h.Flow(), 20));
  h.Run(Milliseconds(5));  // retransmit fires and is answered
  EXPECT_EQ(h.dropped, 1);
  // The dropped ack carried the write's piggybacked output with it; the
  // retransmitted ack restores durability, not delivery — so only the
  // first write's output reaches the receiver.
  EXPECT_EQ(h.delivered, 1);
}

TEST(MutationDetectionTest, DisabledSeqFilterTripsSeqMonotonic) {
  AuditHarness h({.head_mutations = {.disable_seq_filter = true}});
  DriveSeqScenario(h);
  h.ExpectOnly("seq_monotonic");
}

TEST(MutationDetectionTest, SeqScenarioCleanTwinIsSilent) {
  AuditHarness h({});
  DriveSeqScenario(h);
  EXPECT_EQ(h.TotalViolations(), 0u) << h.auditor.violations()[0].detail;
}

// --- chain mutation: the head acks before chain-wide commit ---
//
// A 3-replica chain; the mutated head responds to the switch directly
// instead of forwarding down the chain, so the ack escapes before the tail
// committed.  chain_commit must fire on the very first released output.

void DriveChainScenario(AuditHarness& h) {
  h.src->SendTo(0, net::MakeUdpPacket(h.Flow(), 20));
  h.Run(Milliseconds(5));
  h.src->SendTo(0, net::MakeUdpPacket(h.Flow(), 20));
  h.Run(Milliseconds(5));
  EXPECT_EQ(h.delivered, 2);
}

TEST(MutationDetectionTest, EarlyChainAckTripsChainCommit) {
  AuditHarness h({.chain_len = 3,
                  .head_mutations = {.early_chain_ack = true}});
  DriveChainScenario(h);
  h.ExpectOnly("chain_commit");
}

TEST(MutationDetectionTest, ChainScenarioCleanTwinIsSilent) {
  AuditHarness h({.chain_len = 3});
  DriveChainScenario(h);
  EXPECT_EQ(h.TotalViolations(), 0u) << h.auditor.violations()[0].detail;
}

// ---------------------------------------------------------------------------
// Failure diagnostics dump (what the gtest listener prints on failure).

TEST(DiagnosticsTest, DumpIncludesTracerTailLeaseTableAndViolations) {
  AuditHarness h({});
  h.src->SendTo(0, net::MakeUdpPacket(h.Flow(), 20));
  h.Run(Milliseconds(5));
  // Seed one synthetic violation so the dump has findings to show.
  h.auditor.Publish(h.auditor.Intern("synthetic"), Tap::kAckReleased, 0x99,
                    5);
  std::ostringstream os;
  audit::DumpDiagnostics(os, /*last_n=*/16);
  const std::string text = os.str();
  EXPECT_NE(text.find("redplane diagnostics"), std::string::npos);
  EXPECT_NE(text.find("sw1/rp lease table"), std::string::npos);
  EXPECT_NE(text.find("chain_commit"), std::string::npos);
  EXPECT_NE(text.find("ack_released"), std::string::npos);
}

}  // namespace
}  // namespace redplane
