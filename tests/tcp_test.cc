#include <gtest/gtest.h>

#include "sim/network.h"
#include "tcp/tcp.h"

namespace redplane::tcp {
namespace {

constexpr net::Ipv4Addr kSender(10, 0, 0, 1);
constexpr net::Ipv4Addr kReceiver(192, 168, 10, 1);

net::FlowKey IperfFlow() {
  return {kSender, kReceiver, 40000, 5001, net::IpProto::kTcp};
}

struct TcpHarness {
  explicit TcpHarness(const sim::LinkConfig& link, TcpConfig config = {}) {
    net = std::make_unique<sim::Network>(sim, 3);
    sender = net->AddNode<TcpSenderNode>("snd", kSender, config);
    receiver = net->AddNode<TcpReceiverNode>("rcv", kReceiver, 5001);
    this->link = net->Connect(sender, 0, receiver, 0, link);
  }
  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  TcpSenderNode* sender;
  TcpReceiverNode* receiver;
  sim::Link* link;
};

TEST(TcpTest, HandshakeEstablishes) {
  sim::LinkConfig link;
  TcpHarness h(link);
  h.sender->Start(IperfFlow());
  h.sim.RunUntil(Milliseconds(10));
  EXPECT_TRUE(h.sender->connected());
  EXPECT_GT(h.receiver->bytes_delivered(), 0u);
}

TEST(TcpTest, SaturatesCleanLink) {
  sim::LinkConfig link;
  link.bandwidth_bps = 1e9;
  link.propagation = Microseconds(50);
  TcpHarness h(link);
  h.sender->Start(IperfFlow());
  h.sim.RunUntil(Seconds(2));
  // Goodput over the second half should be near link rate (>70%).
  const double bytes = static_cast<double>(h.receiver->bytes_delivered());
  const double gbps = bytes * 8 / 2.0 / 1e9;
  EXPECT_GT(gbps, 0.7);
  EXPECT_LE(gbps, 1.01);
  EXPECT_EQ(h.sender->timeouts(), 0u);
}

TEST(TcpTest, RecoversFromRandomLoss) {
  sim::LinkConfig link;
  link.bandwidth_bps = 1e9;
  link.propagation = Microseconds(50);
  link.loss_rate = 0.005;
  TcpHarness h(link);
  h.sender->Start(IperfFlow());
  h.sim.RunUntil(Seconds(2));
  EXPECT_GT(h.sender->retransmissions(), 0u);
  // Still makes solid progress despite loss.
  EXPECT_GT(h.receiver->bytes_delivered(), 10'000'000u);
  // Delivered bytes never exceed acked-window progress + one window.
  EXPECT_LE(h.receiver->bytes_delivered(),
            h.sender->bytes_acked() + 64ull * 9000);
}

TEST(TcpTest, BlackholeCausesRtoThenRecovery) {
  sim::LinkConfig link;
  link.bandwidth_bps = 1e9;
  link.propagation = Microseconds(50);
  TcpHarness h(link);
  h.sender->Start(IperfFlow());
  h.sim.RunUntil(Milliseconds(500));
  const std::uint64_t before = h.receiver->bytes_delivered();
  h.link->SetUp(false);
  h.sim.RunUntil(Milliseconds(1500));
  EXPECT_EQ(h.receiver->bytes_delivered(), before);  // nothing during outage
  EXPECT_GT(h.sender->timeouts(), 0u);
  h.link->SetUp(true);
  h.sim.RunUntil(Seconds(4));
  EXPECT_GT(h.receiver->bytes_delivered(), before + 1'000'000u);
}

TEST(TcpTest, GoodputTimeSeriesShowsOutage) {
  sim::LinkConfig link;
  link.bandwidth_bps = 1e9;
  link.propagation = Microseconds(50);
  TcpHarness h(link);
  h.sender->Start(IperfFlow());
  // Outage from 1.0 s to 1.5 s.
  h.sim.Schedule(Seconds(1), [&]() { h.link->SetUp(false); });
  h.sim.Schedule(Milliseconds(1500), [&]() { h.link->SetUp(true); });
  h.sim.RunUntil(Seconds(3));
  const TimeSeries& ts = h.receiver->goodput();
  // Bucket at 0.9 s: flowing; bucket at 1.2 s: zero; bucket at 2.5 s: flowing.
  EXPECT_GT(ts.BucketSum(9), 0.0);
  EXPECT_DOUBLE_EQ(ts.BucketSum(12), 0.0);
  EXPECT_GT(ts.BucketSum(25), 0.0);
}

TEST(TcpTest, SequenceWraparoundComparisons) {
  EXPECT_TRUE(SeqLt(0xfffffff0u, 0x10u));   // wrapped
  EXPECT_FALSE(SeqLt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(SeqLeq(5u, 5u));
  EXPECT_TRUE(SeqLt(5u, 6u));
}

TEST(TcpTest, ReceiverReassemblesOutOfOrderSegments) {
  sim::LinkConfig link;
  link.bandwidth_bps = 1e9;
  link.propagation = Microseconds(20);
  link.reorder_jitter = Microseconds(100);
  TcpHarness h(link);
  h.sender->Start(IperfFlow());
  h.sim.RunUntil(Seconds(1));
  // Despite reordering, delivery is exactly the in-order prefix: delivered
  // bytes match the sender's acked bytes (no duplication, no gaps).
  EXPECT_GT(h.receiver->bytes_delivered(), 1'000'000u);
  EXPECT_GE(h.receiver->bytes_delivered(), h.sender->bytes_acked());
}

}  // namespace
}  // namespace redplane::tcp
