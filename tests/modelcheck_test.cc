#include <gtest/gtest.h>

#include "common/rng.h"
#include "modelcheck/checker.h"
#include "modelcheck/linearizability.h"

namespace redplane::modelcheck {
namespace {

// ------------------------------------------------ protocol model check ----

TEST(ProtocolCheckerTest, SingleSwitchNoFailures) {
  CheckerConfig cfg;
  cfg.num_switches = 1;
  cfg.total_packets = 3;
  cfg.allow_failures = false;
  cfg.allow_drops = false;
  const auto result = CheckProtocol(cfg);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_TRUE(result.goal_reachable);
  EXPECT_GT(result.states_explored, 100u);
}

TEST(ProtocolCheckerTest, TwoSwitchesWithDropsAndFailures) {
  // The paper's headline configuration: concurrent switches, message loss,
  // reordering (multiset delivery), fail-stop failures, lease expiry.
  CheckerConfig cfg;
  cfg.num_switches = 2;
  cfg.total_packets = 2;
  cfg.max_inflight = 3;
  const auto result = CheckProtocol(cfg);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_TRUE(result.goal_reachable);
  EXPECT_GT(result.states_explored, 10'000u);
}

TEST(ProtocolCheckerTest, ThreeSwitchesSmallWorkload) {
  CheckerConfig cfg;
  cfg.num_switches = 3;
  cfg.total_packets = 2;
  cfg.max_inflight = 3;
  const auto result = CheckProtocol(cfg);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_TRUE(result.goal_reachable);
}

TEST(ProtocolCheckerTest, LongerLeaseStillSafe) {
  CheckerConfig cfg;
  cfg.num_switches = 2;
  cfg.total_packets = 2;
  cfg.lease_period = 3;
  const auto result = CheckProtocol(cfg);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ProtocolCheckerTest, DropsOnlyNoFailures) {
  CheckerConfig cfg;
  cfg.num_switches = 2;
  cfg.total_packets = 3;
  cfg.max_inflight = 3;
  cfg.allow_failures = false;
  const auto result = CheckProtocol(cfg);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_TRUE(result.goal_reachable);
}

// ------------------------------------------------- linearizability -------

std::vector<HistoryEvent> H(std::initializer_list<HistoryEvent> events) {
  return events;
}

constexpr auto kIn = HistoryEvent::Kind::kInput;
constexpr auto kOut = HistoryEvent::Kind::kOutput;

TEST(LinearizabilityTest, SimpleSequentialHistory) {
  const auto h = H({{kIn, 1, 10, 0},
                    {kOut, 1, 20, 1},
                    {kIn, 2, 30, 0},
                    {kOut, 2, 40, 2}});
  EXPECT_TRUE(CheckCounterLinearizable(h));
}

TEST(LinearizabilityTest, LostOutputIsPermitted) {
  // Packet 2's output never appears: allowed (output loss).
  const auto h = H({{kIn, 1, 10, 0},
                    {kOut, 1, 20, 1},
                    {kIn, 2, 30, 0},
                    {kIn, 3, 40, 0},
                    {kOut, 3, 50, 2}});
  std::string why;
  EXPECT_TRUE(CheckCounterLinearizable(h, &why)) << why;
}

TEST(LinearizabilityTest, LostInputEffectIsPermitted) {
  // Packet 2 was received but has no visible effect (count jumps from 1 to
  // 2 via packet 3): packet 2 sits at the end of the serial order.
  const auto h = H({{kIn, 1, 10, 0},
                    {kOut, 1, 20, 1},
                    {kIn, 2, 30, 0},
                    {kIn, 3, 35, 0},
                    {kOut, 3, 45, 2}});
  EXPECT_TRUE(CheckCounterLinearizable(h));
}

TEST(LinearizabilityTest, DuplicateCountValueRejected) {
  // Two different packets observed the same counter value: the lost-update
  // anomaly RedPlane's sequencing prevents (Fig. 6a).
  const auto h = H({{kIn, 1, 10, 0},
                    {kOut, 1, 20, 1},
                    {kIn, 2, 30, 0},
                    {kOut, 2, 40, 1}});
  std::string why;
  EXPECT_FALSE(CheckCounterLinearizable(h, &why));
  EXPECT_NE(why.find("share"), std::string::npos);
}

TEST(LinearizabilityTest, RollbackAnomalyRejected) {
  // After output 2 was externalized, a later packet sees count 1 again:
  // the stale-state anomaly of Fig. 7a.  Detected as a duplicate value (1
  // is taken) — or, with value 3 skipped, as a real-time violation below.
  const auto h = H({{kIn, 1, 10, 0},
                    {kOut, 1, 20, 2},
                    {kIn, 2, 5, 0},  // arrived before, fine
                    {kIn, 3, 30, 0},
                    {kOut, 3, 40, 1}});
  // Packet 3 arrived AFTER packet 1's output (value 2) was externalized,
  // yet packet 3 appears EARLIER in the serial order (value 1 < 2).
  EXPECT_FALSE(CheckCounterLinearizable(h));
}

TEST(LinearizabilityTest, CausalityViolationRejected) {
  // An output of value 2 before the second input even arrived.
  const auto h = H({{kIn, 1, 10, 0},
                    {kOut, 1, 20, 2},
                    {kIn, 2, 30, 0}});
  std::string why;
  EXPECT_FALSE(CheckCounterLinearizable(h, &why));
  EXPECT_NE(why.find("exceeds inputs"), std::string::npos);
}

TEST(LinearizabilityTest, OutputWithoutInputRejected) {
  const auto h = H({{kOut, 9, 20, 1}});
  EXPECT_FALSE(CheckCounterLinearizable(h));
}

TEST(LinearizabilityTest, ReorderedOutputsAcceptedWhenConsistent) {
  // Outputs released out of order (buffered reads overtaking) but values
  // consistent with some serial order.
  const auto h = H({{kIn, 1, 10, 0},
                    {kIn, 2, 11, 0},
                    {kOut, 2, 20, 2},
                    {kOut, 1, 21, 1}});
  EXPECT_TRUE(CheckCounterLinearizable(h));
}

TEST(LinearizabilityTest, RetransmittedIdenticalOutputTolerated) {
  const auto h = H({{kIn, 1, 10, 0},
                    {kOut, 1, 20, 1},
                    {kOut, 1, 25, 1}});  // same value again: duplicate ack
  EXPECT_TRUE(CheckCounterLinearizable(h));
}

TEST(LinearizabilityTest, AgreesWithBruteForceOnRandomHistories) {
  // Cross-validate the polynomial checker against the factorial reference
  // on small random histories (valid and corrupted).
  Rng rng(77);
  const auto counter_program = [](std::size_t pos) {
    return static_cast<std::uint64_t>(pos);
  };
  int checked = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(4));  // 2..5 inputs
    // Build a random history: inputs at random times; each input gets an
    // output with probability 2/3 whose value is a random permutation
    // position (sometimes corrupted).
    std::vector<HistoryEvent> h;
    std::vector<std::size_t> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i + 1;
    for (int i = n - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.NextBounded(i + 1)]);
    }
    SimTime t = 0;
    for (int i = 0; i < n; ++i) {
      t += 1 + static_cast<SimTime>(rng.NextBounded(10));
      h.push_back({kIn, static_cast<std::uint64_t>(i + 1), t, 0});
      if (rng.Bernoulli(0.66)) {
        std::uint64_t value = perm[i];
        if (rng.Bernoulli(0.3)) {
          value = 1 + rng.NextBounded(n);  // possibly wrong
        }
        const SimTime out_t = t + 1 + static_cast<SimTime>(rng.NextBounded(20));
        h.push_back({kOut, static_cast<std::uint64_t>(i + 1), out_t, value});
      }
    }
    std::stable_sort(h.begin(), h.end(),
                     [](const HistoryEvent& a, const HistoryEvent& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.kind < b.kind;
                     });
    const bool fast = CheckCounterLinearizable(h);
    const bool slow = BruteForceCheck(h, counter_program);
    ASSERT_EQ(fast, slow) << "trial " << trial;
    ++checked;
  }
  EXPECT_EQ(checked, 300);
}

TEST(HistoryRecorderTest, SortsByTimeInputsFirst) {
  HistoryRecorder rec;
  rec.Output(1, 20, 1);
  rec.Input(1, 10);
  rec.Input(2, 20);
  const auto sorted = rec.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].packet_id, 1u);
  EXPECT_EQ(sorted[0].kind, kIn);
  EXPECT_EQ(sorted[1].kind, kIn);  // input at t=20 before output at t=20
  EXPECT_EQ(sorted[2].kind, kOut);
  EXPECT_EQ(rec.NumInputs(), 2u);
  EXPECT_EQ(rec.NumOutputs(), 1u);
}

}  // namespace
}  // namespace redplane::modelcheck
