// Fuzzing the wire codecs: random bytes and random mutations of valid
// frames must never crash or mis-round-trip the parsers.  On a network
// element, malformed input is a normal event, not an error path.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/consistency.h"
#include "core/protocol.h"
#include "net/codec.h"

namespace redplane {
namespace {

net::Packet RandomPacket(Rng& rng) {
  net::FlowKey flow;
  flow.src_ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
  flow.dst_ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
  flow.src_port = static_cast<std::uint16_t>(rng.Next());
  flow.dst_port = static_cast<std::uint16_t>(rng.Next());
  flow.proto = rng.Bernoulli(0.5) ? net::IpProto::kTcp : net::IpProto::kUdp;
  net::Packet pkt =
      flow.proto == net::IpProto::kTcp
          ? net::MakeTcpPacket(flow, static_cast<std::uint8_t>(rng.Next()),
                               static_cast<std::uint32_t>(rng.Next()),
                               static_cast<std::uint32_t>(rng.Next()),
                               static_cast<std::uint32_t>(rng.NextBounded(1400)))
          : net::MakeUdpPacket(flow,
                               static_cast<std::uint32_t>(rng.NextBounded(1400)));
  if (rng.Bernoulli(0.3)) pkt.vlan = static_cast<std::uint16_t>(rng.NextBounded(4095) + 1);
  const std::size_t payload = rng.NextBounded(64);
  std::vector<std::byte> body(payload);
  for (auto& b : body) b = std::byte{static_cast<std::uint8_t>(rng.Next())};
  pkt.payload = std::move(body);
  return pkt;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCrashPacketParser) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::byte> junk(rng.NextBounded(200));
    for (auto& b : junk) b = std::byte{static_cast<std::uint8_t>(rng.Next())};
    (void)net::Parse(junk);  // must not crash; result may be anything valid
  }
}

TEST_P(CodecFuzz, MutatedValidFramesNeverCrash) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 500; ++i) {
    auto wire = net::Serialize(RandomPacket(rng));
    // Flip 1-4 random bytes.
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      wire[rng.NextBounded(wire.size())] ^=
          std::byte{static_cast<std::uint8_t>(rng.Next() | 1)};
    }
    (void)net::Parse(wire);
    // Truncate to a random prefix.
    auto truncated = wire;
    truncated.resize(rng.NextBounded(wire.size() + 1));
    (void)net::Parse(truncated);
  }
}

TEST_P(CodecFuzz, ValidFramesAlwaysRoundTrip) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 500; ++i) {
    const net::Packet pkt = RandomPacket(rng);
    const auto parsed = net::Parse(net::Serialize(pkt));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->Flow().has_value());
    EXPECT_EQ(*parsed->Flow(), *pkt.Flow());
    EXPECT_EQ(parsed->vlan, pkt.vlan);
    EXPECT_EQ(parsed->payload.size(), pkt.payload.size() + pkt.pad_bytes);
  }
}

TEST_P(CodecFuzz, RandomBytesNeverCrashProtocolDecoder) {
  Rng rng(GetParam() + 3000);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::byte> junk(rng.NextBounded(300));
    for (auto& b : junk) b = std::byte{static_cast<std::uint8_t>(rng.Next())};
    (void)core::DecodeMsg(junk);
  }
}

TEST_P(CodecFuzz, MutatedProtocolMessagesNeverCrash) {
  Rng rng(GetParam() + 4000);
  for (int i = 0; i < 500; ++i) {
    core::Msg msg;
    msg.type = static_cast<core::MsgType>(1 + rng.NextBounded(8));
    msg.mode = static_cast<core::ConsistencyMode>(
        rng.NextBounded(core::kNumConsistencyModes));
    msg.seq = rng.Next();
    msg.key = net::PartitionKey::OfObject(rng.Next());
    msg.state.resize(rng.NextBounded(64));
    if (rng.Bernoulli(0.5)) msg.piggyback = RandomPacket(rng);
    auto bytes = net::BufferView(core::EncodeMsg(msg)).ToVector();
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.NextBounded(bytes.size())] ^=
          std::byte{static_cast<std::uint8_t>(rng.Next() | 1)};
    }
    (void)core::DecodeMsg(bytes);
    auto truncated = bytes;
    truncated.resize(rng.NextBounded(bytes.size() + 1));
    (void)core::DecodeMsg(truncated);
  }
}

TEST_P(CodecFuzz, ProtocolMessagesAlwaysRoundTrip) {
  Rng rng(GetParam() + 5000);
  for (int i = 0; i < 500; ++i) {
    core::Msg msg;
    msg.type = static_cast<core::MsgType>(1 + rng.NextBounded(8));
    msg.ack = static_cast<core::AckKind>(rng.NextBounded(10));
    msg.mode = static_cast<core::ConsistencyMode>(
        rng.NextBounded(core::kNumConsistencyModes));
    msg.seq = rng.Next();
    msg.snapshot_index = static_cast<std::uint32_t>(rng.Next());
    msg.reply_to = net::Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
    msg.chain_hop = static_cast<std::uint8_t>(rng.NextBounded(4));
    switch (rng.NextBounded(3)) {
      case 0: {
        net::FlowKey f;
        f.src_ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
        f.dst_ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
        f.src_port = static_cast<std::uint16_t>(rng.Next());
        f.dst_port = static_cast<std::uint16_t>(rng.Next());
        f.proto = net::IpProto::kUdp;
        msg.key = net::PartitionKey::OfFlow(f);
        break;
      }
      case 1:
        msg.key = net::PartitionKey::OfVlan(
            static_cast<std::uint16_t>(rng.NextBounded(4096)));
        break;
      default:
        msg.key = net::PartitionKey::OfObject(rng.Next());
    }
    msg.state.resize(rng.NextBounded(128));
    for (auto& b : msg.state) {
      b = std::byte{static_cast<std::uint8_t>(rng.Next())};
    }
    const auto decoded = core::DecodeMsg(core::EncodeMsg(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, msg.type);
    EXPECT_EQ(decoded->ack, msg.ack);
    EXPECT_EQ(decoded->seq, msg.seq);
    EXPECT_EQ(decoded->snapshot_index, msg.snapshot_index);
    EXPECT_EQ(decoded->reply_to, msg.reply_to);
    EXPECT_EQ(decoded->chain_hop, msg.chain_hop);
    EXPECT_EQ(decoded->mode, msg.mode);
    EXPECT_EQ(decoded->key, msg.key);
    EXPECT_EQ(decoded->state, msg.state);
  }
}

// --- consistency-mode wire extensions (DESIGN.md §14) ----------------------

TEST_P(CodecFuzz, OutOfSpectrumModeBytesAreRejected) {
  Rng rng(GetParam() + 9000);
  for (int i = 0; i < 500; ++i) {
    core::Msg msg;
    msg.type = static_cast<core::MsgType>(1 + rng.NextBounded(8));
    msg.seq = rng.Next();
    msg.key = net::PartitionKey::OfObject(rng.Next());
    msg.state.resize(rng.NextBounded(32));
    auto bytes = net::BufferView(core::EncodeMsg(msg)).ToVector();
    // Patch in a mode byte beyond the known spectrum.  The whole frame must
    // be rejected: a store running an older binary must never apply a write
    // under consistency rules it does not understand.
    bytes[core::wire::kOffMode] = std::byte{static_cast<std::uint8_t>(
        core::kNumConsistencyModes +
        rng.NextBounded(256 - core::kNumConsistencyModes))};
    EXPECT_FALSE(core::DecodeMsg(bytes).has_value());
    EXPECT_FALSE(
        core::MsgView::Parse(net::Buffer::CopyOf(bytes)).has_value());
  }
}

TEST_P(CodecFuzz, TruncatedMergeDeltasAreRejectedWhole) {
  Rng rng(GetParam() + 10000);
  for (int i = 0; i < 500; ++i) {
    core::Msg msg;
    msg.type = core::MsgType::kMergeDelta;
    msg.mode = core::ConsistencyMode::kMergeable;
    msg.seq = rng.Next();
    msg.key = net::PartitionKey::OfObject(rng.Next());
    msg.state.resize(1 + rng.NextBounded(64));
    for (auto& b : msg.state) {
      b = std::byte{static_cast<std::uint8_t>(rng.Next())};
    }
    const auto bytes = net::BufferView(core::EncodeMsg(msg)).ToVector();
    // A partial CRDT delta folded into the store would not be a lattice
    // join, so every strict prefix must fail to decode — never yield a
    // message with a shortened state.
    auto truncated = bytes;
    truncated.resize(rng.NextBounded(bytes.size()));
    EXPECT_FALSE(core::DecodeMsg(truncated).has_value());
    // Garbage in the state body still decodes (state is opaque here) but
    // must round-trip bit-exactly, never crash.
    auto garbled = bytes;
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      garbled[rng.NextBounded(garbled.size())] ^=
          std::byte{static_cast<std::uint8_t>(rng.Next() | 1)};
    }
    (void)core::DecodeMsg(garbled);
  }
}

TEST_P(CodecFuzz, MixedModeBatchEnvelopesRoundTrip) {
  Rng rng(GetParam() + 11000);
  for (int i = 0; i < 300; ++i) {
    // One batch carrying sub-messages from all three consistency modes —
    // the egress batcher does not segregate by mode, so the store must
    // recover each sub-message with its own mode byte intact.
    std::vector<core::Msg> msgs;
    std::vector<net::BufferView> subs;
    const std::size_t n = 1 + rng.NextBounded(8);
    for (std::size_t s = 0; s < n; ++s) {
      core::Msg msg;
      msg.mode = static_cast<core::ConsistencyMode>(
          rng.NextBounded(core::kNumConsistencyModes));
      switch (msg.mode) {
        case core::ConsistencyMode::kMergeable:
          msg.type = core::MsgType::kMergeDelta;
          break;
        case core::ConsistencyMode::kReplicatedRead:
          msg.type = rng.Bernoulli(0.5) ? core::MsgType::kReplicaSubscribe
                                        : core::MsgType::kLeaseRenewReq;
          break;
        default:
          msg.type = core::MsgType::kLeaseRenewReq;
      }
      msg.seq = rng.Next();
      msg.key = net::PartitionKey::OfObject(rng.Next());
      msg.state.resize(rng.NextBounded(48));
      for (auto& b : msg.state) {
        b = std::byte{static_cast<std::uint8_t>(rng.Next())};
      }
      msgs.push_back(msg);
      subs.push_back(net::BufferView(core::EncodeMsg(msgs.back())));
    }
    const net::BufferView env = net::EncodeBatchEnvelope(subs);
    const auto batch = net::BatchView::Parse(env);
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->size(), msgs.size());
    for (std::size_t s = 0; s < msgs.size(); ++s) {
      const auto view = core::MsgView::Parse(batch->at(s));
      ASSERT_TRUE(view.has_value());
      EXPECT_EQ(view->type(), msgs[s].type);
      EXPECT_EQ(view->mode(), msgs[s].mode);
      EXPECT_EQ(view->seq(), msgs[s].seq);
    }
  }
}

// The zero-copy forwarding path patches mutable header fields directly in
// the encoded bytes instead of decode-mutate-re-encode.  For random messages
// and random patch sets, the two must produce identical bytes.
TEST_P(CodecFuzz, InPlaceHeaderPatchMatchesFullReencode) {
  Rng rng(GetParam() + 6000);
  for (int i = 0; i < 500; ++i) {
    core::Msg msg;
    msg.type = static_cast<core::MsgType>(1 + rng.NextBounded(8));
    msg.ack = static_cast<core::AckKind>(rng.NextBounded(10));
    msg.mode = static_cast<core::ConsistencyMode>(
        rng.NextBounded(core::kNumConsistencyModes));
    msg.seq = rng.Next();
    msg.snapshot_index = static_cast<std::uint32_t>(rng.Next());
    msg.reply_to = net::Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
    msg.chain_hop = static_cast<std::uint8_t>(rng.NextBounded(4));
    switch (rng.NextBounded(3)) {
      case 0:
        msg.key = net::PartitionKey::OfVlan(
            static_cast<std::uint16_t>(rng.NextBounded(4096)));
        break;
      case 1:
        msg.key = net::PartitionKey::OfObject(rng.Next());
        break;
      default: {
        net::FlowKey f;
        f.src_ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
        f.dst_ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
        f.src_port = static_cast<std::uint16_t>(rng.Next());
        f.dst_port = static_cast<std::uint16_t>(rng.Next());
        f.proto = net::IpProto::kTcp;
        msg.key = net::PartitionKey::OfFlow(f);
      }
    }
    msg.state.resize(rng.NextBounded(64));
    for (auto& b : msg.state) {
      b = std::byte{static_cast<std::uint8_t>(rng.Next())};
    }
    if (rng.Bernoulli(0.5)) msg.piggyback = RandomPacket(rng);

    auto view = core::MsgView::Parse(core::EncodeMsg(msg));
    ASSERT_TRUE(view.has_value());

    // Random subset of the mutable fields (what replicas/stores stamp).
    if (rng.Bernoulli(0.7)) {
      const auto v = static_cast<std::uint8_t>(rng.NextBounded(8));
      view->SetChainHop(v);
      msg.chain_hop = v;
    }
    if (rng.Bernoulli(0.5)) {
      const auto v = static_cast<core::AckKind>(rng.NextBounded(10));
      view->SetAck(v);
      msg.ack = v;
    }
    if (rng.Bernoulli(0.5)) {
      const auto v = static_cast<core::MsgType>(1 + rng.NextBounded(8));
      view->SetType(v);
      msg.type = v;
    }
    if (rng.Bernoulli(0.5)) {
      const auto v = static_cast<core::ConsistencyMode>(
          rng.NextBounded(core::kNumConsistencyModes));
      view->SetMode(v);
      msg.mode = v;
    }
    if (rng.Bernoulli(0.3)) {
      const std::uint64_t v = rng.Next();
      view->SetSeq(v);
      msg.seq = v;
    }
    if (rng.Bernoulli(0.3)) {
      const auto v = static_cast<std::uint32_t>(rng.Next());
      view->SetSnapshotIndex(v);
      msg.snapshot_index = v;
    }

    const net::Buffer reencoded = core::EncodeMsg(msg);
    ASSERT_EQ(view->bytes().size(), reencoded.size());
    EXPECT_TRUE(view->bytes() == net::BufferView(reencoded))
        << "patched bytes diverge from re-encode at iteration " << i;
  }
}

// --- batch envelope framing (DESIGN.md §10) --------------------------------

TEST(BatchCodec, EmptyBatchIsValid) {
  const net::BufferView env = net::EncodeBatchEnvelope({});
  EXPECT_TRUE(net::IsBatchFrame(env));
  const auto batch = net::BatchView::Parse(env);
  ASSERT_TRUE(batch.has_value());
  EXPECT_TRUE(batch->empty());
  EXPECT_EQ(env.size(), net::BatchOverheadBytes(0));
}

TEST(BatchCodec, EnvelopeMagicDistinctFromMessageMagic) {
  // A batch frame must not parse as a protocol message, and vice versa —
  // the store's one-lookahead classifier depends on it.
  core::Msg msg;
  msg.type = core::MsgType::kLeaseRenewOnly;
  msg.key = net::PartitionKey::OfObject(7);
  const net::BufferView encoded{core::EncodeMsg(msg)};
  EXPECT_FALSE(net::IsBatchFrame(encoded));
  const net::BufferView env = net::EncodeBatchEnvelope({});
  EXPECT_FALSE(core::MsgView::Parse(env).has_value());
}

TEST_P(CodecFuzz, BatchEnvelopeRoundTripsSubMessages) {
  Rng rng(GetParam() + 7000);
  for (int i = 0; i < 300; ++i) {
    std::vector<net::BufferView> subs;
    const std::size_t n = rng.NextBounded(9);
    for (std::size_t s = 0; s < n; ++s) {
      core::Msg msg;
      msg.type = static_cast<core::MsgType>(1 + rng.NextBounded(6));
      msg.seq = rng.Next();
      msg.key = net::PartitionKey::OfObject(rng.Next());
      msg.state.resize(rng.NextBounded(64));
      for (auto& b : msg.state) {
        b = std::byte{static_cast<std::uint8_t>(rng.Next())};
      }
      subs.push_back(net::BufferView(core::EncodeMsg(msg)));
    }
    const net::BufferView env = net::EncodeBatchEnvelope(subs);
    EXPECT_TRUE(net::IsBatchFrame(env));
    const auto batch = net::BatchView::Parse(env);
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->size(), subs.size());
    for (std::size_t s = 0; s < subs.size(); ++s) {
      // Bit-for-bit sub-message recovery, and each sub still view-parses as
      // the protocol message it was.
      EXPECT_TRUE(batch->at(s) == subs[s]);
      EXPECT_TRUE(core::MsgView::Parse(batch->at(s)).has_value());
      // The recovered slice shares the envelope's backing store (zero-copy).
      EXPECT_EQ(batch->at(s).buffer().data(), env.buffer().data());
    }
  }
}

TEST_P(CodecFuzz, TruncatedOrMutatedBatchesNeverCrash) {
  Rng rng(GetParam() + 8000);
  for (int i = 0; i < 300; ++i) {
    std::vector<net::BufferView> subs;
    const std::size_t n = 1 + rng.NextBounded(6);
    for (std::size_t s = 0; s < n; ++s) {
      core::Msg msg;
      msg.type = core::MsgType::kLeaseRenewReq;
      msg.seq = rng.Next();
      msg.key = net::PartitionKey::OfObject(rng.Next());
      msg.state.resize(rng.NextBounded(32));
      subs.push_back(net::BufferView(core::EncodeMsg(msg)));
    }
    auto bytes = net::EncodeBatchEnvelope(subs).ToVector();
    // A truncated envelope (sub-message cut mid-body or mid-length-prefix)
    // must be rejected whole, never partially applied.
    auto truncated = bytes;
    truncated.resize(rng.NextBounded(bytes.size()));  // strictly shorter
    EXPECT_FALSE(
        net::BatchView::Parse(net::Buffer::CopyOf(truncated)).has_value());
    // Trailing garbage is rejected too.
    auto padded = bytes;
    padded.resize(bytes.size() + 1 + rng.NextBounded(8), std::byte{0x5a});
    EXPECT_FALSE(
        net::BatchView::Parse(net::Buffer::CopyOf(padded)).has_value());
    // Random byte flips must never crash the parser.
    auto flipped = bytes;
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      flipped[rng.NextBounded(flipped.size())] ^=
          std::byte{static_cast<std::uint8_t>(rng.Next() | 1)};
    }
    (void)net::BatchView::Parse(net::Buffer::CopyOf(flipped));
  }
}

// --- adversarial corpus (campaign fuzz-found hardening) --------------------
// Each case below pins a decoder fix shaken out by the fault/load fuzzer:
// keep them even if the generic mutation loops above stop reaching the
// offending byte patterns.

TEST_P(CodecFuzz, OutOfRangeTypeAndAckBytesAreRejected) {
  Rng rng(GetParam() + 12000);
  for (int i = 0; i < 500; ++i) {
    core::Msg msg;
    msg.type = static_cast<core::MsgType>(1 + rng.NextBounded(8));
    msg.seq = rng.Next();
    msg.key = net::PartitionKey::OfObject(rng.Next());
    msg.state.resize(rng.NextBounded(32));
    const auto bytes = net::BufferView(core::EncodeMsg(msg)).ToVector();

    // Type byte 0 (reserved) or past the last MsgType: a store dispatching
    // on an unknown opcode must drop the frame, not fall into a default arm.
    auto bad_type = bytes;
    bad_type[core::wire::kOffType] = std::byte{static_cast<std::uint8_t>(
        rng.Bernoulli(0.5) ? 0 : 9 + rng.NextBounded(247))};
    EXPECT_FALSE(core::DecodeMsg(bad_type).has_value());
    EXPECT_FALSE(
        core::MsgView::Parse(net::Buffer::CopyOf(bad_type)).has_value());

    // Ack byte past the last AckKind.
    auto bad_ack = bytes;
    bad_ack[core::wire::kOffAck] =
        std::byte{static_cast<std::uint8_t>(10 + rng.NextBounded(246))};
    EXPECT_FALSE(core::DecodeMsg(bad_ack).has_value());
    EXPECT_FALSE(
        core::MsgView::Parse(net::Buffer::CopyOf(bad_ack)).has_value());
  }
}

TEST(BatchCodec, InflatedCountFieldIsRejectedBeforeAllocation) {
  // A 4-byte frame claiming 65535 sub-messages used to reserve ~1.5 MB of
  // offset table before failing on the first sub (allocation amplification:
  // a one-packet attacker cost the store six orders of magnitude more
  // memory than the frame itself).  The count must be bounded against the
  // bytes actually present before any reservation.
  std::vector<std::byte> raw;
  net::ByteWriter w(raw);
  w.U16(net::kBatchMagic);
  w.U16(0xffff);
  EXPECT_FALSE(net::BatchView::Parse(net::Buffer::CopyOf(raw)).has_value());
}

TEST_P(CodecFuzz, ForgedBatchCountsNeverOverReadOrOverAllocate) {
  Rng rng(GetParam() + 13000);
  for (int i = 0; i < 500; ++i) {
    // Real envelope, then a forged count strictly above the true one: the
    // parser must reject (it would either over-read a sub length prefix or
    // see trailing bytes it cannot attribute), never crash.
    std::vector<core::Msg> msgs(1 + rng.NextBounded(4));
    std::vector<net::BufferView> subs;
    for (auto& m : msgs) {
      m.type = core::MsgType::kLeaseRenewReq;
      m.key = net::PartitionKey::OfObject(rng.Next());
      m.state.resize(rng.NextBounded(24));
      subs.push_back(net::BufferView(core::EncodeMsg(m)));
    }
    auto bytes = net::EncodeBatchEnvelope(subs).ToVector();
    const std::uint16_t forged = static_cast<std::uint16_t>(
        subs.size() + 1 + rng.NextBounded(0xffff - subs.size() - 1));
    bytes[2] = std::byte{static_cast<std::uint8_t>(forged >> 8)};
    bytes[3] = std::byte{static_cast<std::uint8_t>(forged & 0xff)};
    EXPECT_FALSE(
        net::BatchView::Parse(net::Buffer::CopyOf(bytes)).has_value());

    // Fully random header fields over a random body: must never crash.
    std::vector<std::byte> junk(4 + rng.NextBounded(64));
    for (auto& b : junk) b = std::byte{static_cast<std::uint8_t>(rng.Next())};
    junk[0] = std::byte{0xB4};
    junk[1] = std::byte{0x7C};
    (void)net::BatchView::Parse(net::Buffer::CopyOf(junk));
  }
}

TEST(MergeCodec, EmptyJoinEmptyStaysEmpty) {
  // Absent state encodes zero.  Widening empty⊔empty to 8 zero bytes broke
  // bytewise idempotence (merge(a, a) != a), which the mergeable-mode replay
  // safety argument depends on.
  std::vector<std::byte> into;
  core::MergeMaxU64(into, {});
  EXPECT_TRUE(into.empty());
  core::MergeMaxU32Lanes(into, {});
  EXPECT_TRUE(into.empty());
  core::MergeOrBytes(into, {});
  EXPECT_TRUE(into.empty());
}

TEST_P(CodecFuzz, MergesAreIdempotentForArbitraryBlobLengths) {
  Rng rng(GetParam() + 14000);
  using MergeFn = void (*)(std::vector<std::byte>&, std::span<const std::byte>);
  const MergeFn merges[] = {core::MergeMaxU64, core::MergeMaxU32Lanes,
                            core::MergeOrBytes};
  for (int i = 0; i < 500; ++i) {
    for (const MergeFn merge : merges) {
      // Lengths deliberately off-lane (0..17 bytes): short, empty, and
      // partial-lane blobs are what a truncating middlebox or a mid-epoch
      // crash produces.
      std::vector<std::byte> a(rng.NextBounded(18));
      std::vector<std::byte> b(rng.NextBounded(18));
      for (auto& x : a) x = std::byte{static_cast<std::uint8_t>(rng.Next())};
      for (auto& x : b) x = std::byte{static_cast<std::uint8_t>(rng.Next())};

      // Idempotence: a ⊔ a == a (after normalization, re-joining is a no-op).
      std::vector<std::byte> aa = a;
      merge(aa, a);
      std::vector<std::byte> aaa = aa;
      merge(aaa, aa);
      EXPECT_EQ(aaa, aa);

      // Replay absorption: (a ⊔ b) ⊔ b == a ⊔ b.
      std::vector<std::byte> ab = a;
      merge(ab, b);
      std::vector<std::byte> abb = ab;
      merge(abb, b);
      EXPECT_EQ(abb, ab);
    }
  }
}

TEST_P(CodecFuzz, UdpLengthMustAgreeWithIpTotalLength) {
  Rng rng(GetParam() + 15000);
  for (int i = 0; i < 300; ++i) {
    net::FlowKey flow;
    flow.src_ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
    flow.dst_ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
    flow.src_port = static_cast<std::uint16_t>(rng.Next());
    flow.dst_port = static_cast<std::uint16_t>(rng.Next());
    flow.proto = net::IpProto::kUdp;
    net::Packet pkt = net::MakeUdpPacket(flow, 0);
    std::vector<std::byte> body(rng.NextBounded(48));
    for (auto& b : body) b = std::byte{static_cast<std::uint8_t>(rng.Next())};
    pkt.payload = std::move(body);
    auto wire = net::Serialize(pkt);
    ASSERT_TRUE(net::Parse(wire).has_value());

    // Forge the UDP header's own length field (offset: 14 eth + 20 ip +
    // 4 ports, big-endian u16) so it disagrees with the IP total length.
    // Accepting it would let a crafted datagram smuggle payload bytes past
    // length-based accounting.
    const std::size_t kUdpLenOff = 14 + 20 + 4;
    const std::uint16_t true_len =
        static_cast<std::uint16_t>(8 + pkt.payload.size());
    std::uint16_t forged;
    do {
      forged = static_cast<std::uint16_t>(8 + rng.NextBounded(200));
    } while (forged == true_len);
    auto bad = wire;
    bad[kUdpLenOff] = std::byte{static_cast<std::uint8_t>(forged >> 8)};
    bad[kUdpLenOff + 1] = std::byte{static_cast<std::uint8_t>(forged & 0xff)};
    EXPECT_FALSE(net::Parse(bad).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace redplane
