// On-failure diagnostics for simulation tests: when a test fails, dump the
// tail of the global tracer ring, every registered diagnostic source (e.g.
// each RedPlane switch's live lease table), and any auditor findings to
// stderr — the flight-recorder readout that turns "EXPECT_EQ(delivered, 2)
// failed" into a debuggable protocol timeline.
//
// Include this header from a test binary and the listener installs itself
// before main() runs; it is inert unless a test fails.
#pragma once

#include <gtest/gtest.h>

#include <iostream>

#include "audit/diag.h"

namespace redplane::testing {

class DiagnosticsOnFailureListener : public ::testing::EmptyTestEventListener {
 public:
  void OnTestPartResult(const ::testing::TestPartResult& result) override {
    if (!result.failed()) return;
    if (dumped_this_test_) return;  // one dump per test is plenty
    dumped_this_test_ = true;
    std::cerr << "[audit_diag] test failure — dumping protocol diagnostics\n";
    audit::DumpDiagnostics(std::cerr, /*last_n=*/64);
  }
  void OnTestStart(const ::testing::TestInfo&) override {
    dumped_this_test_ = false;
  }

 private:
  bool dumped_this_test_ = false;
};

namespace internal {
inline const bool g_diag_listener_installed = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new DiagnosticsOnFailureListener());  // gtest owns appended listeners
  return true;
}();
}  // namespace internal

}  // namespace redplane::testing
