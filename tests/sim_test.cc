#include <gtest/gtest.h>

#include <array>

#include "sim/host.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace redplane::sim {
namespace {

net::FlowKey TestFlow() {
  return {net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 10, 20,
          net::IpProto::kUdp};
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Microseconds(30), [&]() { order.push_back(3); });
  sim.Schedule(Microseconds(10), [&]() { order.push_back(1); });
  sim.Schedule(Microseconds(20), [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Microseconds(30));
}

TEST(SimulatorTest, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Microseconds(5), [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&]() {
    ++fired;
    sim.Schedule(1, [&]() { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 2);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(10, [&]() { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulatorTest, CancelStress100k) {
  // 100k scheduled events, half of them cancelled (including double-cancels
  // and cancels of already-fired ids): exactly the un-cancelled half fires,
  // in timestamp-then-FIFO order, and the queue fully drains.
  Simulator sim;
  constexpr int kEvents = 100000;
  std::vector<EventId> ids;
  ids.reserve(kEvents);
  std::uint64_t fired = 0;
  std::uint64_t last_time = 0;
  for (int i = 0; i < kEvents; ++i) {
    // Many collisions per timestamp to exercise the same-time tie-break.
    const SimDuration t = static_cast<SimDuration>(i % 1000);
    ids.push_back(sim.Schedule(t, [&fired, &last_time, &sim]() {
      ++fired;
      EXPECT_GE(sim.Now(), last_time);
      last_time = sim.Now();
    }));
  }
  for (int i = 0; i < kEvents; i += 2) {
    sim.Cancel(ids[i]);
    sim.Cancel(ids[i]);  // double-cancel must be harmless
  }
  sim.Cancel(0);                       // invalid id: no-op
  sim.Cancel(ids.back() + kEvents);    // never-issued id: no-op
  sim.Run();
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kEvents) / 2);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.EventsProcessed(), static_cast<std::uint64_t>(kEvents) / 2);

  // Cancelling after the run (stale ids) is still a no-op, and the slab is
  // reusable: a fresh burst behaves identically.
  for (const EventId id : ids) sim.Cancel(id);
  std::uint64_t fired2 = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.Schedule(1, [&fired2]() { ++fired2; });
  }
  sim.Run();
  EXPECT_EQ(fired2, 1000u);
}

TEST(SimulatorTest, CancelAfterFireTombstonesStayBounded) {
  // Regression (fuzz-found): cancelling an id that already fired inserted a
  // tombstone into the cancelled-set that nothing ever reclaimed — the id
  // never reappears in the queue, so under protocol-timer churn (arm, fire,
  // cancel-on-teardown, re-arm, ...) the set grew without bound for the
  // lifetime of the simulation.  The purge keeps it proportional to the
  // *live* queue instead.
  Simulator sim;
  for (int round = 0; round < 200; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 50; ++i) {
      ids.push_back(sim.Schedule(1, [] {}));
    }
    sim.Run();
    // Teardown path cancels handles whose events already fired.
    for (const EventId id : ids) sim.Cancel(id);
  }
  // 10k stale cancels total; the tombstone set must stay near-empty (the
  // purge threshold, not the churn volume, bounds it).
  EXPECT_LE(sim.CancelTombstones(), 128u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulatorTest, WheelCancelRearmChurn) {
  // Mass cancel/re-arm churn over wheel-resident timers (far-future
  // schedules land in the hierarchical wheel; their EventIds pack a wheel
  // slot index + generation sequence).  A stale handle from before a
  // re-arm must never cancel the replacement timer even though the wheel
  // slot index is reused.
  Simulator sim;
  constexpr int kTimers = 64;
  std::array<EventId, kTimers> handle{};
  std::array<int, kTimers> fired{};
  auto arm = [&](int t) {
    // >= coarse threshold so the event is wheel-scheduled.
    handle[static_cast<std::size_t>(t)] =
        sim.ScheduleAt(sim.Now() + Milliseconds(5) + Microseconds(t),
                       [&fired, t] { ++fired[static_cast<std::size_t>(t)]; });
  };
  for (int t = 0; t < kTimers; ++t) arm(t);
  // 100 churn rounds: cancel every timer, immediately re-arm it.
  for (int round = 0; round < 100; ++round) {
    for (int t = 0; t < kTimers; ++t) {
      const EventId stale = handle[static_cast<std::size_t>(t)];
      sim.Cancel(stale);
      arm(t);
      sim.Cancel(stale);  // double-cancel of the old generation: no-op
    }
  }
  sim.Run();
  for (int t = 0; t < kTimers; ++t) {
    EXPECT_EQ(fired[static_cast<std::size_t>(t)], 1)
        << "timer " << t << " lost or double-fired under churn";
  }
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_LE(sim.CancelTombstones(), 2 * kTimers * 2u);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator sim;
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulatorTest, RunUntilLeavesLaterEvents) {
  Simulator sim;
  bool early = false, late = false;
  sim.Schedule(10, [&]() { early = true; });
  sim.Schedule(100, [&]() { late = true; });
  sim.RunUntil(50);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  sim.Run();
  EXPECT_TRUE(late);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(100, [&]() {
    sim.Schedule(-50, [&]() { EXPECT_EQ(sim.Now(), 100); });
  });
  sim.Run();
}

class SinkNode : public Node {
 public:
  using Node::Node;
  void HandlePacket(net::Packet pkt, PortId) override {
    arrivals.emplace_back(sim_.Now(), pkt.id);
  }
  std::vector<std::pair<SimTime, net::PacketId>> arrivals;
};

TEST(LinkTest, PropagationAndSerializationDelay) {
  Simulator sim;
  Network net(sim, 1);
  auto* a = net.AddNode<SinkNode>("a");
  auto* b = net.AddNode<SinkNode>("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e9;  // 1 byte/ns
  cfg.propagation = Microseconds(5);
  net.Connect(a, 0, b, 0, cfg);

  net::Packet p = net::MakeUdpPacket(TestFlow(), 0);  // 64 B min frame
  const auto size = p.WireSize();
  a->SendTo(0, std::move(p));
  sim.Run();
  ASSERT_EQ(b->arrivals.size(), 1u);
  EXPECT_EQ(b->arrivals[0].first,
            static_cast<SimTime>(size) + Microseconds(5));
}

TEST(LinkTest, BackToBackPacketsQueueBehindSerialization) {
  Simulator sim;
  Network net(sim, 1);
  auto* a = net.AddNode<SinkNode>("a");
  auto* b = net.AddNode<SinkNode>("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e9;
  cfg.propagation = 0;
  net.Connect(a, 0, b, 0, cfg);

  for (int i = 0; i < 3; ++i) {
    a->SendTo(0, net::MakeUdpPacket(TestFlow(), 0));
  }
  sim.Run();
  ASSERT_EQ(b->arrivals.size(), 3u);
  EXPECT_EQ(b->arrivals[1].first - b->arrivals[0].first, 64);
  EXPECT_EQ(b->arrivals[2].first - b->arrivals[1].first, 64);
}

TEST(LinkTest, LossRateDropsApproximately) {
  Simulator sim;
  Network net(sim, 99);
  auto* a = net.AddNode<SinkNode>("a");
  auto* b = net.AddNode<SinkNode>("b");
  LinkConfig cfg;
  cfg.loss_rate = 0.2;
  Link* link = net.Connect(a, 0, b, 0, cfg);

  const int total = 20000;
  for (int i = 0; i < total; ++i) {
    a->SendTo(0, net::MakeUdpPacket(TestFlow(), 0));
  }
  sim.Run();
  EXPECT_NEAR(static_cast<double>(link->packets_dropped()) / total, 0.2, 0.02);
  EXPECT_EQ(link->packets_delivered() + link->packets_dropped(),
            static_cast<std::uint64_t>(total));
}

TEST(LinkTest, ReorderJitterReordersSomePackets) {
  Simulator sim;
  Network net(sim, 7);
  auto* a = net.AddNode<SinkNode>("a");
  auto* b = net.AddNode<SinkNode>("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.reorder_jitter = Microseconds(10);
  net.Connect(a, 0, b, 0, cfg);

  std::vector<net::PacketId> sent;
  for (int i = 0; i < 200; ++i) {
    auto p = net::MakeUdpPacket(TestFlow(), 0);
    sent.push_back(p.id);
    a->SendTo(0, std::move(p));
  }
  sim.Run();
  ASSERT_EQ(b->arrivals.size(), 200u);
  bool reordered = false;
  for (std::size_t i = 1; i < b->arrivals.size(); ++i) {
    if (b->arrivals[i].second < b->arrivals[i - 1].second) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(LinkTest, DownLinkDropsInFlightAndNew) {
  Simulator sim;
  Network net(sim, 1);
  auto* a = net.AddNode<SinkNode>("a");
  auto* b = net.AddNode<SinkNode>("b");
  LinkConfig cfg;
  cfg.propagation = Microseconds(100);
  Link* link = net.Connect(a, 0, b, 0, cfg);

  a->SendTo(0, net::MakeUdpPacket(TestFlow(), 0));
  sim.Schedule(Microseconds(10), [&]() { link->SetUp(false); });
  sim.Run();
  EXPECT_TRUE(b->arrivals.empty());
  // New traffic while down also drops.
  a->SendTo(0, net::MakeUdpPacket(TestFlow(), 0));
  sim.Run();
  EXPECT_TRUE(b->arrivals.empty());
  // Recovery restores delivery.
  link->SetUp(true);
  a->SendTo(0, net::MakeUdpPacket(TestFlow(), 0));
  sim.Run();
  EXPECT_EQ(b->arrivals.size(), 1u);
}

TEST(NodeTest, DownNodeNeitherSendsNorReceives) {
  Simulator sim;
  Network net(sim, 1);
  auto* a = net.AddNode<SinkNode>("a");
  auto* b = net.AddNode<SinkNode>("b");
  net.Connect(a, 0, b, 0);

  b->SetUp(false);
  a->SendTo(0, net::MakeUdpPacket(TestFlow(), 0));
  sim.Run();
  EXPECT_TRUE(b->arrivals.empty());

  a->SetUp(false);
  a->SendTo(0, net::MakeUdpPacket(TestFlow(), 0));
  sim.Run();
  EXPECT_DOUBLE_EQ(a->counters().Get("drop_node_down"), 1.0);
}

TEST(NetworkTest, LookupByNameAndId) {
  Simulator sim;
  Network net(sim, 1);
  auto* a = net.AddNode<SinkNode>("alpha");
  auto* b = net.AddNode<SinkNode>("beta");
  EXPECT_EQ(net.FindNode("alpha"), a);
  EXPECT_EQ(net.GetNode(b->id()), b);
  EXPECT_EQ(net.FindNode("gamma"), nullptr);
  Link* l = net.Connect(a, 0, b, 0);
  EXPECT_EQ(net.FindLink(a, b), l);
  EXPECT_EQ(net.FindLink(b, a), l);
}

TEST(HostTest, HandlerReceivesAndEchoes) {
  Simulator sim;
  Network net(sim, 1);
  auto* h1 = net.AddNode<HostNode>("h1", net::Ipv4Addr(1, 1, 1, 1));
  auto* h2 = net.AddNode<HostNode>("h2", net::Ipv4Addr(2, 2, 2, 2));
  net.Connect(h1, 0, h2, 0);
  int h1_got = 0;
  h1->SetHandler([&](HostNode&, net::Packet) { ++h1_got; });
  h2->SetHandler([&](HostNode& self, net::Packet pkt) {
    self.Send(std::move(pkt));  // echo
  });
  h1->Send(net::MakeUdpPacket(TestFlow(), 0));
  sim.Run();
  EXPECT_EQ(h1_got, 1);
}

}  // namespace
}  // namespace redplane::sim
