// Byte-level serialization of packets.
//
// All multi-byte fields are network byte order (big-endian).  Parse errors
// are reported via std::optional rather than exceptions: a malformed frame on
// a network is an expected input, not a programming error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace redplane::net {

/// Appends big-endian integers to a byte buffer.  Exposed for the RedPlane
/// protocol codec, which extends packets with its own header.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::byte>& out) : out_(out) {}

  void U8(std::uint8_t v);
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void Bytes(std::span<const std::byte> data);

  std::size_t Size() const { return out_.size(); }
  /// Overwrites a previously written 16-bit field at `offset`.
  void PatchU16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::byte>& out_;
};

/// Reads big-endian integers from a byte buffer; all reads are bounds
/// checked and flip a sticky error flag on overrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::vector<std::byte> Bytes(std::size_t n);
  void Skip(std::size_t n);

  std::size_t Remaining() const { return data_.size() - pos_; }
  bool ok() const { return ok_; }

 private:
  bool Ensure(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Serializes a packet to wire bytes (Ethernet/IP/UDP-or-TCP/payload).
/// Pad bytes are emitted as zeros.  Length and checksum fields are computed.
std::vector<std::byte> Serialize(const Packet& p);

/// Parses wire bytes back into a structured packet.  The parsed packet's
/// `payload` holds everything after the innermost recognized header (pad
/// bytes are not distinguishable from payload on the wire, so they come back
/// inside `payload`).  Returns nullopt on malformed input or bad checksums.
std::optional<Packet> Parse(std::span<const std::byte> wire);

}  // namespace redplane::net
