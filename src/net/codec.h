// Byte-level serialization of packets.
//
// All multi-byte fields are network byte order (big-endian).  Parse errors
// are reported via std::optional rather than exceptions: a malformed frame on
// a network is an expected input, not a programming error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/buffer.h"
#include "net/packet.h"

namespace redplane::net {

/// Appends big-endian integers to a byte buffer.  Exposed for the RedPlane
/// protocol codec, which extends packets with its own header.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::byte>& out) : out_(out) {}

  void U8(std::uint8_t v);
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void Bytes(std::span<const std::byte> data);

  std::size_t Size() const { return out_.size(); }
  /// Overwrites a previously written 16-bit field at `offset`.
  void PatchU16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::byte>& out_;
};

/// Reads big-endian integers from a byte buffer; all reads are bounds
/// checked and flip a sticky error flag on overrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::vector<std::byte> Bytes(std::size_t n);
  void Skip(std::size_t n);

  std::size_t Remaining() const { return data_.size() - pos_; }
  bool ok() const { return ok_; }

 private:
  bool Ensure(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Serializes a packet to wire bytes (Ethernet/IP/UDP-or-TCP/payload).
/// Pad bytes are emitted as zeros.  Length and checksum fields are computed.
std::vector<std::byte> Serialize(const Packet& p);

/// Parses wire bytes back into a structured packet.  The parsed packet's
/// `payload` holds everything after the innermost recognized header (pad
/// bytes are not distinguishable from payload on the wire, so they come back
/// inside `payload`).  Returns nullopt on malformed input or bad checksums.
std::optional<Packet> Parse(std::span<const std::byte> wire);

/// --- batch envelope (DESIGN.md §10) ---
///
/// Frames N already-encoded messages as one payload:
///
///   magic(u16) | count(u16) | { len(u32) | bytes }*count
///
/// The envelope is payload-agnostic: sub-messages are opaque byte runs, so
/// the net layer never re-serializes (or even understands) what it wraps.
/// The magic is distinct from any inner protocol's so a one-lookahead
/// classifier can tell envelope from single message.

/// First two payload bytes of a batch envelope frame.
constexpr std::uint16_t kBatchMagic = 0xB47C;

/// Number of framing bytes for an envelope of `count` sub-messages (header
/// plus per-sub length prefixes); used for bandwidth accounting.
constexpr std::size_t BatchOverheadBytes(std::size_t count) {
  return 4 + 4 * count;
}

/// True if `payload` starts with the batch magic.
bool IsBatchFrame(const BufferView& payload);

/// Concatenates already-encoded sub-messages into one envelope frame.  One
/// backing-store allocation; each sub-message is memcpy'd verbatim — no
/// re-serialization of its contents.  An empty span yields a valid empty
/// envelope (count 0).
BufferView EncodeBatchEnvelope(std::span<const BufferView> msgs);

/// Zero-copy view of a parsed envelope: `at(i)` slices share the frame's
/// backing buffer, so unpacking a batch allocates nothing but the offset
/// table.
class BatchView {
 public:
  /// Validates the magic, the count, and every sub-message length against
  /// the frame bounds; nullopt on truncation or trailing garbage.
  static std::optional<BatchView> Parse(BufferView frame);

  std::size_t size() const { return subs_.size(); }
  bool empty() const { return subs_.empty(); }
  const BufferView& at(std::size_t i) const { return subs_[i]; }
  const std::vector<BufferView>& subs() const { return subs_; }

 private:
  std::vector<BufferView> subs_;
};

}  // namespace redplane::net
