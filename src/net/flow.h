// Flow identification.
//
// RedPlane partitions application state by a key derived from the packet
// header (§2, "State partitioning").  The canonical key is the IP 5-tuple;
// applications may instead partition by VLAN id or an application-specific
// object id.  FlowKey models the 5-tuple; PartitionKey generalizes it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/headers.h"

namespace redplane::net {

/// The IP 5-tuple.
struct FlowKey {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kUdp;

  auto operator<=>(const FlowKey&) const = default;

  /// The key for the reverse direction of this flow.
  FlowKey Reversed() const {
    return FlowKey{dst_ip, src_ip, dst_port, src_port, proto};
  }
};

/// Stable 64-bit hash of a flow key (used for sharding and ECMP seeds).
std::uint64_t HashFlowKey(const FlowKey& key);

std::string ToString(const FlowKey& key);

/// A generalized partition key: either a 5-tuple flow, a VLAN id, or an
/// application object id.  RedPlane replicates state per partition key.
struct PartitionKey {
  enum class Kind : std::uint8_t { kFlow, kVlan, kObject };

  Kind kind = Kind::kFlow;
  FlowKey flow;           // valid when kind == kFlow
  std::uint16_t vlan = 0; // valid when kind == kVlan
  std::uint64_t object = 0; // valid when kind == kObject

  static PartitionKey OfFlow(const FlowKey& f) {
    PartitionKey k;
    k.kind = Kind::kFlow;
    k.flow = f;
    return k;
  }
  static PartitionKey OfVlan(std::uint16_t v) {
    PartitionKey k;
    k.kind = Kind::kVlan;
    k.vlan = v;
    return k;
  }
  static PartitionKey OfObject(std::uint64_t o) {
    PartitionKey k;
    k.kind = Kind::kObject;
    k.object = o;
    return k;
  }

  auto operator<=>(const PartitionKey&) const = default;
};

std::uint64_t HashPartitionKey(const PartitionKey& key);
std::string ToString(const PartitionKey& key);

}  // namespace redplane::net

namespace std {
template <>
struct hash<redplane::net::FlowKey> {
  size_t operator()(const redplane::net::FlowKey& k) const {
    return static_cast<size_t>(redplane::net::HashFlowKey(k));
  }
};
template <>
struct hash<redplane::net::PartitionKey> {
  size_t operator()(const redplane::net::PartitionKey& k) const {
    return static_cast<size_t>(redplane::net::HashPartitionKey(k));
  }
};
}  // namespace std
