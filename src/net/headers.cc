#include "net/headers.h"

#include <cstdio>

namespace redplane::net {

std::string ToString(Ipv4Addr addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr.value >> 24) & 0xff,
                (addr.value >> 16) & 0xff, (addr.value >> 8) & 0xff,
                addr.value & 0xff);
  return buf;
}

std::string ToString(const MacAddr& mac) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                mac.bytes[0], mac.bytes[1], mac.bytes[2], mac.bytes[3],
                mac.bytes[4], mac.bytes[5]);
  return buf;
}

std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  while (len > 1) {
    sum += (static_cast<std::uint32_t>(data[0]) << 8) | data[1];
    data += 2;
    len -= 2;
  }
  if (len == 1) sum += static_cast<std::uint32_t>(data[0]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace redplane::net
