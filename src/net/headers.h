// Protocol header definitions (Ethernet, IPv4, UDP, TCP).
//
// Headers are plain value structs; byte-level serialization lives in
// net/codec.h.  Addresses are strong types so an IPv4 address cannot be
// confused with a port or a node id at a call site.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace redplane::net {

/// An IPv4 address held in host byte order.
struct Ipv4Addr {
  std::uint32_t value = 0;

  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t v) : value(v) {}
  /// Builds an address from dotted-quad components.
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  auto operator<=>(const Ipv4Addr&) const = default;
};

/// Renders an address as dotted quad, e.g. "10.0.0.1".
std::string ToString(Ipv4Addr addr);

/// A 48-bit MAC address.
struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};
  auto operator<=>(const MacAddr&) const = default;
};

std::string ToString(const MacAddr& mac);

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  EtherType ethertype = EtherType::kIpv4;

  static constexpr std::size_t kWireSize = 14;
};

/// IP protocol numbers used in this codebase.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  Ipv4Addr src;
  Ipv4Addr dst;
  /// Filled in by the codec on serialize; validated on parse.
  std::uint16_t total_length = 0;

  static constexpr std::size_t kWireSize = 20;  // no options
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// Filled in by the codec on serialize; validated on parse.
  std::uint16_t length = 0;

  static constexpr std::size_t kWireSize = 8;
};

/// TCP flag bits (RFC 793 order).
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;

  bool syn() const { return flags & TcpFlags::kSyn; }
  bool fin() const { return flags & TcpFlags::kFin; }
  bool rst() const { return flags & TcpFlags::kRst; }
  bool ack_flag() const { return flags & TcpFlags::kAck; }

  static constexpr std::size_t kWireSize = 20;  // no options
};

/// RFC 1071 Internet checksum over a byte range (used for IPv4 headers).
std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len);

}  // namespace redplane::net
