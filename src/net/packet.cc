#include "net/packet.h"

#include <atomic>

namespace redplane::net {

namespace {
std::atomic<PacketId> g_next_packet_id{1};
}  // namespace

PacketId NextPacketId() {
  return g_next_packet_id.fetch_add(1, std::memory_order_relaxed);
}

void ResetPacketIds() {
  g_next_packet_id.store(1, std::memory_order_relaxed);
}

std::size_t Packet::WireSize() const {
  std::size_t size = 0;
  if (eth) size += EthernetHeader::kWireSize;
  if (vlan != 0) size += 4;  // 802.1Q tag
  if (ip) size += Ipv4Header::kWireSize;
  if (udp) size += UdpHeader::kWireSize;
  if (tcp) size += TcpHeader::kWireSize;
  size += payload.size();
  size += pad_bytes;
  // Minimum Ethernet frame size.
  if (eth && size < 64) size = 64;
  return size;
}

std::optional<FlowKey> Packet::Flow() const {
  if (!ip) return std::nullopt;
  FlowKey key;
  key.src_ip = ip->src;
  key.dst_ip = ip->dst;
  key.proto = ip->protocol;
  if (udp) {
    key.src_port = udp->src_port;
    key.dst_port = udp->dst_port;
  } else if (tcp) {
    key.src_port = tcp->src_port;
    key.dst_port = tcp->dst_port;
  } else {
    return std::nullopt;
  }
  return key;
}

Packet MakeUdpPacket(const FlowKey& flow, std::uint32_t pad_bytes) {
  Packet p;
  p.id = NextPacketId();
  p.eth = EthernetHeader{};
  Ipv4Header ip;
  ip.src = flow.src_ip;
  ip.dst = flow.dst_ip;
  ip.protocol = IpProto::kUdp;
  p.ip = ip;
  UdpHeader udp;
  udp.src_port = flow.src_port;
  udp.dst_port = flow.dst_port;
  p.udp = udp;
  p.pad_bytes = pad_bytes;
  return p;
}

Packet MakeTcpPacket(const FlowKey& flow, std::uint8_t flags,
                     std::uint32_t seq, std::uint32_t ack,
                     std::uint32_t pad_bytes) {
  Packet p;
  p.id = NextPacketId();
  p.eth = EthernetHeader{};
  Ipv4Header ip;
  ip.src = flow.src_ip;
  ip.dst = flow.dst_ip;
  ip.protocol = IpProto::kTcp;
  p.ip = ip;
  TcpHeader tcp;
  tcp.src_port = flow.src_port;
  tcp.dst_port = flow.dst_port;
  tcp.flags = flags;
  tcp.seq = seq;
  tcp.ack = ack;
  p.tcp = tcp;
  p.pad_bytes = pad_bytes;
  return p;
}

std::string Describe(const Packet& p) {
  std::string s = "pkt#" + std::to_string(p.id);
  if (auto flow = p.Flow()) {
    s += " " + ToString(*flow);
  }
  s += " (" + std::to_string(p.WireSize()) + "B)";
  return s;
}

}  // namespace redplane::net
