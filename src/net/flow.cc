#include "net/flow.h"

#include "common/hash.h"

namespace redplane::net {

std::uint64_t HashFlowKey(const FlowKey& key) {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  h = HashCombine(h, key.src_ip.value);
  h = HashCombine(h, key.dst_ip.value);
  h = HashCombine(h, (static_cast<std::uint64_t>(key.src_port) << 32) |
                         (static_cast<std::uint64_t>(key.dst_port) << 16) |
                         static_cast<std::uint64_t>(key.proto));
  return h;
}

std::string ToString(const FlowKey& key) {
  std::string s = ToString(key.src_ip);
  s += ":" + std::to_string(key.src_port) + "->" + ToString(key.dst_ip) + ":" +
       std::to_string(key.dst_port);
  s += key.proto == IpProto::kTcp ? "/tcp"
       : key.proto == IpProto::kUdp ? "/udp"
                                    : "/other";
  return s;
}

std::uint64_t HashPartitionKey(const PartitionKey& key) {
  switch (key.kind) {
    case PartitionKey::Kind::kFlow:
      return HashCombine(0x1, HashFlowKey(key.flow));
    case PartitionKey::Kind::kVlan:
      return HashCombine(0x2, key.vlan);
    case PartitionKey::Kind::kObject:
      return HashCombine(0x3, key.object);
  }
  return 0;
}

std::string ToString(const PartitionKey& key) {
  switch (key.kind) {
    case PartitionKey::Kind::kFlow:
      return "flow:" + ToString(key.flow);
    case PartitionKey::Kind::kVlan:
      return "vlan:" + std::to_string(key.vlan);
    case PartitionKey::Kind::kObject:
      return "obj:" + std::to_string(key.object);
  }
  return "?";
}

}  // namespace redplane::net
