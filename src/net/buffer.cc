#include "net/buffer.h"

#include <algorithm>
#include <cstring>

namespace redplane::net {

namespace {
std::atomic<std::uint64_t> g_deep_copies{0};
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

Buffer Buffer::FromVector(std::vector<std::byte>&& bytes) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return Buffer(
      std::make_shared<std::vector<std::byte>>(std::move(bytes)));
}

Buffer Buffer::CopyOf(std::span<const std::byte> bytes) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_deep_copies.fetch_add(1, std::memory_order_relaxed);
  return Buffer(std::make_shared<std::vector<std::byte>>(bytes.begin(),
                                                         bytes.end()));
}

std::uint64_t Buffer::DeepCopies() {
  return g_deep_copies.load(std::memory_order_relaxed);
}

std::uint64_t Buffer::Allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

void Buffer::ResetCounters() {
  g_deep_copies.store(0, std::memory_order_relaxed);
  g_allocations.store(0, std::memory_order_relaxed);
}

std::byte* BufferView::EnsureUnique() {
  if (!buffer_.unique()) {
    // Clone just the viewed range; the view re-bases onto the clone.
    *this = BufferView(Buffer::CopyOf(span()));
  }
  return buffer_.data_->data() + offset_;
}

void BufferView::Patch(std::size_t offset,
                       std::span<const std::byte> bytes) {
  if (offset + bytes.size() > len_ || bytes.empty()) return;
  std::memcpy(EnsureUnique() + offset, bytes.data(), bytes.size());
}

void BufferView::PatchU8(std::size_t offset, std::uint8_t v) {
  if (offset + 1 > len_) return;
  EnsureUnique()[offset] = std::byte{v};
}

void BufferView::PatchU16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > len_) return;
  std::byte* p = EnsureUnique() + offset;
  p[0] = std::byte{static_cast<std::uint8_t>(v >> 8)};
  p[1] = std::byte{static_cast<std::uint8_t>(v)};
}

void BufferView::PatchU32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > len_) return;
  std::byte* p = EnsureUnique() + offset;
  p[0] = std::byte{static_cast<std::uint8_t>(v >> 24)};
  p[1] = std::byte{static_cast<std::uint8_t>(v >> 16)};
  p[2] = std::byte{static_cast<std::uint8_t>(v >> 8)};
  p[3] = std::byte{static_cast<std::uint8_t>(v)};
}

void BufferView::PatchU64(std::size_t offset, std::uint64_t v) {
  if (offset + 8 > len_) return;
  PatchU32(offset, static_cast<std::uint32_t>(v >> 32));
  PatchU32(offset + 4, static_cast<std::uint32_t>(v));
}

std::uint8_t BufferView::U8At(std::size_t offset) const {
  if (offset + 1 > len_) return 0;
  return static_cast<std::uint8_t>(data()[offset]);
}

std::uint16_t BufferView::U16At(std::size_t offset) const {
  if (offset + 2 > len_) return 0;
  const std::byte* p = data() + offset;
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(p[0]) << 8) |
      static_cast<std::uint16_t>(p[1]));
}

std::uint32_t BufferView::U32At(std::size_t offset) const {
  if (offset + 4 > len_) return 0;
  return (static_cast<std::uint32_t>(U16At(offset)) << 16) |
         U16At(offset + 2);
}

std::uint64_t BufferView::U64At(std::size_t offset) const {
  if (offset + 8 > len_) return 0;
  return (static_cast<std::uint64_t>(U32At(offset)) << 32) |
         U32At(offset + 4);
}

bool operator==(const BufferView& a, const BufferView& b) {
  return a.size() == b.size() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size()) == 0);
}

}  // namespace redplane::net
