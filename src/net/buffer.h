// Immutable, refcounted byte buffers and cheap views over them.
//
// `Buffer` owns a byte array behind a shared_ptr: copying a Buffer (or a
// `BufferView` slice of one) bumps a refcount instead of memcpying bytes.
// This is what makes hop-to-hop packet forwarding in the simulator a pointer
// bump: `Packet::payload` is a BufferView, so a packet crossing ten links
// shares one backing store with every queued copy of itself.
//
// Ownership/mutation contract (see DESIGN.md §8):
//   - A Buffer's bytes are immutable once the buffer is shared (refcount >1).
//   - `BufferView::Patch*` is the only mutation door: it writes in place when
//     the view holds the sole reference, and transparently copies-on-write
//     (cloning just the viewed range) otherwise.  Callers therefore never
//     observe another holder's bytes changing under them.
//   - Slicing (`Slice`, mirror truncation) never copies.
//
// The static `DeepCopies()` / `Allocations()` counters instrument the
// copy-regression tests in tests/zero_copy_test.cc; they are process-wide
// and not synchronized beyond atomicity (the simulator is single-threaded).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

namespace redplane::net {

/// Refcounted immutable byte array.  Copies are O(1).
class Buffer {
 public:
  Buffer() = default;

  /// Takes ownership of `bytes` without copying.
  static Buffer FromVector(std::vector<std::byte>&& bytes);

  /// Deep-copies `bytes` into a fresh backing store.
  static Buffer CopyOf(std::span<const std::byte> bytes);

  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }
  const std::byte* data() const { return data_ ? data_->data() : nullptr; }
  std::span<const std::byte> span() const { return {data(), size()}; }
  operator std::span<const std::byte>() const { return span(); }  // NOLINT

  /// True when this handle is the only reference to the backing store (and
  /// in-place mutation is therefore unobservable).
  bool unique() const { return data_ && data_.use_count() == 1; }

  explicit operator bool() const { return static_cast<bool>(data_); }

  /// --- instrumentation (for copy/alloc regression tests) ---
  /// Number of byte-copying backing-store creations since reset.
  static std::uint64_t DeepCopies();
  /// Number of backing stores created since reset (copying or not).
  static std::uint64_t Allocations();
  static void ResetCounters();

 private:
  friend class BufferView;
  explicit Buffer(std::shared_ptr<std::vector<std::byte>> data)
      : data_(std::move(data)) {}

  std::shared_ptr<std::vector<std::byte>> data_;
};

/// A [offset, offset+len) window into a Buffer.  Copies share the backing
/// store; `Slice` re-windows without copying.  Implicitly converts from
/// std::vector so legacy "build bytes locally, assign to payload" call sites
/// keep working (a moved-from vector is adopted without copying).
class BufferView {
 public:
  BufferView() = default;

  /// Views the whole buffer.
  BufferView(Buffer buffer)  // NOLINT(google-explicit-constructor)
      : buffer_(std::move(buffer)), offset_(0), len_(buffer_.size()) {}

  BufferView(Buffer buffer, std::size_t offset, std::size_t len)
      : buffer_(std::move(buffer)), offset_(offset), len_(len) {}

  /// Adopts the vector's storage — no byte copy.
  BufferView(std::vector<std::byte>&& bytes)  // NOLINT
      : BufferView(Buffer::FromVector(std::move(bytes))) {}

  /// Deep-copies (legacy convenience; counted by Buffer::DeepCopies).
  BufferView(const std::vector<std::byte>& bytes)  // NOLINT
      : BufferView(Buffer::CopyOf(bytes)) {}

  BufferView(std::initializer_list<std::byte> bytes)  // NOLINT
      : BufferView(Buffer::CopyOf({bytes.begin(), bytes.size()})) {}

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const std::byte* data() const { return buffer_.data() + offset_; }
  const std::byte* begin() const { return data(); }
  const std::byte* end() const { return data() + len_; }
  std::byte operator[](std::size_t i) const { return data()[i]; }

  std::span<const std::byte> span() const { return {data(), len_}; }
  operator std::span<const std::byte>() const { return span(); }  // NOLINT

  /// Sub-window relative to this view; zero-copy.
  BufferView Slice(std::size_t offset, std::size_t len) const {
    return BufferView(buffer_, offset_ + offset, len);
  }
  /// First `len` bytes (zero-copy) — mirror truncation.
  BufferView Prefix(std::size_t len) const {
    return Slice(0, len < len_ ? len : len_);
  }

  std::vector<std::byte> ToVector() const { return {begin(), end()}; }

  void clear() { *this = BufferView(); }

  /// --- in-place patching (copy-on-write) ---
  /// Overwrites bytes at `offset` (relative to the view).  Mutates in place
  /// when this view holds the sole reference to the backing store; otherwise
  /// clones the viewed range first (counted as a deep copy).  Out-of-range
  /// patches are ignored.
  void Patch(std::size_t offset, std::span<const std::byte> bytes);
  void PatchU8(std::size_t offset, std::uint8_t v);
  void PatchU16(std::size_t offset, std::uint16_t v);
  void PatchU32(std::size_t offset, std::uint32_t v);
  void PatchU64(std::size_t offset, std::uint64_t v);

  /// Big-endian reads (bounds-checked; 0 on overrun).
  std::uint8_t U8At(std::size_t offset) const;
  std::uint16_t U16At(std::size_t offset) const;
  std::uint32_t U32At(std::size_t offset) const;
  std::uint64_t U64At(std::size_t offset) const;

  const Buffer& buffer() const { return buffer_; }
  std::size_t offset() const { return offset_; }

 private:
  /// Ensures sole ownership of the viewed range; returns mutable base ptr.
  std::byte* EnsureUnique();

  Buffer buffer_;
  std::size_t offset_ = 0;
  std::size_t len_ = 0;
};

bool operator==(const BufferView& a, const BufferView& b);
inline bool operator!=(const BufferView& a, const BufferView& b) {
  return !(a == b);
}

}  // namespace redplane::net
