#include "net/codec.h"

#include <cassert>

#include "obs/profiler.h"

namespace redplane::net {

namespace {
// Serialize/Parse run per packet on every link hop; sample 1-in-64 so the
// armed cost is a countdown decrement on the other 63.
obs::ProfSite g_prof_serialize("net.serialize", /*stride=*/64);
obs::ProfSite g_prof_parse("net.parse", /*stride=*/64);
}  // namespace

void ByteWriter::U8(std::uint8_t v) { out_.push_back(std::byte{v}); }

void ByteWriter::U16(std::uint16_t v) {
  U8(static_cast<std::uint8_t>(v >> 8));
  U8(static_cast<std::uint8_t>(v));
}

void ByteWriter::U32(std::uint32_t v) {
  U16(static_cast<std::uint16_t>(v >> 16));
  U16(static_cast<std::uint16_t>(v));
}

void ByteWriter::U64(std::uint64_t v) {
  U32(static_cast<std::uint32_t>(v >> 32));
  U32(static_cast<std::uint32_t>(v));
}

void ByteWriter::Bytes(std::span<const std::byte> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::PatchU16(std::size_t offset, std::uint16_t v) {
  assert(offset + 2 <= out_.size());
  out_[offset] = std::byte{static_cast<std::uint8_t>(v >> 8)};
  out_[offset + 1] = std::byte{static_cast<std::uint8_t>(v)};
}

bool ByteReader::Ensure(std::size_t n) {
  if (pos_ + n > data_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::U8() {
  if (!Ensure(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t ByteReader::U16() {
  std::uint16_t hi = U8();
  return static_cast<std::uint16_t>((hi << 8) | U8());
}

std::uint32_t ByteReader::U32() {
  std::uint32_t hi = U16();
  return (hi << 16) | U16();
}

std::uint64_t ByteReader::U64() {
  std::uint64_t hi = U32();
  return (hi << 32) | U32();
}

std::vector<std::byte> ByteReader::Bytes(std::size_t n) {
  if (!Ensure(n)) return {};
  std::vector<std::byte> out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

void ByteReader::Skip(std::size_t n) {
  if (Ensure(n)) pos_ += n;
}

namespace {

void WriteIpv4(ByteWriter& w, const Ipv4Header& ip, std::size_t l4_size,
               std::vector<std::byte>& buf) {
  const std::size_t start = buf.size();
  const std::uint16_t total =
      static_cast<std::uint16_t>(Ipv4Header::kWireSize + l4_size);
  w.U8(0x45);  // version 4, IHL 5
  w.U8(ip.dscp << 2);
  w.U16(total);
  w.U16(ip.identification);
  w.U16(0);  // flags/fragment
  w.U8(ip.ttl);
  w.U8(static_cast<std::uint8_t>(ip.protocol));
  w.U16(0);  // checksum placeholder
  w.U32(ip.src.value);
  w.U32(ip.dst.value);
  const std::uint16_t csum = InternetChecksum(
      reinterpret_cast<const std::uint8_t*>(buf.data() + start),
      Ipv4Header::kWireSize);
  w.PatchU16(start + 10, csum);
}

}  // namespace

std::vector<std::byte> Serialize(const Packet& p) {
  obs::ProfScope prof(g_prof_serialize);
  std::vector<std::byte> out;
  ByteWriter w(out);

  if (p.eth) {
    w.Bytes(std::as_bytes(std::span(p.eth->dst.bytes)));
    w.Bytes(std::as_bytes(std::span(p.eth->src.bytes)));
    if (p.vlan != 0) {
      w.U16(0x8100);
      w.U16(p.vlan & 0x0fff);
    }
    w.U16(static_cast<std::uint16_t>(p.eth->ethertype));
  }

  const std::size_t payload_size = p.payload.size() + p.pad_bytes;
  std::size_t l4_size = payload_size;
  if (p.udp) l4_size += UdpHeader::kWireSize;
  if (p.tcp) l4_size += TcpHeader::kWireSize;

  if (p.ip) WriteIpv4(w, *p.ip, l4_size, out);

  if (p.udp) {
    w.U16(p.udp->src_port);
    w.U16(p.udp->dst_port);
    w.U16(static_cast<std::uint16_t>(UdpHeader::kWireSize + payload_size));
    w.U16(0);  // UDP checksum optional in IPv4; we transmit 0
  } else if (p.tcp) {
    w.U16(p.tcp->src_port);
    w.U16(p.tcp->dst_port);
    w.U32(p.tcp->seq);
    w.U32(p.tcp->ack);
    w.U8(0x50);  // data offset 5 words
    w.U8(p.tcp->flags);
    w.U16(p.tcp->window);
    w.U16(0);  // checksum (not validated by the simulator)
    w.U16(0);  // urgent pointer
  }

  w.Bytes(p.payload);
  out.resize(out.size() + p.pad_bytes, std::byte{0});
  return out;
}

bool IsBatchFrame(const BufferView& payload) {
  return payload.size() >= 2 && payload.U16At(0) == kBatchMagic;
}

BufferView EncodeBatchEnvelope(std::span<const BufferView> msgs) {
  std::size_t total = BatchOverheadBytes(msgs.size());
  for (const BufferView& m : msgs) total += m.size();
  std::vector<std::byte> out;
  out.reserve(total);
  ByteWriter w(out);
  w.U16(kBatchMagic);
  w.U16(static_cast<std::uint16_t>(msgs.size()));
  for (const BufferView& m : msgs) {
    w.U32(static_cast<std::uint32_t>(m.size()));
    w.Bytes(m);
  }
  return Buffer::FromVector(std::move(out));
}

std::optional<BatchView> BatchView::Parse(BufferView frame) {
  if (frame.size() < 4 || frame.U16At(0) != kBatchMagic) return std::nullopt;
  const std::size_t count = frame.U16At(2);
  // Bound the claimed count against the bytes actually present (each sub
  // costs at least its 4-byte length prefix) before reserving: a 4-byte
  // frame claiming 65535 subs used to reserve ~1.5 MB and then fail on the
  // first sub anyway (fuzz-found allocation amplification).
  if (frame.size() < 4 + 4 * count) return std::nullopt;
  BatchView v;
  v.subs_.reserve(count);
  std::size_t pos = 4;
  for (std::size_t i = 0; i < count; ++i) {
    if (pos + 4 > frame.size()) return std::nullopt;
    const std::size_t len = frame.U32At(pos);
    pos += 4;
    if (pos + len > frame.size()) return std::nullopt;
    v.subs_.push_back(frame.Slice(pos, len));
    pos += len;
  }
  if (pos != frame.size()) return std::nullopt;  // trailing garbage
  return v;
}

std::optional<Packet> Parse(std::span<const std::byte> wire) {
  obs::ProfScope prof(g_prof_parse);
  ByteReader r(wire);
  Packet p;
  p.id = NextPacketId();

  EthernetHeader eth;
  auto dst = r.Bytes(6);
  auto src = r.Bytes(6);
  std::uint16_t ethertype = r.U16();
  if (!r.ok()) return std::nullopt;
  std::copy(dst.begin(), dst.end(),
            reinterpret_cast<std::byte*>(eth.dst.bytes.data()));
  std::copy(src.begin(), src.end(),
            reinterpret_cast<std::byte*>(eth.src.bytes.data()));
  if (ethertype == 0x8100) {
    p.vlan = r.U16() & 0x0fff;
    ethertype = r.U16();
  }
  eth.ethertype = static_cast<EtherType>(ethertype);
  p.eth = eth;
  if (eth.ethertype != EtherType::kIpv4) return std::nullopt;

  const std::size_t ip_start = wire.size() - r.Remaining();
  const std::uint8_t ver_ihl = r.U8();
  if ((ver_ihl >> 4) != 4 || (ver_ihl & 0x0f) != 5) return std::nullopt;
  Ipv4Header ip;
  ip.dscp = r.U8() >> 2;
  ip.total_length = r.U16();
  ip.identification = r.U16();
  r.Skip(2);  // flags/fragment
  ip.ttl = r.U8();
  ip.protocol = static_cast<IpProto>(r.U8());
  r.Skip(2);  // checksum (validated below over the raw bytes)
  ip.src = Ipv4Addr(r.U32());
  ip.dst = Ipv4Addr(r.U32());
  if (!r.ok()) return std::nullopt;
  if (InternetChecksum(
          reinterpret_cast<const std::uint8_t*>(wire.data() + ip_start),
          Ipv4Header::kWireSize) != 0) {
    return std::nullopt;
  }
  p.ip = ip;
  if (ip.total_length < Ipv4Header::kWireSize) return std::nullopt;
  std::size_t l4_len = ip.total_length - Ipv4Header::kWireSize;

  if (ip.protocol == IpProto::kUdp) {
    UdpHeader udp;
    udp.src_port = r.U16();
    udp.dst_port = r.U16();
    udp.length = r.U16();
    r.Skip(2);
    if (!r.ok() || udp.length < UdpHeader::kWireSize) return std::nullopt;
    // The UDP header's own length must agree with what the IP total length
    // leaves for L4; a mismatch used to be silently accepted, letting a
    // crafted datagram smuggle payload bytes past length-based accounting
    // (fuzz-found silent-accept).  Serialize always emits them equal.
    if (udp.length != l4_len) return std::nullopt;
    p.udp = udp;
    p.payload = r.Bytes(udp.length - UdpHeader::kWireSize);
  } else if (ip.protocol == IpProto::kTcp) {
    TcpHeader tcp;
    tcp.src_port = r.U16();
    tcp.dst_port = r.U16();
    tcp.seq = r.U32();
    tcp.ack = r.U32();
    const std::uint8_t offset = r.U8() >> 4;
    tcp.flags = r.U8();
    tcp.window = r.U16();
    r.Skip(4);  // checksum + urgent
    if (!r.ok() || offset < 5) return std::nullopt;
    r.Skip((offset - 5) * 4);
    p.tcp = tcp;
    if (l4_len < static_cast<std::size_t>(offset) * 4) return std::nullopt;
    p.payload = r.Bytes(l4_len - offset * 4);
  } else {
    return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return p;
}

}  // namespace redplane::net
