// The packet value type passed through the simulated network.
//
// The simulator moves structured packets (parsed headers + payload bytes)
// rather than raw buffers; net/codec.h round-trips packets to wire bytes and
// is exercised at encapsulation boundaries and in tests.  A packet's payload
// has two parts: `payload`, real bytes that components interpret (RedPlane
// protocol messages, app-specific headers), and `pad_bytes`, a count of
// opaque application bytes that contribute to the wire size but are never
// inspected — this keeps multi-gigabyte workloads cheap to simulate without
// distorting bandwidth accounting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/buffer.h"
#include "net/flow.h"
#include "net/headers.h"

namespace redplane::net {

/// Monotonic id assigned at packet creation; used for tracing and for the
/// linearizability checker's input/output event matching.
using PacketId = std::uint64_t;

struct Packet {
  PacketId id = 0;

  std::optional<EthernetHeader> eth;
  std::optional<Ipv4Header> ip;
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  /// 802.1Q VLAN id, if tagged (0 = untagged).
  std::uint16_t vlan = 0;

  /// Interpreted payload bytes (e.g. an encoded RedPlane message).  A view:
  /// copying the packet shares the payload's backing store (see buffer.h),
  /// so per-hop forwarding never copies payload bytes.
  BufferView payload;
  /// Additional opaque payload bytes counted in the wire size only.
  std::uint32_t pad_bytes = 0;

  /// Simulation metadata (not serialized).
  SimTime created_at = 0;
  NodeId origin = kInvalidNode;

  /// Total bytes this packet occupies on the wire.
  std::size_t WireSize() const;

  /// Extracts the 5-tuple, if the packet has IP + L4 headers.
  std::optional<FlowKey> Flow() const;

  /// True if this packet carries a UDP datagram to the given port.
  bool IsUdpTo(std::uint16_t port) const {
    return udp.has_value() && udp->dst_port == port;
  }
};

/// Allocates a fresh packet id (process-wide monotonic counter).
PacketId NextPacketId();

/// Restarts the packet id counter at 1.  Only for tests that run several
/// simulations in one process and compare their traces byte-for-byte:
/// packet ids appear in trace exports, so each "run" must start from the
/// same counter state.
void ResetPacketIds();

/// Convenience builders used throughout tests and workloads.
Packet MakeUdpPacket(const FlowKey& flow, std::uint32_t pad_bytes);
Packet MakeTcpPacket(const FlowKey& flow, std::uint8_t flags,
                     std::uint32_t seq, std::uint32_t ack,
                     std::uint32_t pad_bytes);

std::string Describe(const Packet& p);

}  // namespace redplane::net
