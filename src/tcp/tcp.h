// Minimal TCP Reno endpoints for end-to-end experiments.
//
// Implements what the iperf failover experiment (paper Fig. 14) exercises:
// three-way handshake, cumulative acks, slow start, congestion avoidance,
// fast retransmit/recovery on triple duplicate acks, and RTO with
// exponential backoff.  Sequence numbers are standard 32-bit with wraparound
// comparisons.  Goodput is recorded at the receiver into a TimeSeries for
// the throughput-over-time plot.
#pragma once

#include <map>
#include <optional>

#include "common/stats.h"
#include "net/packet.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace redplane::tcp {

/// a < b in 32-bit sequence space.
inline bool SeqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool SeqLeq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

struct TcpConfig {
  /// Payload bytes per segment (jumbo frames keep event counts tractable
  /// for minute-long runs).
  std::uint32_t mss = 8948;
  std::uint32_t init_cwnd_segments = 10;
  SimDuration min_rto = Milliseconds(200);
  SimDuration max_rto = Seconds(4);
  /// Receive window in segments.
  std::uint32_t rwnd_segments = 64;
};

class TcpSenderNode : public sim::Node {
 public:
  TcpSenderNode(sim::Simulator& sim, NodeId id, std::string name,
                net::Ipv4Addr ip, TcpConfig config = {});

  net::Ipv4Addr ip() const { return ip_; }

  /// Opens the connection (`flow` is the sender-side 5-tuple) and streams
  /// data indefinitely (iperf-style) until the simulation ends.
  void Start(const net::FlowKey& flow);

  void HandlePacket(net::Packet pkt, PortId in_port) override;

  std::uint64_t bytes_acked() const { return bytes_acked_; }
  double cwnd_segments() const { return cwnd_; }
  std::uint32_t retransmissions() const { return retransmissions_; }
  std::uint32_t timeouts() const { return timeouts_; }
  bool connected() const { return established_; }

 private:
  void SendSyn();
  void TrySendData();
  void SendSegment(std::uint32_t seq, bool retransmit);
  void OnAck(std::uint32_t ack);
  void ArmRto();
  void OnRto();
  SimDuration CurrentRto() const;

  net::Ipv4Addr ip_;
  TcpConfig config_;
  net::FlowKey flow_;
  bool started_ = false;
  bool established_ = false;

  std::uint32_t iss_ = 1000;   // initial send sequence
  std::uint32_t snd_nxt_ = 0;  // next sequence to send
  std::uint32_t snd_una_ = 0;  // oldest unacknowledged
  double cwnd_ = 0;            // congestion window, in segments
  double ssthresh_ = 1e9;
  std::uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recover_ = 0;  // recovery point for NewReno-style exit

  // RTT estimation (RFC 6298) on one timed segment at a time (Karn).
  std::optional<std::pair<std::uint32_t, SimTime>> timed_segment_;
  double srtt_ns_ = 0;
  double rttvar_ns_ = 0;
  bool have_rtt_ = false;
  std::uint32_t backoff_ = 0;

  sim::EventId rto_event_ = 0;
  std::uint64_t bytes_acked_ = 0;
  std::uint32_t retransmissions_ = 0;
  std::uint32_t timeouts_ = 0;
  std::uint32_t syn_retries_ = 0;
};

class TcpReceiverNode : public sim::Node {
 public:
  TcpReceiverNode(sim::Simulator& sim, NodeId id, std::string name,
                  net::Ipv4Addr ip, std::uint16_t listen_port,
                  SimDuration goodput_bucket = Milliseconds(100));

  net::Ipv4Addr ip() const { return ip_; }

  void HandlePacket(net::Packet pkt, PortId in_port) override;

  /// Delivered (in-order) bytes per time bucket.
  const TimeSeries& goodput() const { return goodput_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  /// Segments ignored because they came from an endpoint other than the
  /// connection's pinned peer.
  std::uint64_t foreign_segments() const { return foreign_segments_; }

 private:
  void SendAck(const net::Packet& data_pkt);

  net::Ipv4Addr ip_;
  std::uint16_t listen_port_;
  bool synced_ = false;
  /// Connection peer, pinned at SYN: segments from any other remote
  /// endpoint are ignored (a real socket is bound to the 4-tuple — this is
  /// what breaks connections when a NAT loses its translation state).
  net::Ipv4Addr peer_ip_;
  std::uint16_t peer_port_ = 0;
  std::uint64_t foreign_segments_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  struct SeqLess {
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      return SeqLt(a, b);
    }
  };
  /// Out-of-order segments: start seq -> length.
  std::map<std::uint32_t, std::uint32_t, SeqLess> ooo_;
  TimeSeries goodput_;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace redplane::tcp
