#include "tcp/tcp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace redplane::tcp {

using net::TcpFlags;

TcpSenderNode::TcpSenderNode(sim::Simulator& sim, NodeId id, std::string name,
                             net::Ipv4Addr ip, TcpConfig config)
    : Node(sim, id, std::move(name)), ip_(ip), config_(config) {}

void TcpSenderNode::Start(const net::FlowKey& flow) {
  flow_ = flow;
  started_ = true;
  snd_nxt_ = iss_;
  snd_una_ = iss_;
  cwnd_ = config_.init_cwnd_segments;
  SendSyn();
}

void TcpSenderNode::SendSyn() {
  net::Packet syn = net::MakeTcpPacket(flow_, TcpFlags::kSyn, iss_, 0, 0);
  SendTo(0, std::move(syn));
  ArmRto();
}

SimDuration TcpSenderNode::CurrentRto() const {
  SimDuration rto;
  if (have_rtt_) {
    rto = static_cast<SimDuration>(srtt_ns_ + 4 * rttvar_ns_);
  } else {
    rto = Seconds(1);
  }
  rto = std::max(rto, config_.min_rto);
  rto <<= std::min<std::uint32_t>(backoff_, 4);
  return std::min(rto, config_.max_rto);
}

void TcpSenderNode::ArmRto() {
  if (rto_event_ != 0) sim_.Cancel(rto_event_);
  rto_event_ = sim_.Schedule(CurrentRto(), [this]() { OnRto(); });
}

void TcpSenderNode::OnRto() {
  rto_event_ = 0;
  if (!started_) return;
  ++timeouts_;
  ++backoff_;
  timed_segment_.reset();  // Karn: no RTT sample from retransmits
  if (!established_) {
    if (++syn_retries_ > 30) return;  // give up (connection broken)
    SendSyn();
    return;
  }
  // Loss: collapse to one segment and go back to the oldest outstanding —
  // everything past snd_una is presumed lost and will be resent as the
  // window regrows (go-back-N after a full timeout).
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  in_recovery_ = false;
  SendSegment(snd_una_, /*retransmit=*/true);
  snd_nxt_ = snd_una_ + config_.mss;
  ArmRto();
}

void TcpSenderNode::SendSegment(std::uint32_t seq, bool retransmit) {
  net::Packet data = net::MakeTcpPacket(flow_, TcpFlags::kAck, seq, 0,
                                        config_.mss);
  if (retransmit) ++retransmissions_;
  if (!retransmit && !timed_segment_.has_value()) {
    timed_segment_ = {seq, sim_.Now()};
  }
  SendTo(0, std::move(data));
}

void TcpSenderNode::TrySendData() {
  const double window_segments = std::min(
      cwnd_, static_cast<double>(config_.rwnd_segments));
  const std::uint32_t window_bytes =
      static_cast<std::uint32_t>(window_segments) * config_.mss;
  while (SeqLt(snd_nxt_, snd_una_ + window_bytes)) {
    SendSegment(snd_nxt_, /*retransmit=*/false);
    snd_nxt_ += config_.mss;
  }
}

void TcpSenderNode::HandlePacket(net::Packet pkt, PortId in_port) {
  (void)in_port;
  if (!IsUp() || !pkt.tcp.has_value()) return;
  const net::TcpHeader& tcp = *pkt.tcp;

  if (!established_) {
    if (tcp.syn() && tcp.ack_flag() && tcp.ack == iss_ + 1) {
      established_ = true;
      backoff_ = 0;
      syn_retries_ = 0;
      snd_una_ = iss_ + 1;
      snd_nxt_ = snd_una_;
      // Complete the handshake, then stream.
      net::Packet ack =
          net::MakeTcpPacket(flow_, TcpFlags::kAck, snd_nxt_, tcp.seq + 1, 0);
      SendTo(0, std::move(ack));
      TrySendData();
      ArmRto();
    }
    return;
  }

  if (!tcp.ack_flag()) return;
  OnAck(tcp.ack);
}

void TcpSenderNode::OnAck(std::uint32_t ack) {
  if (SeqLt(snd_una_, ack)) {
    // New data acknowledged.
    const std::uint32_t newly = ack - snd_una_;
    bytes_acked_ += newly;
    snd_una_ = ack;
    backoff_ = 0;

    // RTT sample.
    if (timed_segment_.has_value() && SeqLt(timed_segment_->first, ack)) {
      const double sample =
          static_cast<double>(sim_.Now() - timed_segment_->second);
      if (!have_rtt_) {
        srtt_ns_ = sample;
        rttvar_ns_ = sample / 2;
        have_rtt_ = true;
      } else {
        rttvar_ns_ = 0.75 * rttvar_ns_ + 0.25 * std::abs(srtt_ns_ - sample);
        srtt_ns_ = 0.875 * srtt_ns_ + 0.125 * sample;
      }
      timed_segment_.reset();
    }

    if (in_recovery_) {
      if (SeqLeq(recover_, ack)) {
        // Recovery complete: deflate to ssthresh.
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(newly) / config_.mss;  // slow start
    } else {
      cwnd_ += static_cast<double>(newly) / config_.mss / cwnd_;  // CA
    }
    dupacks_ = 0;
    if (SeqLt(snd_una_, snd_nxt_)) {
      ArmRto();
    } else if (rto_event_ != 0) {
      sim_.Cancel(rto_event_);
      rto_event_ = 0;
    }
    TrySendData();
    return;
  }

  if (ack == snd_una_ && SeqLt(snd_una_, snd_nxt_)) {
    // Duplicate ack.
    if (++dupacks_ == 3 && !in_recovery_) {
      // Fast retransmit + recovery.
      in_recovery_ = true;
      recover_ = snd_nxt_;
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_ + 3;
      SendSegment(snd_una_, /*retransmit=*/true);
      ArmRto();
    } else if (in_recovery_) {
      cwnd_ += 1;  // inflate per additional dupack
      TrySendData();
    }
  }
}

TcpReceiverNode::TcpReceiverNode(sim::Simulator& sim, NodeId id,
                                 std::string name, net::Ipv4Addr ip,
                                 std::uint16_t listen_port,
                                 SimDuration goodput_bucket)
    : Node(sim, id, std::move(name)),
      ip_(ip),
      listen_port_(listen_port),
      goodput_(goodput_bucket) {}

void TcpReceiverNode::SendAck(const net::Packet& data_pkt) {
  const net::FlowKey reply = data_pkt.Flow()->Reversed();
  net::Packet ack = net::MakeTcpPacket(reply, TcpFlags::kAck, 1, rcv_nxt_, 0);
  SendTo(0, std::move(ack));
}

void TcpReceiverNode::HandlePacket(net::Packet pkt, PortId in_port) {
  (void)in_port;
  if (!IsUp() || !pkt.tcp.has_value() || !pkt.Flow().has_value()) return;
  const net::TcpHeader& tcp = *pkt.tcp;
  if (tcp.dst_port != listen_port_) return;

  if (tcp.syn()) {
    // (Re)synchronize; a fresh SYN resets the connection state and pins
    // the peer endpoint.
    synced_ = true;
    peer_ip_ = pkt.ip->src;
    peer_port_ = tcp.src_port;
    rcv_nxt_ = tcp.seq + 1;
    ooo_.clear();
    const net::FlowKey reply = pkt.Flow()->Reversed();
    net::Packet synack = net::MakeTcpPacket(
        reply, TcpFlags::kSyn | TcpFlags::kAck, 0, rcv_nxt_, 0);
    SendTo(0, std::move(synack));
    return;
  }
  if (!synced_) return;
  if (pkt.ip->src != peer_ip_ || tcp.src_port != peer_port_) {
    // Mid-stream endpoint change (e.g. a NAT that lost its mapping and
    // re-translated): not our connection.
    ++foreign_segments_;
    return;
  }
  // Segment length: synthetic pad bytes plus any materialized payload (a
  // packet that traversed a RedPlane piggyback comes back with its pad
  // re-materialized as payload bytes).
  const std::uint32_t len =
      pkt.pad_bytes + static_cast<std::uint32_t>(pkt.payload.size());
  if (len == 0) return;  // pure ack toward us: ignore

  if (tcp.seq == rcv_nxt_) {
    rcv_nxt_ += len;
    bytes_delivered_ += len;
    goodput_.Add(sim_.Now(), static_cast<double>(len));
    // Drain any contiguous out-of-order segments.
    auto it = ooo_.begin();
    while (it != ooo_.end() && SeqLeq(it->first, rcv_nxt_)) {
      if (SeqLt(rcv_nxt_, it->first + it->second)) {
        const std::uint32_t add = it->first + it->second - rcv_nxt_;
        rcv_nxt_ += add;
        bytes_delivered_ += add;
        goodput_.Add(sim_.Now(), static_cast<double>(add));
      }
      it = ooo_.erase(it);
    }
  } else if (SeqLt(rcv_nxt_, tcp.seq)) {
    ooo_[tcp.seq] = std::max(ooo_[tcp.seq], len);
    if (ooo_.size() > 4096) ooo_.erase(std::prev(ooo_.end()));
  }
  SendAck(pkt);
}

}  // namespace redplane::tcp
