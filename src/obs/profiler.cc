#include "obs/profiler.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace redplane::obs {

namespace internal {
Profiler* g_profiler = nullptr;
Profiler* g_armed = nullptr;
}  // namespace internal

Profiler* SetGlobalProfiler(Profiler* profiler) {
  Profiler* prev = internal::g_profiler;
  internal::g_profiler = profiler;
  internal::g_armed =
      profiler != nullptr && profiler->enabled() ? profiler : nullptr;
  return prev;
}

void Profiler::SetEnabled(bool enabled) {
  enabled_ = enabled;
  if (internal::g_profiler == this) {
    internal::g_armed = enabled ? this : nullptr;
  }
}

Profiler::Profiler() { site_names_.emplace_back("?"); }

std::uint16_t Profiler::InternSite(ProfSite& site) {
  if (site.cached_profiler == this && site.cached_generation == generation_) {
    return site.id;
  }
  // Sites are few (one per instrumented region); a linear scan on the first
  // entry per generation keeps the registration path allocation-light.
  std::uint16_t id = 0;
  for (std::size_t i = 0; i < site_names_.size(); ++i) {
    if (site_names_[i] == site.name) {
      id = static_cast<std::uint16_t>(i);
      break;
    }
  }
  if (id == 0 && site_names_.size() < 0xFFFF) {
    site_names_.emplace_back(site.name);
    id = static_cast<std::uint16_t>(site_names_.size() - 1);
  }
  site.cached_profiler = this;
  site.cached_generation = generation_;
  site.id = id;
  return id;
}

std::int32_t Profiler::ChildNode(std::int32_t parent, std::uint16_t site) {
  const auto& siblings =
      parent < 0 ? roots_ : nodes_[static_cast<std::size_t>(parent)].children;
  for (std::int32_t c : siblings) {
    if (nodes_[static_cast<std::size_t>(c)].site == site) return c;
  }
  ProfNode node;
  node.site = site;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  const auto index = static_cast<std::int32_t>(nodes_.size() - 1);
  if (parent < 0) {
    roots_.push_back(index);
  } else {
    nodes_[static_cast<std::size_t>(parent)].children.push_back(index);
  }
  return index;
}

std::int32_t Profiler::Enter(ProfSite& site) {
  const std::uint16_t id = InternSite(site);
  const std::int32_t prev = current_;
  current_ = ChildNode(current_, id);
  return prev;
}

void Profiler::Leave(std::int32_t prev_node, std::uint64_t dur_ns,
                     std::uint32_t stride) {
  ProfNode& node = nodes_[static_cast<std::size_t>(current_)];
  node.count += stride;
  node.total_ns += dur_ns * stride;
  current_ = prev_node;
}

const std::string& Profiler::SiteName(std::uint16_t id) const {
  static const std::string kUnknown = "?";
  return id < site_names_.size() ? site_names_[id] : kUnknown;
}

std::uint64_t Profiler::SelfNs(std::int32_t node) const {
  const ProfNode& n = nodes_[static_cast<std::size_t>(node)];
  std::uint64_t children = 0;
  for (std::int32_t c : n.children) {
    children += nodes_[static_cast<std::size_t>(c)].total_ns;
  }
  return children >= n.total_ns ? 0 : n.total_ns - children;
}

std::vector<ProfSiteTotal> Profiler::SiteTotals() const {
  std::vector<ProfSiteTotal> totals(site_names_.size());
  for (std::size_t i = 0; i < site_names_.size(); ++i) {
    totals[i].name = site_names_[i];
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const ProfNode& n = nodes_[i];
    ProfSiteTotal& t = totals[n.site];
    t.count += n.count;
    // A site nested under itself (recursion) would double-count inclusive
    // time; only roots of same-site chains contribute their total.
    bool under_same_site = false;
    for (std::int32_t p = n.parent; p >= 0;
         p = nodes_[static_cast<std::size_t>(p)].parent) {
      if (nodes_[static_cast<std::size_t>(p)].site == n.site) {
        under_same_site = true;
        break;
      }
    }
    if (!under_same_site) t.total_ns += n.total_ns;
    t.self_ns += SelfNs(static_cast<std::int32_t>(i));
  }
  totals.erase(std::remove_if(totals.begin(), totals.end(),
                              [](const ProfSiteTotal& t) {
                                return t.count == 0 && t.total_ns == 0;
                              }),
               totals.end());
  std::sort(totals.begin(), totals.end(),
            [](const ProfSiteTotal& a, const ProfSiteTotal& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;
            });
  return totals;
}

namespace {

void PathOf(const std::vector<ProfNode>& nodes,
            const Profiler& prof, std::int32_t index, std::string& out) {
  const ProfNode& n = nodes[static_cast<std::size_t>(index)];
  if (n.parent >= 0) {
    PathOf(nodes, prof, n.parent, out);
    out += ';';
  }
  out += prof.SiteName(n.site);
}

}  // namespace

void Profiler::WriteCollapsed(std::ostream& os) const {
  std::vector<std::pair<std::string, std::uint64_t>> lines;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const std::uint64_t self = SelfNs(static_cast<std::int32_t>(i));
    if (self == 0) continue;
    std::string path;
    PathOf(nodes_, *this, static_cast<std::int32_t>(i), path);
    lines.emplace_back(std::move(path), self);
  }
  std::sort(lines.begin(), lines.end());
  for (const auto& [path, self] : lines) {
    os << path << ' ' << self << '\n';
  }
}

void Profiler::WriteJson(std::ostream& os) const {
  os << "{\"nodes\": [";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const ProfNode& n = nodes_[i];
    if (i) os << ",";
    os << "\n  {\"id\": " << i << ", \"parent\": " << n.parent
       << ", \"name\": \"" << JsonEscape(SiteName(n.site)) << "\", \"count\": "
       << n.count << ", \"total_ns\": " << n.total_ns
       << ", \"self_ns\": " << SelfNs(static_cast<std::int32_t>(i)) << "}";
  }
  os << "\n], \"sites\": [";
  const auto totals = SiteTotals();
  for (std::size_t i = 0; i < totals.size(); ++i) {
    const ProfSiteTotal& t = totals[i];
    if (i) os << ",";
    os << "\n  {\"name\": \"" << JsonEscape(t.name) << "\", \"count\": "
       << t.count << ", \"total_ns\": " << t.total_ns
       << ", \"self_ns\": " << t.self_ns << "}";
  }
  os << "\n]}\n";
}

std::string Profiler::Json() const {
  std::ostringstream oss;
  WriteJson(oss);
  return oss.str();
}

void Profiler::Reset() {
  nodes_.clear();
  roots_.clear();
  site_names_.clear();
  site_names_.emplace_back("?");
  current_ = -1;
  ++generation_;
}

}  // namespace redplane::obs
