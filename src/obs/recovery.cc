#include "obs/recovery.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace redplane::obs {

const char* RecoveryPhaseName(RecoveryPhase phase) {
  switch (phase) {
    case RecoveryPhase::kFailureDetection: return "failure_detection";
    case RecoveryPhase::kRouteReconvergence: return "route_reconvergence";
    case RecoveryPhase::kLeaseReacquisition: return "lease_reacquisition";
    case RecoveryPhase::kStateInstall: return "state_install";
    case RecoveryPhase::kFirstPacketServed: return "first_packet_served";
  }
  return "?";
}

bool PhaseSumOk(const RecoveryEpisode& episode) {
  if (!episode.complete) return false;
  SimDuration sum = 0;
  SimTime prev = episode.fault_at;
  for (int i = 0; i < kNumRecoveryPhases; ++i) {
    if (episode.phase_end[i] < prev) return false;  // endpoints must telescope
    sum += episode.phase_end[i] - prev;
    prev = episode.phase_end[i];
  }
  return sum == episode.Downtime();
}

void RecoveryTracker::OnTapEvent(const audit::TapEvent& ev) {
  switch (ev.tap) {
    case audit::Tap::kNodeDown:
      if (open_) {
        ++current_.extra_faults;
      } else {
        OpenEpisode(ev, "node_down");
      }
      return;
    case audit::Tap::kLinkCut:
      if (open_) {
        ++current_.extra_faults;
      } else {
        OpenEpisode(ev, "link_cut");
      }
      return;
    case audit::Tap::kRouteReconverged:
      if (open_ && current_.phase_end[0] == 0) {
        MarkPhase(RecoveryPhase::kFailureDetection, ev.t);
      }
      return;
    case audit::Tap::kLeaseRequested:
      if (open_ && current_.phase_end[1] == 0) {
        MarkPhase(RecoveryPhase::kRouteReconvergence, ev.t);
      }
      return;
    case audit::Tap::kLeaseGranted:
      if (open_ && current_.phase_end[2] == 0) {
        MarkPhase(RecoveryPhase::kLeaseReacquisition, ev.t);
      }
      return;
    case audit::Tap::kLeaseAcquired:
      if (open_ && current_.phase_end[3] == 0) {
        MarkPhase(RecoveryPhase::kStateInstall, ev.t);
      }
      return;
    case audit::Tap::kOutputServed: {
      if (open_ && ev.t >= current_.fault_at) {
        if (first_served_after_fault_ == 0) first_served_after_fault_ = ev.t;
        // Per-flow downtime: first post-fault service of a flow that was
        // served before the fault.
        const auto it = served_before_fault_.find(ev.key);
        if (it != served_before_fault_.end()) {
          current_.flow_downtime_us.Add(
              static_cast<double>(ev.t - current_.fault_at) / 1e3);
          served_before_fault_.erase(it);
        }
        if (current_.phase_end[3] != 0 && current_.phase_end[4] == 0) {
          MarkPhase(RecoveryPhase::kFirstPacketServed, ev.t);
          current_.complete = true;
          CloseEpisode();
        }
      }
      last_served_[ev.key] = ev.t;
      return;
    }
    default:
      return;
  }
}

void RecoveryTracker::OpenEpisode(const audit::TapEvent& ev,
                                  const char* trigger) {
  open_ = true;
  current_ = RecoveryEpisode{};
  current_.id = episodes_.size() + 1;
  current_.fault_at = ev.t;
  current_.trigger = trigger;
  current_.fault_aux = ev.aux;
  first_served_after_fault_ = 0;
  served_before_fault_ = last_served_;
  snapshot_has_records_ = false;
  snapshot_last_order_ = 0;
  if (tracer_ != nullptr) {
    // Flight-recorder rescue: copy the ring *now*, while the pre-fault
    // context is still in it; a long campaign would otherwise evict these
    // records before the episode closes.
    current_.trace = tracer_->Records();
    current_.evicted_at_open = tracer_->evicted();
    if (!current_.trace.empty()) {
      snapshot_last_order_ = current_.trace.back().order;
      snapshot_has_records_ = true;
    }
  }
}

void RecoveryTracker::MarkPhase(RecoveryPhase phase, SimTime t) {
  const int target = static_cast<int>(phase);
  // Back-fill skipped phases: an unset earlier endpoint collapses that
  // phase to zero width at `t`, so the endpoints always telescope.
  for (int i = 0; i <= target; ++i) {
    if (current_.phase_end[i] == 0) current_.phase_end[i] = t;
  }
}

void RecoveryTracker::CloseEpisode() {
  // Clamp endpoints non-decreasing (defensive: tap timestamps are already
  // monotone within a single-threaded run).
  SimTime prev = current_.fault_at;
  for (int i = 0; i < kNumRecoveryPhases; ++i) {
    current_.phase_end[i] = std::max(current_.phase_end[i], prev);
    prev = current_.phase_end[i];
  }
  if (tracer_ != nullptr) {
    current_.evicted_at_close = tracer_->evicted();
    // Merge in what the ring accumulated during the episode: records newer
    // than the open-time snapshot.
    for (const TraceRecord& r : tracer_->Records()) {
      if (!snapshot_has_records_ || r.order > snapshot_last_order_) {
        current_.trace.push_back(r);
      }
    }
  }
  episodes_.push_back(std::move(current_));
  current_ = RecoveryEpisode{};
  open_ = false;
  served_before_fault_.clear();
  first_served_after_fault_ = 0;
}

void RecoveryTracker::Finalize(SimTime now) {
  if (!open_) return;
  if (first_served_after_fault_ != 0) {
    // Service resumed but the full phase chain never signaled (e.g. a link
    // flap whose leases survived): close at the first post-fault service,
    // clamped past any endpoint that did signal.
    SimTime tc = first_served_after_fault_;
    for (const SimTime t : current_.phase_end) tc = std::max(tc, t);
    MarkPhase(RecoveryPhase::kFirstPacketServed, tc);
    current_.complete = true;
  } else {
    // Service never resumed within the run: downtime lower-bounds truth.
    MarkPhase(RecoveryPhase::kFirstPacketServed,
              std::max(now, current_.fault_at));
    current_.complete = false;
  }
  CloseEpisode();
}

void RecoveryTracker::Reset() {
  episodes_.clear();
  open_ = false;
  current_ = RecoveryEpisode{};
  last_served_.clear();
  served_before_fault_.clear();
  first_served_after_fault_ = 0;
  snapshot_has_records_ = false;
  snapshot_last_order_ = 0;
}

void RecoveryTracker::WriteJson(std::ostream& os) const {
  os << "{\"episodes\": [";
  bool first_ep = true;
  for (const RecoveryEpisode& e : episodes_) {
    if (!first_ep) os << ", ";
    first_ep = false;
    os << "{\"id\": " << e.id << ", \"trigger\": \"" << JsonEscape(e.trigger)
       << "\", \"fault_at_ns\": " << e.fault_at
       << ", \"fault_aux\": " << e.fault_aux
       << ", \"complete\": " << (e.complete ? "true" : "false")
       << ", \"extra_faults\": " << e.extra_faults
       << ", \"downtime_ns\": " << (e.phase_end.back() - e.fault_at)
       << ", \"phase_sum_ok\": " << (PhaseSumOk(e) ? "true" : "false")
       << ", \"phases\": [";
    SimTime prev = e.fault_at;
    for (int i = 0; i < kNumRecoveryPhases; ++i) {
      if (i > 0) os << ", ";
      os << "{\"name\": \""
         << RecoveryPhaseName(static_cast<RecoveryPhase>(i))
         << "\", \"start_ns\": " << prev
         << ", \"end_ns\": " << e.phase_end[i]
         << ", \"duration_ns\": " << (e.phase_end[i] - prev) << "}";
      prev = e.phase_end[i];
    }
    os << "], \"flows\": {\"count\": " << e.flow_downtime_us.Count();
    if (!e.flow_downtime_us.Empty()) {
      os << ", \"p50_us\": " << JsonNumber(e.flow_downtime_us.Percentile(50))
         << ", \"p99_us\": " << JsonNumber(e.flow_downtime_us.Percentile(99))
         << ", \"max_us\": " << JsonNumber(e.flow_downtime_us.Max());
    }
    os << "}, \"evicted_during\": "
       << (e.evicted_at_close - e.evicted_at_open)
       << ", \"trace_records\": " << e.trace.size() << "}";
  }
  os << "]}";
}

std::string RecoveryTracker::Json() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

void RecoveryTracker::PrintTimeline(std::ostream& os) const {
  if (episodes_.empty()) {
    os << "no recovery episodes detected\n";
    return;
  }
  for (const RecoveryEpisode& e : episodes_) {
    const SimDuration downtime = e.phase_end.back() - e.fault_at;
    os << "episode " << e.id << ": trigger=" << e.trigger << " t0="
       << FormatDouble(static_cast<double>(e.fault_at) / 1e6, 3) << "ms"
       << " downtime="
       << FormatDouble(static_cast<double>(downtime) / 1e6, 3) << "ms"
       << (e.complete ? "" : " (INCOMPLETE: service never resumed)")
       << " phase_sum=" << (PhaseSumOk(e) ? "ok" : "VIOLATED") << "\n";
    os << "  " << std::left << std::setw(22) << "phase" << std::right
       << std::setw(14) << "start_ms" << std::setw(14) << "end_ms"
       << std::setw(14) << "duration_ms" << std::setw(9) << "share" << "\n";
    SimTime prev = e.fault_at;
    for (int i = 0; i < kNumRecoveryPhases; ++i) {
      const SimDuration d = e.phase_end[i] - prev;
      const double share =
          downtime > 0 ? static_cast<double>(d) / static_cast<double>(downtime)
                       : 0.0;
      os << "  " << std::left << std::setw(22)
         << RecoveryPhaseName(static_cast<RecoveryPhase>(i)) << std::right
         << std::setw(14)
         << FormatDouble(static_cast<double>(prev) / 1e6, 3) << std::setw(14)
         << FormatDouble(static_cast<double>(e.phase_end[i]) / 1e6, 3)
         << std::setw(14) << FormatDouble(static_cast<double>(d) / 1e6, 3)
         << std::setw(8) << FormatDouble(share * 100.0, 1) << "%" << "\n";
      prev = e.phase_end[i];
    }
    if (!e.flow_downtime_us.Empty()) {
      const SampleSet& flows = e.flow_downtime_us;
      os << "  flows interrupted: " << flows.Count()
         << "  downtime p50=" << FormatDouble(flows.Percentile(50) / 1e3, 2)
         << "ms p99=" << FormatDouble(flows.Percentile(99) / 1e3, 2)
         << "ms max=" << FormatDouble(flows.Max() / 1e3, 2) << "ms\n";
    }
    if (e.extra_faults > 0) {
      os << "  (+" << e.extra_faults << " overlapping fault(s) folded in)\n";
    }
  }
}

}  // namespace redplane::obs
