// Cross-layer request spans: one write's lifecycle as a segment tree.
//
// The switch stamps a fresh span id into every protocol request it
// originates; the wire format carries the id through the store chain and the
// ack (see core/protocol.h), and every trace record along the way repeats it.
// Grouping records by span id and sorting by (t, order) yields a telescoping
// sequence: the interval between consecutive records is one *segment* of the
// request's end-to-end latency, classified by its boundary event pair —
// switch→store network, per-shard queue wait, service time, chain hop, ack
// return.  Segments tile the span by construction, so their durations sum
// exactly to the end-to-end latency (pinned by tests/spans_test.cc).
//
// Exports: span-tree JSON (consumed by tools/report.cc) and Chrome
// trace_event flow/slice events that overlay the segments on the tracer's
// instant-event timeline (load both in Perfetto to follow one write across
// components).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/tracer.h"

namespace redplane::obs {

/// One latency segment of a span: the interval between two consecutive
/// records of the same span, classified by its boundary events.
struct SpanSegment {
  std::string kind;        // classification, e.g. "queue_wait" (see .cc table)
  std::string from;        // component that emitted the segment-opening record
  std::string to;          // component that emitted the segment-closing record
  Ev ev_begin = Ev::kIngress;
  Ev ev_end = Ev::kIngress;
  SimTime begin = 0;
  SimTime end = 0;
  SimTime DurationNs() const { return end - begin; }
};

/// One reconstructed request span.
struct SpanTree {
  std::uint64_t span = 0;
  std::uint64_t parent_span = 0;  // 0 = root
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
  SimTime begin = 0;
  SimTime end = 0;
  std::vector<SpanSegment> segments;
  /// Indexes (into the BuildSpanTrees result) of spans whose parent_span is
  /// this span.
  std::vector<std::size_t> children;
  SimTime TotalNs() const { return end - begin; }
};

/// Groups `records` by span id and reconstructs one SpanTree per id, sorted
/// by first-record time for deterministic output.  `components[id]` names the
/// component ids referenced by the records (as in WriteChromeTraceRecords).
std::vector<SpanTree> BuildSpanTrees(std::span<const TraceRecord> records,
                                     std::span<const std::string> components);

/// Convenience: BuildSpanTrees over everything currently in `tracer`'s ring.
std::vector<SpanTree> BuildSpanTrees(const Tracer& tracer);

/// Per-segment-kind latency summary across all spans (same PhaseStats shape
/// as Tracer::LatencyBreakdown, aggregated per `SpanSegment::kind` and —
/// for store-side segments — per closing component, e.g.
/// "queue_wait@store0").
std::vector<PhaseStats> SummarizeSegments(std::span<const SpanTree> spans);

/// Writes `{"spans": [...]}` JSON: per span its ids, bounds, total, and the
/// classified segment list.
void WriteSpansJson(std::ostream& os, std::span<const SpanTree> spans);
std::string SpansJson(std::span<const SpanTree> spans);

/// Writes Chrome trace_event JSON rendering each span's segments as "X"
/// slices on the closing component's track, chained by flow events
/// (ph s/t/f, id = span id) so Perfetto draws arrows across components.
void WriteChromeSpans(std::ostream& os, std::span<const SpanTree> spans);

}  // namespace redplane::obs
