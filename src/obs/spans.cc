#include "obs/spans.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace redplane::obs {

namespace {

// Boundary-pair classification.  Any (begin, end) pair not listed falls back
// to "begin->end" so novel interleavings stay visible instead of vanishing
// into a catch-all bucket.
const char* SegmentKind(Ev begin, Ev end) {
  if (begin == Ev::kReplicationSent && end == Ev::kStoreRecv)
    return "switch_to_store";
  if (begin == Ev::kRenewSent && end == Ev::kStoreRecv)
    return "switch_to_store";
  if (begin == Ev::kSnapshotSent && end == Ev::kStoreRecv)
    return "switch_to_store";
  if (begin == Ev::kStoreRecv && end == Ev::kStoreServiceStart)
    return "queue_wait";
  if (begin == Ev::kStoreServiceStart &&
      (end == Ev::kStoreApplied || end == Ev::kStoreBuffered ||
       end == Ev::kStoreReadParked || end == Ev::kStoreDenied))
    return "service";
  if (begin == Ev::kStoreApplied && end == Ev::kStoreRecv) return "chain_hop";
  if (begin == Ev::kStoreApplied && end == Ev::kStoreResponded)
    return "respond";
  if (begin == Ev::kStoreResponded &&
      (end == Ev::kAckReleased || end == Ev::kRenewAck))
    return "ack_return";
  if (begin == Ev::kReplicationSent && end == Ev::kRetransmit)
    return "retx_wait";
  if (begin == Ev::kRetransmit && end == Ev::kStoreRecv)
    return "switch_to_store";
  return nullptr;
}

std::string FallbackKind(Ev begin, Ev end) {
  std::string kind = EvName(begin);
  kind += "->";
  kind += EvName(end);
  return kind;
}

const std::string& NameOf(std::span<const std::string> components,
                          std::uint16_t id) {
  static const std::string kUnknown = "?";
  return id < components.size() ? components[id] : kUnknown;
}

// Microsecond timestamp with ns fraction, Chrome trace convention (matches
// WriteChromeTraceRecords).
void WriteTs(std::ostream& os, SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  os << buf;
}

}  // namespace

std::vector<SpanTree> BuildSpanTrees(std::span<const TraceRecord> records,
                                     std::span<const std::string> components) {
  // Group by span id; std::map keeps iteration deterministic.
  std::map<std::uint64_t, std::vector<TraceRecord>> by_span;
  for (const TraceRecord& r : records) {
    if (r.span != 0) by_span[r.span].push_back(r);
  }
  std::vector<SpanTree> spans;
  spans.reserve(by_span.size());
  for (auto& [id, recs] : by_span) {
    std::sort(recs.begin(), recs.end(),
              [](const TraceRecord& a, const TraceRecord& b) {
                if (a.t != b.t) return a.t < b.t;
                return a.order < b.order;
              });
    SpanTree span;
    span.span = id;
    span.flow = recs.front().flow;
    span.seq = recs.front().seq;
    span.begin = recs.front().t;
    span.end = recs.back().t;
    for (const TraceRecord& r : recs) {
      if (r.parent_span != 0) span.parent_span = r.parent_span;
      if (r.seq != 0) span.seq = r.seq;
    }
    span.segments.reserve(recs.size() > 0 ? recs.size() - 1 : 0);
    for (std::size_t i = 1; i < recs.size(); ++i) {
      const TraceRecord& a = recs[i - 1];
      const TraceRecord& b = recs[i];
      SpanSegment seg;
      const char* kind = SegmentKind(a.ev, b.ev);
      seg.kind = kind ? kind : FallbackKind(a.ev, b.ev);
      seg.from = NameOf(components, a.component);
      seg.to = NameOf(components, b.component);
      seg.ev_begin = a.ev;
      seg.ev_end = b.ev;
      seg.begin = a.t;
      seg.end = b.t;
      span.segments.push_back(std::move(seg));
    }
    spans.push_back(std::move(span));
  }
  // Sort by first-record time (ties by id) and link children to parents.
  std::sort(spans.begin(), spans.end(), [](const SpanTree& a, const SpanTree& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.span < b.span;
  });
  std::map<std::uint64_t, std::size_t> index;
  for (std::size_t i = 0; i < spans.size(); ++i) index[spans[i].span] = i;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent_span == 0) continue;
    auto it = index.find(spans[i].parent_span);
    if (it != index.end() && it->second != i) {
      spans[it->second].children.push_back(i);
    }
  }
  return spans;
}

std::vector<SpanTree> BuildSpanTrees(const Tracer& tracer) {
  std::vector<std::string> components;
  components.reserve(tracer.NumComponents());
  for (std::size_t i = 0; i < tracer.NumComponents(); ++i) {
    components.push_back(tracer.ComponentName(static_cast<std::uint16_t>(i)));
  }
  return BuildSpanTrees(tracer.Records(), components);
}

std::vector<PhaseStats> SummarizeSegments(std::span<const SpanTree> spans) {
  std::map<std::string, SampleSet> by_kind;  // deterministic iteration order
  for (const SpanTree& span : spans) {
    for (const SpanSegment& seg : span.segments) {
      const double us = static_cast<double>(seg.DurationNs()) / 1e3;
      by_kind[seg.kind].Add(us);
      // Store-side segments additionally keyed per shard, so the report can
      // show which replica's queue (or service loop) ate the latency.
      if (seg.kind == "queue_wait" || seg.kind == "service") {
        by_kind[seg.kind + "@" + seg.to].Add(us);
      }
    }
  }
  std::vector<PhaseStats> out;
  out.reserve(by_kind.size());
  for (auto& [name, samples] : by_kind) {
    PhaseStats stats;
    stats.name = name;
    stats.samples_us = std::move(samples);
    out.push_back(std::move(stats));
  }
  return out;
}

void WriteSpansJson(std::ostream& os, std::span<const SpanTree> spans) {
  os << "{\"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanTree& span = spans[i];
    if (i) os << ",";
    os << "\n  {\"span\": \"" << std::hex << span.span << std::dec
       << "\", \"parent_span\": \"" << std::hex << span.parent_span << std::dec
       << "\", \"flow\": \"" << std::hex << span.flow << std::dec
       << "\", \"seq\": " << span.seq << ", \"begin_ns\": " << span.begin
       << ", \"end_ns\": " << span.end << ", \"total_ns\": " << span.TotalNs()
       << ", \"segments\": [";
    for (std::size_t s = 0; s < span.segments.size(); ++s) {
      const SpanSegment& seg = span.segments[s];
      if (s) os << ",";
      os << "\n    {\"kind\": \"" << JsonEscape(seg.kind) << "\", \"from\": \""
         << JsonEscape(seg.from) << "\", \"to\": \"" << JsonEscape(seg.to)
         << "\", \"begin_ns\": " << seg.begin << ", \"end_ns\": " << seg.end
         << ", \"dur_ns\": " << seg.DurationNs() << "}";
    }
    os << "]}";
  }
  os << "\n]}\n";
}

std::string SpansJson(std::span<const SpanTree> spans) {
  std::ostringstream oss;
  WriteSpansJson(oss, spans);
  return oss.str();
}

void WriteChromeSpans(std::ostream& os, std::span<const SpanTree> spans) {
  // Self-contained track layout: one "thread" per distinct component name.
  std::map<std::string, int> tids;
  for (const SpanTree& span : spans) {
    for (const SpanSegment& seg : span.segments) {
      tids.emplace(seg.from, 0);
      tids.emplace(seg.to, 0);
    }
  }
  int next = 0;
  for (auto& [name, tid] : tids) tid = next++;
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& [name, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << JsonEscape(name) << "\"}}";
  }
  for (const SpanTree& span : spans) {
    for (std::size_t s = 0; s < span.segments.size(); ++s) {
      const SpanSegment& seg = span.segments[s];
      const int tid = tids[seg.to];
      if (!first) os << ",";
      first = false;
      // Slice on the closing component's track.
      os << "\n  {\"ph\": \"X\", \"cat\": \"span\", \"name\": \""
         << JsonEscape(seg.kind) << "\", \"pid\": 1, \"tid\": " << tid
         << ", \"ts\": ";
      WriteTs(os, seg.begin);
      os << ", \"dur\": ";
      WriteTs(os, seg.DurationNs());
      os << ", \"args\": {\"span\": \"" << std::hex << span.span << std::dec
         << "\", \"seq\": " << span.seq << "}},";
      // Flow event chaining the segments: start on the first, step on the
      // middle ones, finish on the last — Perfetto draws the arrows.
      const char* ph = s == 0 ? "s" : (s + 1 == span.segments.size() ? "f" : "t");
      os << "\n  {\"ph\": \"" << ph << "\", \"cat\": \"span\", \"name\": \"req\""
         << ", \"id\": " << span.span << ", \"pid\": 1, \"tid\": " << tid
         << ", \"ts\": ";
      WriteTs(os, seg.end);
      if (*ph == 'f') os << ", \"bp\": \"e\"";
      os << "}";
    }
  }
  os << "\n]}\n";
}

}  // namespace redplane::obs
