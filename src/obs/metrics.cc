#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace redplane::obs {

namespace {

// Maps a positive value to its log-linear bucket index in
// [0, HistogramCell::kNumBuckets).
int BucketIndex(double value) {
  const double scaled =
      std::log2(value) * HistogramCell::kSubBucketsPerOctave;
  int idx = static_cast<int>(std::floor(scaled)) -
            HistogramCell::kMinExponent * HistogramCell::kSubBucketsPerOctave;
  if (idx < 0) idx = 0;
  if (idx >= HistogramCell::kNumBuckets) idx = HistogramCell::kNumBuckets - 1;
  return idx;
}

// Lower/upper value bounds of bucket `idx`.
double BucketLower(int idx) {
  const double exp =
      static_cast<double>(idx + HistogramCell::kMinExponent *
                                    HistogramCell::kSubBucketsPerOctave) /
      HistogramCell::kSubBucketsPerOctave;
  return std::exp2(exp);
}

}  // namespace

void HistogramCell::Record(double value) {
  if (count == 0) {
    min = max = value;
  } else {
    if (value < min) min = value;
    if (value > max) max = value;
  }
  ++count;
  sum += value;
  if (value <= 0.0) {
    ++zero_or_less;
    return;
  }
  if (buckets.empty()) buckets.assign(kNumBuckets, 0);
  ++buckets[BucketIndex(value)];
}

double HistogramCell::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p <= 0.0) return min;
  if (p >= 100.0) return max;
  // Rank in [0, count): same convention as SampleSet (rank p/100*(n-1)).
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  double seen = static_cast<double>(zero_or_less);
  if (rank < seen) return std::min(0.0, min);
  for (int i = 0; i < kNumBuckets && !buckets.empty(); ++i) {
    const double in_bucket = static_cast<double>(buckets[static_cast<std::size_t>(i)]);
    if (in_bucket == 0.0) continue;
    if (rank < seen + in_bucket) {
      // Interpolate within the bucket, clamped to the observed range.
      const double frac = (rank - seen) / in_bucket;
      const double lo = BucketLower(i);
      const double hi = BucketLower(i + 1);
      double v = lo + frac * (hi - lo);
      if (v < min) v = min;
      if (v > max) v = max;
      return v;
    }
    seen += in_bucket;
  }
  return max;
}

void HistogramCell::Merge(const HistogramCell& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
  count += other.count;
  sum += other.sum;
  zero_or_less += other.zero_or_less;
  if (!other.buckets.empty()) {
    if (buckets.empty()) buckets.assign(kNumBuckets, 0);
    for (int i = 0; i < kNumBuckets; ++i) {
      buckets[static_cast<std::size_t>(i)] +=
          other.buckets[static_cast<std::size_t>(i)];
    }
  }
}

void HistogramCell::Reset() {
  count = 0;
  sum = 0.0;
  min = 0.0;
  max = 0.0;
  zero_or_less = 0;
  buckets.clear();
}

MetricRegistry::Entry* MetricRegistry::FindOrCreate(const std::string& name,
                                                    MetricKind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    return e.kind == kind ? &e : nullptr;
  }
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.name = name;
  e.kind = kind;
  index_.emplace(name, entries_.size() - 1);
  return &e;
}

Counter MetricRegistry::RegisterCounter(const std::string& name) {
  Entry* e = FindOrCreate(name, MetricKind::kCounter);
  return e ? Counter(&e->scalar) : Counter();
}

Gauge MetricRegistry::RegisterGauge(const std::string& name) {
  Entry* e = FindOrCreate(name, MetricKind::kGauge);
  return e ? Gauge(&e->scalar) : Gauge();
}

Histogram MetricRegistry::RegisterHistogram(const std::string& name) {
  Entry* e = FindOrCreate(name, MetricKind::kHistogram);
  return e ? Histogram(&e->hist) : Histogram();
}

void MetricRegistry::AddCallbackGauge(const std::string& name,
                                      std::function<double()> fn) {
  Entry* e = FindOrCreate(name, MetricKind::kCallbackGauge);
  if (e) e->callback = std::move(fn);
}

void MetricRegistry::Add(const std::string& name, double delta) {
  Entry* e = FindOrCreate(name, MetricKind::kCounter);
  if (e) e->scalar += delta;
}

double MetricRegistry::Get(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return 0.0;
  const Entry& e = entries_[it->second];
  switch (e.kind) {
    case MetricKind::kCounter:
    case MetricKind::kGauge:
      return e.scalar;
    case MetricKind::kCallbackGauge:
      return e.callback ? e.callback() : 0.0;
    case MetricKind::kHistogram:
      return static_cast<double>(e.hist.count);
  }
  return 0.0;
}

std::vector<std::pair<std::string, double>> MetricRegistry::Sorted() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    double v = e.scalar;
    if (e.kind == MetricKind::kCallbackGauge) v = e.callback ? e.callback() : 0.0;
    if (e.kind == MetricKind::kHistogram) v = static_cast<double>(e.hist.count);
    out.emplace_back(e.name, v);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void MetricRegistry::Reset() {
  for (Entry& e : entries_) {
    e.scalar = 0.0;
    e.hist.Reset();
  }
}

MetricsSnapshot MetricRegistry::Snapshot(SimTime at) const {
  MetricsSnapshot snap;
  snap.at = at;
  snap.values.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricValue mv;
    mv.name = e.name;
    mv.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        mv.value = e.scalar;
        break;
      case MetricKind::kCallbackGauge:
        mv.value = e.callback ? e.callback() : 0.0;
        break;
      case MetricKind::kHistogram:
        mv.value = static_cast<double>(e.hist.count);
        mv.hist_mean = e.hist.Mean();
        mv.hist_p50 = e.hist.Percentile(50.0);
        mv.hist_p99 = e.hist.Percentile(99.0);
        mv.hist_max = e.hist.max;
        break;
    }
    snap.values.push_back(std::move(mv));
  }
  std::sort(snap.values.begin(), snap.values.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snap;
}

void MetricsSnapshot::WriteJson(std::ostream& os) const {
  os << "{\"t_ns\": " << at << ", \"metrics\": {";
  bool first = true;
  for (const MetricValue& v : values) {
    if (!first) os << ", ";
    first = false;
    os << '"' << JsonEscape(v.name) << "\": ";
    if (v.kind == MetricKind::kHistogram) {
      os << "{\"count\": " << JsonNumber(v.value)
         << ", \"mean\": " << JsonNumber(v.hist_mean)
         << ", \"p50\": " << JsonNumber(v.hist_p50)
         << ", \"p99\": " << JsonNumber(v.hist_p99)
         << ", \"max\": " << JsonNumber(v.hist_max) << '}';
    } else {
      os << JsonNumber(v.value);
    }
  }
  os << "}}";
}

void MetricsHub::Register(const MetricRegistry* registry) {
  if (!registry) return;
  for (const MetricRegistry* r : registries_) {
    if (r == registry) return;
  }
  registries_.push_back(registry);
}

void MetricsHub::Unregister(const MetricRegistry* registry) {
  registries_.erase(std::remove(registries_.begin(), registries_.end(), registry),
                    registries_.end());
}

MetricsSnapshot MetricsHub::Snapshot(SimTime at) const {
  MetricsSnapshot merged;
  merged.at = at;
  for (const MetricRegistry* r : registries_) {
    MetricsSnapshot snap = r->Snapshot(at);
    const std::string& prefix =
        r->component().empty() ? std::string("unnamed") : r->component();
    for (MetricValue& v : snap.values) {
      v.name = prefix + "." + v.name;
      merged.values.push_back(std::move(v));
    }
  }
  std::sort(merged.values.begin(), merged.values.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return merged;
}

void TimeSeriesLog::WriteJson(std::ostream& os) const {
  os << "{\"series\": [";
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    if (i) os << ",";
    os << "\n  ";
    snapshots_[i].WriteJson(os);
  }
  os << "\n]}\n";
}

std::string TimeSeriesLog::Json() const {
  std::ostringstream oss;
  WriteJson(oss);
  return oss.str();
}

namespace {

void WriteCsvField(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

// Splits one CSV line into fields (RFC 4180 quoting).  Returns false on a
// dangling quote.
bool SplitCsvLine(std::string_view line, std::vector<std::string>& out) {
  out.clear();
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  if (quoted) return false;
  out.push_back(std::move(field));
  return true;
}

}  // namespace

void TimeSeriesLog::WriteCsv(std::ostream& os) const {
  // Column set: sorted union of metric names across all snapshots (late
  // registrations would otherwise shift columns mid-file).
  std::vector<std::string> columns;
  for (const MetricsSnapshot& snap : snapshots_) {
    for (const MetricValue& v : snap.values) columns.push_back(v.name);
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  os << "t_ns";
  for (const std::string& c : columns) {
    os << ',';
    WriteCsvField(os, c);
  }
  os << '\n';
  for (const MetricsSnapshot& snap : snapshots_) {
    os << snap.at;
    // Snapshot values are sorted by name, so a two-pointer walk lines each
    // row up against the column union.
    std::size_t vi = 0;
    for (const std::string& c : columns) {
      os << ',';
      while (vi < snap.values.size() && snap.values[vi].name < c) ++vi;
      if (vi < snap.values.size() && snap.values[vi].name == c) {
        os << JsonNumber(snap.values[vi].value);
      }
    }
    os << '\n';
  }
}

std::string TimeSeriesLog::Csv() const {
  std::ostringstream oss;
  WriteCsv(oss);
  return oss.str();
}

std::optional<TimeSeriesLog> TimeSeriesLog::ParseCsv(std::string_view csv) {
  TimeSeriesLog log;
  std::vector<std::string> header;
  std::vector<std::string> fields;
  std::size_t pos = 0;
  bool first_line = true;
  while (pos <= csv.size()) {
    const std::size_t eol = csv.find('\n', pos);
    std::string_view line = csv.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? csv.size() + 1 : eol + 1;
    if (line.empty()) continue;
    if (first_line) {
      if (!SplitCsvLine(line, header) || header.empty() ||
          header[0] != "t_ns") {
        return std::nullopt;
      }
      first_line = false;
      continue;
    }
    if (!SplitCsvLine(line, fields) || fields.size() != header.size()) {
      return std::nullopt;
    }
    MetricsSnapshot snap;
    char* endp = nullptr;
    snap.at = static_cast<SimTime>(std::strtoll(fields[0].c_str(), &endp, 10));
    if (endp == fields[0].c_str()) return std::nullopt;
    for (std::size_t i = 1; i < fields.size(); ++i) {
      if (fields[i].empty()) continue;
      MetricValue v;
      v.name = header[i];
      v.kind = MetricKind::kGauge;
      v.value = std::strtod(fields[i].c_str(), &endp);
      if (endp == fields[i].c_str()) return std::nullopt;
      snap.values.push_back(std::move(v));
    }
    log.Append(std::move(snap));
  }
  return log;
}

std::string MetricsSnapshot::Json() const {
  std::ostringstream oss;
  WriteJson(oss);
  return oss.str();
}

}  // namespace redplane::obs
