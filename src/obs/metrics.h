// Typed metric registry: O(1) hot-path counters, gauges, and histograms.
//
// Components register each metric once at construction and keep a typed
// handle; the hot path then updates through the handle with a single pointer
// store — no string hashing, no linear scan.  The string-keyed API of
// `common::Counters` (`Add(name)` / `Get(name)` / `Sorted()`) is preserved on
// top of the registry so existing call sites and tests keep working.
//
// A `MetricsHub` aggregates several component registries and snapshots them
// into a time series, which a simulator event can sample periodically to
// produce Fig. 14/15-style timelines for any bench.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace redplane::obs {

/// Log-linear histogram cell: 16 sub-buckets per power of two, giving at most
/// ~4.4 % relative error on percentile queries while keeping Record() O(1).
struct HistogramCell {
  static constexpr int kSubBucketsPerOctave = 16;
  // Exponent range [-64, 64) covers values from ~5e-20 to ~1.8e19.
  static constexpr int kMinExponent = -64;
  static constexpr int kMaxExponent = 64;
  static constexpr int kNumBuckets =
      (kMaxExponent - kMinExponent) * kSubBucketsPerOctave;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t zero_or_less = 0;  // values <= 0 (and underflow)
  std::vector<std::uint64_t> buckets;  // lazily sized to kNumBuckets

  void Record(double value);
  /// Percentile via bucket-rank walk with intra-bucket interpolation,
  /// clamped to the exact observed [min, max].
  double Percentile(double p) const;
  double Mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Accumulates `other` into this cell (bucket-wise sum, [min, max] union)
  /// — snapshot merging across shards loses no percentile resolution.
  void Merge(const HistogramCell& other);
  void Reset();
};

/// Typed counter handle.  Default-constructed handles are inert no-ops so a
/// component can be instrumented before (or without) registering metrics.
class Counter {
 public:
  Counter() = default;
  void Add(double delta = 1.0) {
    if (cell_) *cell_ += delta;
  }
  double value() const { return cell_ ? *cell_ : 0.0; }

 private:
  friend class MetricRegistry;
  explicit Counter(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// Typed gauge handle (set-to-current-value semantics).
class Gauge {
 public:
  Gauge() = default;
  void Set(double v) {
    if (cell_) *cell_ = v;
  }
  void Add(double delta) {
    if (cell_) *cell_ += delta;
  }
  double value() const { return cell_ ? *cell_ : 0.0; }

 private:
  friend class MetricRegistry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// Typed histogram handle.
class Histogram {
 public:
  Histogram() = default;
  void Record(double value) {
    if (cell_) cell_->Record(value);
  }
  std::uint64_t Count() const { return cell_ ? cell_->count : 0; }
  double Percentile(double p) const { return cell_ ? cell_->Percentile(p) : 0.0; }
  double Mean() const { return cell_ ? cell_->Mean() : 0.0; }
  double Min() const { return cell_ ? cell_->min : 0.0; }
  double Max() const { return cell_ ? cell_->max : 0.0; }

 private:
  friend class MetricRegistry;
  explicit Histogram(HistogramCell* cell) : cell_(cell) {}
  HistogramCell* cell_ = nullptr;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram, kCallbackGauge };

/// One exported metric value (histograms export count/mean/p50/p99/max).
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;                    // counter/gauge value, histogram count
  double hist_mean = 0.0;
  double hist_p50 = 0.0;
  double hist_p99 = 0.0;
  double hist_max = 0.0;
};

/// Point-in-time dump of a registry (or hub), sorted by metric name.
struct MetricsSnapshot {
  SimTime at = 0;
  std::vector<MetricValue> values;

  /// Writes `{"t_ns": ..., "metrics": {...}}` (one JSON object, no newline).
  void WriteJson(std::ostream& os) const;
  std::string Json() const;
};

/// Per-component metric registry.
///
/// Storage uses a deque so registered cells have stable addresses for the
/// lifetime of the registry; handles embed raw cell pointers.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  explicit MetricRegistry(std::string component) : component_(std::move(component)) {}

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  const std::string& component() const { return component_; }
  void set_component(std::string name) { component_ = std::move(name); }

  /// Registers (or re-fetches) a typed metric.  Registering the same name
  /// twice returns a handle to the same cell; registering a name that exists
  /// with a different kind returns an inert handle.
  Counter RegisterCounter(const std::string& name);
  Gauge RegisterGauge(const std::string& name);
  Histogram RegisterHistogram(const std::string& name);

  /// Registers a gauge whose value is computed at snapshot time — zero
  /// hot-path cost for values that are already maintained elsewhere
  /// (mirror occupancy, table sizes, ...).
  void AddCallbackGauge(const std::string& name, std::function<double()> fn);

  // --- common::Counters-compatible string API (kept for benches/tests) ---
  void Add(const std::string& name, double delta = 1.0);
  double Get(const std::string& name) const;
  std::vector<std::pair<std::string, double>> Sorted() const;

  /// Zeroes all values but keeps registrations (handles stay valid).
  void Reset();

  MetricsSnapshot Snapshot(SimTime at = 0) const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    double scalar = 0.0;
    HistogramCell hist;
    std::function<double()> callback;
  };

  Entry* FindOrCreate(const std::string& name, MetricKind kind);

  std::string component_;
  std::deque<Entry> entries_;  // stable addresses
  std::unordered_map<std::string, std::size_t> index_;
};

/// Aggregates several (non-owning) component registries for merged snapshots.
/// Callers must Unregister (or UnwatchAll) before a watched registry dies.
class MetricsHub {
 public:
  void Register(const MetricRegistry* registry);
  void Unregister(const MetricRegistry* registry);
  void Clear() { registries_.clear(); }
  std::size_t NumRegistries() const { return registries_.size(); }

  /// Merged snapshot; metric names are prefixed "component.metric" and the
  /// result is sorted by name for deterministic export.
  MetricsSnapshot Snapshot(SimTime at) const;

 private:
  std::vector<const MetricRegistry*> registries_;  // registration order
};

/// Append-only log of snapshots, exported as time-series JSON.
class TimeSeriesLog {
 public:
  void Append(MetricsSnapshot snapshot) { snapshots_.push_back(std::move(snapshot)); }
  std::size_t Size() const { return snapshots_.size(); }
  bool Empty() const { return snapshots_.empty(); }
  const MetricsSnapshot& At(std::size_t i) const { return snapshots_[i]; }
  void Clear() { snapshots_.clear(); }

  /// Writes `{"series": [ {...}, ... ]}`.
  void WriteJson(std::ostream& os) const;
  std::string Json() const;

  /// Writes CSV: header `t_ns,<sorted union of metric names>`, one row per
  /// snapshot.  Histogram metrics export their count; metrics absent from a
  /// snapshot export as empty cells.  Metric names containing commas or
  /// quotes are double-quoted per RFC 4180.
  void WriteCsv(std::ostream& os) const;
  std::string Csv() const;

  /// Parses WriteCsv output back into a log.  Scalar kinds collapse to
  /// gauges (CSV carries no kind column); empty cells are skipped.  Returns
  /// nullopt on malformed input.
  static std::optional<TimeSeriesLog> ParseCsv(std::string_view csv);

 private:
  std::vector<MetricsSnapshot> snapshots_;
};

}  // namespace redplane::obs
