// Minimal JSON helpers for the observability exporters.
//
// The trace and metrics exporters emit JSON by hand (no third-party JSON
// dependency); these helpers keep the escaping and number formatting in one
// place, byte-stable across runs (no locale, no pointer-derived ordering) so
// that identical simulations produce identical export files.  ValidateJson is
// a strict syntax checker used by tests to guarantee the emitted documents
// parse.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace redplane::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view s);

/// Formats a double deterministically: integral values print without a
/// fractional part, everything else with enough digits to be useful for
/// reporting.  NaN/Inf (not representable in JSON) print as 0.
std::string JsonNumber(double v);

/// Strict JSON syntax check over a complete document.  Returns true iff
/// `text` is one valid JSON value (with surrounding whitespace allowed).
bool ValidateJson(std::string_view text);

/// Parsed JSON value.  Objects keep insertion order (a vector of pairs, not
/// a map) so round-trips stay byte-stable; duplicate keys keep the first.
/// Just enough JSON for tools/report.cc and ci artifacts to read the
/// exporters' own output back — not a general-purpose library.
struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return type == Type::kNull; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsObject() const { return type == Type::kObject; }

  /// Object member lookup; null for missing keys or non-objects.
  const JsonValue* Find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  /// Find(key) as a number, with `fallback` for missing/mistyped members.
  double NumberOr(std::string_view key, double fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
  }
  /// Find(key) as a string, with `fallback` for missing/mistyped members.
  std::string StringOr(std::string_view key, std::string fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kString ? v->str
                                                    : std::move(fallback);
  }
};

/// Parses one complete JSON document (surrounding whitespace allowed).
/// Returns nullopt on any syntax error.
std::optional<JsonValue> ParseJson(std::string_view text);

}  // namespace redplane::obs
