// Minimal JSON helpers for the observability exporters.
//
// The trace and metrics exporters emit JSON by hand (no third-party JSON
// dependency); these helpers keep the escaping and number formatting in one
// place, byte-stable across runs (no locale, no pointer-derived ordering) so
// that identical simulations produce identical export files.  ValidateJson is
// a strict syntax checker used by tests to guarantee the emitted documents
// parse.
#pragma once

#include <string>
#include <string_view>

namespace redplane::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view s);

/// Formats a double deterministically: integral values print without a
/// fractional part, everything else with enough digits to be useful for
/// reporting.  NaN/Inf (not representable in JSON) print as 0.
std::string JsonNumber(double v);

/// Strict JSON syntax check over a complete document.  Returns true iff
/// `text` is one valid JSON value (with surrounding whitespace allowed).
bool ValidateJson(std::string_view text);

}  // namespace redplane::obs
