// Scoped sampling profiler: subsystem wall-clock time accounting.
//
// A `ProfScope` brackets a hot-path region against a `ProfSite` (one static
// site per instrumented region).  The profiler accumulates wall-clock time
// into a call-path tree: each node is one (parent-path, site) pair, so the
// same site reached through different callers is accounted separately — the
// structure a flamegraph renders.  Self time is derived at export: a node's
// total minus its children's totals.
//
// Cost discipline (mirrors TraceHandle / TapHandle, DESIGN.md §7/§9):
//  * disarmed (no profiler installed, or disabled): one global load and a
//    predictable branch per scope — cheap enough to leave compiled into
//    every hot path, including per-packet ones;
//  * armed but not sampled: one countdown decrement per scope.  Sites on
//    nanosecond-scale paths declare a sampling stride N (measure 1 in N
//    entries); sampled durations are scaled by N so totals stay unbiased;
//  * armed and sampled: two steady_clock reads plus two pointer-sized
//    stores.
//
// Timing is real wall-clock (std::chrono::steady_clock), not simulated time:
// the profiler answers "where does the *host* CPU go", which is what the
// parallel-engine work (ROADMAP item 1) needs to diagnose.  Profile exports
// are therefore machine-dependent by design; everything else in src/obs
// stays deterministic.
//
// Exports: collapsed-stack ("a;b;c self_ns" per line — flamegraph.pl /
// speedscope format) and JSON (nodes + flat per-site totals, consumed by
// tools/report.cc and ci/perf_smoke.py attribution diffs).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace redplane::obs {

class Profiler;

namespace internal {
extern Profiler* g_profiler;
/// Equal to g_profiler when it is installed AND enabled, else null.  The
/// ProfScope fast path tests only this pointer, so arming state costs one
/// load instead of a dependent profiler->enabled_ chase.
extern Profiler* g_armed;
}  // namespace internal

/// One instrumented region.  Declare one per region, at namespace scope or
/// as a function-local static, and bracket the region with a ProfScope.
/// `stride` is the sampling period: 1 (default) measures every entry;
/// nanosecond-scale sites use a larger stride so the armed cost stays a
/// decrement.
struct ProfSite {
  explicit ProfSite(const char* name, std::uint32_t stride = 1)
      : name(name),
        stride(stride == 0 ? 1 : stride),
        countdown(stride == 0 ? 1 : stride) {}

  const char* name;
  std::uint32_t stride;
  /// Entries remaining until the next sampled one (hot; decremented per
  /// armed scope entry).
  std::uint32_t countdown;
  /// Interned site id, revalidated against the installed profiler's
  /// generation (same discipline as TraceHandle's cached component id).
  std::uint16_t id = 0;
  Profiler* cached_profiler = nullptr;
  std::uint64_t cached_generation = 0;
};

/// One node of the call-path tree.
struct ProfNode {
  std::uint16_t site = 0;       // index into Profiler site table
  std::int32_t parent = -1;     // node index, -1 for a root
  std::uint64_t count = 0;      // entries (scaled by stride)
  std::uint64_t total_ns = 0;   // inclusive wall time (scaled by stride)
  std::vector<std::int32_t> children;
};

/// Flat per-site aggregate (what the perf-smoke attribution diff compares).
struct ProfSiteTotal {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

class Profiler {
 public:
  Profiler();

  /// Also updates internal::g_armed when this profiler is the installed one.
  void SetEnabled(bool enabled);
  bool enabled() const { return enabled_; }

  /// Bumps whenever sites are dropped; ProfSites revalidate against this.
  std::uint64_t generation() const { return generation_; }

  static std::uint64_t NowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  // --- recording (called by ProfScope) ---
  /// Interns `site` if needed, descends into (or creates) its child node
  /// under the current path, and returns the previous current node.
  std::int32_t Enter(ProfSite& site);
  /// Accumulates a sampled duration into the current node and restores the
  /// caller's node.
  void Leave(std::int32_t prev_node, std::uint64_t dur_ns,
             std::uint32_t stride);

  // --- inspection / export ---
  std::size_t NumNodes() const { return nodes_.size(); }
  const std::vector<ProfNode>& Nodes() const { return nodes_; }
  const std::string& SiteName(std::uint16_t id) const;
  /// A node's self time: total minus children's totals (clamped at 0 —
  /// strides can make a child's scaled total exceed its parent's sample).
  std::uint64_t SelfNs(std::int32_t node) const;
  /// Flat per-site totals, sorted by descending self time.
  std::vector<ProfSiteTotal> SiteTotals() const;

  /// Collapsed-stack format: one "root;child;leaf self_ns" line per node
  /// with nonzero self time, sorted by path for stable output.
  void WriteCollapsed(std::ostream& os) const;
  /// JSON: {"nodes": [...], "sites": [...]} — see tools/report.cc.
  void WriteJson(std::ostream& os) const;
  std::string Json() const;

  /// Drops all nodes and interned sites (bumps generation).
  void Reset();

 private:
  std::uint16_t InternSite(ProfSite& site);
  std::int32_t ChildNode(std::int32_t parent, std::uint16_t site);

  bool enabled_ = false;
  std::uint64_t generation_ = 1;
  std::vector<std::string> site_names_;
  std::vector<ProfNode> nodes_;
  /// Current call-path position; -1 = at the (virtual) root.
  std::int32_t current_ = -1;
  /// Root nodes (parent == -1), in creation order.
  std::vector<std::int32_t> roots_;
};

/// Process-global profiler (null when none installed).  Single-threaded,
/// like the simulator and the tracer.
inline Profiler* GlobalProfiler() { return internal::g_profiler; }

/// Installs `profiler` as the global one; returns the previous one.
Profiler* SetGlobalProfiler(Profiler* profiler);

/// RAII scope against a site.  Constructing one when no profiler is armed
/// costs one load and a branch; see the header comment for the armed costs.
class ProfScope {
 public:
  explicit ProfScope(ProfSite& site) {
    Profiler* p = internal::g_armed;
    if (p == nullptr) return;
    if (--site.countdown != 0) return;  // armed, not sampled this time
    site.countdown = site.stride;
    prof_ = p;
    stride_ = site.stride;
    prev_ = p->Enter(site);
    start_ns_ = Profiler::NowNs();
  }

  ~ProfScope() {
    if (prof_ == nullptr) return;
    prof_->Leave(prev_, Profiler::NowNs() - start_ns_, stride_);
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

  /// True when this scope was selected for measurement.
  bool sampled() const { return prof_ != nullptr; }

 private:
  Profiler* prof_ = nullptr;
  std::int32_t prev_ = -1;
  std::uint64_t start_ns_ = 0;
  std::uint32_t stride_ = 1;
};

}  // namespace redplane::obs
