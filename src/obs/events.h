// Event taxonomy for the per-packet lifecycle tracer.
//
// Every trace record carries one of these event kinds.  The taxonomy follows
// the RedPlane protocol lifecycle: a packet enters the fabric (kIngress),
// misses or hits its lease at a switch (kLeaseMiss / kLeaseGrant), gets its
// write replicated to the state store (kReplicationSent -> kStoreRecv ->
// kStoreServiceStart -> kStoreApplied -> kStoreResponded -> kAckReleased),
// splitting queue wait from service time at the store, may loop through the
// network-buffering read path (kBufferedRead / kBufferedReadLoop), may be
// retransmitted from the mirror buffer (kMirrored / kRetransmit), and on
// switch failure re-homes its flow state at a standby (kFailoverRehome).
// Infrastructure events (link drops, node failure/recovery, reroutes,
// control-plane installs) interleave with the packet lifecycle so a trace
// explains *why* a tail sample is slow.
#pragma once

#include <cstdint>

namespace redplane::obs {

enum class Ev : std::uint8_t {
  // --- sim layer ---
  kIngress = 0,       // packet admitted at a host edge (flow id = flow hash)
  kHostRecv,          // packet delivered to a host sink
  kLinkDrop,          // link dropped a packet (down / loss / stale epoch)
  kLinkDown,          // link transitioned to down
  kLinkUp,            // link transitioned to up
  kNodeFailure,       // node fail-stop
  kNodeRecovery,      // node came back up
  // --- routing layer ---
  kReroute,           // fabric recomputed routes after a topology change
  // --- dataplane layer ---
  kPipeline,          // packet entered a switch pipeline pass
  kRecirculate,       // packet recirculated through the pipeline
  kMirrored,          // protocol request copied into the mirror buffer
  kMirrorCleared,     // mirror entries released by a cumulative ack
  kCpInstalled,       // control-plane table install completed
  kPktgenBatch,       // packet generator emitted a batch
  // --- protocol state machine (switch side) ---
  kLeaseMiss,         // packet arrived for a key with no active lease
  kLeaseGrant,        // lease granted for a fresh (unowned) key
  kFailoverRehome,    // lease migrated: flow re-homed after a failure
  kReplicationSent,   // write replication request sent to the store
  kRenewSent,         // periodic lease renewal sent
  kRenewAck,          // lease renewal acknowledged
  kBufferedRead,      // read-intensive packet sent into the network buffer
  kBufferedReadLoop,  // buffered read looped back, still waiting for lease
  kRetransmit,        // mirror-buffered request retransmitted
  kRetxGiveUp,        // retransmission abandoned after the give-up horizon
  kAckReleased,       // output released to the app after store ack
  kLeaseDenied,       // store denied the lease (capacity / ownership)
  kSnapshotSent,      // bounded-inconsistency snapshot slot sent
  kOutputDropped,     // held output dropped (reset / failure)
  // --- state store ---
  kStoreRecv,         // protocol request received by a store replica
  kStoreServiceStart, // request left the service queue; CPU work begins
  kStoreApplied,      // write applied to the store's flow record
  kStoreBuffered,     // init buffered behind an unexpired lease
  kStoreReadParked,   // buffered read parked behind in-flight writes
  kStoreDenied,       // store rejected a request (stale / misdirected)
  kStoreResponded,    // store sent its response/ack
  // --- replication batching (DESIGN.md §10) ---
  kBatchFlushed,      // coalescer flushed a batch envelope toward a shard
  kStoreBatchRecv,    // store received a batch envelope (per-sub events follow)
};

/// Stable display name for an event kind (used in trace exports).
const char* EvName(Ev ev);

/// Total number of event kinds (for tables indexed by Ev).
inline constexpr int kNumEvents = static_cast<int>(Ev::kStoreBatchRecv) + 1;

}  // namespace redplane::obs
