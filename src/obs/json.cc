#include "obs/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace redplane::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  // Integral values (counters, byte totals) print exactly.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

namespace {

/// Recursive-descent JSON syntax checker.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool ParseDocument() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue() {
    if (depth_ > 512 || AtEnd()) return false;
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return ConsumeLiteral("true");
      case 'f': return ConsumeLiteral("false");
      case 'n': return ConsumeLiteral("null");
      default: return ParseNumber();
    }
  }

  bool ParseObject() {
    ++depth_;
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) { --depth_; return true; }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) { --depth_; return true; }
      return false;
    }
  }

  bool ParseArray() {
    ++depth_;
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) { --depth_; return true; }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) { --depth_; return true; }
      return false;
    }
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (!AtEnd()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (AtEnd()) return false;
        char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(
                               text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
    }
    return false;
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    if (AtEnd()) return false;
    if (Consume('0')) {
      // no leading zeros
    } else {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool ValidateJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace redplane::obs
