#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace redplane::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  // Integral values (counters, byte totals) print exactly.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

namespace {

/// Recursive-descent JSON syntax checker.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool ParseDocument() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue() {
    if (depth_ > 512 || AtEnd()) return false;
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return ConsumeLiteral("true");
      case 'f': return ConsumeLiteral("false");
      case 'n': return ConsumeLiteral("null");
      default: return ParseNumber();
    }
  }

  bool ParseObject() {
    ++depth_;
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) { --depth_; return true; }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) { --depth_; return true; }
      return false;
    }
  }

  bool ParseArray() {
    ++depth_;
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) { --depth_; return true; }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) { --depth_; return true; }
      return false;
    }
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (!AtEnd()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (AtEnd()) return false;
        char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(
                               text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
    }
    return false;
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    if (AtEnd()) return false;
    if (Consume('0')) {
      // no leading zeros
    } else {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool ValidateJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

namespace {

/// Recursive-descent parser building JsonValues.  Same grammar as the
/// validator; kept separate so the hot ValidateJson path allocates nothing.
class ValueParser {
 public:
  explicit ValueParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> ParseDocument() {
    SkipWs();
    JsonValue v;
    if (!ParseValue(v)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue& out) {
    if (++depth_ > 512 || AtEnd()) return false;
    bool ok = false;
    switch (Peek()) {
      case '{': ok = ParseObject(out); break;
      case '[': ok = ParseArray(out); break;
      case '"':
        out.type = JsonValue::Type::kString;
        ok = ParseString(out.str);
        break;
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        ok = ConsumeLiteral("true");
        break;
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        ok = ConsumeLiteral("false");
        break;
      case 'n':
        out.type = JsonValue::Type::kNull;
        ok = ConsumeLiteral("null");
        break;
      default:
        out.type = JsonValue::Type::kNumber;
        ok = ParseNumber(out.number);
        break;
    }
    --depth_;
    return ok;
  }

  bool ParseObject(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      JsonValue member;
      if (!ParseValue(member)) return false;
      if (out.Find(key) == nullptr) {
        out.object.emplace_back(std::move(key), std::move(member));
      }
      SkipWs();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      JsonValue elem;
      if (!ParseValue(elem)) return false;
      out.array.push_back(std::move(elem));
      SkipWs();
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string& out) {
    if (!Consume('"')) return false;
    while (!AtEnd()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (AtEnd()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              if (AtEnd()) return false;
              const char h = text_[pos_++];
              unsigned d;
              if (h >= '0' && h <= '9') d = static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') d = static_cast<unsigned>(h - 'a') + 10;
              else if (h >= 'A' && h <= 'F') d = static_cast<unsigned>(h - 'A') + 10;
              else return false;
              cp = cp * 16 + d;
            }
            // UTF-8 encode (surrogate pairs not joined — the exporters only
            // ever emit \u00xx control escapes).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      } else {
        out += c;
      }
    }
    return false;
  }

  bool ParseNumber(double& out) {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                        Peek() == '+' || Peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    // Re-check strict syntax with the validator's number grammar, then let
    // strtod produce the value.
    const std::string token(text_.substr(start, pos_ - start));
    if (!ValidateJson(token)) return false;
    out = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(std::string_view text) {
  return ValueParser(text).ParseDocument();
}

}  // namespace redplane::obs
