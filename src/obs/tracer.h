// Deterministic per-packet lifecycle tracer.
//
// A Tracer records fixed-size event records into a bounded ring buffer.
// Timestamps come from an injected clock (the simulator registers
// `Simulator::Now`), so identical seeds produce byte-identical trace
// exports.  Components emit through a `TraceHandle`, which caches its
// interned component id and compiles down to two loads and a branch when
// tracing is disabled — cheap enough to leave in every hot path.
//
// Exports: Chrome `trace_event` JSON (loadable in Perfetto / chrome://tracing)
// and a per-phase latency-breakdown table (p50/p99 per protocol phase),
// reconstructed by pairing begin/end events per (flow, seq).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace redplane::obs {

/// One trace record.  `flow` is a pre-hashed flow/key identifier (callers
/// hash with net::HashFlowKey / net::HashPartitionKey); `seq` disambiguates
/// per-write lifecycles; `arg` carries an event-specific payload (bytes,
/// counts, ...).
struct TraceRecord {
  SimTime t = 0;
  std::uint64_t order = 0;  // global emission index; breaks timestamp ties
  Ev ev = Ev::kIngress;
  std::uint16_t component = 0;
  /// End-of-span record whose begin partner is absent from the record set
  /// (evicted from the ring, or never recorded).  Computed at export time by
  /// MarkOrphanedEnds; never set on the hot emit path.
  bool orphan = false;
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
  double arg = 0.0;
  /// Cross-layer request span this record belongs to (0 = none).  The switch
  /// stamps a fresh span id into each protocol request; the store echoes it
  /// through the chain and the ack, so one write's whole lifecycle shares
  /// one id across components (see obs/spans.h).
  std::uint64_t span = 0;
  /// Enclosing span, for lifecycles spawned by another (0 = root).
  std::uint64_t parent_span = 0;
};

/// One begin→end protocol-span pairing (the pairings behind
/// Tracer::LatencyBreakdown).  Exported so the auditor's causal-slice
/// extraction can compute happens-before closure with the same rules the
/// tracer uses.
struct ProtocolPair {
  Ev begin;
  Ev end;
  bool seq_matched;  // pair on (flow, seq); otherwise on flow alone
};

/// All begin/end pairings the tracer reconstructs protocol phases from.
std::span<const ProtocolPair> ProtocolPairs();

/// Marks every end-of-span record in `records` (ascending emission order)
/// whose begin partner never appears earlier in the set — the signature of a
/// begin evicted from the ring while its span was still open.  Returns the
/// number of records marked.
std::size_t MarkOrphanedEnds(std::vector<TraceRecord>& records);

/// Writes Chrome trace_event JSON for an explicit record set.  Used by the
/// tracer's own export and by the auditor's causal slices; `components[id]`
/// names the component ids referenced by the records.
void WriteChromeTraceRecords(std::ostream& os,
                             std::span<const TraceRecord> records,
                             std::span<const std::string> components);

/// Record-selection predicate for queries and exports.  Zero/empty fields
/// match everything.
struct TraceFilter {
  std::uint64_t flow = 0;            // match this flow id only (0 = any)
  std::string component;             // match this component name only
  bool Matches(const TraceRecord& r, const class Tracer& tracer) const;
};

/// Per-phase latency summary produced by Tracer::LatencyBreakdown().
struct PhaseStats {
  std::string name;
  SampleSet samples_us;  // one sample per completed begin→end pair, in µs
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  // --- configuration ---
  void SetClock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  void ClearClock() { clock_ = nullptr; }
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  /// Record-time flow filter: when nonzero, only records with this flow id
  /// (or flow == 0, i.e. non-flow events) are kept.
  void SetFlowFilter(std::uint64_t flow) { flow_filter_ = flow; }

  // --- component interning ---
  /// Interns `name`, returning its stable component id.
  std::uint16_t Intern(std::string_view name);
  const std::string& ComponentName(std::uint16_t id) const;
  std::size_t NumComponents() const { return components_.size(); }
  /// Bumps whenever the name table is cleared; TraceHandles revalidate
  /// their cached id against this.
  std::uint64_t generation() const { return generation_; }

  // --- recording ---
  void Emit(std::uint16_t component, Ev ev, std::uint64_t flow = 0,
            std::uint64_t seq = 0, double arg = 0.0, std::uint64_t span = 0,
            std::uint64_t parent_span = 0);

  // --- inspection ---
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Number of records evicted from the ring since the last Clear().
  std::uint64_t evicted() const { return evicted_; }
  /// Records in emission order (oldest first), optionally filtered.
  std::vector<TraceRecord> Records(const TraceFilter& filter = {}) const;
  /// End-of-span records currently in the ring whose begin partner was
  /// evicted (or never recorded); see MarkOrphanedEnds.
  std::size_t CountOrphanedEnds() const;

  /// The tracer's own health metrics ("tracer.evicted_records",
  /// "tracer.orphaned_ends", "tracer.live_records" callback gauges) — register
  /// with a MetricsHub to make ring truncation visible in every sampled run
  /// instead of silently losing span begins.
  const MetricRegistry& metrics() const { return metrics_; }

  /// Drops recorded events (keeps component names and configuration).
  void Clear();
  /// Clear() plus drops interned component names (bumps generation).
  void Reset();

  // --- export ---
  void WriteChromeTrace(std::ostream& os, const TraceFilter& filter = {}) const;
  std::string ChromeTraceJson(const TraceFilter& filter = {}) const;

  /// Pairs begin/end events per (flow, seq) into protocol phases and returns
  /// per-phase latency summaries (skips phases with no completed pairs).
  std::vector<PhaseStats> LatencyBreakdown() const;
  /// Renders LatencyBreakdown() as an aligned table.
  void PrintBreakdown(std::ostream& os) const;

 private:
  SimTime NowOrZero() const { return clock_ ? clock_() : 0; }

  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;   // index of oldest record
  std::size_t count_ = 0;  // live records in the ring
  std::uint64_t evicted_ = 0;
  std::uint64_t next_order_ = 0;
  bool enabled_ = false;
  std::uint64_t flow_filter_ = 0;
  std::function<SimTime()> clock_;
  std::vector<std::string> components_;
  std::uint64_t generation_ = 1;
  MetricRegistry metrics_;  // callback gauges over ring state; see metrics()
};

namespace internal {
extern Tracer* g_tracer;
}  // namespace internal

/// Process-global tracer (null when none installed). Single-threaded, like
/// the simulator.
inline Tracer* GlobalTracer() { return internal::g_tracer; }

/// Installs `tracer` as the global tracer; returns the previous one.
Tracer* SetGlobalTracer(Tracer* tracer);

/// Cached per-component emitter.  Copyable; re-resolves its interned id when
/// the global tracer or its generation changes.
class TraceHandle {
 public:
  TraceHandle() = default;
  explicit TraceHandle(std::string name) : name_(std::move(name)) {}

  void SetName(std::string name) {
    name_ = std::move(name);
    cached_tracer_ = nullptr;  // force re-intern
  }
  const std::string& name() const { return name_; }

  /// True when emitting would actually record — callers guard any expensive
  /// argument computation (flow hashing, byte counting) behind this.
  bool armed() const {
    Tracer* t = internal::g_tracer;
    return t != nullptr && t->enabled();
  }

  void Emit(Ev ev, std::uint64_t flow = 0, std::uint64_t seq = 0,
            double arg = 0.0, std::uint64_t span = 0,
            std::uint64_t parent_span = 0) const {
    Tracer* t = internal::g_tracer;
    if (t == nullptr || !t->enabled()) return;
    if (cached_tracer_ != t || cached_generation_ != t->generation()) {
      cached_tracer_ = t;
      cached_generation_ = t->generation();
      cached_id_ = t->Intern(name_.empty() ? std::string_view("?") : name_);
    }
    t->Emit(cached_id_, ev, flow, seq, arg, span, parent_span);
  }

 private:
  std::string name_;
  mutable Tracer* cached_tracer_ = nullptr;
  mutable std::uint64_t cached_generation_ = 0;
  mutable std::uint16_t cached_id_ = 0;
};

}  // namespace redplane::obs
