#include "obs/tracer.h"

#include <algorithm>
#include <array>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/json.h"

namespace redplane::obs {

const char* EvName(Ev ev) {
  switch (ev) {
    case Ev::kIngress: return "ingress";
    case Ev::kHostRecv: return "host_recv";
    case Ev::kLinkDrop: return "link_drop";
    case Ev::kLinkDown: return "link_down";
    case Ev::kLinkUp: return "link_up";
    case Ev::kNodeFailure: return "node_failure";
    case Ev::kNodeRecovery: return "node_recovery";
    case Ev::kReroute: return "reroute";
    case Ev::kPipeline: return "pipeline";
    case Ev::kRecirculate: return "recirculate";
    case Ev::kMirrored: return "mirrored";
    case Ev::kMirrorCleared: return "mirror_cleared";
    case Ev::kCpInstalled: return "cp_installed";
    case Ev::kPktgenBatch: return "pktgen_batch";
    case Ev::kLeaseMiss: return "lease_miss";
    case Ev::kLeaseGrant: return "lease_grant";
    case Ev::kFailoverRehome: return "failover_rehome";
    case Ev::kReplicationSent: return "replication_sent";
    case Ev::kRenewSent: return "renew_sent";
    case Ev::kRenewAck: return "renew_ack";
    case Ev::kBufferedRead: return "buffered_read";
    case Ev::kBufferedReadLoop: return "buffered_read_loop";
    case Ev::kRetransmit: return "retransmit";
    case Ev::kRetxGiveUp: return "retx_give_up";
    case Ev::kAckReleased: return "ack_released";
    case Ev::kLeaseDenied: return "lease_denied";
    case Ev::kSnapshotSent: return "snapshot_sent";
    case Ev::kOutputDropped: return "output_dropped";
    case Ev::kStoreRecv: return "store_recv";
    case Ev::kStoreServiceStart: return "store_service_start";
    case Ev::kStoreApplied: return "store_applied";
    case Ev::kStoreBuffered: return "store_buffered";
    case Ev::kStoreReadParked: return "store_read_parked";
    case Ev::kStoreDenied: return "store_denied";
    case Ev::kStoreResponded: return "store_responded";
    case Ev::kBatchFlushed: return "batch_flushed";
    case Ev::kStoreBatchRecv: return "store_batch_recv";
  }
  return "?";
}

namespace internal {
Tracer* g_tracer = nullptr;
}  // namespace internal

Tracer* SetGlobalTracer(Tracer* tracer) {
  Tracer* prev = internal::g_tracer;
  internal::g_tracer = tracer;
  return prev;
}

bool TraceFilter::Matches(const TraceRecord& r, const Tracer& tracer) const {
  if (flow != 0 && r.flow != flow) return false;
  if (!component.empty() && tracer.ComponentName(r.component) != component) {
    return false;
  }
  return true;
}

Tracer::Tracer(std::size_t capacity) : metrics_("tracer") {
  if (capacity == 0) capacity = 1;
  ring_.resize(capacity);
  components_.emplace_back("?");  // id 0 = unknown
  // Ring-truncation visibility (sampled alongside component metrics so a
  // trace-derived artifact can be cross-checked against eviction pressure).
  metrics_.AddCallbackGauge("evicted_records",
                            [this] { return static_cast<double>(evicted_); });
  metrics_.AddCallbackGauge("orphaned_ends", [this] {
    return static_cast<double>(CountOrphanedEnds());
  });
  metrics_.AddCallbackGauge("live_records",
                            [this] { return static_cast<double>(count_); });
}

std::uint16_t Tracer::Intern(std::string_view name) {
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] == name) return static_cast<std::uint16_t>(i);
  }
  if (components_.size() >= 0xFFFF) return 0;
  components_.emplace_back(name);
  return static_cast<std::uint16_t>(components_.size() - 1);
}

const std::string& Tracer::ComponentName(std::uint16_t id) const {
  static const std::string kUnknown = "?";
  return id < components_.size() ? components_[id] : kUnknown;
}

void Tracer::Emit(std::uint16_t component, Ev ev, std::uint64_t flow,
                  std::uint64_t seq, double arg, std::uint64_t span,
                  std::uint64_t parent_span) {
  if (!enabled_) return;
  if (flow_filter_ != 0 && flow != 0 && flow != flow_filter_) return;
  TraceRecord rec;
  rec.t = NowOrZero();
  rec.order = next_order_++;
  rec.ev = ev;
  rec.component = component;
  rec.flow = flow;
  rec.seq = seq;
  rec.arg = arg;
  rec.span = span;
  rec.parent_span = parent_span;
  if (count_ < ring_.size()) {
    ring_[(head_ + count_) % ring_.size()] = rec;
    ++count_;
  } else {
    ring_[head_] = rec;
    head_ = (head_ + 1) % ring_.size();
    ++evicted_;
  }
}

std::vector<TraceRecord> Tracer::Records(const TraceFilter& filter) const {
  std::vector<TraceRecord> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    const TraceRecord& r = ring_[(head_ + i) % ring_.size()];
    if (filter.Matches(r, *this)) out.push_back(r);
  }
  return out;
}

void Tracer::Clear() {
  head_ = 0;
  count_ = 0;
  evicted_ = 0;
  next_order_ = 0;
}

void Tracer::Reset() {
  Clear();
  components_.clear();
  components_.emplace_back("?");
  ++generation_;
}

void WriteChromeTraceRecords(std::ostream& os,
                             std::span<const TraceRecord> records,
                             std::span<const std::string> components) {
  os << "{\"traceEvents\": [";
  bool first = true;
  // Thread-name metadata: one sim "thread" per component.
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << i
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << JsonEscape(components[i]) << "\"}}";
  }
  char ts_buf[48];
  for (const TraceRecord& r : records) {
    if (!first) os << ",";
    first = false;
    // Chrome trace timestamps are microseconds; keep ns precision.
    std::snprintf(ts_buf, sizeof(ts_buf), "%lld.%03lld",
                  static_cast<long long>(r.t / 1000),
                  static_cast<long long>(r.t % 1000));
    os << "\n  {\"ph\": \"i\", \"s\": \"t\", \"cat\": \"redplane\", \"ts\": "
       << ts_buf << ", \"pid\": 1, \"tid\": " << r.component
       << ", \"name\": \"" << EvName(r.ev) << "\", \"args\": {\"flow\": \""
       << std::hex << r.flow << std::dec << "\", \"seq\": " << r.seq
       << ", \"arg\": " << JsonNumber(r.arg);
    if (r.span != 0) {
      os << ", \"span\": \"" << std::hex << r.span << std::dec << '"';
    }
    if (r.parent_span != 0) {
      os << ", \"parent_span\": \"" << std::hex << r.parent_span << std::dec
         << '"';
    }
    if (r.orphan) os << ", \"orphan\": true";
    os << "}}";
  }
  os << "\n]}\n";
}

void Tracer::WriteChromeTrace(std::ostream& os, const TraceFilter& filter) const {
  // Orphan ends must be computed over the *full* record set (a filter could
  // otherwise hide a begin and fake an orphan), then filtered for export.
  std::vector<TraceRecord> records = Records();
  MarkOrphanedEnds(records);
  std::vector<TraceRecord> selected;
  selected.reserve(records.size());
  for (const TraceRecord& r : records) {
    if (filter.Matches(r, *this)) selected.push_back(r);
  }
  WriteChromeTraceRecords(os, selected, components_);
}

std::string Tracer::ChromeTraceJson(const TraceFilter& filter) const {
  std::ostringstream oss;
  WriteChromeTrace(oss, filter);
  return oss.str();
}

namespace {

struct PhaseDef {
  const char* name;
  Ev begin;
  Ev end;
  bool seq_matched;  // pair on (flow, seq); otherwise on flow alone
  int alt;           // index of a mutually-exclusive phase sharing this
                     // begin event, or -1 (a lease miss ends in either a
                     // grant or a rehome, never both)
};

// Protocol phases reconstructed from begin/end event pairs.  Ordered
// roughly along the packet lifecycle; the breakdown table keeps this order.
constexpr PhaseDef kPhases[] = {
    {"lease_acquire", Ev::kLeaseMiss, Ev::kLeaseGrant, false, 1},
    {"failover_rehome", Ev::kLeaseMiss, Ev::kFailoverRehome, false, 0},
    {"write_replication_rtt", Ev::kReplicationSent, Ev::kAckReleased, true, -1},
    {"switch_to_store", Ev::kReplicationSent, Ev::kStoreRecv, true, -1},
    {"store_queue_wait", Ev::kStoreRecv, Ev::kStoreServiceStart, true, -1},
    {"store_apply", Ev::kStoreServiceStart, Ev::kStoreApplied, true, -1},
    {"store_respond", Ev::kStoreApplied, Ev::kStoreResponded, true, -1},
    {"store_to_switch", Ev::kStoreResponded, Ev::kAckReleased, true, -1},
    {"buffered_read_rtt", Ev::kBufferedRead, Ev::kAckReleased, true, -1},
    {"retx_delay", Ev::kReplicationSent, Ev::kRetransmit, true, -1},
};

constexpr std::size_t kNumPhases = sizeof(kPhases) / sizeof(kPhases[0]);

/// Replays begin/end pairing over `recs` (ascending emission order).  For
/// every completed pair, calls `on_pair(phase, t_begin, t_end)`.  For every
/// end-kind record whose begin key was *never seen* in the set (evicted or
/// never recorded — as opposed to consumed by an earlier end, which chain
/// fan-out does legitimately), calls `on_orphan(record_index)`.
template <typename PairFn, typename OrphanFn>
void ReplayPhases(const std::vector<TraceRecord>& recs, PairFn&& on_pair,
                  OrphanFn&& on_orphan) {
  // Open begin events per phase, keyed by (flow, seq) — std::map/set for
  // deterministic behaviour independent of hash seeding.
  std::map<std::pair<std::uint64_t, std::uint64_t>, SimTime> open[kNumPhases];
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen[kNumPhases];
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const TraceRecord& r = recs[i];
    bool is_end = false;
    bool matched = false;
    bool begin_seen = false;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      const PhaseDef& def = kPhases[p];
      const std::uint64_t seq_key = def.seq_matched ? r.seq : 0;
      const auto key = std::make_pair(r.flow, seq_key);
      if (r.ev == def.begin) {
        // Keep the earliest unmatched begin for this key.
        open[p].emplace(key, r.t);
        seen[p].insert(key);
      }
      if (r.ev == def.end) {
        // A seq-0 record of an end-event kind is a control message (lease
        // acquire / renew) — those have no begin partner by design and are
        // never orphans.
        if (!def.seq_matched || r.seq != 0) is_end = true;
        auto it = open[p].find(key);
        if (it != open[p].end()) {
          matched = true;
          on_pair(p, it->second, r.t);
          open[p].erase(it);
          // A mutually-exclusive alternative phase consumed the same begin:
          // close it too so a later begin can't pair against a stale one.
          if (def.alt >= 0) {
            open[static_cast<std::size_t>(def.alt)].erase(key);
          }
        }
        if (seen[p].count(key) != 0) begin_seen = true;
      }
    }
    if (is_end && !matched && !begin_seen) on_orphan(i);
  }
}

}  // namespace

std::span<const ProtocolPair> ProtocolPairs() {
  static const auto pairs = [] {
    std::array<ProtocolPair, kNumPhases> out{};
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      out[p] = ProtocolPair{kPhases[p].begin, kPhases[p].end,
                            kPhases[p].seq_matched};
    }
    return out;
  }();
  return pairs;
}

std::size_t MarkOrphanedEnds(std::vector<TraceRecord>& records) {
  std::size_t marked = 0;
  ReplayPhases(
      records, [](std::size_t, SimTime, SimTime) {},
      [&](std::size_t i) {
        records[i].orphan = true;
        ++marked;
      });
  return marked;
}

std::size_t Tracer::CountOrphanedEnds() const {
  std::vector<TraceRecord> records = Records();
  return MarkOrphanedEnds(records);
}

std::vector<PhaseStats> Tracer::LatencyBreakdown() const {
  std::vector<PhaseStats> stats(kNumPhases);
  for (std::size_t p = 0; p < kNumPhases; ++p) stats[p].name = kPhases[p].name;
  ReplayPhases(
      Records(),
      [&](std::size_t p, SimTime begin_t, SimTime end_t) {
        stats[p].samples_us.Add(static_cast<double>(end_t - begin_t) / 1e3);
      },
      [](std::size_t) {});
  std::vector<PhaseStats> out;
  for (auto& s : stats) {
    if (!s.samples_us.Empty()) out.push_back(std::move(s));
  }
  return out;
}

void Tracer::PrintBreakdown(std::ostream& os) const {
  auto phases = LatencyBreakdown();
  os << "Per-phase latency breakdown (us):\n";
  os << "  " << std::left << std::setw(24) << "phase" << std::right
     << std::setw(10) << "count" << std::setw(12) << "p50" << std::setw(12)
     << "p99" << std::setw(12) << "max" << "\n";
  if (phases.empty()) {
    os << "  (no completed phase pairs recorded)\n";
    return;
  }
  for (const auto& ph : phases) {
    os << "  " << std::left << std::setw(24) << ph.name << std::right
       << std::setw(10) << ph.samples_us.Count() << std::setw(12)
       << FormatDouble(ph.samples_us.Percentile(50.0), 3) << std::setw(12)
       << FormatDouble(ph.samples_us.Percentile(99.0), 3) << std::setw(12)
       << FormatDouble(ph.samples_us.Max(), 3) << "\n";
  }
}

}  // namespace redplane::obs
