// Continuous fleet time-series telemetry.
//
// The MetricsHub snapshots raw monotonic counters; operators (and the
// rpreport recovery section) want *rates*: per-second per-switch goodput,
// lease churn (acquire/renew/handoff/deny per second), per-link replication
// bytes, store-shard queue depth, and timer-wheel / SoA-table occupancy.
// FleetSampler turns hub snapshots into that view: sampled once per period,
// each counter metric becomes a `<name>.per_sec` rate (delta over the
// sampling interval, scaled to one second), each gauge / callback gauge
// passes through as a level, and each histogram contributes a
// `<name>.per_sec` of its count.  The derived series accumulate in a
// TimeSeriesLog, exported as CSV or JSON with the same schema the rest of
// the obs stack uses (metrics.h), so rpreport and ci scripts parse it with
// the machinery they already have.
//
// All derived values are emitted as gauges: a rate is a level, not a
// monotonic count.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "obs/metrics.h"

namespace redplane::obs {

class FleetSampler {
 public:
  /// `hub` must outlive the sampler; register every registry to export
  /// (switch stats, store stats, wheel/table gauges) before sampling.
  explicit FleetSampler(const MetricsHub* hub) : hub_(hub) {}

  /// Takes one sample at `now`.  The first call establishes the baseline
  /// (rates need a previous snapshot) and emits levels only.
  void Sample(SimTime now);

  const TimeSeriesLog& log() const { return log_; }
  std::size_t NumSamples() const { return log_.Size(); }

  /// Drops accumulated samples and the rate baseline.
  void Reset();

  void WriteCsv(std::ostream& os) const { log_.WriteCsv(os); }
  void WriteJson(std::ostream& os) const { log_.WriteJson(os); }
  std::string Csv() const { return log_.Csv(); }
  std::string Json() const { return log_.Json(); }

 private:
  const MetricsHub* hub_;
  TimeSeriesLog log_;
  /// Previous counter/histogram-count values by metric name (rate baseline).
  std::unordered_map<std::string, double> prev_;
  SimTime prev_at_ = 0;
  bool have_prev_ = false;
};

}  // namespace redplane::obs
