// Failover forensics: recovery-episode detection and phase decomposition.
//
// RedPlane's headline number is not steady-state latency but the ~1 s
// end-to-end disruption after a failure — failure-detection delay plus the
// lease period (Fig. 14, Table 1).  This engine turns the audit tap stream
// into that number, decomposed: it watches the raw protocol facts the
// auditor publishes (audit/taps.h) and, on an injected fault
// (kNodeDown / kLinkCut), opens a *recovery episode* that it closes into
// five causally ordered phases:
//
//   t0 ──────── fault injected            (kNodeDown / kLinkCut)
//   t0..t1      failure_detection         ends at kRouteReconverged
//   t1..t2      route_reconvergence       ends at kLeaseRequested
//   t2..t3      lease_reacquisition       ends at kLeaseGranted
//   t3..t4      state_install             ends at kLeaseAcquired
//   t4..t5      first_packet_served       ends at kOutputServed
//
// The phase endpoints telescope — phase i spans [t_i, t_{i+1}] — so the
// phase durations sum to the measured episode downtime t5 − t0 *by
// construction*; PhaseSumOk() re-checks the identity numerically and every
// campaign run asserts it (the internal-consistency invariant of
// DESIGN.md §13).  A fault whose recovery skips a phase (a link flap whose
// leases survive, a store failover absorbed by retransmission) yields
// zero-width phases: a later marker back-fills any unset earlier endpoint.
//
// Per-flow downtime: the tracker remembers each flow's last served output.
// A flow served before t0 and again at t > t0 contributes the sample
// (t − t0) to the episode's downtime distribution (p50/p99/max).
//
// Flight-recorder snapshot: on episode open the tracker copies the tracer
// ring (the pre-fault context) so long campaigns cannot evict the records
// that explain the episode; the close merges in what the ring accumulated
// during the episode.
//
// This file deliberately depends only on the audit *header* (the Tap enum
// and the TapEvent POD): obs does not link the audit library.  Producers
// wire the stream with Auditor::SetTapObserver at sites that link both
// (tools/campaign, the benches).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/taps.h"
#include "common/stats.h"
#include "common/types.h"
#include "obs/tracer.h"

namespace redplane::obs {

/// Recovery phases, in causal order.  Values index RecoveryEpisode arrays.
enum class RecoveryPhase : std::uint8_t {
  kFailureDetection = 0,   // fault -> routes rebuilt
  kRouteReconvergence,     // routes rebuilt -> first lease re-request
  kLeaseReacquisition,     // lease requested -> grant received
  kStateInstall,           // grant received -> state installed, lease live
  kFirstPacketServed,      // lease live -> first output released
};
inline constexpr int kNumRecoveryPhases = 5;

/// Stable display name ("failure_detection", ...).
const char* RecoveryPhaseName(RecoveryPhase phase);

/// One detected failover episode.
struct RecoveryEpisode {
  std::uint64_t id = 0;       // 1-based, in detection order
  SimTime fault_at = 0;       // t0: the injected fault's timestamp
  std::string trigger;        // "node_down" or "link_cut"
  std::uint64_t fault_aux = 0;  // tap aux (node id for kNodeDown)
  /// End timestamp of each phase (t1..t5); 0 while unreached.  After the
  /// episode closes, every endpoint is set and non-decreasing; a skipped
  /// phase collapses to zero width (its endpoint equals its predecessor's).
  std::array<SimTime, kNumRecoveryPhases> phase_end{};
  /// True once t5 (first output after lease re-install) was observed, or
  /// Finalize() could close the episode from a post-fault service event;
  /// false means service never resumed within the run.
  bool complete = false;
  /// Additional faults injected while this episode was open (overlapping
  /// faults are folded into one episode, counted here).
  std::uint32_t extra_faults = 0;

  /// Per-flow downtime samples, in microseconds: one sample per flow that
  /// was served before t0 and again after (first service gap spanning the
  /// fault).
  SampleSet flow_downtime_us;

  /// Flight-recorder snapshot: the tracer ring at episode open merged with
  /// the records accrued until close, in emission order.  Empty when no
  /// tracer was attached.
  std::vector<TraceRecord> trace;
  std::uint64_t evicted_at_open = 0;
  std::uint64_t evicted_at_close = 0;

  /// Measured downtime t5 - t0 (0 while incomplete).
  SimDuration Downtime() const {
    return complete ? phase_end.back() - fault_at : 0;
  }
  /// Duration of one phase (endpoints telescope).
  SimDuration PhaseDuration(RecoveryPhase phase) const {
    const int i = static_cast<int>(phase);
    const SimTime begin = i == 0 ? fault_at : phase_end[i - 1];
    return phase_end[i] - begin;
  }
};

/// Verifies the internal-consistency invariant: the five phase durations
/// sum exactly (integer nanoseconds, no tolerance) to the measured episode
/// downtime, and the endpoints are non-decreasing.  False for incomplete
/// episodes.
bool PhaseSumOk(const RecoveryEpisode& episode);

/// Consumes the audit tap stream and detects recovery episodes.
///
/// Wire with:
///   auditor.SetTapObserver([&t](const audit::TapEvent& ev) {
///     t.OnTapEvent(ev);
///   });
/// and call Finalize(sim.Now()) after the run drains so an episode whose
/// t5 marker was missed (no lease re-acquisition) still closes from the
/// first post-fault service event.
class RecoveryTracker {
 public:
  /// `tracer` (optional) is snapshotted on episode open/close.
  explicit RecoveryTracker(const Tracer* tracer = nullptr)
      : tracer_(tracer) {}

  void OnTapEvent(const audit::TapEvent& ev);

  /// Closes a still-open episode from the recorded post-fault service
  /// times (skipped phases collapse to zero width).  An episode with no
  /// post-fault service at all stays incomplete with phase_end[4] = `now`
  /// so its downtime lower-bounds the truth.
  void Finalize(SimTime now);

  const std::vector<RecoveryEpisode>& episodes() const { return episodes_; }
  bool EpisodeOpen() const { return open_; }

  /// Drops episodes and per-flow service history (between campaign runs).
  void Reset();

  /// Writes all episodes as one JSON object:
  ///   {"episodes": [{"id", "trigger", "fault_at_ns", "complete",
  ///                  "downtime_ns", "phase_sum_ok",
  ///                  "phases": [{"name", "start_ns", "end_ns",
  ///                              "duration_ns"}, ...],
  ///                  "flows": {"count", "p50_us", "p99_us", "max_us"},
  ///                  "evicted_during": N}, ...]}
  void WriteJson(std::ostream& os) const;
  std::string Json() const;

  /// Renders an aligned per-episode phase table (the bench/report view).
  void PrintTimeline(std::ostream& os) const;

 private:
  void OpenEpisode(const audit::TapEvent& ev, const char* trigger);
  /// Sets phase endpoint `phase` to `t` if unset, back-filling any unset
  /// earlier endpoints (skipped phases collapse to zero width).
  void MarkPhase(RecoveryPhase phase, SimTime t);
  void CloseEpisode();

  const Tracer* tracer_ = nullptr;
  std::vector<RecoveryEpisode> episodes_;
  bool open_ = false;
  RecoveryEpisode current_;
  /// Order index of the newest record in the open-time snapshot, so the
  /// close-time merge appends only records emitted after it.
  std::uint64_t snapshot_last_order_ = 0;
  bool snapshot_has_records_ = false;
  /// Last time each flow (pre-hashed partition key) was served an output.
  std::unordered_map<std::uint64_t, SimTime> last_served_;
  /// Flows already sampled into the open episode's downtime distribution.
  std::unordered_map<std::uint64_t, SimTime> served_before_fault_;
  /// First kOutputServed after t0 (any flow): the fallback close point for
  /// episodes that skip the lease phases.
  SimTime first_served_after_fault_ = 0;
};

}  // namespace redplane::obs
