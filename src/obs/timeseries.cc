#include "obs/timeseries.h"

namespace redplane::obs {

void FleetSampler::Sample(SimTime now) {
  const MetricsSnapshot raw = hub_->Snapshot(now);
  MetricsSnapshot derived;
  derived.at = now;
  const double dt_s = have_prev_ && now > prev_at_
                          ? static_cast<double>(now - prev_at_) / 1e9
                          : 0.0;
  for (const MetricValue& mv : raw.values) {
    switch (mv.kind) {
      case MetricKind::kGauge:
      case MetricKind::kCallbackGauge: {
        MetricValue out;
        out.name = mv.name;
        out.kind = MetricKind::kGauge;
        out.value = mv.value;
        derived.values.push_back(std::move(out));
        break;
      }
      case MetricKind::kCounter:
      case MetricKind::kHistogram: {
        // Histograms export their count in `value`, so both kinds rate the
        // same way: delta since the previous sample, scaled to one second.
        if (dt_s > 0) {
          const auto it = prev_.find(mv.name);
          const double before = it == prev_.end() ? 0.0 : it->second;
          MetricValue out;
          out.name = mv.name + ".per_sec";
          out.kind = MetricKind::kGauge;
          out.value = (mv.value - before) / dt_s;
          derived.values.push_back(std::move(out));
        }
        prev_[mv.name] = mv.value;
        break;
      }
    }
  }
  prev_at_ = now;
  have_prev_ = true;
  log_.Append(std::move(derived));
}

void FleetSampler::Reset() {
  log_.Clear();
  prev_.clear();
  prev_at_ = 0;
  have_prev_ = false;
}

}  // namespace redplane::obs
