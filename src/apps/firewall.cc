#include "apps/firewall.h"

namespace redplane::apps {

std::optional<net::PartitionKey> FirewallApp::KeyOf(
    const net::Packet& pkt) const {
  auto flow = pkt.Flow();
  if (!flow.has_value()) return std::nullopt;
  if (IsInternal(flow->src_ip)) {
    return net::PartitionKey::OfFlow(*flow);
  }
  return net::PartitionKey::OfFlow(flow->Reversed());
}

core::ProcessResult FirewallApp::Process(core::AppContext& ctx,
                                         net::Packet pkt,
                                         std::vector<std::byte>& state) {
  (void)ctx;
  core::ProcessResult result;
  if (!pkt.ip.has_value()) return result;
  const bool outbound = IsInternal(pkt.ip->src);
  auto entry = core::StateAs<FirewallEntry>(state);

  if (outbound) {
    if (!entry.has_value() || entry->established == 0) {
      // First outbound packet establishes the connection state — the one
      // write this read-centric app performs.
      FirewallEntry fresh;
      fresh.established = 1;
      core::SetState(state, fresh);
      result.state_modified = true;
    } else if (pkt.tcp && pkt.tcp->fin()) {
      FirewallEntry updated = *entry;
      updated.fin_seen = 1;
      core::SetState(state, updated);
      result.state_modified = true;
    }
    result.outputs.push_back(std::move(pkt));
    return result;
  }

  // Inbound: admit only established connections.
  if (entry.has_value() && entry->established != 0) {
    result.outputs.push_back(std::move(pkt));
  }
  return result;
}

}  // namespace redplane::apps
