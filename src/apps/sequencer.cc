#include "apps/sequencer.h"

#include "net/codec.h"

namespace redplane::apps {

net::Packet MakeSequencedPacket(const net::FlowKey& flow,
                                std::uint64_t group) {
  net::Packet pkt = net::MakeUdpPacket(flow, 0);
  pkt.udp->dst_port = kSequencerPort;
  std::vector<std::byte> buf;
  net::ByteWriter w(buf);
  w.U64(group);
  w.U64(0);  // stamp placeholder, filled by the sequencer
  pkt.payload = std::move(buf);
  return pkt;
}

std::optional<SequencedHeader> ParseSequencedPacket(const net::Packet& pkt) {
  if (pkt.payload.size() < 16) return std::nullopt;
  net::ByteReader r(pkt.payload);
  SequencedHeader hdr;
  hdr.group = r.U64();
  hdr.stamp = r.U64();
  return hdr;
}

std::optional<net::PartitionKey> SequencerApp::KeyOf(
    const net::Packet& pkt) const {
  if (!pkt.udp.has_value() || pkt.udp->dst_port != kSequencerPort ||
      pkt.payload.size() < 16) {
    return std::nullopt;
  }
  net::ByteReader r(pkt.payload);
  return net::PartitionKey::OfObject(r.U64());
}

core::ProcessResult SequencerApp::Process(core::AppContext& ctx,
                                          net::Packet pkt,
                                          std::vector<std::byte>& state) {
  (void)ctx;
  core::ProcessResult result;
  if (pkt.payload.size() < 16) return result;

  // Increment the group counter and stamp the message (every packet is a
  // write: the sequencer is the paper's worst-case access pattern with
  // application semantics attached).
  const std::uint64_t stamp =
      core::StateAs<std::uint64_t>(state).value_or(0) + 1;
  core::SetState(state, stamp);
  result.state_modified = true;

  net::ByteReader r(pkt.payload);
  const std::uint64_t group = r.U64();
  std::vector<std::byte> buf;
  net::ByteWriter w(buf);
  w.U64(group);
  w.U64(stamp);
  pkt.payload = std::move(buf);
  result.outputs.push_back(std::move(pkt));
  return result;
}

}  // namespace redplane::apps
