#include "apps/heavy_hitter.h"

namespace redplane::apps {

HeavyHitterApp::HeavyHitterApp(HeavyHitterConfig config)
    : config_(std::move(config)) {
  for (std::uint16_t vlan : config_.vlans) {
    sketches_.emplace(vlan, std::make_unique<CountMinSketch>(
                                "hh/vlan" + std::to_string(vlan),
                                config_.sketch_rows, config_.sketch_slots));
    heavy_[vlan];
  }
}

CountMinSketch* HeavyHitterApp::SketchFor(std::uint16_t vlan) {
  auto it = sketches_.find(vlan);
  return it == sketches_.end() ? nullptr : it->second.get();
}

const CountMinSketch* HeavyHitterApp::SketchFor(std::uint16_t vlan) const {
  auto it = sketches_.find(vlan);
  return it == sketches_.end() ? nullptr : it->second.get();
}

std::optional<net::PartitionKey> HeavyHitterApp::KeyOf(
    const net::Packet& pkt) const {
  if (pkt.vlan == 0 || sketches_.count(pkt.vlan) == 0) return std::nullopt;
  // State partitions per tenant VLAN (§2: "partitioning on VLAN ID").
  return net::PartitionKey::OfVlan(pkt.vlan);
}

core::ProcessResult HeavyHitterApp::Process(core::AppContext& ctx,
                                            net::Packet pkt,
                                            std::vector<std::byte>& state) {
  (void)ctx;
  (void)state;  // sketch state lives in app-owned register arrays
  core::ProcessResult result;
  CountMinSketch* sketch = SketchFor(pkt.vlan);
  auto flow = pkt.Flow();
  if (sketch != nullptr && flow.has_value()) {
    dp::PipelinePass pass;
    const std::uint32_t estimate =
        sketch->Update(pass, net::HashFlowKey(*flow), 1);
    if (estimate >= config_.threshold) {
      heavy_[pkt.vlan].insert(*flow);
    }
  }
  result.outputs.push_back(std::move(pkt));
  return result;
}

void HeavyHitterApp::Reset() {
  for (auto& [vlan, sketch] : sketches_) sketch->Reset();
  for (auto& [vlan, flows] : heavy_) flows.clear();
}

std::vector<net::PartitionKey> HeavyHitterApp::SnapshotKeys() const {
  std::vector<net::PartitionKey> keys;
  keys.reserve(sketches_.size());
  for (const auto& [vlan, sketch] : sketches_) {
    keys.push_back(net::PartitionKey::OfVlan(vlan));
  }
  return keys;
}

std::uint32_t HeavyHitterApp::NumSnapshotSlots() const {
  return static_cast<std::uint32_t>(config_.sketch_slots);
}

void HeavyHitterApp::BeginSnapshot(const net::PartitionKey& key) {
  CountMinSketch* sketch = SketchFor(key.vlan);
  if (sketch == nullptr) return;
  dp::PipelinePass pass;
  sketch->BeginSnapshot(pass);
}

std::vector<std::byte> HeavyHitterApp::ReadSnapshotSlot(
    const net::PartitionKey& key, std::uint32_t index) {
  CountMinSketch* sketch = SketchFor(key.vlan);
  if (sketch == nullptr) return {};
  dp::PipelinePass pass;
  return sketch->ReadSnapshotSlot(pass, index);
}

std::uint32_t HeavyHitterApp::Estimate(std::uint16_t vlan,
                                       const net::FlowKey& flow) const {
  const CountMinSketch* sketch = SketchFor(vlan);
  return sketch == nullptr ? 0 : sketch->Estimate(net::HashFlowKey(flow));
}

const std::set<net::FlowKey>& HeavyHitterApp::HeavyFlows(
    std::uint16_t vlan) const {
  static const std::set<net::FlowKey> kEmpty;
  auto it = heavy_.find(vlan);
  return it == heavy_.end() ? kEmpty : it->second;
}

}  // namespace redplane::apps
