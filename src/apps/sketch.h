// Count-min sketch over lazily-snapshottable register arrays.
//
// Each row is one register array with the paper's interleaved double-buffer
// layout (core::LazySnapshotter), so the whole sketch supports a consistent
// snapshot while packets keep updating it (Algorithm 1).  Rows hash the key
// with independent CRC seeds, matching how Tofino hash units would be
// configured.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/snapshot.h"

namespace redplane::apps {

class CountMinSketch {
 public:
  /// `rows` independent arrays of `slots` 32-bit counters.
  CountMinSketch(std::string name, std::size_t rows, std::size_t slots);

  std::size_t rows() const { return rows_.size(); }
  std::size_t slots() const { return slots_; }

  /// Data-plane update: adds `delta` to one slot per row; returns the new
  /// minimum estimate (what a heavy-hitter gate would compare).
  std::uint32_t Update(const dp::PipelinePass& pass, std::uint64_t key_hash,
                       std::uint32_t delta);

  /// Control-plane estimate of `key_hash`'s count (min over rows).
  std::uint32_t Estimate(std::uint64_t key_hash) const;

  /// Snapshot interface (driven by the RedPlane harness): flips all rows.
  void BeginSnapshot(const dp::PipelinePass& pass);

  /// Reads snapshot slot `index` of every row, concatenated (one value per
  /// row — the layout that makes one replication message per index).
  std::vector<std::byte> ReadSnapshotSlot(const dp::PipelinePass& pass,
                                          std::uint32_t index);

  void Reset();

  std::size_t SramBytes() const;

  /// Row/slot addressing (exposed for tests).
  std::size_t SlotFor(std::size_t row, std::uint64_t key_hash) const;

 private:
  std::size_t slots_;
  std::vector<std::unique_ptr<core::LazySnapshotter<std::uint32_t>>> rows_;
};

}  // namespace redplane::apps
