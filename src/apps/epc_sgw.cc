#include "apps/epc_sgw.h"

#include "net/codec.h"

namespace redplane::apps {

std::optional<net::PartitionKey> EpcSgwApp::KeyOf(
    const net::Packet& pkt) const {
  if (!pkt.ip.has_value() || !pkt.udp.has_value()) return std::nullopt;
  if (pkt.udp->dst_port != kSgwSignalingPort &&
      pkt.udp->dst_port != kSgwDataPort) {
    return std::nullopt;  // not SGW traffic
  }
  // Both signaling and downlink data identify the user by destination IP.
  return net::PartitionKey::OfObject(pkt.ip->dst.value);
}

core::ProcessResult EpcSgwApp::Process(core::AppContext& ctx, net::Packet pkt,
                                       std::vector<std::byte>& state) {
  (void)ctx;
  core::ProcessResult result;
  if (!pkt.udp.has_value()) return result;

  if (pkt.udp->dst_port == kSgwSignalingPort) {
    // Signaling: install/refresh the bearer from the message body.
    net::ByteReader r(pkt.payload);
    SgwBearer bearer;
    bearer.teid = r.U32();
    bearer.enb_ip = r.U32();
    bearer.attached = 1;
    if (!r.ok()) return result;
    core::SetState(state, bearer);
    result.state_modified = true;
    result.outputs.push_back(std::move(pkt));  // ack toward the MME path
    return result;
  }

  // Data: forward through the user's tunnel.  Without bearer state the SGW
  // cannot encapsulate — the paper's "active session broken" failure mode.
  const auto bearer = core::StateAs<SgwBearer>(state);
  if (!bearer.has_value() || bearer->attached == 0) return result;
  // Model GTP-U encapsulation: route toward the eNodeB, tag with the TEID.
  pkt.ip->dscp = 1;
  pkt.ip->identification = static_cast<std::uint16_t>(bearer->teid);
  result.outputs.push_back(std::move(pkt));
  return result;
}

net::Packet MakeSgwSignalingPacket(net::Ipv4Addr src, net::Ipv4Addr user_ip,
                                   std::uint32_t teid, net::Ipv4Addr enb_ip) {
  net::FlowKey flow;
  flow.src_ip = src;
  flow.dst_ip = user_ip;
  flow.src_port = 9000;
  flow.dst_port = kSgwSignalingPort;
  flow.proto = net::IpProto::kUdp;
  net::Packet pkt = net::MakeUdpPacket(flow, 0);
  std::vector<std::byte> buf;
  net::ByteWriter w(buf);
  w.U32(teid);
  w.U32(enb_ip.value);
  pkt.payload = std::move(buf);
  return pkt;
}

}  // namespace redplane::apps
