#include "apps/kv_store.h"

#include "net/codec.h"

namespace redplane::apps {

net::Packet MakeKvPacket(const net::FlowKey& flow, const KvRequest& req) {
  // Requests must target kKvUdpPort (the app matches on it); replies flow
  // back with kKvUdpPort as the source, so transit switches do not
  // re-interpret them as requests.
  net::Packet pkt = net::MakeUdpPacket(flow, 0);
  std::vector<std::byte> buf;
  net::ByteWriter w(buf);
  w.U8(static_cast<std::uint8_t>(req.op));
  w.U64(req.key);
  w.U64(req.value);
  pkt.payload = std::move(buf);
  return pkt;
}

std::optional<KvRequest> ParseKvPacket(const net::Packet& pkt) {
  if (!pkt.udp.has_value() || pkt.udp->dst_port != kKvUdpPort) {
    return std::nullopt;
  }
  net::ByteReader r(pkt.payload);
  KvRequest req;
  req.op = static_cast<KvOp>(r.U8());
  req.key = r.U64();
  req.value = r.U64();
  if (!r.ok()) return std::nullopt;
  return req;
}

std::optional<net::PartitionKey> KvStoreApp::KeyOf(
    const net::Packet& pkt) const {
  auto req = ParseKvPacket(pkt);
  if (!req.has_value()) return std::nullopt;
  return net::PartitionKey::OfObject(req->key);
}

core::ProcessResult KvStoreApp::Process(core::AppContext& ctx, net::Packet pkt,
                                        std::vector<std::byte>& state) {
  (void)ctx;
  core::ProcessResult result;
  auto req = ParseKvPacket(pkt);
  if (!req.has_value()) return result;

  if (req->op == KvOp::kUpdate) {
    core::SetState(state, req->value);
    result.state_modified = true;
    // Acknowledge toward the client (the written value echoed back).
    net::FlowKey reply_flow = pkt.Flow()->Reversed();
    result.outputs.push_back(MakeKvPacket(reply_flow, *req));
    return result;
  }

  // Read: answer with the stored value (0 if never written).
  const std::uint64_t value =
      core::StateAs<std::uint64_t>(state).value_or(0);
  KvRequest resp = *req;
  resp.value = value;
  net::FlowKey reply_flow = pkt.Flow()->Reversed();
  net::Packet out = MakeKvPacket(reply_flow, resp);
  result.outputs.push_back(std::move(out));
  return result;
}

}  // namespace redplane::apps
