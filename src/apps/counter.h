// Per-flow packet counter (paper §6 app 6).
//
// The worst case for RedPlane: state is updated on every packet.  Two
// variants are evaluated:
//   * Sync-Counter — the counter is per-flow replicated state; every packet
//     is a write, so every packet leaves as a synchronous replication
//     request (linearizable mode),
//   * Async-Counter — counters live in a snapshot-capable register array
//     and are replicated periodically (bounded-inconsistency mode).
#pragma once

#include "core/app.h"
#include "core/snapshot.h"

namespace redplane::apps {

/// Synchronous variant: counter value is the flow's replicated state.
class SyncCounterApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "sync_counter"; }
  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;
  /// Linearizable by default (the paper's evaluation mode), but the count
  /// is a monotone u64, so deployments may elect mergeable mode: the join
  /// is max(), lossless while a flow traverses one switch at a time.
  core::StateTraits Traits() const override {
    core::StateTraits t;
    t.merge = core::MergeMaxU64;
    t.measure = core::MeasureU64;
    return t;
  }
};

/// Asynchronous variant: counters live in one lazily-snapshottable register
/// array indexed by flow hash; replication is periodic.
class AsyncCounterApp : public core::SwitchApp, public core::Snapshottable {
 public:
  explicit AsyncCounterApp(std::size_t slots = 4096);

  std::string_view name() const override { return "async_counter"; }
  /// Same lattice as the sync variant: per-slot monotone u64 counters.
  core::StateTraits Traits() const override {
    core::StateTraits t;
    t.merge = core::MergeMaxU64;
    t.measure = core::MeasureU64;
    return t;
  }
  std::optional<net::PartitionKey> KeyOf(const net::Packet& pkt) const override;
  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;
  void Reset() override;

  // Snapshottable:
  std::vector<net::PartitionKey> SnapshotKeys() const override;
  std::uint32_t NumSnapshotSlots() const override;
  void BeginSnapshot(const net::PartitionKey& key) override;
  std::vector<std::byte> ReadSnapshotSlot(const net::PartitionKey& key,
                                          std::uint32_t index) override;

  /// Control-plane read of a flow's live counter.
  std::uint64_t Count(const net::FlowKey& flow) const;

 private:
  core::LazySnapshotter<std::uint64_t> counters_;
};

}  // namespace redplane::apps
