// L4 load balancer (paper §6 app 3; cf. SilkRoad).
//
// Maps each client connection arriving at a virtual IP to a backend chosen
// from the shared server pool.  Like the NAT, selection happens at the state
// store (the pool is shared state): the flow initializer picks a backend, so
// the data plane is read-centric and per-connection affinity survives switch
// failure — the defining requirement for stateful load balancing.
#pragma once

#include "core/app.h"
#include "statestore/pools.h"

namespace redplane::apps {

struct LbEntry {
  std::uint32_t backend_ip = 0;
  std::uint16_t backend_port = 0;
};

/// Shared LB state managed at the store: the backend pool.
class LbGlobalState {
 public:
  LbGlobalState(net::Ipv4Addr vip, std::uint16_t vip_port)
      : vip_(vip), vip_port_(vip_port) {}

  void AddBackend(net::Ipv4Addr ip, std::uint16_t port,
                  std::uint32_t weight = 1) {
    pool_.Add({ip, port, weight});
  }

  /// The state-store initializer for LB flows.
  std::vector<std::byte> InitializeFlow(const net::PartitionKey& key);

  net::Ipv4Addr vip() const { return vip_; }
  std::uint16_t vip_port() const { return vip_port_; }
  store::BackendPool& pool() { return pool_; }

 private:
  net::Ipv4Addr vip_;
  std::uint16_t vip_port_;
  store::BackendPool pool_;
};

class LoadBalancerApp : public core::SwitchApp {
 public:
  explicit LoadBalancerApp(LbGlobalState& global) : global_(global) {}

  std::string_view name() const override { return "load_balancer"; }

  /// Canonicalizes both directions to the client->VIP key.
  std::optional<net::PartitionKey> KeyOf(const net::Packet& pkt) const override;

  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;
  bool StateInMatchTable() const override { return true; }
  /// Connection affinity must not fork (two switches picking different
  /// backends for one connection): strictly single-owner.
  core::StateTraits Traits() const override { return {}; }

 private:
  LbGlobalState& global_;
};

}  // namespace redplane::apps
