// In-switch key-value store (paper §7.2, Fig. 13).
//
// Requests are UDP packets with a custom header: an operation (read or
// update), a 64-bit key, and a 64-bit value.  Each key is its own state
// partition; updates are synchronous writes, reads are local.  Sweeping the
// update ratio reproduces Fig. 13's throughput curves.
#pragma once

#include "core/app.h"

namespace redplane::apps {

constexpr std::uint16_t kKvUdpPort = 7700;

enum class KvOp : std::uint8_t { kRead = 0, kUpdate = 1 };

struct KvRequest {
  KvOp op = KvOp::kRead;
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

/// Encodes a request into `pkt`'s payload (pkt must be UDP to kKvUdpPort).
net::Packet MakeKvPacket(const net::FlowKey& flow, const KvRequest& req);

/// Parses a KV request from a packet payload; nullopt if not a KV packet.
std::optional<KvRequest> ParseKvPacket(const net::Packet& pkt);

class KvStoreApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "kv_store"; }

  /// Partitions by the KV key carried in the request.
  std::optional<net::PartitionKey> KeyOf(const net::Packet& pkt) const override;

  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;

  /// Read-heavy cache semantics (DESIGN.md §14): clients tolerate reads a
  /// bounded interval behind the durable store, so reads are served locally
  /// instead of looping through the buffering path while writes are in
  /// flight.  Writes stay lease-serialized.
  core::StateTraits Traits() const override {
    core::StateTraits t;
    t.mode = core::ConsistencyMode::kReplicatedRead;
    t.staleness_bound = core::kDefaultStalenessBound;
    return t;
  }
};

}  // namespace redplane::apps
