#include "apps/counter.h"

#include "common/hash.h"
#include "net/codec.h"

namespace redplane::apps {

core::ProcessResult SyncCounterApp::Process(core::AppContext& ctx,
                                            net::Packet pkt,
                                            std::vector<std::byte>& state) {
  (void)ctx;
  core::ProcessResult result;
  std::uint64_t count = core::StateAs<std::uint64_t>(state).value_or(0);
  core::SetState(state, count + 1);
  result.state_modified = true;
  result.outputs.push_back(std::move(pkt));
  return result;
}

AsyncCounterApp::AsyncCounterApp(std::size_t slots)
    : counters_("async_counter", slots) {}

std::optional<net::PartitionKey> AsyncCounterApp::KeyOf(
    const net::Packet& pkt) const {
  if (!pkt.Flow().has_value()) return std::nullopt;
  // All counters share one snapshot structure; partition as one object.
  return net::PartitionKey::OfObject(0);
}

core::ProcessResult AsyncCounterApp::Process(core::AppContext& ctx,
                                             net::Packet pkt,
                                             std::vector<std::byte>& state) {
  (void)ctx;
  (void)state;
  core::ProcessResult result;
  if (auto flow = pkt.Flow()) {
    dp::PipelinePass pass;
    counters_.Update(pass, net::HashFlowKey(*flow) % counters_.slots(),
                     [](std::uint64_t v) { return v + 1; });
  }
  result.outputs.push_back(std::move(pkt));
  return result;
}

void AsyncCounterApp::Reset() { counters_.Reset(); }

std::vector<net::PartitionKey> AsyncCounterApp::SnapshotKeys() const {
  return {net::PartitionKey::OfObject(0)};
}

std::uint32_t AsyncCounterApp::NumSnapshotSlots() const {
  return static_cast<std::uint32_t>(counters_.slots());
}

void AsyncCounterApp::BeginSnapshot(const net::PartitionKey& key) {
  (void)key;
  dp::PipelinePass pass;
  counters_.BeginSnapshot(pass);
}

std::vector<std::byte> AsyncCounterApp::ReadSnapshotSlot(
    const net::PartitionKey& key, std::uint32_t index) {
  (void)key;
  dp::PipelinePass pass;
  std::vector<std::byte> out;
  net::ByteWriter w(out);
  w.U64(counters_.SnapshotRead(pass, index));
  return out;
}

std::uint64_t AsyncCounterApp::Count(const net::FlowKey& flow) const {
  return counters_.PeekLive(net::HashFlowKey(flow) % counters_.slots());
}

}  // namespace redplane::apps
