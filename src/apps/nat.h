// In-switch NAT (paper §6 app 1; Appendix B).
//
// Translates between an internal network and one external address.  The
// translation entry is per-flow hard state: the forward direction (keyed by
// the internal 5-tuple) rewrites src to the allocated external (IP, port);
// the reverse direction (keyed by the external-side 5-tuple) rewrites dst
// back to the internal endpoint.  Allocation happens at the state store —
// the free port pool is shared state, sharded across and managed by store
// servers (§3) — via the NatGlobalState initializer, so the switch data
// plane never writes NAT state: the app is read-centric, which is why
// RedPlane adds no per-packet latency for it (§7.1).
#pragma once

#include <mutex>
#include <unordered_map>

#include "core/app.h"
#include "statestore/pools.h"

namespace redplane::apps {

/// Per-flow NAT state: the rewrite to apply in this flow's direction.
struct NatEntry {
  /// 0 = outbound (rewrite source), 1 = inbound (rewrite destination).
  std::uint8_t direction = 0;
  std::uint32_t rewrite_ip = 0;
  std::uint16_t rewrite_port = 0;
};

/// The NAT's shared state, managed by the state store: the external port
/// pool plus the bidirectional mapping registry that the per-flow
/// initializer consults.  The paper shards this across store servers; the
/// reproduction keeps one registry shared by all shards (equivalent to a
/// single global-state shard) — see DESIGN.md.
class NatGlobalState {
 public:
  NatGlobalState(net::Ipv4Addr external_ip, std::uint16_t first_port,
                 std::uint16_t port_count, net::Ipv4Addr internal_prefix,
                 std::uint32_t internal_mask);

  /// The state-store initializer: produces the initial per-flow state for
  /// `key`, allocating a port for new outbound flows and resolving the
  /// registry for inbound flows.  Returns empty state for unknown inbound
  /// flows (the switch will drop them).
  std::vector<std::byte> InitializeFlow(const net::PartitionKey& key);

  bool IsInternal(net::Ipv4Addr addr) const {
    return (addr.value & internal_mask_) == (internal_prefix_.value & internal_mask_);
  }
  net::Ipv4Addr external_ip() const { return pool_.external_ip(); }
  std::size_t FreePorts() const { return pool_.FreeCount(); }
  std::size_t ActiveMappings() const { return by_port_.size(); }

 private:
  store::PortPool pool_;
  net::Ipv4Addr internal_prefix_;
  std::uint32_t internal_mask_;
  /// ext_port -> internal endpoint.
  std::unordered_map<std::uint16_t, std::pair<net::Ipv4Addr, std::uint16_t>>
      by_port_;
  /// internal 5-tuple -> ext_port.
  std::unordered_map<net::FlowKey, std::uint16_t> by_flow_;
};

class NatApp : public core::SwitchApp {
 public:
  explicit NatApp(NatGlobalState& global) : global_(global) {}

  std::string_view name() const override { return "nat"; }
  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;
  bool StateInMatchTable() const override { return true; }
  /// Port mappings must be exclusive (two switches translating one flow
  /// differently breaks connections): strictly single-owner.
  core::StateTraits Traits() const override { return {}; }

 private:
  NatGlobalState& global_;
};

}  // namespace redplane::apps
