// Stateful firewall (paper §6 app 2).
//
// Admits inbound traffic only for connections previously established from
// the internal network.  The per-connection state (keyed by the canonical,
// internal-side 5-tuple) is written once — by the outbound SYN — and read
// thereafter, exercising RedPlane's synchronous replication exactly once per
// connection.
#pragma once

#include "core/app.h"

namespace redplane::apps {

struct FirewallEntry {
  std::uint8_t established = 0;
  std::uint8_t fin_seen = 0;
};

class FirewallApp : public core::SwitchApp {
 public:
  /// Traffic whose source matches prefix/mask is "internal".
  FirewallApp(net::Ipv4Addr internal_prefix, std::uint32_t internal_mask)
      : internal_prefix_(internal_prefix), internal_mask_(internal_mask) {}

  std::string_view name() const override { return "firewall"; }

  /// Canonicalizes both directions of a connection to the outbound key so
  /// they share one state partition.
  std::optional<net::PartitionKey> KeyOf(const net::Packet& pkt) const override;

  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;
  bool StateInMatchTable() const override { return true; }
  /// A stale "established" bit admits packets that should be dropped:
  /// strictly single-owner.
  core::StateTraits Traits() const override { return {}; }

  bool IsInternal(net::Ipv4Addr addr) const {
    return (addr.value & internal_mask_) ==
           (internal_prefix_.value & internal_mask_);
  }

 private:
  net::Ipv4Addr internal_prefix_;
  std::uint32_t internal_mask_;
};

}  // namespace redplane::apps
