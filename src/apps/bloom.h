// Bloom filter over lazily-snapshottable registers.
//
// The paper's §6 notes the bundled lazy-snapshot sketch can be adapted "to
// implement similar data structures such as Bloom filters"; this is that
// adaptation.  k hash functions set bits in a single register array whose
// double-buffered layout supports consistent snapshots (Algorithm 1), so a
// Bloom filter replicated in bounded-inconsistency mode recovers to a
// consistent (at most ε stale) set after a switch failure — stale bits can
// re-admit recently-validated members late, but never corrupt the filter.
#pragma once

#include <cstdint>
#include <string>

#include "common/hash.h"
#include "core/snapshot.h"

namespace redplane::apps {

class BloomFilter {
 public:
  /// `bits` slots (each stored as one 8-bit register cell so the snapshot
  /// machinery applies uniformly), `hashes` probe positions per key.
  BloomFilter(std::string name, std::size_t bits, std::size_t hashes)
      : bits_(bits), hashes_(hashes), cells_(std::move(name), bits) {}

  std::size_t bits() const { return bits_; }
  std::size_t hashes() const { return hashes_; }

  /// Data-plane insert: sets the k cells for `key`.  Uses one pipeline pass
  /// per probe (hardware lays the probes out across stages; the model keeps
  /// one register array, so each probe is its own pass).
  void Insert(std::uint64_t key) {
    for (std::size_t i = 0; i < hashes_; ++i) {
      dp::PipelinePass pass;
      cells_.Update(pass, Slot(key, i), [](std::uint8_t) {
        return std::uint8_t{1};
      });
    }
  }

  /// Data-plane membership test against the live copy.
  bool Contains(std::uint64_t key) const {
    for (std::size_t i = 0; i < hashes_; ++i) {
      if (cells_.PeekLive(Slot(key, i)) == 0) return false;
    }
    return true;
  }

  /// Snapshot interface passthroughs (for Snapshottable implementers).
  void BeginSnapshot() {
    dp::PipelinePass pass;
    cells_.BeginSnapshot(pass);
  }
  std::uint8_t ReadSnapshotSlot(std::uint32_t index) {
    dp::PipelinePass pass;
    return cells_.SnapshotRead(pass, index);
  }

  void Reset() { cells_.Reset(); }

 private:
  std::size_t Slot(std::uint64_t key, std::size_t i) const {
    return static_cast<std::size_t>(
        Mix64(key ^ (i * 0x9e3779b97f4a7c15ull)) % bits_);
  }

  std::size_t bits_;
  std::size_t hashes_;
  mutable core::LazySnapshotter<std::uint8_t> cells_;
};

}  // namespace redplane::apps
