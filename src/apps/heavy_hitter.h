// Heavy-hitter detection (paper §6 app 5).
//
// Write-centric: every packet updates a count-min sketch (3 rows of 64
// 32-bit slots), kept separately per tenant VLAN so per-tenant QoS policy
// can be enforced.  Sketches are approximate, so the app opts into
// bounded-inconsistency mode: RedPlane replicates consistent snapshots
// asynchronously every T_snap instead of coordinating per packet.
#pragma once

#include <map>
#include <set>

#include "apps/sketch.h"
#include "core/app.h"
#include "core/snapshot.h"

namespace redplane::apps {

struct HeavyHitterConfig {
  /// Tenant VLANs to track (one sketch set per VLAN).
  std::vector<std::uint16_t> vlans = {1};
  std::size_t sketch_rows = 3;
  std::size_t sketch_slots = 64;
  /// A flow whose estimate crosses this is flagged heavy.
  std::uint32_t threshold = 1000;
};

class HeavyHitterApp : public core::SwitchApp, public core::Snapshottable {
 public:
  explicit HeavyHitterApp(HeavyHitterConfig config = {});

  // SwitchApp:
  std::string_view name() const override { return "heavy_hitter"; }
  /// Sketch rows are lane-wise monotone u32 counters: the join is per-lane
  /// max, which preserves the count-min overestimate guarantee.
  core::StateTraits Traits() const override {
    core::StateTraits t;
    t.merge = core::MergeMaxU32Lanes;
    t.measure = core::MeasureSumU32Lanes;
    return t;
  }
  std::optional<net::PartitionKey> KeyOf(const net::Packet& pkt) const override;
  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;
  void Reset() override;

  // Snapshottable:
  std::vector<net::PartitionKey> SnapshotKeys() const override;
  std::uint32_t NumSnapshotSlots() const override;
  void BeginSnapshot(const net::PartitionKey& key) override;
  std::vector<std::byte> ReadSnapshotSlot(const net::PartitionKey& key,
                                          std::uint32_t index) override;

  /// Control-plane queries for reporting/tests.
  std::uint32_t Estimate(std::uint16_t vlan, const net::FlowKey& flow) const;
  const std::set<net::FlowKey>& HeavyFlows(std::uint16_t vlan) const;

  const HeavyHitterConfig& config() const { return config_; }

 private:
  CountMinSketch* SketchFor(std::uint16_t vlan);
  const CountMinSketch* SketchFor(std::uint16_t vlan) const;

  HeavyHitterConfig config_;
  std::map<std::uint16_t, std::unique_ptr<CountMinSketch>> sketches_;
  std::map<std::uint16_t, std::set<net::FlowKey>> heavy_;
};

}  // namespace redplane::apps
