#include "apps/sketch.h"

#include <algorithm>

#include "common/hash.h"
#include "net/codec.h"

namespace redplane::apps {

CountMinSketch::CountMinSketch(std::string name, std::size_t rows,
                               std::size_t slots)
    : slots_(slots) {
  rows_.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    rows_.push_back(std::make_unique<core::LazySnapshotter<std::uint32_t>>(
        name + "/row" + std::to_string(r), slots));
  }
}

std::size_t CountMinSketch::SlotFor(std::size_t row,
                                    std::uint64_t key_hash) const {
  // Independent per-row hashing via a row-seeded mix.
  return static_cast<std::size_t>(Mix64(key_hash ^ (row * 0x9e3779b97f4a7c15ull)) %
                                  slots_);
}

std::uint32_t CountMinSketch::Update(const dp::PipelinePass& pass,
                                     std::uint64_t key_hash,
                                     std::uint32_t delta) {
  std::uint32_t min_estimate = UINT32_MAX;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const std::uint32_t v = rows_[r]->Update(
        pass, SlotFor(r, key_hash),
        [delta](std::uint32_t old) { return old + delta; });
    min_estimate = std::min(min_estimate, v);
  }
  return min_estimate;
}

std::uint32_t CountMinSketch::Estimate(std::uint64_t key_hash) const {
  std::uint32_t min_estimate = UINT32_MAX;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    min_estimate =
        std::min(min_estimate, rows_[r]->PeekLive(SlotFor(r, key_hash)));
  }
  return min_estimate;
}

void CountMinSketch::BeginSnapshot(const dp::PipelinePass& pass) {
  for (auto& row : rows_) row->BeginSnapshot(pass);
}

std::vector<std::byte> CountMinSketch::ReadSnapshotSlot(
    const dp::PipelinePass& pass, std::uint32_t index) {
  std::vector<std::byte> out;
  net::ByteWriter w(out);
  for (auto& row : rows_) {
    w.U32(row->SnapshotRead(pass, index));
  }
  return out;
}

void CountMinSketch::Reset() {
  for (auto& row : rows_) row->Reset();
}

std::size_t CountMinSketch::SramBytes() const {
  std::size_t total = 0;
  for (const auto& row : rows_) total += row->SramBytes();
  return total;
}

}  // namespace redplane::apps
