// Simplified EPC serving gateway (paper §6 app 4; cf. TurboEPC).
//
// A mixed-read/write application: per-user tunnel state (the TEID used to
// encapsulate downlink traffic toward the user's eNodeB) is written by
// control-plane signaling messages and read by every data packet.  Signaling
// is ~5% of data traffic (the paper injects 1 signaling packet per 17 data
// packets), so RedPlane replicates synchronously on that minority of packets.
#pragma once

#include "core/app.h"

namespace redplane::apps {

/// Per-user bearer state.
struct SgwBearer {
  std::uint32_t teid = 0;
  std::uint32_t enb_ip = 0;
  std::uint8_t attached = 0;
};

/// UDP destination port carrying GTP-C-like signaling in the workloads.
constexpr std::uint16_t kSgwSignalingPort = 2123;
/// UDP destination port of GTP-U-like user data.
constexpr std::uint16_t kSgwDataPort = 2152;

class EpcSgwApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "epc_sgw"; }

  /// State partitions by user: the user's IP address as an object key
  /// (destination for downlink traffic and for signaling about the user).
  std::optional<net::PartitionKey> KeyOf(const net::Packet& pkt) const override;

  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;
  bool StateInMatchTable() const override { return true; }
};

/// Builds a signaling packet that (re)attaches `user_ip` with `teid` at
/// `enb_ip` (workload-generation helper).
net::Packet MakeSgwSignalingPacket(net::Ipv4Addr src, net::Ipv4Addr user_ip,
                                   std::uint32_t teid, net::Ipv4Addr enb_ip);

}  // namespace redplane::apps
