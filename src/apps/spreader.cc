#include "apps/spreader.h"

#include <cmath>

#include "common/hash.h"

namespace redplane::apps {

SpreaderApp::SpreaderApp(SpreaderConfig config)
    : config_(config),
      bitmap_("spreader/bitmap", config.sources * config.bits_per_source) {}

std::size_t SpreaderApp::SourceSlot(net::Ipv4Addr src) const {
  return static_cast<std::size_t>(Mix64(src.value) % config_.sources);
}

std::size_t SpreaderApp::BitIndex(net::Ipv4Addr src, net::Ipv4Addr dst) const {
  const std::uint64_t h =
      Mix64((static_cast<std::uint64_t>(src.value) << 32) | dst.value);
  return SourceSlot(src) * config_.bits_per_source +
         static_cast<std::size_t>(h % config_.bits_per_source);
}

std::optional<net::PartitionKey> SpreaderApp::KeyOf(
    const net::Packet& pkt) const {
  if (!pkt.Flow().has_value()) return std::nullopt;
  return net::PartitionKey::OfObject(0x51c4);
}

core::ProcessResult SpreaderApp::Process(core::AppContext& ctx,
                                         net::Packet pkt,
                                         std::vector<std::byte>& state) {
  (void)ctx;
  (void)state;  // bitmaps live in app-owned registers
  core::ProcessResult result;
  if (pkt.ip.has_value()) {
    dp::PipelinePass pass;
    bitmap_.Update(pass, BitIndex(pkt.ip->src, pkt.ip->dst),
                   [](std::uint8_t) { return std::uint8_t{1}; });
    if (EstimateDistinct(pkt.ip->src) >= config_.threshold) {
      spreaders_.insert(pkt.ip->src.value);
    }
  }
  result.outputs.push_back(std::move(pkt));
  return result;
}

double SpreaderApp::EstimateDistinct(net::Ipv4Addr src) const {
  const std::size_t slot = SourceSlot(src);
  std::size_t zeros = 0;
  for (std::size_t b = 0; b < config_.bits_per_source; ++b) {
    if (bitmap_.PeekLive(slot * config_.bits_per_source + b) == 0) ++zeros;
  }
  if (zeros == 0) return static_cast<double>(config_.bits_per_source) * 4;
  // Linear counting: n ~= -m * ln(V) where V is the zero fraction.
  const double m = static_cast<double>(config_.bits_per_source);
  return -m * std::log(static_cast<double>(zeros) / m);
}

void SpreaderApp::Reset() {
  bitmap_.Reset();
  spreaders_.clear();
}

std::vector<net::PartitionKey> SpreaderApp::SnapshotKeys() const {
  return {net::PartitionKey::OfObject(0x51c4)};
}

std::uint32_t SpreaderApp::NumSnapshotSlots() const {
  return static_cast<std::uint32_t>(config_.sources *
                                    config_.bits_per_source);
}

void SpreaderApp::BeginSnapshot(const net::PartitionKey&) {
  dp::PipelinePass pass;
  bitmap_.BeginSnapshot(pass);
}

std::vector<std::byte> SpreaderApp::ReadSnapshotSlot(const net::PartitionKey&,
                                                     std::uint32_t index) {
  dp::PipelinePass pass;
  return {std::byte{bitmap_.SnapshotRead(pass, index)}};
}

}  // namespace redplane::apps
