// In-network sequencer (Table 1's mixed-read/write row; cf. NOPaxos).
//
// Stamps every message of a replication group with a monotonically
// increasing group sequence number, letting receivers detect drops and
// reorderings without a Paxos leader.  The counter is hard state: if a
// switch fails and the counter restarts, receivers observe duplicate
// sequence numbers — "incorrect sequencing", Table 1's failure symptom.
// Under RedPlane the counter is per-group replicated state (every stamp is
// a write), so the replacement switch continues the sequence exactly.
#pragma once

#include "core/app.h"

namespace redplane::apps {

/// UDP destination port carrying sequencer-addressed messages.
constexpr std::uint16_t kSequencerPort = 7801;

/// Builds a message addressed to `group` (the group id rides in the first
/// payload bytes; the sequencer prepends the stamp on output).
net::Packet MakeSequencedPacket(const net::FlowKey& flow, std::uint64_t group);

/// Extracts (group, stamp) from a sequencer output packet.
struct SequencedHeader {
  std::uint64_t group = 0;
  std::uint64_t stamp = 0;
};
std::optional<SequencedHeader> ParseSequencedPacket(const net::Packet& pkt);

class SequencerApp : public core::SwitchApp {
 public:
  std::string_view name() const override { return "sequencer"; }

  /// Partitions by replication group id.
  std::optional<net::PartitionKey> KeyOf(const net::Packet& pkt) const override;

  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;
};

}  // namespace redplane::apps
