#include "apps/syn_defense.h"

#include "net/codec.h"

namespace redplane::apps {

SynDefenseApp::SynDefenseApp(SynDefenseConfig config)
    : config_(config),
      validated_("syn_defense/validated", config.bloom_bits,
                 config.bloom_hashes),
      restored_(config.bloom_bits, 0) {}

std::optional<net::PartitionKey> SynDefenseApp::KeyOf(
    const net::Packet& pkt) const {
  if (!pkt.tcp.has_value()) return std::nullopt;
  return net::PartitionKey::OfObject(0x5f1d);
}

bool SynDefenseApp::IsValidated(net::Ipv4Addr src) const {
  if (validated_.Contains(src.value)) return true;
  // Consult the restored snapshot overlay (post-failover).
  for (std::size_t i = 0; i < config_.bloom_hashes; ++i) {
    const std::size_t slot = static_cast<std::size_t>(
        Mix64(static_cast<std::uint64_t>(src.value) ^
              (i * 0x9e3779b97f4a7c15ull)) %
        config_.bloom_bits);
    if (restored_[slot] == 0) return false;
  }
  return true;
}

core::ProcessResult SynDefenseApp::Process(core::AppContext& ctx,
                                           net::Packet pkt,
                                           std::vector<std::byte>& state) {
  (void)ctx;
  (void)state;  // filter state lives in app-owned registers
  core::ProcessResult result;
  if (!pkt.tcp.has_value() || !pkt.ip.has_value()) return result;
  const net::Ipv4Addr src = pkt.ip->src;

  if (pkt.tcp->syn() && !pkt.tcp->ack_flag()) {
    if (IsValidated(src)) {
      ++admitted_;
      result.outputs.push_back(std::move(pkt));
    } else {
      // Unproven source: issue a challenge (cookie) instead of admitting.
      ++challenges_;
    }
    return result;
  }
  if (pkt.tcp->ack_flag() && !pkt.tcp->syn()) {
    // A returning ACK proves the source can complete a handshake: mark it
    // validated (one Bloom insert) and admit.
    if (!IsValidated(src)) {
      validated_.Insert(src.value);
    }
    ++admitted_;
    result.outputs.push_back(std::move(pkt));
    return result;
  }
  // Other segments of admitted connections pass through.
  ++admitted_;
  result.outputs.push_back(std::move(pkt));
  return result;
}

void SynDefenseApp::Reset() {
  validated_.Reset();
  std::fill(restored_.begin(), restored_.end(), 0);
  challenges_ = 0;
  admitted_ = 0;
}

std::vector<net::PartitionKey> SynDefenseApp::SnapshotKeys() const {
  return {net::PartitionKey::OfObject(0x5f1d)};
}

std::uint32_t SynDefenseApp::NumSnapshotSlots() const {
  return static_cast<std::uint32_t>(config_.bloom_bits);
}

void SynDefenseApp::BeginSnapshot(const net::PartitionKey&) {
  validated_.BeginSnapshot();
}

std::vector<std::byte> SynDefenseApp::ReadSnapshotSlot(
    const net::PartitionKey&, std::uint32_t index) {
  return {std::byte{validated_.ReadSnapshotSlot(index)}};
}

void SynDefenseApp::RestoreSlot(std::uint32_t index, std::uint8_t value) {
  if (index < restored_.size() && value != 0) {
    restored_[index] = 1;
  }
}

}  // namespace redplane::apps
