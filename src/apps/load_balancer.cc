#include "apps/load_balancer.h"

namespace redplane::apps {

std::vector<std::byte> LbGlobalState::InitializeFlow(
    const net::PartitionKey& key) {
  if (key.kind != net::PartitionKey::Kind::kFlow) return {};
  if (key.flow.dst_ip != vip_ || key.flow.dst_port != vip_port_) return {};
  auto backend = pool_.Pick();
  if (!backend.has_value()) return {};
  LbEntry entry;
  entry.backend_ip = backend->ip.value;
  entry.backend_port = backend->port;
  std::vector<std::byte> out;
  core::SetState(out, entry);
  return out;
}

std::optional<net::PartitionKey> LoadBalancerApp::KeyOf(
    const net::Packet& pkt) const {
  auto flow = pkt.Flow();
  if (!flow.has_value()) return std::nullopt;
  if (flow->dst_ip == global_.vip() && flow->dst_port == global_.vip_port()) {
    // Client -> VIP direction: the canonical key.
    return net::PartitionKey::OfFlow(*flow);
  }
  // Backend -> client direction: reconstruct the canonical key (the VIP
  // endpoint is configuration; the client endpoint is this packet's dst).
  net::FlowKey canonical;
  canonical.src_ip = flow->dst_ip;
  canonical.src_port = flow->dst_port;
  canonical.dst_ip = global_.vip();
  canonical.dst_port = global_.vip_port();
  canonical.proto = flow->proto;
  return net::PartitionKey::OfFlow(canonical);
}

core::ProcessResult LoadBalancerApp::Process(core::AppContext& ctx,
                                             net::Packet pkt,
                                             std::vector<std::byte>& state) {
  (void)ctx;
  core::ProcessResult result;
  if (!pkt.ip.has_value()) return result;
  const auto entry = core::StateAs<LbEntry>(state);
  if (!entry.has_value()) return result;  // no backend: drop

  const bool to_vip =
      pkt.ip->dst == global_.vip() &&
      ((pkt.tcp && pkt.tcp->dst_port == global_.vip_port()) ||
       (pkt.udp && pkt.udp->dst_port == global_.vip_port()));
  if (to_vip) {
    pkt.ip->dst = net::Ipv4Addr(entry->backend_ip);
    if (pkt.tcp) pkt.tcp->dst_port = entry->backend_port;
    if (pkt.udp) pkt.udp->dst_port = entry->backend_port;
  } else {
    // Return traffic: present the VIP to the client.
    pkt.ip->src = global_.vip();
    if (pkt.tcp) pkt.tcp->src_port = global_.vip_port();
    if (pkt.udp) pkt.udp->src_port = global_.vip_port();
  }
  result.outputs.push_back(std::move(pkt));
  return result;
}

}  // namespace redplane::apps
