#include "apps/nat.h"

namespace redplane::apps {

NatGlobalState::NatGlobalState(net::Ipv4Addr external_ip,
                               std::uint16_t first_port,
                               std::uint16_t port_count,
                               net::Ipv4Addr internal_prefix,
                               std::uint32_t internal_mask)
    : pool_(external_ip, first_port, port_count),
      internal_prefix_(internal_prefix),
      internal_mask_(internal_mask) {}

std::vector<std::byte> NatGlobalState::InitializeFlow(
    const net::PartitionKey& key) {
  if (key.kind != net::PartitionKey::Kind::kFlow) return {};
  const net::FlowKey& flow = key.flow;
  std::vector<std::byte> out;

  if (IsInternal(flow.src_ip)) {
    // Outbound flow: allocate (or reuse) an external port.
    std::uint16_t port;
    auto it = by_flow_.find(flow);
    if (it != by_flow_.end()) {
      port = it->second;
    } else {
      auto allocated = pool_.Allocate();
      if (!allocated.has_value()) return {};  // pool exhausted
      port = *allocated;
      by_flow_.emplace(flow, port);
      by_port_[port] = {flow.src_ip, flow.src_port};
    }
    NatEntry entry;
    entry.direction = 0;
    entry.rewrite_ip = pool_.external_ip().value;
    entry.rewrite_port = port;
    core::SetState(out, entry);
    return out;
  }

  if (flow.dst_ip == pool_.external_ip()) {
    // Inbound flow: resolve the registry.
    auto it = by_port_.find(flow.dst_port);
    if (it == by_port_.end()) return {};  // no mapping: drop at switch
    NatEntry entry;
    entry.direction = 1;
    entry.rewrite_ip = it->second.first.value;
    entry.rewrite_port = it->second.second;
    core::SetState(out, entry);
    return out;
  }
  return {};
}

core::ProcessResult NatApp::Process(core::AppContext& ctx, net::Packet pkt,
                                    std::vector<std::byte>& state) {
  (void)ctx;
  core::ProcessResult result;
  const auto entry = core::StateAs<NatEntry>(state);
  if (!entry.has_value()) {
    // No translation (unknown inbound flow or exhausted pool): drop.  This
    // is exactly the paper's Fig. 1 failure symptom when state is lost.
    return result;
  }
  if (!pkt.ip.has_value()) return result;
  if (entry->direction == 0) {
    pkt.ip->src = net::Ipv4Addr(entry->rewrite_ip);
    if (pkt.tcp) pkt.tcp->src_port = entry->rewrite_port;
    if (pkt.udp) pkt.udp->src_port = entry->rewrite_port;
  } else {
    pkt.ip->dst = net::Ipv4Addr(entry->rewrite_ip);
    if (pkt.tcp) pkt.tcp->dst_port = entry->rewrite_port;
    if (pkt.udp) pkt.udp->dst_port = entry->rewrite_port;
  }
  pkt.ip->ttl = pkt.ip->ttl > 0 ? pkt.ip->ttl - 1 : 0;
  result.outputs.push_back(std::move(pkt));
  return result;
}

}  // namespace redplane::apps
