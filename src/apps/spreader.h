// Super-spreader detection (Table 1's write-centric row; cf. SpreadSketch).
//
// Flags sources that contact many *distinct* destinations (scanners,
// worms).  Distinct counting uses per-source bitmap rows: destination
// hashes set bits, and the estimate is the linear-counting correction of
// the occupancy.  Rows live in lazily-snapshottable registers so the
// structure replicates in bounded-inconsistency mode; a failure without
// fault tolerance loses the bitmaps and produces "inaccurate detection".
#pragma once

#include <set>

#include "core/app.h"
#include "core/snapshot.h"

namespace redplane::apps {

struct SpreaderConfig {
  /// Tracked source slots (sources hash onto slots).
  std::size_t sources = 64;
  /// Bits per source bitmap.
  std::size_t bits_per_source = 32;
  /// Distinct-destination estimate that flags a super-spreader.
  double threshold = 16;
};

class SpreaderApp : public core::SwitchApp, public core::Snapshottable {
 public:
  explicit SpreaderApp(SpreaderConfig config = {});

  // SwitchApp:
  std::string_view name() const override { return "spreader"; }
  /// Distinct-counting bitmaps form an OR-lattice: the union of two bitmap
  /// observations is exactly the bitmap of the union of the destinations.
  core::StateTraits Traits() const override {
    core::StateTraits t;
    t.merge = core::MergeOrBytes;
    t.measure = core::MeasurePopcount;
    return t;
  }
  std::optional<net::PartitionKey> KeyOf(const net::Packet& pkt) const override;
  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;
  void Reset() override;

  // Snapshottable: one slot per (source slot, bitmap word).
  std::vector<net::PartitionKey> SnapshotKeys() const override;
  std::uint32_t NumSnapshotSlots() const override;
  void BeginSnapshot(const net::PartitionKey& key) override;
  std::vector<std::byte> ReadSnapshotSlot(const net::PartitionKey& key,
                                          std::uint32_t index) override;

  /// Linear-counting estimate of distinct destinations for `src`.
  double EstimateDistinct(net::Ipv4Addr src) const;
  /// Sources whose estimate crossed the threshold.
  const std::set<std::uint32_t>& Spreaders() const { return spreaders_; }

  const SpreaderConfig& config() const { return config_; }

 private:
  std::size_t SourceSlot(net::Ipv4Addr src) const;
  std::size_t BitIndex(net::Ipv4Addr src, net::Ipv4Addr dst) const;

  SpreaderConfig config_;
  /// Bitmap bits stored one per register cell: index = slot * bits + bit.
  core::LazySnapshotter<std::uint8_t> bitmap_;
  std::set<std::uint32_t> spreaders_;
};

}  // namespace redplane::apps
