// SYN-flood defense (Table 1's DDoS row; cf. Poseidon).
//
// A SYN-proxy-style admission filter: a source proves liveness by
// completing a handshake once; validated sources are remembered in a Bloom
// filter and their subsequent SYNs pass through.  Unvalidated SYNs are
// answered with a cookie challenge (modeled as dropping the SYN and
// recording the half-open attempt).  The filter is write-centric and
// approximate, so it replicates in bounded-inconsistency mode; without
// fault tolerance a switch failure forgets every validated source and the
// defense starts dropping valid packets — Table 1's failure symptom.
#pragma once

#include "apps/bloom.h"
#include "core/app.h"
#include "core/snapshot.h"

namespace redplane::apps {

struct SynDefenseConfig {
  std::size_t bloom_bits = 256;
  std::size_t bloom_hashes = 3;
};

class SynDefenseApp : public core::SwitchApp, public core::Snapshottable {
 public:
  explicit SynDefenseApp(SynDefenseConfig config = {});

  // SwitchApp:
  std::string_view name() const override { return "syn_defense"; }
  /// Partitions as one object (the validated-source filter is global to
  /// the defense, like the paper's per-VLAN sketches are to monitoring).
  std::optional<net::PartitionKey> KeyOf(const net::Packet& pkt) const override;
  core::ProcessResult Process(core::AppContext& ctx, net::Packet pkt,
                              std::vector<std::byte>& state) override;
  void Reset() override;

  // Snapshottable:
  std::vector<net::PartitionKey> SnapshotKeys() const override;
  std::uint32_t NumSnapshotSlots() const override;
  void BeginSnapshot(const net::PartitionKey& key) override;
  std::vector<std::byte> ReadSnapshotSlot(const net::PartitionKey& key,
                                          std::uint32_t index) override;

  /// Restores the validated-source filter from a store snapshot (slot
  /// index -> cell value), the failover path.
  void RestoreSlot(std::uint32_t index, std::uint8_t value);

  bool IsValidated(net::Ipv4Addr src) const;
  std::uint64_t challenges_sent() const { return challenges_; }
  std::uint64_t admitted() const { return admitted_; }

 private:
  SynDefenseConfig config_;
  BloomFilter validated_;
  /// Restored cells override the (empty) live filter after a failover.
  std::vector<std::uint8_t> restored_;
  std::uint64_t challenges_ = 0;
  std::uint64_t admitted_ = 0;
};

}  // namespace redplane::apps
