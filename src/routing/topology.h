// The paper's testbed topology (Appendix D, Fig. 17).
//
// Three layers: one core switch, two Tofino-class programmable aggregation
// switches (where the RedPlane applications run), and two ToR switches with
// two servers each; four additional hosts hang off the core and emulate
// endpoints outside the data center.  The state store runs on one server in
// each rack plus one core-attached server (the chain replication group of
// 3).  ECMP on the core spreads flows across the two aggregation switches;
// when one fails, flows reroute to the other — the scenario RedPlane's
// migration handles.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "dataplane/pipeline.h"
#include "routing/ecmp.h"
#include "sim/host.h"
#include "sim/network.h"
#include "statestore/server.h"

namespace redplane::routing {

struct TestbedConfig {
  sim::LinkConfig fabric_link;        // switch-to-switch links
  sim::LinkConfig host_link;          // server uplinks
  dp::SwitchConfig programmable;      // aggregation switch config
  store::StoreConfig store;           // state store servers
  FabricConfig fabric;                // routing / failure detection
  std::uint64_t seed = 42;
  /// Chain replication group size for the store (1 disables chaining).
  int store_chain_size = 3;

  TestbedConfig() {
    fabric_link.bandwidth_bps = 100e9;
    fabric_link.propagation = Microseconds(1);
    host_link.bandwidth_bps = 100e9;
    host_link.propagation = Microseconds(1);
  }
};

/// All the pieces of the built testbed, for experiments to wire up.
struct Testbed {
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<RoutingFabric> fabric;

  dp::SwitchNode* core = nullptr;
  std::array<dp::SwitchNode*, 2> agg{};   // the programmable switches
  std::array<dp::SwitchNode*, 2> tor{};
  /// rack_servers[rack][i]: two workload servers per rack.
  std::array<std::array<sim::HostNode*, 2>, 2> rack_servers{};
  /// Hosts outside the datacenter, attached to the core.
  std::array<sim::HostNode*, 4> external{};
  /// State store chain: store[0] is the head.
  std::vector<store::StateStoreServer*> store;

  /// IPs: aggregation switches get protocol addresses; store head IP is
  /// what partition maps should point at.
  net::Ipv4Addr StoreHeadIp() const { return store.front()->ip(); }
};

/// Builds the testbed; `sim` must outlive the returned object.
Testbed BuildTestbed(sim::Simulator& sim, const TestbedConfig& config = {});

/// Well-known addresses used by BuildTestbed (exposed for workloads).
net::Ipv4Addr RackServerIp(int rack, int index);
net::Ipv4Addr ExternalHostIp(int index);
net::Ipv4Addr AggSwitchIp(int index);
net::Ipv4Addr StoreServerIp(int index);

}  // namespace redplane::routing
