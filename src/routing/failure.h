// Failure injection.
//
// Schedules fail-stop switch failures, recoveries, and link cuts, flipping
// the node/link state and notifying the routing fabric so reroutes happen
// after the configured detection delay — the sequence behind Fig. 14.
#pragma once

#include "audit/taps.h"
#include "routing/ecmp.h"
#include "sim/link.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace redplane::routing {

class FailureInjector {
 public:
  FailureInjector(sim::Simulator& sim, RoutingFabric& fabric)
      : sim_(sim), fabric_(fabric) {}

  /// Fails `node` at `at`; if `recover_at` >= 0, brings it back then.
  void ScheduleNodeFailure(sim::Node* node, SimTime at, SimTime recover_at);

  /// Cuts `link` at `at`; if `recover_at` >= 0, restores it then.
  void ScheduleLinkFailure(sim::Link* link, SimTime at, SimTime recover_at);

  /// Immediate versions (tests).
  void FailNode(sim::Node* node);
  void RecoverNode(sim::Node* node);
  void FailLink(sim::Link* link);
  void RecoverLink(sim::Link* link);

 private:
  sim::Simulator& sim_;
  RoutingFabric& fabric_;
  /// Injected faults are published as audit environment events so causal
  /// slices can show the fault that preceded a violation.
  audit::TapHandle atap_{"failure_injector"};
};

}  // namespace redplane::routing
