// Failure injection.
//
// Schedules fail-stop switch failures, recoveries, and link cuts, flipping
// the node/link state and notifying the routing fabric so reroutes happen
// after the configured detection delay — the sequence behind Fig. 14.
//
// Cuts are reference-counted per target, which makes the injector
// idempotent under overlapping schedules: a double-cut followed by a single
// heal leaves the link down (the heal only peels one layer), and a
// permanent crash injected during an in-flight flap is not resurrected when
// the flap's heal timer fires — that heal pays off the flap's cut, not the
// crash's.  The fuzz campaign's delta-debugging minimizer depends on this:
// it deletes arbitrary subsets of a schedule's events, so a heal may run
// without its cut (a no-op) or one of two overlapping cuts may vanish.
//
// Gray failures (DESIGN.md §15) are injected through the same object:
// asymmetric per-direction loss and one-way blackholes (partial partitions)
// on links, both depth-counted per (link, direction) like cuts.
#pragma once

#include <map>
#include <unordered_map>
#include <utility>

#include "audit/taps.h"
#include "routing/ecmp.h"
#include "sim/link.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace redplane::routing {

class FailureInjector {
 public:
  FailureInjector(sim::Simulator& sim, RoutingFabric& fabric)
      : sim_(sim), fabric_(fabric) {}

  /// Fails `node` at `at`; if `recover_at` >= 0, brings it back then.
  void ScheduleNodeFailure(sim::Node* node, SimTime at, SimTime recover_at);

  /// Cuts `link` at `at`; if `recover_at` >= 0, restores it then.
  void ScheduleLinkFailure(sim::Link* link, SimTime at, SimTime recover_at);

  /// Gray failure: packets sent by endpoint `from` are dropped with
  /// probability `rate` between `at` and `clear_at` (the reverse direction
  /// is untouched).  Overlapping injections stack: the direction carries
  /// the maximum active rate, and the override clears only when the last
  /// injection is paid off.
  void ScheduleAsymmetricLoss(sim::Link* link, NodeId from, double rate,
                              SimTime at, SimTime clear_at);

  /// Gray failure: one-way blackhole — `from`'s packets all vanish while
  /// the reverse direction keeps delivering, so detection that relies on
  /// round trips sees a half-alive peer.  Equivalent to asymmetric loss at
  /// rate 1.
  void SchedulePartialPartition(sim::Link* link, NodeId from, SimTime at,
                                SimTime clear_at);

  /// Immediate versions (tests and schedule execution).  All are depth-
  /// counted: Fail* increments, Recover* decrements (never below zero) and
  /// only flips the target back up when the depth returns to zero.
  void FailNode(sim::Node* node);
  void RecoverNode(sim::Node* node);
  void FailLink(sim::Link* link);
  void RecoverLink(sim::Link* link);
  void ApplyAsymmetricLoss(sim::Link* link, NodeId from, double rate);
  void ClearAsymmetricLoss(sim::Link* link, NodeId from);

  /// Current cut depths (regression-test accessors).
  int NodeCutDepth(const sim::Node* node) const;
  int LinkCutDepth(const sim::Link* link) const;

 private:
  struct DirLoss {
    int depth = 0;
    double rate = 0.0;
  };

  sim::Simulator& sim_;
  RoutingFabric& fabric_;
  std::unordered_map<const sim::Node*, int> node_cuts_;
  std::unordered_map<const sim::Link*, int> link_cuts_;
  std::map<std::pair<const sim::Link*, NodeId>, DirLoss> dir_loss_;
  /// Injected faults are published as audit environment events so causal
  /// slices can show the fault that preceded a violation.
  audit::TapHandle atap_{"failure_injector"};
};

}  // namespace redplane::routing
