#include "routing/failure.h"

namespace redplane::routing {

void FailureInjector::ScheduleNodeFailure(sim::Node* node, SimTime at,
                                          SimTime recover_at) {
  sim_.ScheduleAt(at, [this, node]() { FailNode(node); });
  if (recover_at >= 0) {
    sim_.ScheduleAt(recover_at, [this, node]() { RecoverNode(node); });
  }
}

void FailureInjector::ScheduleLinkFailure(sim::Link* link, SimTime at,
                                          SimTime recover_at) {
  sim_.ScheduleAt(at, [this, link]() { FailLink(link); });
  if (recover_at >= 0) {
    sim_.ScheduleAt(recover_at, [this, link]() { RecoverLink(link); });
  }
}

void FailureInjector::FailNode(sim::Node* node) {
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kNodeDown, 0, 0,
               static_cast<std::uint64_t>(node->id()));
  }
  node->SetUp(false);
  fabric_.NotifyTopologyChange();
}

void FailureInjector::RecoverNode(sim::Node* node) {
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kNodeUp, 0, 0,
               static_cast<std::uint64_t>(node->id()));
  }
  node->SetUp(true);
  fabric_.NotifyTopologyChange();
}

void FailureInjector::FailLink(sim::Link* link) {
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kLinkCut, 0);
  }
  link->SetUp(false);
  fabric_.NotifyTopologyChange();
}

void FailureInjector::RecoverLink(sim::Link* link) {
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kLinkRestored, 0);
  }
  link->SetUp(true);
  fabric_.NotifyTopologyChange();
}

}  // namespace redplane::routing
