#include "routing/failure.h"

#include <algorithm>

namespace redplane::routing {

void FailureInjector::ScheduleNodeFailure(sim::Node* node, SimTime at,
                                          SimTime recover_at) {
  sim_.ScheduleAt(at, [this, node]() { FailNode(node); });
  if (recover_at >= 0) {
    sim_.ScheduleAt(recover_at, [this, node]() { RecoverNode(node); });
  }
}

void FailureInjector::ScheduleLinkFailure(sim::Link* link, SimTime at,
                                          SimTime recover_at) {
  sim_.ScheduleAt(at, [this, link]() { FailLink(link); });
  if (recover_at >= 0) {
    sim_.ScheduleAt(recover_at, [this, link]() { RecoverLink(link); });
  }
}

void FailureInjector::ScheduleAsymmetricLoss(sim::Link* link, NodeId from,
                                             double rate, SimTime at,
                                             SimTime clear_at) {
  sim_.ScheduleAt(at, [this, link, from, rate]() {
    ApplyAsymmetricLoss(link, from, rate);
  });
  if (clear_at >= 0) {
    sim_.ScheduleAt(clear_at,
                    [this, link, from]() { ClearAsymmetricLoss(link, from); });
  }
}

void FailureInjector::SchedulePartialPartition(sim::Link* link, NodeId from,
                                               SimTime at, SimTime clear_at) {
  ScheduleAsymmetricLoss(link, from, 1.0, at, clear_at);
}

void FailureInjector::FailNode(sim::Node* node) {
  if (++node_cuts_[node] > 1) return;  // already down: deepen only
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kNodeDown, 0, 0,
               static_cast<std::uint64_t>(node->id()));
  }
  node->SetUp(false);
  fabric_.NotifyTopologyChange();
}

void FailureInjector::RecoverNode(sim::Node* node) {
  auto it = node_cuts_.find(node);
  if (it == node_cuts_.end() || it->second == 0) return;  // spurious heal
  if (--it->second > 0) return;  // another cut still holds the node down
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kNodeUp, 0, 0,
               static_cast<std::uint64_t>(node->id()));
  }
  node->SetUp(true);
  fabric_.NotifyTopologyChange();
}

void FailureInjector::FailLink(sim::Link* link) {
  if (++link_cuts_[link] > 1) return;
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kLinkCut, 0);
  }
  link->SetUp(false);
  fabric_.NotifyTopologyChange();
}

void FailureInjector::RecoverLink(sim::Link* link) {
  auto it = link_cuts_.find(link);
  if (it == link_cuts_.end() || it->second == 0) return;
  if (--it->second > 0) return;
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kLinkRestored, 0);
  }
  link->SetUp(true);
  fabric_.NotifyTopologyChange();
}

void FailureInjector::ApplyAsymmetricLoss(sim::Link* link, NodeId from,
                                          double rate) {
  DirLoss& dl = dir_loss_[{link, from}];
  ++dl.depth;
  dl.rate = std::max(dl.rate, rate);
  link->SetDirectionLoss(from, dl.rate);
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kGrayFault, 0, 0,
               static_cast<std::uint64_t>(from), rate);
  }
}

void FailureInjector::ClearAsymmetricLoss(sim::Link* link, NodeId from) {
  auto it = dir_loss_.find({link, from});
  if (it == dir_loss_.end() || it->second.depth == 0) return;
  if (--it->second.depth > 0) return;  // another injection still active
  it->second.rate = 0.0;
  link->SetDirectionLoss(from, -1.0);
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kGrayCleared, 0, 0,
               static_cast<std::uint64_t>(from));
  }
}

int FailureInjector::NodeCutDepth(const sim::Node* node) const {
  auto it = node_cuts_.find(node);
  return it == node_cuts_.end() ? 0 : it->second;
}

int FailureInjector::LinkCutDepth(const sim::Link* link) const {
  auto it = link_cuts_.find(link);
  return it == link_cuts_.end() ? 0 : it->second;
}

}  // namespace redplane::routing
