#include "routing/failure.h"

namespace redplane::routing {

void FailureInjector::ScheduleNodeFailure(sim::Node* node, SimTime at,
                                          SimTime recover_at) {
  sim_.ScheduleAt(at, [this, node]() { FailNode(node); });
  if (recover_at >= 0) {
    sim_.ScheduleAt(recover_at, [this, node]() { RecoverNode(node); });
  }
}

void FailureInjector::ScheduleLinkFailure(sim::Link* link, SimTime at,
                                          SimTime recover_at) {
  sim_.ScheduleAt(at, [this, link]() { FailLink(link); });
  if (recover_at >= 0) {
    sim_.ScheduleAt(recover_at, [this, link]() { RecoverLink(link); });
  }
}

void FailureInjector::FailNode(sim::Node* node) {
  node->SetUp(false);
  fabric_.NotifyTopologyChange();
}

void FailureInjector::RecoverNode(sim::Node* node) {
  node->SetUp(true);
  fabric_.NotifyTopologyChange();
}

void FailureInjector::FailLink(sim::Link* link) {
  link->SetUp(false);
  fabric_.NotifyTopologyChange();
}

void FailureInjector::RecoverLink(sim::Link* link) {
  link->SetUp(true);
  fabric_.NotifyTopologyChange();
}

}  // namespace redplane::routing
