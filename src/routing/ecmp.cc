#include "routing/ecmp.h"

#include <algorithm>
#include <deque>

#include "audit/taps.h"
#include "common/hash.h"
#include "common/logging.h"
#include "net/flow.h"
#include "obs/tracer.h"

namespace redplane::routing {

RoutingFabric::RoutingFabric(sim::Network& network, FabricConfig config)
    : network_(network), config_(config) {}

void RoutingFabric::AssignAddress(sim::Node* node, net::Ipv4Addr ip) {
  by_ip_[ip.value] = node;
}

sim::Node* RoutingFabric::NodeFor(net::Ipv4Addr ip) const {
  auto it = by_ip_.find(ip.value);
  return it == by_ip_.end() ? nullptr : it->second;
}

void RoutingFabric::Install() {
  RecomputeNow();
  for (std::size_t i = 0; i < network_.NumNodes(); ++i) {
    auto* sw = dynamic_cast<dp::SwitchNode*>(
        network_.GetNode(static_cast<NodeId>(i)));
    if (sw == nullptr) continue;
    sw->SetForwarder([this, sw](const net::Packet& pkt,
                                PortId in_port) -> std::optional<PortId> {
      (void)in_port;
      return NextHop(sw, pkt);
    });
  }
}

void RoutingFabric::NotifyTopologyChange() {
  if (recompute_pending_) return;
  recompute_pending_ = true;
  network_.sim().Schedule(config_.failure_detection_delay, [this]() {
    recompute_pending_ = false;
    Rebuild();
  });
}

void RoutingFabric::RecomputeNow() { Rebuild(); }

void RoutingFabric::Rebuild() {
  static obs::TraceHandle trace("fabric");
  if (trace.armed()) {
    trace.Emit(obs::Ev::kReroute, 0, 0,
               static_cast<double>(network_.NumNodes()));
  }
  // Recovery forensics: route re-convergence closes the failure-detection
  // phase of an episode (obs/recovery.h).
  static audit::TapHandle atap("fabric");
  if (atap.armed()) {
    atap.Emit(audit::Tap::kRouteReconverged, 0, 0,
              static_cast<std::uint64_t>(network_.NumNodes()));
  }
  const std::size_t n = network_.NumNodes();
  routes_.assign(n, {});

  // Adjacency over currently-up links and nodes.
  struct Edge {
    NodeId neighbor;
    PortId out_port;
  };
  std::vector<std::vector<Edge>> adj(n);
  for (std::size_t li = 0; li < network_.NumLinks(); ++li) {
    sim::Link* link = network_.GetLink(li);
    if (!link->IsUp()) continue;
    sim::Node* a = link->endpoint_a();
    sim::Node* b = link->endpoint_b();
    if (!a->IsUp() || !b->IsUp()) continue;
    // Find the port each side uses for this link.
    for (PortId p = 0; p < a->NumPorts(); ++p) {
      if (a->LinkAt(p) == link) {
        adj[a->id()].push_back({b->id(), p});
        break;
      }
    }
    for (PortId p = 0; p < b->NumPorts(); ++p) {
      if (b->LinkAt(p) == link) {
        adj[b->id()].push_back({a->id(), p});
        break;
      }
    }
  }

  // For each destination (any addressed node), BFS distances, then record
  // every port on a shortest path at every node.
  for (const auto& [ip, dest] : by_ip_) {
    (void)ip;
    if (!dest->IsUp()) continue;
    const NodeId dest_id = dest->id();
    std::vector<int> dist(n, -1);
    std::deque<NodeId> queue;
    dist[dest_id] = 0;
    queue.push_back(dest_id);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const Edge& e : adj[u]) {
        if (dist[e.neighbor] < 0) {
          dist[e.neighbor] = dist[u] + 1;
          queue.push_back(e.neighbor);
        }
      }
    }
    for (std::size_t u = 0; u < n; ++u) {
      if (dist[u] <= 0) continue;  // unreachable or the destination itself
      std::vector<PortId> ports;
      for (const Edge& e : adj[u]) {
        if (dist[e.neighbor] == dist[u] - 1) ports.push_back(e.out_port);
      }
      std::sort(ports.begin(), ports.end());
      if (!ports.empty()) {
        routes_[u][dest_id] = std::move(ports);
      }
    }
  }
}

std::optional<PortId> RoutingFabric::NextHop(sim::Node* at,
                                             const net::Packet& pkt) const {
  if (!pkt.ip.has_value()) return std::nullopt;
  sim::Node* dest = NodeFor(pkt.ip->dst);
  if (dest == nullptr || dest == at) return std::nullopt;
  const auto& table = routes_[at->id()];
  auto it = table.find(dest->id());
  if (it == table.end() || it->second.empty()) return std::nullopt;
  const auto& ports = it->second;
  // ECMP keyed to the deployment's partition key (see FabricConfig).
  std::uint64_t h;
  if (config_.ecmp_hash == FabricConfig::EcmpHash::kDstAddress) {
    h = Mix64(pkt.ip->dst.value);
  } else if (auto flow = pkt.Flow()) {
    h = net::HashFlowKey(*flow);
  } else {
    h = (static_cast<std::uint64_t>(pkt.ip->src.value) << 32) |
        pkt.ip->dst.value;
  }
  if (config_.ecmp_salt != 0) h = Mix64(h ^ config_.ecmp_salt);
  return ports[h % ports.size()];
}

}  // namespace redplane::routing
