// L3 routing fabric with 5-tuple ECMP (§2 "Network model").
//
// Every node with an IP address is a routing destination.  For each switch
// the fabric computes, per destination, the set of output ports on shortest
// paths through nodes/links that switch currently *believes* are up; ECMP
// load-balances across the set by hashing the 5-tuple (the partition key),
// which gives RedPlane the best-effort flow affinity the paper assumes.
// Failures propagate into switches' beliefs after a detection delay (BGP/BFD
// style), producing the transient blackholes and reroutes the failover
// experiment measures.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "dataplane/pipeline.h"
#include "net/headers.h"
#include "sim/network.h"

namespace redplane::routing {

struct FabricConfig {
  /// Delay between a node/link state change and neighbors rerouting.
  SimDuration failure_detection_delay = Milliseconds(500);
  /// ECMP hash input.  The paper's network model assumes ECMP is
  /// "configured to use the partition key as their hash key" so packets of
  /// one partition share a path; the default hashes the 5-tuple (right for
  /// flow-partitioned apps), and object-partitioned deployments (e.g. the
  /// EPC-SGW, keyed by user address) switch to destination-based hashing.
  enum class EcmpHash { kFiveTuple, kDstAddress } ecmp_hash =
      EcmpHash::kFiveTuple;
  /// Extra entropy mixed into the ECMP hash.  0 (the default) leaves the
  /// hash untouched, so existing deployments are bit-identical.  Changing
  /// the salt mid-run re-shuffles flow→path assignments without any
  /// topology change — the traffic-engineering / ECMP-rehash event that
  /// makes lease handoff a steady-state path (ROADMAP item 2), and the
  /// fuzz campaign's lease-churn attack primitive.
  std::uint64_t ecmp_salt = 0;
};

class RoutingFabric {
 public:
  RoutingFabric(sim::Network& network, FabricConfig config = {});

  /// Declares that `node` owns `ip` (hosts, servers, switch protocol IPs).
  void AssignAddress(sim::Node* node, net::Ipv4Addr ip);

  /// Installs ECMP forwarders on every switch and computes initial routes.
  /// Call after the topology and addresses are final.
  void Install();

  /// Notifies the fabric of a node or link state change; routes recompute
  /// after the detection delay.  (FailureInjector calls this.)
  void NotifyTopologyChange();

  /// Immediate recompute (initial bring-up or tests).
  void RecomputeNow();

  /// Changes the ECMP hash salt (see FabricConfig::ecmp_salt).  Takes
  /// effect on the next forwarded packet — routes themselves are
  /// salt-independent, only the choice among equal-cost ports moves.
  void SetEcmpSalt(std::uint64_t salt) { config_.ecmp_salt = salt; }
  std::uint64_t ecmp_salt() const { return config_.ecmp_salt; }

  /// The node owning `ip`, if any.
  sim::Node* NodeFor(net::Ipv4Addr ip) const;

  /// Resolves the forwarding decision a given switch would make (exposed
  /// for tests).
  std::optional<PortId> NextHop(sim::Node* at, const net::Packet& pkt) const;

 private:
  void Rebuild();

  sim::Network& network_;
  FabricConfig config_;
  std::unordered_map<std::uint32_t, sim::Node*> by_ip_;
  /// routes_[node id][dest node id] = candidate output ports.
  std::vector<std::unordered_map<NodeId, std::vector<PortId>>> routes_;
  bool recompute_pending_ = false;
};

}  // namespace redplane::routing
