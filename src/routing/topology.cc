#include "routing/topology.h"

namespace redplane::routing {

net::Ipv4Addr RackServerIp(int rack, int index) {
  return net::Ipv4Addr(192, 168, static_cast<std::uint8_t>(10 + rack),
                       static_cast<std::uint8_t>(10 + index));
}

net::Ipv4Addr ExternalHostIp(int index) {
  return net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(10 + index));
}

net::Ipv4Addr AggSwitchIp(int index) {
  return net::Ipv4Addr(172, 16, 0, static_cast<std::uint8_t>(1 + index));
}

net::Ipv4Addr StoreServerIp(int index) {
  return net::Ipv4Addr(172, 16, 1, static_cast<std::uint8_t>(1 + index));
}

Testbed BuildTestbed(sim::Simulator& sim, const TestbedConfig& config) {
  Testbed tb;
  tb.network = std::make_unique<sim::Network>(sim, config.seed);
  sim::Network& net = *tb.network;
  tb.fabric = std::make_unique<RoutingFabric>(net, config.fabric);

  // Switches.  Core and ToR switches are fixed-function (no pipeline
  // handler); the two aggregation switches are the programmable ones.
  tb.core = net.AddNode<dp::SwitchNode>("core", dp::SwitchConfig{});
  for (int i = 0; i < 2; ++i) {
    dp::SwitchConfig agg_cfg = config.programmable;
    agg_cfg.switch_ip = AggSwitchIp(i);
    tb.agg[i] =
        net.AddNode<dp::SwitchNode>("agg" + std::to_string(i), agg_cfg);
    tb.fabric->AssignAddress(tb.agg[i], agg_cfg.switch_ip);
  }
  for (int i = 0; i < 2; ++i) {
    tb.tor[i] =
        net.AddNode<dp::SwitchNode>("tor" + std::to_string(i),
                                    dp::SwitchConfig{});
  }

  // Fabric links: core <-> each aggregation switch <-> each ToR.
  for (int a = 0; a < 2; ++a) {
    net.Connect(tb.core, static_cast<PortId>(a), tb.agg[a], 0,
                config.fabric_link);
    for (int t = 0; t < 2; ++t) {
      net.Connect(tb.agg[a], static_cast<PortId>(1 + t), tb.tor[t],
                  static_cast<PortId>(a), config.fabric_link);
    }
  }

  // Rack servers: two per ToR on ports 2, 3.
  for (int rack = 0; rack < 2; ++rack) {
    for (int i = 0; i < 2; ++i) {
      auto* host = net.AddNode<sim::HostNode>(
          "srv" + std::to_string(rack) + std::to_string(i),
          RackServerIp(rack, i));
      net.Connect(host, 0, tb.tor[rack], static_cast<PortId>(2 + i),
                  config.host_link);
      tb.fabric->AssignAddress(host, host->ip());
      tb.rack_servers[rack][i] = host;
    }
  }

  // External hosts off the core (ports 2..5).
  for (int i = 0; i < 4; ++i) {
    auto* host = net.AddNode<sim::HostNode>("ext" + std::to_string(i),
                                            ExternalHostIp(i));
    net.Connect(host, 0, tb.core, static_cast<PortId>(2 + i),
                config.host_link);
    tb.fabric->AssignAddress(host, host->ip());
    tb.external[i] = host;
  }

  // State store chain: one server per rack plus one core-attached (group of
  // 3 in different racks, §6).  store[0] is the chain head.
  const int chain = std::max(1, config.store_chain_size);
  for (int i = 0; i < chain; ++i) {
    auto* server = net.AddNode<store::StateStoreServer>(
        "store" + std::to_string(i), StoreServerIp(i), config.store);
    if (i < 2) {
      net.Connect(server, 0, tb.tor[i], static_cast<PortId>(4 + i / 2),
                  config.host_link);
    } else {
      net.Connect(server, 0, tb.core, static_cast<PortId>(6 + (i - 2)),
                  config.host_link);
    }
    tb.fabric->AssignAddress(server, server->ip());
    tb.store.push_back(server);
  }
  for (int i = 0; i < chain; ++i) {
    tb.store[i]->SetIsHead(i == 0);
    if (i + 1 < chain) {
      tb.store[i]->SetChainSuccessor(tb.store[i + 1]->ip());
    }
  }

  tb.fabric->Install();
  return tb;
}

}  // namespace redplane::routing
