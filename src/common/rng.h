// Deterministic random number generation.
//
// Every stochastic component in the reproduction (link loss, traffic
// generation, ECMP tie-breaks, ...) draws from an Rng seeded by the owning
// experiment, so that a run is reproducible bit-for-bit from its seed.  We
// implement xoshiro256** (public domain, Blackman & Vigna) seeded via
// SplitMix64 rather than relying on std::mt19937, whose streams differ in
// subtle ways across standard library versions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace redplane {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** pseudo random generator with convenience distributions.
class Rng {
 public:
  /// Constructs a generator whose entire stream is determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Returns the next raw 64-bit output.
  std::uint64_t Next();

  /// Returns a uniformly distributed value in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Returns a uniformly distributed integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Returns a uniformly distributed double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Samples an index in [0, weights.size()) proportionally to the weights.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  /// Forks a child generator with an independent stream derived from this
  /// generator's state and `stream_id`; used to give each component its own
  /// stream so adding a component does not perturb the others.
  Rng Fork(std::uint64_t stream_id);

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Zipf-distributed integer sampler over [0, n), exponent `theta`.
///
/// Uses the standard rejection-inversion-free CDF-table approach: O(n) setup,
/// O(log n) per sample.  Adequate for the key-popularity workloads used in
/// the evaluation.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);

  std::size_t Sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace redplane
