#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace redplane {

void SampleSet::Add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<double>&>(samples_);
    std::sort(mut.begin(), mut.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double SampleSet::Min() const {
  assert(!samples_.empty());
  EnsureSorted();
  return samples_.front();
}

double SampleSet::Max() const {
  assert(!samples_.empty());
  EnsureSorted();
  return samples_.back();
}

double SampleSet::Mean() const {
  assert(!samples_.empty());
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::Percentile(double p) const {
  assert(!samples_.empty());
  EnsureSorted();
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::vector<std::pair<double, double>> SampleSet::Cdf(
    std::size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty()) return out;
  EnsureSorted();
  const std::size_t n = samples_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i],
                     static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().second < 1.0) out.emplace_back(samples_.back(), 1.0);
  return out;
}

void SampleSet::Reset() {
  samples_.clear();
  sorted_ = true;
}

TimeSeries::TimeSeries(SimDuration bucket) : bucket_(bucket) {
  assert(bucket > 0);
}

void TimeSeries::Add(SimTime t, double value) {
  assert(t >= 0);
  const std::size_t idx = static_cast<std::size_t>(t / bucket_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += value;
}

double TimeSeries::BucketSum(std::size_t i) const {
  return i < buckets_.size() ? buckets_[i] : 0.0;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace redplane
