#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace redplane {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Debiased via rejection of the tail region.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? Next() : NextBounded(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  double x = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(std::uint64_t stream_id) {
  std::uint64_t mix = Next() ^ (stream_id * 0xd1b54a32d192ed03ull);
  return Rng(mix);
}

ZipfSampler::ZipfSampler(std::size_t n, double theta) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace redplane
