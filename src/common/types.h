// Core scalar types shared across the RedPlane reproduction.
//
// All simulated time is kept as an integral count of nanoseconds.  Using a
// single integral representation (rather than std::chrono duration types on
// every interface) keeps the discrete-event simulator allocation-free and
// makes event ordering and hashing trivial, while the helpers below keep the
// call sites readable.
#pragma once

#include <cstdint>

namespace redplane {

/// Simulated time, in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A time delta in nanoseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1'000;
constexpr SimDuration kMillisecond = 1'000'000;
constexpr SimDuration kSecond = 1'000'000'000;

constexpr SimDuration Nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration Microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(std::int64_t n) { return n * kSecond; }

/// Converts a nanosecond count to (floating point) seconds, for reporting.
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a nanosecond count to (floating point) microseconds.
constexpr double ToMicroseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Identifies a node (switch, server, host) in the simulated network.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
constexpr NodeId kInvalidNode = 0xffffffffu;

/// Identifies a port on a node.
using PortId = std::uint16_t;

constexpr PortId kInvalidPort = 0xffffu;

}  // namespace redplane
