// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, so the logger is
// deliberately simple: a global level, a global sink (stderr by default),
// and printf-free streaming macros that evaluate their arguments only when
// the level is enabled.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/types.h"

namespace redplane {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the current global log level.  On first call, honors the
/// REDPLANE_LOG_LEVEL environment variable (name or numeric value).
LogLevel GetLogLevel();

/// Sets the global log level; returns the previous level.
LogLevel SetLogLevel(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive) or a
/// numeric level into `*out`.  Returns false (leaving `*out` untouched) on
/// unrecognized input.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// Registers a simulated-time source so log lines carry a `[t=1.234ms]`
/// prefix.  `owner` identifies the registrant (typically the simulator);
/// the last registration wins.
void SetLogClock(const void* owner, std::function<SimTime()> clock);

/// Removes the clock iff `owner` is the current registrant (so a destroyed
/// simulator cannot clear a newer one's clock).
void ClearLogClock(const void* owner);

/// Emits one formatted line to the sink.  Internal; use the RP_LOG macro.
void LogLine(LogLevel level, const char* file, int line,
             const std::string& message);

namespace internal {

/// Accumulates a log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace redplane

#define RP_LOG(level)                                                     \
  if (::redplane::LogLevel::level < ::redplane::GetLogLevel()) {          \
  } else                                                                  \
    ::redplane::internal::LogMessage(::redplane::LogLevel::level,         \
                                     __FILE__, __LINE__)                  \
        .stream()
