// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, so the logger is
// deliberately simple: a global level, a global sink (stderr by default),
// and printf-free streaming macros that evaluate their arguments only when
// the level is enabled.
#pragma once

#include <sstream>
#include <string>

namespace redplane {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the current global log level.
LogLevel GetLogLevel();

/// Sets the global log level; returns the previous level.
LogLevel SetLogLevel(LogLevel level);

/// Emits one formatted line to the sink.  Internal; use the RP_LOG macro.
void LogLine(LogLevel level, const char* file, int line,
             const std::string& message);

namespace internal {

/// Accumulates a log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace redplane

#define RP_LOG(level)                                                     \
  if (::redplane::LogLevel::level < ::redplane::GetLogLevel()) {          \
  } else                                                                  \
    ::redplane::internal::LogMessage(::redplane::LogLevel::level,         \
                                     __FILE__, __LINE__)                  \
        .stream()
