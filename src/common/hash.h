// Hash functions used across the reproduction.
//
// The switch data plane model uses these for ECMP hashing, sketch indexing,
// and flow-table lookups; CRC32 mirrors the hash units available on Tofino
// pipelines, FNV-1a is used for host-side hashing where speed matters more
// than any particular polynomial.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace redplane {

/// 64-bit FNV-1a over an arbitrary byte span.
std::uint64_t Fnv1a64(std::span<const std::byte> data);

/// 64-bit FNV-1a over a string.
std::uint64_t Fnv1a64(std::string_view s);

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte span.  This is the
/// polynomial exposed by Tofino hash units and is used wherever the data
/// plane model computes a hash (ECMP, sketch rows).
std::uint32_t Crc32(std::span<const std::byte> data, std::uint32_t seed = 0);

/// Stateless 64-bit finalizer (SplitMix64's output function); good for
/// combining already-mixed words.
std::uint64_t Mix64(std::uint64_t x);

/// Combines two hash values (boost::hash_combine style, 64-bit).
inline std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  return h ^ (Mix64(v) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

}  // namespace redplane
