#include "common/logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace redplane {

namespace {
LogLevel g_level = LogLevel::kWarn;
const void* g_clock_owner = nullptr;
std::function<SimTime()> g_clock;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  // Apply REDPLANE_LOG_LEVEL exactly once, lazily, so it takes effect
  // regardless of static-initialization order.
  static const bool env_applied = [] {
    if (const char* env = std::getenv("REDPLANE_LOG_LEVEL")) {
      LogLevel parsed;
      if (ParseLogLevel(env, &parsed)) g_level = parsed;
    }
    return true;
  }();
  (void)env_applied;
  return g_level;
}

LogLevel SetLogLevel(LogLevel level) {
  GetLogLevel();  // settle the env var first so it cannot override later
  LogLevel prev = g_level;
  g_level = level;
  return prev;
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") { *out = LogLevel::kTrace; return true; }
  if (lower == "debug") { *out = LogLevel::kDebug; return true; }
  if (lower == "info") { *out = LogLevel::kInfo; return true; }
  if (lower == "warn" || lower == "warning") { *out = LogLevel::kWarn; return true; }
  if (lower == "error") { *out = LogLevel::kError; return true; }
  if (lower == "off" || lower == "none") { *out = LogLevel::kOff; return true; }
  if (!lower.empty() && lower.size() == 1 && lower[0] >= '0' && lower[0] <= '5') {
    *out = static_cast<LogLevel>(lower[0] - '0');
    return true;
  }
  return false;
}

void SetLogClock(const void* owner, std::function<SimTime()> clock) {
  g_clock_owner = owner;
  g_clock = std::move(clock);
}

void ClearLogClock(const void* owner) {
  if (g_clock_owner != owner) return;
  g_clock_owner = nullptr;
  g_clock = nullptr;
}

void LogLine(LogLevel level, const char* file, int line,
             const std::string& message) {
  // Strip directories from the file name for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  if (g_clock) {
    const double ms = static_cast<double>(g_clock()) / 1e6;
    std::fprintf(stderr, "[t=%.3fms] [%s %s:%d] %s\n", ms, LevelName(level),
                 base, line, message.c_str());
  } else {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
                 message.c_str());
  }
}

}  // namespace redplane
