#include "common/logging.h"

#include <cstdio>

namespace redplane {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }

LogLevel SetLogLevel(LogLevel level) {
  LogLevel prev = g_level;
  g_level = level;
  return prev;
}

void LogLine(LogLevel level, const char* file, int line,
             const std::string& message) {
  // Strip directories from the file name for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               message.c_str());
}

}  // namespace redplane
