#include "common/hash.h"

#include <array>

namespace redplane {

std::uint64_t Fnv1a64(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(std::as_bytes(std::span(s.data(), s.size())));
}

namespace {
std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t Crc32(std::span<const std::byte> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = MakeCrcTable();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::byte b : data) {
    c = kTable[(c ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint64_t Mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace redplane
