// Statistics collection for the evaluation harnesses.
//
// The benches reproduce the paper's figures from percentile summaries, CDFs,
// time series, and counters; this module provides those accumulators.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace redplane {

/// Collects raw samples and answers percentile / CDF queries.
///
/// Samples are stored and sorted lazily on first query.  Suitable for the
/// evaluation scale here (up to a few million samples per run).
class SampleSet {
 public:
  void Add(double value);

  std::size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;

  /// Returns the p-th percentile (p in [0, 100]) via linear interpolation.
  double Percentile(double p) const;

  /// Returns (value, cumulative_fraction) pairs suitable for plotting a CDF,
  /// downsampled to at most `max_points` points.
  std::vector<std::pair<double, double>> Cdf(std::size_t max_points = 200) const;

  /// Clears all samples.
  void Reset();

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Accumulates a value over fixed-width time buckets, e.g. bytes per 100 ms
/// interval for the failover throughput timeline (Fig. 14).
class TimeSeries {
 public:
  /// `bucket` is the width of one bucket in simulated nanoseconds.
  explicit TimeSeries(SimDuration bucket);

  /// Adds `value` to the bucket containing time `t`.
  void Add(SimTime t, double value);

  SimDuration bucket() const { return bucket_; }

  /// Number of buckets covering everything added so far.
  std::size_t NumBuckets() const { return buckets_.size(); }

  /// Sum accumulated in bucket `i` (0 if never touched).
  double BucketSum(std::size_t i) const;

  /// Start time of bucket `i`.
  SimTime BucketStart(std::size_t i) const {
    return static_cast<SimTime>(i) * bucket_;
  }

 private:
  SimDuration bucket_;
  std::vector<double> buckets_;
};

/// Formats `v` with `digits` decimal places (reporting helper).
std::string FormatDouble(double v, int digits = 2);

}  // namespace redplane
