// Workload and trace synthesis.
//
// The paper replays real data-center and enterprise traces [1, 2]; those are
// not redistributable, so these generators synthesize traces matching their
// published characteristics: heavy-tailed flow popularity, the DC packet-size
// mix (64-1500 B with modes at the extremes), Poisson arrivals, the EPC
// 1-signaling-per-17-data mix, and uniform-key KV operation streams with a
// configurable update ratio.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/kv_store.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/flow.h"
#include "net/packet.h"

namespace redplane::trace {

struct TracePacket {
  SimTime time = 0;
  net::FlowKey flow;
  std::uint32_t size_bytes = 64;
  /// VLAN tag (0 = untagged); used by per-tenant workloads.
  std::uint16_t vlan = 0;
  /// True for EPC signaling packets.
  bool signaling = false;
  /// TCP packets materialize with SYN instead of ACK (SYN-flood phases).
  bool tcp_syn = false;
};

struct FlowMixConfig {
  std::size_t num_packets = 100'000;
  std::size_t num_flows = 1'000;
  /// Zipf exponent for flow popularity (0 = uniform).
  double zipf_theta = 1.05;
  /// Mean packet inter-arrival time.
  SimDuration mean_interarrival = Microseconds(10);
  /// Source/destination address pools.
  net::Ipv4Addr src_base{10, 0, 0, 10};
  net::Ipv4Addr dst_base{192, 168, 10, 10};
  std::uint16_t dst_port = 80;
  net::IpProto proto = net::IpProto::kTcp;
  /// Draw packet sizes from the empirical DC mix; false = fixed 64 B.
  bool realistic_sizes = true;
  std::uint16_t vlan = 0;
};

/// Synthesizes a data-center-like packet trace.
std::vector<TracePacket> GenerateFlowMix(Rng& rng, const FlowMixConfig& config);

/// One packet size drawn from the published DC distribution (64-1500 B,
/// bimodal at the extremes).
std::uint32_t SampleDcPacketSize(Rng& rng);

/// The flow key used for flow index `i` under `config` (for result checks).
net::FlowKey FlowForIndex(const FlowMixConfig& config, std::size_t i);

struct EpcMixConfig {
  std::size_t num_packets = 100'000;
  std::size_t num_users = 500;
  /// One signaling packet per this many data packets (17 in the paper).
  std::size_t data_per_signaling = 17;
  SimDuration mean_interarrival = Microseconds(10);
  net::Ipv4Addr user_base{100, 64, 0, 10};
  net::Ipv4Addr internet_src{10, 0, 0, 10};
};

/// Synthesizes the cellular-core mix: tunnel data with periodic signaling.
std::vector<TracePacket> GenerateEpcMix(Rng& rng, const EpcMixConfig& config);

struct KvOpsConfig {
  std::size_t num_ops = 100'000;
  std::size_t num_keys = 10'000;
  double update_ratio = 0.5;
  SimDuration mean_interarrival = Microseconds(10);
  net::FlowKey client_flow;
};

struct KvOpEvent {
  SimTime time = 0;
  apps::KvRequest request;
};

/// Uniform-random-key operation stream (Fig. 13 workload).
std::vector<KvOpEvent> GenerateKvOps(Rng& rng, const KvOpsConfig& config);

/// Materializes a trace packet (builds headers and pad bytes).
net::Packet MaterializePacket(const TracePacket& spec);

/// --- adversarial load phases (fuzz campaign, DESIGN.md §15) --------------
/// Each generator returns a time-sorted packet list the campaign runner
/// injects on top of its audited base traffic.  All draws come from the
/// caller's Rng, so a (seed, schedule) pair replays bit-identically.

struct FlashCrowdConfig {
  /// Phase window: flows all arrive within [start, start + duration).
  SimTime start = 0;
  SimDuration duration = Milliseconds(5);
  /// Brand-new flows opened by the crowd (each stresses the store's Init
  /// path and the switch flow table at once).
  std::size_t num_flows = 32;
  std::size_t packets_per_flow = 4;
  net::Ipv4Addr src{10, 0, 0, 10};
  net::Ipv4Addr dst{192, 168, 10, 10};
  std::uint16_t dst_port = 80;
  /// Flow i uses source port base_port + i.
  std::uint16_t base_port = 30000;
  net::IpProto proto = net::IpProto::kUdp;
};

/// A sudden spike of brand-new flows: arrival times drawn uniformly inside
/// the window instead of Poisson-spread, so Inits pile onto the store in a
/// burst.
std::vector<TracePacket> GenerateFlashCrowd(Rng& rng,
                                            const FlashCrowdConfig& config);

struct SynFloodConfig {
  SimTime start = 0;
  SimDuration duration = Milliseconds(5);
  std::size_t num_packets = 256;
  /// Spoofed sources: addresses drawn from src_base + [0, src_spread).
  net::Ipv4Addr src_base{172, 16, 0, 1};
  std::uint32_t src_spread = 4096;
  net::Ipv4Addr dst{192, 168, 10, 10};
  std::uint16_t dst_port = 80;
};

/// Line-rate TCP SYNs from spoofed sources: every packet is a distinct
/// 5-tuple, so each one allocates flow state — the syn_defense workload's
/// attack half, aimed here at the flow-table and store-capacity paths.
std::vector<TracePacket> GenerateSynFlood(Rng& rng,
                                          const SynFloodConfig& config);

struct LeaseChurnConfig {
  SimTime start = 0;
  SimDuration duration = Milliseconds(20);
  /// Long-lived flows whose ownership the campaign ping-pongs (the runner
  /// flips the fabric's ECMP salt between bursts, so each burst can land
  /// on the other switch and must re-acquire the lease).
  std::size_t num_flows = 4;
  /// Gap between bursts; pick near the lease period to maximize handoffs.
  SimDuration burst_gap = Milliseconds(4);
  std::size_t packets_per_burst = 3;
  net::Ipv4Addr src{10, 0, 0, 10};
  net::Ipv4Addr dst{192, 168, 10, 10};
  std::uint16_t dst_port = 80;
  std::uint16_t base_port = 40000;
};

/// On/off bursts over a small set of persistent flows.  The packets alone
/// are plain traffic; the churn comes from the runner re-salting ECMP at
/// burst boundaries (see FabricConfig::ecmp_salt).
std::vector<TracePacket> GenerateLeaseChurn(Rng& rng,
                                            const LeaseChurnConfig& config);

}  // namespace redplane::trace
