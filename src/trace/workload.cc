#include "trace/workload.h"

#include <algorithm>

#include "apps/epc_sgw.h"

namespace redplane::trace {

std::uint32_t SampleDcPacketSize(Rng& rng) {
  // Bimodal mix per the IMC'10 DC measurement: ~half minimum-size (acks,
  // control), a heavy mode at MTU (bulk transfer), and a spread between.
  const double u = rng.UniformDouble();
  if (u < 0.45) return 64;
  if (u < 0.55) return static_cast<std::uint32_t>(rng.UniformInt(100, 300));
  if (u < 0.70) return static_cast<std::uint32_t>(rng.UniformInt(300, 1000));
  if (u < 0.80) return static_cast<std::uint32_t>(rng.UniformInt(1000, 1400));
  return 1500;
}

net::FlowKey FlowForIndex(const FlowMixConfig& config, std::size_t i) {
  net::FlowKey flow;
  flow.src_ip = net::Ipv4Addr(
      static_cast<std::uint32_t>(config.src_base.value + (i % 251)));
  flow.dst_ip = net::Ipv4Addr(
      static_cast<std::uint32_t>(config.dst_base.value + (i % 3)));
  flow.src_port = static_cast<std::uint16_t>(20000 + (i % 40000));
  flow.dst_port = config.dst_port;
  flow.proto = config.proto;
  return flow;
}

std::vector<TracePacket> GenerateFlowMix(Rng& rng,
                                         const FlowMixConfig& config) {
  std::vector<TracePacket> out;
  out.reserve(config.num_packets);
  ZipfSampler zipf(config.num_flows, std::max(config.zipf_theta, 1e-9));
  SimTime now = 0;
  for (std::size_t i = 0; i < config.num_packets; ++i) {
    now += static_cast<SimDuration>(
        rng.Exponential(static_cast<double>(config.mean_interarrival)));
    TracePacket pkt;
    pkt.time = now;
    const std::size_t flow_idx =
        config.zipf_theta > 0 ? zipf.Sample(rng)
                              : rng.NextBounded(config.num_flows);
    pkt.flow = FlowForIndex(config, flow_idx);
    pkt.size_bytes = config.realistic_sizes ? SampleDcPacketSize(rng) : 64;
    pkt.vlan = config.vlan;
    out.push_back(pkt);
  }
  return out;
}

std::vector<TracePacket> GenerateEpcMix(Rng& rng, const EpcMixConfig& config) {
  std::vector<TracePacket> out;
  out.reserve(config.num_packets);
  SimTime now = 0;
  std::size_t since_signaling = 0;
  for (std::size_t i = 0; i < config.num_packets; ++i) {
    now += static_cast<SimDuration>(
        rng.Exponential(static_cast<double>(config.mean_interarrival)));
    TracePacket pkt;
    pkt.time = now;
    const std::uint32_t user =
        static_cast<std::uint32_t>(rng.NextBounded(config.num_users));
    pkt.flow.src_ip = config.internet_src;
    pkt.flow.dst_ip = net::Ipv4Addr(config.user_base.value + user);
    pkt.flow.src_port = 40000;
    pkt.flow.proto = net::IpProto::kUdp;
    if (++since_signaling > config.data_per_signaling) {
      since_signaling = 0;
      pkt.signaling = true;
      pkt.flow.dst_port = apps::kSgwSignalingPort;
      pkt.size_bytes = 80;
    } else {
      pkt.flow.dst_port = apps::kSgwDataPort;
      pkt.size_bytes = SampleDcPacketSize(rng);
    }
    out.push_back(pkt);
  }
  return out;
}

std::vector<KvOpEvent> GenerateKvOps(Rng& rng, const KvOpsConfig& config) {
  std::vector<KvOpEvent> out;
  out.reserve(config.num_ops);
  SimTime now = 0;
  for (std::size_t i = 0; i < config.num_ops; ++i) {
    now += static_cast<SimDuration>(
        rng.Exponential(static_cast<double>(config.mean_interarrival)));
    KvOpEvent ev;
    ev.time = now;
    ev.request.key = rng.NextBounded(config.num_keys);
    if (rng.Bernoulli(config.update_ratio)) {
      ev.request.op = apps::KvOp::kUpdate;
      ev.request.value = rng.Next();
    } else {
      ev.request.op = apps::KvOp::kRead;
    }
    out.push_back(ev);
  }
  return out;
}

net::Packet MaterializePacket(const TracePacket& spec) {
  if (spec.signaling) {
    // Signaling installs a bearer for the user: TEID derived from the user
    // address, eNB chosen from the user address too (deterministic).
    return apps::MakeSgwSignalingPacket(
        spec.flow.src_ip, spec.flow.dst_ip,
        /*teid=*/spec.flow.dst_ip.value & 0xffff,
        /*enb_ip=*/net::Ipv4Addr(192, 168, 11, 10));
  }
  const std::uint32_t headers = 14 + 20 + 20;
  const std::uint32_t pad =
      spec.size_bytes > headers ? spec.size_bytes - headers : 0;
  net::Packet pkt =
      spec.flow.proto == net::IpProto::kTcp
          ? net::MakeTcpPacket(
                spec.flow,
                spec.tcp_syn ? net::TcpFlags::kSyn : net::TcpFlags::kAck, 0, 0,
                pad)
          : net::MakeUdpPacket(spec.flow, pad);
  pkt.vlan = spec.vlan;
  pkt.created_at = spec.time;
  return pkt;
}

std::vector<TracePacket> GenerateFlashCrowd(Rng& rng,
                                            const FlashCrowdConfig& config) {
  std::vector<TracePacket> out;
  out.reserve(config.num_flows * config.packets_per_flow);
  const auto window = static_cast<std::uint64_t>(
      config.duration > 0 ? config.duration : 1);
  for (std::size_t f = 0; f < config.num_flows; ++f) {
    net::FlowKey flow;
    flow.src_ip = config.src;
    flow.dst_ip = config.dst;
    flow.src_port = static_cast<std::uint16_t>(config.base_port + f);
    flow.dst_port = config.dst_port;
    flow.proto = config.proto;
    // The flow's first packet lands uniformly in the window's first half,
    // follow-ups shortly after — the whole crowd arrives at once instead of
    // Poisson-spreading.
    SimTime t = config.start +
                static_cast<SimTime>(rng.NextBounded(window / 2 + 1));
    for (std::size_t p = 0; p < config.packets_per_flow; ++p) {
      TracePacket pkt;
      pkt.time = t;
      pkt.flow = flow;
      pkt.size_bytes = 64;
      out.push_back(pkt);
      t += static_cast<SimDuration>(
          rng.NextBounded(window / (2 * config.packets_per_flow) + 1));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TracePacket& a, const TracePacket& b) {
              return a.time < b.time;
            });
  return out;
}

std::vector<TracePacket> GenerateSynFlood(Rng& rng,
                                          const SynFloodConfig& config) {
  std::vector<TracePacket> out;
  out.reserve(config.num_packets);
  const auto window = static_cast<std::uint64_t>(
      config.duration > 0 ? config.duration : 1);
  SimTime now = config.start;
  for (std::size_t i = 0; i < config.num_packets; ++i) {
    TracePacket pkt;
    pkt.time = now;
    pkt.flow.src_ip = net::Ipv4Addr(static_cast<std::uint32_t>(
        config.src_base.value + rng.NextBounded(config.src_spread)));
    pkt.flow.dst_ip = config.dst;
    pkt.flow.src_port =
        static_cast<std::uint16_t>(1024 + rng.NextBounded(60000));
    pkt.flow.dst_port = config.dst_port;
    pkt.flow.proto = net::IpProto::kTcp;
    pkt.tcp_syn = true;
    pkt.size_bytes = 64;
    out.push_back(pkt);
    now += static_cast<SimDuration>(
        rng.NextBounded(2 * window / config.num_packets + 1));
  }
  return out;
}

std::vector<TracePacket> GenerateLeaseChurn(Rng& rng,
                                            const LeaseChurnConfig& config) {
  std::vector<TracePacket> out;
  const SimTime end = config.start + config.duration;
  SimTime burst_at = config.start;
  while (burst_at < end) {
    for (std::size_t f = 0; f < config.num_flows; ++f) {
      net::FlowKey flow;
      flow.src_ip = config.src;
      flow.dst_ip = config.dst;
      flow.src_port = static_cast<std::uint16_t>(config.base_port + f);
      flow.dst_port = config.dst_port;
      flow.proto = net::IpProto::kUdp;
      for (std::size_t p = 0; p < config.packets_per_burst; ++p) {
        TracePacket pkt;
        pkt.time = burst_at + static_cast<SimDuration>(
                                  rng.NextBounded(Microseconds(50)));
        pkt.flow = flow;
        pkt.size_bytes = 64;
        out.push_back(pkt);
      }
    }
    burst_at += config.burst_gap > 0 ? config.burst_gap : Milliseconds(1);
  }
  std::sort(out.begin(), out.end(),
            [](const TracePacket& a, const TracePacket& b) {
              return a.time < b.time;
            });
  return out;
}

}  // namespace redplane::trace
