#include "trace/workload.h"

#include <algorithm>

#include "apps/epc_sgw.h"

namespace redplane::trace {

std::uint32_t SampleDcPacketSize(Rng& rng) {
  // Bimodal mix per the IMC'10 DC measurement: ~half minimum-size (acks,
  // control), a heavy mode at MTU (bulk transfer), and a spread between.
  const double u = rng.UniformDouble();
  if (u < 0.45) return 64;
  if (u < 0.55) return static_cast<std::uint32_t>(rng.UniformInt(100, 300));
  if (u < 0.70) return static_cast<std::uint32_t>(rng.UniformInt(300, 1000));
  if (u < 0.80) return static_cast<std::uint32_t>(rng.UniformInt(1000, 1400));
  return 1500;
}

net::FlowKey FlowForIndex(const FlowMixConfig& config, std::size_t i) {
  net::FlowKey flow;
  flow.src_ip = net::Ipv4Addr(
      static_cast<std::uint32_t>(config.src_base.value + (i % 251)));
  flow.dst_ip = net::Ipv4Addr(
      static_cast<std::uint32_t>(config.dst_base.value + (i % 3)));
  flow.src_port = static_cast<std::uint16_t>(20000 + (i % 40000));
  flow.dst_port = config.dst_port;
  flow.proto = config.proto;
  return flow;
}

std::vector<TracePacket> GenerateFlowMix(Rng& rng,
                                         const FlowMixConfig& config) {
  std::vector<TracePacket> out;
  out.reserve(config.num_packets);
  ZipfSampler zipf(config.num_flows, std::max(config.zipf_theta, 1e-9));
  SimTime now = 0;
  for (std::size_t i = 0; i < config.num_packets; ++i) {
    now += static_cast<SimDuration>(
        rng.Exponential(static_cast<double>(config.mean_interarrival)));
    TracePacket pkt;
    pkt.time = now;
    const std::size_t flow_idx =
        config.zipf_theta > 0 ? zipf.Sample(rng)
                              : rng.NextBounded(config.num_flows);
    pkt.flow = FlowForIndex(config, flow_idx);
    pkt.size_bytes = config.realistic_sizes ? SampleDcPacketSize(rng) : 64;
    pkt.vlan = config.vlan;
    out.push_back(pkt);
  }
  return out;
}

std::vector<TracePacket> GenerateEpcMix(Rng& rng, const EpcMixConfig& config) {
  std::vector<TracePacket> out;
  out.reserve(config.num_packets);
  SimTime now = 0;
  std::size_t since_signaling = 0;
  for (std::size_t i = 0; i < config.num_packets; ++i) {
    now += static_cast<SimDuration>(
        rng.Exponential(static_cast<double>(config.mean_interarrival)));
    TracePacket pkt;
    pkt.time = now;
    const std::uint32_t user =
        static_cast<std::uint32_t>(rng.NextBounded(config.num_users));
    pkt.flow.src_ip = config.internet_src;
    pkt.flow.dst_ip = net::Ipv4Addr(config.user_base.value + user);
    pkt.flow.src_port = 40000;
    pkt.flow.proto = net::IpProto::kUdp;
    if (++since_signaling > config.data_per_signaling) {
      since_signaling = 0;
      pkt.signaling = true;
      pkt.flow.dst_port = apps::kSgwSignalingPort;
      pkt.size_bytes = 80;
    } else {
      pkt.flow.dst_port = apps::kSgwDataPort;
      pkt.size_bytes = SampleDcPacketSize(rng);
    }
    out.push_back(pkt);
  }
  return out;
}

std::vector<KvOpEvent> GenerateKvOps(Rng& rng, const KvOpsConfig& config) {
  std::vector<KvOpEvent> out;
  out.reserve(config.num_ops);
  SimTime now = 0;
  for (std::size_t i = 0; i < config.num_ops; ++i) {
    now += static_cast<SimDuration>(
        rng.Exponential(static_cast<double>(config.mean_interarrival)));
    KvOpEvent ev;
    ev.time = now;
    ev.request.key = rng.NextBounded(config.num_keys);
    if (rng.Bernoulli(config.update_ratio)) {
      ev.request.op = apps::KvOp::kUpdate;
      ev.request.value = rng.Next();
    } else {
      ev.request.op = apps::KvOp::kRead;
    }
    out.push_back(ev);
  }
  return out;
}

net::Packet MaterializePacket(const TracePacket& spec) {
  if (spec.signaling) {
    // Signaling installs a bearer for the user: TEID derived from the user
    // address, eNB chosen from the user address too (deterministic).
    return apps::MakeSgwSignalingPacket(
        spec.flow.src_ip, spec.flow.dst_ip,
        /*teid=*/spec.flow.dst_ip.value & 0xffff,
        /*enb_ip=*/net::Ipv4Addr(192, 168, 11, 10));
  }
  const std::uint32_t headers = 14 + 20 + 20;
  const std::uint32_t pad =
      spec.size_bytes > headers ? spec.size_bytes - headers : 0;
  net::Packet pkt = spec.flow.proto == net::IpProto::kTcp
                        ? net::MakeTcpPacket(spec.flow, net::TcpFlags::kAck, 0,
                                             0, pad)
                        : net::MakeUdpPacket(spec.flow, pad);
  pkt.vlan = spec.vlan;
  pkt.created_at = spec.time;
  return pkt;
}

}  // namespace redplane::trace
