// Explicit-state model checker for the RedPlane protocol.
//
// A C++ port of the paper's TLA+ specification (Appendix C), exhaustively
// exploring a bounded abstraction of the protocol: N switches running the
// per-flow counter (every packet writes), one state store with leases, an
// unreliable network (arbitrary reordering via multiset delivery, optional
// drops), lease-timer ticks, and fail-stop switch failures/recoveries.
//
// Checked invariants, mirroring the spec:
//  * SingleOwnerInvariant — a switch that believes it holds an active lease
//    is the store's current owner, and its remaining lease never exceeds
//    the store's (leases are granted with the store's remaining time, so
//    the switch view is conservative),
//  * store sequence monotonicity / no lost durable write — a switch's
//    acknowledged sequence number never exceeds the store's applied one,
//  * AtLeastOneAliveSwitch (configuration guard),
// plus a bounded liveness check: a state where every injected packet has
// been processed and released is reachable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace redplane::modelcheck {

struct CheckerConfig {
  int num_switches = 2;
  int total_packets = 3;
  /// Lease period in abstract ticks.
  int lease_period = 2;
  /// Bound on in-flight messages (multiset size).
  int max_inflight = 4;
  /// Bound on per-switch queued packets.
  int max_queued = 2;
  bool allow_failures = true;
  bool allow_drops = true;
  /// Exploration cap; exceeding it fails the run (raise the bound).
  std::size_t max_states = 5'000'000;
};

struct CheckerResult {
  bool ok = false;
  std::size_t states_explored = 0;
  std::size_t transitions = 0;
  /// True if a "all packets processed & released" state is reachable.
  bool goal_reachable = false;
  /// Human-readable description of the first violation (empty if ok).
  std::string violation;
};

/// Runs the exhaustive check.
CheckerResult CheckProtocol(const CheckerConfig& config);

}  // namespace redplane::modelcheck
