// Linearizability checking for packet histories (paper Definitions 2-4).
//
// A history is a time-ordered sequence of input events (packet received at a
// RedPlane switch) and output events (corresponding output emitted).  The
// history is linearizable (Definition 3) if some reordering S of the inputs
// (1) explains every observed output as the result of running the program on
// S in sequence, and (2) respects real time: if output O_x precedes input
// I_y in the history, x precedes y in S.
//
// Two checkers are provided:
//  * CheckCounterLinearizable — exact polynomial-time decision procedure
//    specialized for the per-flow counter program (the v-th processed packet
//    outputs value v), used on large simulated histories.  Counter outputs
//    pin their inputs to fixed positions in S, and every real-time edge
//    O_x < I_y originates at a pinned input, which reduces feasibility to a
//    greedy slot-assignment argument.
//  * BruteForceCheck — factorial-time reference for any deterministic
//    program, used in tests to cross-validate the fast checker.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace redplane::modelcheck {

struct HistoryEvent {
  enum class Kind : std::uint8_t { kInput, kOutput };
  Kind kind = Kind::kInput;
  /// Identifies the packet; an output pairs with the input of the same id.
  std::uint64_t packet_id = 0;
  SimTime time = 0;
  /// Output value (counter reading carried by the output packet).
  std::uint64_t value = 0;
};

/// Records one flow's history during a simulation.
class HistoryRecorder {
 public:
  void Input(std::uint64_t packet_id, SimTime time);
  void Output(std::uint64_t packet_id, SimTime time, std::uint64_t value);

  /// Events sorted by time (inputs before outputs on ties).
  std::vector<HistoryEvent> Sorted() const;

  std::size_t NumInputs() const { return inputs_; }
  std::size_t NumOutputs() const { return outputs_; }

 private:
  std::vector<HistoryEvent> events_;
  std::size_t inputs_ = 0;
  std::size_t outputs_ = 0;
};

/// Exact checker for the per-flow counter program.  Also verifies physical
/// causality (an output of value v requires >= v inputs injected before it).
/// Returns true iff linearizable; `why` (optional) explains a failure.
bool CheckCounterLinearizable(const std::vector<HistoryEvent>& history,
                              std::string* why = nullptr);

/// Reference checker: tries all orderings of inputs (<= 9 inputs).
/// `program` maps the 1-based position of an input in S to the expected
/// output value (for a counter: identity).
bool BruteForceCheck(const std::vector<HistoryEvent>& history,
                     const std::function<std::uint64_t(std::size_t)>& program);

// --- per-mode consistency oracles (DESIGN.md §14) -------------------------
//
// The weaker consistency modes trade linearizability for latency, but each
// still makes a checkable promise.  These oracles are the offline analogue
// of the online bounded_staleness / merge_convergence audit monitors: a
// campaign run collects samples from the taps and feeds them here, so the
// same evidence is judged by two independent implementations.

/// One locally served read in replicated-read mode: how far the durable
/// store view trailed the local state, against the app's declared bound.
struct StalenessSample {
  std::uint64_t key = 0;
  std::uint64_t staleness_ns = 0;
  /// Declared bound; 0 means no staleness contract (always legal).
  std::uint64_t bound_ns = 0;
};

/// ε-staleness oracle: every locally served read respected its declared
/// bound.  Returns true iff all samples pass; `why` explains the first
/// violation.
bool CheckBoundedStaleness(const std::vector<StalenessSample>& samples,
                           std::string* why = nullptr);

/// One merge application observed at a store replica, in arrival order.
struct MergeSample {
  /// Replica identity (samples from different replicas are independent).
  std::uint64_t component = 0;
  std::uint64_t key = 0;
  /// Monotone measure of the replica's stored state after the merge.
  double measure = 0.0;
};

/// Merge-convergence oracle: per (component, key), the measure of the
/// stored state never decreases across merges — a correct join moves only
/// up the lattice.  A decrease means a delta overwrote instead of merging.
bool CheckMergeConvergence(const std::vector<MergeSample>& samples,
                           std::string* why = nullptr);

}  // namespace redplane::modelcheck
