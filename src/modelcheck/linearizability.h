// Linearizability checking for packet histories (paper Definitions 2-4).
//
// A history is a time-ordered sequence of input events (packet received at a
// RedPlane switch) and output events (corresponding output emitted).  The
// history is linearizable (Definition 3) if some reordering S of the inputs
// (1) explains every observed output as the result of running the program on
// S in sequence, and (2) respects real time: if output O_x precedes input
// I_y in the history, x precedes y in S.
//
// Two checkers are provided:
//  * CheckCounterLinearizable — exact polynomial-time decision procedure
//    specialized for the per-flow counter program (the v-th processed packet
//    outputs value v), used on large simulated histories.  Counter outputs
//    pin their inputs to fixed positions in S, and every real-time edge
//    O_x < I_y originates at a pinned input, which reduces feasibility to a
//    greedy slot-assignment argument.
//  * BruteForceCheck — factorial-time reference for any deterministic
//    program, used in tests to cross-validate the fast checker.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace redplane::modelcheck {

struct HistoryEvent {
  enum class Kind : std::uint8_t { kInput, kOutput };
  Kind kind = Kind::kInput;
  /// Identifies the packet; an output pairs with the input of the same id.
  std::uint64_t packet_id = 0;
  SimTime time = 0;
  /// Output value (counter reading carried by the output packet).
  std::uint64_t value = 0;
};

/// Records one flow's history during a simulation.
class HistoryRecorder {
 public:
  void Input(std::uint64_t packet_id, SimTime time);
  void Output(std::uint64_t packet_id, SimTime time, std::uint64_t value);

  /// Events sorted by time (inputs before outputs on ties).
  std::vector<HistoryEvent> Sorted() const;

  std::size_t NumInputs() const { return inputs_; }
  std::size_t NumOutputs() const { return outputs_; }

 private:
  std::vector<HistoryEvent> events_;
  std::size_t inputs_ = 0;
  std::size_t outputs_ = 0;
};

/// Exact checker for the per-flow counter program.  Also verifies physical
/// causality (an output of value v requires >= v inputs injected before it).
/// Returns true iff linearizable; `why` (optional) explains a failure.
bool CheckCounterLinearizable(const std::vector<HistoryEvent>& history,
                              std::string* why = nullptr);

/// Reference checker: tries all orderings of inputs (<= 9 inputs).
/// `program` maps the 1-based position of an input in S to the expected
/// output value (for a counter: identity).
bool BruteForceCheck(const std::vector<HistoryEvent>& history,
                     const std::function<std::uint64_t(std::size_t)>& program);

}  // namespace redplane::modelcheck
