#include "modelcheck/linearizability.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>

namespace redplane::modelcheck {

void HistoryRecorder::Input(std::uint64_t packet_id, SimTime time) {
  events_.push_back({HistoryEvent::Kind::kInput, packet_id, time, 0});
  ++inputs_;
}

void HistoryRecorder::Output(std::uint64_t packet_id, SimTime time,
                             std::uint64_t value) {
  events_.push_back({HistoryEvent::Kind::kOutput, packet_id, time, value});
  ++outputs_;
}

std::vector<HistoryEvent> HistoryRecorder::Sorted() const {
  auto out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const HistoryEvent& a, const HistoryEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.kind < b.kind;
                   });
  return out;
}

namespace {

struct Fail {
  std::string* why;
  bool operator()(const std::string& msg) const {
    if (why != nullptr) *why = msg;
    return false;
  }
};

}  // namespace

bool CheckCounterLinearizable(const std::vector<HistoryEvent>& history,
                              std::string* why) {
  Fail fail{why};

  // Index inputs and outputs.
  std::unordered_map<std::uint64_t, std::size_t> input_order;  // id -> arrival idx
  std::vector<std::uint64_t> input_ids;
  std::unordered_map<std::uint64_t, SimTime> input_time;
  struct Out {
    std::uint64_t id;
    SimTime time;
    std::uint64_t value;
  };
  std::vector<Out> outputs;
  std::size_t inputs_seen = 0;

  for (const HistoryEvent& e : history) {
    if (e.kind == HistoryEvent::Kind::kInput) {
      if (input_order.count(e.packet_id)) {
        return fail("duplicate input for packet " +
                    std::to_string(e.packet_id));
      }
      input_order[e.packet_id] = input_ids.size();
      input_time[e.packet_id] = e.time;
      input_ids.push_back(e.packet_id);
      ++inputs_seen;
    } else {
      if (!input_order.count(e.packet_id)) {
        return fail("output without input for packet " +
                    std::to_string(e.packet_id));
      }
      // Physical causality: value v needs >= v inputs already injected.
      if (e.value > inputs_seen) {
        return fail("output value " + std::to_string(e.value) +
                    " exceeds inputs injected so far (" +
                    std::to_string(inputs_seen) + ")");
      }
      outputs.push_back({e.packet_id, e.time, e.value});
    }
  }
  const std::size_t n = input_ids.size();

  // (1) Each output pins its input at position `value` in S; values must be
  // unique, in range, and an input can have at most one output.
  std::unordered_map<std::uint64_t, std::uint64_t> pos_of;  // id -> position
  std::map<std::uint64_t, std::uint64_t> id_at;             // position -> id
  for (const Out& o : outputs) {
    if (o.value == 0 || o.value > n) {
      return fail("output value " + std::to_string(o.value) +
                  " out of range 1.." + std::to_string(n));
    }
    auto it = pos_of.find(o.id);
    if (it != pos_of.end()) {
      if (it->second != o.value) {
        return fail("packet " + std::to_string(o.id) +
                    " emitted two different counter values");
      }
      continue;  // duplicate (retransmitted) identical output: harmless
    }
    if (id_at.count(o.value)) {
      return fail("two packets share counter value " +
                  std::to_string(o.value));
    }
    pos_of[o.id] = o.value;
    id_at[o.value] = o.id;
  }

  // (2) Real-time edges: O_x at time t precedes every input injected after
  // t.  All such x are pinned.  For each input y, compute the largest pinned
  // position among x with O_x.time < I_y.time: y must sit above it.
  std::vector<std::uint64_t> lower_bound_pos(n, 0);  // by arrival idx
  {
    // Sweep events in time order, maintaining the max pinned position of
    // outputs emitted so far.
    auto sorted = history;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const HistoryEvent& a, const HistoryEvent& b) {
                       if (a.time != b.time) return a.time < b.time;
                       // Outputs at time t constrain inputs strictly later;
                       // process inputs first on ties.
                       return a.kind < b.kind;
                     });
    std::uint64_t max_pinned = 0;
    for (const HistoryEvent& e : sorted) {
      if (e.kind == HistoryEvent::Kind::kOutput) {
        auto it = pos_of.find(e.packet_id);
        if (it != pos_of.end()) max_pinned = std::max(max_pinned, it->second);
      } else {
        lower_bound_pos[input_order[e.packet_id]] = max_pinned;
      }
    }
  }

  // Pinned inputs must respect their own lower bounds.
  for (const auto& [id, pos] : pos_of) {
    const std::uint64_t lb = lower_bound_pos[input_order[id]];
    if (pos <= lb && lb != 0) {
      // pos must be strictly greater than every pinned predecessor's pos.
      // lb is the max such pos, unless lb belongs to this same input's own
      // output (impossible: an output cannot precede its own input).
      return fail("pinned packet " + std::to_string(id) + " at position " +
                  std::to_string(pos) +
                  " ordered before an already-externalized output at " +
                  std::to_string(lb));
    }
  }

  // Unpinned inputs need distinct free positions above their lower bounds.
  std::vector<std::uint64_t> free_positions;
  for (std::uint64_t p = 1; p <= n; ++p) {
    if (!id_at.count(p)) free_positions.push_back(p);
  }
  std::vector<std::uint64_t> demands;  // lower bounds of unpinned inputs
  for (std::size_t i = 0; i < n; ++i) {
    if (!pos_of.count(input_ids[i])) {
      demands.push_back(lower_bound_pos[i]);
    }
  }
  std::sort(demands.begin(), demands.end());
  // Greedy: the k-th smallest demand takes the k-th smallest free slot.
  for (std::size_t k = 0; k < demands.size(); ++k) {
    if (free_positions[k] <= demands[k]) {
      return fail("no serial order: an unobserved input cannot be placed "
                  "after all outputs that preceded it");
    }
  }
  return true;
}

bool BruteForceCheck(
    const std::vector<HistoryEvent>& history,
    const std::function<std::uint64_t(std::size_t)>& program) {
  std::vector<std::uint64_t> input_ids;
  std::unordered_map<std::uint64_t, std::size_t> arrival;  // id -> event idx
  struct Out {
    std::uint64_t id;
    std::size_t event_idx;
    std::uint64_t value;
  };
  std::vector<Out> outputs;
  for (std::size_t i = 0; i < history.size(); ++i) {
    const HistoryEvent& e = history[i];
    if (e.kind == HistoryEvent::Kind::kInput) {
      arrival[e.packet_id] = i;
      input_ids.push_back(e.packet_id);
    } else {
      outputs.push_back({e.packet_id, i, e.value});
    }
  }
  const std::size_t n = input_ids.size();
  if (n > 9) return false;  // guard: factorial search only for tiny cases

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    // S = input_ids[perm[0]], input_ids[perm[1]], ...
    std::unordered_map<std::uint64_t, std::size_t> pos;  // id -> 1-based pos
    for (std::size_t i = 0; i < n; ++i) pos[input_ids[perm[i]]] = i + 1;

    bool ok = true;
    // (1) outputs match the program run on S.
    for (const Out& o : outputs) {
      if (program(pos[o.id]) != o.value) {
        ok = false;
        break;
      }
    }
    // (2) real-time order: O_x before I_y in H => x before y in S.
    if (ok) {
      for (const Out& o : outputs) {
        for (const auto& [id, idx] : arrival) {
          if (idx > o.event_idx && pos[id] < pos[o.id]) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
    }
    if (ok) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

bool CheckBoundedStaleness(const std::vector<StalenessSample>& samples,
                           std::string* why) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const StalenessSample& s = samples[i];
    if (s.bound_ns != 0 && s.staleness_ns > s.bound_ns) {
      if (why != nullptr) {
        *why = "sample " + std::to_string(i) + " key=" +
               std::to_string(s.key) + ": locally served read was " +
               std::to_string(s.staleness_ns) + "ns stale, bound " +
               std::to_string(s.bound_ns) + "ns";
      }
      return false;
    }
  }
  return true;
}

bool CheckMergeConvergence(const std::vector<MergeSample>& samples,
                           std::string* why) {
  // Last observed measure per (replica, key), in arrival order.
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> last;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MergeSample& s = samples[i];
    auto [it, inserted] = last.try_emplace({s.component, s.key}, s.measure);
    if (!inserted) {
      if (s.measure < it->second) {
        if (why != nullptr) {
          *why = "sample " + std::to_string(i) + " key=" +
                 std::to_string(s.key) + " replica=" +
                 std::to_string(s.component) + ": measure went " +
                 std::to_string(it->second) + " -> " +
                 std::to_string(s.measure) +
                 " (merge moved down the lattice)";
        }
        return false;
      }
      it->second = s.measure;
    }
  }
  return true;
}

}  // namespace redplane::modelcheck
