#include "modelcheck/checker.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace redplane::modelcheck {

namespace {

enum MsgKind : std::uint8_t {
  kInitReq = 1,
  kInitResp = 2,
  kWriteReq = 3,
  kWriteResp = 4,
  kDeny = 5,
};

struct MCMsg {
  std::uint8_t kind = 0;
  std::uint8_t sw = 0;
  std::uint8_t seq = 0;
  /// For kInitResp: the store's remaining lease ticks at grant time (the
  /// switch adopts this, keeping its view conservative).
  std::uint8_t lease = 0;

  auto operator<=>(const MCMsg&) const = default;
};

struct SwState {
  bool up = true;
  bool has_lease = false;
  bool awaiting_grant = false;
  std::uint8_t lease_left = 0;
  std::uint8_t cur_seq = 0;
  std::uint8_t acked_seq = 0;
  std::uint8_t queued = 0;

  auto operator<=>(const SwState&) const = default;
};

constexpr std::uint8_t kNoOwner = 0xff;

struct MCState {
  std::uint8_t owner = kNoOwner;
  std::uint8_t store_lease = 0;
  std::uint8_t store_seq = 0;
  std::uint8_t to_inject = 0;
  std::uint8_t released = 0;
  std::vector<SwState> sw;
  std::vector<MCMsg> inflight;  // kept sorted: canonical multiset

  auto operator<=>(const MCState&) const = default;

  void Canonicalize() { std::sort(inflight.begin(), inflight.end()); }

  std::string Key() const {
    std::string k;
    k.reserve(8 + sw.size() * 8 + inflight.size() * 4);
    k.push_back(static_cast<char>(owner));
    k.push_back(static_cast<char>(store_lease));
    k.push_back(static_cast<char>(store_seq));
    k.push_back(static_cast<char>(to_inject));
    k.push_back(static_cast<char>(released));
    for (const SwState& s : sw) {
      k.push_back(static_cast<char>((s.up ? 1 : 0) | (s.has_lease ? 2 : 0) |
                                    (s.awaiting_grant ? 4 : 0)));
      k.push_back(static_cast<char>(s.lease_left));
      k.push_back(static_cast<char>(s.cur_seq));
      k.push_back(static_cast<char>(s.acked_seq));
      k.push_back(static_cast<char>(s.queued));
    }
    for (const MCMsg& m : inflight) {
      k.push_back(static_cast<char>(m.kind));
      k.push_back(static_cast<char>(m.sw));
      k.push_back(static_cast<char>(m.seq));
      k.push_back(static_cast<char>(m.lease));
    }
    return k;
  }
};

/// Checks the safety invariants; returns an empty string if they hold.
std::string CheckInvariants(const MCState& s, const CheckerConfig& config) {
  int active_leases = 0;
  for (std::size_t i = 0; i < s.sw.size(); ++i) {
    const SwState& sw = s.sw[i];
    if (sw.has_lease && sw.lease_left > 0) {
      ++active_leases;
      if (s.owner != static_cast<std::uint8_t>(i)) {
        return "SingleOwnerInvariant: switch " + std::to_string(i) +
               " holds an active lease but the store owner is " +
               std::to_string(s.owner);
      }
      if (sw.lease_left > s.store_lease) {
        return "SingleOwnerInvariant: switch " + std::to_string(i) +
               " lease outlives the store's";
      }
    }
    if (sw.acked_seq > s.store_seq) {
      return "DurabilityInvariant: switch " + std::to_string(i) +
             " saw ack for seq " + std::to_string(sw.acked_seq) +
             " but store has only " + std::to_string(s.store_seq);
    }
  }
  if (active_leases > 1) {
    return "SingleOwnerInvariant: " + std::to_string(active_leases) +
           " simultaneous active leases";
  }
  if (config.allow_failures) {
    int alive = 0;
    for (const SwState& sw : s.sw) alive += sw.up ? 1 : 0;
    if (alive < 1) return "AtLeastOneAliveSwitch violated";
  }
  return {};
}

}  // namespace

CheckerResult CheckProtocol(const CheckerConfig& config) {
  CheckerResult result;

  MCState init;
  init.to_inject = static_cast<std::uint8_t>(config.total_packets);
  init.sw.resize(config.num_switches);

  std::unordered_set<std::string> visited;
  std::deque<MCState> frontier;
  visited.insert(init.Key());
  frontier.push_back(init);

  auto visit = [&](MCState next) {
    next.Canonicalize();
    ++result.transitions;
    auto [it, inserted] = visited.insert(next.Key());
    (void)it;
    if (inserted) frontier.push_back(std::move(next));
  };

  while (!frontier.empty()) {
    if (visited.size() > config.max_states) {
      result.violation = "state-space bound exceeded";
      return result;
    }
    MCState s = std::move(frontier.front());
    frontier.pop_front();
    ++result.states_explored;

    const std::string inv = CheckInvariants(s, config);
    if (!inv.empty()) {
      result.violation = inv;
      return result;
    }
    if (s.to_inject == 0 && s.released == config.total_packets) {
      result.goal_reachable = true;
    }

    const int n = config.num_switches;

    // 1. Inject a packet at any up switch.
    if (s.to_inject > 0) {
      for (int i = 0; i < n; ++i) {
        if (!s.sw[i].up || s.sw[i].queued >= config.max_queued) continue;
        MCState next = s;
        --next.to_inject;
        ++next.sw[i].queued;
        visit(std::move(next));
      }
    }

    // 2. Switch steps.
    for (int i = 0; i < n; ++i) {
      const SwState& sw = s.sw[i];
      if (!sw.up) continue;
      // 2a. Request a lease for queued work.
      if (sw.queued > 0 && (!sw.has_lease || sw.lease_left == 0) &&
          !sw.awaiting_grant &&
          s.inflight.size() < static_cast<std::size_t>(config.max_inflight)) {
        MCState next = s;
        next.sw[i].awaiting_grant = true;
        next.sw[i].has_lease = false;
        next.inflight.push_back(
            {kInitReq, static_cast<std::uint8_t>(i), 0, 0});
        visit(std::move(next));
      }
      // 2b. Process a packet under an active lease: counter write.
      if (sw.queued > 0 && sw.has_lease && sw.lease_left > 0 &&
          s.inflight.size() < static_cast<std::size_t>(config.max_inflight)) {
        MCState next = s;
        --next.sw[i].queued;
        ++next.sw[i].cur_seq;
        next.inflight.push_back({kWriteReq, static_cast<std::uint8_t>(i),
                                 next.sw[i].cur_seq, 0});
        visit(std::move(next));
      }
      // 2c. Retransmit an unacknowledged write (mirror loop).
      if (sw.has_lease && sw.cur_seq > sw.acked_seq &&
          s.inflight.size() < static_cast<std::size_t>(config.max_inflight)) {
        MCState next = s;
        next.inflight.push_back(
            {kWriteReq, static_cast<std::uint8_t>(i), sw.cur_seq, 0});
        visit(std::move(next));
      }
    }

    // 3. Deliver any in-flight message (arbitrary order = reordering).
    for (std::size_t mi = 0; mi < s.inflight.size(); ++mi) {
      const MCMsg m = s.inflight[mi];
      MCState next = s;
      next.inflight.erase(next.inflight.begin() + mi);
      switch (m.kind) {
        case kInitReq: {
          const bool lease_free = next.owner == kNoOwner ||
                                  next.owner == m.sw ||
                                  next.store_lease == 0;
          if (lease_free) {
            next.owner = m.sw;
            next.store_lease = static_cast<std::uint8_t>(config.lease_period);
            next.inflight.push_back(
                {kInitResp, m.sw, next.store_seq, next.store_lease});
          } else {
            // Buffered at the store until the lease lapses: model by
            // leaving the request in flight (re-delivered later).
            next.inflight.push_back(m);
          }
          break;
        }
        case kWriteReq: {
          if (next.owner != m.sw && next.store_lease > 0) {
            next.inflight.push_back({kDeny, m.sw, next.store_seq, 0});
            break;
          }
          if (m.seq > next.store_seq) next.store_seq = m.seq;
          next.owner = m.sw;
          next.store_lease = static_cast<std::uint8_t>(config.lease_period);
          next.inflight.push_back(
              {kWriteResp, m.sw, next.store_seq, next.store_lease});
          break;
        }
        case kInitResp: {
          SwState& sw = next.sw[m.sw];
          if (sw.up && sw.awaiting_grant) {
            sw.awaiting_grant = false;
            sw.has_lease = true;
            sw.lease_left = m.lease;
            sw.cur_seq = m.seq;
            sw.acked_seq = m.seq;
          }
          break;
        }
        case kWriteResp: {
          SwState& sw = next.sw[m.sw];
          if (sw.up && sw.has_lease) {
            if (m.seq > sw.acked_seq) {
              sw.acked_seq = m.seq;
              ++next.released;  // piggybacked output leaves the system
            }
            sw.lease_left = std::max(sw.lease_left, m.lease);
          }
          break;
        }
        case kDeny: {
          SwState& sw = next.sw[m.sw];
          sw.has_lease = false;
          sw.lease_left = 0;
          break;
        }
      }
      if (next.inflight.size() <=
          static_cast<std::size_t>(config.max_inflight)) {
        visit(std::move(next));
      }
    }

    // 4. Drop any in-flight message.
    if (config.allow_drops) {
      for (std::size_t mi = 0; mi < s.inflight.size(); ++mi) {
        MCState next = s;
        next.inflight.erase(next.inflight.begin() + mi);
        visit(std::move(next));
      }
    }

    // 5. Lease timer tick: all positive lease counters decrement together —
    // including lease values carried by in-flight grants.  (The lease a
    // response conveys is anchored at the store's grant instant; time spent
    // in flight must count against it, exactly as the implementation's
    // send-time-based expiry accounting does.  Without this aging a switch
    // could adopt a lease longer than the store's remaining one.)
    {
      bool any = s.store_lease > 0;
      for (const SwState& sw : s.sw) any = any || sw.lease_left > 0;
      for (const MCMsg& m : s.inflight) any = any || m.lease > 0;
      if (any) {
        MCState next = s;
        if (next.store_lease > 0) --next.store_lease;
        if (next.store_lease == 0) next.owner = kNoOwner;
        for (SwState& sw : next.sw) {
          if (sw.lease_left > 0) --sw.lease_left;
        }
        for (MCMsg& m : next.inflight) {
          if (m.lease > 0) --m.lease;
        }
        visit(std::move(next));
      }
    }

    // 6. Failures and recoveries.
    if (config.allow_failures) {
      int alive = 0;
      for (const SwState& sw : s.sw) alive += sw.up ? 1 : 0;
      for (int i = 0; i < n; ++i) {
        if (s.sw[i].up && alive > 1) {
          MCState next = s;
          // Fail-stop: all volatile state (lease view, seqs, queue) lost.
          next.sw[i] = SwState{};
          next.sw[i].up = false;
          visit(std::move(next));
        } else if (!s.sw[i].up) {
          MCState next = s;
          next.sw[i].up = true;
          visit(std::move(next));
        }
      }
    }
  }

  result.ok = true;
  return result;
}

}  // namespace redplane::modelcheck
