#include "baselines/rollback.h"

namespace redplane::baselines {

RollbackPipeline::RollbackPipeline(dp::SwitchNode& node, core::SwitchApp& app,
                                   std::size_t max_queued_logs)
    : node_(node), app_(app), max_queued_logs_(max_queued_logs) {
  stats_.set_component(node.name() + "/rollback");
  app_pkts_ = stats_.RegisterCounter("app_pkts");
}

void RollbackPipeline::Process(dp::SwitchContext& ctx, net::Packet pkt) {
  const auto key = app_.KeyOf(pkt);
  if (!key.has_value()) {
    ctx.Forward(std::move(pkt));
    return;
  }
  // Attempt to log via the control-plane channel; shed when it is saturated.
  if (node_.control_plane().Pending() < max_queued_logs_) {
    net::Packet copy = pkt;
    node_.control_plane().Submit(pkt.WireSize(),
                                 [this, c = std::move(copy)]() mutable {
                                   log_.push_back(std::move(c));
                                   ++logged_;
                                 });
  } else {
    ++not_logged_;
  }

  core::AppContext actx;
  actx.now = ctx.Now();
  actx.switch_ip = node_.ip();
  auto& state = state_[*key];
  core::ProcessResult result = app_.Process(actx, std::move(pkt), state);
  app_pkts_.Add();
  for (auto& out : result.outputs) {
    ctx.Forward(std::move(out));
  }
}

std::unordered_map<net::PartitionKey, std::vector<std::byte>>
RollbackPipeline::Replay(core::SwitchApp& fresh_app) const {
  std::unordered_map<net::PartitionKey, std::vector<std::byte>> rebuilt;
  core::AppContext actx;
  for (const net::Packet& pkt : log_) {
    const auto key = fresh_app.KeyOf(pkt);
    if (!key.has_value()) continue;
    fresh_app.Process(actx, pkt, rebuilt[*key]);
  }
  return rebuilt;
}

void RollbackPipeline::Reset() {
  state_.clear();
  app_.Reset();
}

}  // namespace redplane::baselines
