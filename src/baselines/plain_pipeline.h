// Non-fault-tolerant in-switch application harness ("Switch-NAT" et al.).
//
// Runs a SwitchApp directly on the switch with purely local per-flow state.
// New flows get their state from a local initializer (e.g. a switch-local
// NAT port pool); when the app keeps state in match tables the install goes
// through the control plane (the paper's Switch-NAT tail latency).  On
// switch failure all state is simply lost — the problem RedPlane exists to
// fix, and the baseline every experiment compares against.
#pragma once

#include <functional>
#include <unordered_map>

#include "obs/metrics.h"
#include "core/app.h"
#include "dataplane/pipeline.h"

namespace redplane::baselines {

class PlainAppPipeline : public dp::PipelineHandler {
 public:
  /// `initializer` produces initial state for a new partition (may be null:
  /// new flows start with empty state).
  PlainAppPipeline(dp::SwitchNode& node, core::SwitchApp& app,
                   std::function<std::vector<std::byte>(
                       const net::PartitionKey&)> initializer = nullptr);

  void Process(dp::SwitchContext& ctx, net::Packet pkt) override;
  void Reset() override;

  obs::MetricRegistry& stats() { return stats_; }
  std::size_t NumFlows() const { return state_.size(); }

 private:
  struct Entry {
    std::vector<std::byte> state;
    bool installed = false;
    bool install_pending = false;
  };

  void RunApp(dp::SwitchContext& ctx, Entry& entry, net::Packet pkt);

  dp::SwitchNode& node_;
  core::SwitchApp& app_;
  std::function<std::vector<std::byte>(const net::PartitionKey&)> initializer_;
  std::unordered_map<net::PartitionKey, Entry> state_;
  obs::MetricRegistry stats_;

  /// Typed handles into stats_ (registered once at construction).
  struct Metrics {
    obs::Counter app_pkts;
    obs::Counter state_writes;
    obs::Counter cp_installs;
    obs::Counter install_pending_drops;
  };
  Metrics m_;
};

}  // namespace redplane::baselines
