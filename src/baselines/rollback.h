// Rollback-recovery baseline (FTMB-style, §2.2 / Fig. 2b).
//
// Logs every packet to an external controller so traffic can be replayed on
// a replacement after failure.  On a hardware switch the only path to the
// logger is the ASIC-to-CPU PCIe channel, whose bandwidth is orders of
// magnitude below the data rate — so at line rate the log drops packets and
// replay reconstructs the wrong state.  This pipeline quantifies exactly
// that: it forwards traffic normally, attempts to log each packet through
// the control plane, and counts how many log entries the channel had to
// shed.  The replay check in the tests shows the resulting state divergence.
#pragma once

#include <deque>

#include "obs/metrics.h"
#include "core/app.h"
#include "dataplane/pipeline.h"

namespace redplane::baselines {

class RollbackPipeline : public dp::PipelineHandler {
 public:
  /// `max_queued_logs` models the bounded DMA ring toward the CPU; packets
  /// that find it full are forwarded but not logged (the §2.2 failure).
  RollbackPipeline(dp::SwitchNode& node, core::SwitchApp& app,
                   std::size_t max_queued_logs = 1024);

  void Process(dp::SwitchContext& ctx, net::Packet pkt) override;
  void Reset() override;

  /// Replays the captured log through a fresh app instance and returns the
  /// reconstructed per-partition state (what a replacement switch would
  /// recover).  Compare against the live state to measure divergence.
  std::unordered_map<net::PartitionKey, std::vector<std::byte>> Replay(
      core::SwitchApp& fresh_app) const;

  std::uint64_t packets_logged() const { return logged_; }
  std::uint64_t packets_not_logged() const { return not_logged_; }
  obs::MetricRegistry& stats() { return stats_; }

 private:
  dp::SwitchNode& node_;
  core::SwitchApp& app_;
  std::size_t max_queued_logs_;
  std::unordered_map<net::PartitionKey, std::vector<std::byte>> state_;
  /// The controller-side log (successfully transferred packets).
  std::vector<net::Packet> log_;
  std::uint64_t logged_ = 0;
  std::uint64_t not_logged_ = 0;
  obs::MetricRegistry stats_;
  obs::Counter app_pkts_;
};

}  // namespace redplane::baselines
