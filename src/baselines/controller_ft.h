// Controller-based fault tolerance ("FT Switch-NAT w/ controller").
//
// Emulates SDN-controller approaches (Ravana, Morpheus): every state change
// is synchronously committed to an external controller — itself chain
// replicated — over the slow management network, before the affected packet
// proceeds.  New-flow installs therefore pay control-plane PCIe + management
// RTT + controller-chain latency, which is what pushes the paper's 99th
// percentile to ~185 µs (§7.1), and the §2.2 checkpoint discussion shows why
// the data-to-control bandwidth makes per-packet versions unusable.
#pragma once

#include <functional>
#include <unordered_map>

#include "obs/metrics.h"
#include "core/app.h"
#include "dataplane/pipeline.h"
#include "sim/host.h"

namespace redplane::baselines {

/// The external controller: stores committed switch state; replies after a
/// configurable commit latency covering its own replication (e.g. a 3-node
/// chain over the management network).
class ControllerNode : public sim::Node {
 public:
  ControllerNode(sim::Simulator& sim, NodeId id, std::string name,
                 SimDuration commit_latency)
      : Node(sim, id, std::move(name)), commit_latency_(commit_latency) {
    commits_received_ = counters().RegisterCounter("commits_received");
  }

  /// Called by a pipeline when its synchronous commit round trip lands.
  void NoteCommitReceived() { commits_received_.Add(); }

  void HandlePacket(net::Packet pkt, PortId in_port) override;

  /// Committed state, for failover restoration and tests.
  const std::unordered_map<net::PartitionKey, std::vector<std::byte>>&
  committed() const {
    return committed_;
  }
  std::uint64_t commits() const { return commits_; }

  /// Management-plane write-back (used by the pipeline's async refresh).
  void CommitDirect(const net::PartitionKey& key,
                    std::vector<std::byte> state) {
    committed_[key] = std::move(state);
    ++commits_;
  }

 private:
  SimDuration commit_latency_;
  std::unordered_map<net::PartitionKey, std::vector<std::byte>> committed_;
  std::uint64_t commits_ = 0;
  obs::Counter commits_received_;
};

class ControllerFtPipeline : public dp::PipelineHandler {
 public:
  /// `mgmt_rtt` models the 1 Gbps management network round trip between the
  /// switch CPU and the controller.
  ControllerFtPipeline(dp::SwitchNode& node, core::SwitchApp& app,
                       ControllerNode& controller, SimDuration mgmt_rtt,
                       std::function<std::vector<std::byte>(
                           const net::PartitionKey&)> initializer = nullptr);

  void Process(dp::SwitchContext& ctx, net::Packet pkt) override;
  void Reset() override;

  /// Restores committed state from the controller (failover onto a new
  /// switch).  Returns the number of partitions restored.
  std::size_t RestoreFromController();

  obs::MetricRegistry& stats() { return stats_; }

 private:
  struct Entry {
    std::vector<std::byte> state;
    bool committed = false;
  };

  void RunApp(dp::SwitchContext& ctx, const net::PartitionKey& key,
              Entry& entry, net::Packet pkt);

  dp::SwitchNode& node_;
  core::SwitchApp& app_;
  ControllerNode& controller_;
  SimDuration mgmt_rtt_;
  std::function<std::vector<std::byte>(const net::PartitionKey&)> initializer_;
  std::unordered_map<net::PartitionKey, Entry> state_;
  obs::MetricRegistry stats_;

  /// Typed handles into stats_ (registered once at construction).
  struct Metrics {
    obs::Counter app_pkts;
    obs::Counter controller_commits;
    obs::Counter controller_refreshes;
    obs::Counter commit_pending_drops;
  };
  Metrics m_;
};

}  // namespace redplane::baselines
