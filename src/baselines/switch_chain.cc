#include "baselines/switch_chain.h"

#include "core/protocol.h"

namespace redplane::baselines {

SwitchChainPipeline::SwitchChainPipeline(dp::SwitchNode& node,
                                         core::SwitchApp& app,
                                         std::optional<net::Ipv4Addr> next_hop_ip,
                                         std::uint16_t chain_port)
    : node_(node),
      app_(app),
      next_hop_ip_(next_hop_ip),
      chain_port_(chain_port) {
  stats_.set_component(node.name() + "/chain");
  m_.app_pkts = stats_.RegisterCounter("app_pkts");
  m_.chain_updates_sent = stats_.RegisterCounter("chain_updates_sent");
  m_.chain_updates_applied = stats_.RegisterCounter("chain_updates_applied");
  m_.malformed_chain_updates =
      stats_.RegisterCounter("malformed_chain_updates");
}

void SwitchChainPipeline::Process(dp::SwitchContext& ctx, net::Packet pkt) {
  if (pkt.IsUdpTo(chain_port_)) {
    if (pkt.ip.has_value() && pkt.ip->dst == node_.ip()) {
      ApplyChainUpdate(ctx, std::move(pkt));
    } else {
      ctx.Forward(std::move(pkt));  // transit chain traffic
    }
    return;
  }

  const auto key = app_.KeyOf(pkt);
  if (!key.has_value()) {
    ctx.Forward(std::move(pkt));
    return;
  }
  core::AppContext actx;
  actx.now = ctx.Now();
  actx.switch_ip = node_.ip();
  auto& state = state_[*key];
  core::ProcessResult result = app_.Process(actx, std::move(pkt), state);
  m_.app_pkts.Add();

  if (result.state_modified && next_hop_ip_.has_value()) {
    // Forward the update (and the withheld output) down the chain; the
    // tail releases it.  There is no ack and no retransmission — the data
    // plane has neither — so a drop on the inter-switch link silently
    // desynchronizes the replicas.
    core::Msg update;
    update.type = core::MsgType::kLeaseRenewReq;
    update.key = *key;
    update.state = state;
    if (!result.outputs.empty()) {
      update.piggyback = std::move(result.outputs.front());
    }
    net::Packet chain_pkt =
        core::MakeProtocolPacket(node_.ip(), *next_hop_ip_, update);
    chain_pkt.udp->dst_port = chain_port_;
    chain_pkt.udp->src_port = chain_port_;
    m_.chain_updates_sent.Add();
    ctx.Forward(std::move(chain_pkt));
    return;
  }

  for (auto& out : result.outputs) {
    ctx.Forward(std::move(out));
  }
}

void SwitchChainPipeline::ApplyChainUpdate(dp::SwitchContext& ctx,
                                           net::Packet pkt) {
  auto msg = core::MsgView::Parse(pkt.payload);
  if (!msg.has_value()) {
    m_.malformed_chain_updates.Add();
    return;
  }
  state_[msg->key()] = msg->state().ToVector();
  m_.chain_updates_applied.Add();
  if (next_hop_ip_.has_value()) {
    // Forward the received bytes verbatim — the replica never re-encodes.
    net::Packet fwd =
        core::MakeProtocolPacketRaw(node_.ip(), *next_hop_ip_, msg->bytes());
    fwd.udp->dst_port = chain_port_;
    fwd.udp->src_port = chain_port_;
    ctx.Forward(std::move(fwd));
    return;
  }
  // Tail: the update is replicated everywhere; release the output (parsed
  // here for the first time — transit hops never touched it).
  if (msg->has_piggyback()) {
    if (auto piggy = msg->PiggybackPacket()) {
      ctx.Forward(std::move(*piggy));
    } else {
      m_.malformed_chain_updates.Add();
    }
  }
}

std::size_t SwitchChainPipeline::ReplicaStateBytes() const {
  std::size_t total = 0;
  for (const auto& [key, bytes] : state_) {
    total += sizeof(key) + bytes.size();
  }
  return total;
}

void SwitchChainPipeline::Reset() {
  state_.clear();
  app_.Reset();
}

}  // namespace redplane::baselines
