#include "baselines/plain_pipeline.h"

namespace redplane::baselines {

PlainAppPipeline::PlainAppPipeline(
    dp::SwitchNode& node, core::SwitchApp& app,
    std::function<std::vector<std::byte>(const net::PartitionKey&)>
        initializer)
    : node_(node), app_(app), initializer_(std::move(initializer)) {
  stats_.set_component(node.name() + "/plain");
  m_.app_pkts = stats_.RegisterCounter("app_pkts");
  m_.state_writes = stats_.RegisterCounter("state_writes");
  m_.cp_installs = stats_.RegisterCounter("cp_installs");
  m_.install_pending_drops = stats_.RegisterCounter("install_pending_drops");
}

void PlainAppPipeline::Process(dp::SwitchContext& ctx, net::Packet pkt) {
  const auto key = app_.KeyOf(pkt);
  if (!key.has_value()) {
    ctx.Forward(std::move(pkt));
    return;
  }
  auto [it, inserted] = state_.try_emplace(*key);
  Entry& entry = it->second;

  if (inserted) {
    if (initializer_) entry.state = initializer_(*key);
    if (app_.StateInMatchTable()) {
      // Table-backed state must be installed by the switch CPU before the
      // data plane can use it; the first packet waits for that install.
      entry.install_pending = true;
      m_.cp_installs.Add();
      node_.control_plane().Submit(
          entry.state.size() + 64,
          [this, key = *key, pkt = std::move(pkt)]() mutable {
            auto eit = state_.find(key);
            if (eit == state_.end()) return;
            eit->second.installed = true;
            eit->second.install_pending = false;
            node_.Recirculate([this, key, p = std::move(pkt)](
                                  dp::SwitchContext& rctx) mutable {
              auto it2 = state_.find(key);
              if (it2 == state_.end()) return;
              RunApp(rctx, it2->second, std::move(p));
            });
          });
      return;
    }
    entry.installed = true;
  }

  if (entry.install_pending) {
    // A burst arrived before the control plane finished; without RedPlane's
    // network buffering the switch can only drop (or punt) these.
    m_.install_pending_drops.Add();
    ctx.Drop(pkt);
    return;
  }
  RunApp(ctx, entry, std::move(pkt));
}

void PlainAppPipeline::RunApp(dp::SwitchContext& ctx, Entry& entry,
                              net::Packet pkt) {
  core::AppContext actx;
  actx.now = ctx.Now();
  actx.switch_ip = node_.ip();
  core::ProcessResult result = app_.Process(actx, std::move(pkt), entry.state);
  m_.app_pkts.Add();
  if (result.state_modified) m_.state_writes.Add();
  for (auto& out : result.outputs) {
    ctx.Forward(std::move(out));
  }
}

void PlainAppPipeline::Reset() {
  state_.clear();
  app_.Reset();
}

}  // namespace redplane::baselines
