// Server-based network function ("Server-NAT", "FT Server-NAT").
//
// Runs a SwitchApp on a commodity server instead of the switch: traffic is
// explicitly routed to the server, processed in software (per-packet CPU
// service time + NIC latency), and sent back out — the extra hops and
// software path give the 7–14x median latency penalty of §7.1.  The
// fault-tolerant variant synchronously replicates every state change to
// peer servers (chain replication) before releasing the packet, as software
// middlebox HA systems do.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "core/app.h"
#include "sim/host.h"

namespace redplane::baselines {

struct ServerNfConfig {
  /// Per-packet software processing time (poll-mode driver + NF logic).
  SimDuration service_time = Microseconds(4);
  /// NIC + PCIe traversal each way.
  SimDuration nic_latency = Microseconds(2);
  /// Latency to synchronously replicate one update to the peer group; 0
  /// disables fault tolerance (plain Server-NF).
  SimDuration replication_latency = 0;
};

class ServerNfNode : public sim::Node {
 public:
  ServerNfNode(sim::Simulator& sim, NodeId id, std::string name,
               net::Ipv4Addr ip, core::SwitchApp& app,
               ServerNfConfig config = {},
               std::function<std::vector<std::byte>(const net::PartitionKey&)>
                   initializer = nullptr);

  net::Ipv4Addr ip() const { return ip_; }

  void HandlePacket(net::Packet pkt, PortId in_port) override;

  obs::MetricRegistry& stats() { return stats_; }

 private:
  void RunApp(net::Packet pkt);

  net::Ipv4Addr ip_;
  core::SwitchApp& app_;
  ServerNfConfig config_;
  std::function<std::vector<std::byte>(const net::PartitionKey&)> initializer_;
  std::unordered_map<net::PartitionKey, std::vector<std::byte>> state_;
  SimTime busy_until_ = 0;
  obs::MetricRegistry stats_;

  /// Typed handles into stats_ (registered once at construction).
  struct Metrics {
    obs::Counter app_pkts;
    obs::Counter replications;
  };
  Metrics m_;
};

}  // namespace redplane::baselines
