#include "baselines/server_nf.h"

#include <algorithm>

namespace redplane::baselines {

ServerNfNode::ServerNfNode(
    sim::Simulator& sim, NodeId id, std::string name, net::Ipv4Addr ip,
    core::SwitchApp& app, ServerNfConfig config,
    std::function<std::vector<std::byte>(const net::PartitionKey&)>
        initializer)
    : Node(sim, id, std::move(name)),
      ip_(ip),
      app_(app),
      config_(config),
      initializer_(std::move(initializer)) {
  stats_.set_component(this->name() + "/nf");
  m_.app_pkts = stats_.RegisterCounter("app_pkts");
  m_.replications = stats_.RegisterCounter("replications");
}

void ServerNfNode::HandlePacket(net::Packet pkt, PortId in_port) {
  (void)in_port;
  if (!IsUp()) return;
  // NIC ingress, then FIFO CPU service.
  const SimTime ready = sim_.Now() + config_.nic_latency;
  const SimTime start = std::max(ready, busy_until_);
  busy_until_ = start + config_.service_time;
  sim_.ScheduleAt(busy_until_,
                  [this, p = std::move(pkt)]() mutable { RunApp(std::move(p)); });
}

void ServerNfNode::RunApp(net::Packet pkt) {
  const auto key = app_.KeyOf(pkt);
  if (!key.has_value()) {
    SendTo(0, std::move(pkt));
    return;
  }
  auto [it, inserted] = state_.try_emplace(*key);
  if (inserted && initializer_) {
    it->second = initializer_(*key);
  }
  core::AppContext actx;
  actx.now = sim_.Now();
  actx.switch_ip = ip_;
  core::ProcessResult result =
      app_.Process(actx, std::move(pkt), it->second);
  m_.app_pkts.Add();

  const bool must_replicate =
      (result.state_modified || inserted) && config_.replication_latency > 0;
  const SimDuration release_delay =
      config_.nic_latency +
      (must_replicate ? config_.replication_latency : 0);
  if (must_replicate) m_.replications.Add();

  for (auto& out : result.outputs) {
    sim_.Schedule(release_delay, [this, o = std::move(out)]() mutable {
      SendTo(0, std::move(o));
    });
  }
}

}  // namespace redplane::baselines
