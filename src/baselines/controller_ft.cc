#include "baselines/controller_ft.h"

#include "core/protocol.h"

namespace redplane::baselines {

void ControllerNode::HandlePacket(net::Packet pkt, PortId in_port) {
  (void)in_port;
  if (!core::IsProtocolPacket(pkt)) return;
  auto msg = core::DecodeFromPacket(pkt);
  if (!msg.has_value()) return;
  // Commit after the internal replication latency, then ack.
  sim_.Schedule(commit_latency_, [this, m = std::move(*msg)]() {
    committed_[m.key] = m.state;
    ++commits_;
    core::Msg ack;
    ack.type = core::MsgType::kAck;
    ack.ack = core::AckKind::kWriteAck;
    ack.key = m.key;
    ack.seq = m.seq;
    ack.piggyback = m.piggyback;
    SendTo(0, core::MakeProtocolPacket(net::Ipv4Addr(), m.reply_to, ack));
  });
}

ControllerFtPipeline::ControllerFtPipeline(
    dp::SwitchNode& node, core::SwitchApp& app, ControllerNode& controller,
    SimDuration mgmt_rtt,
    std::function<std::vector<std::byte>(const net::PartitionKey&)>
        initializer)
    : node_(node),
      app_(app),
      controller_(controller),
      mgmt_rtt_(mgmt_rtt),
      initializer_(std::move(initializer)) {
  stats_.set_component(node.name() + "/ctrl_ft");
  m_.app_pkts = stats_.RegisterCounter("app_pkts");
  m_.controller_commits = stats_.RegisterCounter("controller_commits");
  m_.controller_refreshes = stats_.RegisterCounter("controller_refreshes");
  m_.commit_pending_drops = stats_.RegisterCounter("commit_pending_drops");
}

void ControllerFtPipeline::Process(dp::SwitchContext& ctx, net::Packet pkt) {
  const auto key = app_.KeyOf(pkt);
  if (!key.has_value()) {
    ctx.Forward(std::move(pkt));
    return;
  }
  auto [it, inserted] = state_.try_emplace(*key);
  Entry& entry = it->second;

  if (inserted) {
    if (initializer_) entry.state = initializer_(*key);
    // New state commits to the controller synchronously: PCIe to the switch
    // CPU, management network to the controller, controller replication,
    // and back.  The first packet waits for the full chain.
    m_.controller_commits.Add();
    node_.control_plane().Submit(
        entry.state.size() + 64, [this, key = *key, pkt = std::move(pkt)]() mutable {
          node_.sim().Schedule(mgmt_rtt_, [this, key, p = std::move(pkt)]() mutable {
            auto eit = state_.find(key);
            if (eit == state_.end()) return;
            controller_.NoteCommitReceived();
            eit->second.committed = true;
            node_.Recirculate([this, key, p2 = std::move(p)](
                                  dp::SwitchContext& rctx) mutable {
              auto it2 = state_.find(key);
              if (it2 == state_.end()) return;
              RunApp(rctx, key, it2->second, std::move(p2));
            });
          });
        });
    return;
  }

  if (!entry.committed) {
    m_.commit_pending_drops.Add();
    ctx.Drop(pkt);
    return;
  }
  RunApp(ctx, *key, entry, std::move(pkt));
}

void ControllerFtPipeline::RunApp(dp::SwitchContext& ctx,
                                  const net::PartitionKey& key, Entry& entry,
                                  net::Packet pkt) {
  core::AppContext actx;
  actx.now = ctx.Now();
  actx.switch_ip = node_.ip();
  core::ProcessResult result = app_.Process(actx, std::move(pkt), entry.state);
  m_.app_pkts.Add();
  if (result.state_modified) {
    // Asynchronously refresh the controller copy (write-back).  The paper's
    // controller approaches cannot do this per packet at line rate; the
    // rollback baseline demonstrates that failure mode.
    m_.controller_refreshes.Add();
    node_.sim().Schedule(mgmt_rtt_, [this, key, state = entry.state]() mutable {
      controller_.CommitDirect(key, std::move(state));
    });
  }
  for (auto& out : result.outputs) {
    ctx.Forward(std::move(out));
  }
}

std::size_t ControllerFtPipeline::RestoreFromController() {
  std::size_t restored = 0;
  for (const auto& [key, bytes] : controller_.committed()) {
    Entry entry;
    entry.state = bytes;
    entry.committed = true;
    state_[key] = entry;
    ++restored;
  }
  return restored;
}

void ControllerFtPipeline::Reset() {
  state_.clear();
  app_.Reset();
}

}  // namespace redplane::baselines
