// Chain replication across switch data planes (§2.2 / Fig. 2c).
//
// State updates replicate hop by hop between switches entirely in the data
// plane: a state-updating packet traverses head -> ... -> tail, each switch
// applying the update, and only the tail releases it.  This keeps up with
// line rate but has the three §2.2 flaws the tests demonstrate: inter-switch
// links are unreliable, so a lost chain hop silently diverges the replicas
// (no retransmission exists in the data plane); every replica burns scarce
// switch SRAM for the same state; and routing must steer updating packets
// through the chain explicitly.
#pragma once

#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "core/app.h"
#include "dataplane/pipeline.h"

namespace redplane::baselines {

class SwitchChainPipeline : public dp::PipelineHandler {
 public:
  /// `next_hop_ip` is the successor switch's address (unset for the tail).
  /// Chain-internal updates are carried as UDP packets to `chain_port`.
  SwitchChainPipeline(dp::SwitchNode& node, core::SwitchApp& app,
                      std::optional<net::Ipv4Addr> next_hop_ip,
                      std::uint16_t chain_port = 5199);

  void Process(dp::SwitchContext& ctx, net::Packet pkt) override;
  void Reset() override;

  /// Replica state, for divergence checks in tests.
  const std::unordered_map<net::PartitionKey, std::vector<std::byte>>& state()
      const {
    return state_;
  }

  /// SRAM consumed by this replica's copy of the state (every chain member
  /// pays this; the resource-overhead flaw of the approach).
  std::size_t ReplicaStateBytes() const;

  obs::MetricRegistry& stats() { return stats_; }

 private:
  void ApplyChainUpdate(dp::SwitchContext& ctx, net::Packet pkt);

  dp::SwitchNode& node_;
  core::SwitchApp& app_;
  std::optional<net::Ipv4Addr> next_hop_ip_;
  std::uint16_t chain_port_;
  std::unordered_map<net::PartitionKey, std::vector<std::byte>> state_;
  obs::MetricRegistry stats_;

  /// Typed handles into stats_ (registered once at construction).
  struct Metrics {
    obs::Counter app_pkts;
    obs::Counter chain_updates_sent;
    obs::Counter chain_updates_applied;
    obs::Counter malformed_chain_updates;
  };
  Metrics m_;
};

}  // namespace redplane::baselines
