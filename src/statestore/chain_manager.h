// Chain reconfiguration for the state store.
//
// The paper delegates store fault tolerance to "conventional mechanisms"
// (chain replication with a group of 3); this module supplies the
// conventional mechanism's control side: a manager that monitors replica
// liveness, and on a failure splices the chain around the dead replica
// (van Renesse & Schneider's three cases):
//
//  * head failure  — the successor becomes the new head; switches reach the
//    store through a dynamic head lookup, so their next request lands on it,
//  * middle failure — the predecessor adopts the successor, after resyncing
//    it with any updates the dead replica may have swallowed (modeled as a
//    management-plane state copy from the predecessor),
//  * tail failure  — the predecessor becomes the tail (and starts
//    answering switches).
//
// A recovered (or fresh) replica rejoins as the new tail after a resync
// from the current tail.  Requests in flight across a reconfiguration can
// be lost; RedPlane's switch-side retransmission makes that indistinguishable
// from packet loss, which the protocol already tolerates.
#pragma once

#include <vector>

#include "sim/simulator.h"
#include "statestore/server.h"

namespace redplane::store {

struct ChainManagerConfig {
  /// How often the manager probes replica health.
  SimDuration probe_interval = Milliseconds(10);
  /// Time to copy a replica's state to a (re)joining one.
  SimDuration resync_delay = Milliseconds(5);
  /// Whether recovered replicas are re-admitted as tails.
  bool readmit_recovered = true;
};

class ChainManager {
 public:
  /// `replicas` is the initial chain order (head first).  The manager wires
  /// their successor/head roles; do not call SetChainSuccessor manually.
  ChainManager(sim::Simulator& sim, std::vector<StateStoreServer*> replicas,
               ChainManagerConfig config = {});

  /// Begins periodic health probing.
  void Start();

  /// The address switches should send requests to right now.  Pass
  /// `[&mgr](const PartitionKey&) { return mgr.HeadIp(); }` as the
  /// RedPlaneSwitch shard function for reconfiguration-transparent routing.
  net::Ipv4Addr HeadIp() const;

  /// Live replicas in chain order.
  const std::vector<StateStoreServer*>& ActiveChain() const { return active_; }

  /// Number of reconfigurations performed.
  std::uint64_t reconfigurations() const { return reconfigurations_; }

  /// Forces an immediate health check (tests).
  void CheckNow() { Probe(); }

 private:
  void Probe();
  void Rewire();
  void Readmit(StateStoreServer* replica);
  /// Publishes each resynced record as durable-by-resync to the auditor
  /// (a rejoining replica's records are commit evidence, not re-applies).
  void EmitResyncCommits(
      const std::unordered_map<net::PartitionKey, FlowRecord>& flows);

  sim::Simulator& sim_;
  ChainManagerConfig config_;
  audit::TapHandle atap_{"chain_mgr"};
  std::vector<StateStoreServer*> all_;
  std::vector<StateStoreServer*> active_;
  std::uint64_t reconfigurations_ = 0;
  bool started_ = false;
  /// Replicas currently being resynced (excluded from the chain).
  std::vector<StateStoreServer*> rejoining_;
};

}  // namespace redplane::store
