#include "statestore/chain_manager.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "obs/profiler.h"

namespace redplane::store {

namespace {
obs::ProfSite g_prof_probe("chain_mgr.probe");
obs::ProfSite g_prof_rewire("chain_mgr.rewire");
}  // namespace

ChainManager::ChainManager(sim::Simulator& sim,
                           std::vector<StateStoreServer*> replicas,
                           ChainManagerConfig config)
    : sim_(sim), config_(config), all_(replicas), active_(std::move(replicas)) {
  assert(!active_.empty());
  Rewire();
}

void ChainManager::Start() {
  if (started_) return;
  started_ = true;
  sim_.Schedule(config_.probe_interval, [this]() {
    Probe();
    started_ = false;
    Start();
  });
}

net::Ipv4Addr ChainManager::HeadIp() const {
  return active_.empty() ? net::Ipv4Addr() : active_.front()->ip();
}

void ChainManager::Rewire() {
  obs::ProfScope prof(g_prof_rewire);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    active_[i]->SetIsHead(i == 0);
    if (i + 1 < active_.size()) {
      active_[i]->SetChainSuccessor(active_[i + 1]->ip());
    } else {
      active_[i]->ClearChainSuccessor();  // the last replica is the tail
    }
  }
}

void ChainManager::Probe() {
  obs::ProfScope prof(g_prof_probe);
  // Detect failed replicas and splice them out.
  std::vector<StateStoreServer*> survivors;
  survivors.reserve(active_.size());
  bool changed = false;
  for (StateStoreServer* replica : active_) {
    if (replica->IsUp()) {
      survivors.push_back(replica);
    } else {
      changed = true;
      RP_LOG(kInfo) << "chain manager: replica " << replica->name()
                    << " failed; splicing out";
    }
  }
  if (changed) {
    active_ = std::move(survivors);
    ++reconfigurations_;
    Rewire();
    if (atap_.armed()) {
      atap_.Emit(audit::Tap::kChainReconfig, 0, reconfigurations_,
                 active_.size());
    }
    // The splice moved the chain's commit point: by the prefix property,
    // everything the surviving tail has applied is also present on every
    // upstream survivor, so it became chain-wide durable the instant the
    // dead suffix left the chain.  Publish that evidence synchronously —
    // the promoted tail may legally release buffered reads and acks for
    // those sequences before the deferred head-snapshot resync below
    // lands, and without this the commit monitor sees the release first.
    if (!active_.empty()) {
      EmitResyncCommits(active_.back()->ExportFlows());
    }
    // A middle/tail splice may have lost chain-internal forwards; resync
    // every surviving downstream replica from the head to restore the
    // prefix property (management-plane copy).
    if (active_.size() > 1) {
      // Snapshot the head's state once at decision time (ExportFlows is a
      // reference; the copy per target is the only one made), hand each
      // target its own copy, and move it in on delivery.
      const auto& snapshot = active_.front()->ExportFlows();
      for (std::size_t i = 1; i < active_.size(); ++i) {
        StateStoreServer* target = active_[i];
        sim_.Schedule(config_.resync_delay,
                      [this, target, copy = snapshot]() mutable {
                        if (target->IsUp()) {
                          EmitResyncCommits(copy);
                          target->ImportFlows(std::move(copy));
                        }
                      });
      }
    }
  }

  // Re-admit recovered replicas as tails.
  if (config_.readmit_recovered) {
    for (StateStoreServer* replica : all_) {
      const bool in_active =
          std::find(active_.begin(), active_.end(), replica) != active_.end();
      const bool rejoining =
          std::find(rejoining_.begin(), rejoining_.end(), replica) !=
          rejoining_.end();
      if (!in_active && !rejoining && replica->IsUp()) {
        Readmit(replica);
      }
    }
  }
}

void ChainManager::Readmit(StateStoreServer* replica) {
  rejoining_.push_back(replica);
  RP_LOG(kInfo) << "chain manager: resyncing " << replica->name()
                << " for tail re-admission";
  // Copy the current tail's state after the resync delay, then append.
  StateStoreServer* source = active_.empty() ? nullptr : active_.back();
  auto snapshot = source != nullptr
                      ? source->ExportFlows()
                      : std::unordered_map<net::PartitionKey, FlowRecord>{};
  sim_.Schedule(config_.resync_delay,
                [this, replica, snapshot = std::move(snapshot)]() mutable {
    rejoining_.erase(
        std::remove(rejoining_.begin(), rejoining_.end(), replica),
        rejoining_.end());
    if (!replica->IsUp()) return;  // died again during resync
    EmitResyncCommits(snapshot);
    replica->ImportFlows(std::move(snapshot));
    active_.push_back(replica);
    ++reconfigurations_;
    Rewire();
    if (atap_.armed()) {
      atap_.Emit(audit::Tap::kChainReconfig, 0, reconfigurations_,
                 active_.size());
    }
  });
}

void ChainManager::EmitResyncCommits(
    const std::unordered_map<net::PartitionKey, FlowRecord>& flows) {
  if (!atap_.armed()) return;
  for (const auto& [key, rec] : flows) {
    atap_.Emit(audit::Tap::kResyncCommit, net::HashPartitionKey(key),
               rec.last_applied_seq);
  }
}

}  // namespace redplane::store
