#include "statestore/pools.h"

#include <algorithm>

namespace redplane::store {

PortPool::PortPool(net::Ipv4Addr external_ip, std::uint16_t first_port,
                   std::uint16_t count)
    : external_ip_(external_ip),
      first_port_(first_port),
      capacity_(count),
      allocated_(count, false) {
  free_.reserve(count);
  // LIFO order starting from the lowest port.
  for (std::uint16_t i = count; i > 0; --i) {
    free_.push_back(static_cast<std::uint16_t>(first_port + i - 1));
  }
}

std::optional<std::uint16_t> PortPool::Allocate() {
  if (free_.empty()) return std::nullopt;
  const std::uint16_t port = free_.back();
  free_.pop_back();
  allocated_[port - first_port_] = true;
  return port;
}

void PortPool::Release(std::uint16_t port) {
  if (port < first_port_ ||
      port >= first_port_ + static_cast<std::uint16_t>(capacity_)) {
    return;
  }
  const std::size_t idx = port - first_port_;
  if (!allocated_[idx]) return;
  allocated_[idx] = false;
  free_.push_back(port);
}

void BackendPool::Add(const Backend& backend) { backends_.push_back(backend); }

std::optional<BackendPool::Backend> BackendPool::Pick() {
  if (backends_.empty()) return std::nullopt;
  if (cursor_ >= backends_.size()) cursor_ = 0;
  const Backend& chosen = backends_[cursor_];
  if (++credit_ >= chosen.weight) {
    credit_ = 0;
    cursor_ = (cursor_ + 1) % backends_.size();
  }
  return chosen;
}

void BackendPool::Remove(net::Ipv4Addr ip, std::uint16_t port) {
  backends_.erase(std::remove_if(backends_.begin(), backends_.end(),
                                 [&](const Backend& b) {
                                   return b.ip == ip && b.port == port;
                                 }),
                  backends_.end());
  if (cursor_ >= backends_.size()) cursor_ = 0;
}

}  // namespace redplane::store
