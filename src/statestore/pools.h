// Shared ("global") application state managed by the state store.
//
// Per-flow state replicates through the RedPlane protocol, but some
// applications also have state shared across flows — the NAT's pool of free
// external ports, the load balancer's pool of backend servers (§3 "Scope",
// §6).  Such state is sharded across and managed by the state-store servers:
// the store's per-application initializer consults these pools when it
// creates a flow's initial state.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/flow.h"

namespace redplane::store {

/// A pool of external (IP, port) pairs for NAT allocations.
class PortPool {
 public:
  /// Pool of `count` ports starting at `first_port` on `external_ip`.
  PortPool(net::Ipv4Addr external_ip, std::uint16_t first_port,
           std::uint16_t count);

  /// Allocates the lowest free port, or nullopt when exhausted.
  std::optional<std::uint16_t> Allocate();

  /// Returns a port to the pool.  Double-frees are ignored.
  void Release(std::uint16_t port);

  net::Ipv4Addr external_ip() const { return external_ip_; }
  std::size_t FreeCount() const { return free_.size(); }
  std::size_t Capacity() const { return capacity_; }

 private:
  net::Ipv4Addr external_ip_;
  std::uint16_t first_port_;
  std::size_t capacity_;
  std::vector<std::uint16_t> free_;  // LIFO free list
  std::vector<bool> allocated_;
};

/// A weighted-round-robin pool of backend servers for the load balancer.
class BackendPool {
 public:
  struct Backend {
    net::Ipv4Addr ip;
    std::uint16_t port = 0;
    std::uint32_t weight = 1;
  };

  void Add(const Backend& backend);

  /// Picks the next backend (weighted round robin); nullopt if empty.
  std::optional<Backend> Pick();

  /// Removes a backend (e.g. failed server); existing flow mappings are
  /// unaffected — per-flow state pins them.
  void Remove(net::Ipv4Addr ip, std::uint16_t port);

  std::size_t Size() const { return backends_.size(); }

 private:
  std::vector<Backend> backends_;
  std::size_t cursor_ = 0;
  std::uint32_t credit_ = 0;
};

}  // namespace redplane::store
