// The external state store server (§5.1.1).
//
// An in-memory key-value store partitioned by flow, with three RedPlane
// specific behaviours layered on top of plain storage:
//
//  * lease management — at most one switch owns a flow at a time; Init
//    requests for an owned flow are buffered until the lease lapses (the
//    TLA+ spec's BUFFERING branch),
//  * per-flow sequence filtering — replication requests carry monotonically
//    increasing sequence numbers and a stale sequence number is discarded
//    rather than applied (Fig. 6b); writes carry the full new state value so
//    gaps are safe to skip over,
//  * piggyback echo — the output packet riding on a replication request is
//    returned in the ack, making store memory the switch's delay line.
//
// Durability across server failures uses chain replication (group of 3 in
// the prototype): the head decides, every replica applies, and the tail
// answers the switch.  Decisions are stamped into the forwarded message so
// replicas never diverge.
//
// Zero-copy dispatch: requests are processed as `core::MsgView`s over the
// received payload buffer.  The head stamps its decision (`ack`, `seq`,
// `chain_hop`) by patching fixed-offset header fields in place, and every
// chain hop forwards the same bytes verbatim — state and piggyback are never
// re-serialized; state bytes are copied exactly once per replica, into the
// flow record.  Only cold paths (lease grants, denies, responses) build and
// encode a fresh `core::Msg`.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "audit/taps.h"
#include "core/protocol.h"
#include "net/packet.h"
#include "sim/node.h"

namespace redplane::store {

struct StoreConfig {
  /// Lease validity period granted to a switch (§5.3; 1 s in the prototype).
  SimDuration lease_period = Seconds(1);
  /// CPU time to process one request (kernel-bypass I/O; a few µs).
  SimDuration service_time = Microseconds(2);
  /// Upper bound on Init requests buffered per flow while another switch
  /// holds the lease; beyond this the store answers kLeaseDenied.
  std::size_t max_buffered_inits = 64;
  /// Optional application hook: produces the initial state for a brand-new
  /// flow (e.g. a NAT allocation from the shared port pool, §6).  When
  /// empty, new flows start with empty state.
  std::function<std::vector<std::byte>(const net::PartitionKey&)> initializer;
  /// Mergeable-mode join (DESIGN.md §14): folds an incoming kMergeDelta into
  /// the stored state.  Must match the app's StateTraits::merge; when null,
  /// deltas overwrite (only safe with a single writer).
  core::MergeFn merger = nullptr;
  /// Monotone measure of merged state, reported on the kMergeApplied tap so
  /// the merge-convergence monitor can check the join never goes down the
  /// lattice.  Null reports 0 (monitor sees a flat, trivially valid line).
  core::MeasureFn measure = nullptr;

  /// TEST-ONLY protocol mutations: deliberately broken behaviors used to
  /// prove the audit monitors detect real protocol bugs.  All must stay
  /// false in production configs.
  struct ProtocolMutations {
    /// Disables the per-flow sequence filter (Fig. 6b): a stale or duplicate
    /// write is re-applied instead of being answered from durable state.
    bool disable_seq_filter = false;
    /// The head answers writes itself instead of forwarding down the chain:
    /// acks escape before chain-wide commit.
    bool early_chain_ack = false;
    /// Applies kMergeDelta by overwriting instead of joining: a slower
    /// writer's delta erases a faster writer's contribution, so the merged
    /// measure can decrease (caught by the merge_convergence monitor).
    bool overwrite_instead_of_merge = false;
  };
  ProtocolMutations mutations;
};

/// Per-flow record held by every replica of a shard.
struct FlowRecord {
  std::vector<std::byte> state;
  std::uint64_t last_applied_seq = 0;
  /// Lease owner switch IP; 0 when unowned.
  net::Ipv4Addr owner;
  SimTime lease_expiry = 0;
  /// True once the flow has been initialized (distinguishes "new flow" from
  /// "failover to existing state", §5.1.2 cases 1 and 2).
  bool exists = false;
  /// True once the state was built by CRDT merge deltas rather than
  /// seq-ordered writes.  Resync import picks its reconciliation rule from
  /// this: mergeable records are joined with the app merge function,
  /// seq-ordered records by last_applied_seq comparison.
  bool mergeable = false;
  /// Snapshot slots for bounded-inconsistency state (index -> value, seq).
  std::map<std::uint32_t, std::pair<std::vector<std::byte>, std::uint64_t>>
      snapshot_slots;
  SimTime last_snapshot_at = 0;
  /// Replicated-read subscribers (DESIGN.md §14): switch IPs that asked for
  /// a copy of this flow's durable state on every applied write.
  std::vector<net::Ipv4Addr> subscribers;
};

class StateStoreServer : public sim::Node {
 public:
  StateStoreServer(sim::Simulator& sim, NodeId id, std::string name,
                   net::Ipv4Addr ip, StoreConfig config = {});

  net::Ipv4Addr ip() const { return ip_; }
  const StoreConfig& config() const { return config_; }

  /// Configures this replica's successor in the chain (unset = tail).
  void SetChainSuccessor(net::Ipv4Addr next) { successor_ = next; }
  /// Makes this replica the tail.
  void ClearChainSuccessor() { successor_.reset(); }
  bool IsTail() const { return !successor_.has_value(); }
  /// Marks this replica as the chain head (only the head accepts switch
  /// requests; a single stand-alone server is both head and tail).
  void SetIsHead(bool head) { is_head_ = head; }

  void HandlePacket(net::Packet pkt, PortId in_port) override;

  /// Fail-stop: going down clears the in-memory state (DRAM) and cancels
  /// queued work; a recovered replica rejoins empty and must be resynced by
  /// the chain manager before serving.
  void SetUp(bool up) override;

  /// Full state export/import, used by chain reconfiguration to resync a
  /// (re)joining replica from a live one (management-plane copy).  Export
  /// returns a reference — the caller decides if and when to copy; Import
  /// is move-only so resync transfers ownership instead of copying twice.
  ///
  /// Import JOINS the snapshot into the local table instead of overwriting
  /// it.  The snapshot is taken at reconfiguration-decision time but lands
  /// resync_delay later, racing live traffic: a survivor may have applied
  /// newer writes (or joined newer merge deltas) in that window, and a
  /// blind overwrite rolls them back — observed by the fuzz campaign as a
  /// down-the-lattice merge regression on the middle replica after a tail
  /// crash.  Per key, the record with the higher last_applied_seq wins;
  /// mergeable records are joined with the app merge function, which is
  /// idempotent so importing a stale snapshot is a no-op.
  const std::unordered_map<net::PartitionKey, FlowRecord>& ExportFlows()
      const {
    return flows_;
  }
  void ImportFlows(std::unordered_map<net::PartitionKey, FlowRecord>&& flows);

  /// Read-only access for tests and reporting.
  const FlowRecord* Find(const net::PartitionKey& key) const;
  std::size_t NumFlows() const { return flows_.size(); }

  /// Sum of wall-clock-busy time, for utilization reporting.
  SimDuration busy_time() const { return busy_time_; }

  /// --- gray-failure hooks (fuzz campaign, DESIGN.md §15) ---------------
  /// Slow shard: multiplies the per-request service time.  1.0 = nominal;
  /// the shard keeps answering, just late — the failure detector never
  /// fires, which is exactly what makes it gray.  Survives SetUp cycles
  /// (it models the environment, not the replica's DRAM).
  void SetServiceTimeFactor(double factor) {
    service_factor_ = factor < 0 ? 0.0 : factor;
  }
  double service_time_factor() const { return service_factor_; }

  /// Capacity pressure: caps the flow table.  An Init for a brand-new flow
  /// while at or above the cap is answered kLeaseDenied (the switch's
  /// give-up/retry path); existing flows keep working.  0 = unlimited.
  void SetMaxFlows(std::size_t cap) { max_flows_ = cap; }
  std::size_t max_flows() const { return max_flows_; }

 private:
  struct PendingInit {
    core::Msg msg;
  };

  void ProcessMsg(core::MsgView msg);

  /// Unpacks a batch envelope and applies its sub-messages in order through
  /// the regular per-message handlers (so every tap/trace/metric fires per
  /// sub-message), then performs one chain traversal for the whole batch:
  /// a pure replica pass forwards the received envelope bytes verbatim; the
  /// head (whose decision stamps CoW the decided subs) rebuilds the
  /// envelope once from the surviving sub views.
  void ProcessBatchEnvelope(net::BufferView frame);

  void HandleInit(core::Msg msg);
  void HandleRepl(core::MsgView msg);
  void HandleRenewOnly(core::MsgView msg);
  void HandleReadBuffer(core::MsgView msg);
  void HandleSnapshot(core::MsgView msg);
  /// Mergeable-mode delta (DESIGN.md §14): no ownership check and no
  /// sequence filter — the join is commutative and idempotent, so any
  /// interleaving (or replay) of deltas converges.
  void HandleMergeDelta(core::MsgView msg);
  /// Replicated-read subscription: registers the switch for replica pushes
  /// and answers immediately with the current durable state.
  void HandleReplicaSubscribe(core::MsgView msg);

  /// Pushes the (just-updated) durable state of `key` to every registered
  /// subscriber except `writer` (head only; DESIGN.md §14).
  void PushToSubscribers(const net::PartitionKey& key, const FlowRecord& rec,
                         net::Ipv4Addr writer, std::uint64_t span);

  /// Applies the (head-stamped) decision carried by a chain-internal
  /// message, then forwards down-chain or answers the switch.
  void ApplyAndContinue(core::MsgView msg);
  /// Same, for a locally-built message: encodes it once, then runs the
  /// view-based path (local apply + verbatim forwarding).
  void ApplyAndContinue(core::Msg&& msg);

  /// Sends `msg` to `dst` out of the server's uplink port (encodes once).
  void SendMsg(net::Ipv4Addr dst, const core::Msg& msg);
  /// Sends already-encoded protocol bytes verbatim — no copy, no encode.
  void SendRaw(net::Ipv4Addr dst, net::BufferView payload);

  /// Forwards a decided request to the successor, or answers if tail.
  void ForwardOrRespond(core::MsgView msg);

  /// Builds and sends the response for a decided request.  The request's
  /// piggyback bytes are spliced into the response without being parsed.
  void Respond(const core::MsgView& request);

  FlowRecord& GetOrCreate(const net::PartitionKey& key);
  bool LeaseActiveByOther(const FlowRecord& rec, net::Ipv4Addr requester) const;

  /// Sends a kLeaseDenied ack for `key` to `requester`, echoing the denied
  /// request's observability span id.
  void SendDeny(const net::PartitionKey& key, net::Ipv4Addr requester,
                std::uint64_t last_applied_seq, std::uint64_t span = 0);

  /// Re-examines buffered Inits for `key` (called when a lease lapses).
  void PumpPendingInits(const net::PartitionKey& key);

  /// Releases buffered reads whose awaited sequence number has been applied.
  void PumpWaitingReads(const net::PartitionKey& key);

  /// Arms the per-key lease-expiry pump timers (deduplicated: at most one
  /// pending timer per key and kind, since the blocking lease's expiry only
  /// moves forward — an early fire just re-arms).  The timer ids live in
  /// the maps below so failure cancels them instead of letting a stale
  /// lease-lapse check fire into a recovered replica.
  void ArmInitPump(const net::PartitionKey& key, SimTime at);
  void ArmReadPump(const net::PartitionKey& key, SimTime at);
  void CancelPumps();

  /// Typed handles into counters() for every hot-path counter (registered
  /// once at construction; updated O(1) per request).
  struct Metrics {
    obs::Counter non_protocol_drops;
    obs::Counter malformed_drops;
    obs::Counter misdirected_drops;
    obs::Counter unexpected_acks;
    obs::Counter failures;
    obs::Counter init_reqs;
    obs::Counter init_dedup;
    obs::Counter init_buffered;
    obs::Counter lease_denied;
    obs::Counter grants_new;
    obs::Counter grants_migrate;
    obs::Counter repl_reqs;
    obs::Counter stale_writes;
    obs::Counter renew_reqs;
    obs::Counter read_buffer_reqs;
    obs::Counter snapshot_reqs;
    obs::Counter merge_reqs;
    obs::Counter subscribe_reqs;
    obs::Counter replica_pushes_tx;
    obs::Counter reads_parked;
    obs::Counter chain_forwards;
    obs::Counter responses;
    obs::Counter batch_envelopes;
    obs::Counter batch_subs;
    obs::Counter init_bytes_rx;
    obs::Counter repl_bytes_rx;
    obs::Counter renew_bytes_rx;
    obs::Counter read_buffer_bytes_rx;
    obs::Counter snapshot_bytes_rx;
    obs::Counter merge_bytes_rx;
    obs::Counter chain_bytes_rx;
    obs::Counter batch_bytes_rx;
    obs::Counter resp_bytes_tx;
  };
  Metrics m_;

  net::Ipv4Addr ip_;
  StoreConfig config_;
  audit::TapHandle atap_;
  std::optional<net::Ipv4Addr> successor_;
  bool is_head_ = true;
  std::unordered_map<net::PartitionKey, FlowRecord> flows_;
  std::unordered_map<net::PartitionKey, std::deque<PendingInit>> pending_inits_;
  /// Parked reads keep a view of the original request buffer alive until
  /// their awaited write is durable (or the blocking lease lapses).
  std::unordered_map<net::PartitionKey, std::vector<core::MsgView>>
      waiting_reads_;
  /// Pending lease-expiry pump timers, one per key (see ArmInitPump).
  std::unordered_map<net::PartitionKey, std::uint64_t> init_pump_timers_;
  std::unordered_map<net::PartitionKey, std::uint64_t> read_pump_timers_;
  /// Effective per-request CPU cost under the slow-shard factor.
  SimDuration EffectiveServiceTime() const;

  SimTime busy_until_ = 0;
  SimDuration busy_time_ = 0;
  /// Gray-failure knobs (see SetServiceTimeFactor / SetMaxFlows).
  double service_factor_ = 1.0;
  std::size_t max_flows_ = 0;
  /// Bumped on failure so queued service completions are invalidated.
  std::uint64_t epoch_ = 0;
  /// True while ProcessBatchEnvelope drains sub-messages: ForwardOrRespond
  /// then defers chain forwarding into batch_forward_ instead of sending a
  /// packet per sub-message.
  bool in_batch_ = false;
  std::vector<net::BufferView> batch_forward_;
};

}  // namespace redplane::store
