#include "statestore/partition.h"

#include <stdexcept>

namespace redplane::store {

PartitionMap::PartitionMap(std::vector<net::Ipv4Addr> shard_ips)
    : shard_ips_(std::move(shard_ips)) {
  // A throw, not an assert: an empty shard list must be rejected in release
  // (NDEBUG) builds too, or ShardFor would divide by zero / index an empty
  // vector at some arbitrarily later lookup.
  if (shard_ips_.empty()) {
    throw std::invalid_argument("PartitionMap requires at least one shard");
  }
}

std::size_t PartitionMap::ShardIndexFor(const net::PartitionKey& key) const {
  if (shard_ips_.empty()) {
    // Reachable only via the default constructor; fail loudly rather than
    // dividing by zero.
    throw std::logic_error("PartitionMap::ShardIndexFor on an empty map");
  }
  return static_cast<std::size_t>(net::HashPartitionKey(key) %
                                  shard_ips_.size());
}

net::Ipv4Addr PartitionMap::ShardFor(const net::PartitionKey& key) const {
  return shard_ips_[ShardIndexFor(key)];
}

}  // namespace redplane::store
