#include "statestore/partition.h"

#include <cassert>

namespace redplane::store {

PartitionMap::PartitionMap(std::vector<net::Ipv4Addr> shard_ips)
    : shard_ips_(std::move(shard_ips)) {
  assert(!shard_ips_.empty());
}

std::size_t PartitionMap::ShardIndexFor(const net::PartitionKey& key) const {
  assert(!shard_ips_.empty());
  return static_cast<std::size_t>(net::HashPartitionKey(key) %
                                  shard_ips_.size());
}

net::Ipv4Addr PartitionMap::ShardFor(const net::PartitionKey& key) const {
  return shard_ips_[ShardIndexFor(key)];
}

}  // namespace redplane::store
