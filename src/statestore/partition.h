// Partitioning of flow state across state-store shards.
//
// The store is partitioned by flow key (§5.1.1); a switch finds the
// responsible shard by hashing the key and looking the result up in a
// preconfigured table (modeled here; on the switch this is an exact-match
// table indexed by hash bucket).
#pragma once

#include <vector>

#include "net/flow.h"

namespace redplane::store {

class PartitionMap {
 public:
  PartitionMap() = default;
  /// `shard_ips` lists the chain-head IP of each shard.
  explicit PartitionMap(std::vector<net::Ipv4Addr> shard_ips);

  /// The chain-head address responsible for `key`.
  net::Ipv4Addr ShardFor(const net::PartitionKey& key) const;

  /// Index of the shard responsible for `key`.
  std::size_t ShardIndexFor(const net::PartitionKey& key) const;

  std::size_t NumShards() const { return shard_ips_.size(); }
  bool Empty() const { return shard_ips_.empty(); }

 private:
  std::vector<net::Ipv4Addr> shard_ips_;
};

}  // namespace redplane::store
