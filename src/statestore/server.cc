#include "statestore/server.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "obs/profiler.h"

namespace redplane::store {

using core::AckKind;
using core::Msg;
using core::MsgType;
using core::MsgView;

namespace {
obs::ProfSite g_prof_handle_packet("store.handle_packet");
obs::ProfSite g_prof_process("store.process");
}  // namespace

StateStoreServer::StateStoreServer(sim::Simulator& sim, NodeId id,
                                   std::string name, net::Ipv4Addr ip,
                                   StoreConfig config)
    : Node(sim, id, std::move(name)), ip_(ip), config_(config) {
  atap_.SetName(this->name());
  auto& reg = counters();
  m_.non_protocol_drops = reg.RegisterCounter("non_protocol_drops");
  m_.malformed_drops = reg.RegisterCounter("malformed_drops");
  m_.misdirected_drops = reg.RegisterCounter("misdirected_drops");
  m_.unexpected_acks = reg.RegisterCounter("unexpected_acks");
  m_.failures = reg.RegisterCounter("failures");
  m_.init_reqs = reg.RegisterCounter("init_reqs");
  m_.init_dedup = reg.RegisterCounter("init_dedup");
  m_.init_buffered = reg.RegisterCounter("init_buffered");
  m_.lease_denied = reg.RegisterCounter("lease_denied");
  m_.grants_new = reg.RegisterCounter("grants_new");
  m_.grants_migrate = reg.RegisterCounter("grants_migrate");
  m_.repl_reqs = reg.RegisterCounter("repl_reqs");
  m_.stale_writes = reg.RegisterCounter("stale_writes");
  m_.renew_reqs = reg.RegisterCounter("renew_reqs");
  m_.read_buffer_reqs = reg.RegisterCounter("read_buffer_reqs");
  m_.snapshot_reqs = reg.RegisterCounter("snapshot_reqs");
  m_.merge_reqs = reg.RegisterCounter("merge_reqs");
  m_.subscribe_reqs = reg.RegisterCounter("subscribe_reqs");
  m_.replica_pushes_tx = reg.RegisterCounter("replica_pushes_tx");
  m_.reads_parked = reg.RegisterCounter("reads_parked");
  m_.chain_forwards = reg.RegisterCounter("chain_forwards");
  m_.responses = reg.RegisterCounter("responses");
  m_.batch_envelopes = reg.RegisterCounter("batch_envelopes");
  m_.batch_subs = reg.RegisterCounter("batch_subs");
  // Replication wire bytes received, split per request type (Fig. 10-style
  // bandwidth attribution, sampled into per-shard time series).
  m_.init_bytes_rx = reg.RegisterCounter("init_bytes_rx");
  m_.repl_bytes_rx = reg.RegisterCounter("repl_bytes_rx");
  m_.renew_bytes_rx = reg.RegisterCounter("renew_bytes_rx");
  m_.read_buffer_bytes_rx = reg.RegisterCounter("read_buffer_bytes_rx");
  m_.snapshot_bytes_rx = reg.RegisterCounter("snapshot_bytes_rx");
  m_.merge_bytes_rx = reg.RegisterCounter("merge_bytes_rx");
  m_.chain_bytes_rx = reg.RegisterCounter("chain_bytes_rx");
  m_.batch_bytes_rx = reg.RegisterCounter("batch_bytes_rx");
  m_.resp_bytes_tx = reg.RegisterCounter("resp_bytes_tx");
  reg.AddCallbackGauge(
      "num_flows", [this] { return static_cast<double>(flows_.size()); });
  // Occupancy gauges for the periodic sampler: how deep the FIFO service
  // queue is (in service-time units), fraction of sim time spent busy, and
  // table sizes that bound memory.
  reg.AddCallbackGauge("queue_depth", [this] {
    const SimTime now = sim_.Now();
    if (busy_until_ <= now || config_.service_time <= 0) return 0.0;
    return static_cast<double>(busy_until_ - now) /
           static_cast<double>(config_.service_time);
  });
  reg.AddCallbackGauge("busy_frac", [this] {
    const SimTime now = sim_.Now();
    return now > 0 ? static_cast<double>(busy_time_) / static_cast<double>(now)
                   : 0.0;
  });
  reg.AddCallbackGauge("pending_inits", [this] {
    std::size_t n = 0;
    for (const auto& [key, queue] : pending_inits_) n += queue.size();
    return static_cast<double>(n);
  });
  reg.AddCallbackGauge("waiting_reads", [this] {
    std::size_t n = 0;
    for (const auto& [key, reads] : waiting_reads_) n += reads.size();
    return static_cast<double>(n);
  });
}

void StateStoreServer::HandlePacket(net::Packet pkt, PortId in_port) {
  obs::ProfScope prof(g_prof_handle_packet);
  (void)in_port;
  if (!core::IsProtocolPacket(pkt)) {
    m_.non_protocol_drops.Add();
    return;
  }
  const double wire_bytes = static_cast<double>(pkt.WireSize());
  if (net::IsBatchFrame(pkt.payload)) {
    m_.batch_bytes_rx.Add(wire_bytes);
    // A batch envelope occupies the CPU once regardless of how many
    // sub-messages it carries — the requests/sec win of coalescing.
    const SimDuration service = EffectiveServiceTime();
    const SimTime start = std::max(sim_.Now(), busy_until_);
    busy_until_ = start + service;
    busy_time_ += service;
    const std::uint64_t epoch = epoch_;
    sim_.ScheduleAt(busy_until_,
                    [this, epoch, frame = std::move(pkt.payload)]() mutable {
                      if (epoch != epoch_ || !IsUp()) return;
                      ProcessBatchEnvelope(std::move(frame));
                    });
    return;
  }
  // View-parse in place: header + bounds validation without copying the
  // payload or parsing the piggybacked inner packet (which the store only
  // ever echoes, never consumes).
  auto msg = MsgView::Parse(pkt.payload);
  if (!msg.has_value()) {
    m_.malformed_drops.Add();
    return;
  }
  // Wire-byte attribution per request type.  Chain-internal traffic is
  // accounted separately: it is replication fan-out, not switch load.
  if (msg->chain_hop() > 0) {
    m_.chain_bytes_rx.Add(wire_bytes);
  } else {
    switch (msg->type()) {
      case MsgType::kLeaseNewReq: m_.init_bytes_rx.Add(wire_bytes); break;
      case MsgType::kLeaseRenewReq: m_.repl_bytes_rx.Add(wire_bytes); break;
      case MsgType::kLeaseRenewOnly: m_.renew_bytes_rx.Add(wire_bytes); break;
      case MsgType::kReadBufferReq:
        m_.read_buffer_bytes_rx.Add(wire_bytes);
        break;
      case MsgType::kSnapshotRepl: m_.snapshot_bytes_rx.Add(wire_bytes); break;
      case MsgType::kMergeDelta: m_.merge_bytes_rx.Add(wire_bytes); break;
      case MsgType::kReplicaSubscribe:
        m_.merge_bytes_rx.Add(wire_bytes);
        break;
      case MsgType::kAck: break;
    }
  }
  // Arrival instant: begins the request's queue-wait segment (service start
  // is emitted by ProcessMsg when the FIFO drains to it).
  if (trace().armed()) {
    trace().Emit(obs::Ev::kStoreRecv, net::HashPartitionKey(msg->key()),
                 msg->seq(), static_cast<double>(msg->chain_hop()),
                 msg->span_id());
  }
  // FIFO service: one CPU core draining a kernel-bypass queue.
  const SimDuration service = EffectiveServiceTime();
  const SimTime start = std::max(sim_.Now(), busy_until_);
  busy_until_ = start + service;
  busy_time_ += service;
  const std::uint64_t epoch = epoch_;
  sim_.ScheduleAt(busy_until_, [this, epoch, m = std::move(*msg)]() mutable {
    if (epoch != epoch_ || !IsUp()) return;
    ProcessMsg(std::move(m));
  });
}

void StateStoreServer::SetUp(bool up) {
  const bool was_up = IsUp();
  Node::SetUp(up);
  if (was_up && !up) {
    ++epoch_;
    flows_.clear();
    pending_inits_.clear();
    waiting_reads_.clear();
    CancelPumps();
    batch_forward_.clear();
    in_batch_ = false;
    busy_until_ = 0;
    m_.failures.Add();
    if (atap_.armed()) {
      // This replica's DRAM records are gone; audit baselines derived from
      // them (sequence filter positions) must be forgotten too.
      atap_.Emit(audit::Tap::kStoreReset, 0);
    }
  }
}

void StateStoreServer::ProcessMsg(MsgView msg) {
  obs::ProfScope prof(g_prof_process);
  // Service start: closes the queue-wait segment opened by the arrival
  // kStoreRecv in HandlePacket.
  if (trace().armed()) {
    trace().Emit(obs::Ev::kStoreServiceStart, net::HashPartitionKey(msg.key()),
                 msg.seq(), static_cast<double>(msg.chain_hop()),
                 msg.span_id());
  }
  if (msg.chain_hop() > 0) {
    // Chain-internal: the head already decided; apply and continue.
    ApplyAndContinue(std::move(msg));
    return;
  }
  if (!is_head_) {
    // A request from a switch reached a non-head replica (stale partition
    // map); drop — the switch will retransmit toward the right head.
    m_.misdirected_drops.Add();
    if (trace().armed()) {
      trace().Emit(obs::Ev::kStoreDenied, net::HashPartitionKey(msg.key()),
                   msg.seq(), 0.0, msg.span_id());
    }
    return;
  }
  switch (msg.type()) {
    case MsgType::kLeaseNewReq: HandleInit(msg.ToMsg()); break;
    case MsgType::kLeaseRenewReq: HandleRepl(std::move(msg)); break;
    case MsgType::kLeaseRenewOnly: HandleRenewOnly(std::move(msg)); break;
    case MsgType::kReadBufferReq: HandleReadBuffer(std::move(msg)); break;
    case MsgType::kSnapshotRepl: HandleSnapshot(std::move(msg)); break;
    case MsgType::kMergeDelta: HandleMergeDelta(std::move(msg)); break;
    case MsgType::kReplicaSubscribe:
      HandleReplicaSubscribe(std::move(msg));
      break;
    case MsgType::kAck:
      m_.unexpected_acks.Add();
      break;
  }
}

void StateStoreServer::ProcessBatchEnvelope(net::BufferView frame) {
  auto batch = net::BatchView::Parse(frame);
  if (!batch.has_value()) {
    m_.malformed_drops.Add();
    return;
  }
  m_.batch_envelopes.Add();
  m_.batch_subs.Add(static_cast<double>(batch->size()));
  if (trace().armed()) {
    trace().Emit(obs::Ev::kStoreBatchRecv, 0, batch->size(),
                 static_cast<double>(frame.size()));
  }
  in_batch_ = true;
  batch_forward_.clear();
  for (std::size_t i = 0; i < batch->size(); ++i) {
    auto msg = MsgView::Parse(batch->at(i));
    if (!msg.has_value()) {
      m_.malformed_drops.Add();
      continue;
    }
    // Batched subs arrive and start service at the same instant (the
    // envelope's arrival already paid the queue wait); emit the per-sub
    // arrival here so every span still carries a (zero-length) queue-wait
    // segment and pairs symmetrically with the single-message path.
    if (trace().armed()) {
      trace().Emit(obs::Ev::kStoreRecv, net::HashPartitionKey(msg->key()),
                   msg->seq(), static_cast<double>(msg->chain_hop()),
                   msg->span_id());
    }
    // Each sub-message runs the regular handler, so seq filtering, lease
    // checks, taps, and per-flow acks are exactly per-packet semantics.
    ProcessMsg(std::move(*msg));
  }
  in_batch_ = false;
  if (batch_forward_.empty()) return;
  // One chain traversal per batch.  If every sub-message survived
  // untouched (a pure replica pass never patches), the received envelope
  // bytes go out verbatim — zero-copy.  Otherwise (head stamping CoW'd the
  // decided subs, or the seq filter answered some directly) rebuild once.
  bool verbatim = batch_forward_.size() == batch->size();
  for (const net::BufferView& v : batch_forward_) {
    verbatim = verbatim && v.buffer().data() == frame.buffer().data();
  }
  if (verbatim) {
    SendRaw(*successor_, std::move(frame));
  } else if (batch_forward_.size() == 1) {
    SendRaw(*successor_, std::move(batch_forward_.front()));
  } else {
    SendRaw(*successor_, net::EncodeBatchEnvelope(batch_forward_));
  }
  batch_forward_.clear();
}

FlowRecord& StateStoreServer::GetOrCreate(const net::PartitionKey& key) {
  return flows_[key];
}

bool StateStoreServer::LeaseActiveByOther(const FlowRecord& rec,
                                          net::Ipv4Addr requester) const {
  return rec.owner.value != 0 && rec.owner != requester &&
         rec.lease_expiry > sim_.Now();
}

void StateStoreServer::SendDeny(const net::PartitionKey& key,
                                net::Ipv4Addr requester,
                                std::uint64_t last_applied_seq,
                                std::uint64_t span) {
  Msg deny;
  deny.type = MsgType::kAck;
  deny.ack = AckKind::kLeaseDenied;
  deny.key = key;
  deny.seq = last_applied_seq;
  deny.span_id = span;
  SendMsg(requester, deny);
  m_.lease_denied.Add();
}

SimDuration StateStoreServer::EffectiveServiceTime() const {
  if (service_factor_ == 1.0) return config_.service_time;
  return static_cast<SimDuration>(
      static_cast<double>(config_.service_time) * service_factor_);
}

void StateStoreServer::HandleInit(Msg msg) {
  m_.init_reqs.Add();
  // Capacity pressure (gray failure): a brand-new flow arriving at a full
  // table is denied outright — the switch's deny path, not a timeout.
  if (max_flows_ > 0 && flows_.size() >= max_flows_ &&
      flows_.find(msg.key) == flows_.end()) {
    SendDeny(msg.key, msg.reply_to, 0, msg.span_id);
    if (trace().armed()) {
      trace().Emit(obs::Ev::kStoreDenied, net::HashPartitionKey(msg.key), 0,
                   0.0, msg.span_id);
    }
    return;
  }
  FlowRecord& rec = GetOrCreate(msg.key);
  if (LeaseActiveByOther(rec, msg.reply_to)) {
    // Another switch owns the flow: buffer the request until the lease
    // lapses (the spec's BUFFERING branch), bounded by configuration.
    // Retransmitted Inits from a switch already waiting are absorbed.
    auto& queue = pending_inits_[msg.key];
    for (const PendingInit& pending : queue) {
      if (pending.msg.reply_to == msg.reply_to) {
        m_.init_dedup.Add();
        return;
      }
    }
    if (queue.size() >= config_.max_buffered_inits) {
      SendDeny(msg.key, msg.reply_to, rec.last_applied_seq, msg.span_id);
      if (trace().armed()) {
        trace().Emit(obs::Ev::kStoreDenied, net::HashPartitionKey(msg.key), 0,
                     0.0, msg.span_id);
      }
      return;
    }
    const net::PartitionKey key = msg.key;
    const std::uint64_t span = msg.span_id;
    const SimTime retry_at = rec.lease_expiry + Microseconds(1);
    queue.push_back(PendingInit{std::move(msg)});
    m_.init_buffered.Add();
    if (trace().armed()) {
      trace().Emit(obs::Ev::kStoreBuffered, net::HashPartitionKey(key), 0,
                   static_cast<double>(queue.size()), span);
    }
    ArmInitPump(key, retry_at);
    return;
  }

  // Grant.  A brand-new flow may get application-assigned initial state
  // (e.g. a NAT port allocation) from the registered initializer.
  if (!rec.exists) {
    rec.exists = true;
    if (config_.initializer) {
      rec.state = config_.initializer(msg.key);
    }
    msg.ack = AckKind::kLeaseGrantNew;
    m_.grants_new.Add();
  } else {
    msg.ack = AckKind::kLeaseGrantMigrate;
    m_.grants_migrate.Add();
  }
  // Carry the authoritative state and sequence number to the switch (and to
  // the chain replicas, which apply the same ownership change).
  msg.state = rec.state;
  msg.seq = rec.last_applied_seq;
  ++msg.chain_hop;  // decided; apply locally, then continue down the chain
  ApplyAndContinue(std::move(msg));
}

void StateStoreServer::HandleRepl(MsgView msg) {
  m_.repl_reqs.Add();
  FlowRecord& rec = GetOrCreate(msg.key());
  if (LeaseActiveByOther(rec, msg.reply_to())) {
    SendDeny(msg.key(), msg.reply_to(), rec.last_applied_seq, msg.span_id());
    if (trace().armed()) {
      trace().Emit(obs::Ev::kStoreDenied, net::HashPartitionKey(msg.key()),
                   msg.seq(), 0.0, msg.span_id());
    }
    return;
  }
  if (msg.seq() <= rec.last_applied_seq &&
      !config_.mutations.disable_seq_filter) {
    // Stale or duplicate (Fig. 6b): do not apply — the stored state is at
    // least as new, and is already durable chain-wide.  Ack with the
    // applied sequence number so the switch clears its retransmit buffer,
    // and release any piggybacked output (its effects are subsumed by the
    // newer durable state).  The piggyback bytes are echoed verbatim.
    m_.stale_writes.Add();
    if (atap_.armed()) {
      const std::uint64_t key_hash = net::HashPartitionKey(msg.key());
      atap_.Emit(audit::Tap::kStoreFiltered, key_hash, msg.seq(),
                 rec.last_applied_seq);
      // The ack about to be sent acknowledges seq already durable
      // chain-wide — legal evidence for the chain-commit monitor.
      atap_.Emit(audit::Tap::kDupAckDurable, key_hash, rec.last_applied_seq);
    }
    Msg ack;
    ack.type = MsgType::kAck;
    ack.ack = AckKind::kWriteAck;
    ack.key = msg.key();
    ack.seq = rec.last_applied_seq;
    ack.span_id = msg.span_id();
    ack.piggyback_raw = msg.piggyback_bytes();
    SendMsg(msg.reply_to(), ack);
    return;
  }
  rec.exists = true;
  // Stamp the head's decision into the buffer; replicas forward verbatim.
  msg.SetAck(AckKind::kWriteAck);
  msg.SetChainHop(msg.chain_hop() + 1);
  ApplyAndContinue(std::move(msg));
}

void StateStoreServer::HandleRenewOnly(MsgView msg) {
  m_.renew_reqs.Add();
  FlowRecord& rec = GetOrCreate(msg.key());
  if (LeaseActiveByOther(rec, msg.reply_to())) {
    SendDeny(msg.key(), msg.reply_to(), rec.last_applied_seq, msg.span_id());
    if (trace().armed()) {
      trace().Emit(obs::Ev::kStoreDenied, net::HashPartitionKey(msg.key()),
                   msg.seq(), 0.0, msg.span_id());
    }
    return;
  }
  msg.SetAck(AckKind::kRenewAck);
  msg.SetSeq(rec.last_applied_seq);
  msg.SetChainHop(msg.chain_hop() + 1);
  ApplyAndContinue(std::move(msg));
}

void StateStoreServer::HandleReadBuffer(MsgView msg) {
  m_.read_buffer_reqs.Add();
  // A buffered read must be released only after the write it observed at the
  // switch (sequence `msg.seq`) is durable.  Route it through the chain so
  // it orders behind those writes; the tail releases or parks it.
  msg.SetAck(AckKind::kReadReturn);
  msg.SetChainHop(msg.chain_hop() + 1);
  ApplyAndContinue(std::move(msg));
}

void StateStoreServer::HandleSnapshot(MsgView msg) {
  m_.snapshot_reqs.Add();
  FlowRecord& rec = GetOrCreate(msg.key());
  auto it = rec.snapshot_slots.find(msg.snapshot_index());
  if (it != rec.snapshot_slots.end() && msg.seq() <= it->second.second) {
    // Stale snapshot slot; ack without applying.
    Msg ack;
    ack.type = MsgType::kAck;
    ack.ack = AckKind::kSnapshotAck;
    ack.key = msg.key();
    ack.seq = msg.seq();
    ack.snapshot_index = msg.snapshot_index();
    ack.span_id = msg.span_id();
    SendMsg(msg.reply_to(), ack);
    return;
  }
  rec.exists = true;
  msg.SetAck(AckKind::kSnapshotAck);
  msg.SetChainHop(msg.chain_hop() + 1);
  ApplyAndContinue(std::move(msg));
}

void StateStoreServer::HandleMergeDelta(MsgView msg) {
  m_.merge_reqs.Add();
  // No LeaseActiveByOther check and no sequence filter: concurrent writers
  // are the design point of the mergeable mode, and the join is idempotent
  // so a replayed or retransmitted delta re-merges to the same state.
  msg.SetAck(AckKind::kMergeAck);
  msg.SetChainHop(msg.chain_hop() + 1);
  ApplyAndContinue(std::move(msg));
}

void StateStoreServer::HandleReplicaSubscribe(MsgView msg) {
  m_.subscribe_reqs.Add();
  FlowRecord& rec = GetOrCreate(msg.key());
  const net::Ipv4Addr sub = msg.reply_to();
  if (std::find(rec.subscribers.begin(), rec.subscribers.end(), sub) ==
      rec.subscribers.end()) {
    rec.subscribers.push_back(sub);
  }
  // Answer with the current durable state so the replica starts warm.
  // Subscription is head-local soft state: it rides in the FlowRecord, so a
  // chain resync copies it, and a lost head simply stops pushing (the
  // switch then falls back to the buffering path, which is always safe).
  Msg push;
  push.type = MsgType::kAck;
  push.ack = AckKind::kReplicaPush;
  push.key = msg.key();
  push.seq = rec.last_applied_seq;
  push.state = rec.state;
  push.mode = msg.mode();
  push.span_id = msg.span_id();
  m_.replica_pushes_tx.Add();
  SendMsg(sub, push);
}

void StateStoreServer::PushToSubscribers(const net::PartitionKey& key,
                                         const FlowRecord& rec,
                                         net::Ipv4Addr writer,
                                         std::uint64_t span) {
  if (!is_head_ || rec.subscribers.empty()) return;
  for (const net::Ipv4Addr sub : rec.subscribers) {
    if (sub == writer) continue;  // the writer already holds the newer state
    Msg push;
    push.type = MsgType::kAck;
    push.ack = AckKind::kReplicaPush;
    push.key = key;
    push.seq = rec.last_applied_seq;
    push.state = rec.state;
    push.mode = core::ConsistencyMode::kReplicatedRead;
    push.span_id = span;
    m_.replica_pushes_tx.Add();
    if (atap_.armed()) {
      atap_.Emit(audit::Tap::kReplicaPushed, net::HashPartitionKey(key),
                 rec.last_applied_seq, sub.value);
    }
    SendMsg(sub, push);
  }
}

void StateStoreServer::ApplyAndContinue(Msg&& msg) {
  auto view = MsgView::Parse(core::EncodeMsg(msg));
  assert(view.has_value());
  ApplyAndContinue(std::move(*view));
}

void StateStoreServer::ApplyAndContinue(MsgView msg) {
  FlowRecord& rec = GetOrCreate(msg.key());
  switch (msg.type()) {
    case MsgType::kLeaseNewReq:
      rec.exists = true;
      rec.state = msg.state().ToVector();
      rec.last_applied_seq = msg.seq();
      rec.owner = msg.reply_to();
      rec.lease_expiry = sim_.Now() + config_.lease_period;
      break;
    case MsgType::kLeaseRenewReq:
      rec.exists = true;
      if (msg.seq() > rec.last_applied_seq ||
          config_.mutations.disable_seq_filter) {
        const std::uint64_t prev_applied = rec.last_applied_seq;
        rec.state = msg.state().ToVector();
        rec.last_applied_seq = msg.seq();
        if (trace().armed()) {
          trace().Emit(obs::Ev::kStoreApplied,
                       net::HashPartitionKey(msg.key()), msg.seq(),
                       static_cast<double>(msg.state().size()),
                       msg.span_id());
        }
        if (atap_.armed()) {
          atap_.Emit(audit::Tap::kStoreApplied,
                     net::HashPartitionKey(msg.key()), msg.seq(),
                     prev_applied);
        }
        PushToSubscribers(msg.key(), rec, msg.reply_to(), msg.span_id());
      }
      rec.owner = msg.reply_to();
      rec.lease_expiry = sim_.Now() + config_.lease_period;
      break;
    case MsgType::kLeaseRenewOnly:
      rec.owner = msg.reply_to();
      rec.lease_expiry = sim_.Now() + config_.lease_period;
      break;
    case MsgType::kReadBufferReq:
      if (IsTail() &&
          (rec.last_applied_seq < msg.seq() ||
           (rec.owner.value != 0 && rec.owner != msg.reply_to() &&
            rec.lease_expiry > sim_.Now()))) {
        // Park the read: either its awaited write is not yet durable, or
        // the requesting switch does not own the flow yet (packets looping
        // while a migration grant is buffered behind the old lease).  It
        // is released by PumpWaitingReads when the blocking condition
        // clears, or dropped if it outlives a lease period (packet loss is
        // permitted by the correctness model).
        if (trace().armed()) {
          trace().Emit(obs::Ev::kStoreReadParked,
                       net::HashPartitionKey(msg.key()), msg.seq(), 0.0,
                       msg.span_id());
        }
        waiting_reads_[msg.key()].push_back(std::move(msg));
        m_.reads_parked.Add();
        return;
      }
      break;
    case MsgType::kSnapshotRepl: {
      rec.exists = true;
      auto& slot = rec.snapshot_slots[msg.snapshot_index()];
      if (msg.seq() > slot.second) {
        slot.first = msg.state().ToVector();
        slot.second = msg.seq();
      }
      rec.last_snapshot_at = sim_.Now();
      break;
    }
    case MsgType::kMergeDelta: {
      rec.exists = true;
      rec.mergeable = true;
      if (config_.mutations.overwrite_instead_of_merge ||
          config_.merger == nullptr) {
        rec.state = msg.state().ToVector();
      } else {
        config_.merger(rec.state, msg.state().span());
      }
      if (trace().armed()) {
        trace().Emit(obs::Ev::kStoreApplied, net::HashPartitionKey(msg.key()),
                     msg.seq(), static_cast<double>(msg.state().size()),
                     msg.span_id());
      }
      if (atap_.armed()) {
        // The measure is computed from the *post-merge* stored state: a
        // correct join can only move up the lattice, so this series is
        // non-decreasing per key (checked by the merge-convergence
        // monitor).  Overwrites under the mutation honestly report the
        // (possibly lower) measure and get caught.
        const double measure =
            config_.measure != nullptr ? config_.measure(rec.state) : 0.0;
        atap_.Emit(audit::Tap::kMergeApplied, net::HashPartitionKey(msg.key()),
                   msg.seq(), 0, measure);
      }
      break;
    }
    case MsgType::kReplicaSubscribe:
      // Subscriptions never traverse the chain (handled at the head).
      return;
    case MsgType::kAck:
      return;
  }
  const net::PartitionKey key = msg.key();
  ForwardOrRespond(std::move(msg));
  PumpWaitingReads(key);
}

void StateStoreServer::ForwardOrRespond(MsgView msg) {
  if (successor_.has_value() && !config_.mutations.early_chain_ack) {
    m_.chain_forwards.Add();
    if (in_batch_) {
      // Defer into the envelope-wide forward.  The per-hop chain_hop
      // increment is skipped for batched subs: any hop > 0 already means
      // "decided", and not patching is what lets a pure replica forward
      // the whole envelope verbatim without a per-sub CoW.
      batch_forward_.push_back(msg.bytes());
      return;
    }
    msg.SetChainHop(msg.chain_hop() + 1);
    SendRaw(*successor_, msg.bytes());
    return;
  }
  Respond(msg);
}

void StateStoreServer::Respond(const MsgView& request) {
  Msg resp;
  resp.type = MsgType::kAck;
  resp.ack = request.ack();
  resp.key = request.key();
  resp.seq = request.seq();
  resp.snapshot_index = request.snapshot_index();
  resp.span_id = request.span_id();
  resp.mode = request.mode();
  resp.piggyback_raw = request.piggyback_bytes();
  if (request.ack() == AckKind::kLeaseGrantNew ||
      request.ack() == AckKind::kLeaseGrantMigrate) {
    resp.state = request.state().ToVector();
  } else if (request.ack() == AckKind::kMergeAck) {
    // Answer with the *merged* stored state (the request carried only the
    // sender's local contribution): every replica applied the same joins,
    // so the answering replica's record is the converged global value.
    if (const FlowRecord* rec = Find(request.key())) resp.state = rec->state;
  }
  m_.responses.Add();
  if (trace().armed()) {
    trace().Emit(obs::Ev::kStoreResponded,
                 net::HashPartitionKey(request.key()), request.seq(), 0.0,
                 request.span_id());
  }
  if (atap_.armed() && IsTail() && request.ack() == AckKind::kWriteAck) {
    // The tail answering a decided write is the chain-wide commit point —
    // emitted before the response leaves so the commit-order monitor sees
    // commit evidence strictly before the switch's ack-released event.
    atap_.Emit(audit::Tap::kTailCommit, net::HashPartitionKey(request.key()),
               request.seq());
  }
  SendMsg(request.reply_to(), resp);
}

void StateStoreServer::SendMsg(net::Ipv4Addr dst, const Msg& msg) {
  net::Packet pkt = core::MakeProtocolPacket(ip_, dst, msg);
  if (msg.type == MsgType::kAck) {
    m_.resp_bytes_tx.Add(static_cast<double>(pkt.WireSize()));
  }
  SendTo(0, std::move(pkt));
}

void StateStoreServer::SendRaw(net::Ipv4Addr dst, net::BufferView payload) {
  net::Packet pkt = core::MakeProtocolPacketRaw(ip_, dst, std::move(payload));
  SendTo(0, std::move(pkt));
}

void StateStoreServer::PumpPendingInits(const net::PartitionKey& key) {
  auto it = pending_inits_.find(key);
  if (it == pending_inits_.end() || it->second.empty()) return;
  FlowRecord& rec = GetOrCreate(key);
  // Grant to the first waiter whose blocker has lapsed; later waiters are
  // retried when this new lease lapses in turn.
  while (!it->second.empty()) {
    if (LeaseActiveByOther(rec, it->second.front().msg.reply_to)) {
      ArmInitPump(key, rec.lease_expiry + Microseconds(1));
      return;
    }
    Msg msg = std::move(it->second.front().msg);
    it->second.pop_front();
    HandleInit(std::move(msg));
  }
  pending_inits_.erase(key);
}

void StateStoreServer::PumpWaitingReads(const net::PartitionKey& key) {
  auto it = waiting_reads_.find(key);
  if (it == waiting_reads_.end()) return;
  FlowRecord& rec = GetOrCreate(key);
  auto& reads = it->second;
  bool reschedule = false;
  for (auto rit = reads.begin(); rit != reads.end();) {
    const bool seq_ready = rec.last_applied_seq >= rit->seq();
    const bool ownership_blocked = rec.owner.value != 0 &&
                                   rec.owner != rit->reply_to() &&
                                   rec.lease_expiry > sim_.Now();
    if (seq_ready && !ownership_blocked) {
      Respond(*rit);
      rit = reads.erase(rit);
    } else {
      // Waiting for a write (pumped on the next apply) or for the blocking
      // lease to lapse (pumped by the rescheduled check below).
      reschedule = reschedule || ownership_blocked;
      ++rit;
    }
  }
  if (reads.empty()) {
    waiting_reads_.erase(it);
  } else if (reschedule) {
    // Re-examine when the blocking lease lapses (the owner may never
    // return; the parked packets are then released toward the requester,
    // which re-evaluates under its own — possibly absent — lease).
    ArmReadPump(key, rec.lease_expiry + Microseconds(1));
  }
}

void StateStoreServer::ArmInitPump(const net::PartitionKey& key, SimTime at) {
  if (init_pump_timers_.count(key) != 0) return;
  const std::uint64_t epoch = epoch_;
  init_pump_timers_[key] = sim_.ScheduleAt(at, [this, key, epoch]() {
    if (epoch != epoch_) return;
    init_pump_timers_.erase(key);
    if (IsUp()) PumpPendingInits(key);
  });
}

void StateStoreServer::ArmReadPump(const net::PartitionKey& key, SimTime at) {
  if (read_pump_timers_.count(key) != 0) return;
  const std::uint64_t epoch = epoch_;
  read_pump_timers_[key] = sim_.ScheduleAt(at, [this, key, epoch]() {
    if (epoch != epoch_) return;
    read_pump_timers_.erase(key);
    if (IsUp()) PumpWaitingReads(key);
  });
}

void StateStoreServer::CancelPumps() {
  for (const auto& [key, id] : init_pump_timers_) sim_.Cancel(id);
  init_pump_timers_.clear();
  for (const auto& [key, id] : read_pump_timers_) sim_.Cancel(id);
  read_pump_timers_.clear();
}

const FlowRecord* StateStoreServer::Find(const net::PartitionKey& key) const {
  auto it = flows_.find(key);
  return it == flows_.end() ? nullptr : &it->second;
}

void StateStoreServer::ImportFlows(
    std::unordered_map<net::PartitionKey, FlowRecord>&& flows) {
  for (auto& [key, incoming] : flows) {
    auto [it, inserted] = flows_.try_emplace(key, std::move(incoming));
    if (inserted) continue;
    FlowRecord& local = it->second;
    // The snapshot is resync_delay stale by the time it lands, so the
    // local record may already be ahead of it.
    if ((local.mergeable || incoming.mergeable) && config_.merger != nullptr) {
      // Join-semilattice state: the join is idempotent and commutative, so
      // merging the snapshot in can only move up the lattice regardless of
      // which side is fresher.
      config_.merger(local.state, incoming.state);
      local.mergeable = true;
    } else if (incoming.last_applied_seq > local.last_applied_seq) {
      local.state = std::move(incoming.state);
    }
    local.last_applied_seq =
        std::max(local.last_applied_seq, incoming.last_applied_seq);
    local.exists = local.exists || incoming.exists;
    if (incoming.lease_expiry > local.lease_expiry) {
      local.lease_expiry = incoming.lease_expiry;
      local.owner = incoming.owner;
    }
    for (auto& [index, slot] : incoming.snapshot_slots) {
      auto& mine = local.snapshot_slots[index];
      if (slot.second > mine.second) mine = std::move(slot);
    }
    local.last_snapshot_at =
        std::max(local.last_snapshot_at, incoming.last_snapshot_at);
    for (const net::Ipv4Addr sub : incoming.subscribers) {
      if (std::find(local.subscribers.begin(), local.subscribers.end(), sub) ==
          local.subscribers.end()) {
        local.subscribers.push_back(sub);
      }
    }
  }
}

}  // namespace redplane::store
