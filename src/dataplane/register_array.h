// Stateful register arrays, the data-plane memory primitive.
//
// Tofino-class pipelines allow each packet to access each register array at
// most once, at a single index, through a stateful ALU.  The protocol and the
// lazy snapshotting algorithm (paper Algorithm 1) are shaped by exactly this
// constraint, so the model enforces it: each packet traversal carries a
// PipelinePass token and a second access to the same array within one pass
// aborts the simulation.  Registers are volatile — Reset() models the state
// loss on switch failure.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace redplane::dp {

/// Identifies one packet's traversal of a pipeline.  A fresh pass is minted
/// per packet by the switch pipeline; register arrays use it to enforce the
/// one-access-per-array rule.
class PipelinePass {
 public:
  PipelinePass() : id_(++counter_) {}
  std::uint64_t id() const { return id_; }

 private:
  static inline std::uint64_t counter_ = 0;
  std::uint64_t id_;
};

template <typename T>
class RegisterArray {
 public:
  RegisterArray(std::string name, std::size_t size, T initial = T{})
      : name_(std::move(name)), initial_(initial), slots_(size, initial) {}

  std::size_t size() const { return slots_.size(); }
  const std::string& name() const { return name_; }

  /// Reads slot `index`; counts as this pass's single access to the array.
  T Read(const PipelinePass& pass, std::size_t index) {
    CheckAccess(pass, index);
    return slots_[index];
  }

  /// Read-modify-write of slot `index` via `fn(T&) -> R`; one ALU operation.
  /// Returns fn's result (what the stateful ALU forwards to the packet).
  template <typename Fn>
  auto ReadModifyWrite(const PipelinePass& pass, std::size_t index, Fn&& fn) {
    CheckAccess(pass, index);
    return fn(slots_[index]);
  }

  /// Writes slot `index`; counts as this pass's single access.
  void Write(const PipelinePass& pass, std::size_t index, const T& value) {
    CheckAccess(pass, index);
    slots_[index] = value;
  }

  /// Control-plane read: unconstrained, used for reporting/tests only.
  const T& Peek(std::size_t index) const {
    assert(index < slots_.size());
    return slots_[index];
  }

  /// Control-plane write (e.g. configuration); unconstrained.
  void Poke(std::size_t index, const T& value) {
    assert(index < slots_.size());
    slots_[index] = value;
  }

  /// Clears all slots to the initial value (switch failure / reboot).
  void Reset() {
    for (auto& s : slots_) s = initial_;
    last_pass_ = 0;
  }

  /// Bytes of SRAM this array occupies (for the resource model).
  std::size_t SramBytes() const { return slots_.size() * sizeof(T); }

 private:
  void CheckAccess(const PipelinePass& pass, std::size_t index) {
    if (index >= slots_.size()) {
      std::fprintf(stderr, "register array '%s': index %zu out of range %zu\n",
                   name_.c_str(), index, slots_.size());
      std::abort();
    }
    if (last_pass_ == pass.id()) {
      std::fprintf(stderr,
                   "register array '%s': second access in one pipeline pass "
                   "(hardware allows one stateful ALU op per array per "
                   "packet)\n",
                   name_.c_str());
      std::abort();
    }
    last_pass_ = pass.id();
  }

  std::string name_;
  T initial_;
  std::vector<T> slots_;
  std::uint64_t last_pass_ = 0;
};

}  // namespace redplane::dp
