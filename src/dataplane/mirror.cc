#include "dataplane/mirror.h"

#include <algorithm>
#include <cassert>

namespace redplane::dp {

namespace {
constexpr std::size_t kMinIndexCap = 16;
}  // namespace

std::size_t MirrorTable::FindCell(std::uint64_t digest) const {
  if (idx_head_.empty()) return SIZE_MAX;
  const std::size_t mask = idx_head_.size() - 1;
  std::size_t i = digest & mask;
  while (idx_head_[i] != kNilSlot) {
    if (idx_digest_[i] == digest) return i;
    i = (i + 1) & mask;
  }
  return SIZE_MAX;
}

std::size_t MirrorTable::FindOrInsertCell(std::uint64_t digest) {
  if (idx_head_.empty() || (idx_used_ + 1) * 10 > idx_head_.size() * 7) {
    GrowIndex();
  }
  const std::size_t mask = idx_head_.size() - 1;
  std::size_t i = digest & mask;
  while (idx_head_[i] != kNilSlot) {
    if (idx_digest_[i] == digest) return i;
    i = (i + 1) & mask;
  }
  idx_digest_[i] = digest;
  ++idx_used_;
  return i;
}

void MirrorTable::GrowIndex() {
  const std::size_t cap = std::max(kMinIndexCap, idx_head_.size() * 2);
  std::vector<std::uint64_t> digests(cap, 0);
  std::vector<std::uint32_t> heads(cap, kNilSlot);
  const std::size_t mask = cap - 1;
  for (std::size_t i = 0; i < idx_head_.size(); ++i) {
    if (idx_head_[i] == kNilSlot) continue;
    std::size_t j = idx_digest_[i] & mask;
    while (heads[j] != kNilSlot) j = (j + 1) & mask;
    digests[j] = idx_digest_[i];
    heads[j] = idx_head_[i];
  }
  idx_digest_ = std::move(digests);
  idx_head_ = std::move(heads);
}

void MirrorTable::EraseCell(std::size_t cell) {
  // Backward-shift deletion keeps linear probing tombstone-free: pull each
  // displaced follower back into the hole it would rather occupy.
  const std::size_t mask = idx_head_.size() - 1;
  std::size_t hole = cell;
  std::size_t i = (cell + 1) & mask;
  while (idx_head_[i] != kNilSlot) {
    const std::size_t home = idx_digest_[i] & mask;
    // Move i into the hole unless i's home lies cyclically after the hole
    // (in which case shifting it would break its probe chain).
    const bool movable = ((i - home) & mask) >= ((i - hole) & mask);
    if (movable) {
      idx_digest_[hole] = idx_digest_[i];
      idx_head_[hole] = idx_head_[i];
      hole = i;
    }
    i = (i + 1) & mask;
  }
  idx_head_[hole] = kNilSlot;
  idx_digest_[hole] = 0;
  --idx_used_;
}

MirrorTable::Handle MirrorTable::Mirror(const net::PartitionKey& key,
                                        std::uint64_t seq,
                                        net::BufferView data, SimTime now) {
  std::uint32_t slot;
  if (free_head_ != kNilSlot) {
    slot = free_head_;
    free_head_ = fnext_[slot];
  } else {
    slot = static_cast<std::uint32_t>(keys_.size());
    keys_.emplace_back();
    seq_.emplace_back();
    data_.emplace_back();
    enqueued_.emplace_back();
    last_sent_.emplace_back();
    retx_.emplace_back();
    timer_.emplace_back();
    gen_.emplace_back();
    live_.emplace_back();
    fprev_.emplace_back(kNilSlot);
    fnext_.emplace_back(kNilSlot);
  }
  keys_[slot] = key;
  seq_[slot] = seq;
  data_[slot] = data.Prefix(truncate_to_);
  enqueued_[slot] = now;
  last_sent_[slot] = now;
  retx_[slot] = 0;
  timer_[slot] = 0;
  live_[slot] = 1;

  const std::size_t cell = FindOrInsertCell(net::HashPartitionKey(key));
  const std::uint32_t head = idx_head_[cell];
  fprev_[slot] = kNilSlot;
  fnext_[slot] = head;
  if (head != kNilSlot) fprev_[head] = slot;
  idx_head_[cell] = slot;

  ++count_;
  occupancy_ += data_[slot].size();
  peak_ = std::max(peak_, occupancy_);
  if (trace_.armed()) {
    trace_.Emit(obs::Ev::kMirrored, net::HashPartitionKey(key), seq,
                static_cast<double>(data_[slot].size()));
  }
  return Handle{slot, gen_[slot]};
}

void MirrorTable::ReleaseSlot(std::uint32_t slot, std::size_t cell) {
  assert(live_[slot] != 0);
  if (fprev_[slot] != kNilSlot) {
    fnext_[fprev_[slot]] = fnext_[slot];
  } else {
    idx_head_[cell] = fnext_[slot];
  }
  if (fnext_[slot] != kNilSlot) fprev_[fnext_[slot]] = fprev_[slot];
  if (idx_head_[cell] == kNilSlot) EraseCell(cell);

  occupancy_ -= data_[slot].size();
  data_[slot].clear();  // drop the payload refcount now, not at slot reuse
  live_[slot] = 0;
  ++gen_[slot];
  fnext_[slot] = free_head_;
  free_head_ = slot;
  --count_;
}

MirrorTable::IndexStats MirrorTable::IndexStatsNow() const {
  IndexStats s;
  s.capacity = idx_head_.size();
  s.used = idx_used_;
  if (s.capacity == 0) return s;
  const std::size_t mask = s.capacity - 1;
  for (std::size_t i = 0; i < idx_head_.size(); ++i) {
    if (idx_head_[i] == kNilSlot) continue;
    const std::size_t home = idx_digest_[i] & mask;
    s.max_probe = std::max(s.max_probe, ((i - home) & mask) + 1);
  }
  return s;
}

}  // namespace redplane::dp
