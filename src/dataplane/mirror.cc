#include "dataplane/mirror.h"

#include <algorithm>

namespace redplane::dp {

void MirrorSession::Mirror(const net::PartitionKey& key, std::uint64_t seq,
                           net::BufferView data, SimTime now) {
  MirroredEntry entry;
  entry.key = key;
  entry.seq = seq;
  entry.data = data.Prefix(truncate_to_);
  entry.enqueued_at = now;
  entry.last_sent_at = now;
  occupancy_ += entry.bytes();
  peak_ = std::max(peak_, occupancy_);
  if (trace_.armed()) {
    trace_.Emit(obs::Ev::kMirrored, net::HashPartitionKey(key), seq,
                static_cast<double>(entry.bytes()));
  }
  entries_.push_back(std::move(entry));
}

void MirrorSession::Acknowledge(const net::PartitionKey& key,
                                std::uint64_t acked_seq) {
  std::size_t cleared = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->key == key && it->seq <= acked_seq) {
      occupancy_ -= it->bytes();
      it = entries_.erase(it);
      ++cleared;
    } else {
      ++it;
    }
  }
  if (cleared > 0 && trace_.armed()) {
    trace_.Emit(obs::Ev::kMirrorCleared, net::HashPartitionKey(key), acked_seq,
                static_cast<double>(cleared));
  }
}

void MirrorSession::ForEach(const std::function<void(MirroredEntry&)>& fn) {
  for (auto& entry : entries_) fn(entry);
}

void MirrorSession::Reset() {
  entries_.clear();
  occupancy_ = 0;
  peak_ = 0;
}

}  // namespace redplane::dp
