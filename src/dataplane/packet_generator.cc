#include "dataplane/packet_generator.h"

#include <cassert>

namespace redplane::dp {

void PacketGenerator::Start(SimDuration period, std::uint32_t batch_size,
                            SimDuration intra_gap,
                            std::function<void(std::uint32_t)> fn) {
  assert(period > 0 && batch_size > 0);
  ++epoch_;
  running_ = true;
  period_ = period;
  batch_size_ = batch_size;
  intra_gap_ = intra_gap;
  fn_ = std::move(fn);
  const std::uint64_t epoch = epoch_;
  sim_.Schedule(period_, [this, epoch]() {
    if (epoch == epoch_ && running_) EmitBatch();
  });
}

void PacketGenerator::Stop() {
  running_ = false;
  ++epoch_;
}

void PacketGenerator::EmitBatch() {
  ++batches_;
  trace_.Emit(obs::Ev::kPktgenBatch, 0, batches_,
              static_cast<double>(batch_size_));
  for (std::uint32_t i = 0; i < batch_size_; ++i) {
    const std::uint64_t epoch = epoch_;
    sim_.Schedule(static_cast<SimDuration>(i) * intra_gap_, [this, i, epoch]() {
      if (epoch == epoch_ && running_) fn_(i);
    });
  }
  const std::uint64_t epoch = epoch_;
  sim_.Schedule(period_, [this, epoch]() {
    if (epoch == epoch_ && running_) EmitBatch();
  });
}

}  // namespace redplane::dp
