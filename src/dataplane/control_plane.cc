#include "dataplane/control_plane.h"

#include <algorithm>
#include <cmath>

namespace redplane::dp {

SimTime ControlPlane::Submit(std::size_t bytes,
                             std::function<void()> on_complete) {
  const auto transfer = static_cast<SimDuration>(std::ceil(
      static_cast<double>(bytes) * 8.0 / config_.pcie_bandwidth_bps * 1e9));
  // The channel serializes transfers; CPU processing is pipelined with the
  // next transfer but each op's completion waits for its own CPU time and
  // the return crossing.
  const SimTime start = std::max(sim_.Now(), busy_until_);
  busy_until_ = start + transfer + config_.table_op_cpu_time;
  const SimTime done =
      busy_until_ + 2 * config_.pcie_latency;  // up + completion back
  ++pending_;
  const std::uint64_t epoch = epoch_;
  sim_.ScheduleAt(done, [this, epoch, bytes, fn = std::move(on_complete)]() {
    if (epoch != epoch_) return;  // switch failed while op was queued
    --pending_;
    ++completed_;
    trace_.Emit(obs::Ev::kCpInstalled, 0, completed_,
                static_cast<double>(bytes));
    fn();
  });
  return done;
}

void ControlPlane::Reset() {
  ++epoch_;
  pending_ = 0;
  busy_until_ = 0;
}

}  // namespace redplane::dp
