// Match-action tables.
//
// Exact-match tables on Tofino are writable only from the control plane (via
// the PCIe channel modeled in control_plane.h); the data plane may only look
// entries up.  The API separates the two: Lookup() is const and available to
// pipeline code, Insert/Erase are meant to be called from ControlPlane
// completion callbacks.  Like registers, tables are volatile across a switch
// failure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

namespace redplane::dp {

template <typename Key, typename Value>
class MatchTable {
 public:
  MatchTable(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity) {}

  const std::string& name() const { return name_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Data-plane lookup.
  std::optional<Value> Lookup(const Key& key) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(const Key& key) const { return entries_.count(key) != 0; }

  /// Control-plane insert; returns false when the table is full.
  bool Insert(const Key& key, const Value& value) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second = value;
      return true;
    }
    if (entries_.size() >= capacity_) return false;
    entries_.emplace(key, value);
    return true;
  }

  /// Control-plane erase; returns true if an entry was removed.
  bool Erase(const Key& key) { return entries_.erase(key) != 0; }

  /// Clears the table (switch failure / reboot).
  void Reset() { entries_.clear(); }

  /// Approximate SRAM footprint for the resource model.
  std::size_t SramBytes() const {
    return capacity_ * (sizeof(Key) + sizeof(Value));
  }

 private:
  std::string name_;
  std::size_t capacity_;
  std::unordered_map<Key, Value> entries_;
};

}  // namespace redplane::dp
