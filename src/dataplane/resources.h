// Switch ASIC resource accounting.
//
// Reproduces the quantity reported in the paper's Table 2: the fraction of
// each pipeline resource class consumed by RedPlane's data-plane objects.
// The budgets approximate a Tofino-class pipeline (12 match-action stages);
// the charging rules follow how the Tofino compiler places P4 objects:
// exact tables consume SRAM + match crossbar + hash bits, ternary/range
// tables consume TCAM, register arrays consume SRAM + a stateful (meter)
// ALU, conditionals consume gateways, and every action consumes VLIW slots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace redplane::dp {

/// Resource classes reported by the Tofino compiler (Table 2's rows).
enum class ResourceKind : int {
  kMatchCrossbar = 0,
  kMeterAlu,
  kGateway,
  kSram,
  kTcam,
  kVliw,
  kHashBits,
  kNumKinds,
};

const char* ResourceName(ResourceKind kind);

/// Total pipeline budget (all stages combined), in the units used by the
/// charging rules below.
struct PipelineBudget {
  int stages = 12;
  /// Per-stage capacities.
  double match_crossbar_bits = 1536;
  double meter_alus = 4;
  double gateways = 16;
  double sram_bytes = 128.0 * 1024 * 10;  // 10 blocks x 128 KB equivalent
  double tcam_bits = 24 * 512 * 44;       // 24 blocks x 512 entries x 44b
  double vliw_slots = 32;
  double hash_bits = 832;

  double Total(ResourceKind kind) const;

  /// A Tofino-1-like default.
  static PipelineBudget Tofino();
};

/// Accumulates placed objects and answers usage queries.
class ResourceModel {
 public:
  /// Exact-match table with `entries` entries; key/value widths in bits.
  void AddExactTable(const std::string& name, std::uint64_t entries,
                     std::uint32_t key_bits, std::uint32_t value_bits);

  /// Ternary or range table (placed in TCAM).
  void AddTernaryTable(const std::string& name, std::uint64_t entries,
                       std::uint32_t key_bits, std::uint32_t value_bits);

  /// Stateful register array (SRAM + one stateful ALU per stage replica).
  void AddRegisterArray(const std::string& name, std::uint64_t entries,
                        std::uint32_t width_bits);

  /// Conditional branches in the control flow.
  void AddGateways(const std::string& name, std::uint32_t count);

  /// Standalone hash computation (e.g. sketch index, ECMP).
  void AddHashComputation(const std::string& name, std::uint32_t bits);

  /// Header/metadata rewrite actions.
  void AddActions(const std::string& name, std::uint32_t vliw_slots);

  /// Absolute usage for one resource kind.
  double Usage(ResourceKind kind) const { return usage_[static_cast<int>(kind)]; }

  /// Usage as a fraction (0..1) of `budget` for each kind, in Table 2 order.
  std::vector<std::pair<std::string, double>> FractionOfBudget(
      const PipelineBudget& budget) const;

  /// Placed objects, for reporting.
  const std::vector<std::string>& objects() const { return objects_; }

 private:
  void Charge(ResourceKind kind, double amount);

  double usage_[static_cast<int>(ResourceKind::kNumKinds)] = {};
  std::vector<std::string> objects_;
};

/// Registers every data-plane object the RedPlane library adds to an
/// application, sized for `concurrent_flows` tracked flows, mirroring §6's
/// inventory (lease request generation & management, sequence numbers,
/// request timeout management, ack processing).  Used by the Table 2 bench
/// and by tests.
void PlaceRedPlaneObjects(ResourceModel& model, std::uint64_t concurrent_flows);

}  // namespace redplane::dp
