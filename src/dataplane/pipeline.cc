#include "dataplane/pipeline.h"

#include "common/logging.h"

namespace redplane::dp {

SimTime SwitchContext::Now() const { return sw_.sim().Now(); }

void SwitchContext::Forward(net::Packet pkt) {
  sw_.ForwardPacket(std::move(pkt), in_port_);
}

void SwitchContext::Emit(PortId port, net::Packet pkt) {
  sw_.SendTo(port, std::move(pkt));
}

void SwitchContext::Drop(const net::Packet& pkt) {
  (void)pkt;
  sw_.counters().Add("pipeline_drops");
}

SwitchNode::SwitchNode(sim::Simulator& sim, NodeId id, std::string name,
                       SwitchConfig config)
    : Node(sim, id, std::move(name)),
      config_(config),
      control_plane_(sim, config.control_plane),
      pktgen_(sim),
      // RedPlane truncates mirrored requests to the replication header; 64
      // bytes comfortably covers Ethernet+IP+UDP+RedPlane header.
      mirror_(this->name() + "/mirror", 64) {
  control_plane_.SetTraceName(this->name() + "/cp");
  pktgen_.SetTraceName(this->name() + "/pktgen");
}

SwitchNode::~SwitchNode() = default;

void SwitchNode::HandlePacket(net::Packet pkt, PortId in_port) {
  if (!IsUp()) return;
  const std::uint64_t epoch = epoch_;
  // One traversal of parser + match-action stages + deparser.
  sim_.Schedule(config_.pipeline_latency, [this, epoch, in_port,
                                           pkt = std::move(pkt)]() mutable {
    if (epoch != epoch_ || !IsUp()) return;
    if (trace().armed()) {
      const auto flow = pkt.Flow();
      trace().Emit(obs::Ev::kPipeline, flow ? net::HashFlowKey(*flow) : 0,
                   pkt.id, static_cast<double>(pkt.WireSize()));
    }
    if (handler_ != nullptr) {
      SwitchContext ctx(*this, in_port);
      handler_->Process(ctx, std::move(pkt));
    } else {
      ForwardPacket(std::move(pkt), in_port);
    }
  });
}

void SwitchNode::SetUp(bool up) {
  const bool was_up = IsUp();
  Node::SetUp(up);
  if (was_up && !up) {
    // Fail-stop: all volatile data-plane state is lost.
    ++epoch_;
    if (handler_ != nullptr) handler_->Reset();
    control_plane_.Reset();
    mirror_.Reset();
    pktgen_.Stop();
    counters().Add("failures");
  } else if (!was_up && up) {
    if (handler_ != nullptr) handler_->OnRecovery();
    counters().Add("recoveries");
  }
}

void SwitchNode::SetForwarder(
    std::function<std::optional<PortId>(const net::Packet&, PortId)> fwd) {
  forwarder_ = std::move(fwd);
}

void SwitchNode::ForwardPacket(net::Packet pkt, PortId in_port) {
  if (!forwarder_) {
    counters().Add("drop_no_forwarder");
    return;
  }
  const auto out = forwarder_(pkt, in_port);
  if (!out.has_value()) {
    counters().Add("drop_no_route");
    return;
  }
  SendTo(*out, std::move(pkt));
}

void SwitchNode::Recirculate(std::function<void(SwitchContext&)> fn) {
  const std::uint64_t epoch = epoch_;
  trace().Emit(obs::Ev::kRecirculate);
  sim_.Schedule(config_.recirculation_latency, [this, epoch,
                                                fn = std::move(fn)]() {
    if (epoch != epoch_ || !IsUp()) return;
    SwitchContext ctx(*this, kInvalidPort);
    fn(ctx);
  });
}

}  // namespace redplane::dp
