// The ASIC packet generator.
//
// Tofino can synthesize batches of packets on a timer, entirely in the data
// plane.  RedPlane's bounded-inconsistency mode uses it to emit a burst of n
// snapshot-read packets every T_snap (§5.4): packet i carries index i and
// reads the i-th slot of the snapshotted structure.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace redplane::dp {

class PacketGenerator {
 public:
  explicit PacketGenerator(sim::Simulator& sim) : sim_(sim) {}

  /// Names this generator in trace exports (set by the owning switch).
  void SetTraceName(std::string name) { trace_.SetName(std::move(name)); }

  /// Starts generating: every `period`, emit a batch of `batch_size`
  /// generated packets by invoking `fn(index)` for index in [0, batch_size).
  /// Packets within a batch are spaced `intra_gap` apart (hardware emits them
  /// back to back at line rate).
  void Start(SimDuration period, std::uint32_t batch_size,
             SimDuration intra_gap, std::function<void(std::uint32_t)> fn);

  /// Stops generation.
  void Stop();

  bool IsRunning() const { return running_; }
  SimDuration period() const { return period_; }
  std::uint64_t batches_emitted() const { return batches_; }

 private:
  void EmitBatch();

  sim::Simulator& sim_;
  bool running_ = false;
  SimDuration period_ = 0;
  std::uint32_t batch_size_ = 0;
  SimDuration intra_gap_ = 0;
  std::function<void(std::uint32_t)> fn_;
  std::uint64_t batches_ = 0;
  std::uint64_t epoch_ = 0;
  obs::TraceHandle trace_;
};

}  // namespace redplane::dp
