// The programmable switch node: ports, pipeline, and fixed-function routing.
//
// A SwitchNode owns the forwarding fabric (an externally-installed forwarder
// function, normally ECMP from src/routing) and an optional PipelineHandler,
// the P4-program analogue.  Packets traverse: parser -> pipeline handler ->
// traffic manager -> egress, modeled as a fixed pipeline latency.  A handler
// may emit zero or more packets per input (Definition 1's transition
// function).  On failure (SetUp(false)) the handler's volatile state is
// reset, the defining problem RedPlane solves.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/types.h"
#include "dataplane/control_plane.h"
#include "dataplane/mirror.h"
#include "dataplane/packet_generator.h"
#include "dataplane/register_array.h"
#include "net/headers.h"
#include "net/packet.h"
#include "sim/node.h"

namespace redplane::dp {

class SwitchNode;

/// Per-packet context handed to the pipeline handler.
class SwitchContext {
 public:
  SwitchContext(SwitchNode& sw, PortId in_port)
      : sw_(sw), in_port_(in_port) {}

  SwitchNode& node() { return sw_; }
  PortId in_port() const { return in_port_; }
  SimTime Now() const;

  /// The single-access-per-register-array token for this packet.
  const PipelinePass& pass() const { return pass_; }

  /// Emits a packet through the switch's forwarder (normal L3 output).
  void Forward(net::Packet pkt);

  /// Emits a packet out of a specific port.
  void Emit(PortId port, net::Packet pkt);

  /// Drops the packet (bookkeeping only; handlers drop by not emitting).
  void Drop(const net::Packet& pkt);

 private:
  SwitchNode& sw_;
  PortId in_port_;
  PipelinePass pass_;
};

/// The P4-program seam.  RedPlane-enabled applications, the baselines, and
/// plain apps all implement this.
class PipelineHandler {
 public:
  virtual ~PipelineHandler() = default;

  /// Processes one packet; emit outputs via `ctx`.
  virtual void Process(SwitchContext& ctx, net::Packet pkt) = 0;

  /// Clears all volatile (data-plane) state; called on switch failure.
  virtual void Reset() = 0;

  /// Optional hook invoked once when the switch comes back up.
  virtual void OnRecovery() {}
};

struct SwitchConfig {
  /// Parser-to-deparser latency for one pass of the pipeline.
  SimDuration pipeline_latency = Nanoseconds(400);
  /// Latency of one recirculation (egress back to ingress).
  SimDuration recirculation_latency = Nanoseconds(700);
  ControlPlaneConfig control_plane;
  /// IP address assigned to the switch for RedPlane protocol traffic (§5.1.2).
  net::Ipv4Addr switch_ip;
};

class SwitchNode : public sim::Node {
 public:
  SwitchNode(sim::Simulator& sim, NodeId id, std::string name,
             SwitchConfig config = {});
  ~SwitchNode() override;

  void HandlePacket(net::Packet pkt, PortId in_port) override;

  /// Fails or recovers the switch.  Failure clears the pipeline handler's
  /// state, pending control-plane work, and mirror buffers.
  void SetUp(bool up) override;

  /// Installs the forwarding function: (packet, in_port) -> output port, or
  /// nullopt to drop.  Installed by the routing substrate.
  void SetForwarder(
      std::function<std::optional<PortId>(const net::Packet&, PortId)> fwd);

  /// Installs the P4-program analogue.  May be null (pure L3 switch).
  void SetPipeline(PipelineHandler* handler) { handler_ = handler; }
  PipelineHandler* pipeline() const { return handler_; }

  /// Forwards `pkt` using the installed forwarder (drops if none/no route).
  void ForwardPacket(net::Packet pkt, PortId in_port);

  ControlPlane& control_plane() { return control_plane_; }
  PacketGenerator& packet_generator() { return pktgen_; }
  MirrorTable& mirror() { return mirror_; }
  const SwitchConfig& config() const { return config_; }
  net::Ipv4Addr ip() const { return config_.switch_ip; }

  /// Runs `fn` after one recirculation delay with a fresh pipeline pass,
  /// modeling a packet re-entering the ingress pipeline.
  void Recirculate(std::function<void(SwitchContext&)> fn);

 private:
  SwitchConfig config_;
  ControlPlane control_plane_;
  PacketGenerator pktgen_;
  MirrorTable mirror_;
  PipelineHandler* handler_ = nullptr;
  std::function<std::optional<PortId>(const net::Packet&, PortId)> forwarder_;
  std::uint64_t epoch_ = 0;
};

}  // namespace redplane::dp
